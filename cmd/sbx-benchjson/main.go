// Command sbx-benchjson converts `go test -bench` output on stdin into
// a JSON array on stdout, one object per benchmark with its metrics
// keyed by unit (including -benchmem's B/op and allocs/op columns). CI
// runs it after the Fig2 smoke benchmark (BENCH_fig2.json) and the
// fused-vs-pairwise merge-reduce benchmark (BENCH_merge.json), so the
// repository accumulates a machine-readable perf trajectory across PRs.
//
// Benchmark names are normalized by stripping the trailing -N
// GOMAXPROCS suffix ("MergeReduce/fused-8" -> "MergeReduce/fused"), so
// trajectories diff cleanly across runners with different core counts.
//
//	go test -run='^$' -bench=Fig2 -benchtime=1x . | sbx-benchjson > BENCH_fig2.json
//	go test -run='^$' -bench=MergeReduce -benchmem -benchtime=1x ./internal/kpa | sbx-benchjson > BENCH_merge.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// normalizeName strips the -N GOMAXPROCS suffix go test appends to the
// final path element of a benchmark name, when present.
func normalizeName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 || i < strings.LastIndex(name, "/") {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       normalizeName(strings.TrimPrefix(fields[0], "Benchmark")),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "sbx-benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "sbx-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "sbx-benchjson:", err)
		os.Exit(1)
	}
}
