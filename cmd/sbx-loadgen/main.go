// Command sbx-loadgen drives an sbx-serve instance over TCP: it
// generates the deterministic wire workload, partitions it across
// connections (connection j sends records j, j+conns, j+2·conns, …),
// and sends it either closed-loop (as fast as the server grants
// flow-control credits) or open-loop at a target rate.
//
//	sbx-loadgen -addr 127.0.0.1:7077 -conns 4 -records 1000000
//	sbx-loadgen -addr 127.0.0.1:7077 -wire columnar -records 5000000
//	sbx-loadgen -addr 127.0.0.1:7077 -rate 200000 -duration 10 -format json
//
// With -wire columnar the generator fills column buffers directly and
// streams column-major frames — no per-record encoding on either end.
// Against a row-only (wire version 1) server the client falls back to
// the PB record path automatically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/faultinject"
	"streambox/internal/netio"
	"streambox/internal/parsefmt"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "ingest server address")
	conns := flag.Int("conns", 4, "parallel connections")
	wire := flag.String("wire", "row", "wire mode: row (per-record -format payloads) | columnar (column-major v2 frames; ignores -format)")
	formatName := flag.String("format", "pb", "row payload encoding: pb|json|text")
	records := flag.Int64("records", 1_000_000, "total records to send (ignored with -duration)")
	duration := flag.Float64("duration", 0, "send for this many seconds instead of a fixed record count")
	rate := flag.Float64("rate", 0, "open-loop target rate, records/second total (0 = closed loop, as fast as credits allow)")
	frame := flag.Int("frame", 512, "records per frame")
	keys := flag.Uint64("keys", 1024, "ad_id cardinality")
	valueRange := flag.Uint64("value-range", 0, "user_id range (0 = constant 1)")
	windowRecords := flag.Uint64("window-records", 100_000, "records per 1s window of event time")
	random := flag.Bool("random", false, "random keys/values instead of round-robin")
	seed := flag.Uint64("seed", 0, "random-mode seed")
	resume := flag.Bool("resume", false, "resumable sessions: reconnect with backoff and replay unacked frames on connection loss (needs a wire v3 server)")
	retries := flag.Int("retries", 8, "reconnect attempts per outage with -resume (negative = unlimited)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-frame write deadline (0 disables)")
	chaosDrop := flag.Float64("chaos-drop", 0, "fault injection: probability of a connection reset per socket op")
	chaosPartial := flag.Float64("chaos-partial", 0, "fault injection: probability of a partial write + reset per write")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "fault injection: probability of a silent one-bit corruption per write")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault injection decision seed")
	statsJSON := flag.String("stats-json", "", "write a JSON stats summary to this file")
	flag.Parse()

	var format parsefmt.Format
	switch *wire {
	case "columnar":
		format = parsefmt.Columnar
	case "row":
		f, err := netio.ParseFormat(*formatName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		format = f
	default:
		fmt.Fprintf(os.Stderr, "unknown wire mode %q (row|columnar)\n", *wire)
		os.Exit(2)
	}
	if *conns < 1 {
		*conns = 1
	}
	gen := netio.RecordGen{
		Keys:          *keys,
		ValueRange:    *valueRange,
		WindowRecords: *windowRecords,
		Random:        *random,
		Seed:          *seed,
	}

	var inj *faultinject.Injector
	if *chaosDrop > 0 || *chaosPartial > 0 || *chaosCorrupt > 0 {
		inj = faultinject.New(faultinject.Config{
			ResetProb:        *chaosDrop,
			PartialWriteProb: *chaosPartial,
			CorruptProb:      *chaosCorrupt,
			Seed:             *chaosSeed,
		})
		if !*resume {
			fmt.Fprintln(os.Stderr, "note: chaos flags without -resume will lose data on the first injected fault")
		}
	}
	ccfg := netio.ClientConfig{
		Format:       format,
		FrameRecords: *frame,
		WriteTimeout: *writeTimeout,
		Faults:       inj,
	}
	if *resume {
		ccfg.Reconnect = &netio.ReconnectConfig{MaxRetries: *retries, Seed: *chaosSeed}
	}

	// Dial every connection before sending: each connection registers a
	// watermark cursor at the server, so windows only close once every
	// sender has passed them.
	clients := make([]*netio.Client, *conns)
	for j := range clients {
		c, err := netio.Dial(*addr, ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conn %d: %v\n", j, err)
			os.Exit(1)
		}
		clients[j] = c
	}
	// A columnar dial may have fallen back against a row-only server.
	format = clients[0].Format()

	var stop atomic.Bool
	if *duration > 0 {
		*records = 1 << 62
		time.AfterFunc(time.Duration(*duration*float64(time.Second)), func() { stop.Store(true) })
	}
	perConnRate := *rate / float64(*conns)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	for j, c := range clients {
		wg.Add(1)
		go func(j int, c *netio.Client) {
			defer wg.Done()
			defer c.Close()
			columnar := c.Format() == parsefmt.Columnar
			var buf []parsefmt.Record
			var cols [][]uint64
			if columnar {
				cols = make([][]uint64, 7)
				for k := range cols {
					cols[k] = make([]uint64, 0, *frame)
				}
			} else {
				buf = make([]parsefmt.Record, 0, *frame)
			}
			pending := 0
			flush := func() error {
				var err error
				if columnar {
					err = c.SendColumns(cols)
					for k := range cols {
						cols[k] = cols[k][:0]
					}
				} else {
					err = c.Send(buf)
					buf = buf[:0]
				}
				pending = 0
				return err
			}
			connStart := time.Now()
			var sent int64
			for i := int64(j); i < *records; i += int64(*conns) {
				if stop.Load() {
					break
				}
				if columnar {
					rc := gen.ColsAt(uint64(i))
					for k := range cols {
						cols[k] = append(cols[k], rc[k])
					}
				} else {
					buf = append(buf, gen.At(uint64(i)))
				}
				pending++
				if pending == *frame {
					n := pending
					if err := flush(); err != nil {
						errs <- fmt.Errorf("conn %d: %w", j, err)
						return
					}
					sent += int64(n)
					if perConnRate > 0 {
						// Open loop: sleep off any schedule surplus.
						ahead := time.Duration(float64(sent)/perConnRate*float64(time.Second)) - time.Since(connStart)
						if ahead > time.Millisecond {
							time.Sleep(ahead)
						}
					}
				}
			}
			if pending > 0 && !stop.Load() {
				if err := flush(); err != nil {
					errs <- fmt.Errorf("conn %d: %w", j, err)
				}
			}
		}(j, c)
	}
	wg.Wait()
	close(errs)
	elapsed := time.Since(start)
	failed := false
	for err := range errs {
		failed = true
		fmt.Fprintln(os.Stderr, err)
	}

	var total, frames, reconnects, replayed int64
	for _, c := range clients {
		total += c.Sent()
		frames += c.Frames()
		reconnects += c.Reconnects()
		replayed += c.Replayed()
	}
	fmt.Printf("sent:       %d records in %d frames over %d conns (%s)\n", total, frames, *conns, format)
	fmt.Printf("elapsed:    %.3f s\n", elapsed.Seconds())
	fmt.Printf("throughput: %.1f k rec/s\n", float64(total)/elapsed.Seconds()/1e3)
	if *resume || inj != nil {
		fc := inj.Counters()
		fmt.Printf("faults:     %d reconnects, %d replayed frames (injected: %d resets, %d partial writes, %d corruptions)\n",
			reconnects, replayed, fc.Resets, fc.PartialWrites, fc.Corruptions)
	}
	if *statsJSON != "" {
		fc := inj.Counters()
		stats := map[string]interface{}{
			"records_sent":      total,
			"frames_sent":       frames,
			"conns":             *conns,
			"format":            format.String(),
			"elapsed_s":         elapsed.Seconds(),
			"throughput_rec_s":  float64(total) / elapsed.Seconds(),
			"reconnects":        reconnects,
			"replayed_frames":   replayed,
			"inj_resets":        fc.Resets,
			"inj_partial_write": fc.PartialWrites,
			"inj_corruptions":   fc.Corruptions,
		}
		buf, _ := json.MarshalIndent(stats, "", "  ")
		if err := os.WriteFile(*statsJSON, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
