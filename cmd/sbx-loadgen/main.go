// Command sbx-loadgen drives an sbx-serve instance over TCP: it
// generates the deterministic wire workload, partitions it across
// connections (connection j sends records j, j+conns, j+2·conns, …),
// and sends it either closed-loop (as fast as the server grants
// flow-control credits) or open-loop at a target rate.
//
//	sbx-loadgen -addr 127.0.0.1:7077 -conns 4 -records 1000000
//	sbx-loadgen -addr 127.0.0.1:7077 -rate 200000 -duration 10 -format json
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/netio"
	"streambox/internal/parsefmt"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "ingest server address")
	conns := flag.Int("conns", 4, "parallel connections")
	formatName := flag.String("format", "pb", "payload encoding: pb|json|text")
	records := flag.Int64("records", 1_000_000, "total records to send (ignored with -duration)")
	duration := flag.Float64("duration", 0, "send for this many seconds instead of a fixed record count")
	rate := flag.Float64("rate", 0, "open-loop target rate, records/second total (0 = closed loop, as fast as credits allow)")
	frame := flag.Int("frame", 512, "records per frame")
	keys := flag.Uint64("keys", 1024, "ad_id cardinality")
	valueRange := flag.Uint64("value-range", 0, "user_id range (0 = constant 1)")
	windowRecords := flag.Uint64("window-records", 100_000, "records per 1s window of event time")
	random := flag.Bool("random", false, "random keys/values instead of round-robin")
	seed := flag.Uint64("seed", 0, "random-mode seed")
	flag.Parse()

	format, err := netio.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *conns < 1 {
		*conns = 1
	}
	gen := netio.RecordGen{
		Keys:          *keys,
		ValueRange:    *valueRange,
		WindowRecords: *windowRecords,
		Random:        *random,
		Seed:          *seed,
	}

	// Dial every connection before sending: each connection registers a
	// watermark cursor at the server, so windows only close once every
	// sender has passed them.
	clients := make([]*netio.Client, *conns)
	for j := range clients {
		c, err := netio.Dial(*addr, netio.ClientConfig{Format: format, FrameRecords: *frame})
		if err != nil {
			fmt.Fprintf(os.Stderr, "conn %d: %v\n", j, err)
			os.Exit(1)
		}
		clients[j] = c
	}

	var stop atomic.Bool
	if *duration > 0 {
		*records = 1 << 62
		time.AfterFunc(time.Duration(*duration*float64(time.Second)), func() { stop.Store(true) })
	}
	perConnRate := *rate / float64(*conns)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	for j, c := range clients {
		wg.Add(1)
		go func(j int, c *netio.Client) {
			defer wg.Done()
			defer c.Close()
			buf := make([]parsefmt.Record, 0, *frame)
			connStart := time.Now()
			var sent int64
			for i := int64(j); i < *records; i += int64(*conns) {
				if stop.Load() {
					break
				}
				buf = append(buf, gen.At(uint64(i)))
				if len(buf) == *frame {
					if err := c.Send(buf); err != nil {
						errs <- fmt.Errorf("conn %d: %w", j, err)
						return
					}
					sent += int64(len(buf))
					buf = buf[:0]
					if perConnRate > 0 {
						// Open loop: sleep off any schedule surplus.
						ahead := time.Duration(float64(sent)/perConnRate*float64(time.Second)) - time.Since(connStart)
						if ahead > time.Millisecond {
							time.Sleep(ahead)
						}
					}
				}
			}
			if len(buf) > 0 && !stop.Load() {
				if err := c.Send(buf); err != nil {
					errs <- fmt.Errorf("conn %d: %w", j, err)
				}
			}
		}(j, c)
	}
	wg.Wait()
	close(errs)
	elapsed := time.Since(start)
	failed := false
	for err := range errs {
		failed = true
		fmt.Fprintln(os.Stderr, err)
	}

	var total, frames int64
	for _, c := range clients {
		total += c.Sent()
		frames += c.Frames()
	}
	fmt.Printf("sent:       %d records in %d frames over %d conns (%s)\n", total, frames, *conns, format)
	fmt.Printf("elapsed:    %.3f s\n", elapsed.Seconds())
	fmt.Printf("throughput: %.1f k rec/s\n", float64(total)/elapsed.Seconds()/1e3)
	if failed {
		os.Exit(1)
	}
}
