// Command sbx-serve runs a keyed-aggregation pipeline as a long-lived
// network server on the native backend: external clients (sbx-loadgen,
// or anything speaking the netio wire protocol) stream records in over
// TCP, and live window results and engine metrics are queryable over
// HTTP while the pipeline runs.
//
//	sbx-serve -pipeline sum -ingest :7077 -http :7078
//	sbx-serve -pipeline topk -duration 30
//
// The stream carries the seven-column wire schema (ad_id, ad_type,
// event_type, user_id, page_id, ip, event_time); by default the
// pipeline keys on ad_id (column 0), aggregates user_id (column 3) and
// windows on event_time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	goruntime "runtime"
	"syscall"
	"time"

	streambox "streambox"
	"streambox/internal/faultinject"
)

func main() {
	pipeline := flag.String("pipeline", "sum", "aggregation: sum|count|avg|median|topk|unique")
	ingest := flag.String("ingest", ":7077", "TCP ingest listener address")
	httpAddr := flag.String("http", ":7078", "HTTP query/metrics address (empty disables)")
	keyCol := flag.Int("key-col", 0, "grouping column (0 = ad_id)")
	valCol := flag.Int("val-col", 3, "value column (3 = user_id)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = one per CPU)")
	duration := flag.Float64("duration", 0, "wall seconds to serve before draining (0 = until SIGINT)")
	keep := flag.Int("keep", 16, "closed windows retained per sink for GET /windows")
	k := flag.Int("k", 10, "k for -pipeline topk")
	wire := flag.String("wire", "columnar", "newest wire capability to serve: columnar (version 2) | row (version 1 only; columnar clients fall back)")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Second, "sever connections silent this long (0 disables)")
	cursorGrace := flag.Duration("cursor-grace", 10*time.Second, "park a dead session's watermark cursor after this (windows close without it)")
	sessionTimeout := flag.Duration("session-timeout", 2*time.Minute, "expire a dead session (no more resume) after this")
	maxConns := flag.Int("max-conns", 0, "shed ingest handshakes past this many live connections (0 = unlimited)")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "SIGTERM: wait this long for clients to finish before severing")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: session frames are fsynced before they are acked (empty disables durability)")
	recoverDir := flag.String("recover-dir", "", "recover from this WAL directory before serving (implies -wal-dir into the same directory)")
	ckInterval := flag.Duration("checkpoint-interval", time.Second, "recovery checkpoint cadence with a WAL attached")
	crashAfter := flag.Int64("crash-after-bytes", 0, "fault injection: SIGKILL this process after reading this many ingest bytes (crash-recovery testing)")
	crashSeed := flag.Uint64("crash-seed", 1, "seed jittering the exact crash point of -crash-after-bytes")
	resultsJSON := flag.String("results-json", "", "after shutdown, write the final window results to this file as JSON")
	reportJSON := flag.String("report-json", "", "after shutdown, write the final report to this file as JSON")
	shedUtil := flag.Float64("shed-util", 0, "mempool pressure above which new connections are shed at the handshake (0 = default 0.98)")
	spillDir := flag.String("spill-dir", "", "directory for the mmap'd cold spill tier's temp file (empty = system temp dir; only used with -spill-cap)")
	spillCap := flag.Int64("spill-cap", 0, "spill-tier capacity in bytes: enables the adaptive placement controller and cold-run eviction (0 disables)")
	flag.Parse()

	wireVersion := 0 // newest
	switch *wire {
	case "columnar":
	case "row":
		wireVersion = 1
	default:
		fmt.Fprintf(os.Stderr, "unknown wire mode %q (row|columnar)\n", *wire)
		os.Exit(2)
	}

	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	s := p.NetworkSource(streambox.SourceConfig{Name: "net"}).
		Window(streambox.NetworkTsCol)
	switch *pipeline {
	case "sum":
		s = s.SumPerKey(*keyCol, *valCol)
	case "count":
		s = s.CountPerKey(*keyCol)
	case "avg":
		s = s.AvgPerKey(*keyCol, *valCol)
	case "median":
		s = s.MedianPerKey(*keyCol, *valCol)
	case "topk":
		s = s.TopKPerKey(*keyCol, *valCol, *k)
	case "unique":
		s = s.UniqueCountPerKey(*keyCol, *valCol)
	default:
		fmt.Fprintf(os.Stderr, "unknown pipeline %q (sum|count|avg|median|topk|unique)\n", *pipeline)
		os.Exit(2)
	}
	s.Sink("out")

	var faults *faultinject.Injector
	if *crashAfter > 0 {
		faults = faultinject.New(faultinject.Config{CrashAfterBytes: *crashAfter, Seed: *crashSeed})
	}

	srv, err := streambox.Serve(p, streambox.RunConfig{
		Backend:       streambox.Native,
		Workers:       *workers,
		SpillDir:      *spillDir,
		SpillCapacity: *spillCap,
		Serve: &streambox.ServeConfig{
			IngestAddr:         *ingest,
			HTTPAddr:           *httpAddr,
			KeepWindows:        *keep,
			WireVersion:        wireVersion,
			IdleTimeout:        *idleTimeout,
			CursorGrace:        *cursorGrace,
			SessionTimeout:     *sessionTimeout,
			MaxConns:           *maxConns,
			ShedUtilization:    *shedUtil,
			Faults:             faults,
			WALDir:             *walDir,
			RecoverDir:         *recoverDir,
			CheckpointInterval: *ckInterval,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := *workers
	if w == 0 {
		w = goruntime.GOMAXPROCS(0)
	}
	keyName := fmt.Sprintf("col%d", *keyCol)
	if cols := streambox.NetworkColumns(); *keyCol >= 0 && *keyCol < len(cols) {
		keyName = cols[*keyCol]
	}
	fmt.Printf("serving:    %s per %s per window on %d workers\n", *pipeline, keyName, w)
	fmt.Printf("ingest:     tcp %s (netio wire protocol)\n", srv.IngestAddr())
	if a := srv.HTTPAddr(); a != "" {
		fmt.Printf("queries:    http://%s/windows  http://%s/metrics\n", a, a)
	}
	if dir := *recoverDir; dir != "" {
		fmt.Printf("recovery:   %d sessions restored, %d frames replayed in %.3f s from %s\n",
			srv.RecoveredSessions(), srv.ReplayedFrames(), float64(srv.RecoveryNs())/1e9, dir)
	}
	if dir := *walDir; dir != "" || *recoverDir != "" {
		if dir == "" {
			dir = *recoverDir
		}
		fmt.Printf("wal:        logging to %s (checkpoint every %s)\n", dir, *ckInterval)
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	var sig os.Signal
	if *duration > 0 {
		select {
		case <-time.After(time.Duration(*duration * float64(time.Second))):
		case sig = <-sigC:
		}
	} else {
		sig = <-sigC
	}

	// SIGTERM runs the ordered drain: stop accepting, give clients the
	// grace window to finish their streams cleanly, then flush windows
	// and report. SIGINT (and -duration expiry) shuts down immediately.
	var rep streambox.Report
	if sig == syscall.SIGTERM && *drainGrace > 0 {
		fmt.Printf("draining (grace %s)...\n", *drainGrace)
		rep, err = srv.DrainShutdown(*drainGrace)
	} else {
		fmt.Println("draining...")
		rep, err = srv.Shutdown()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline error:", err)
	}
	fmt.Printf("ingested:   %d records in %.3f s (%.1f k rec/s)\n",
		rep.IngestedRecords, rep.WallSeconds, rep.Throughput/1e3)
	fmt.Printf("results:    %d records, %d windows closed\n", rep.EmittedRecords, rep.WindowsClosed)
	fmt.Printf("network:    %d dropped records, %d decode errors, %d checksum errors\n",
		rep.DroppedRecords, rep.DecodeErrors, rep.ChecksumErrors)
	fmt.Printf("faults:     %d resumes, %d duplicate frames, %d shed conns, %d expired sessions, %d idle timeouts\n",
		rep.SessionsResumed, rep.DuplicateFrames, rep.ShedConns, rep.ExpiredSessions, rep.IdleTimeouts)
	if *walDir != "" || *recoverDir != "" {
		fmt.Printf("wal:        %d frames logged, %d syncs (fsync p99 %.3f ms), %d segments retired, %d left unsealed\n",
			rep.WALAppendedFrames, rep.WALSyncs, float64(rep.WALFsyncP99Ns)/1e6,
			rep.WALSegmentsRetired, rep.WALSegmentsActive)
	}
	if *recoverDir != "" {
		fmt.Printf("recovery:   %d sessions restored, %d frames replayed in %.3f s\n",
			rep.RecoveredSessions, rep.ReplayedFrames, float64(rep.RecoveryNs)/1e9)
	}
	if *resultsJSON != "" {
		if werr := writeJSON(*resultsJSON, struct {
			Windows []streambox.WindowResult `json:"windows"`
		}{srv.Results()}); werr != nil {
			fmt.Fprintln(os.Stderr, "results-json:", werr)
			os.Exit(1)
		}
	}
	if *reportJSON != "" {
		if werr := writeJSON(*reportJSON, rep); werr != nil {
			fmt.Fprintln(os.Stderr, "report-json:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		os.Exit(1)
	}
}

// writeJSON writes v as indented JSON to path.
func writeJSON(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
