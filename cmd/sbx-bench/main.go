// Command sbx-bench regenerates the paper's evaluation figures on the
// simulated hardware and prints one table per figure. With -exp native
// it instead benchmarks the native multicore backend across worker
// counts on the quickstart workload (real wall-clock throughput).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	streambox "streambox"
	"streambox/internal/engine"
	"streambox/internal/experiments"
	"streambox/internal/ingress"
	"streambox/internal/memsim"
	"streambox/internal/ops"
	"streambox/internal/runtime"
	"streambox/internal/wm"
)

func main() {
	exp := flag.String("exp", "all", "figure to run: fig2|fig7|fig8|fig9|fig10|fig11|figmerge|figpanes|all, native, alloc, close, panes, or adaptive")
	quick := flag.Bool("quick", false, "use the fast smoke-test scale")
	records := flag.Float64("records", 10e6, "records per native measurement")
	jsonPath := flag.String("json", "", "write -exp adaptive results to this file as JSON")
	flag.Parse()

	if *exp == "native" {
		benchNative(*records, *quick)
		return
	}
	if *exp == "adaptive" {
		benchAdaptive(*records, *quick, *jsonPath)
		return
	}
	if *exp == "alloc" {
		benchAlloc(*records, *quick)
		return
	}
	if *exp == "close" {
		benchClose(*records, *quick)
		return
	}
	if *exp == "panes" {
		benchPanes(*records, *quick)
		return
	}

	sc := experiments.PaperScale()
	cores := experiments.PaperCores
	if *quick {
		sc = experiments.QuickScale()
		cores = []int{2, 16, 64}
	}
	out := os.Stdout
	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
		}
	}
	var ysbKNL float64
	run("fig2", func() {
		cfg := experiments.DefaultFig2()
		if *quick {
			cfg.Pairs = 10_000_000
			cfg.Cores = cores
		}
		experiments.RenderFig2(out, experiments.Fig2(cfg))
	})
	run("fig7", func() {
		rows := experiments.Fig7(sc, cores)
		experiments.RenderFig7(out, rows)
		fmt.Fprintf(out, "per-core StreamBox-HBM/Flink (KNL 10GbE): %.1fx\n",
			experiments.Fig7PerCoreRatio(rows))
		for _, r := range rows {
			if r.System == "StreamBox-HBM KNL RDMA" && r.MRecSec > ysbKNL {
				ysbKNL = r.MRecSec
			}
		}
	})
	run("fig8", func() { experiments.RenderFig8(out, experiments.Fig8(sc, cores)) })
	run("fig9", func() {
		rows := experiments.Fig9(sc, cores)
		experiments.RenderFig9(out, rows)
		d, c, k := experiments.Fig9Ratios(rows)
		fmt.Fprintf(out, "DRAM-only loss: %.0f%%  caching loss: %.0f%%  NoKPA factor: %.1fx\n",
			d*100, c*100, k)
	})
	run("fig10", func() {
		a := experiments.Fig10a(sc, nil)
		experiments.RenderFig10(out, "Figure 10a: increasing ingestion rate", "Mrec/s", a)
		b := experiments.Fig10b(sc, nil)
		experiments.RenderFig10(out, "Figure 10b: delaying watermark arrival", "bundles between WMs", b)
	})
	run("fig11", func() { experiments.RenderFig11(out, experiments.Fig11(ysbKNL)) })
	run("figmerge", func() {
		cfg := experiments.DefaultFigMerge()
		if *quick {
			cfg.Pairs = 8_000_000
			cfg.Cores = cores
		}
		experiments.RenderFigMerge(out, experiments.FigMerge(cfg))
	})
	run("figpanes", func() {
		cfg := experiments.DefaultFigPanes()
		if *quick {
			cfg.Records = 8_000_000
		}
		experiments.RenderFigPanes(out, experiments.FigPanes(cfg))
	})
}

// benchPanes is the sliding-window ablation: the native pipeline with
// pane-based shared aggregation (default) versus the duplicate-scatter
// baseline (Config.DirectSliding), swept across Size/Slide overlap
// factors. Mrec/s is end-to-end wall-clock throughput; extract-Mpairs/s
// is logical (record, window) assignments per second of extraction
// worker time; B/rec is peak live window-state bytes per record of one
// window. Isolates what sharing sorted pane runs buys.
func benchPanes(records float64, quick bool) {
	if quick {
		records /= 10
	}
	const windowRecords = 1_000_000
	size := wm.Time(1_000_000)
	fmt.Println("Sliding-window ablation: pane-based shared runs vs direct duplicate scatter")
	fmt.Printf("%-8s %-8s %10s %18s %12s %10s %12s\n",
		"overlap", "mode", "Mrec/s", "extract-Mpairs/s", "state-B/rec", "paneruns", "sharedrefs")
	for _, overlap := range []int{1, 2, 4, 8} {
		for _, direct := range []bool{false, true} {
			plan := runtime.Plan{
				Gen: ingress.NewKV(ingress.KVConfig{Keys: 1 << 10, Seed: 1}),
				Source: engine.SourceConfig{
					Name: "panes", Rate: records, BundleRecords: 10_000,
					WindowRecords: windowRecords, WatermarkEvery: 25,
				},
				Win:          wm.Sliding(size, size/wm.Time(overlap)),
				TotalRecords: int64(records),
				TsCol:        2, KeyCol: 0, ValCol: 1,
				NewAgg: ops.Sum(), Label: "panes",
			}
			rep, err := runtime.Run(plan, runtime.Config{DirectSliding: direct})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			mode := "pane"
			if direct {
				mode = "direct"
			}
			extract := 0.0
			if rep.ExtractNanos > 0 {
				extract = float64(rep.ExtractedPairs) / float64(rep.ExtractNanos) * 1e3
			}
			fmt.Printf("%-8d %-8s %10.1f %18.1f %12.1f %10d %12d\n",
				overlap, mode, rep.Throughput/1e6, extract,
				float64(rep.PeakWindowStateTotalBytes)/windowRecords, rep.PaneRuns, rep.SharedRunRefs)
		}
	}
}

// benchNative sweeps the native backend's worker count on the
// quickstart workload (KV → Window → SumPerKey) and prints a real
// records/second table.
func benchNative(records float64, quick bool) {
	if quick {
		records /= 10
	}
	workerCounts := []int{1, 2, 4}
	if n := goruntime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	fmt.Println("Native backend: KV -> Window -> SumPerKey, real wall-clock")
	fmt.Printf("%-10s %12s %12s %10s\n", "workers", "records", "Mrec/s", "windows")
	for _, w := range workerCounts {
		p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
		p.Source(streambox.KV(streambox.KVConfig{Keys: 1 << 10, Seed: 1}),
			streambox.DefaultSource(records)).
			Window(2).
			SumPerKey(0, 1).
			Sink("out")
		rep, err := streambox.Run(p, streambox.RunConfig{
			Backend:  streambox.Native,
			Workers:  w,
			Duration: 1, // rate*duration = records
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10d %12d %12.1f %10d\n", w, rep.IngestedRecords, rep.Throughput/1e6, rep.WindowsClosed)
	}
}

// benchClose is the window-close ablation: the native pipeline with
// the fused range-partitioned merge-reduce (default) versus the
// pairwise merge tree + separate reduce (Config.PairwiseClose), across
// worker counts, with bundles sized so every window accumulates 16
// sorted runs. Isolates what the fused close buys end to end.
func benchClose(records float64, quick bool) {
	if quick {
		records /= 10
	}
	workerCounts := []int{1, 2, 4}
	if n := goruntime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	fmt.Println("Window close ablation: fused k-way merge-reduce vs pairwise tree, 16 runs/window")
	fmt.Printf("%-10s %-10s %10s %12s %12s %12s\n",
		"workers", "close", "Mrec/s", "allocs/rec", "B/rec", "GCpause-ms")
	for _, w := range workerCounts {
		for _, pairwise := range []bool{false, true} {
			plan := runtime.Plan{
				Gen: ingress.NewKV(ingress.KVConfig{Keys: 1 << 10, Seed: 1}),
				Source: engine.SourceConfig{
					Name: "close", Rate: records, BundleRecords: 62_500,
					WindowRecords: 1_000_000, WatermarkEvery: 16,
				},
				Win:          wm.Fixed(1_000_000),
				TotalRecords: int64(records),
				TsCol:        2, KeyCol: 0, ValCol: 1,
				NewAgg: ops.Sum(), Label: "close",
			}
			rep, err := runtime.Run(plan, runtime.Config{Workers: w, PairwiseClose: pairwise})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			mode := "fused"
			if pairwise {
				mode = "pairwise"
			}
			fmt.Printf("%-10d %-10s %10.1f %12.5f %12.1f %12.2f\n",
				w, mode, rep.Throughput/1e6, rep.AllocsPerRecord,
				rep.AllocBytesPerRecord, float64(rep.GCPauseNs)/1e6)
		}
	}
}

// benchAlloc is the allocator ablation: the native pipeline with the
// mempool's slab recycling on (pooled) versus off (every KPA and
// kernel scratch buffer a fresh Go-heap make), across worker counts.
// The table isolates what the recycling allocator buys — throughput,
// allocations per record, GC pause time — in the style of the paper's
// figure scripts.
func benchAlloc(records float64, quick bool) {
	if quick {
		records /= 10
	}
	workerCounts := []int{1, 2, 4}
	if n := goruntime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	fmt.Println("Allocator ablation: KV -> Window -> SumPerKey, pooled slabs vs make")
	fmt.Printf("%-10s %-8s %10s %12s %12s %12s %14s\n",
		"workers", "alloc", "Mrec/s", "allocs/rec", "B/rec", "GCpause-ms", "slabs-recycled")
	for _, w := range workerCounts {
		for _, pooled := range []bool{true, false} {
			// Mirrors benchNative's workload exactly (the streambox
			// DefaultSource shape) but builds the runtime.Plan directly:
			// the recycling toggle is a runtime.Config knob, deliberately
			// not public API.
			plan := runtime.Plan{
				Gen: ingress.NewKV(ingress.KVConfig{Keys: 1 << 10, Seed: 1}),
				Source: engine.SourceConfig{
					Name: "alloc", Rate: records, BundleRecords: 10_000,
					WindowRecords: 1_000_000, WatermarkEvery: 100,
				},
				Win:          wm.Fixed(1_000_000),
				TotalRecords: int64(records),
				TsCol:        2, KeyCol: 0, ValCol: 1,
				NewAgg: ops.Sum(), Label: "alloc",
			}
			rep, err := runtime.Run(plan, runtime.Config{Workers: w, NoRecycle: !pooled})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			mode := "pooled"
			if !pooled {
				mode = "make"
			}
			fmt.Printf("%-10d %-8s %10.1f %12.5f %12.1f %12.2f %14d\n",
				w, mode, rep.Throughput/1e6, rep.AllocsPerRecord,
				rep.AllocBytesPerRecord, float64(rep.GCPauseNs)/1e6, rep.SlabsRecycled)
		}
	}
}

// adaptiveLeg is one row of the -exp adaptive sweep, serialized into
// the -json artifact (BENCH_adaptive.json in CI).
type adaptiveLeg struct {
	Name               string  `json:"name"`
	KLow               float64 `json:"k_low"`
	KHigh              float64 `json:"k_high"`
	Spill              bool    `json:"spill"`
	Error              string  `json:"error,omitempty"`
	Records            int64   `json:"records"`
	MRecSec            float64 `json:"mrec_per_sec"`
	SpilledRuns        int64   `json:"spilled_runs"`
	SpilledBytes       int64   `json:"spilled_bytes"`
	SpillLoads         int64   `json:"spill_loads"`
	SpillLoadFallbacks int64   `json:"spill_load_fallbacks"`
	CtrlDecisions      int64   `json:"ctrl_decisions"`
	CtrlEvictTicks     int64   `json:"ctrl_evict_ticks"`
	CloseP99Ms         float64 `json:"close_p99_ms"`
	PeakStateBytes     int64   `json:"peak_state_bytes"`
	Overshoot          float64 `json:"overshoot"`
}

// benchAdaptive is the degradation-ladder sweep: a drifting workload
// whose live window state overshoots a deliberately tiny HBM+DRAM
// budget by ~2x (the watermark stalls for three windows at a time, so
// sealed-but-unclosed state piles up, then drains), run under the
// adaptive placement controller versus fixed {k_low, k_high} pins.
// Pinned legs without a spill tier reproduce today's failure mode —
// the pool exhausts and the run dies — while the controller absorbs
// the same overshoot by shifting placement and evicting cold sealed
// runs to the mmap'd spill file, finishing with zero dropped records
// and bit-identical windows. Pinned legs with the spill tier attached
// keep only the reactive exhaustion-path eviction, isolating what the
// proactive control loop buys. -json writes the table as JSON for CI.
func benchAdaptive(records float64, quick bool, jsonPath string) {
	if quick {
		records /= 2
	}
	// The budget is sized so the stalled windows' sorted pairs alone
	// (16 B/record live, before counting their source bundles) are
	// about twice HBM+DRAM at the watermark stall's deepest point.
	const (
		hbmCap        = int64(10) << 20
		dramCap       = int64(22) << 20
		reservedHBM   = int64(3) << 20
		spillCap      = int64(512) << 20
		windowRecords = 500_000
		bundleRecords = 10_000
		// Watermarks arrive every 450 bundles = 4.5e6 records: nine
		// full windows seal and sit cold before each close volley, so
		// live sorted-run state alone reaches ~2x the memory budget
		// (4.5e6 x 16 B = 72 MiB against the 32 MiB budget).
		watermarkEvery = 450
	)
	machine := memsim.KNLConfig()
	machine.Tiers[memsim.HBM].Capacity = hbmCap
	machine.Tiers[memsim.DRAM].Capacity = dramCap
	budget := hbmCap + dramCap

	legs := []struct {
		name  string
		knob  *[2]float64
		spill bool
	}{
		{"adaptive", nil, true},
		{"pinned-1.0-1.0", &[2]float64{1, 1}, true},
		{"pinned-0.5-0.5", &[2]float64{0.5, 0.5}, true},
		{"pinned-0.0-0.0", &[2]float64{0, 0}, true},
		// One no-spill leg reproduces today's failure mode. {1, 1} is
		// where the knob schedule starts, and it dies fast; all-DRAM
		// pins instead limp for minutes on forced-watermark drains, so
		// they are not worth a CI leg.
		{"pinned-1.0-1.0-nospill", &[2]float64{1, 1}, false},
	}
	fmt.Printf("Degradation ladder: adaptive controller vs fixed knobs, %d MiB budget, ~2x overshoot\n",
		budget>>20)
	fmt.Printf("%-24s %10s %12s %12s %10s %12s %12s %s\n",
		"mode", "Mrec/s", "spilledMiB", "spillloads", "ctrldec", "closeP99ms", "peakstate/b", "outcome")
	results := make([]adaptiveLeg, 0, len(legs))
	for _, leg := range legs {
		plan := runtime.Plan{
			Gen: ingress.NewKV(ingress.KVConfig{Keys: 1 << 10, Seed: 1}),
			Source: engine.SourceConfig{
				Name: "adaptive", Rate: records, BundleRecords: bundleRecords,
				WindowRecords: windowRecords, WatermarkEvery: watermarkEvery,
			},
			Win:          wm.Fixed(windowRecords),
			TotalRecords: int64(records),
			TsCol:        2, KeyCol: 0, ValCol: 1,
			NewAgg: ops.Sum(), Label: "adaptive",
		}
		cfg := runtime.Config{
			Machine:        machine,
			ReservedHBM:    reservedHBM,
			PinnedKnob:     leg.knob,
			ExhaustTimeout: 750 * time.Millisecond,
		}
		if leg.spill {
			cfg.SpillCapacity = spillCap
		}
		rep, err := runtime.Run(plan, cfg)
		row := adaptiveLeg{
			Name: leg.name, Spill: leg.spill,
			KLow: rep.KLow, KHigh: rep.KHigh,
			Records:            rep.IngestedRecords,
			MRecSec:            rep.Throughput / 1e6,
			SpilledRuns:        rep.SpilledRuns,
			SpilledBytes:       rep.SpilledBytes,
			SpillLoads:         rep.SpillLoads,
			SpillLoadFallbacks: rep.SpillLoadFallbacks,
			CtrlDecisions:      rep.CtrlDecisions,
			CtrlEvictTicks:     rep.CtrlEvictTicks,
			CloseP99Ms:         float64(rep.CloseP99Nanos) / 1e6,
			PeakStateBytes:     rep.PeakWindowStateTotalBytes,
			Overshoot:          float64(rep.PeakWindowStateTotalBytes) / float64(budget),
		}
		outcome := "ok"
		if err != nil {
			row.Error = err.Error()
			outcome = "FAILED: " + err.Error()
		}
		fmt.Printf("%-24s %10.1f %12.1f %12d %10d %12.2f %12.2f %s\n",
			leg.name, row.MRecSec, float64(row.SpilledBytes)/float64(1<<20),
			row.SpillLoads, row.CtrlDecisions, row.CloseP99Ms, row.Overshoot, outcome)
		results = append(results, row)
	}
	if jsonPath != "" {
		out := struct {
			BudgetBytes int64         `json:"budget_bytes"`
			HBMBytes    int64         `json:"hbm_bytes"`
			DRAMBytes   int64         `json:"dram_bytes"`
			Legs        []adaptiveLeg `json:"legs"`
		}{budget, hbmCap, dramCap, results}
		b, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
	}
}
