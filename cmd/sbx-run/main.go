// Command sbx-run executes one of the paper's benchmark pipelines and
// prints a run report. The default backend is the simulated
// hybrid-memory machine; -backend native runs the keyed-aggregation
// pipelines on the real multicore runtime and reports wall-clock
// throughput.
//
//	sbx-run -pipeline ysb -rate 30e6 -cores 64 -duration 2
//	sbx-run -backend native -pipeline sum -rate 20e6 -duration 2
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"sort"

	streambox "streambox"
	"streambox/internal/engine"
	"streambox/internal/experiments"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

func main() {
	pipeline := flag.String("pipeline", "ysb", "pipeline: ysb|topk|sum|median|avg|avgall|unique|join|winfilter|powergrid")
	backend := flag.String("backend", "sim", "execution backend: sim|native")
	rate := flag.Float64("rate", 20e6, "offered load, records/second")
	cores := flag.Int("cores", 64, "simulated cores")
	workers := flag.Int("workers", 0, "native worker goroutines (0 = one per CPU)")
	duration := flag.Float64("duration", 2.0, "virtual seconds (native: rate*duration records)")
	placement := flag.String("placement", "managed", "KPA placement: managed|dram|cache")
	noKPA := flag.Bool("nokpa", false, "group full records instead of KPAs")
	rdma := flag.Bool("rdma", true, "RDMA ingress (false: 10 GbE)")
	list := flag.Bool("list", false, "list pipelines and exit")
	flag.Parse()

	if *backend == "native" {
		runNative(*pipeline, *rate, *duration, *workers)
		return
	}
	if *backend != "sim" {
		fmt.Fprintf(os.Stderr, "unknown backend %q (sim|native)\n", *backend)
		os.Exit(2)
	}

	workloads := map[string]experiments.Workload{
		"ysb":       experiments.YSBWorkload(),
		"topk":      experiments.TopKPerKey(),
		"sum":       experiments.WindowedSumPerKey(),
		"median":    experiments.WindowedMedianPerKey(),
		"avg":       experiments.WindowedAvgPerKey(),
		"avgall":    experiments.WindowedAvgAll(),
		"unique":    experiments.UniqueCountPerKey(),
		"join":      experiments.TemporalJoin(),
		"winfilter": experiments.WindowedFilter(),
		"powergrid": experiments.PowerGrid(),
	}
	if *list {
		var names []string
		for n := range workloads {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	w, ok := workloads[*pipeline]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pipeline %q (use -list)\n", *pipeline)
		os.Exit(2)
	}

	machine := memsim.KNLConfig().WithCores(*cores)
	cfg := engine.Config{
		Machine:      machine,
		Win:          wm.Fixed(experiments.WindowSize),
		UseKPA:       !*noKPA,
		RecordWeight: 100,
	}
	switch *placement {
	case "managed":
		cfg.Placement = engine.PlacementManaged
	case "dram":
		cfg.Placement = engine.PlacementDRAM
	case "cache":
		cfg.Placement = engine.PlacementCache
	default:
		fmt.Fprintf(os.Stderr, "unknown placement %q\n", *placement)
		os.Exit(2)
	}
	e, err := engine.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slots := w.Build(e)
	nic := machine.RDMABW
	if !*rdma {
		nic = machine.EthBW
	}
	for i, s := range slots {
		scfg := engine.SourceConfig{
			Name:           fmt.Sprintf("%s-%d", w.Name, i),
			Rate:           *rate / float64(len(slots)),
			NICBandwidth:   nic / float64(len(slots)),
			BundleRecords:  1000,
			WindowRecords:  1_000_000,
			WatermarkEvery: 10,
		}
		if _, err := e.AddSource(s.Gen, scfg, s.Entry, s.Port); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	stats, err := e.Run(*duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline error:", err)
		os.Exit(1)
	}
	elapsed := e.Sim.Now()
	fmt.Printf("pipeline:   %s (%d cores, %s placement, KPA=%v)\n", w.Name, *cores, *placement, !*noKPA)
	fmt.Printf("ingested:   %d records in %.2f virtual s (%.1f M rec/s)\n",
		stats.IngestedRecords, elapsed, float64(stats.IngestedRecords)/elapsed/1e6)
	fmt.Printf("results:    %d records, %d windows closed\n", stats.EmittedRecords, stats.WindowsClosed)
	fmt.Printf("delay:      avg %.0f ms, max %.0f ms (target 1000 ms)\n",
		stats.AvgDelay()*1000, stats.MaxDelay()*1000)
	fmt.Printf("bandwidth:  peak HBM %.0f GB/s, peak DRAM %.0f GB/s\n",
		e.Sim.PeakBW(memsim.HBM)/1e9, e.Sim.PeakBW(memsim.DRAM)/1e9)
	fmt.Printf("knob:       k_low=%.2f k_high=%.2f\n", e.Knob().KLow, e.Knob().KHigh)
	fmt.Printf("HBM used:   %.2f GB of %.0f GB\n",
		float64(e.Pool.Used(memsim.HBM))/float64(1<<30),
		float64(e.Pool.Capacity(memsim.HBM))/float64(1<<30))
}

// runNative executes a keyed-aggregation pipeline on the native
// multicore backend and prints real (wall-clock) figures.
func runNative(pipeline string, rate, duration float64, workers int) {
	src := streambox.SourceConfig{
		Name:           pipeline,
		Rate:           rate,
		BundleRecords:  10_000,
		WindowRecords:  1_000_000,
		WatermarkEvery: 100,
	}
	gen := streambox.KV(streambox.KVConfig{Keys: 1 << 10, Seed: 1})
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	s := p.Source(gen, src).Window(2)
	switch pipeline {
	case "sum":
		s.SumPerKey(0, 1).Sink("out")
	case "count":
		s.CountPerKey(0).Sink("out")
	case "avg":
		s.AvgPerKey(0, 1).Sink("out")
	case "median":
		s.MedianPerKey(0, 1).Sink("out")
	case "topk":
		s.TopKPerKey(0, 1, 10).Sink("out")
	case "unique":
		s.UniqueCountPerKey(0, 1).Sink("out")
	default:
		fmt.Fprintf(os.Stderr, "pipeline %q is not in the native path (sum|count|avg|median|topk|unique)\n", pipeline)
		os.Exit(2)
	}
	rep, err := streambox.Run(p, streambox.RunConfig{
		Backend:  streambox.Native,
		Workers:  workers,
		Duration: duration,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipeline error:", err)
		os.Exit(1)
	}
	if workers == 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	fmt.Printf("pipeline:   %s (native backend, %d workers)\n", pipeline, workers)
	fmt.Printf("ingested:   %d records in %.3f real s\n", rep.IngestedRecords, rep.WallSeconds)
	fmt.Printf("throughput: %.1f M rec/s (real wall-clock)\n", rep.Throughput/1e6)
	fmt.Printf("results:    %d records, %d windows closed\n", rep.EmittedRecords, rep.WindowsClosed)
	// Generator sources parse nothing and drop nothing; network runs
	// (sbx-serve) report real counts here.
	fmt.Printf("ingress:    %d dropped records, %d decode errors\n", rep.DroppedRecords, rep.DecodeErrors)
}
