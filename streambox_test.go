package streambox_test

import (
	"testing"

	streambox "streambox"
	"streambox/internal/ingress"
)

func smallSource(rate float64) streambox.SourceConfig {
	return streambox.SourceConfig{
		Name:           "test",
		Rate:           rate,
		BundleRecords:  1000,
		WindowRecords:  4000,
		WatermarkEvery: 4,
	}
}

func TestQuickstartPipeline(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.RoundRobinKV(8, 1), smallSource(2e6)).
		Window(2).
		SumPerKey(0, 1).
		Capture()
	rep, err := streambox.Run(p, streambox.RunConfig{Cores: 64, Duration: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords == 0 || rep.Throughput == 0 {
		t.Fatal("no throughput")
	}
	if rep.WindowsClosed == 0 {
		t.Fatal("no windows closed")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no results captured")
	}
	for _, r := range res.Rows {
		if r.Val != 4000/8 {
			t.Fatalf("sum = %d, want %d", r.Val, 4000/8)
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 1}); err == nil {
		t.Fatal("pipeline without sources must fail")
	}
	p2 := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	p2.Source(streambox.RoundRobinKV(2, 1), smallSource(1e6)).Sink("out")
	if _, err := streambox.Run(p2, streambox.RunConfig{}); err == nil {
		t.Fatal("zero duration must fail")
	}
	bad := streambox.NewPipeline(streambox.FixedWindow(0))
	bad.Source(streambox.RoundRobinKV(2, 1), smallSource(1e6)).Sink("out")
	if _, err := streambox.Run(bad, streambox.RunConfig{Duration: 1}); err == nil {
		t.Fatal("invalid windowing must fail")
	}
}

func TestJoinPipeline(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	left := p.Source(streambox.RoundRobinKV(50, 1), smallSource(2e6)).Window(2)
	right := p.Source(streambox.RoundRobinKV(50, 2), smallSource(2e6)).Window(2)
	res := left.Join(right, 0, 1).Capture()
	rep, err := streambox.Run(p, streambox.RunConfig{Duration: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Fatal("join produced nothing")
	}
	_ = rep
}

func TestRunConfigVariants(t *testing.T) {
	run := func(cfg streambox.RunConfig) streambox.Report {
		p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
		p.Source(streambox.RoundRobinKV(16, 1), smallSource(2e6)).
			Window(2).
			CountPerKey(0).
			Sink("out")
		cfg.Duration = 0.01
		rep, err := streambox.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, pl := range []streambox.Placement{streambox.Managed, streambox.DRAMOnly, streambox.CacheMode} {
		rep := run(streambox.RunConfig{Placement: pl})
		if rep.IngestedRecords == 0 {
			t.Fatalf("placement %v ingested nothing", pl)
		}
	}
	rep := run(streambox.RunConfig{NoKPA: true, Placement: streambox.CacheMode})
	if rep.IngestedRecords == 0 {
		t.Fatal("NoKPA run ingested nothing")
	}
	// Restricted cores still work.
	rep = run(streambox.RunConfig{Cores: 2})
	if rep.IngestedRecords == 0 {
		t.Fatal("2-core run ingested nothing")
	}
	// X56 machine.
	rep = run(streambox.RunConfig{Machine: streambox.X56(), Placement: streambox.DRAMOnly})
	if rep.IngestedRecords == 0 {
		t.Fatal("X56 run ingested nothing")
	}
}

func TestYSBPublicPipeline(t *testing.T) {
	gen := streambox.YSB(streambox.YSBConfig{Ads: 100, Campaigns: 10, Seed: 1})
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(gen, smallSource(2e6)).
		Filter("views", ingress.YSBEventType, func(v uint64) bool { return v == ingress.YSBEventView }).
		Project(ingress.YSBAdID, ingress.YSBEventTime).
		ExternalJoin("campaigns", ingress.YSBAdID, gen.CampaignTable()).
		Window(ingress.YSBEventTime).
		CountPerKey(ingress.YSBAdID).
		Capture()
	rep, err := streambox.Run(p, streambox.RunConfig{Duration: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed == 0 || len(res.Rows) == 0 {
		t.Fatal("YSB produced nothing")
	}
	for _, r := range res.Rows {
		if r.Key >= 10 {
			t.Fatalf("campaign %d out of range", r.Key)
		}
	}
}

func TestPowerGridPublicPipeline(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.PowerGridSource(streambox.PowerGridConfig{Seed: 2}), smallSource(2e6)).
		Window(2).
		PowerGrid().
		Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.02}); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no top houses")
	}
}

func TestFilterByAvgPublicPipeline(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	ctrl := p.Source(streambox.RoundRobinKV(4, 100), smallSource(2e6)).Window(2)
	data := p.Source(streambox.KV(streambox.KVConfig{Keys: 8, ValueRange: 200, Seed: 4}), smallSource(2e6)).Window(2)
	res := data.FilterByAvg(ctrl, 1).Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.015}); err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Fatal("no survivors")
	}
}

func TestUnionPublicPipeline(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	a := p.Source(streambox.RoundRobinKV(4, 1), smallSource(1e6))
	b := p.Source(streambox.RoundRobinKV(4, 1), smallSource(1e6))
	res := a.Union(b).Window(2).CountPerKey(0).Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.02}); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("union produced nothing")
	}
	// Two equal sources: counts double a single source's.
	for _, r := range res.Rows {
		if r.Val != 2*4000/4 {
			t.Fatalf("count = %d, want %d", r.Val, 2*4000/4)
		}
	}
}

func TestSlidingWindowPublic(t *testing.T) {
	p := streambox.NewPipeline(streambox.SlidingWindow(streambox.Second, streambox.Second/2))
	res := p.Source(streambox.RoundRobinKV(4, 1), smallSource(2e6)).
		Window(2).
		CountPerKey(0).
		Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.02}); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("sliding windows produced nothing")
	}
	// Interior sliding windows see a full window of records: count/key
	// = windowRecords/keys; boundary windows see half.
	sawFull := false
	for _, r := range res.Rows {
		if r.Val == 4000/4 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("no interior sliding window had full counts")
	}
}

func TestPercentileAndMedianPublic(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	src := p.Source(streambox.RoundRobinKV(4, 7), smallSource(2e6)).Window(2)
	med := src.MedianPerKey(0, 1).Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.01}); err != nil {
		t.Fatal(err)
	}
	for _, r := range med.Rows {
		if r.Val != 7 {
			t.Fatalf("median = %d", r.Val)
		}
	}
}
