package streambox_test

import (
	"testing"

	streambox "streambox"
	"streambox/internal/engine"
	"streambox/internal/ops"
)

func TestTopKAndPercentileStreams(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	src := p.Source(streambox.RoundRobinKV(4, 9), smallSource(2e6)).Window(2)
	topk := src.TopKPerKey(0, 1, 3).Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.01}); err != nil {
		t.Fatal(err)
	}
	if len(topk.Rows) == 0 {
		t.Fatal("no topk rows")
	}
	for _, r := range topk.Rows {
		if r.Val != 9 {
			t.Fatalf("topk of constant stream = %d", r.Val)
		}
	}
}

func TestSampleStream(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.RoundRobinKV(8, 1), smallSource(2e6)).
		Sample(0, 2). // keep even keys only
		Window(2).
		CountPerKey(0).
		Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.01}); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Key%2 != 0 {
			t.Fatalf("sample kept key %d", r.Key)
		}
	}
}

func TestApplyCustomOperator(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.RoundRobinKV(4, 7), smallSource(2e6)).
		Apply(func() engine.Operator { return &ops.WindowOp{TsCol: 2} }).
		Apply(func() engine.Operator { return ops.NewKeyedAgg("max", 0, 1, ops.Max()) }).
		Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Duration: 0.01}); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Val != 7 {
			t.Fatalf("max = %d", r.Val)
		}
	}
}

func TestRecordSeriesInReport(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	p.Source(streambox.RoundRobinKV(4, 1), smallSource(2e6)).Window(2).CountPerKey(0).Sink("out")
	rep, err := streambox.Run(p, streambox.RunConfig{Duration: 0.05, RecordSeries: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) < 3 {
		t.Fatalf("series samples = %d", len(rep.Series))
	}
}

func TestCrossPipelineJoinPanics(t *testing.T) {
	p1 := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	p2 := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	a := p1.Source(streambox.RoundRobinKV(2, 1), smallSource(1e6))
	b := p2.Source(streambox.RoundRobinKV(2, 1), smallSource(1e6))
	defer func() {
		if recover() == nil {
			t.Fatal("cross-pipeline join must panic")
		}
	}()
	a.Join(b, 0, 1)
}

func TestReportThroughputConsistency(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	p.Source(streambox.RoundRobinKV(4, 1), smallSource(3e6)).Window(2).CountPerKey(0).Sink("out")
	rep, err := streambox.Run(p, streambox.RunConfig{Duration: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Offered 3 M rec/s for 20 ms: throughput within 20% of offered.
	if rep.Throughput < 2.4e6 || rep.Throughput > 3.6e6 {
		t.Fatalf("throughput = %g, want ~3e6", rep.Throughput)
	}
	if rep.PeakHBMBW <= 0 {
		t.Fatal("no HBM bandwidth recorded")
	}
}
