package experiments

import (
	"bytes"
	"testing"

	"streambox/internal/memsim"
	"streambox/internal/parsefmt"
)

// tinyScale keeps experiment smoke tests fast.
func tinyScale() Scale {
	return Scale{
		WindowRecords: 200_000,
		BundleRecords: 20_000,
		Specimen:      200,
		Duration:      0.2,
		SearchIters:   2,
	}
}

func fig2At(rows []Fig2Row, config string, cores int) Fig2Row {
	for _, r := range rows {
		if r.Config == config && r.Cores == cores {
			return r
		}
	}
	return Fig2Row{}
}

func TestFig2Shapes(t *testing.T) {
	rows := Fig2(Fig2Config{Pairs: 10_000_000, Cores: []int{2, 16, 64}})
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Paper claim 1: Sort achieves the highest throughput and bandwidth
	// when all cores participate, on HBM.
	hbmSort64 := fig2At(rows, "HBM Sort", 64)
	for _, r := range rows {
		if r.Cores == 64 && r.MPairsSec > hbmSort64.MPairsSec {
			t.Errorf("%s (%f) beats HBM Sort (%f) at 64 cores", r.Config, r.MPairsSec, hbmSort64.MPairsSec)
		}
	}
	// Paper claim 2: Sort outperforms Hash on HBM at every core count.
	for _, c := range []int{2, 16, 64} {
		if fig2At(rows, "HBM Sort", c).MPairsSec <= fig2At(rows, "HBM Hash", c).MPairsSec {
			t.Errorf("HBM Sort must beat HBM Hash at %d cores", c)
		}
	}
	// Paper claim 3: on DRAM, Sort underperforms Hash at high core
	// counts (bandwidth-bound) but not at 2 cores.
	if fig2At(rows, "DRAM Sort", 64).MPairsSec >= fig2At(rows, "DRAM Hash", 64).MPairsSec {
		t.Error("DRAM Hash must beat DRAM Sort at 64 cores")
	}
	if fig2At(rows, "DRAM Sort", 2).MPairsSec <= fig2At(rows, "DRAM Hash", 2).MPairsSec {
		t.Error("DRAM Sort must beat DRAM Hash at 2 cores")
	}
	// Paper claim 4: DRAM Sort saturates DRAM bandwidth (plateaus).
	if fig2At(rows, "DRAM Sort", 64).MPairsSec > 1.25*fig2At(rows, "DRAM Sort", 16).MPairsSec {
		t.Error("DRAM Sort must plateau past 16 cores")
	}
	// Paper claim 5: Hash gains little from HBM (within ~40%).
	h, d := fig2At(rows, "HBM Hash", 64).MPairsSec, fig2At(rows, "DRAM Hash", 64).MPairsSec
	if h > 1.6*d {
		t.Errorf("Hash must gain little from HBM: %f vs %f", h, d)
	}
	var buf bytes.Buffer
	RenderFig2(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func figMergeAt(rows []FigMergeRow, config string, cores int) FigMergeRow {
	for _, r := range rows {
		if r.Config == config && r.Cores == cores {
			return r
		}
	}
	return FigMergeRow{}
}

// TestFigMergeShapes checks the window-close microbenchmark tracks the
// native fused kernel: the fused one-pass close beats the pairwise
// tree on both tiers, moves several times less memory per pair, and
// HBM fused is the fastest configuration overall.
func TestFigMergeShapes(t *testing.T) {
	rows := FigMerge(FigMergeConfig{Pairs: 8_000_000, Runs: 16, Cores: []int{2, 16, 64}})
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, tier := range []string{"HBM", "DRAM"} {
		for _, c := range []int{2, 16, 64} {
			fused := figMergeAt(rows, tier+" Fused", c)
			pair := figMergeAt(rows, tier+" Pairwise", c)
			if fused.MPairsSec <= 1.3*pair.MPairsSec {
				t.Errorf("%s at %d cores: fused %.1f Mpairs/s not >= 1.3x pairwise %.1f",
					tier, c, fused.MPairsSec, pair.MPairsSec)
			}
			// Traffic per pair: pairwise pays log2(16) materializing
			// levels plus the reduce re-read; fused streams once.
			fusedBpp := fused.GBSec / fused.MPairsSec
			pairBpp := pair.GBSec / pair.MPairsSec
			if pairBpp < 3*fusedBpp {
				t.Errorf("%s at %d cores: pairwise %.1f B/pair not >= 3x fused %.1f B/pair",
					tier, c, pairBpp*1000, fusedBpp*1000)
			}
		}
	}
	best := figMergeAt(rows, "HBM Fused", 64)
	for _, r := range rows {
		if r.Cores == 64 && r.MPairsSec > best.MPairsSec {
			t.Errorf("%s (%.1f) beats HBM Fused (%.1f) at 64 cores", r.Config, r.MPairsSec, best.MPairsSec)
		}
	}
	var buf bytes.Buffer
	RenderFigMerge(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
	if cfg := DefaultFigMerge(); cfg.Runs != 16 || cfg.Pairs != 64_000_000 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

func TestFig2Defaults(t *testing.T) {
	cfg := DefaultFig2()
	if cfg.Pairs != 100_000_000 {
		t.Errorf("default pairs = %d, want paper's 100M", cfg.Pairs)
	}
	rows := Fig2(Fig2Config{}) // zero config falls back to defaults
	if len(rows) != 4*len(PaperCores) {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Fig7(tinyScale(), []int{2, 64})
	byKey := map[string]map[int]Fig7Row{}
	for _, r := range rows {
		if byKey[r.System] == nil {
			byKey[r.System] = map[int]Fig7Row{}
		}
		byKey[r.System][r.Cores] = r
	}
	sbx := byKey["StreamBox-HBM KNL 10GbE"][64]
	flink := byKey["Flink KNL 10GbE"][64]
	if sbx.MRecSec <= flink.MRecSec {
		t.Errorf("StreamBox-HBM (%f) must beat Flink (%f) on KNL 10GbE", sbx.MRecSec, flink.MRecSec)
	}
	rdma := byKey["StreamBox-HBM KNL RDMA"][64]
	if rdma.MRecSec <= sbx.MRecSec {
		t.Errorf("RDMA (%f) must beat 10GbE (%f)", rdma.MRecSec, sbx.MRecSec)
	}
	if ratio := Fig7PerCoreRatio(rows); ratio < 2 {
		t.Errorf("per-core ratio = %f, expected >> 1", ratio)
	}
	var buf bytes.Buffer
	RenderFig7(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFig8AllBenchmarksRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Fig8(tinyScale(), []int{64})
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 benchmarks", len(rows))
	}
	for _, r := range rows {
		if r.MRecSec <= 0 {
			t.Errorf("%s: zero throughput", r.Bench)
		}
	}
	var buf bytes.Buffer
	RenderFig8(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Fig9(tinyScale(), []int{64})
	at := map[string]float64{}
	for _, r := range rows {
		at[r.Variant] = r.MRecSec
	}
	full := at["StreamBox-HBM"]
	if full <= 0 {
		t.Fatal("no throughput for the full system")
	}
	// §7.3: the full system beats every ablation; NoKPA is the worst.
	for _, v := range []string{"StreamBox-HBM Caching", "StreamBox-HBM DRAM", "StreamBox-HBM Caching NoKPA"} {
		if at[v] > full {
			t.Errorf("%s (%f) must not beat the full system (%f)", v, at[v], full)
		}
	}
	if at["StreamBox-HBM Caching NoKPA"] >= at["StreamBox-HBM Caching"] {
		t.Error("NoKPA must be the slowest variant")
	}
	d, c, k := Fig9Ratios(rows)
	if d <= 0 || k <= 1 {
		t.Errorf("ratios: dram=%f caching=%f nokpa=%f", d, c, k)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFig10KnobResponds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := tinyScale()
	rows := Fig10a(sc, []float64{10, 60})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lo, hi := rows[0], rows[1]
	if hi.AvgDRAMBW <= lo.AvgDRAMBW {
		t.Error("DRAM bandwidth must rise with ingestion rate")
	}
	// At the high rate the knob must have shifted allocations to DRAM.
	if hi.KLow >= 1 {
		t.Errorf("knob must respond to pressure: k_low = %f", hi.KLow)
	}
	b := Fig10b(sc, []int{100, 300})
	if len(b) != 2 {
		t.Fatalf("fig10b rows = %d", len(b))
	}
	var buf bytes.Buffer
	RenderFig10(&buf, "t", "x", rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestFig11Shapes(t *testing.T) {
	// Pin deterministic per-format host rates (in §7.4's measured
	// order) so the assertions test the projection plumbing instead of
	// racing the host scheduler — the real measureParse times a 100 ms
	// wall-clock loop, which inverts under load (e.g. -race on a busy
	// CI box).
	defer func(old func(parsefmt.Format, []byte, int) float64) { measureParseFn = old }(measureParseFn)
	measureParseFn = func(f parsefmt.Format, data []byte, recs int) float64 {
		switch f {
		case parsefmt.Text:
			return 30e6
		case parsefmt.PB:
			return 10e6
		default: // JSON
			return 2e6
		}
	}
	rows := Fig11(50)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 formats x 2 machines", len(rows))
	}
	rate := map[string]map[string]float64{}
	for _, r := range rows {
		if rate[r.Format] == nil {
			rate[r.Format] = map[string]float64{}
		}
		rate[r.Format][r.Machine] = r.MRecSec
	}
	// §7.4 ordering: text >> protobuf >> JSON.
	if !(rate["Text Strings"]["KNL"] > rate["Protocol Buffers"]["KNL"]) {
		t.Error("text must parse faster than protobuf")
	}
	if !(rate["Protocol Buffers"]["KNL"] > rate["JSON"]["KNL"]) {
		t.Error("protobuf must parse faster than JSON")
	}
	// X56 parses 3-4x faster than KNL (per-machine, 56 vs 64 cores).
	for f, m := range rate {
		if m["X56"] <= m["KNL"] {
			t.Errorf("%s: X56 (%f) must out-parse KNL (%f)", f, m["X56"], m["KNL"])
		}
	}
	var buf bytes.Buffer
	RenderFig11(&buf, rows)
	if buf.Len() == 0 {
		t.Error("render produced nothing")
	}
}

func TestWorkloadsBuild(t *testing.T) {
	for _, w := range append(Fig8Workloads(), YSBWorkload(), YSBFlinkWorkload()) {
		res := runOnce(sbxConfig(memsim.KNLConfig(), 16, 1), w, 5e6, 0, tinyScale())
		if res.Err != nil {
			t.Errorf("%s: %v", w.Name, res.Err)
		}
		if res.Ingested == 0 {
			t.Errorf("%s: nothing ingested", w.Name)
		}
	}
}

// TestFigPanesShape pins the pane-sharing curve: with shared panes the
// grouping front half is insensitive to the overlap factor, while the
// direct path degrades ~linearly — by 8 windows of overlap the gap is
// most of the overlap factor.
func TestFigPanesShape(t *testing.T) {
	rows := FigPanes(FigPanesConfig{Records: 8_000_000, Overlaps: []int{1, 8}, Cores: 64})
	get := func(config string, overlap int) float64 {
		for _, r := range rows {
			if r.Config == config && r.Overlap == overlap {
				return r.MRecSec
			}
		}
		t.Fatalf("missing row %s overlap=%d", config, overlap)
		return 0
	}
	pane1, direct1 := get("HBM Pane", 1), get("HBM Direct", 1)
	if pane1 < 0.9*direct1 || pane1 > 1.1*direct1 {
		t.Fatalf("overlap 1 must cost the same either way: pane %.1f vs direct %.1f", pane1, direct1)
	}
	pane8, direct8 := get("HBM Pane", 8), get("HBM Direct", 8)
	if pane8 < 4*direct8 {
		t.Fatalf("overlap 8: pane %.1f Mrec/s not >= 4x direct %.1f", pane8, direct8)
	}
	if pane8 < 0.8*pane1 {
		t.Fatalf("pane path must stay ~flat across overlap: %.1f at 1, %.1f at 8", pane1, pane8)
	}
}
