package experiments

import (
	"fmt"
	"io"

	"streambox/internal/memsim"
)

// Fig8Row is one point of Figure 8: one benchmark pipeline's maximum
// throughput and peak HBM bandwidth at one core count.
type Fig8Row struct {
	Bench    string
	Cores    int
	MRecSec  float64
	HBMBWGBs float64
	AvgDelay float64
}

// Fig8 reproduces Figure 8: the nine benchmark pipelines' throughput
// (lines) and peak HBM bandwidth utilization (columns) under the
// 1-second target output delay, with RDMA ingress.
func Fig8(sc Scale, cores []int) []Fig8Row {
	if len(cores) == 0 {
		cores = PaperCores
	}
	knl := memsim.KNLConfig()
	var rows []Fig8Row
	for _, w := range Fig8Workloads() {
		for _, c := range cores {
			res := MaxThroughput(sbxConfig(knl, c, 1), w, knl.RDMABW, sc)
			rows = append(rows, Fig8Row{
				Bench:    w.Name,
				Cores:    c,
				MRecSec:  res.Rate / 1e6,
				HBMBWGBs: res.PeakHBM / 1e9,
				AvgDelay: res.AvgDelay,
			})
		}
	}
	return rows
}

// RenderFig8 prints the nine panels of Figure 8.
func RenderFig8(out io.Writer, rows []Fig8Row) {
	header(out, "Figure 8: throughput and peak HBM bandwidth, 1 s target delay",
		"benchmark", "cores", "Mrec/s", "peak HBM GB/s")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%d\t%.1f\t%.1f\n", r.Bench, r.Cores, r.MRecSec, r.HBMBWGBs)
	}
}
