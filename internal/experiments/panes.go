package experiments

import (
	"fmt"
	"io"

	"streambox/internal/memsim"
)

// FigPanesRow is one point of the sliding-window grouping-front-half
// microbenchmark: pushing one window of records through extraction +
// radix run formation with pane-based sharing versus per-window
// duplication, at one overlap factor on one tier.
type FigPanesRow struct {
	Config  string // "HBM Pane", "HBM Direct", "DRAM Pane", "DRAM Direct"
	Overlap int    // Size/Slide
	MRecSec float64
	GBSec   float64
}

// FigPanesConfig sizes the pane-sharing microbenchmark.
type FigPanesConfig struct {
	// Records per window of event time.
	Records int
	// Overlaps lists the Size/Slide x-axis points.
	Overlaps []int
	// Cores is the simulated core count.
	Cores int
}

// DefaultFigPanes sweeps a 64 M-record window across the paper-scale
// overlap factors on 64 cores.
func DefaultFigPanes() FigPanesConfig {
	return FigPanesConfig{Records: 64_000_000, Overlaps: []int{1, 2, 4, 8, 16}, Cores: 64}
}

// FigPanes is the simulator-side counterpart of the native pane path:
// grouping one window's records with shared panes (each record
// scattered into exactly one pane and radix-sorted once, the sorted
// run referenced by every covering window — memsim.PaneDemand) versus
// the direct path (each record staged and sorted once per overlapping
// window). The direct curve falls off ~linearly with the overlap; the
// pane curve stays flat, which is exactly the state and bandwidth
// headroom that keeps sliding workloads away from DRAM exhaustion.
func FigPanes(cfg FigPanesConfig) []FigPanesRow {
	if cfg.Records == 0 {
		cfg = DefaultFigPanes()
	}
	var rows []FigPanesRow
	for _, tier := range []memsim.Tier{memsim.HBM, memsim.DRAM} {
		for _, strategy := range []string{"Pane", "Direct"} {
			for _, overlap := range cfg.Overlaps {
				elapsed, bytes := runFigPanesPoint(tier, strategy, cfg.Records, overlap, cfg.Cores)
				rows = append(rows, FigPanesRow{
					Config:  fmt.Sprintf("%v %s", tier, strategy),
					Overlap: overlap,
					MRecSec: float64(cfg.Records) / elapsed / 1e6,
					GBSec:   float64(bytes) / elapsed / 1e9,
				})
			}
		}
	}
	return rows
}

// runFigPanesPoint simulates the grouping front half of one window's
// records, returning virtual elapsed time and memory traffic. Each
// record belongs to `overlap` windows, so the direct path forms runs
// over records×overlap pairs; the pane path forms them over each
// record's single pane and charges every window its 1/overlap share.
func runFigPanesPoint(tier memsim.Tier, strategy string, records, overlap, cores int) (float64, int64) {
	machine := memsim.KNLConfig().WithCores(cores)
	sim := memsim.NewSim(machine)
	perCore := records * overlap / cores
	for i := 0; i < cores; i++ {
		d := memsim.RadixSortDemand(tier, perCore)
		if strategy == "Pane" {
			d = memsim.PaneDemand(tier, perCore, overlap)
		}
		sim.Submit(&memsim.Task{Name: "run-formation", Demand: d})
	}
	sim.Run()
	st := sim.Stats()
	return sim.Now(), st.BytesByTier[memsim.HBM] + st.BytesByTier[memsim.DRAM]
}

// RenderFigPanes prints the rows as an overlap-sweep table.
func RenderFigPanes(out io.Writer, rows []FigPanesRow) {
	header(out, "Sliding grouping: pane-based shared runs vs per-window duplication (one window of records)",
		"config", "overlap", "Mrec/s", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%d\t%.1f\t%.1f\n", r.Config, r.Overlap, r.MRecSec, r.GBSec)
	}
}
