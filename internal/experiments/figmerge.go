package experiments

import (
	"fmt"
	"io"

	"streambox/internal/memsim"
)

// FigMergeRow is one point of the window-close microbenchmark: closing
// a window of sorted runs with one strategy/tier at one core count.
type FigMergeRow struct {
	Config    string // "HBM Fused", "DRAM Fused", "HBM Pairwise", "DRAM Pairwise"
	Cores     int
	MPairsSec float64 // million pairs/second through the close
	GBSec     float64 // memory traffic the close generates, GB/s
}

// FigMergeConfig sizes the window-close microbenchmark.
type FigMergeConfig struct {
	// Pairs is the window's total grouped state (across all runs).
	Pairs int
	// Runs is the number of first-level sorted runs the window holds.
	Runs int
	// Cores lists the x-axis points.
	Cores []int
}

// DefaultFigMerge closes a 64 M-pair window of 16 runs on the paper's
// core counts.
func DefaultFigMerge() FigMergeConfig {
	return FigMergeConfig{Pairs: 64_000_000, Runs: 16, Cores: PaperCores}
}

// FigMerge is the simulator-side counterpart of the native fused close
// (paper §4.3, "Parallel Full KPA Merge"): closing one window of R
// sorted runs with the fused range-partitioned k-way merge-reduce (one
// streaming pass per core over its key range, kpa.MergeReduceRange)
// versus the pairwise merge tree (ceil(log2(R)) materializing levels,
// each sliced across all cores, then a separate keyed-reduce sweep).
// The table tracks what the native kernel eliminates: per-level KPA
// traffic and the second reduce pass.
func FigMerge(cfg FigMergeConfig) []FigMergeRow {
	if cfg.Pairs == 0 {
		cfg = DefaultFigMerge()
	}
	var rows []FigMergeRow
	for _, tier := range []memsim.Tier{memsim.HBM, memsim.DRAM} {
		for _, strategy := range []string{"Fused", "Pairwise"} {
			for _, cores := range cfg.Cores {
				elapsed, bytes := runFigMergePoint(tier, strategy, cfg.Pairs, cfg.Runs, cores)
				rows = append(rows, FigMergeRow{
					Config:    fmt.Sprintf("%v %s", tier, strategy),
					Cores:     cores,
					MPairsSec: float64(cfg.Pairs) / elapsed / 1e6,
					GBSec:     float64(bytes) / elapsed / 1e9,
				})
			}
		}
	}
	return rows
}

// runFigMergePoint simulates one window close, returning virtual
// elapsed time and total memory traffic.
func runFigMergePoint(tier memsim.Tier, strategy string, pairs, runs, cores int) (float64, int64) {
	machine := memsim.KNLConfig().WithCores(cores)
	sim := memsim.NewSim(machine)
	switch strategy {
	case "Fused":
		// One fused merge-reduce task per core over its key range; the
		// cut search is negligible against the streaming pass.
		per := pairs / cores
		for i := 0; i < cores; i++ {
			sim.Submit(&memsim.Task{
				Name:   "merge-reduce",
				Demand: memsim.MergeReduceDemand(tier, per, runs),
			})
		}
	case "Pairwise":
		// ceil(log2(runs)) merge levels, each streaming all pairs once
		// (sliced across cores), then the separate reduce sweep.
		levels := 0
		for 1<<levels < runs {
			levels++
		}
		per := pairs / cores
		var schedule func(level int)
		pending := 0
		schedule = func(level int) {
			pending = cores
			done := func(float64) {
				pending--
				if pending == 0 && level+1 <= levels {
					schedule(level + 1)
				}
			}
			for i := 0; i < cores; i++ {
				t := &memsim.Task{OnDone: done}
				if level < levels {
					t.Name = "merge"
					t.Demand = memsim.MergeDemand(tier, per)
				} else {
					t.Name = "reduce"
					t.Demand = memsim.ReduceKeyedDemand(tier, per)
				}
				sim.Submit(t)
			}
		}
		schedule(0)
	}
	sim.Run()
	st := sim.Stats()
	return sim.Now(), st.BytesByTier[memsim.HBM] + st.BytesByTier[memsim.DRAM]
}

// RenderFigMerge prints the rows as a window-close table.
func RenderFigMerge(out io.Writer, rows []FigMergeRow) {
	header(out, "Window close: fused k-way merge-reduce vs pairwise tree (64M-pair window, 16 runs)",
		"config", "cores", "Mpairs/s", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%d\t%.1f\t%.1f\n", r.Config, r.Cores, r.MPairsSec, r.GBSec)
	}
}
