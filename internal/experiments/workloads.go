package experiments

import (
	"streambox/internal/engine"
	"streambox/internal/ingress"
	"streambox/internal/ops"
)

// workload parameters shared by the Fig 8 benchmarks (paper §6: keys
// and values are 64-bit random integers; records have three columns,
// plus a secondary key for benchmarks 8 and 9).
const (
	benchKeys = 10_000
	benchSeed = 42
)

func kvGen(seed int64) engine.Generator {
	return ingress.NewKV(ingress.KVConfig{Keys: benchKeys, Seed: seed})
}

// keyedAggWorkload builds Source -> Window -> KeyedAgg -> Egress.
func keyedAggWorkload(name string, agg func() *ops.KeyedAggOp) Workload {
	return Workload{
		Name: name,
		Build: func(e *engine.Engine) []SourceSlot {
			sink := engine.NewEgressSink(name)
			nodes := e.Chain(&ops.WindowOp{TsCol: 2}, agg(), sink)
			return []SourceSlot{{Gen: kvGen(benchSeed), Entry: nodes[0]}}
		},
	}
}

// TopKPerKey is benchmark 1.
func TopKPerKey() Workload {
	return keyedAggWorkload("TopK Per Key", func() *ops.KeyedAggOp {
		return ops.NewKeyedAgg("topk", 0, 1, ops.TopK(10)).WithReduceCost(2)
	})
}

// WindowedSumPerKey is benchmark 2.
func WindowedSumPerKey() Workload {
	return keyedAggWorkload("Windowed Sum Per Key", func() *ops.KeyedAggOp {
		return ops.NewKeyedAgg("sum", 0, 1, ops.Sum())
	})
}

// WindowedMedianPerKey is benchmark 3.
func WindowedMedianPerKey() Workload {
	return keyedAggWorkload("Windowed Med Per Key", func() *ops.KeyedAggOp {
		return ops.NewKeyedAgg("median", 0, 1, ops.Median()).WithReduceCost(3)
	})
}

// WindowedAvgPerKey is benchmark 4.
func WindowedAvgPerKey() Workload {
	return keyedAggWorkload("Windowed Avg Per Key", func() *ops.KeyedAggOp {
		return ops.NewKeyedAgg("avg", 0, 1, ops.Avg())
	})
}

// WindowedAvgAll is benchmark 5.
func WindowedAvgAll() Workload {
	return Workload{
		Name: "Windowed Average",
		Build: func(e *engine.Engine) []SourceSlot {
			sink := engine.NewEgressSink("avgall")
			nodes := e.Chain(&ops.WindowOp{TsCol: 2}, ops.NewAvgAll(1), sink)
			return []SourceSlot{{Gen: kvGen(benchSeed), Entry: nodes[0]}}
		},
	}
}

// UniqueCountPerKey is benchmark 6.
func UniqueCountPerKey() Workload {
	return keyedAggWorkload("Unique Count Per Key", func() *ops.KeyedAggOp {
		return ops.NewKeyedAgg("unique", 0, 1, ops.UniqueCount()).WithReduceCost(2.5)
	})
}

// TemporalJoin is benchmark 7 (two input streams).
func TemporalJoin() Workload {
	return Workload{
		Name: "Temporal Join",
		Build: func(e *engine.Engine) []SourceSlot {
			winL := e.AddOperator(&ops.WindowOp{TsCol: 2})
			winR := e.AddOperator(&ops.WindowOp{TsCol: 2})
			join := e.AddOperator(ops.NewTemporalJoin(0, 1))
			sink := e.AddOperator(engine.NewEgressSink("join"))
			e.Connect(winL, 0, join, 0)
			e.Connect(winR, 0, join, 1)
			e.Connect(join, 0, sink, 0)
			return []SourceSlot{
				{Gen: kvGen(benchSeed), Entry: winL},
				{Gen: kvGen(benchSeed + 1), Entry: winR},
			}
		},
	}
}

// WindowedFilter is benchmark 8 (two input streams, secondary keys).
func WindowedFilter() Workload {
	return Workload{
		Name: "Windowed Filter",
		Build: func(e *engine.Engine) []SourceSlot {
			winC := e.AddOperator(&ops.WindowOp{TsCol: 2})
			winD := e.AddOperator(&ops.WindowOp{TsCol: 2})
			wf := e.AddOperator(ops.NewWindowedFilter(1))
			sink := e.AddOperator(engine.NewEgressSink("winfilter"))
			e.Connect(winC, 0, wf, 0)
			e.Connect(winD, 0, wf, 1)
			e.Connect(wf, 0, sink, 0)
			gen := func(seed int64) engine.Generator {
				return ingress.NewKV(ingress.KVConfig{Keys: benchKeys, Seed: seed, SecondaryKeys: 64})
			}
			return []SourceSlot{
				{Gen: gen(benchSeed), Entry: winC},
				{Gen: gen(benchSeed + 1), Entry: winD},
			}
		},
	}
}

// PowerGrid is benchmark 9.
func PowerGrid() Workload {
	return Workload{
		Name: "Power Grid",
		Build: func(e *engine.Engine) []SourceSlot {
			sink := engine.NewEgressSink("powergrid")
			nodes := e.Chain(&ops.WindowOp{TsCol: 2}, ops.NewPowerGrid(), sink)
			return []SourceSlot{{Gen: ingress.NewPowerGrid(ingress.PowerGridConfig{Seed: benchSeed}), Entry: nodes[0]}}
		},
	}
}

// Fig8Workloads returns the nine benchmark pipelines in figure order.
func Fig8Workloads() []Workload {
	return []Workload{
		TopKPerKey(),
		WindowedSumPerKey(),
		WindowedMedianPerKey(),
		WindowedAvgPerKey(),
		WindowedAvgAll(),
		UniqueCountPerKey(),
		TemporalJoin(),
		WindowedFilter(),
		PowerGrid(),
	}
}

// YSBWorkload is the Yahoo streaming benchmark on StreamBox-HBM
// (Figure 1a: Filter -> Projection -> External Join -> Window -> Count).
func YSBWorkload() Workload {
	return Workload{
		Name: "YSB",
		Build: func(e *engine.Engine) []SourceSlot {
			gen := ingress.NewYSB(ingress.YSBConfig{Seed: benchSeed})
			filter := &ops.FilterOp{Label: "views", Col: ingress.YSBEventType,
				Keep: func(v uint64) bool { return v == ingress.YSBEventView }}
			proj := &ops.ProjectOp{Cols: []int{ingress.YSBAdID, ingress.YSBEventTime}}
			ext := &ops.ExternalJoinOp{Label: "campaign", KeyCol: ingress.YSBAdID, Table: gen.CampaignTable()}
			win := &ops.WindowOp{TsCol: ingress.YSBEventTime}
			count := ops.NewKeyedAgg("campaigns", ingress.YSBAdID, ingress.YSBAdID, ops.Count())
			sink := engine.NewEgressSink("ysb")
			nodes := e.Chain(filter, proj, ext, win, count, sink)
			return []SourceSlot{{Gen: gen, Entry: nodes[0]}}
		},
	}
}

// YSBFlinkWorkload is the Flink-like baseline on the same stream.
func YSBFlinkWorkload() Workload {
	return Workload{
		Name: "YSB-Flink",
		Build: func(e *engine.Engine) []SourceSlot {
			gen := ingress.NewYSB(ingress.YSBConfig{Seed: benchSeed})
			op := newFlinkYSBOp(gen)
			sink := engine.NewEgressSink("ysb-flink")
			nodes := e.Chain(op, sink)
			return []SourceSlot{{Gen: gen, Entry: nodes[0]}}
		},
	}
}
