package experiments

import (
	"fmt"
	"io"

	"streambox/internal/baseline"
	"streambox/internal/engine"
	"streambox/internal/ingress"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// newFlinkYSBOp builds the baseline's fused YSB stage.
func newFlinkYSBOp(gen *ingress.YSBGen) engine.Operator {
	return baseline.NewHashWindowCount(ingress.YSBEventType, ingress.YSBAdID,
		ingress.YSBEventTime, ingress.YSBEventView, gen.CampaignTable())
}

// Fig7Row is one point of Figure 7: YSB throughput and peak HBM
// bandwidth for one system at one core count.
type Fig7Row struct {
	System   string
	Cores    int
	MRecSec  float64
	HBMBWGBs float64
	AvgDelay float64
}

// Fig7Systems names the four lines of Figure 7.
var Fig7Systems = []string{
	"StreamBox-HBM KNL RDMA",
	"StreamBox-HBM KNL 10GbE",
	"Flink KNL 10GbE",
	"Flink X56 10GbE",
}

// Fig7 reproduces Figure 7: YSB input throughput under the 1-second
// target delay, and peak HBM bandwidth, across core counts, for
// StreamBox-HBM (RDMA and 10 GbE ingress) and the Flink-like baseline
// (KNL and X56).
func Fig7(sc Scale, cores []int) []Fig7Row {
	if len(cores) == 0 {
		cores = PaperCores
	}
	knl := memsim.KNLConfig()
	x56 := memsim.X56Config()
	var rows []Fig7Row
	for _, system := range Fig7Systems {
		for _, c := range cores {
			var cfg engine.Config
			var w Workload
			var nic float64
			switch system {
			case "StreamBox-HBM KNL RDMA":
				cfg, w, nic = sbxConfig(knl, c, 1), YSBWorkload(), knl.RDMABW
			case "StreamBox-HBM KNL 10GbE":
				cfg, w, nic = sbxConfig(knl, c, 1), YSBWorkload(), knl.EthBW
			case "Flink KNL 10GbE":
				cfg = baseline.FlinkConfig(knl.WithCores(c), wm.Fixed(WindowSize))
				w, nic = YSBFlinkWorkload(), knl.EthBW
			case "Flink X56 10GbE":
				if c > x56.Cores {
					continue
				}
				cfg = baseline.FlinkConfig(x56.WithCores(c), wm.Fixed(WindowSize))
				w, nic = YSBFlinkWorkload(), x56.EthBW
			}
			res := MaxThroughput(cfg, w, nic, sc)
			rows = append(rows, Fig7Row{
				System:   system,
				Cores:    c,
				MRecSec:  res.Rate / 1e6,
				HBMBWGBs: res.PeakHBM / 1e9,
				AvgDelay: res.AvgDelay,
			})
		}
	}
	return rows
}

// RenderFig7 prints both panels of Figure 7.
func RenderFig7(out io.Writer, rows []Fig7Row) {
	header(out, "Figure 7: YSB throughput under 1 s target delay",
		"system", "cores", "Mrec/s", "peak HBM GB/s", "avg delay s")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%d\t%.1f\t%.1f\t%.3f\n", r.System, r.Cores, r.MRecSec, r.HBMBWGBs, r.AvgDelay)
	}
}

// Fig7PerCoreRatio computes the §7.1 headline: StreamBox-HBM's 10GbE
// per-core throughput at its I/O-saturating core count versus Flink
// KNL's per-core throughput at its best core count.
func Fig7PerCoreRatio(rows []Fig7Row) float64 {
	best := func(system string) (rate float64, perCore float64) {
		for _, r := range rows {
			if r.System != system {
				continue
			}
			if r.MRecSec > rate {
				rate = r.MRecSec
			}
		}
		// Per-core at the smallest core count achieving >= 95% of best.
		bestPer := 0.0
		for _, r := range rows {
			if r.System == system && r.MRecSec >= 0.95*rate {
				if pc := r.MRecSec / float64(r.Cores); pc > bestPer {
					bestPer = pc
				}
			}
		}
		return rate, bestPer
	}
	_, sbx := best("StreamBox-HBM KNL 10GbE")
	_, flink := best("Flink KNL 10GbE")
	if flink == 0 {
		return 0
	}
	return sbx / flink
}
