package experiments

import (
	"fmt"
	"io"

	"streambox/internal/memsim"
)

// Fig2Row is one point of Figure 2: GroupBy throughput and memory
// bandwidth for one algorithm/tier at one core count.
type Fig2Row struct {
	Config    string // "HBM Sort", "DRAM Sort", "HBM Hash", "DRAM Hash"
	Cores     int
	MPairsSec float64 // million pairs/second
	GBSec     float64 // sustained memory bandwidth, GB/s
}

// Fig2Config sizes the GroupBy microbenchmark.
type Fig2Config struct {
	// Pairs is the input size (paper: 100 M key/value pairs).
	Pairs int
	// Cores lists the x-axis points.
	Cores []int
}

// DefaultFig2 matches the paper: 100 M pairs, cores {2,16,32,48,64}.
func DefaultFig2() Fig2Config {
	return Fig2Config{Pairs: 100_000_000, Cores: PaperCores}
}

// Fig2 reproduces Figure 2: sort-based versus hash-based GroupBy on HBM
// and DRAM across core counts, on the simulated KNL. Sort follows the
// paper's structure — per-core chunk sorts, then iterative pairwise
// merge passes sliced across all cores; Hash partitions then inserts
// into a pre-allocated open-addressing table.
func Fig2(cfg Fig2Config) []Fig2Row {
	if cfg.Pairs == 0 {
		cfg = DefaultFig2()
	}
	var rows []Fig2Row
	for _, tier := range []memsim.Tier{memsim.HBM, memsim.DRAM} {
		for _, alg := range []string{"Sort", "Hash"} {
			for _, cores := range cfg.Cores {
				elapsed, bytes := runFig2Point(tier, alg, cfg.Pairs, cores)
				name := fmt.Sprintf("%v %s", tier, alg)
				rows = append(rows, Fig2Row{
					Config:    name,
					Cores:     cores,
					MPairsSec: float64(cfg.Pairs) / elapsed / 1e6,
					GBSec:     float64(bytes) / elapsed / 1e9,
				})
			}
		}
	}
	return rows
}

// runFig2Point simulates one GroupBy at one core count, returning the
// virtual elapsed time and total memory traffic.
func runFig2Point(tier memsim.Tier, alg string, pairs, cores int) (float64, int64) {
	machine := memsim.KNLConfig().WithCores(cores)
	sim := memsim.NewSim(machine)
	switch alg {
	case "Sort":
		scheduleParallelSort(sim, tier, pairs, cores)
	case "Hash":
		// Partition + insert, one task per core over its share.
		per := pairs / cores
		for i := 0; i < cores; i++ {
			sim.Submit(&memsim.Task{
				Name:   "hash",
				Demand: memsim.HashGroupDemand(tier, per),
			})
		}
	}
	sim.Run()
	st := sim.Stats()
	return sim.Now(), st.BytesByTier[memsim.HBM] + st.BytesByTier[memsim.DRAM]
}

// scheduleParallelSort builds the paper's §4.2 sort task graph: N
// first-level runs formed with the radix kernel (Table 2's
// bandwidth-proportional partition sort, algo.RadixSortPairs), then
// log2(N) pairwise merge passes, each pass sliced across all cores at
// key boundaries.
func scheduleParallelSort(sim *memsim.Sim, tier memsim.Tier, pairs, cores int) {
	chunk := pairs / cores
	var runMergePass func(level, runs int)
	pending := 0
	done := func(level, runs int) func(float64) {
		return func(float64) {
			pending--
			if pending == 0 && runs > 1 {
				runMergePass(level+1, (runs+1)/2)
			}
		}
	}
	runMergePass = func(level, runs int) {
		// A pass streams all pairs once; sliced across all cores.
		per := pairs / cores
		pending = cores
		for i := 0; i < cores; i++ {
			sim.Submit(&memsim.Task{
				Name:   "merge",
				Demand: memsim.MergeDemand(tier, per),
				OnDone: done(level, runs),
			})
		}
	}
	pending = cores
	for i := 0; i < cores; i++ {
		sim.Submit(&memsim.Task{
			Name:   "radixsort",
			Demand: memsim.RadixSortDemand(tier, chunk),
			OnDone: done(0, cores),
		})
	}
}

// RenderFig2 prints the rows as the two panels of Figure 2.
func RenderFig2(out io.Writer, rows []Fig2Row) {
	header(out, "Figure 2: GroupBy on HBM and DRAM (100M pairs)",
		"config", "cores", "Mpairs/s", "GB/s")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%d\t%.1f\t%.1f\n", r.Config, r.Cores, r.MPairsSec, r.GBSec)
	}
}
