package experiments

import (
	"fmt"
	"io"

	"streambox/internal/engine"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// Fig10Row is one point of Figure 10: resource usage while the knob
// balances demand under one workload condition.
type Fig10Row struct {
	// X is the swept variable: ingestion rate in M rec/s (panel a) or
	// bundles between adjacent watermarks (panel b).
	X float64
	// DRAM bandwidth usage, GB/s.
	PeakDRAMBW float64
	AvgDRAMBW  float64
	// HBM capacity usage, GB.
	PeakHBMGB float64
	AvgHBMGB  float64
	// Final knob state.
	KLow, KHigh float64
}

// fig10Run executes TopK Per Key at a fixed offered rate with the
// monitor time series enabled and summarises resource usage after a
// warmup.
func fig10Run(sc Scale, rate float64, wmEvery int) Fig10Row {
	knl := memsim.KNLConfig()
	// Scale HBM capacity with the window size so the capacity:state
	// ratio matches the paper's operating zone. The paper's absolute
	// GB figures include allocator pooling effects we do not model;
	// what Figure 10 demonstrates is the knob's response once live KPA
	// state presses HBM capacity, which this scaling preserves.
	knl.Tiers[memsim.HBM].Capacity = 6 * sc.WindowRecords * 16
	cfg := sbxConfig(knl, knl.Cores, 1)
	cfg.Win = wm.Fixed(WindowSize)
	cfg.TargetDelaySec = TargetDelay
	cfg.RecordWeight = sc.Specimen
	cfg.RecordSeries = true
	cfg.ReservedHBM = knl.Tiers[memsim.HBM].Capacity / 16
	e, err := engine.New(cfg)
	if err != nil {
		return Fig10Row{}
	}
	w := TopKPerKey()
	slots := w.Build(e)
	scfg := srcConfig(w.Name, rate, knl.RDMABW, len(slots), sc)
	if wmEvery > 0 {
		scfg.WatermarkEvery = wmEvery
	}
	if _, err := e.AddSource(slots[0].Gen, scfg, slots[0].Entry, slots[0].Port); err != nil {
		return Fig10Row{}
	}
	// Run long enough to observe several watermark cycles even when
	// watermarks are spaced multiple windows apart (panel b).
	duration := sc.Duration * 2
	wmInterval := float64(scfg.WatermarkEvery) * float64(sc.BundleRecords) / rate
	if min := 5 * wmInterval; min > duration {
		duration = min
	}
	stats, _ := e.Run(duration)
	row := Fig10Row{KLow: e.Knob().KLow, KHigh: e.Knob().KHigh}
	warmup := duration / 4
	n := 0
	for _, s := range stats.Series {
		if s.T < warmup {
			continue
		}
		n++
		row.AvgDRAMBW += s.DRAMBW
		row.AvgHBMGB += float64(s.HBMBytes)
		if s.DRAMBW > row.PeakDRAMBW {
			row.PeakDRAMBW = s.DRAMBW
		}
		if gb := float64(s.HBMBytes); gb > row.PeakHBMGB {
			row.PeakHBMGB = gb
		}
	}
	if n > 0 {
		row.AvgDRAMBW /= float64(n)
		row.AvgHBMGB /= float64(n)
	}
	row.PeakDRAMBW /= 1e9
	row.AvgDRAMBW /= 1e9
	row.PeakHBMGB /= float64(1 << 30)
	row.AvgHBMGB /= float64(1 << 30)
	return row
}

// Fig10a reproduces Figure 10a: increasing the ingestion rate
// (20..60 M rec/s) raises HBM capacity pressure; the knob shifts new
// KPAs to DRAM, raising DRAM bandwidth usage without saturating it.
func Fig10a(sc Scale, ratesMRec []float64) []Fig10Row {
	if len(ratesMRec) == 0 {
		ratesMRec = []float64{20, 30, 40, 50, 60}
	}
	var rows []Fig10Row
	for _, r := range ratesMRec {
		row := fig10Run(sc, r*1e6, 0)
		row.X = r
		rows = append(rows, row)
	}
	return rows
}

// Fig10b reproduces Figure 10b: spacing watermarks farther apart
// (100..300 bundles) extends KPA lifespans in HBM; the knob responds by
// allocating more KPAs on DRAM.
func Fig10b(sc Scale, bundlesBetweenWM []int) []Fig10Row {
	if len(bundlesBetweenWM) == 0 {
		bundlesBetweenWM = []int{100, 150, 200, 250, 300}
	}
	base := int(sc.WindowRecords / sc.BundleRecords) // bundles per window
	var rows []Fig10Row
	for _, b := range bundlesBetweenWM {
		// Scale the paper's 100-bundle baseline (= one window) to this
		// Scale's bundles-per-window.
		every := b * base / 100
		if every < 1 {
			every = 1
		}
		row := fig10Run(sc, 30e6, every)
		row.X = float64(b)
		rows = append(rows, row)
	}
	return rows
}

// RenderFig10 prints one panel.
func RenderFig10(out io.Writer, title, xlabel string, rows []Fig10Row) {
	header(out, title, xlabel, "peak DRAM GB/s", "avg DRAM GB/s", "peak HBM GB", "avg HBM GB", "k_low", "k_high")
	for _, r := range rows {
		fmt.Fprintf(out, "%.0f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.X, r.PeakDRAMBW, r.AvgDRAMBW, r.PeakHBMGB, r.AvgHBMGB, r.KLow, r.KHigh)
	}
}
