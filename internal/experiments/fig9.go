package experiments

import (
	"fmt"
	"io"

	"streambox/internal/baseline"
	"streambox/internal/engine"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// Fig9Row is one point of Figure 9: TopK Per Key throughput for one
// engine variant at one core count.
type Fig9Row struct {
	Variant string
	Cores   int
	MRecSec float64
}

// Fig9Variants names the four lines of Figure 9.
var Fig9Variants = []string{
	"StreamBox-HBM",
	"StreamBox-HBM Caching",
	"StreamBox-HBM DRAM",
	"StreamBox-HBM Caching NoKPA",
}

// Fig9 reproduces Figure 9: the placement/KPA ablations on TopK Per
// Key — software-managed hybrid memory versus hardware cache mode,
// DRAM-only, and cache mode without KPA extraction.
func Fig9(sc Scale, cores []int) []Fig9Row {
	if len(cores) == 0 {
		cores = PaperCores
	}
	knl := memsim.KNLConfig()
	win := wm.Fixed(WindowSize)
	w := TopKPerKey()
	var rows []Fig9Row
	for _, variant := range Fig9Variants {
		for _, c := range cores {
			var cfg engine.Config
			m := knl.WithCores(c)
			switch variant {
			case "StreamBox-HBM":
				cfg = sbxConfig(knl, c, 1)
			case "StreamBox-HBM Caching":
				cfg = baseline.CachingConfig(m, win)
			case "StreamBox-HBM DRAM":
				cfg = baseline.DRAMOnlyConfig(m, win)
			case "StreamBox-HBM Caching NoKPA":
				cfg = baseline.CachingNoKPAConfig(m, win)
			}
			res := MaxThroughput(cfg, w, knl.RDMABW, sc)
			rows = append(rows, Fig9Row{Variant: variant, Cores: c, MRecSec: res.Rate / 1e6})
		}
	}
	return rows
}

// RenderFig9 prints Figure 9.
func RenderFig9(out io.Writer, rows []Fig9Row) {
	header(out, "Figure 9: TopK Per Key under placement/KPA ablations",
		"variant", "cores", "Mrec/s")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%d\t%.1f\n", r.Variant, r.Cores, r.MRecSec)
	}
}

// Fig9Ratios summarises the §7.3 headline claims, each taken as the
// worst (largest) gap across core counts, matching the paper's "up to"
// phrasing: DRAM-only loss, caching loss, and the NoKPA factor.
func Fig9Ratios(rows []Fig9Row) (dramLoss, cachingLoss, noKPAFactor float64) {
	at := map[string]map[int]float64{}
	for _, r := range rows {
		if at[r.Variant] == nil {
			at[r.Variant] = map[int]float64{}
		}
		at[r.Variant][r.Cores] = r.MRecSec
	}
	for cores, full := range at["StreamBox-HBM"] {
		if full <= 0 {
			continue
		}
		if v, ok := at["StreamBox-HBM DRAM"][cores]; ok && v > 0 {
			if loss := 1 - v/full; loss > dramLoss {
				dramLoss = loss
			}
		}
		if v, ok := at["StreamBox-HBM Caching"][cores]; ok && v > 0 {
			if loss := 1 - v/full; loss > cachingLoss {
				cachingLoss = loss
			}
		}
		if v, ok := at["StreamBox-HBM Caching NoKPA"][cores]; ok && v > 0 {
			if f := full / v; f > noKPAFactor {
				noKPAFactor = f
			}
		}
	}
	return dramLoss, cachingLoss, noKPAFactor
}
