package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"streambox/internal/parsefmt"
)

// Fig11Row is one bar of Figure 11: projected all-core parsing
// throughput for one format on one machine, and its ratio to the
// engine's throughput over already-parsed data.
type Fig11Row struct {
	Format  string
	Machine string
	MRecSec float64
	// RatioToEngine is parse throughput / engine throughput (KNL only;
	// 0 when unknown).
	RatioToEngine float64
}

// Fig11 reproduces Figure 11: parse throughput of JSON, protobuf-style
// binary and text encodings of YSB records, measured for real on the
// host and projected to KNL (64 cores) and X56 (56 cores).
// engineMRecKNL is StreamBox-HBM's YSB throughput over parsed data (the
// dashed line of the figure), typically Fig7's KNL-RDMA result.
func Fig11(engineMRecKNL float64) []Fig11Row {
	recs := sampleYSBRecords(20_000)
	var rows []Fig11Row
	for _, f := range []parsefmt.Format{parsefmt.JSON, parsefmt.PB, parsefmt.Text} {
		data := parsefmt.Encode(f, recs)
		perCoreHost := measureParseFn(f, data, len(recs))
		knl := perCoreHost * parsefmt.KNLParseScale * 64
		x56 := perCoreHost * parsefmt.X56ParseScale * 56
		knlRow := Fig11Row{Format: f.String(), Machine: "KNL", MRecSec: knl / 1e6}
		if engineMRecKNL > 0 {
			knlRow.RatioToEngine = (knl / 1e6) / engineMRecKNL
		}
		rows = append(rows, knlRow)
		rows = append(rows, Fig11Row{Format: f.String(), Machine: "X56", MRecSec: x56 / 1e6})
	}
	return rows
}

// sampleYSBRecords builds a deterministic record sample.
func sampleYSBRecords(n int) []parsefmt.Record {
	r := rand.New(rand.NewSource(11))
	out := make([]parsefmt.Record, n)
	for i := range out {
		out[i] = parsefmt.Record{
			AdID:      r.Uint64() % 1000,
			AdType:    r.Uint64() % 5,
			EventType: r.Uint64() % 3,
			UserID:    r.Uint64() % 100000,
			PageID:    r.Uint64() % 1000,
			IP:        r.Uint64(),
			EventTime: r.Uint64() % 1_000_000,
		}
	}
	return out
}

// measureParseFn indirects the wall-clock rate measurement so tests
// can substitute deterministic per-format rates: the shapes worth
// pinning (format ordering, machine projection) live in the plumbing
// around the measurement, not in the host's scheduler.
var measureParseFn = measureParse

// measureParse returns the host's single-core parse rate in records/s,
// timing repeated decodes for at least 100 ms.
func measureParse(f parsefmt.Format, data []byte, recs int) float64 {
	start := time.Now()
	iters := 0
	for time.Since(start) < 100*time.Millisecond {
		if _, err := parsefmt.Decode(f, data); err != nil {
			panic(err)
		}
		iters++
	}
	elapsed := time.Since(start).Seconds()
	return float64(recs*iters) / elapsed
}

// RenderFig11 prints Figure 11.
func RenderFig11(out io.Writer, rows []Fig11Row) {
	header(out, "Figure 11: YSB parsing throughput at ingestion (projected, all cores)",
		"format", "machine", "Mrec/s", "x engine tput")
	for _, r := range rows {
		if r.RatioToEngine > 0 {
			fmt.Fprintf(out, "%s\t%s\t%.1f\t%.2fx\n", r.Format, r.Machine, r.MRecSec, r.RatioToEngine)
		} else {
			fmt.Fprintf(out, "%s\t%s\t%.1f\t-\n", r.Format, r.Machine, r.MRecSec)
		}
	}
}
