// Package experiments regenerates every figure of the paper's
// evaluation (§7): Fig 2 (GroupBy sort vs hash on HBM vs DRAM), Fig 7
// (YSB vs Flink), Fig 8 (nine benchmark pipelines), Fig 9 (placement
// ablations), Fig 10 (dynamic demand balancing) and Fig 11 (ingestion
// parsing formats). Each FigN function returns typed rows and can
// render a table in the shape the paper reports.
package experiments

import (
	"fmt"
	"io"
	"math"

	"streambox/internal/engine"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// PaperCores are the x-axis core counts of Figures 2 and 7-9.
var PaperCores = []int{2, 16, 32, 48, 64}

// Scale controls experiment fidelity versus wall-clock cost through
// specimen scaling (engine.Config.RecordWeight).
type Scale struct {
	// WindowRecords is the virtual records per window (paper: 10 M).
	WindowRecords int64
	// BundleRecords is the virtual records per ingested bundle.
	BundleRecords int64
	// Specimen is the record weight: real records per virtual record.
	Specimen int64
	// Duration is the virtual run length per probe, seconds.
	Duration float64
	// SearchIters bounds the max-throughput bisection.
	SearchIters int
}

// PaperScale approximates the paper's workload sizes (10 M-record
// windows) with 1:1000 specimen scaling.
func PaperScale() Scale {
	return Scale{
		WindowRecords: 10_000_000,
		BundleRecords: 100_000,
		Specimen:      1000,
		Duration:      0.35,
		SearchIters:   5,
	}
}

// QuickScale is a fast smoke-test scale for unit tests and -short runs.
func QuickScale() Scale {
	return Scale{
		WindowRecords: 1_000_000,
		BundleRecords: 50_000,
		Specimen:      500,
		Duration:      0.25,
		SearchIters:   3,
	}
}

// WindowSize is the event-time window span (1 virtual second).
const WindowSize wm.Time = 1_000_000

// TargetDelay is the output-delay objective (paper: 1 second).
const TargetDelay = 1.0

// SourceSlot names one ingress attachment point of a workload.
type SourceSlot struct {
	Gen   engine.Generator
	Entry *engine.Node
	Port  int
}

// Workload wires a pipeline into an engine and reports where sources
// attach.
type Workload struct {
	Name  string
	Build func(e *engine.Engine) []SourceSlot
}

// srcConfig builds the per-source configuration for an offered total
// rate split across nsrc sources.
func srcConfig(name string, rate, nic float64, nsrc int, sc Scale) engine.SourceConfig {
	return engine.SourceConfig{
		Name:           name,
		Rate:           rate / float64(nsrc),
		NICBandwidth:   nic / float64(nsrc),
		BundleRecords:  int(sc.BundleRecords / sc.Specimen),
		WindowRecords:  int(sc.WindowRecords),
		WatermarkEvery: int(sc.WindowRecords / sc.BundleRecords),
	}
}

// RunResult summarises one engine run.
type RunResult struct {
	Rate      float64 // offered records/s
	Ingested  int64
	AvgDelay  float64
	MaxDelay  float64
	PeakHBM   float64 // bytes/s
	PeakDRAM  float64 // bytes/s
	Windows   int
	Sustained bool
	Err       error
}

// runOnce executes workload w at the offered rate on cfg's machine.
// The virtual duration stretches at low rates so at least four windows
// close per probe (wall-clock cost stays constant: records processed =
// rate x duration).
func runOnce(cfg engine.Config, w Workload, rate, nic float64, sc Scale) RunResult {
	cfg.Win = wm.Fixed(WindowSize)
	cfg.TargetDelaySec = TargetDelay
	cfg.RecordWeight = sc.Specimen
	e, err := engine.New(cfg)
	if err != nil {
		return RunResult{Err: err}
	}
	slots := w.Build(e)
	for i, s := range slots {
		scfg := srcConfig(fmt.Sprintf("%s-%d", w.Name, i), rate, nic, len(slots), sc)
		if _, err := e.AddSource(s.Gen, scfg, s.Entry, s.Port); err != nil {
			return RunResult{Err: err}
		}
	}
	// Each source runs at rate/nsrc and fills its windows accordingly:
	// stretch the run so at least four windows close per source.
	duration := sc.Duration
	if min := 4 * float64(sc.WindowRecords) * float64(len(slots)) / rate; min > duration {
		duration = min
	}
	stats, err := e.Run(duration)
	res := RunResult{
		Rate:     rate,
		Ingested: stats.IngestedRecords,
		AvgDelay: stats.AvgDelay(),
		MaxDelay: stats.MaxDelay(),
		PeakHBM:  e.Sim.PeakBW(memsim.HBM),
		PeakDRAM: e.Sim.PeakBW(memsim.DRAM),
		Windows:  stats.WindowsClosed,
		Err:      err,
	}
	// Sustained: windows close on time and ingestion kept up with the
	// offered rate (no back-pressure collapse).
	offered := rate * duration
	res.Sustained = err == nil &&
		res.Windows >= 2 &&
		res.AvgDelay <= TargetDelay &&
		res.MaxDelay <= 2*TargetDelay &&
		float64(res.Ingested) >= 0.93*offered
	return res
}

// MaxThroughput searches for the highest offered rate the
// configuration sustains under the target delay (the quantity Figures
// 7-9 plot). Returns the best sustained run.
func MaxThroughput(cfg engine.Config, w Workload, nic float64, sc Scale) RunResult {
	lo := 1e6
	loRes := runOnce(cfg, w, lo, nic, sc)
	if !loRes.Sustained {
		return loRes // cannot sustain even 1 M rec/s
	}
	hi := lo
	var hiRes RunResult
	for i := 0; i < 12; i++ {
		hi *= 2
		hiRes = runOnce(cfg, w, hi, nic, sc)
		if !hiRes.Sustained {
			break
		}
		lo, loRes = hi, hiRes
		if hi > 1e9 {
			return loRes
		}
	}
	for i := 0; i < sc.SearchIters; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection
		midRes := runOnce(cfg, w, mid, nic, sc)
		if midRes.Sustained {
			lo, loRes = mid, midRes
		} else {
			hi = mid
		}
	}
	return loRes
}

// sbxConfig is the StreamBox-HBM engine configuration on a machine
// restricted to the given cores.
func sbxConfig(machine memsim.Config, cores int, seed int64) engine.Config {
	return engine.Config{
		Machine: machine.WithCores(cores),
		UseKPA:  true,
		Seed:    seed,
	}
}

// header prints a table header line.
func header(out io.Writer, title string, cols ...string) {
	fmt.Fprintf(out, "\n%s\n", title)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(out, "\t")
		}
		fmt.Fprint(out, c)
	}
	fmt.Fprintln(out)
}
