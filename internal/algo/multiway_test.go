package algo

import (
	"math/rand"
	"testing"
)

// randomRuns builds n sorted runs of random lengths with keys drawn
// from a domain small enough to force heavy duplication.
func randomRuns(r *rand.Rand, n, maxLen int, keyDomain uint64) [][]Pair {
	runs := make([][]Pair, n)
	ptr := uint64(0)
	for j := range runs {
		run := make([]Pair, r.Intn(maxLen+1))
		for i := range run {
			run[i] = Pair{Key: r.Uint64() % keyDomain, Ptr: ptr}
			ptr++
		}
		SortPairs(run)
		runs[j] = run
	}
	return runs
}

// TestMultiMergeVisitOrder checks the visitor sequence is the full
// sorted multiset of the inputs, with ties ordered by run index.
func TestMultiMergeVisitOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, k := range []int{0, 1, 2, 3, 5, 16, 33} {
		runs := randomRuns(r, k, 2000, 64)
		total := 0
		for _, run := range runs {
			total += len(run)
		}
		var got []Pair
		var gotRun []int
		MultiMergeVisit(runs, func(run int, p Pair) {
			got = append(got, p)
			gotRun = append(gotRun, run)
		})
		if len(got) != total {
			t.Fatalf("k=%d: visited %d pairs, want %d", k, len(got), total)
		}
		if !PairsSorted(got) {
			t.Fatalf("k=%d: visit order not sorted by key", k)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Key == got[i-1].Key && gotRun[i] < gotRun[i-1] {
				t.Fatalf("k=%d: tie at key %d visited run %d after run %d",
					k, got[i].Key, gotRun[i-1], gotRun[i])
			}
		}
		// The multiset must match: every input pair appears exactly once
		// (pointers are unique across the runs by construction).
		seen := make(map[uint64]bool, total)
		for _, p := range got {
			if seen[p.Ptr] {
				t.Fatalf("k=%d: pair %d visited twice", k, p.Ptr)
			}
			seen[p.Ptr] = true
		}
	}
}

// TestMultiMergeVisitMatchesPairwise pins the visitor sequence
// bit-for-bit against the levelwise pairwise merge (MultiMerge), the
// order the old merge tree materialized.
func TestMultiMergeVisitMatchesPairwise(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 4, 8, 16} {
		runs := randomRuns(r, k, 500, 16)
		want := MultiMerge(runs)
		var got []Pair
		MultiMergeVisit(runs, func(_ int, p Pair) { got = append(got, p) })
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d pairs, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: pair %d = %+v, pairwise merge has %+v", k, i, got[i], want[i])
			}
		}
	}
}

// TestMultiWayCuts checks cut vectors are monotone, key-aligned and
// roughly balanced across run counts and key skews.
func TestMultiWayCuts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 2, 3, 16, 33} {
		for _, domain := range []uint64{2, 64, 1 << 40} {
			runs := randomRuns(r, k, 3000, domain)
			total := 0
			for _, run := range runs {
				total += len(run)
			}
			const p = 7
			cuts := MultiWayCuts(runs, p)
			if len(cuts) < 2 {
				t.Fatalf("k=%d: %d cut vectors, want >= 2", k, len(cuts))
			}
			if len(cuts) > p+1 {
				t.Fatalf("k=%d: %d cut vectors for %d partitions", k, len(cuts), p)
			}
			first, last := cuts[0], cuts[len(cuts)-1]
			for j, run := range runs {
				if first[j] != 0 || last[j] != len(run) {
					t.Fatalf("k=%d run %d: boundary cursors [%d,%d], want [0,%d]",
						k, j, first[j], last[j], len(run))
				}
			}
			covered := 0
			for i := 0; i+1 < len(cuts); i++ {
				lo, hi := cuts[i], cuts[i+1]
				width := 0
				for j := range runs {
					if hi[j] < lo[j] {
						t.Fatalf("k=%d: cut %d run %d not monotone (%d > %d)", k, i, j, lo[j], hi[j])
					}
					width += hi[j] - lo[j]
				}
				if width == 0 && total > 0 {
					t.Fatalf("k=%d: empty partition %d survived dedup", k, i)
				}
				covered += width
				// Key alignment: the largest key of this partition must be
				// strictly below the smallest key of the next.
				if i+2 < len(cuts) {
					var maxHere uint64
					var minNext = ^uint64(0)
					for j, run := range runs {
						if hi[j] > lo[j] && run[hi[j]-1].Key > maxHere {
							maxHere = run[hi[j]-1].Key
						}
						if hi[j] < cuts[i+2][j] && run[hi[j]].Key < minNext {
							minNext = run[hi[j]].Key
						}
					}
					if maxHere >= minNext {
						t.Fatalf("k=%d domain=%d: key %d spans partition boundary %d", k, domain, maxHere, i)
					}
				}
			}
			if covered != total {
				t.Fatalf("k=%d: partitions cover %d pairs, want %d", k, covered, total)
			}
			// Balance: with a wide key domain no partition should exceed
			// ~2x the ideal share.
			if domain > uint64(4*total) && total > 1000 {
				ideal := total / p
				for i := 0; i+1 < len(cuts); i++ {
					width := 0
					for j := range runs {
						width += cuts[i+1][j] - cuts[i][j]
					}
					if width > 2*ideal+1 {
						t.Fatalf("k=%d: partition %d holds %d of %d pairs (ideal %d)",
							k, i, width, total, ideal)
					}
				}
			}
		}
	}
}

// TestMultiWayCutsDegenerate covers empty inputs and single-key skew.
func TestMultiWayCutsDegenerate(t *testing.T) {
	cuts := MultiWayCuts(nil, 4)
	if len(cuts) != 2 {
		t.Fatalf("no runs: %d cut vectors, want 2", len(cuts))
	}
	// All pairs share one key: alignment forces a single partition.
	run := make([]Pair, 100)
	for i := range run {
		run[i] = Pair{Key: 7, Ptr: uint64(i)}
	}
	cuts = MultiWayCuts([][]Pair{run}, 8)
	if len(cuts) != 2 {
		t.Fatalf("single-key input split into %d partitions, want 1", len(cuts)-1)
	}
}
