package algo

import "sync"

// The engine splits grouping between two sort kernels (paper Table 2):
// RadixSortPairs forms the first-level sorted runs — bundle-sized KPAs
// whose keys it spreads with sequential-access scatter passes — and the
// merge kernels in sort.go combine those runs level by level. Radix is
// the bandwidth-friendly choice for run formation (it streams the data
// a fixed number of times regardless of n), while merging stays
// comparison-based so runs of any key distribution combine in one pass.

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	radixPasses  = 64 / radixBits
)

// RadixSortPairs sorts pairs in place by key with an LSD radix sort:
// 8-bit digits over the 64-bit key, one histogram pre-pass, then one
// scatter pass per non-degenerate digit, ping-ponging between the input
// and a scratch buffer drawn from s. Digits on which every key agrees
// (common when keys occupy a bounded domain) are skipped, so sorting
// 32-bit-valued keys costs four passes, not eight. With workers > 1 the
// histogram and scatter of each pass are computed in parallel over
// contiguous segments. The sort is not stable between equal keys across
// segments; key order is all the grouping primitives rely on.
func RadixSortPairs(pairs []Pair, workers int, s *Scratch) {
	n := len(pairs)
	if n <= 1 {
		return
	}
	if n <= 64 {
		sortRun(pairs) // insertion/stdlib sort beats 8 passes on tiny runs
		return
	}

	// One read pass counts all eight digit histograms; digit histograms
	// are permutation-invariant, so they stay valid across passes.
	var hist [radixPasses][radixBuckets]int
	for i := range pairs {
		k := pairs[i].Key
		for d := 0; d < radixPasses; d++ {
			hist[d][(k>>(uint(d)*radixBits))&(radixBuckets-1)]++
		}
	}

	buf := s.GetPairs(n)
	defer s.PutPairs(buf)
	src, dst := pairs, buf
	for d := 0; d < radixPasses; d++ {
		if degenerateDigit(&hist[d], n) {
			continue
		}
		shift := uint(d) * radixBits
		if workers > 1 {
			parallelScatter(dst, src, shift, workers)
		} else {
			var off [radixBuckets]int
			sum := 0
			for b := 0; b < radixBuckets; b++ {
				off[b] = sum
				sum += hist[d][b]
			}
			for i := range src {
				b := (src[i].Key >> shift) & (radixBuckets - 1)
				dst[off[b]] = src[i]
				off[b]++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// degenerateDigit reports whether every key shares one value of the
// digit (the pass would be an identity permutation).
func degenerateDigit(h *[radixBuckets]int, n int) bool {
	for _, c := range h {
		if c == n {
			return true
		}
		if c > 0 {
			return false
		}
	}
	return false
}

// parallelScatter performs one radix pass from src to dst with up to
// workers goroutines: each worker histograms its contiguous segment,
// segment offsets are combined into disjoint per-(worker, bucket)
// scatter cursors, and the workers scatter concurrently. Within a
// bucket, segment order is preserved (the pass is stable), which LSD
// correctness requires.
func parallelScatter(dst, src []Pair, shift uint, workers int) {
	n := len(src)
	if workers > n/radixBuckets {
		workers = n / radixBuckets // keep per-segment histograms meaningful
	}
	if workers < 2 {
		var off [radixBuckets]int
		var hist [radixBuckets]int
		for i := range src {
			hist[(src[i].Key>>shift)&(radixBuckets-1)]++
		}
		sum := 0
		for b := 0; b < radixBuckets; b++ {
			off[b] = sum
			sum += hist[b]
		}
		for i := range src {
			b := (src[i].Key >> shift) & (radixBuckets - 1)
			dst[off[b]] = src[i]
			off[b]++
		}
		return
	}
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}
	counts := make([][radixBuckets]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seg := src[bounds[w]:bounds[w+1]]
			for i := range seg {
				counts[w][(seg[i].Key>>shift)&(radixBuckets-1)]++
			}
		}(w)
	}
	wg.Wait()
	// Cursor for (worker w, bucket b): all smaller buckets, then bucket
	// b's share of the preceding segments.
	sum := 0
	for b := 0; b < radixBuckets; b++ {
		for w := 0; w < workers; w++ {
			c := counts[w][b]
			counts[w][b] = sum
			sum += c
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := &counts[w]
			seg := src[bounds[w]:bounds[w+1]]
			for i := range seg {
				b := (seg[i].Key >> shift) & (radixBuckets - 1)
				dst[off[b]] = seg[i]
				off[b]++
			}
		}(w)
	}
	wg.Wait()
}
