package algo

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMultiMerge measures the k-way merge used when a window
// closes. Run with -benchmem: the ping-pong scheme costs a constant
// three allocations (two pair buffers + the bounds slice) regardless of
// run count, where the old per-pairwise-merge allocation scheme cost
// k-1 slices totalling ~log2(k) copies of the data.
func BenchmarkMultiMerge(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("runs-%d", k), func(b *testing.B) {
			const runLen = 1 << 14
			rng := rand.New(rand.NewSource(3))
			runs := make([][]Pair, k)
			for i := range runs {
				r := make([]Pair, runLen)
				for j := range r {
					r[j] = Pair{Key: rng.Uint64(), Ptr: uint64(j)}
				}
				SortPairs(r)
				runs[i] = r
			}
			b.SetBytes(int64(k*runLen) * 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := MultiMerge(runs)
				if len(out) != k*runLen {
					b.Fatal("bad merge length")
				}
			}
		})
	}
}
