package algo

// Scratch supplies reusable []Pair buffers to the sorting and merging
// kernels so their scratch space (merge ping-pong buffers, radix
// scatter targets) can come from a recycling allocator instead of the
// Go heap. The mempool package provides pool-backed instances; a nil
// *Scratch (or nil funcs) falls back to plain make, so every kernel
// works without a pool.
//
// Buffers returned by Get hold arbitrary stale contents — callers must
// fully overwrite any element before reading it.
type Scratch struct {
	// Get returns a buffer of at least n pairs (length >= n).
	Get func(n int) []Pair
	// Put returns a buffer obtained from Get for reuse.
	Put func([]Pair)
}

// GetPairs returns a buffer of exactly n pairs (len n), drawing from
// the underlying recycler when one is attached.
func (s *Scratch) GetPairs(n int) []Pair {
	if s == nil || s.Get == nil {
		return make([]Pair, n)
	}
	b := s.Get(n)
	if len(b) < n {
		return make([]Pair, n)
	}
	return b[:n]
}

// PutPairs hands a buffer back for reuse. Safe on nil scratch (the
// buffer is simply dropped to the garbage collector).
func (s *Scratch) PutPairs(b []Pair) {
	if s == nil || s.Put == nil || b == nil {
		return
	}
	s.Put(b)
}
