package algo

import (
	"math/rand"
	"sort"
	"testing"
)

func randomPairs(n int, seed int64, keyMask uint64) []Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{Key: r.Uint64() & keyMask, Ptr: uint64(i)}
	}
	return out
}

func assertSortedPermutation(t *testing.T, got, orig []Pair) {
	t.Helper()
	if !PairsSorted(got) {
		t.Fatal("output not sorted")
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d vs %d", len(got), len(orig))
	}
	// Ptr values are unique row ids: sorting by Ptr must recover the
	// original multiset exactly.
	a := append([]Pair(nil), got...)
	b := append([]Pair(nil), orig...)
	sort.Slice(a, func(i, j int) bool { return a[i].Ptr < a[j].Ptr })
	sort.Slice(b, func(i, j int) bool { return b[i].Ptr < b[j].Ptr })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d changed: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRadixSortPairs(t *testing.T) {
	masks := map[string]uint64{
		"full64":  ^uint64(0),
		"low32":   (1 << 32) - 1, // upper digits degenerate: 4 passes
		"low8":    255,           // 7 degenerate digits
		"onlyOdd": 0xFF00FF00FF00FF00,
	}
	for name, mask := range masks {
		for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 1 << 14} {
			for _, workers := range []int{1, 4} {
				orig := randomPairs(n, int64(n)+7, mask)
				got := append([]Pair(nil), orig...)
				RadixSortPairs(got, workers, nil)
				if t.Failed() {
					return
				}
				assertSortedPermutation(t, got, orig)
				_ = name
			}
		}
	}
}

func TestRadixSortAllEqualKeys(t *testing.T) {
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{Key: 42, Ptr: uint64(i)}
	}
	orig := append([]Pair(nil), pairs...)
	RadixSortPairs(pairs, 2, nil)
	assertSortedPermutation(t, pairs, orig)
}

func TestRadixSortMatchesMergeSort(t *testing.T) {
	orig := randomPairs(10_000, 3, ^uint64(0))
	a := append([]Pair(nil), orig...)
	b := append([]Pair(nil), orig...)
	RadixSortPairs(a, 3, nil)
	SortPairs(b)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("key order diverges at %d: %d vs %d", i, a[i].Key, b[i].Key)
		}
	}
}

// TestRadixSortScratchReuse verifies the kernel draws its scatter
// buffer from the scratch and hands it back.
func TestRadixSortScratchReuse(t *testing.T) {
	var gets, puts int
	backing := make([]Pair, 1<<15)
	s := &Scratch{
		Get: func(n int) []Pair {
			gets++
			if n > len(backing) {
				t.Fatalf("scratch request %d exceeds backing", n)
			}
			return backing[:n]
		},
		Put: func(b []Pair) {
			puts++
			if &b[0] != &backing[0] {
				t.Error("returned buffer is not the one handed out")
			}
		},
	}
	pairs := randomPairs(1<<14, 9, ^uint64(0))
	RadixSortPairs(pairs, 1, s)
	if !PairsSorted(pairs) {
		t.Fatal("not sorted")
	}
	if gets != 1 || puts != 1 {
		t.Errorf("gets=%d puts=%d, want 1/1", gets, puts)
	}
}

func TestMultiMergeInto(t *testing.T) {
	var runs [][]Pair
	total := 0
	for i := 0; i < 7; i++ {
		r := randomPairs(100+i*37, int64(i), 1<<20-1)
		SortPairs(r)
		runs = append(runs, r)
		total += len(r)
	}
	dst := make([]Pair, total)
	MultiMergeInto(dst, runs, nil)
	if !PairsSorted(dst) {
		t.Fatal("multi-merge output not sorted")
	}
	want := MultiMerge(runs)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MultiMergeInto diverges from MultiMerge at %d", i)
		}
	}
	// Wrong destination length must panic, not corrupt.
	defer func() {
		if recover() == nil {
			t.Fatal("short destination must panic")
		}
	}()
	MultiMergeInto(dst[:total-1], runs, nil)
}

func BenchmarkRadixSortPairs(b *testing.B) {
	src := randomPairs(1<<20, 7, ^uint64(0))
	buf := make([]Pair, len(src))
	scratch := make([]Pair, len(src))
	s := &Scratch{Get: func(n int) []Pair { return scratch[:n] }, Put: func([]Pair) {}}
	b.SetBytes(int64(len(src)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		RadixSortPairs(buf, 1, s)
	}
}
