package algo

import "sort"

// Range-partitioned k-way merging (paper §4.3, "Parallel Full KPA
// Merge"): instead of combining R sorted runs through log2(R) pairwise
// levels — each materializing a full copy of the data — the key space
// is partitioned once across all runs (MultiWayCuts) and each partition
// streams through a single loser-tree merge (MultiMergeVisit) on its
// own core. The merge emits pairs through a visitor instead of an
// output buffer, so a consumer (keyed reduction, materialization) can
// fold them inline: closing a window costs one sequential read of the
// inputs and zero intermediate allocations.

// MultiWayCuts partitions the merge of k sorted runs into up to p
// key-aligned ranges of balanced total size. It returns a list of cut
// vectors, each of length k: boundary b's vector holds one cursor per
// run, and partition i covers pairs [cuts[i][j], cuts[i+1][j]) of run j.
// The first vector is all zeros, the last holds every run's length, and
// no key group spans a boundary (all pairs of equal keys land in one
// partition), so partitions merge and reduce independently. Balance is
// as good as key duplication allows: a single key heavier than
// total/p cannot be split. At least two vectors (one partition) are
// always returned; degenerate boundaries are deduplicated, so every
// partition is non-empty unless the input is.
func MultiWayCuts(runs [][]Pair, p int) [][]int {
	k := len(runs)
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	if p < 1 {
		p = 1
	}
	if p > total {
		p = total
	}
	last := make([]int, k)
	for j, r := range runs {
		last[j] = len(r)
	}
	cuts := [][]int{make([]int, k)}
	for i := 1; i < p; i++ {
		target := i * total / p
		// Smallest key whose cumulative count reaches the target rank;
		// cutting just past it keeps every key group on one side.
		key, ok := kthKey(runs, target)
		if !ok {
			continue
		}
		cut := make([]int, k)
		n := 0
		for j, r := range runs {
			cut[j] = upperBoundKey(r, key)
			n += cut[j]
		}
		if n == 0 || n >= total || cutsEqual(cut, cuts[len(cuts)-1]) {
			continue
		}
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, last)
	return cuts
}

// kthKey returns the smallest key K such that at least target pairs
// across the runs have key <= K (ok is false when target <= 0). It
// binary-searches the 64-bit key domain; each probe costs one
// upper-bound search per run.
func kthKey(runs [][]Pair, target int) (uint64, bool) {
	if target <= 0 {
		return 0, false
	}
	lo, hi := uint64(0), ^uint64(0)
	for lo < hi {
		mid := lo + (hi-lo)/2
		n := 0
		for _, r := range runs {
			n += upperBoundKey(r, mid)
		}
		if n >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// upperBoundKey returns the first index of sorted run whose key
// exceeds key.
func upperBoundKey(run []Pair, key uint64) int {
	return sort.Search(len(run), func(i int) bool { return run[i].Key > key })
}

func cutsEqual(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MultiMergeVisit streams the merge of k sorted runs in ascending key
// order, invoking visit once per pair with the index of the run it came
// from — no output buffer, so consumers fold pairs inline. Ties between
// runs resolve by run index (lowest first), the same order the
// levelwise pairwise merge tree produces, so a fused consumer sees the
// exact pair sequence the materializing path would. The k cursors
// advance through a loser tree: one comparison per level per emitted
// pair, and the replayed path touches only tree nodes, not run data.
func MultiMergeVisit(runs [][]Pair, visit func(run int, p Pair)) {
	// Fast paths for the fan-ins that need no tree.
	live := 0
	single := -1
	for j, r := range runs {
		if len(r) > 0 {
			live++
			single = j
		}
	}
	switch live {
	case 0:
		return
	case 1:
		for _, p := range runs[single] {
			visit(single, p)
		}
		return
	case 2:
		a, b := -1, -1
		for j, r := range runs {
			if len(r) > 0 {
				if a < 0 {
					a = j
				} else {
					b = j
				}
			}
		}
		mergeVisit2(a, runs[a], b, runs[b], visit)
		return
	}

	k := len(runs)
	m := 1
	for m < k {
		m *= 2
	}
	// head[j] is run j's cursor; -1 in the tree marks an exhausted (or
	// absent) leaf, which loses to every live run.
	head := make([]int, k)
	loser := make([]int, m) // internal nodes 1..m-1 hold match losers
	win := make([]int, 2*m) // scratch winners for the initial build
	for i := 0; i < m; i++ {
		if i < k && len(runs[i]) > 0 {
			win[m+i] = i
		} else {
			win[m+i] = -1
		}
	}
	beats := func(a, b int) bool {
		if b < 0 {
			return true
		}
		if a < 0 {
			return false
		}
		ka, kb := runs[a][head[a]].Key, runs[b][head[b]].Key
		if ka != kb {
			return ka < kb
		}
		return a < b
	}
	for n := m - 1; n >= 1; n-- {
		a, b := win[2*n], win[2*n+1]
		if beats(a, b) {
			win[n], loser[n] = a, b
		} else {
			win[n], loser[n] = b, a
		}
	}
	winner := win[1]
	for winner >= 0 {
		r := winner
		visit(r, runs[r][head[r]])
		head[r]++
		w := r
		if head[r] == len(runs[r]) {
			w = -1
		}
		// Replay the leaf-to-root path: the new cursor competes against
		// the stored losers; the surviving run is the next winner.
		for n := (m + r) / 2; n >= 1; n /= 2 {
			if beats(loser[n], w) {
				loser[n], w = w, loser[n]
			}
		}
		winner = w
	}
}

// mergeVisit2 is the two-cursor fast path of MultiMergeVisit; ia < ib
// are the runs' indices in the caller's slice.
func mergeVisit2(ia int, a []Pair, ib int, b []Pair, visit func(run int, p Pair)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Key <= b[j].Key {
			visit(ia, a[i])
			i++
		} else {
			visit(ib, b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		visit(ia, a[i])
	}
	for ; j < len(b); j++ {
		visit(ib, b[j])
	}
}
