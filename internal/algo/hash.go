package algo

import "fmt"

// HashTable is an open-addressing, linear-probing hash table from uint64
// keys to uint64 values. It is (a) the random-access grouping baseline
// that the paper measures against merge-sort (Figure 2), and (b) the
// external key-value side table of the YSB pipeline (ad_id -> campaign).
type HashTable struct {
	keys   []uint64
	vals   []uint64
	state  []uint8 // 0 empty, 1 full
	n      int
	mask   uint64
	probes int64 // cumulative probe count (for stats/tests)
}

// NewHashTable pre-allocates a table for at least capacity entries at
// 50% max load factor, as the paper's pre-allocated open-addressing
// implementation does.
func NewHashTable(capacity int) *HashTable {
	if capacity < 1 {
		capacity = 1
	}
	size := 2
	for size < capacity*2 {
		size *= 2
	}
	return &HashTable{
		keys:  make([]uint64, size),
		vals:  make([]uint64, size),
		state: make([]uint8, size),
		mask:  uint64(size - 1),
	}
}

// mix is a 64-bit finalizer (splitmix64) giving a well-distributed slot.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Put inserts or overwrites key -> val.
func (h *HashTable) Put(key, val uint64) {
	if h.n*2 >= len(h.keys) {
		h.grow()
	}
	slot := mix(key) & h.mask
	for {
		h.probes++
		if h.state[slot] == 0 {
			h.state[slot] = 1
			h.keys[slot] = key
			h.vals[slot] = val
			h.n++
			return
		}
		if h.keys[slot] == key {
			h.vals[slot] = val
			return
		}
		slot = (slot + 1) & h.mask
	}
}

// Get returns the value for key.
func (h *HashTable) Get(key uint64) (uint64, bool) {
	slot := mix(key) & h.mask
	for {
		h.probes++
		if h.state[slot] == 0 {
			return 0, false
		}
		if h.keys[slot] == key {
			return h.vals[slot], true
		}
		slot = (slot + 1) & h.mask
	}
}

// Add accumulates delta into the value for key (creating it at zero),
// the inner loop of hash-based aggregation.
func (h *HashTable) Add(key, delta uint64) {
	if h.n*2 >= len(h.keys) {
		h.grow()
	}
	slot := mix(key) & h.mask
	for {
		h.probes++
		if h.state[slot] == 0 {
			h.state[slot] = 1
			h.keys[slot] = key
			h.vals[slot] = delta
			h.n++
			return
		}
		if h.keys[slot] == key {
			h.vals[slot] += delta
			return
		}
		slot = (slot + 1) & h.mask
	}
}

// Len returns the number of live entries.
func (h *HashTable) Len() int { return h.n }

// Probes returns the cumulative probe count.
func (h *HashTable) Probes() int64 { return h.probes }

// Range calls fn for every entry until fn returns false.
func (h *HashTable) Range(fn func(key, val uint64) bool) {
	for i, s := range h.state {
		if s == 1 {
			if !fn(h.keys[i], h.vals[i]) {
				return
			}
		}
	}
}

func (h *HashTable) grow() {
	old := *h
	size := len(h.keys) * 2
	h.keys = make([]uint64, size)
	h.vals = make([]uint64, size)
	h.state = make([]uint8, size)
	h.mask = uint64(size - 1)
	h.n = 0
	for i, s := range old.state {
		if s == 1 {
			h.Put(old.keys[i], old.vals[i])
		}
	}
}

// String summarises the table.
func (h *HashTable) String() string {
	return fmt.Sprintf("hashtable(n=%d cap=%d)", h.n, len(h.keys))
}

// HashGroup groups pairs by key using the hash table, returning the
// per-key pair counts. This is the baseline GroupBy of Figure 2.
func HashGroup(pairs []Pair) *HashTable {
	h := NewHashTable(len(pairs)/64 + 16)
	for _, p := range pairs {
		h.Add(p.Key, 1)
	}
	return h
}

// HashGroupCollect groups pairs by key, collecting the pointer payloads
// per key (hash-based equivalent of sort+scan grouping).
func HashGroupCollect(pairs []Pair) map[uint64][]uint64 {
	out := make(map[uint64][]uint64)
	for _, p := range pairs {
		out[p.Key] = append(out[p.Key], p.Ptr)
	}
	return out
}
