package algo

// RunMeta is the provenance of one sorted run of pairs: which producer
// emitted it and which key/time range it covers. The runtime orders a
// closing window's runs by RunMeta before merging, so the k-way merge's
// tie-break (equal keys visit in run order) is deterministic regardless
// of the order extraction tasks happened to finish in — a prerequisite
// for pane-based sharing, where the same run participates in several
// windows' merges and order-sensitive aggregators must see the same
// pair sequence the unshared path produces.
type RunMeta struct {
	// Origin identifies the producer (the native runtime uses the
	// source bundle ID, which is assigned in ingest order).
	Origin uint64
	// Lo is the lower bound of the run's coverage (the native runtime
	// uses the pane or window start the run was scattered into).
	Lo uint64
}

// Less orders runs by (Origin, Lo).
func (m RunMeta) Less(o RunMeta) bool {
	if m.Origin != o.Origin {
		return m.Origin < o.Origin
	}
	return m.Lo < o.Lo
}
