package algo

// JoinSorted scans two key-sorted pair slices in one pass and calls emit
// for every pair of elements sharing a key (the cross product within
// each matching key group), the paper's Join primitive.
func JoinSorted(a, b []Pair, emit func(key uint64, pa, pb uint64)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case a[i].Key > b[j].Key:
			j++
		default:
			key := a[i].Key
			ie := i
			for ie < len(a) && a[ie].Key == key {
				ie++
			}
			je := j
			for je < len(b) && b[je].Key == key {
				je++
			}
			for x := i; x < ie; x++ {
				for y := j; y < je; y++ {
					emit(key, a[x].Ptr, b[y].Ptr)
				}
			}
			i, j = ie, je
		}
	}
}

// CountJoinSorted returns the number of output records JoinSorted would
// emit, without emitting them (used to size output allocations).
func CountJoinSorted(a, b []Pair) int {
	total := 0
	JoinSorted(a, b, func(uint64, uint64, uint64) { total++ })
	return total
}

// PartitionPoints returns, for the sorted input, slice boundaries such
// that keys in [boundaries[i], boundaries[i+1]) fall into bucket i of
// the given right-open key ranges. ranges must be ascending; keys below
// ranges[0] go to bucket 0 and keys >= ranges[len-1] to the last bucket.
func PartitionPoints(sorted []Pair, ranges []uint64) []int {
	cuts := make([]int, len(ranges)+1)
	idx := 0
	for r, bound := range ranges {
		for idx < len(sorted) && sorted[idx].Key < bound {
			idx++
		}
		cuts[r] = idx
	}
	cuts[len(ranges)] = len(sorted)
	return cuts
}

// PartitionByKeyRange splits pairs (not necessarily sorted) into
// len(boundaries)+1 buckets: bucket i holds keys in
// [boundaries[i-1], boundaries[i]), with open ends. boundaries must be
// strictly ascending. This is the Partition primitive used for
// windowing, where the key is the timestamp and boundaries are window
// edges.
func PartitionByKeyRange(pairs []Pair, boundaries []uint64) [][]Pair {
	out := make([][]Pair, len(boundaries)+1)
	bucketOf := func(k uint64) int {
		lo, hi := 0, len(boundaries)
		for lo < hi {
			mid := (lo + hi) / 2
			if k < boundaries[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	for _, p := range pairs {
		b := bucketOf(p.Key)
		out[b] = append(out[b], p)
	}
	return out
}

// SelectPairs returns the pairs whose key satisfies pred, preserving
// order (the Select primitive: subset with surviving key/pointer pairs).
func SelectPairs(pairs []Pair, pred func(key uint64) bool) []Pair {
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		if pred(p.Key) {
			out = append(out, p)
		}
	}
	return out
}
