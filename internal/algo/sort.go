package algo

import (
	"sort"
	"sync"
)

// blockPairs is the run length sorted in cache before merging, standing
// in for the paper's 64-element AVX-512 bitonic blocks (scaled up for a
// scalar implementation).
const blockPairs = 1 << 12

// SortPairs sorts pairs in place by key (stable order of equal keys is
// not guaranteed). It is the single-threaded comparison kernel: blocked
// runs are formed in cache and then merged, mirroring the paper's chunk
// sort. The engine's hot path uses RadixSortPairs for first-level run
// formation instead and keeps this merge structure for combining runs.
func SortPairs(pairs []Pair) { SortPairsScratch(pairs, nil) }

// SortPairsScratch is SortPairs with the merge ping-pong buffer drawn
// from s instead of the Go heap.
func SortPairsScratch(pairs []Pair, s *Scratch) {
	n := len(pairs)
	if n <= 1 {
		return
	}
	if n <= blockPairs {
		sortRun(pairs)
		return
	}
	// Sort cache-sized blocks, then bottom-up merge with a scratch buffer.
	for lo := 0; lo < n; lo += blockPairs {
		hi := lo + blockPairs
		if hi > n {
			hi = n
		}
		sortRun(pairs[lo:hi])
	}
	scratch := s.GetPairs(n)
	defer s.PutPairs(scratch)
	src, dst := pairs, scratch
	for width := blockPairs; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// sortRun sorts a short run (insertion sort for tiny runs, pattern-
// defeating stdlib sort otherwise).
func sortRun(run []Pair) {
	if len(run) <= 24 {
		for i := 1; i < len(run); i++ {
			p := run[i]
			j := i - 1
			for j >= 0 && run[j].Key > p.Key {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = p
		}
		return
	}
	sort.Slice(run, func(i, j int) bool { return run[i].Key < run[j].Key })
}

// mergeRuns merges sorted a and b into dst; len(dst) == len(a)+len(b).
func mergeRuns(dst, a, b []Pair) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Key <= b[j].Key {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// ParallelSortPairs sorts pairs in place using up to workers goroutines:
// the input is split into chunks sorted concurrently, which are then
// pairwise-merged, the paper's §4.2 structure. It is used by the real-
// parallel kernel benchmarks and the examples; inside the simulator the
// engine instead expresses the same structure as separate tasks.
func ParallelSortPairs(pairs []Pair, workers int) {
	ParallelSortPairsScratch(pairs, workers, nil)
}

// ParallelSortPairsScratch is ParallelSortPairs with the merge
// ping-pong buffer drawn from s instead of the Go heap.
func ParallelSortPairsScratch(pairs []Pair, workers int, s *Scratch) {
	n := len(pairs)
	if workers <= 1 || n <= 2*blockPairs {
		SortPairsScratch(pairs, s)
		return
	}
	chunks := workers
	if chunks > (n+blockPairs-1)/blockPairs {
		chunks = (n + blockPairs - 1) / blockPairs
	}
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			SortPairs(pairs[lo:hi])
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	// Pairwise parallel merges until one run remains.
	scratch := s.GetPairs(n)
	defer s.PutPairs(scratch)
	src, dst := pairs, scratch
	runs := bounds
	for len(runs) > 2 {
		next := []int{0}
		var mg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			lo, mid, hi := runs[i], runs[i+1], runs[i+2]
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
			next = append(next, hi)
		}
		if (len(runs)-1)%2 == 1 { // odd run left over: copy through
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(dst[lo:hi], src[lo:hi])
			next = append(next, hi)
		}
		mg.Wait()
		src, dst = dst, src
		runs = next
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// MergePairs merges two sorted pair slices into a newly allocated sorted
// slice.
func MergePairs(a, b []Pair) []Pair {
	out := make([]Pair, len(a)+len(b))
	mergeRuns(out, a, b)
	return out
}

// MergeInto merges sorted a and b into dst, which must have length
// len(a)+len(b).
func MergeInto(dst, a, b []Pair) {
	if len(dst) != len(a)+len(b) {
		panic("algo: MergeInto destination has wrong length")
	}
	mergeRuns(dst, a, b)
}

// MultiMerge merges k sorted runs into one sorted slice by levelwise
// pairwise merging (the shape the engine schedules as parallel tasks).
// All levels merge between two ping-pong buffers, like
// ParallelSortPairs, so the whole k-way merge costs two buffers of the
// total size instead of a fresh slice per pairwise merge per level.
func MultiMerge(runs [][]Pair) []Pair {
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	if len(runs) == 0 {
		return nil
	}
	out := make([]Pair, n)
	MultiMergeInto(out, runs, nil)
	return out
}

// MultiMergeInto merges k sorted runs into dst, whose length must equal
// the total run length. The single ping-pong scratch buffer comes from
// s, so with a pool-backed scratch the merge moves no memory through
// the Go heap beyond the small run-bounds index.
func MultiMergeInto(dst []Pair, runs [][]Pair, s *Scratch) {
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	if len(dst) != n {
		panic("algo: MultiMergeInto destination has wrong length")
	}
	switch len(runs) {
	case 0:
		return
	case 1:
		copy(dst, runs[0])
		return
	}
	levels := 0
	for c := len(runs); c > 1; c = (c + 1) / 2 {
		levels++
	}
	scratch := s.GetPairs(n)
	defer s.PutPairs(scratch)
	// Start in whichever buffer lands the final level's output in dst.
	src, dst2 := dst, scratch
	if levels%2 == 1 {
		src, dst2 = scratch, dst
	}
	// bounds[i] is the start of run i in src; compacted in place as
	// levels halve the run count (writes trail the reads).
	bounds := make([]int, len(runs)+1)
	off := 0
	for i, r := range runs {
		copy(src[off:], r)
		off += len(r)
		bounds[i+1] = off
	}
	for len(bounds) > 2 {
		m := 1
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			mergeRuns(dst2[lo:hi], src[lo:mid], src[mid:hi])
			bounds[m] = hi
			m++
		}
		if (len(bounds)-1)%2 == 1 { // odd run left over: copy through
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst2[lo:hi], src[lo:hi])
			bounds[m] = hi
			m++
		}
		bounds = bounds[:m]
		src, dst2 = dst2, src
	}
}
