// Package algo implements the streaming algorithm library of the paper
// (§4.2): sequential-access grouping kernels over 16-byte key/pointer
// pairs, plus the open-addressing hash table used as the DRAM-era
// baseline and as the external-join side table.
//
// Grouping splits across two sort kernels, the paper's Table 2 split:
// LSD radix sort (RadixSortPairs) forms first-level sorted runs with a
// fixed number of streaming passes, and the comparison merge kernels
// (SortPairs, ParallelSortPairs, MergeInto, MultiMerge) combine runs
// level by level. Scratch buffers for both come from an *Scratch so a
// recycling allocator (internal/mempool) can back the hot path.
//
// All kernels are real implementations operating on real data; the
// engine charges their virtual cost through memsim demand profiles.
package algo

// Pair is one KPA element: a 64-bit resident key and a 64-bit pointer.
// The pointer payload is opaque to this package; the kpa package packs
// (bundle ID, row) into it.
type Pair struct {
	Key uint64
	Ptr uint64
}

// PairsSorted reports whether pairs is non-decreasing by key.
func PairsSorted(pairs []Pair) bool {
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key > pairs[i].Key {
			return false
		}
	}
	return true
}

// Keys copies the key column out of pairs (testing helper).
func Keys(pairs []Pair) []uint64 {
	out := make([]uint64, len(pairs))
	for i, p := range pairs {
		out[i] = p.Key
	}
	return out
}

// MinMaxKey returns the key range; ok is false for empty input.
func MinMaxKey(pairs []Pair) (min, max uint64, ok bool) {
	if len(pairs) == 0 {
		return 0, 0, false
	}
	min, max = pairs[0].Key, pairs[0].Key
	for _, p := range pairs[1:] {
		if p.Key < min {
			min = p.Key
		}
		if p.Key > max {
			max = p.Key
		}
	}
	return min, max, true
}
