package algo

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func randPairs(n int, seed int64) []Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{Key: r.Uint64(), Ptr: uint64(i)}
	}
	return out
}

func keyedPairs(keys ...uint64) []Pair {
	out := make([]Pair, len(keys))
	for i, k := range keys {
		out[i] = Pair{Key: k, Ptr: uint64(i)}
	}
	return out
}

func TestSortPairsSmall(t *testing.T) {
	p := keyedPairs(5, 3, 9, 1, 1, 7)
	SortPairs(p)
	if !PairsSorted(p) {
		t.Fatalf("not sorted: %v", Keys(p))
	}
	want := []uint64{1, 1, 3, 5, 7, 9}
	if !reflect.DeepEqual(Keys(p), want) {
		t.Fatalf("keys = %v, want %v", Keys(p), want)
	}
}

func TestSortPairsEmptyAndSingle(t *testing.T) {
	SortPairs(nil)
	SortPairs([]Pair{})
	one := keyedPairs(42)
	SortPairs(one)
	if one[0].Key != 42 {
		t.Fatal("single element corrupted")
	}
}

func TestSortPairsLarge(t *testing.T) {
	p := randPairs(3*blockPairs+17, 1)
	SortPairs(p)
	if !PairsSorted(p) {
		t.Fatal("large input not sorted")
	}
	if len(p) != 3*blockPairs+17 {
		t.Fatal("length changed")
	}
}

func TestSortPreservesPtrBinding(t *testing.T) {
	// Each pair's ptr records its key; sorting must keep the binding.
	r := rand.New(rand.NewSource(7))
	p := make([]Pair, 10000)
	for i := range p {
		k := r.Uint64() % 1000
		p[i] = Pair{Key: k, Ptr: k * 2}
	}
	SortPairs(p)
	for _, e := range p {
		if e.Ptr != e.Key*2 {
			t.Fatal("key/ptr binding broken by sort")
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 23, 24, 25, 100, blockPairs, blockPairs + 1, 5 * blockPairs} {
		p := randPairs(n, int64(n))
		want := Keys(p)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortPairs(p)
		if !reflect.DeepEqual(Keys(p), want) {
			t.Fatalf("n=%d: mismatch with stdlib sort", n)
		}
	}
}

func TestParallelSortPairs(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		p := randPairs(8*blockPairs+13, int64(workers))
		want := Keys(p)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		ParallelSortPairs(p, workers)
		if !reflect.DeepEqual(Keys(p), want) {
			t.Fatalf("workers=%d: wrong result", workers)
		}
	}
}

func TestParallelSortSmallInputFallsBack(t *testing.T) {
	p := randPairs(100, 3)
	ParallelSortPairs(p, 8)
	if !PairsSorted(p) {
		t.Fatal("not sorted")
	}
}

func TestMergePairs(t *testing.T) {
	a := keyedPairs(1, 3, 5)
	b := keyedPairs(2, 3, 6)
	m := MergePairs(a, b)
	want := []uint64{1, 2, 3, 3, 5, 6}
	if !reflect.DeepEqual(Keys(m), want) {
		t.Fatalf("merged = %v", Keys(m))
	}
	if len(MergePairs(nil, nil)) != 0 {
		t.Fatal("empty merge")
	}
	if !reflect.DeepEqual(Keys(MergePairs(a, nil)), []uint64{1, 3, 5}) {
		t.Fatal("one-sided merge")
	}
}

func TestMergeIntoWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeInto(make([]Pair, 1), keyedPairs(1), keyedPairs(2))
}

func TestMultiMerge(t *testing.T) {
	runs := [][]Pair{
		keyedPairs(1, 5, 9),
		keyedPairs(2, 6),
		keyedPairs(3, 7, 11, 13),
		keyedPairs(4),
		keyedPairs(8, 10, 12),
	}
	m := MultiMerge(runs)
	if !PairsSorted(m) {
		t.Fatalf("not sorted: %v", Keys(m))
	}
	if len(m) != 13 {
		t.Fatalf("len = %d, want 13", len(m))
	}
	if MultiMerge(nil) != nil {
		t.Fatal("empty multimerge")
	}
	single := MultiMerge([][]Pair{keyedPairs(4, 5)})
	if !reflect.DeepEqual(Keys(single), []uint64{4, 5}) {
		t.Fatal("single-run multimerge")
	}
	// Result must be a copy, not an alias.
	src := keyedPairs(1, 2)
	cp := MultiMerge([][]Pair{src})
	cp[0].Key = 99
	if src[0].Key != 1 {
		t.Fatal("MultiMerge aliased its input")
	}
}

func TestJoinSorted(t *testing.T) {
	a := keyedPairs(1, 2, 2, 5)
	b := keyedPairs(2, 2, 3, 5, 5)
	type row struct{ k, pa, pb uint64 }
	var got []row
	JoinSorted(a, b, func(k, pa, pb uint64) { got = append(got, row{k, pa, pb}) })
	// key 2: 2x2 = 4 rows; key 5: 1x2 = 2 rows.
	if len(got) != 6 {
		t.Fatalf("join rows = %d, want 6", len(got))
	}
	if CountJoinSorted(a, b) != 6 {
		t.Fatal("CountJoinSorted disagrees")
	}
	for _, r := range got {
		if r.k != 2 && r.k != 5 {
			t.Fatalf("unexpected join key %d", r.k)
		}
	}
}

func TestJoinSortedDisjoint(t *testing.T) {
	if CountJoinSorted(keyedPairs(1, 3), keyedPairs(2, 4)) != 0 {
		t.Fatal("disjoint join must be empty")
	}
	if CountJoinSorted(nil, keyedPairs(1)) != 0 {
		t.Fatal("empty side join must be empty")
	}
}

func TestPartitionPoints(t *testing.T) {
	s := keyedPairs(1, 2, 5, 5, 9, 12)
	cuts := PartitionPoints(s, []uint64{5, 10})
	// bucket 0: keys < 5 -> [0,2); bucket 1: 5..9 -> [2,5); bucket 2: rest.
	want := []int{2, 5, 6}
	if !reflect.DeepEqual(cuts, want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
}

func TestPartitionByKeyRange(t *testing.T) {
	p := keyedPairs(12, 1, 5, 9, 2, 5)
	buckets := PartitionByKeyRange(p, []uint64{5, 10})
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if len(buckets[0]) != 2 { // 1, 2
		t.Errorf("bucket0 = %v", Keys(buckets[0]))
	}
	if len(buckets[1]) != 3 { // 5, 9, 5
		t.Errorf("bucket1 = %v", Keys(buckets[1]))
	}
	if len(buckets[2]) != 1 { // 12
		t.Errorf("bucket2 = %v", Keys(buckets[2]))
	}
}

func TestSelectPairs(t *testing.T) {
	p := keyedPairs(1, 2, 3, 4, 5)
	even := SelectPairs(p, func(k uint64) bool { return k%2 == 0 })
	if !reflect.DeepEqual(Keys(even), []uint64{2, 4}) {
		t.Fatalf("selected = %v", Keys(even))
	}
	if len(SelectPairs(nil, func(uint64) bool { return true })) != 0 {
		t.Fatal("empty select")
	}
}

func TestMinMaxKey(t *testing.T) {
	if _, _, ok := MinMaxKey(nil); ok {
		t.Fatal("empty input must report !ok")
	}
	min, max, ok := MinMaxKey(keyedPairs(5, 1, 9, 3))
	if !ok || min != 1 || max != 9 {
		t.Fatalf("min=%d max=%d", min, max)
	}
}

func TestHashTableBasics(t *testing.T) {
	h := NewHashTable(4)
	if _, ok := h.Get(1); ok {
		t.Fatal("empty table must miss")
	}
	h.Put(1, 10)
	h.Put(2, 20)
	h.Put(1, 11) // overwrite
	if v, ok := h.Get(1); !ok || v != 11 {
		t.Fatalf("get(1) = %d,%v", v, ok)
	}
	if v, ok := h.Get(2); !ok || v != 20 {
		t.Fatalf("get(2) = %d,%v", v, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	if h.Probes() == 0 {
		t.Fatal("probes must be counted")
	}
	if !strings.Contains(h.String(), "n=2") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHashTableGrowth(t *testing.T) {
	h := NewHashTable(1)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		h.Put(i, i*3)
	}
	if h.Len() != n {
		t.Fatalf("len = %d", h.Len())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != i*3 {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestHashTableAdd(t *testing.T) {
	h := NewHashTable(8)
	for i := 0; i < 5; i++ {
		h.Add(7, 2)
	}
	if v, _ := h.Get(7); v != 10 {
		t.Fatalf("accumulated = %d, want 10", v)
	}
}

func TestHashTableRange(t *testing.T) {
	h := NewHashTable(8)
	h.Put(1, 10)
	h.Put(2, 20)
	h.Put(3, 30)
	var sum uint64
	h.Range(func(k, v uint64) bool { sum += v; return true })
	if sum != 60 {
		t.Fatalf("sum = %d", sum)
	}
	count := 0
	h.Range(func(k, v uint64) bool { count++; return false })
	if count != 1 {
		t.Fatal("Range must stop when fn returns false")
	}
}

func TestHashGroup(t *testing.T) {
	p := keyedPairs(1, 2, 1, 3, 1, 2)
	h := HashGroup(p)
	if v, _ := h.Get(1); v != 3 {
		t.Fatalf("count(1) = %d", v)
	}
	if v, _ := h.Get(2); v != 2 {
		t.Fatalf("count(2) = %d", v)
	}
	if h.Len() != 3 {
		t.Fatalf("groups = %d", h.Len())
	}
}

func TestHashGroupCollect(t *testing.T) {
	p := []Pair{{1, 100}, {2, 200}, {1, 101}}
	g := HashGroupCollect(p)
	if !reflect.DeepEqual(g[1], []uint64{100, 101}) {
		t.Fatalf("group 1 = %v", g[1])
	}
	if !reflect.DeepEqual(g[2], []uint64{200}) {
		t.Fatalf("group 2 = %v", g[2])
	}
}

// --- Property-based tests (testing/quick). -------------------------------

func TestPropSortIsPermutationAndSorted(t *testing.T) {
	f := func(keys []uint64) bool {
		p := make([]Pair, len(keys))
		for i, k := range keys {
			p[i] = Pair{Key: k, Ptr: uint64(i)}
		}
		SortPairs(p)
		if !PairsSorted(p) {
			return false
		}
		// Permutation check: ptrs 0..n-1 all present exactly once.
		seen := make(map[uint64]bool, len(p))
		for _, e := range p {
			if seen[e.Ptr] {
				return false
			}
			seen[e.Ptr] = true
			if e.Key != keys[e.Ptr] {
				return false
			}
		}
		return len(seen) == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergePreservesMultiset(t *testing.T) {
	f := func(ka, kb []uint64) bool {
		a := make([]Pair, len(ka))
		for i, k := range ka {
			a[i] = Pair{Key: k}
		}
		b := make([]Pair, len(kb))
		for i, k := range kb {
			b[i] = Pair{Key: k}
		}
		SortPairs(a)
		SortPairs(b)
		m := MergePairs(a, b)
		if !PairsSorted(m) {
			return false
		}
		counts := make(map[uint64]int)
		for _, k := range ka {
			counts[k]++
		}
		for _, k := range kb {
			counts[k]++
		}
		for _, e := range m {
			counts[e.Key]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropHashTableMatchesMap(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val uint64
	}) bool {
		h := NewHashTable(4)
		ref := make(map[uint64]uint64)
		for _, op := range ops {
			h.Put(op.Key, op.Val)
			ref[op.Key] = op.Val
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := h.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropJoinMatchesNestedLoop(t *testing.T) {
	f := func(ka, kb []uint8) bool {
		a := make([]Pair, len(ka))
		for i, k := range ka {
			a[i] = Pair{Key: uint64(k % 16), Ptr: uint64(i)}
		}
		b := make([]Pair, len(kb))
		for i, k := range kb {
			b[i] = Pair{Key: uint64(k % 16), Ptr: uint64(i)}
		}
		SortPairs(a)
		SortPairs(b)
		want := 0
		for _, x := range a {
			for _, y := range b {
				if x.Key == y.Key {
					want++
				}
			}
		}
		return CountJoinSorted(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPartitionConserves(t *testing.T) {
	f := func(keys []uint64, rawBounds []uint64) bool {
		p := make([]Pair, len(keys))
		for i, k := range keys {
			p[i] = Pair{Key: k}
		}
		bounds := append([]uint64(nil), rawBounds...)
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		// De-duplicate to keep boundaries strictly ascending.
		uniq := bounds[:0]
		for i, b := range bounds {
			if i == 0 || b != uniq[len(uniq)-1] {
				uniq = append(uniq, b)
			}
		}
		buckets := PartitionByKeyRange(p, uniq)
		total := 0
		for bi, bucket := range buckets {
			total += len(bucket)
			for _, e := range bucket {
				if bi > 0 && e.Key < uniq[bi-1] {
					return false
				}
				if bi < len(uniq) && e.Key >= uniq[bi] {
					return false
				}
			}
		}
		return total == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
