package bundle

import (
	"strings"
	"testing"
	"testing/quick"

	"streambox/internal/memsim"
)

var kvSchema = Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}}

func build(t *testing.T, rows ...[3]uint64) *Bundle {
	t.Helper()
	bd, err := NewBuilder(1, kvSchema, max(len(rows), 1), memsim.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := bd.Append(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	return bd.Seal()
}

func TestSchemaValidate(t *testing.T) {
	if err := kvSchema.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{NumCols: 0, TsCol: 0},
		{NumCols: 3, TsCol: 3},
		{NumCols: 3, TsCol: -1},
		{NumCols: 3, TsCol: 0, Names: []string{"only-one"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	if kvSchema.RecordBytes() != 24 {
		t.Errorf("record bytes = %d", kvSchema.RecordBytes())
	}
	if kvSchema.ColName(0) != "key" {
		t.Errorf("name = %q", kvSchema.ColName(0))
	}
	anon := Schema{NumCols: 2, TsCol: 0}
	if anon.ColName(1) != "col1" {
		t.Errorf("anon name = %q", anon.ColName(1))
	}
}

func TestBuilderAppendAndSeal(t *testing.T) {
	b := build(t, [3]uint64{7, 100, 5}, [3]uint64{8, 200, 6})
	if b.Rows() != 2 {
		t.Fatalf("rows = %d", b.Rows())
	}
	if b.At(0, 0) != 7 || b.At(1, 1) != 200 {
		t.Error("wrong values")
	}
	if b.Ts(1) != 6 {
		t.Errorf("ts = %d", b.Ts(1))
	}
	if b.Bytes() != 48 {
		t.Errorf("bytes = %d", b.Bytes())
	}
	if b.Tier() != memsim.DRAM {
		t.Error("wrong tier")
	}
	if b.RC() != 1 {
		t.Errorf("initial rc = %d", b.RC())
	}
	if !strings.Contains(b.String(), "rows=2") {
		t.Errorf("String() = %q", b.String())
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(1, Schema{NumCols: 0, TsCol: 0}, 10, memsim.DRAM); err == nil {
		t.Error("invalid schema must fail")
	}
	if _, err := NewBuilder(1, kvSchema, 0, memsim.DRAM); err == nil {
		t.Error("zero capacity must fail")
	}
	bd, _ := NewBuilder(1, kvSchema, 4, memsim.DRAM)
	if err := bd.Append(1, 2); err == nil {
		t.Error("wrong arity must fail")
	}
	bd.Append(1, 2, 3)
	bd.Seal()
	if err := bd.Append(1, 2, 3); err == nil {
		t.Error("append after seal must fail")
	}
}

func TestAppendColumnar(t *testing.T) {
	bd, _ := NewBuilder(2, kvSchema, 8, memsim.DRAM)
	err := bd.AppendColumnar([]uint64{1, 2}, []uint64{10, 20}, []uint64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Len() != 2 {
		t.Fatalf("len = %d", bd.Len())
	}
	if err := bd.AppendColumnar([]uint64{1}, []uint64{10, 20}, []uint64{5}); err == nil {
		t.Error("ragged columns must fail")
	}
	if err := bd.AppendColumnar([]uint64{1}); err == nil {
		t.Error("wrong column count must fail")
	}
	b := bd.Seal()
	if err := bd.AppendColumnar([]uint64{1}, []uint64{1}, []uint64{1}); err == nil {
		t.Error("columnar append after seal must fail")
	}
	if b.At(1, 1) != 20 {
		t.Error("wrong columnar value")
	}
}

func TestColOutOfRangePanics(t *testing.T) {
	b := build(t, [3]uint64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Col(9)
}

type fakeAlloc struct{ freed int }

func (f *fakeAlloc) Free() { f.freed++ }

func TestRefcountReclaim(t *testing.T) {
	b := build(t, [3]uint64{1, 2, 3})
	fa := &fakeAlloc{}
	b.SetAlloc(fa)
	var reclaimed *Bundle
	b.AddOnFree(func(bb *Bundle) { reclaimed = bb })

	b.Retain() // rc 2
	b.Retain() // rc 3
	b.Release()
	b.Release()
	if fa.freed != 0 || reclaimed != nil {
		t.Fatal("reclaimed too early")
	}
	b.Release() // rc 0
	if fa.freed != 1 {
		t.Fatalf("alloc freed %d times", fa.freed)
	}
	if reclaimed != b {
		t.Fatal("onFree not called")
	}
}

func TestRetainAfterReclaimPanics(t *testing.T) {
	b := build(t, [3]uint64{1, 2, 3})
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Retain()
}

func TestReleaseBelowZeroPanics(t *testing.T) {
	b := build(t, [3]uint64{1, 2, 3})
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Release()
}

func TestMinMaxTs(t *testing.T) {
	b := build(t, [3]uint64{1, 2, 30}, [3]uint64{1, 2, 10}, [3]uint64{1, 2, 20})
	min, max, ok := b.MinMaxTs()
	if !ok || min != 10 || max != 30 {
		t.Fatalf("min=%d max=%d ok=%v", min, max, ok)
	}
	bd, _ := NewBuilder(9, kvSchema, 1, memsim.DRAM)
	empty := bd.Seal()
	if _, _, ok := empty.MinMaxTs(); ok {
		t.Fatal("empty bundle must report !ok")
	}
}

// Property: column layout preserves every appended row exactly.
func TestRoundTripRows(t *testing.T) {
	f := func(rows [][3]uint64) bool {
		if len(rows) == 0 {
			return true
		}
		bd, err := NewBuilder(3, kvSchema, len(rows), memsim.HBM)
		if err != nil {
			return false
		}
		for _, r := range rows {
			if err := bd.Append(r[0], r[1], r[2]); err != nil {
				return false
			}
		}
		b := bd.Seal()
		if b.Rows() != len(rows) {
			return false
		}
		for i, r := range rows {
			for c := 0; c < 3; c++ {
				if b.At(i, c) != r[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
