// Package bundle implements record bundles, the engine's unit of data
// parallelism (paper §2.1, Figure 1c). A bundle holds a batch of numeric
// records in columnar layout: every record has the same set of 64-bit
// columns, one of which is the event timestamp. Bundles live in DRAM at
// ingress, are never modified after sealing (paper §5.1), and are
// reclaimed by reference counting when no KPA points into them.
package bundle

import (
	"fmt"
	"sync/atomic"

	"streambox/internal/memsim"
)

// Schema describes the column layout of a stream's records.
type Schema struct {
	// NumCols is the number of 64-bit columns per record.
	NumCols int
	// TsCol is the index of the event-timestamp column.
	TsCol int
	// Names optionally labels columns for debugging and examples.
	Names []string
}

// Validate reports schema errors.
func (s Schema) Validate() error {
	if s.NumCols <= 0 {
		return fmt.Errorf("bundle: schema needs at least one column, got %d", s.NumCols)
	}
	if s.TsCol < 0 || s.TsCol >= s.NumCols {
		return fmt.Errorf("bundle: timestamp column %d out of range [0,%d)", s.TsCol, s.NumCols)
	}
	if s.Names != nil && len(s.Names) != s.NumCols {
		return fmt.Errorf("bundle: %d names for %d columns", len(s.Names), s.NumCols)
	}
	return nil
}

// RecordBytes returns the in-memory size of one record.
func (s Schema) RecordBytes() int64 { return int64(s.NumCols) * 8 }

// ColName returns a printable name for column c.
func (s Schema) ColName(c int) string {
	if s.Names != nil && c < len(s.Names) {
		return s.Names[c]
	}
	return fmt.Sprintf("col%d", c)
}

// Bundle is a sealed batch of records. All access is read-only after
// Seal; the reference count tracks how many KPAs point into the bundle.
type Bundle struct {
	id     uint64
	schema Schema
	cols   [][]uint64
	n      int
	sealed bool
	tier   memsim.Tier
	rc     atomic.Int64

	// alloc is the backing slab allocation, freed when rc drops to zero.
	alloc interface{ Free() }
	// onFree hooks run after the bundle is reclaimed.
	onFree []func(*Bundle)
}

// Builder assembles a bundle row by row, then seals it.
type Builder struct {
	b   *Bundle
	reg *Registry
}

// NewBuilder starts a bundle of up to capacity records on tier t.
func NewBuilder(id uint64, schema Schema, capacity int, tier memsim.Tier) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("bundle: capacity must be positive, got %d", capacity)
	}
	cols := make([][]uint64, schema.NumCols)
	for i := range cols {
		cols[i] = make([]uint64, 0, capacity)
	}
	return &Builder{b: &Bundle{id: id, schema: schema, cols: cols, tier: tier}}, nil
}

// Append adds one record; vals must have one value per column.
func (bd *Builder) Append(vals ...uint64) error {
	if bd.b.sealed {
		return fmt.Errorf("bundle %d: append after seal", bd.b.id)
	}
	if len(vals) != bd.b.schema.NumCols {
		return fmt.Errorf("bundle %d: %d values for %d columns", bd.b.id, len(vals), bd.b.schema.NumCols)
	}
	for i, v := range vals {
		bd.b.cols[i] = append(bd.b.cols[i], v)
	}
	bd.b.n++
	return nil
}

// AppendColumnar bulk-appends column-major data; every slice must have
// the same length.
func (bd *Builder) AppendColumnar(cols ...[]uint64) error {
	if bd.b.sealed {
		return fmt.Errorf("bundle %d: append after seal", bd.b.id)
	}
	if len(cols) != bd.b.schema.NumCols {
		return fmt.Errorf("bundle %d: %d columns for %d-column schema", bd.b.id, len(cols), bd.b.schema.NumCols)
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("bundle %d: ragged columns (%d vs %d)", bd.b.id, len(c), n)
		}
		bd.b.cols[i] = append(bd.b.cols[i], c...)
	}
	bd.b.n += n
	return nil
}

// Len returns the number of records appended so far.
func (bd *Builder) Len() int { return bd.b.n }

// AttachAlloc attaches the backing slab allocation before sealing; it
// is freed when the bundle's reference count drops to zero.
func (bd *Builder) AttachAlloc(a interface{ Free() }) error {
	if bd.b.sealed {
		return fmt.Errorf("bundle %d: attach after seal", bd.b.id)
	}
	bd.b.alloc = a
	return nil
}

// Seal finalizes the bundle with an initial reference count of 1 (held
// by the producer; transferred to the first consumer). Bundles built
// through a Registry are registered here.
func (bd *Builder) Seal() *Bundle {
	bd.b.sealed = true
	bd.b.rc.Store(1)
	if bd.reg != nil {
		bd.reg.register(bd.b)
		bd.reg = nil
	}
	return bd.b
}

// SetAlloc attaches the backing slab allocation (freed on reclaim).
func (b *Bundle) SetAlloc(a interface{ Free() }) { b.alloc = a }

// AddOnFree registers a reclamation hook.
func (b *Bundle) AddOnFree(fn func(*Bundle)) { b.onFree = append(b.onFree, fn) }

// ID returns the bundle identifier.
func (b *Bundle) ID() uint64 { return b.id }

// Schema returns the record layout.
func (b *Bundle) Schema() Schema { return b.schema }

// Rows returns the record count.
func (b *Bundle) Rows() int { return b.n }

// Tier returns the memory tier holding the bundle.
func (b *Bundle) Tier() memsim.Tier { return b.tier }

// Bytes returns the in-memory size of the bundle's data.
func (b *Bundle) Bytes() int64 { return int64(b.n) * b.schema.RecordBytes() }

// Col returns column c. The returned slice must not be mutated: bundles
// are immutable after sealing.
func (b *Bundle) Col(c int) []uint64 {
	if c < 0 || c >= len(b.cols) {
		panic(fmt.Sprintf("bundle %d: column %d out of range [0,%d)", b.id, c, len(b.cols)))
	}
	return b.cols[c]
}

// At returns the value of column c in row r.
func (b *Bundle) At(r, c int) uint64 { return b.Col(c)[r] }

// OverwriteAt updates one value in place. Bundles never change
// structurally after sealing (no adds, deletes or reorders, paper
// §5.1), but §4.3's dirty-key write-back does update values: the YSB
// external join writes campaign IDs back into the ad_id column.
func (b *Bundle) OverwriteAt(r, c int, v uint64) { b.Col(c)[r] = v }

// Ts returns the event timestamp of row r.
func (b *Bundle) Ts(r int) uint64 { return b.cols[b.schema.TsCol][r] }

// RC returns the current reference count (for tests and stats).
func (b *Bundle) RC() int64 { return b.rc.Load() }

// Retain increments the reference count. It panics if the bundle was
// already reclaimed — KPAs must only retain live bundles.
func (b *Bundle) Retain() {
	if b.rc.Add(1) <= 1 {
		panic(fmt.Sprintf("bundle %d: retain after reclaim", b.id))
	}
}

// Release decrements the reference count and reclaims the bundle when it
// reaches zero, freeing the slab allocation (paper §5.1).
func (b *Bundle) Release() {
	n := b.rc.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("bundle %d: release below zero", b.id))
	}
	if n == 0 {
		if b.alloc != nil {
			b.alloc.Free()
			b.alloc = nil
		}
		for _, fn := range b.onFree {
			fn(b)
		}
	}
}

// String renders a short description.
func (b *Bundle) String() string {
	return fmt.Sprintf("bundle(id=%d rows=%d cols=%d tier=%v rc=%d)",
		b.id, b.n, b.schema.NumCols, b.tier, b.rc.Load())
}

// MinMaxTs scans the timestamp column and returns its range; ok is false
// for an empty bundle.
func (b *Bundle) MinMaxTs() (min, max uint64, ok bool) {
	ts := b.cols[b.schema.TsCol]
	if len(ts) == 0 {
		return 0, 0, false
	}
	min, max = ts[0], ts[0]
	for _, v := range ts[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}
