package bundle

import (
	"testing"

	"streambox/internal/memsim"
)

func TestRegistryAssignsIDs(t *testing.T) {
	r := NewRegistry()
	bd1, err := r.NewBuilder(kvSchema, 4, memsim.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	bd2, _ := r.NewBuilder(kvSchema, 4, memsim.DRAM)
	b1 := bd1.Seal()
	b2 := bd2.Seal()
	if b1.ID() == b2.ID() {
		t.Fatal("duplicate IDs")
	}
	if r.Lookup(uint32(b1.ID())) != b1 {
		t.Fatal("lookup failed")
	}
	if r.Live() != 2 {
		t.Fatalf("live = %d", r.Live())
	}
}

func TestRegistryUnregistersOnReclaim(t *testing.T) {
	r := NewRegistry()
	bd, _ := r.NewBuilder(kvSchema, 4, memsim.DRAM)
	bd.Append(1, 2, 3)
	b := bd.Seal()
	id := uint32(b.ID())
	b.Release()
	if r.Lookup(id) != nil {
		t.Fatal("reclaimed bundle still registered")
	}
	if r.Live() != 0 {
		t.Fatalf("live = %d", r.Live())
	}
}

func TestRegistryUnsealedNotVisible(t *testing.T) {
	r := NewRegistry()
	bd, _ := r.NewBuilder(kvSchema, 4, memsim.DRAM)
	if r.Live() != 0 {
		t.Fatal("unsealed builder must not be registered")
	}
	bd.Seal()
	if r.Live() != 1 {
		t.Fatal("sealed bundle must be registered")
	}
}

func TestRegistryInvalidSchema(t *testing.T) {
	r := NewRegistry()
	if _, err := r.NewBuilder(Schema{NumCols: 0, TsCol: 0}, 4, memsim.DRAM); err == nil {
		t.Fatal("expected error")
	}
}
