package bundle

import (
	"fmt"
	"sync"

	"streambox/internal/memsim"
)

// Registry assigns 32-bit bundle IDs and resolves them back to live
// bundles. KPA pointers pack (bundle ID, row) into 64 bits, so a
// process-wide ID space makes pointers meaningful across KPA merges
// without remapping — the role virtual addresses play in the paper's
// C++ implementation.
type Registry struct {
	mu   sync.Mutex
	next uint32
	m    map[uint32]*Bundle
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[uint32]*Bundle)}
}

// NewBuilder starts a bundle with a fresh registry-assigned ID. The
// bundle is registered when sealed and unregistered when its reference
// count drops to zero.
func (r *Registry) NewBuilder(schema Schema, capacity int, tier memsim.Tier) (*Builder, error) {
	r.mu.Lock()
	r.next++
	id := r.next
	r.mu.Unlock()
	bd, err := NewBuilder(uint64(id), schema, capacity, tier)
	if err != nil {
		return nil, err
	}
	bd.reg = r
	return bd, nil
}

// Lookup resolves a bundle ID; nil if unknown or reclaimed.
func (r *Registry) Lookup(id uint32) *Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

// Live returns the number of registered bundles.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

func (r *Registry) register(b *Bundle) {
	if b.id > 0xFFFFFFFF {
		panic(fmt.Sprintf("bundle: id %d exceeds 32-bit pointer space", b.id))
	}
	r.mu.Lock()
	r.m[uint32(b.id)] = b
	r.mu.Unlock()
	b.AddOnFree(func(bb *Bundle) {
		r.mu.Lock()
		delete(r.m, uint32(bb.id))
		r.mu.Unlock()
	})
}
