package runtime

import (
	"math/rand"
	"testing"

	"streambox/internal/bundle"
	"streambox/internal/kpa"
	"streambox/internal/wm"
)

// orderAgg is an order-sensitive aggregator: its result is a fold hash
// of the values in visit order, so any reordering of equal-key pairs
// between two runs of the pipeline changes the output. It pins that the
// pane path presents every window's pairs in exactly the sequence the
// direct duplicate-scatter path does.
type orderAgg struct{ h uint64 }

func (a *orderAgg) Add(v uint64) { a.h = a.h*1099511628211 + v + 1 }
func (a *orderAgg) Result() uint64 {
	if a.h == 0 {
		return 0
	}
	return a.h
}

func orderSensitive() kpa.AggFactory { return func() kpa.Agg { return &orderAgg{} } }

// skewedGen is a deterministic generator with heavily skewed keys (the
// minimum of two uniform draws) and timestamps that are non-decreasing
// within a bundle — the arrival order real ingestion produces, and the
// property both extraction paths' equal-key orderings agree under.
type skewedGen struct {
	keys   uint64
	rng    *rand.Rand
	schema bundle.Schema
}

func newSkewedGen(keys uint64, seed int64) *skewedGen {
	return &skewedGen{
		keys:   keys,
		rng:    rand.New(rand.NewSource(seed)),
		schema: bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}},
	}
}

func (g *skewedGen) Schema() bundle.Schema { return g.schema }

func (g *skewedGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		a, b := g.rng.Uint64()%g.keys, g.rng.Uint64()%g.keys
		key := a
		if b < a {
			key = b // skew: low keys are hot
		}
		bd.Append(key, g.rng.Uint64()%1000, ts)
	}
}

// paneTestPlan builds a sliding plan over the skewed stream with an
// order-sensitive aggregator.
func paneTestPlan(win wm.Windowing, seed int64) Plan {
	plan := testPlan(newSkewedGen(13, seed), 24_000)
	plan.Win = win
	plan.NewAgg = orderSensitive()
	plan.Label = "panes"
	return plan
}

// TestPaneMatchesDirectSliding is the pane-path equivalence property:
// across overlap factors 1, 2, 4, 7 and 16, a non-divisible
// size/slide, skewed keys and an order-sensitive aggregator, the
// pane-based shared path must reproduce the DirectSliding
// duplicate-scatter baseline bit for bit — same windows, same keys,
// same fold hashes. Run under -race in CI.
func TestPaneMatchesDirectSliding(t *testing.T) {
	shapes := []wm.Windowing{
		wm.Sliding(1_000_000, 1_000_000), // overlap 1 (degenerates to fixed)
		wm.Sliding(1_000_000, 500_000),   // overlap 2
		wm.Sliding(1_000_000, 250_000),   // overlap 4
		wm.Sliding(700_000, 100_000),     // overlap 7
		wm.Sliding(1_000_000, 62_500),    // overlap 16
		wm.Sliding(700_000, 200_000),     // non-divisible: pane = gcd = 100_000
		wm.Sliding(1_000_000, 333_333),   // near-coprime: gcd 1, panes fall back to direct
	}
	for _, win := range shapes {
		win := win
		pane, err := Run(paneTestPlan(win, 42), Config{Workers: 4, Capture: true})
		if err != nil {
			t.Fatalf("size=%d slide=%d pane: %v", win.Size, win.Slide, err)
		}
		direct, err := Run(paneTestPlan(win, 42), Config{Workers: 4, Capture: true, DirectSliding: true})
		if err != nil {
			t.Fatalf("size=%d slide=%d direct: %v", win.Size, win.Slide, err)
		}
		if pane.IngestedRecords != direct.IngestedRecords {
			t.Fatalf("size=%d slide=%d: ingested %d vs %d", win.Size, win.Slide,
				pane.IngestedRecords, direct.IngestedRecords)
		}
		p, d := rowsByWindowKey(pane.Rows), rowsByWindowKey(direct.Rows)
		if len(p) == 0 || len(p) != len(d) {
			t.Fatalf("size=%d slide=%d: pane closed %d windows, direct %d",
				win.Size, win.Slide, len(p), len(d))
		}
		for w, pk := range p {
			dk, ok := d[w]
			if !ok || len(pk) != len(dk) {
				t.Fatalf("size=%d slide=%d window %d: pane %d keys, direct %d (present=%v)",
					win.Size, win.Slide, w, len(pk), len(dk), ok)
			}
			for k, v := range pk {
				if dk[k] != v {
					t.Fatalf("size=%d slide=%d window %d key %d: pane fold %x, direct fold %x — pair order diverged",
						win.Size, win.Slide, w, k, v, dk[k])
				}
			}
		}
		if eligible := win.PaneSharing(); eligible {
			if pane.PaneRuns == 0 {
				t.Fatalf("size=%d slide=%d: pane path reported no pane runs", win.Size, win.Slide)
			}
			if win.Overlap() > 1 && pane.SharedRunRefs == 0 {
				t.Fatalf("size=%d slide=%d: overlapping windows took no shared references", win.Size, win.Slide)
			}
		} else if pane.PaneRuns != 0 {
			t.Fatalf("size=%d slide=%d: ineligible shape must fall back to direct scatter", win.Size, win.Slide)
		}
		if direct.PaneRuns != 0 || direct.SharedRunRefs != 0 {
			t.Fatalf("direct baseline must not report pane sharing (%d runs, %d refs)",
				direct.PaneRuns, direct.SharedRunRefs)
		}
	}
}

// TestPaneStateSharing checks the observable effect the panes exist
// for: at overlap 8 the pane path's peak window-state bytes sit far
// below the duplicate-scatter baseline's, and extraction stages
// overlap× fewer physical pairs for the same logical assignments.
func TestPaneStateSharing(t *testing.T) {
	win := wm.Sliding(1_000_000, 125_000) // overlap 8
	plan := paneTestPlan(win, 7)
	pane, err := Run(plan, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(paneTestPlan(win, 7), Config{Workers: 4, DirectSliding: true})
	if err != nil {
		t.Fatal(err)
	}
	panePeak := pane.PeakWindowStateTotalBytes
	directPeak := direct.PeakWindowStateTotalBytes
	if panePeak == 0 || directPeak == 0 {
		t.Fatalf("missing state accounting: pane %d, direct %d", panePeak, directPeak)
	}
	if pane.PeakWindowStateBytes[0]+pane.PeakWindowStateBytes[1] < panePeak {
		t.Fatal("per-tier peaks cannot sum below the combined peak")
	}
	if directPeak < 2*panePeak {
		t.Fatalf("peak state: pane %d, direct %d — sharing should cut state by ~overlap (8x)",
			panePeak, directPeak)
	}
	if pane.ExtractedPairs != direct.ExtractedPairs {
		t.Fatalf("logical pair accounting diverged: pane %d, direct %d",
			pane.ExtractedPairs, direct.ExtractedPairs)
	}
	if pane.SharedRunRefs < pane.PaneRuns {
		t.Fatalf("at overlap 8 every interior pane run is shared: %d refs for %d runs",
			pane.SharedRunRefs, pane.PaneRuns)
	}
}

// TestPaneFanInClose drives the pane path past the merge fan-in cap:
// tiny bundles at overlap 8 give every window far more shared pane
// runs than one loser tree holds, so closes must compact shared runs
// (releasing one reference each) before the fused merge-reduce, and
// totals must still balance.
func TestPaneFanInClose(t *testing.T) {
	plan := testPlan(newSkewedGen(5, 3), 12_000)
	plan.Win = wm.Sliding(1_000_000, 125_000)
	plan.Source.BundleRecords = 100 // 40 bundles per window of records
	plan.Source.WatermarkEvery = 40
	pane, err := Run(plan, Config{Workers: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := func() (Report, error) {
		plan := testPlan(newSkewedGen(5, 3), 12_000)
		plan.Win = wm.Sliding(1_000_000, 125_000)
		plan.Source.BundleRecords = 100
		plan.Source.WatermarkEvery = 40
		return Run(plan, Config{Workers: 4, Capture: true, DirectSliding: true})
	}()
	if err != nil {
		t.Fatal(err)
	}
	p, d := rowsByWindowKey(pane.Rows), rowsByWindowKey(direct.Rows)
	if len(p) == 0 || len(p) != len(d) {
		t.Fatalf("pane closed %d windows, direct %d", len(p), len(d))
	}
	var paneSum, directSum uint64
	for _, keys := range p {
		for _, v := range keys {
			paneSum += v
		}
	}
	for _, keys := range d {
		for _, v := range keys {
			directSum += v
		}
	}
	if paneSum != directSum {
		t.Fatalf("sum over windows: pane %d, direct %d — a shared run was dropped or double-merged",
			paneSum, directSum)
	}
}
