package runtime

import (
	"sync"
	"testing"
	"time"

	"streambox/internal/bundle"
	"streambox/internal/engine"
	"streambox/internal/ingress"
	"streambox/internal/ops"
	"streambox/internal/wm"
)

// TestOverloadedSourceEngagesBackpressure overloads the pipeline — an
// ingest loop that can produce far faster than a single throttled
// worker can drain — and checks that backpressure engages (ingest
// pauses instead of the backlog growing unboundedly), the run still
// terminates, and every window's results are exactly correct. Run
// under -race in CI.
func TestOverloadedSourceEngagesBackpressure(t *testing.T) {
	const (
		keys          = 50
		windowRecords = 10_000
		totalRecords  = 300_000 // 30 windows
	)
	plan := Plan{
		Gen: ingress.NewRoundRobinKV(keys, 1),
		Source: engine.SourceConfig{
			Name:           "overload",
			Rate:           totalRecords,
			BundleRecords:  500,
			WindowRecords:  windowRecords,
			WatermarkEvery: 4,
		},
		Win:          wm.Fixed(1_000_000),
		TotalRecords: totalRecords,
		TsCol:        2,
		KeyCol:       0,
		ValCol:       1,
		NewAgg:       ops.Sum(),
		Label:        "sum",
	}
	rep, err := Run(plan, Config{
		Workers:        1,
		MaxQueuedTasks: 1, // ingest stalls whenever even one task waits
		Capture:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != totalRecords {
		t.Fatalf("ingested %d, want %d", rep.IngestedRecords, totalRecords)
	}
	if rep.PausedNanos == 0 {
		t.Fatal("overloaded run never paused ingest: backpressure did not engage")
	}
	wantWindows := totalRecords / windowRecords
	if rep.WindowsClosed != wantWindows {
		t.Fatalf("closed %d windows, want %d", rep.WindowsClosed, wantWindows)
	}
	// Round-robin keys with value 1: every window sums to exactly
	// windowRecords/keys per key.
	if len(rep.Rows) != wantWindows*keys {
		t.Fatalf("captured %d rows, want %d", len(rep.Rows), wantWindows*keys)
	}
	for _, r := range rep.Rows {
		if r.Val != windowRecords/keys {
			t.Fatalf("window %d key %d sum %d, want %d", r.Win, r.Key, r.Val, windowRecords/keys)
		}
	}
}

// TestFeedOverloadBackpressure drives the same overload through the
// external-feed path: a pushing source far outpaces one throttled
// worker, backpressure stalls the feed consumer (and with it, real
// network clients via withheld credits), and the drain still yields
// exact per-window results.
func TestFeedOverloadBackpressure(t *testing.T) {
	const (
		keys          = 25
		batchRecords  = 500
		windowRecords = 5_000
		totalRecords  = 100_000 // 20 windows
	)
	feed := newTestFeed(3)
	plan := Plan{
		Feed:   feed,
		Source: engine.SourceConfig{Name: "netfeed", WatermarkEvery: 4},
		Win:    wm.Fixed(1_000_000),
		TsCol:  2,
		KeyCol: 0,
		ValCol: 1,
		NewAgg: ops.Sum(),
		Label:  "sum",
	}
	e, err := Start(plan, Config{Workers: 1, MaxQueuedTasks: 1, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	// Producer: one virtual connection pushing round-robin batches as
	// fast as the runtime accepts them.
	go func() {
		var i uint64
		for i < totalRecords {
			cols := make([][]uint64, 3)
			for r := 0; r < batchRecords; r++ {
				ts := i / windowRecords * 1_000_000 // all of a window's records share a tick
				cols[0] = append(cols[0], i%keys)
				cols[1] = append(cols[1], 1)
				cols[2] = append(cols[2], ts)
				i++
			}
			feed.pushCols(cols)
		}
		feed.Close()
	}()
	rep, err := e.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != totalRecords {
		t.Fatalf("ingested %d, want %d", rep.IngestedRecords, totalRecords)
	}
	if rep.PausedNanos == 0 {
		t.Fatal("overloaded feed run never paused: backpressure did not engage")
	}
	wantWindows := totalRecords / windowRecords
	if rep.WindowsClosed != wantWindows {
		t.Fatalf("closed %d windows, want %d", rep.WindowsClosed, wantWindows)
	}
	if len(rep.Rows) != wantWindows*keys {
		t.Fatalf("captured %d rows, want %d", len(rep.Rows), wantWindows*keys)
	}
	for _, r := range rep.Rows {
		if r.Val != windowRecords/keys {
			t.Fatalf("window %d key %d sum %d, want %d", r.Win, r.Key, r.Val, windowRecords/keys)
		}
	}
}

// testFeed is a minimal ExternalFeed for runtime tests (the production
// implementation lives in internal/netio, which sits above runtime).
type testFeed struct {
	ch     chan [][]uint64
	mu     sync.Mutex
	highTs uint64
	closed bool
}

func newTestFeed(buffer int) *testFeed {
	return &testFeed{ch: make(chan [][]uint64, buffer)}
}

func (f *testFeed) Schema() bundle.Schema {
	return bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}}
}

func (f *testFeed) pushCols(cols [][]uint64) { f.ch <- cols }

func (f *testFeed) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	close(f.ch)
}

func (f *testFeed) Recv(maxWait time.Duration) ([][]uint64, bool, bool) {
	var timeout <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		timeout = t.C
	}
	var cols [][]uint64
	var ok bool
	select {
	case cols, ok = <-f.ch:
	case <-timeout:
		return nil, true, true
	}
	if !ok {
		return nil, false, false
	}
	f.mu.Lock()
	for _, ts := range cols[2] {
		if ts > f.highTs {
			f.highTs = ts
		}
	}
	f.mu.Unlock()
	return cols, true, false
}

func (f *testFeed) Watermark() wm.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.highTs
}
