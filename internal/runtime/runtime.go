// Package runtime is the native multicore execution backend: it runs
// declarative pipelines on real goroutines over real data, alongside
// the discrete-event simulator (internal/engine + internal/memsim)
// rather than replacing it. The structure mirrors the paper's runtime
// (§3, §5): ingest builds DRAM record bundles, extraction creates Key
// Pointer Arrays, radix run formation sorts one KPA per bundle per
// window, and windows close through the paper's §4.3 parallel full-KPA
// merge: the key space is range-partitioned once across all of a
// window's sorted runs and each partition streams through a loser-tree
// k-way merge fused with keyed reduction, dereferencing pointers back
// into the DRAM bundles as pairs arrive — one sequential read of the
// inputs, no intermediate KPA materialization, no separate reduce
// sweep. Windows that accumulate more runs than the fan-in cap first
// compact them in k-way batches (a single materialization, not a
// log2(R) pairwise tree); the old pairwise merge tree plus separate
// reduce survives as a benchmarking baseline behind
// Config.PairwiseClose.
//
// Sliding windows aggregate through shared panes: extraction scatters
// each surviving record into exactly one non-overlapping pane of width
// gcd(Size, Slide) and radix-sorts one pane run per bundle×pane, and
// every sliding window references the sorted runs of the panes it
// covers instead of holding a private copy of each record. Runs are
// reference counted (one reference per covering window, kpa.Retain/
// Destroy), so a pane's slab returns to the mempool exactly once, when
// its last covering window closes — extract and sort work, window
// state and DRAM traffic all drop by the Size/Slide overlap factor
// relative to scattering every record into every window it belongs to.
// The duplicate-scatter path survives as a benchmarking baseline
// behind Config.DirectSliding. Everything is scheduled on a
// work-stealing worker pool whose queues honor the Urgent/High/Low
// performance-impact tags, with KPA placement drawn from the
// demand-balance knob and ingestion backpressure driven by mempool
// utilization.
//
// With Config.SpillCapacity set, the two memory tiers grow a third:
// an mmap'd cold spill file (internal/spill) attached to the mempool
// as memsim.Spill, forming a degradation ladder — HBM for hot KPAs,
// DRAM for bundles and overflow, the spill file for sealed runs that
// lost their heat. An adaptive placement controller (controller.go)
// then replaces the paper's static knob schedule: each monitor tick it
// drives {k_low, k_high} from pool occupancy, queue depths and
// per-tier window-state bytes, and when utilization crosses the
// eviction high-water mark it walks the coldest sealed quiescent runs
// out to the spill file (spillpath.go), materializing their values so
// the DRAM bundles free too. The ingest loop takes the same ladder
// synchronously on pool exhaustion — evict first, force a watermark
// only if the spill file cannot absorb the overshoot — and window
// close transparently loads spilled runs back (or merges straight
// over the mmap view), bit-identical to the never-spilled run. The
// result: working sets ~2x the memory budget degrade into slower
// closes instead of ErrOverloaded/ErrExhausted.
package runtime

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/algo"
	"streambox/internal/bundle"
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
	"streambox/internal/spill"
	"streambox/internal/wm"
)

// BackpressureUtilization is the DRAM pool utilization above which
// ingest stalls — and above which the network ingest server withholds
// flow-control credits from clients.
const BackpressureUtilization = 0.95

// ShedUtilization is the pool pressure (worst tier utilization) above
// which the ingest server sheds *new* connections at the handshake with
// an overloaded ack, rather than admitting another stream it cannot
// feed. Deliberately above BackpressureUtilization: established
// connections are throttled first; admission is refused only when
// throttling has not been enough.
const ShedUtilization = 0.98

// Filter keeps records whose column Col satisfies Keep; filters fuse
// into the extraction pass.
type Filter struct {
	Col  int
	Keep func(uint64) bool
}

// ExternalFeed supplies record batches pushed from outside the process
// (network ingestion, internal/netio). The native backend pulls sealed
// batches from it instead of calling a Generator; the run drains and
// terminates when the feed closes.
type ExternalFeed interface {
	// Schema is the record layout of every batch.
	Schema() bundle.Schema
	// Recv blocks up to maxWait (forever when <= 0) for the next
	// column-major batch (one slice per schema column, equal lengths).
	// ok is false when the feed is closed and fully drained; idle is
	// true when maxWait elapsed first — the runtime uses idle ticks to
	// keep closing windows while connections are quiet.
	Recv(maxWait time.Duration) (cols [][]uint64, ok, idle bool)
	// Watermark is the stream's event-time watermark: the minimum over
	// connected sources of the highest timestamp each has delivered.
	// Windows ending at or before it are safe to close.
	Watermark() wm.Time
}

// BatchRecycler is optionally implemented by an ExternalFeed: once the
// runtime has copied a received batch into a bundle, it hands the
// column buffers back through Recycle so the feed's decoder can refill
// them instead of allocating fresh ones per frame.
type BatchRecycler interface {
	Recycle(cols [][]uint64)
}

// Plan is the native operator path: one source feeding
// filter* → window → keyed aggregation → capture/sink. The streambox
// package translates declarative pipelines into a Plan; pipelines
// outside this shape run on the simulated backend.
type Plan struct {
	// Gen produces the stream; Source carries its bundle size, window
	// density and watermark cadence (Rate only sets TotalRecords — the
	// native backend runs as fast as the hardware allows).
	Gen    engine.Generator
	Source engine.SourceConfig
	// Feed, when non-nil, replaces Gen: batches arrive pushed from the
	// network and the run lasts until the feed closes. Source is then
	// only consulted for WatermarkEvery (the watermark refresh cadence,
	// in batches).
	Feed ExternalFeed
	// Win is the pipeline windowing.
	Win wm.Windowing
	// TotalRecords is the number of records to ingest.
	TotalRecords int64
	// Filters are applied during extraction, in order.
	Filters []Filter
	// TsCol is the windowing timestamp column.
	TsCol int
	// KeyCol/ValCol and NewAgg define the keyed aggregation.
	KeyCol, ValCol int
	NewAgg         kpa.AggFactory
	// Label names the aggregation in errors and stats.
	Label string
}

// schema returns the record layout of the plan's source.
func (p Plan) schema() bundle.Schema {
	if p.Feed != nil {
		return p.Feed.Schema()
	}
	return p.Gen.Schema()
}

// Validate reports plan errors.
func (p Plan) Validate() error {
	if (p.Gen == nil) == (p.Feed == nil) {
		return fmt.Errorf("runtime: plan needs exactly one of Gen and Feed")
	}
	if p.Gen != nil {
		if err := p.Source.Validate(); err != nil {
			return err
		}
		if p.TotalRecords <= 0 {
			return fmt.Errorf("runtime: total records must be positive")
		}
	} else if p.Source.WatermarkEvery <= 0 {
		return fmt.Errorf("runtime: feed plans need a positive watermark cadence")
	}
	if err := p.Win.Validate(); err != nil {
		return err
	}
	if p.NewAgg == nil {
		return fmt.Errorf("runtime: plan has no aggregator")
	}
	schema := p.schema()
	if p.TsCol < 0 || p.TsCol >= schema.NumCols {
		return fmt.Errorf("runtime: window timestamp column %d out of range", p.TsCol)
	}
	if p.KeyCol < 0 || p.KeyCol >= schema.NumCols {
		return fmt.Errorf("runtime: key column %d out of range", p.KeyCol)
	}
	if p.ValCol < 0 || p.ValCol >= schema.NumCols {
		return fmt.Errorf("runtime: value column %d out of range", p.ValCol)
	}
	for _, f := range p.Filters {
		if f.Col < 0 || f.Col >= schema.NumCols || f.Keep == nil {
			return fmt.Errorf("runtime: invalid filter on column %d", f.Col)
		}
	}
	return nil
}

// Config configures one native execution.
type Config struct {
	// Workers is the worker-pool size (0 = one per CPU, via GOMAXPROCS).
	Workers int
	// Machine bounds the mempool's tier capacities (zero value: KNL).
	// Only capacities and the DRAM bandwidth ceiling are used — the
	// native backend measures real time instead of simulating it.
	Machine memsim.Config
	// ReservedHBM is the Urgent allocation pool (0 picks 256 MiB).
	ReservedHBM int64
	// Seed drives the knob's placement randomness.
	Seed int64
	// Capture retains result rows in the report.
	Capture bool
	// MonitorInterval is the knob/backpressure refresh period
	// (0 picks the paper's 10 ms, in real time).
	MonitorInterval time.Duration
	// MaxQueuedTasks caps the scheduler backlog before ingest blocks
	// (0 picks 8 tasks per worker).
	MaxQueuedTasks int
	// ExhaustTimeout bounds how long ingest waits on an exhausted DRAM
	// pool before the run fails with an error instead of hanging
	// (0 picks 5 s).
	ExhaustTimeout time.Duration
	// WindowSink, when non-nil, receives every closed window's result
	// rows as it closes — the live-query feed for netio's result store.
	// It is called from worker goroutines and must be safe for
	// concurrent use.
	WindowSink func(start, end wm.Time, rows []Row)
	// NoRecycle disables the mempool's slab recycling, so every KPA and
	// kernel scratch buffer is a fresh Go-heap allocation. Benchmarking
	// aid (cmd/sbx-bench -exp alloc): isolates what the recycling
	// allocator buys over the garbage collector.
	NoRecycle bool
	// PairwiseClose closes windows with the old pairwise merge tree
	// followed by a separate range-parallel reduce pass instead of the
	// fused range-partitioned k-way merge-reduce. Benchmarking baseline
	// (cmd/sbx-bench -exp close): results are identical; the pairwise
	// path materializes a full KPA per merge level and re-streams the
	// merged KPA to reduce it.
	PairwiseClose bool
	// SealedBefore suppresses externalization of windows already sealed
	// and published before a crash: windows whose end is at or before it
	// close normally but are neither delivered to WindowSink nor
	// captured. Recovery replays the write-ahead log through the normal
	// feed path with SealedBefore set to the checkpoint's sealed
	// watermark, so rebuilt pre-sealed windows do not publish twice.
	SealedBefore wm.Time
	// DirectSliding scatters every record of a sliding-window plan into
	// all Size/Slide windows containing it instead of the default
	// pane-based shared aggregation (each record extracted once into a
	// non-overlapping pane, sorted pane runs refcounted and shared by
	// every covering window). Benchmarking baseline (cmd/sbx-bench
	// -exp panes): aggregates are identical — bit-for-bit even for
	// order-sensitive aggregators when records within a bundle are
	// time-ordered, which every generator produces (all built-in
	// aggregators are order-insensitive, so unordered network batches
	// still aggregate identically). The direct path multiplies staging,
	// radix-sort work and window-state bytes by the overlap factor; it
	// is also what near-coprime size/slide plans fall back to, where
	// the gcd pane width would shatter windows into too many panes
	// (see maxPanesPerOverlap).
	DirectSliding bool
	// SpillDir and SpillCapacity enable the mmap'd cold spill tier: a
	// SpillCapacity-byte temp file created under SpillDir (the system
	// temp dir when empty), mmap'd and immediately unlinked, attached to
	// the mempool as memsim.Spill. With the spill tier attached the
	// adaptive placement controller replaces the paper's knob schedule:
	// it drives {k_low, k_high} from a control loop over pool occupancy,
	// queue depths and per-tier window-state bytes, and evicts the
	// coldest sealed runs to the spill file before utilization reaches
	// the shed threshold, so overload degrades to slower closes instead
	// of ErrOverloaded/ErrExhausted. SpillCapacity = 0 disables the tier
	// (and the controller) entirely.
	SpillDir      string
	SpillCapacity int64
	// PinnedKnob pins the demand-balance knob to a fixed
	// {k_low, k_high} for the whole run and disables both the paper's
	// knob schedule and the adaptive controller. Ablation aid
	// (cmd/sbx-bench -exp adaptive): the fixed settings the controller
	// is measured against.
	PinnedKnob *[2]float64
	// EvictHighWater/EvictLowWater bound the controller's eviction
	// hysteresis over the worst memory-tier utilization: eviction starts
	// above the high water mark and continues until utilization falls
	// back below the low water mark (0 picks 0.85 and 0.70). Only
	// meaningful with SpillCapacity > 0.
	EvictHighWater float64
	EvictLowWater  float64
	// ShedUtilization overrides the pool pressure above which the ingest
	// server sheds new connections (0 picks the ShedUtilization
	// constant, 0.98).
	ShedUtilization float64
}

// ShedThreshold returns the admission-shed pressure threshold for this
// config: Config.ShedUtilization when set, the package default
// otherwise.
func (c Config) ShedThreshold() float64 {
	if c.ShedUtilization > 0 {
		return c.ShedUtilization
	}
	return ShedUtilization
}

// Row is one keyed result: (key, aggregate, window start).
type Row struct {
	Key uint64
	Val uint64
	Win wm.Time
}

// Report summarises one native run with real (wall-clock) figures.
type Report struct {
	IngestedRecords int64
	EmittedRecords  int64
	WindowsClosed   int
	// Elapsed is real time; Throughput is real records/second.
	Elapsed    time.Duration
	Throughput float64
	// Rows holds the results when Config.Capture is set.
	Rows []Row
	// Sched reports worker-pool activity.
	Sched SchedStats
	// HBMKPAs/DRAMKPAs count KPA placements per tier.
	HBMKPAs, DRAMKPAs int64
	// KLow/KHigh are the knob's final probabilities.
	KLow, KHigh float64
	// PausedNanos is time ingest spent blocked on backpressure.
	PausedNanos int64
	// GCPauseNs is the Go garbage collector's stop-the-world pause time
	// accumulated over the run, and AllocsPerRecord the heap
	// allocations per ingested record — the figures the slab recycler
	// exists to drive down.
	GCPauseNs       int64
	AllocsPerRecord float64
	// AllocBytesPerRecord is the heap bytes allocated per ingested
	// record — the figure slab recycling changes most, since a missed
	// slab is one allocation but megabytes of garbage.
	AllocBytesPerRecord float64
	// SlabsRecycled counts pool allocations served from the slab free
	// lists instead of the Go heap.
	SlabsRecycled int64
	// PaneRuns counts sorted pane runs built by pane-based sliding
	// extraction, and SharedRunRefs the extra window references taken
	// on them (covering windows minus one, per run). Both are 0 for
	// fixed windows and under Config.DirectSliding.
	PaneRuns, SharedRunRefs int64
	// ExtractedPairs counts logical (record, window) grouping
	// assignments; ExtractNanos is worker time spent in the extraction
	// + run-formation tasks producing them. Their ratio is the
	// extract-side pair throughput that pane sharing multiplies by the
	// window overlap (each pair is staged and sorted once per pane, not
	// once per window).
	ExtractedPairs int64
	ExtractNanos   int64
	// PeakWindowStateBytes is the high-water mark of live grouped
	// window state (sorted runs plus merge intermediates) per tier,
	// indexed by memsim.Tier. Pane sharing divides the sliding-window
	// figure by ~overlap — the bytes that previously tipped the pool
	// into DRAM exhaustion. The two marks are independent maxima;
	// PeakWindowStateTotalBytes is the true combined high-water mark
	// (the figure to hold against pool capacity), which can be less
	// than their sum when the knob shifts placement between tiers.
	PeakWindowStateBytes      [memsim.NumTiers]int64
	PeakWindowStateTotalBytes int64
	// Degradation-ladder figures, all zero when Config.SpillCapacity is
	// 0. SpilledRuns/SpilledBytes count sealed runs evicted to the mmap'd
	// spill tier and the memory-tier bytes each eviction freed;
	// SpillLoads/SpillLoadNanos count the loads bringing spilled runs
	// back for window close and the worker time they took;
	// SpillLoadFallbacks counts closes that merged straight over the
	// mmap'd view because the pool could not host the load.
	SpilledRuns        int64
	SpilledBytes       int64
	SpillLoads         int64
	SpillLoadNanos     int64
	SpillLoadFallbacks int64
	// CtrlDecisions counts the adaptive placement controller's knob
	// adjustments; CtrlEvictTicks the monitor ticks on which it ran the
	// evictor.
	CtrlDecisions  int64
	CtrlEvictTicks int64
	// CloseP99Nanos is the 99th-percentile window close latency
	// (close request to retirement), 0 when no window closed.
	CloseP99Nanos int64
}

// exec carries one run's state.
type exec struct {
	plan  Plan
	cfg   Config
	sched *Scheduler
	pool  *mempool.Pool
	reg   *bundle.Registry
	knob  *engine.Knob
	// scratch draws transient kernel buffers (radix scatter, merge
	// ping-pong) from the pool's slab free lists, per tier.
	scratch [memsim.NumTiers]*algo.Scratch

	targetWM  atomic.Uint64
	dramBytes atomic.Int64 // traffic since last monitor tick
	hbmKPAs   atomic.Int64
	dramKPAs  atomic.Int64
	emitted   atomic.Int64
	ingested  atomic.Int64
	paused    atomic.Int64 // nanoseconds ingest spent blocked

	// Grouping-front-half observability: logical (record, window)
	// assignments, worker time spent extracting/sorting them, pane runs
	// shared across windows, and live/peak window-state bytes per tier.
	extractPairs  atomic.Int64
	extractNanos  atomic.Int64
	paneRuns      atomic.Int64
	sharedRunRefs atomic.Int64
	stateBytes    [memsim.NumTiers]atomic.Int64
	peakState     [memsim.NumTiers]atomic.Int64
	stateTotal    atomic.Int64
	peakTotal     atomic.Int64

	// Degradation ladder (Config.SpillCapacity > 0): the mmap'd spill
	// arena, the placement controller the monitor ticks, and its
	// counters. spillFile and ctrl are nil when the ladder is off.
	spillFile          *spill.File
	ctrl               *placementController
	evictions          atomic.Int64
	evictedBytes       atomic.Int64
	spillLoads         atomic.Int64
	spillLoadNanos     atomic.Int64
	spillLoadFallbacks atomic.Int64
	ctrlDecisions      atomic.Int64
	ctrlEvictTicks     atomic.Int64

	// cmu guards the per-window close-latency samples (request to
	// retirement, nanoseconds) feeding the report's p99.
	cmu        sync.Mutex
	closeNanos []int64

	// paneW is the pane width of the pane-based sliding path (0 when
	// the plan is fixed-window or Config.DirectSliding asked for the
	// duplicate-scatter baseline).
	paneW wm.Time

	wmu     sync.Mutex
	windows map[wm.Time]*winEntry
	panes   map[wm.Time]*paneEntry // pane-based sliding only
	closed  int
	// finishing holds windows removed from the map whose WindowSink
	// publication has not returned yet, so SealedWatermark never claims
	// a window sealed while its rows are still in flight to the sink.
	finishing map[wm.Time]struct{}

	rmu      sync.Mutex
	rows     []Row
	sinkRows map[wm.Time][]Row // per-window staging for WindowSink

	emu  sync.Mutex
	errs []error
}

// winEntry tracks the extraction tasks still due to contribute to one
// window, and — on the fixed and DirectSliding paths — the sorted runs
// the window owns outright. On the pane path the runs live in
// paneEntry instead and the window merely references them. A close
// requested by a watermark defers until the last pending extraction
// lands.
type winEntry struct {
	runs           []*kpa.KPA
	pending        int
	closeRequested bool
	closing        bool
	// closeT0 stamps the close request for the close-latency samples.
	closeT0 time.Time
}

// paneEntry holds one pane's sorted shared runs. Every run carries one
// KPA reference per window covering the pane; refs counts the covering
// windows that have not yet retired, and the entry is dropped when the
// last one closes. Runs only accumulate while at least one covering
// window still has a pending extraction (no late data), so a closing
// window always sees the pane's complete run set.
type paneEntry struct {
	runs []*kpa.KPA
	refs int
}

// Run executes the plan and blocks until every record is ingested and
// every window is closed.
func Run(plan Plan, cfg Config) (Report, error) {
	e, err := Start(plan, cfg)
	if err != nil {
		return Report{}, err
	}
	return e.Wait()
}

// Execution is a live native run started with Start. It exposes the
// engine state the serving layer scrapes for /metrics — pool usage,
// queue depths, knob probabilities — while the run is in flight, and
// Wait delivers the final report after the source (generator or
// network feed) is exhausted and every window has closed.
type Execution struct {
	x    *exec
	done chan struct{}
	rep  Report
	err  error
}

// Wait blocks until the run completes and returns its report. For feed
// plans the run completes when the feed closes and drains; close the
// ingest listener to initiate a graceful drain.
func (e *Execution) Wait() (Report, error) {
	<-e.done
	return e.rep, e.err
}

// Done is closed when the run completes — including fatal pipeline
// errors, so the serving layer can tear down its listeners instead of
// accepting traffic for a dead pipeline.
func (e *Execution) Done() <-chan struct{} { return e.done }

// Ingested returns the records ingested so far.
func (e *Execution) Ingested() int64 { return e.x.ingested.Load() }

// WindowsClosed returns the windows closed so far.
func (e *Execution) WindowsClosed() int {
	e.x.wmu.Lock()
	defer e.x.wmu.Unlock()
	return e.x.closed
}

// SealedWatermark returns the conservative watermark through which
// every window has fully externalized: the target watermark, held back
// to just below the end of any window still open or still publishing
// to the WindowSink. A checkpoint taken at this watermark together
// with the sink's published results covers every record of every
// window ending at or before it.
func (e *Execution) SealedWatermark() wm.Time {
	x := e.x
	w := wm.Time(x.targetWM.Load())
	x.wmu.Lock()
	defer x.wmu.Unlock()
	for start := range x.windows {
		if end := x.plan.Win.End(start); end <= w {
			w = end - 1
		}
	}
	for start := range x.finishing {
		if end := x.plan.Win.End(start); end <= w {
			w = end - 1
		}
	}
	return w
}

// MemSnapshot returns a consistent view of the mempool.
func (e *Execution) MemSnapshot() mempool.Snapshot { return e.x.pool.Snapshot() }

// MemPool exposes the execution's slab allocator. The serving layer
// wires it into the ingest feed so wire-side column batches draw from
// the same recycling allocator as every other engine buffer — one
// owner for all column memory, with /metrics occupancy to match.
func (e *Execution) MemPool() *mempool.Pool { return e.x.pool }

// QueueDepths returns the scheduler backlog per priority class.
func (e *Execution) QueueDepths() [numPriorities]int { return e.x.sched.QueuedByPriority() }

// KnobState returns the demand-balance knob's current probabilities.
func (e *Execution) KnobState() (kLow, kHigh float64) { return e.x.knob.Snapshot() }

// DRAMUtilization returns the DRAM pool utilization in [0,1] — the
// signal the ingest server's credit policy compares against
// BackpressureUtilization.
func (e *Execution) DRAMUtilization() float64 { return e.x.pool.Utilization(memsim.DRAM) }

// MemPressure returns the pool's worst-tier utilization in [0,1] — the
// signal the ingest server's admission control compares against
// ShedUtilization.
func (e *Execution) MemPressure() float64 { return e.x.pool.Pressure() }

// PaneStats returns the pane-sharing counters so far: sorted pane runs
// built and the extra window references taken on them.
func (e *Execution) PaneStats() (paneRuns, sharedRunRefs int64) {
	return e.x.paneRuns.Load(), e.x.sharedRunRefs.Load()
}

// WindowStateBytes returns the live grouped window-state bytes (sorted
// runs plus merge intermediates) per tier, indexed by memsim.Tier —
// including state evicted to the spill tier.
func (e *Execution) WindowStateBytes() [memsim.NumTiers]int64 {
	return e.x.windowStateBytes()
}

func (x *exec) windowStateBytes() [memsim.NumTiers]int64 {
	var out [memsim.NumTiers]int64
	for t := range out {
		out[t] = x.stateBytes[t].Load()
	}
	return out
}

// SpillStats returns the degradation-ladder counters so far: runs and
// bytes evicted to the spill tier, loads back at close, and the
// adaptive controller's knob decisions. All zero when spilling is
// disabled.
func (e *Execution) SpillStats() (spilledRuns, spilledBytes, loads, ctrlDecisions int64) {
	return e.x.evictions.Load(), e.x.evictedBytes.Load(),
		e.x.spillLoads.Load(), e.x.ctrlDecisions.Load()
}

// SpillEnabled reports whether the run has the mmap'd spill tier
// attached.
func (e *Execution) SpillEnabled() bool { return e.x.spillFile != nil }

// SpillUsed returns the spill-file bytes currently in use.
func (e *Execution) SpillUsed() int64 {
	if e.x.spillFile == nil {
		return 0
	}
	return e.x.spillFile.Used()
}

// Start launches the plan on the worker pool and returns immediately;
// use Wait for the final report.
func Start(plan Plan, cfg Config) (*Execution, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	machine := cfg.Machine
	if machine.Cores == 0 {
		machine = memsim.KNLConfig()
	}
	reserved := cfg.ReservedHBM
	if reserved == 0 {
		reserved = 256 << 20
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = numCPUWorkers()
	}
	if cfg.MaxQueuedTasks <= 0 {
		cfg.MaxQueuedTasks = 8 * workers
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 10 * time.Millisecond
	}
	if cfg.ExhaustTimeout <= 0 {
		cfg.ExhaustTimeout = 5 * time.Second
	}

	x := &exec{
		plan:      plan,
		cfg:       cfg,
		sched:     NewScheduler(workers),
		pool:      mempool.New(machine, reserved),
		reg:       bundle.NewRegistry(),
		knob:      engine.NewKnob(cfg.Seed + 1),
		windows:   make(map[wm.Time]*winEntry),
		sinkRows:  make(map[wm.Time][]Row),
		finishing: make(map[wm.Time]struct{}),
	}
	if plan.Win.PaneSharing() && !cfg.DirectSliding {
		x.paneW = plan.Win.PaneWidth()
		x.panes = make(map[wm.Time]*paneEntry)
	}
	if cfg.NoRecycle {
		x.pool.SetRecycling(false)
	}
	x.scratch[memsim.HBM] = x.pool.ScratchFor(memsim.HBM)
	x.scratch[memsim.DRAM] = x.pool.ScratchFor(memsim.DRAM)
	// Spill-resident runs (the ladder's last rung) sort and merge with
	// DRAM scratch: transient kernel buffers never live in the arena.
	x.scratch[memsim.Spill] = x.scratch[memsim.DRAM]

	if cfg.PinnedKnob != nil {
		x.knob.Set(cfg.PinnedKnob[0], cfg.PinnedKnob[1])
	}
	if cfg.SpillCapacity > 0 {
		f, err := spill.Create(cfg.SpillDir, cfg.SpillCapacity)
		if err != nil {
			x.sched.Close()
			return nil, fmt.Errorf("runtime: creating spill tier: %w", err)
		}
		x.spillFile = f
		x.pool.AttachSpill(f)
		if cfg.PinnedKnob == nil {
			x.ctrl = newPlacementController(cfg.EvictHighWater, cfg.EvictLowWater)
		}
	}

	stopMonitor := x.startMonitor(machine)
	e := &Execution{x: x, done: make(chan struct{})}
	go func() {
		defer close(e.done)
		var ms0 goruntime.MemStats
		goruntime.ReadMemStats(&ms0)
		start := time.Now()
		if plan.Feed != nil {
			x.ingestFeed()
		} else {
			x.ingest()
		}
		// Final watermark: past every generated timestamp, closing all
		// remaining windows once their extractions drain.
		x.watermark(^wm.Time(0) - plan.Win.Size)
		x.sched.Wait()
		elapsed := time.Since(start)
		stopMonitor()
		x.sched.Close()
		if x.spillFile != nil {
			x.spillFile.Close()
		}
		var ms1 goruntime.MemStats
		goruntime.ReadMemStats(&ms1)

		ingested := x.ingested.Load()
		rep := Report{
			IngestedRecords: ingested,
			EmittedRecords:  x.emitted.Load(),
			WindowsClosed:   x.closed,
			Elapsed:         elapsed,
			Rows:            x.rows,
			Sched:           x.sched.Stats(),
			HBMKPAs:         x.hbmKPAs.Load(),
			DRAMKPAs:        x.dramKPAs.Load(),
			PausedNanos:     x.paused.Load(),
			GCPauseNs:       int64(ms1.PauseTotalNs - ms0.PauseTotalNs),
			SlabsRecycled:   x.pool.Stats().Recycled,
			PaneRuns:        x.paneRuns.Load(),
			SharedRunRefs:   x.sharedRunRefs.Load(),
			ExtractedPairs:  x.extractPairs.Load(),
			ExtractNanos:    x.extractNanos.Load(),
			PeakWindowStateBytes: [memsim.NumTiers]int64{
				x.peakState[0].Load(), x.peakState[1].Load(), x.peakState[2].Load(),
			},
			PeakWindowStateTotalBytes: x.peakTotal.Load(),
			SpilledRuns:               x.evictions.Load(),
			SpilledBytes:              x.evictedBytes.Load(),
			SpillLoads:                x.spillLoads.Load(),
			SpillLoadNanos:            x.spillLoadNanos.Load(),
			SpillLoadFallbacks:        x.spillLoadFallbacks.Load(),
			CtrlDecisions:             x.ctrlDecisions.Load(),
			CtrlEvictTicks:            x.ctrlEvictTicks.Load(),
			CloseP99Nanos:             x.closeP99(),
		}
		if ingested > 0 {
			rep.AllocsPerRecord = float64(ms1.Mallocs-ms0.Mallocs) / float64(ingested)
			rep.AllocBytesPerRecord = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ingested)
		}
		rep.KLow, rep.KHigh = x.knob.Snapshot()
		if sec := elapsed.Seconds(); sec > 0 {
			rep.Throughput = float64(ingested) / sec
		}
		x.emu.Lock()
		if len(x.errs) > 0 {
			e.err = x.errs[0]
		}
		x.emu.Unlock()
		e.rep = rep
	}()
	return e, nil
}

// stallIngest blocks while the scheduler backlog or DRAM utilization is
// above the backpressure thresholds (the native analogue of the monitor
// pausing sources in the simulator). The utilization wait is bounded —
// a pool that stays full is handled by the exhaustion path.
func (x *exec) stallIngest() {
	if x.sched.Queued() < x.cfg.MaxQueuedTasks && x.pool.Utilization(memsim.DRAM) <= BackpressureUtilization {
		return
	}
	t0 := time.Now()
	x.sched.WaitQueuedBelow(x.cfg.MaxQueuedTasks)
	for x.pool.Utilization(memsim.DRAM) > BackpressureUtilization && time.Since(t0) < time.Second {
		time.Sleep(200 * time.Microsecond)
	}
	x.paused.Add(time.Since(t0).Nanoseconds())
}

// ingest is the generator driver loop: it builds bundles as fast as
// backpressure allows, submits one extraction task per bundle, and
// advances the watermark on the configured cadence.
func (x *exec) ingest() {
	var (
		bundleCnt int
		nextTs    wm.Time
	)
	schema := x.plan.Gen.Schema()
	n := x.plan.Source.BundleRecords
	tsPerRecord := float64(x.plan.Win.Size) / float64(x.plan.Source.WindowRecords)
	var exhaustedSince time.Time
	for x.ingested.Load() < x.plan.TotalRecords {
		if rest := x.plan.TotalRecords - x.ingested.Load(); int64(n) > rest {
			n = int(rest)
		}
		x.stallIngest()
		b, tsHi, err := x.buildBundle(schema, n, nextTs, tsPerRecord)
		if err != nil {
			if ee, exhausted := err.(*mempool.ErrExhausted); exhausted {
				// With the spill tier attached, first walk sealed state
				// out to the mmap'd file synchronously — that frees
				// memory now, without disturbing event time, and lets
				// window state overshoot the memory budget instead of
				// draining it early. Otherwise memory can only come
				// back from window closure, and watermarks only advance
				// here — force one so every window behind the stream
				// drains, then retry. If the pool stays exhausted
				// (pipeline state exceeds DRAM), fail the run instead
				// of hanging.
				// Evict down to the low-water mark, not just ee.Want:
				// restoring real headroom keeps the ingest loop from
				// re-entering this path once per allocation.
				if x.spillFile != nil && x.evictColdest(max(ee.Want, x.evictTarget())) >= ee.Want {
					exhaustedSince = time.Time{}
					continue
				}
				x.watermark(nextTs)
				if exhaustedSince.IsZero() {
					exhaustedSince = time.Now()
				} else if time.Since(exhaustedSince) > x.cfg.ExhaustTimeout {
					x.recordError(fmt.Errorf("runtime: %s: DRAM exhausted for %v: pipeline state exceeds machine DRAM (%w)",
						x.plan.Label, x.cfg.ExhaustTimeout, err))
					break
				}
				t0 := time.Now()
				time.Sleep(200 * time.Microsecond)
				x.paused.Add(time.Since(t0).Nanoseconds())
				continue
			}
			x.recordError(err)
			break
		}
		exhaustedSince = time.Time{}
		nextTs = tsHi
		x.ingested.Add(int64(b.Rows()))
		bundleCnt++
		x.submitExtract(b, tsHi)
		if bundleCnt%x.plan.Source.WatermarkEvery == 0 {
			x.watermark(tsHi)
		}
	}
}

// ingestFeed is the external-source driver loop: batches arrive pushed
// from the network feed instead of being generated in-process. The
// same backpressure gates apply — and because the serving layer wires
// DRAMUtilization into the ingest server's credit policy, a stall here
// propagates to clients as withheld credits rather than unbounded
// buffering. The loop exits when the feed closes (listener shutdown)
// and the caller's final watermark drains every open window.
func (x *exec) ingestFeed() {
	feed := x.plan.Feed
	schema := feed.Schema()
	recycler, _ := feed.(BatchRecycler)
	var bundleCnt int
	for {
		x.stallIngest()
		// The idle tick advances the watermark while connections are
		// quiet, so a burst's trailing windows close (and become
		// queryable) without waiting for the next batch or a shutdown.
		// Every batch delivered so far is registered, so the feed's
		// watermark is safe to apply here.
		cols, ok, idle := feed.Recv(10 * x.cfg.MonitorInterval)
		if idle {
			if w := feed.Watermark(); w > 0 {
				x.watermark(w)
			}
			continue
		}
		if !ok {
			return
		}
		if len(cols) != schema.NumCols || len(cols) == 0 || len(cols[0]) == 0 {
			x.recordError(fmt.Errorf("runtime: feed batch has %d columns, schema wants %d", len(cols), schema.NumCols))
			continue
		}
		if len(cols[x.plan.TsCol]) == 0 {
			x.recordError(fmt.Errorf("runtime: feed batch window column %d is empty (%d-row batch)", x.plan.TsCol, len(cols[0])))
			continue
		}
		// One min/max pass over the batch's window column serves both
		// the exhaustion-path watermark clamp below and extraction
		// registration (submitExtractRange), instead of rescanning the
		// same column inside submitExtract.
		ts := cols[x.plan.TsCol]
		minTs, maxTs := ts[0], ts[0]
		for _, v := range ts[1:] {
			if v > maxTs {
				maxTs = v
			}
			if v < minTs {
				minTs = v
			}
		}
		var exhaustedSince time.Time
		for {
			b, err := x.buildFeedBundle(schema, cols)
			if err == nil {
				x.ingested.Add(int64(b.Rows()))
				x.submitExtractRange(b, maxTs, minTs, maxTs)
				if recycler != nil {
					// The bundle holds its own copy now; the column
					// buffers go back to the feed's decoder.
					recycler.Recycle(cols)
				}
				break
			}
			if _, exhausted := err.(*mempool.ErrExhausted); exhausted {
				// Same recovery as the generator path: evict sealed
				// state to the spill tier first; failing that, force a
				// watermark so closable windows drain and their memory
				// returns — clamped below this still-unregistered
				// batch's earliest timestamp so no window it
				// contributes to closes early (the feed's cursor
				// already covers the batch).
				if ee := err.(*mempool.ErrExhausted); x.spillFile != nil && x.evictColdest(max(ee.Want, x.evictTarget())) >= ee.Want {
					exhaustedSince = time.Time{}
					continue
				}
				w := feed.Watermark()
				if w > minTs {
					w = minTs
				}
				x.watermark(w)
				if exhaustedSince.IsZero() {
					exhaustedSince = time.Now()
				} else if time.Since(exhaustedSince) > x.cfg.ExhaustTimeout {
					x.recordError(fmt.Errorf("runtime: %s: DRAM exhausted for %v: pipeline state exceeds machine DRAM (%w)",
						x.plan.Label, x.cfg.ExhaustTimeout, err))
					return
				}
				t0 := time.Now()
				time.Sleep(200 * time.Microsecond)
				x.paused.Add(time.Since(t0).Nanoseconds())
				continue
			}
			x.recordError(err)
			return
		}
		bundleCnt++
		if bundleCnt%x.plan.Source.WatermarkEvery == 0 {
			if w := feed.Watermark(); w > 0 {
				x.watermark(w)
			}
		}
	}
}

// buildFeedBundle allocates and seals one bundle holding an external
// batch, charging the DRAM pool exactly like generated ingress.
func (x *exec) buildFeedBundle(schema bundle.Schema, cols [][]uint64) (*bundle.Bundle, error) {
	n := len(cols[0])
	alloc, err := x.pool.Alloc(memsim.DRAM, int64(n)*schema.RecordBytes())
	if err != nil {
		return nil, err
	}
	bd, err := x.reg.NewBuilder(schema, n, memsim.DRAM)
	if err != nil {
		alloc.Free()
		return nil, err
	}
	if err := bd.AttachAlloc(alloc); err != nil {
		alloc.Free()
		return nil, err
	}
	if err := bd.AppendColumnar(cols...); err != nil {
		alloc.Free()
		return nil, err
	}
	return bd.Seal(), nil
}

// buildBundle allocates, fills and seals one ingress bundle. An
// exhausted DRAM pool surfaces as *mempool.ErrExhausted for the ingest
// loop's backpressure handling.
func (x *exec) buildBundle(schema bundle.Schema, n int, tsLo wm.Time, tsPerRecord float64) (*bundle.Bundle, wm.Time, error) {
	alloc, err := x.pool.Alloc(memsim.DRAM, int64(n)*schema.RecordBytes())
	if err != nil {
		return nil, 0, err
	}
	bd, err := x.reg.NewBuilder(schema, n, memsim.DRAM)
	if err != nil {
		alloc.Free()
		return nil, 0, err
	}
	if err := bd.AttachAlloc(alloc); err != nil {
		alloc.Free()
		return nil, 0, err
	}
	tsHi := tsLo + wm.Time(float64(n)*tsPerRecord)
	if tsHi == tsLo {
		tsHi = tsLo + 1
	}
	x.plan.Gen.Fill(bd, n, tsLo, tsHi)
	return bd.Seal(), tsHi, nil
}

// submitExtract scans the bundle's window column for its timestamp
// range, then registers and schedules extraction. The range comes from
// the plan's window column — which the Window stage chooses and need
// not be the schema's timestamp column — so registration and
// partitioning agree. Callers that already scanned the column (the
// network feed needs min/max for its watermark clamp) use
// submitExtractRange directly and skip the second full-column pass.
func (x *exec) submitExtract(b *bundle.Bundle, tsHi wm.Time) {
	ts := b.Col(x.plan.TsCol)
	if len(ts) == 0 {
		// Same accounting as the extract task's release path: the
		// bundle was still built and streamed through DRAM.
		x.addDRAMTraffic(b.Bytes())
		b.Release()
		return
	}
	minTs, maxTs := ts[0], ts[0]
	for _, v := range ts[1:] {
		if v < minTs {
			minTs = v
		}
		if v > maxTs {
			maxTs = v
		}
	}
	x.submitExtractRange(b, tsHi, minTs, maxTs)
}

// submitExtractRange registers every window the bundle may contribute
// to before the extract+sort task runs, so a racing watermark defers
// closure until extraction lands. minTs/maxTs must bound the bundle's
// window-column values.
func (x *exec) submitExtractRange(b *bundle.Bundle, tsHi, minTs, maxTs wm.Time) {
	wins := windowsInRange(x.plan.Win, minTs, maxTs)
	x.wmu.Lock()
	for _, w := range wins {
		e := x.windows[w]
		if e == nil {
			e = &winEntry{}
			x.windows[w] = e
		}
		e.pending++
	}
	x.wmu.Unlock()

	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), tsHi)
	x.sched.Submit(&Task{
		Name: "extract:" + x.plan.Label,
		Tag:  tag,
		Run:  func() { x.extract(b, wins, minTs, maxTs) },
	})
}

// extract is the native grouping front half: it partitions the
// bundle's surviving rows — into fixed windows, into shared panes
// (sliding default), or into every overlapping window (DirectSliding
// baseline) — builds one KPA per partition (placed by the knob, pair
// storage drawn from the slab recycler), sorts each with the LSD radix
// kernel — first-level run formation, the paper's Table 2 split; the
// merge above stays comparison-based — and files them as window state.
// Every path runs as two counting/filling passes over pool-backed
// staging, so the steady state allocates nothing per record.
func (x *exec) extract(b *bundle.Bundle, wins []wm.Time, minTs, maxTs wm.Time) {
	t0 := time.Now()
	defer b.Release() // drop the producer reference; KPAs hold their own
	switch {
	case len(wins) == 0:
		// No windows registered: nothing to file.
	case x.plan.Win.IsFixed():
		x.extractFixed(b, wins)
	case x.paneW > 0:
		x.extractPanes(b, wins, minTs, maxTs)
	default:
		x.extractSliding(b, wins)
	}
	x.addDRAMTraffic(b.Bytes())
	x.extractNanos.Add(time.Since(t0).Nanoseconds())
}

// intSlab is a pooled []int scratch buffer for the per-bundle
// counts/cursor arrays of the extraction passes. Pooling the wrapper
// struct (not the slice) keeps the steady-state path free of the two
// heap allocations the counting/scatter passes would otherwise pay per
// bundle.
type intSlab struct{ buf []int }

var intSlabs = sync.Pool{New: func() any { return new(intSlab) }}

// getIntSlab returns a zeroed []int scratch of length n inside its
// pooled wrapper; return it with putIntSlab.
func getIntSlab(n int) *intSlab {
	s := intSlabs.Get().(*intSlab)
	if cap(s.buf) < n {
		s.buf = make([]int, n)
	}
	s.buf = s.buf[:n]
	clear(s.buf)
	return s
}

func putIntSlab(s *intSlab) { intSlabs.Put(s) }

// extractFixed is the zero-alloc fast path: pass one counts surviving
// rows per window, pass two scatters pairs into a pooled staging buffer
// segmented by those counts, and each segment becomes one recycled-slab
// KPA. Filters run twice; they are pure per-value predicates and far
// cheaper than staging every row through the heap. The counts/cursor
// scratch comes from a pooled int slab for the same reason.
func (x *exec) extractFixed(b *bundle.Bundle, wins []wm.Time) {
	keys := b.Col(x.plan.KeyCol)
	ts := b.Col(x.plan.TsCol)
	id := uint32(b.ID())
	slide := x.plan.Win.Size // fixed windows: starts step by the size
	base := wins[0]

	ints := getIntSlab(2 * len(wins))
	defer putIntSlab(ints)
	counts, cursor := ints.buf[:len(wins)], ints.buf[len(wins):]
	total := 0
rows:
	for i := 0; i < b.Rows(); i++ {
		for _, f := range x.plan.Filters {
			if !f.Keep(b.At(i, f.Col)) {
				continue rows
			}
		}
		counts[(x.plan.Win.WindowOf(ts[i])-base)/slide]++
		total++
	}

	scratch := x.scratch[memsim.DRAM]
	staging := scratch.GetPairs(total)
	defer scratch.PutPairs(staging)
	// cursor[w] walks window w's segment: [offset[w], offset[w+1]).
	off := 0
	for w, c := range counts {
		cursor[w] = off
		off += c
	}
rows2:
	for i := 0; i < b.Rows(); i++ {
		for _, f := range x.plan.Filters {
			if !f.Keep(b.At(i, f.Col)) {
				continue rows2
			}
		}
		w := (x.plan.Win.WindowOf(ts[i]) - base) / slide
		staging[cursor[w]] = algo.Pair{Key: keys[i], Ptr: kpa.PackPtr(id, uint32(i))}
		cursor[w]++
	}

	x.extractPairs.Add(int64(total))
	seg := 0
	for wi, w := range wins {
		var k *kpa.KPA
		if counts[wi] > 0 {
			k = x.buildRun(staging[seg:seg+counts[wi]], b, w, algo.RunMeta{Origin: uint64(id), Lo: w})
			seg += counts[wi]
		}
		x.extractDone(w, k)
	}
}

// extractPanes is the sliding-window default: pane-based shared
// aggregation. Each surviving row is scattered into exactly one
// non-overlapping pane of width gcd(Size, Slide) — the same two-pass
// counting/scatter structure as extractFixed, one pooled staging
// buffer, zero heap traffic per record — and each non-empty pane
// becomes one sorted, recycled-slab KPA run. The run is then *shared*:
// it takes one reference per window covering the pane, and every one
// of those windows merges it at close (the fused merge-reduce consumes
// arbitrary sorted-run sets, so shared pane runs slot in unchanged).
// Relative to the DirectSliding baseline this divides staging, radix
// work and window-state bytes by the Size/Slide overlap.
func (x *exec) extractPanes(b *bundle.Bundle, wins []wm.Time, minTs, maxTs wm.Time) {
	keys := b.Col(x.plan.KeyCol)
	ts := b.Col(x.plan.TsCol)
	id := uint32(b.ID())
	pw := x.paneW
	base := minTs / pw * pw
	nPanes := int(maxTs/pw-minTs/pw) + 1

	ints := getIntSlab(2 * nPanes)
	defer putIntSlab(ints)
	counts, cursor := ints.buf[:nPanes], ints.buf[nPanes:]
	total := 0
rows:
	for i := 0; i < b.Rows(); i++ {
		for _, f := range x.plan.Filters {
			if !f.Keep(b.At(i, f.Col)) {
				continue rows
			}
		}
		counts[(ts[i]-base)/pw]++
		total++
	}

	scratch := x.scratch[memsim.DRAM]
	staging := scratch.GetPairs(total)
	defer scratch.PutPairs(staging)
	off := 0
	for p, c := range counts {
		cursor[p] = off
		off += c
	}
rows2:
	for i := 0; i < b.Rows(); i++ {
		for _, f := range x.plan.Filters {
			if !f.Keep(b.At(i, f.Col)) {
				continue rows2
			}
		}
		p := (ts[i] - base) / pw
		staging[cursor[p]] = algo.Pair{Key: keys[i], Ptr: kpa.PackPtr(id, uint32(i))}
		cursor[p]++
	}

	runs := make([]*kpa.KPA, 0, nPanes)
	starts := make([]wm.Time, 0, nPanes)
	seg := 0
	for pi := 0; pi < nPanes; pi++ {
		c := counts[pi]
		if c == 0 {
			continue
		}
		p := base + wm.Time(pi)*pw
		covering := x.plan.Win.CoveringWindows(p)
		// Logical (record, window) assignments stay comparable with the
		// direct path, which stages each of them physically.
		x.extractPairs.Add(int64(c) * int64(covering))
		k := x.buildRun(staging[seg:seg+c], b, p, algo.RunMeta{Origin: uint64(id), Lo: p})
		seg += c
		if k == nil {
			continue // allocation error already recorded
		}
		k.Retain(covering - 1) // one reference per covering window
		x.paneRuns.Add(1)
		x.sharedRunRefs.Add(int64(covering - 1))
		runs = append(runs, k)
		starts = append(starts, p)
	}
	x.panesDone(wins, starts, runs)
}

// panesDone files freshly sorted pane runs into the pane registry and
// retires this extraction from every window it was registered against,
// starting deferred closes that were waiting on it.
func (x *exec) panesDone(wins []wm.Time, starts []wm.Time, runs []*kpa.KPA) {
	var toClose []wm.Time
	x.wmu.Lock()
	for i, p := range starts {
		pe := x.panes[p]
		if pe == nil {
			pe = &paneEntry{refs: x.plan.Win.CoveringWindows(p)}
			x.panes[p] = pe
		}
		pe.runs = append(pe.runs, runs[i])
	}
	for _, w := range wins {
		e := x.windows[w]
		e.pending--
		if e.closeRequested && e.pending == 0 && !e.closing {
			e.closing = true
			toClose = append(toClose, w)
		}
	}
	x.wmu.Unlock()
	for _, w := range toClose {
		x.submitClose(w)
	}
}

// extractSliding is the DirectSliding baseline: overlapping windows
// with the same counting/scatter structure as extractFixed. A row
// lands in at most ceil(Size/Slide) windows, all enumerable in place,
// so pass one counts each window's share, pass two scatters pairs into
// per-window segments of one pooled staging buffer, and each segment
// becomes one recycled-slab KPA — no per-row append, no per-window
// map, nothing on the heap in steady state, but every record is staged
// and sorted once per window it belongs to.
func (x *exec) extractSliding(b *bundle.Bundle, wins []wm.Time) {
	keys := b.Col(x.plan.KeyCol)
	ts := b.Col(x.plan.TsCol)
	id := uint32(b.ID())
	size := x.plan.Win.Size
	slide := x.plan.Win.Slide
	if slide == 0 {
		slide = size
	}
	base := wins[0]

	ints := getIntSlab(2 * len(wins))
	defer putIntSlab(ints)
	counts, cursor := ints.buf[:len(wins)], ints.buf[len(wins):]
	total := 0
rows:
	for i := 0; i < b.Rows(); i++ {
		for _, f := range x.plan.Filters {
			if !f.Keep(b.At(i, f.Col)) {
				continue rows
			}
		}
		// Enumerate the windows containing ts[i] without allocating:
		// starts descend by slide from WindowOf(ts) while they still
		// cover the timestamp. Every such start is >= base (a window
		// covering ts also covers the bundle minimum or starts after
		// it), so the index into wins is in range.
		for w := x.plan.Win.WindowOf(ts[i]); w+size > ts[i]; w -= slide {
			counts[(w-base)/slide]++
			total++
			if w < slide {
				break // window 0 reached; unsigned underflow guard
			}
		}
	}

	scratch := x.scratch[memsim.DRAM]
	staging := scratch.GetPairs(total)
	defer scratch.PutPairs(staging)
	off := 0
	for w, c := range counts {
		cursor[w] = off
		off += c
	}
rows2:
	for i := 0; i < b.Rows(); i++ {
		for _, f := range x.plan.Filters {
			if !f.Keep(b.At(i, f.Col)) {
				continue rows2
			}
		}
		p := algo.Pair{Key: keys[i], Ptr: kpa.PackPtr(id, uint32(i))}
		for w := x.plan.Win.WindowOf(ts[i]); w+size > ts[i]; w -= slide {
			wi := (w - base) / slide
			staging[cursor[wi]] = p
			cursor[wi]++
			if w < slide {
				break
			}
		}
	}

	x.extractPairs.Add(int64(total))
	seg := 0
	for wi, w := range wins {
		var k *kpa.KPA
		if counts[wi] > 0 {
			k = x.buildRun(staging[seg:seg+counts[wi]], b, w, algo.RunMeta{Origin: uint64(id), Lo: w})
			seg += counts[wi]
		}
		x.extractDone(w, k)
	}
}

// buildRun turns one partition's staged pairs into a sorted KPA run:
// slab storage from the knob-placed allocator, radix-sorted in place
// with pooled scatter scratch, stamped with its provenance so closes
// order runs deterministically. Returns nil after reporting an error.
func (x *exec) buildRun(pairs []algo.Pair, b *bundle.Bundle, w wm.Time, meta algo.RunMeta) *kpa.KPA {
	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), w)
	k, err := kpa.FromPairs(pairs, x.plan.KeyCol, b, x.allocator(tag))
	if err != nil {
		x.recordError(err)
		return nil
	}
	kpa.SortRadix(k, 1, x.scratch[k.Tier()])
	k.SetMeta(meta)
	x.noteKPA(k)
	return k
}

// extractDone files a sorted run (nil when the bundle contributed no
// surviving rows) and triggers a deferred close when this was the last
// pending extraction of a close-requested window.
func (x *exec) extractDone(w wm.Time, k *kpa.KPA) {
	x.wmu.Lock()
	e := x.windows[w]
	if k != nil {
		e.runs = append(e.runs, k)
	}
	e.pending--
	start := e.closeRequested && e.pending == 0 && !e.closing
	if start {
		e.closing = true
	}
	x.wmu.Unlock()
	if start {
		x.submitClose(w)
	}
}

// watermark advances the target watermark and requests closure of every
// window now entirely behind it.
func (x *exec) watermark(w wm.Time) {
	for {
		cur := x.targetWM.Load()
		if uint64(w) <= cur || x.targetWM.CompareAndSwap(cur, uint64(w)) {
			break
		}
	}
	var toClose []wm.Time
	x.wmu.Lock()
	for start, e := range x.windows {
		if e.closeRequested || x.plan.Win.End(start) > w {
			continue
		}
		e.closeRequested = true
		e.closeT0 = time.Now()
		if e.pending == 0 && !e.closing {
			e.closing = true
			toClose = append(toClose, start)
		}
	}
	x.wmu.Unlock()
	for _, start := range toClose {
		x.submitClose(start)
	}
}

// mergeFanIn caps how many runs one loser-tree merge task streams.
// Below the cap a window closes in a single fused merge-reduce pass;
// above it, runs are first compacted in k-way batches of this size —
// one materialization total, where the pairwise tree paid log2(R)
// materializing levels.
const mergeFanIn = 32

// minClosePartitionPairs is the smallest merge-reduce partition worth
// its own task; tiny windows close on one core instead of paying
// per-task overhead for a few hundred pairs each.
const minClosePartitionPairs = 8 << 10

// submitClose collects a closing window's sorted runs and starts the
// close. On the fixed and DirectSliding paths the window owns its runs
// outright; on the pane path it gathers the shared runs of every pane
// it covers — each close releases exactly one reference per run, and
// the storage frees when the last covering window closes.
func (x *exec) submitClose(start wm.Time) {
	var runs []*kpa.KPA
	x.wmu.Lock()
	if x.paneW > 0 {
		for p := start; p < start+x.plan.Win.Size; p += x.paneW {
			if pe := x.panes[p]; pe != nil {
				runs = append(runs, pe.runs...)
			}
		}
	} else {
		e := x.windows[start]
		runs = e.runs
		e.runs = nil
	}
	x.wmu.Unlock()
	if x.spillFile != nil && len(runs) > 0 {
		// With the spill tier enabled some runs may live in the mmap'd
		// arena. Load them back on a worker task (off the watermark
		// caller's goroutine) before the merge; EnsureResident is called
		// on every run — a no-op for resident ones — because its lock is
		// also the publication point for a load done by a concurrent
		// close sharing these pane runs.
		tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), start)
		x.sched.Submit(&Task{
			Name: "load:" + x.plan.Label,
			Tag:  tag,
			Run: func() {
				x.loadRuns(runs, tag)
				x.closeWindow(start, runs)
			},
		})
		return
	}
	x.closeWindow(start, runs)
}

// closeWindow dispatches one close step: the fused range-partitioned
// merge-reduce when the runs fit one loser tree, a k-way compaction
// level when they don't, and the pairwise-tree baseline when the config
// asks for it. Runs are first ordered by provenance (producing bundle,
// then pane/window start) so the merge's equal-key tie-break — and with
// it any order-sensitive aggregator — is deterministic, independent of
// which extraction task finished first; when records within a bundle
// are time-ordered (every generator; network batches in arrival order)
// that sequence is also identical between the pane and direct paths.
func (x *exec) closeWindow(start wm.Time, runs []*kpa.KPA) {
	sort.Slice(runs, func(i, j int) bool { return runs[i].Meta().Less(runs[j].Meta()) })
	if len(runs) > 0 && (x.cfg.PairwiseClose || len(runs) > mergeFanIn) {
		// The materializing merges (Merge, MergeK) copy pairs verbatim
		// and so refuse mixed pointer/value-resident inputs; a close that
		// fell back to merging over a spilled run's mmap view may hold a
		// mix. The fused merge-reduce resolves per run and needs no
		// conversion.
		runs = x.homogenizeRuns(start, runs)
	}
	switch {
	case len(runs) == 0:
		x.finishWindow(start)
	case x.cfg.PairwiseClose:
		x.mergeLevel(start, runs)
	case len(runs) > mergeFanIn:
		x.mergeFanInLevel(start, runs)
	default:
		x.submitMergeReduce(start, runs)
	}
}

// mergeFanInLevel compacts an over-wide run set in batches of
// mergeFanIn: one k-way materializing merge task per batch, then back
// to closeWindow with at most ceil(R/mergeFanIn) runs — a single
// materialization for any realistic run count, against the pairwise
// tree's log2(R) full copies.
func (x *exec) mergeFanInLevel(start wm.Time, runs []*kpa.KPA) {
	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), start)
	nBatches := (len(runs) + mergeFanIn - 1) / mergeFanIn
	next := make([]*kpa.KPA, nBatches)
	// A lone trailing run passes through. Its slot must be filled before
	// any merge task is submitted: the last task to finish reads all of
	// next, and may do so before this goroutine's loop reaches the
	// trailing batch.
	tasks := nBatches
	if len(runs)%mergeFanIn == 1 {
		next[nBatches-1] = runs[len(runs)-1]
		tasks--
	}
	var remaining atomic.Int32
	remaining.Store(int32(tasks))
	for i := 0; i < tasks; i++ {
		batch := runs[i*mergeFanIn:]
		if len(batch) > mergeFanIn {
			batch = batch[:mergeFanIn]
		}
		batch, slot := batch, i
		x.sched.Submit(&Task{
			Name: "merge:" + x.plan.Label,
			Tag:  tag,
			Run: func() {
				merged, err := kpa.MergeK(batch, x.allocator(tag))
				if err == nil {
					// Batches are contiguous in provenance order, so the
					// first input's metadata keeps the compacted run's
					// position deterministic at the next level.
					merged.SetMeta(batch[0].Meta())
				}
				for _, r := range batch {
					x.destroyRun(r)
				}
				if err != nil {
					x.recordError(err)
				} else {
					x.noteKPA(merged)
					x.addDRAMTraffic(merged.Bytes())
					next[slot] = merged
				}
				if remaining.Add(-1) == 0 {
					x.closeWindow(start, compactRuns(next))
				}
			},
		})
	}
}

// submitMergeReduce closes a window in one streaming pass: the key
// space is partitioned across the runs with balanced key-aligned cuts,
// and each partition runs a fused loser-tree merge + keyed reduction
// task that dereferences bundle pointers as pairs arrive — no merged
// KPA is ever materialized. The last partition to finish destroys the
// runs and retires the window.
func (x *exec) submitMergeReduce(start wm.Time, runs []*kpa.KPA) {
	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), start)
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	p := x.sched.Workers()
	if byWidth := (total + minClosePartitionPairs - 1) / minClosePartitionPairs; byWidth < p {
		p = byWidth
	}
	cuts, err := kpa.MergeCuts(runs, p)
	if err != nil || len(cuts) < 2 {
		if err != nil {
			x.recordError(err)
		}
		for _, r := range runs {
			x.destroyRun(r)
		}
		x.finishWindow(start)
		return
	}
	var remaining atomic.Int32
	remaining.Store(int32(len(cuts) - 1))
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		x.sched.Submit(&Task{
			Name: "close:" + x.plan.Label,
			Tag:  tag,
			Run: func() {
				var out []Row
				width := int64(0)
				for j := range lo {
					width += int64(hi[j] - lo[j])
				}
				err := kpa.MergeReduceRange(runs, lo, hi, x.plan.ValCol, x.plan.NewAgg, func(key, res uint64) {
					out = append(out, Row{Key: key, Val: res, Win: start})
				})
				if err != nil {
					x.recordError(err)
				}
				x.emitRows(start, out)
				// One streaming read of the pairs plus the value gather;
				// nothing is written back.
				x.addDRAMTraffic(width * (memsim.PairBytes + 8))
				if remaining.Add(-1) == 0 {
					for _, r := range runs {
						x.destroyRun(r)
					}
					x.finishWindow(start)
				}
			},
		})
	}
}

// mergeLevel pairwise-merges the window's sorted runs as parallel tasks
// (the merge tree this backend shipped with, kept as the
// Config.PairwiseClose benchmarking baseline); the countdown
// continuation of each level schedules the next, and a single surviving
// run proceeds to the separate reduction pass.
func (x *exec) mergeLevel(start wm.Time, runs []*kpa.KPA) {
	if len(runs) == 0 {
		x.finishWindow(start)
		return
	}
	if len(runs) == 1 {
		x.submitReduce(start, runs[0])
		return
	}
	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), start)
	next := make([]*kpa.KPA, (len(runs)+1)/2)
	if len(runs)%2 == 1 {
		next[len(next)-1] = runs[len(runs)-1] // odd run passes through
	}
	var remaining atomic.Int32
	remaining.Store(int32(len(runs) / 2))
	for i := 0; i+1 < len(runs); i += 2 {
		a, b, slot := runs[i], runs[i+1], i/2
		x.sched.Submit(&Task{
			Name: "merge:" + x.plan.Label,
			Tag:  tag,
			Run: func() {
				merged, err := kpa.Merge(a, b, x.allocator(tag))
				if err == nil {
					merged.SetMeta(a.Meta())
				}
				x.destroyRun(a)
				x.destroyRun(b)
				if err != nil {
					x.recordError(err)
				} else {
					x.noteKPA(merged)
					x.addDRAMTraffic(merged.Bytes())
					next[slot] = merged
				}
				if remaining.Add(-1) == 0 {
					x.mergeLevel(start, compactRuns(next))
				}
			},
		})
	}
}

// compactRuns drops slots lost to merge errors.
func compactRuns(runs []*kpa.KPA) []*kpa.KPA {
	out := runs[:0]
	for _, r := range runs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// submitReduce schedules the windowed keyed reduction over the merged
// KPA: key-aligned ranges reduce in parallel, dereferencing pointers
// into the DRAM bundles, and the last range finalizes the window.
func (x *exec) submitReduce(start wm.Time, k *kpa.KPA) {
	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), start)
	cuts, err := kpa.KeyAlignedCuts(k, x.sched.Workers())
	if err != nil || len(cuts) < 2 {
		if err != nil {
			x.recordError(err)
		}
		x.destroyRun(k)
		x.finishWindow(start)
		return
	}
	var remaining atomic.Int32
	remaining.Store(int32(len(cuts) - 1))
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		x.sched.Submit(&Task{
			Name: "reduce:" + x.plan.Label,
			Tag:  tag,
			Run: func() {
				var out []Row
				err := kpa.ReduceByKeyRange(k, lo, hi, x.plan.ValCol, x.plan.NewAgg, func(key, res uint64) {
					out = append(out, Row{Key: key, Val: res, Win: start})
				})
				if err != nil {
					x.recordError(err)
				}
				x.emitRows(start, out)
				x.addDRAMTraffic(int64(hi-lo) * 8)
				if remaining.Add(-1) == 0 {
					x.destroyRun(k)
					x.finishWindow(start)
				}
			},
		})
	}
}

// emitRows records a batch of results for window start.
func (x *exec) emitRows(start wm.Time, rows []Row) {
	x.emitted.Add(int64(len(rows)))
	if !x.cfg.Capture && x.cfg.WindowSink == nil {
		return
	}
	if x.sealedWindow(start) {
		return
	}
	x.rmu.Lock()
	if x.cfg.Capture {
		x.rows = append(x.rows, rows...)
	}
	if x.cfg.WindowSink != nil {
		x.sinkRows[start] = append(x.sinkRows[start], rows...)
	}
	x.rmu.Unlock()
}

// finishWindow retires a closed window and, when a WindowSink is
// configured, publishes its result rows. On the pane path it also
// releases the window's claim on each pane it covered: the pane entry
// is dropped when its last covering window retires (the runs
// themselves were already released, one reference each, by the close's
// merge tasks).
func (x *exec) finishWindow(start wm.Time) {
	x.wmu.Lock()
	var closeD time.Duration
	if e := x.windows[start]; e != nil && !e.closeT0.IsZero() {
		closeD = time.Since(e.closeT0)
	}
	if x.paneW > 0 {
		for p := start; p < start+x.plan.Win.Size; p += x.paneW {
			if pe := x.panes[p]; pe != nil {
				pe.refs--
				if pe.refs <= 0 {
					delete(x.panes, p)
				}
			}
		}
	}
	delete(x.windows, start)
	x.closed++
	x.finishing[start] = struct{}{}
	x.wmu.Unlock()
	x.recordCloseLatency(closeD)
	if x.cfg.WindowSink != nil && !x.sealedWindow(start) {
		x.rmu.Lock()
		rows := x.sinkRows[start]
		delete(x.sinkRows, start)
		x.rmu.Unlock()
		x.cfg.WindowSink(start, x.plan.Win.End(start), rows)
	}
	x.wmu.Lock()
	delete(x.finishing, start)
	x.wmu.Unlock()
}

// sealedWindow reports whether the window starting at start was already
// sealed and published before a recovery run started (Config.SealedBefore).
func (x *exec) sealedWindow(start wm.Time) bool {
	return x.cfg.SealedBefore > 0 && x.plan.Win.End(start) <= x.cfg.SealedBefore
}

// allocator returns a knob-driven KPA allocator for the given tag:
// Urgent from the reserved pool, High/Low by the knob's probabilities,
// spilling to DRAM when HBM is full (paper §5).
func (x *exec) allocator(tag engine.Tag) kpa.Allocator {
	return &knobAllocator{x: x, tag: tag}
}

type knobAllocator struct {
	x   *exec
	tag engine.Tag
	// noSpill excludes the spill-arena rung — set for spill loads,
	// which would otherwise "load" a run from the arena to the arena.
	noSpill bool
}

// AllocKPA implements kpa.Allocator.
func (a *knobAllocator) AllocKPA(nBytes int64) (memsim.Tier, *mempool.Allocation, error) {
	x := a.x
	if a.tag == engine.Urgent {
		al, err := x.pool.AllocUrgent(nBytes)
		if err == nil {
			return al.Tier(), al, nil
		}
		// Urgent close-path allocations ride the ladder too: with the
		// reserved pool and both memory tiers full, a merge output in
		// the arena beats failing the close.
		if x.spillFile != nil && !a.noSpill {
			if sal, serr := x.pool.Alloc(memsim.Spill, nBytes); serr == nil {
				return memsim.Spill, sal, nil
			}
		}
		return 0, nil, err
	}
	if x.knob.WantHBM(a.tag) {
		if al, err := x.pool.Alloc(memsim.HBM, nBytes); err == nil {
			return memsim.HBM, al, nil
		}
		// HBM full: spill.
	}
	al, err := x.pool.Alloc(memsim.DRAM, nBytes)
	if err == nil {
		return memsim.DRAM, al, nil
	}
	if x.spillFile != nil && !a.noSpill {
		// Last rung of the degradation ladder: both memory tiers are
		// full, so close-time materializations (fan-in compaction,
		// pairwise merges, shared-run clones) land in the mmap'd arena
		// instead of failing the run.
		if sal, serr := x.pool.Alloc(memsim.Spill, nBytes); serr == nil {
			return memsim.Spill, sal, nil
		}
	}
	return memsim.DRAM, nil, err
}

// noteKPA counts a placement for the report and charges the run's
// bytes to the live window-state gauge (and its per-tier high-water
// mark). Every run noted here must retire through destroyRun.
func (x *exec) noteKPA(k *kpa.KPA) {
	t := k.Tier()
	if t == memsim.HBM {
		x.hbmKPAs.Add(1)
	} else {
		x.dramKPAs.Add(1)
	}
	cur := x.stateBytes[t].Add(k.Bytes())
	for {
		peak := x.peakState[t].Load()
		if cur <= peak || x.peakState[t].CompareAndSwap(peak, cur) {
			break
		}
	}
	total := x.stateTotal.Add(k.Bytes())
	for {
		peak := x.peakTotal.Load()
		if total <= peak || x.peakTotal.CompareAndSwap(peak, total) {
			break
		}
	}
}

// destroyRun releases one reference to a window-state run, crediting
// the live-state gauge when the storage actually frees. Reading
// Bytes/Tier before the release is safe: while this reference is
// outstanding no other holder's Destroy can be the final one, so the
// pairs cannot be freed underneath us.
func (x *exec) destroyRun(k *kpa.KPA) {
	t, n := k.Tier(), k.Bytes()
	if k.Destroy() {
		x.stateBytes[t].Add(-n)
		x.stateTotal.Add(-n)
	}
}

// addDRAMTraffic accumulates observed DRAM traffic for the monitor's
// bandwidth estimate.
func (x *exec) addDRAMTraffic(n int64) { x.dramBytes.Add(n) }

// startMonitor refreshes the demand-balance knob on a real-time cadence
// from measured pool utilization and DRAM traffic; it returns a stop
// function.
func (x *exec) startMonitor(machine memsim.Config) func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(x.cfg.MonitorInterval)
		defer ticker.Stop()
		dramBWCap := machine.Tier(memsim.DRAM).Bandwidth
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				traffic := x.dramBytes.Swap(0)
				dramBW := float64(traffic) / x.cfg.MonitorInterval.Seconds() / dramBWCap
				switch {
				case x.ctrl != nil:
					// Degradation ladder: the adaptive placement
					// controller drives the knob and decides when to
					// walk cold sealed state out to the spill tier.
					act := x.ctrl.step(ctrlSignals{
						HBMUtil:     x.pool.Utilization(memsim.HBM),
						DRAMUtil:    x.pool.Utilization(memsim.DRAM),
						DRAMBW:      dramBW,
						QueueDepths: x.sched.QueuedByPriority(),
						Workers:     x.sched.Workers(),
						StateBytes:  x.windowStateBytes(),
					})
					if act.changed {
						x.ctrlDecisions.Add(1)
					}
					x.knob.Set(act.KLow, act.KHigh)
					if act.Evict {
						x.ctrlEvictTicks.Add(1)
						x.evictColdest(x.evictTarget())
					}
				case x.cfg.PinnedKnob != nil:
					// Fixed-knob ablation: the knob stays pinned.
				default:
					// Headroom proxy: the pool keeps up with the offered
					// backlog, so k_high may still shift placements to DRAM.
					headroom := x.sched.Queued() < x.sched.Workers()
					x.knob.Update(x.pool.Utilization(memsim.HBM), dramBW, headroom)
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// numCPUWorkers is the default pool size: one worker per schedulable CPU.
func numCPUWorkers() int { return goruntime.GOMAXPROCS(0) }

func (x *exec) recordError(err error) {
	if err == nil {
		return
	}
	x.emu.Lock()
	x.errs = append(x.errs, err)
	x.emu.Unlock()
}

// windowsInRange lists every window start overlapping [lo, hi],
// ascending. Window starts are the multiples s of the slide with
// s <= hi and s+Size > lo, computed in closed form rather than by
// stepping from the windows of lo — stepping is only sound when lo's
// own window set is non-empty and ends at WindowOf(lo), which the
// closed form does not need to assume.
func windowsInRange(w wm.Windowing, lo, hi wm.Time) []wm.Time {
	slide := w.Slide
	if slide == 0 {
		slide = w.Size
	}
	// First overlapping start: the smallest multiple of slide whose
	// window [s, s+Size) reaches past lo.
	var first wm.Time
	if lo >= w.Size {
		first = (lo-w.Size)/slide*slide + slide
	}
	last := hi / slide * slide
	if last < first {
		return nil
	}
	out := make([]wm.Time, 0, (last-first)/slide+1)
	for s := first; s <= last; s += slide {
		out = append(out, s)
	}
	return out
}
