package runtime

// controller.go is the degradation ladder's brain: a feedback
// controller the monitor ticks on MonitorInterval whenever the spill
// tier is attached (Config.SpillCapacity > 0, no PinnedKnob). It
// replaces the paper's fixed-schedule knob updates with a control loop
// over pool occupancy, DRAM bandwidth, scheduler queue depths and
// per-tier window-state bytes, and decides when to walk sealed window
// state out to the mmap'd spill file — so a working set beyond the
// HBM+DRAM budget degrades to slower closes instead of tripping
// ErrExhausted/ErrOverloaded. The eviction policy and the close-path
// load live in spillpath.go; this file is pure decision logic so the
// convergence tests can drive it without a running pipeline.

import "streambox/internal/memsim"

const (
	// defaultEvictHighWater/LowWater bound the eviction hysteresis over
	// the worst memory-tier utilization: eviction engages above the high
	// water mark and keeps going until occupancy drops below the low
	// water mark. Both sit well under the backpressure (0.95) and shed
	// (0.98) thresholds, so state leaves for the spill tier before
	// ingest ever stalls or connections shed.
	defaultEvictHighWater = 0.85
	defaultEvictLowWater  = 0.70
	// ctrlSetpoint is the HBM occupancy the knob steers toward: high
	// enough to keep the fast tier earning its capacity, low enough to
	// leave headroom for urgent allocations and merge intermediates.
	ctrlSetpoint = 0.80
	// ctrlGain converts occupancy error into knob movement per tick; at
	// a 10 ms MonitorInterval the knob can traverse its full range in
	// ~50 ms, against the paper schedule's fixed 0.05 steps.
	ctrlGain = 0.4
	// ctrlDeadband suppresses knob jitter near the setpoint.
	ctrlDeadband = 0.02
	// ctrlDRAMBWHigh/ctrlHBMSpare mirror the paper's zone-3 boundary:
	// DRAM bandwidth saturated while HBM has spare capacity pulls
	// placements back toward HBM even inside the deadband.
	ctrlDRAMBWHigh = 0.75
	ctrlHBMSpare   = 0.55
)

// ctrlSignals is one monitor tick's view of the pipeline, assembled by
// startMonitor and consumed by placementController.step.
type ctrlSignals struct {
	// HBMUtil/DRAMUtil are the pool occupancies in [0,1].
	HBMUtil, DRAMUtil float64
	// DRAMBW is measured DRAM traffic over the tick as a fraction of
	// the machine's DRAM bandwidth ceiling.
	DRAMBW float64
	// QueueDepths is the scheduler backlog per priority class and
	// Workers the pool size; together they proxy output-delay headroom.
	QueueDepths [numPriorities]int
	Workers     int
	// StateBytes is the live grouped window state per tier — how much
	// sealed, evictable state exists and where it sits.
	StateBytes [memsim.NumTiers]int64
}

// ctrlAction is one tick's decision: the knob pair to install and
// whether the evictor should run.
type ctrlAction struct {
	KLow, KHigh float64
	Evict       bool
	// changed reports a knob adjustment (for the decision counter).
	changed bool
}

// placementController holds the control-loop state between ticks. It
// is only touched from the monitor goroutine (and from tests); all
// cross-goroutine effects flow through Knob.Set and exec.evictColdest.
type placementController struct {
	kLow, kHigh         float64
	highWater, lowWater float64
	// evicting latches between the hysteresis bounds.
	evicting bool
}

// newPlacementController returns the controller at the knob's initial
// state k_low = k_high = 1, with eviction hysteresis bounds hi/lo
// (0 picks the defaults 0.85/0.70).
func newPlacementController(hi, lo float64) *placementController {
	if hi <= 0 {
		hi = defaultEvictHighWater
	}
	if lo <= 0 {
		lo = defaultEvictLowWater
	}
	if lo > hi {
		lo = hi
	}
	return &placementController{kLow: 1, kHigh: 1, highWater: hi, lowWater: lo}
}

// step advances the control loop one tick. Proportional control steers
// HBM occupancy to the setpoint: over the setpoint new KPAs shift
// toward DRAM (k_low first, k_high only when k_low saturates and the
// close pipeline has queue headroom, mirroring the paper's
// delay-guarded k_high descent); under it they shift back. A saturated
// DRAM bus with spare HBM pulls placements HBM-ward even inside the
// deadband (the paper's zone 3). Eviction latches on when the worst
// memory-tier occupancy passes the high water mark and off below the
// low water mark.
func (c *placementController) step(s ctrlSignals) ctrlAction {
	prevLow, prevHigh := c.kLow, c.kHigh
	err := ctrlSetpoint - s.HBMUtil
	// Close-pipeline headroom: urgent+high backlog under one task per
	// worker means shifting high-priority placements to DRAM will not
	// blow the output delay.
	headroom := s.QueueDepths[0]+s.QueueDepths[1] < s.Workers
	switch {
	case err < -ctrlDeadband:
		// HBM over the setpoint: shed placements to DRAM.
		if c.kLow > 0 {
			c.kLow = clamp01(c.kLow + ctrlGain*err)
		} else if headroom {
			c.kHigh = clamp01(c.kHigh + ctrlGain*err)
		}
	case err > ctrlDeadband:
		// Spare HBM: bring placements back, k_high recovering first so
		// latency-critical state reclaims the fast tier.
		if c.kHigh < 1 {
			c.kHigh = clamp01(c.kHigh + ctrlGain*err)
		} else {
			c.kLow = clamp01(c.kLow + ctrlGain*err)
		}
	case s.DRAMBW >= ctrlDRAMBWHigh && s.HBMUtil <= ctrlHBMSpare:
		// Zone 3: DRAM bandwidth is the pressed resource.
		if c.kHigh < 1 {
			c.kHigh = clamp01(c.kHigh + ctrlGain*ctrlDeadband)
		} else {
			c.kLow = clamp01(c.kLow + ctrlGain*ctrlDeadband)
		}
	}

	worst := s.HBMUtil
	if s.DRAMUtil > worst {
		worst = s.DRAMUtil
	}
	if c.evicting {
		c.evicting = worst > c.lowWater
	} else {
		c.evicting = worst > c.highWater
	}

	return ctrlAction{
		KLow:    c.kLow,
		KHigh:   c.kHigh,
		Evict:   c.evicting,
		changed: c.kLow != prevLow || c.kHigh != prevHigh,
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
