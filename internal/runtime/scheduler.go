package runtime

import (
	"sync"
	"sync/atomic"

	"streambox/internal/engine"
)

// numPriorities covers engine.Tag's Low/High/Urgent dispatch classes.
const numPriorities = int(engine.Urgent) + 1

// Task is one unit of work for the scheduler. Tag maps to a dispatch
// priority exactly as in the simulator: Urgent before High before Low.
type Task struct {
	Name string
	Tag  engine.Tag
	Run  func()
}

// SchedStats summarises scheduler activity.
type SchedStats struct {
	// Executed counts completed tasks per priority class (indexed by
	// engine.Tag.Priority()).
	Executed [numPriorities]int64
	// Stolen counts tasks a worker took from another worker's queue.
	Stolen int64
}

// Scheduler is the native backend's worker pool: one goroutine per
// worker, per-worker per-priority run queues, and work stealing. A
// worker serves its own queues highest-priority-first (newest-first,
// for cache locality), then steals the oldest task of the highest
// priority found on any other worker.
type Scheduler struct {
	workers []*worker

	mu       sync.Mutex
	cond     *sync.Cond
	queued   int // tasks submitted, not yet taken by a worker
	inflight int // tasks submitted, not yet finished
	closed   bool

	wg       sync.WaitGroup
	rr       atomic.Uint64 // round-robin submission cursor
	stolen   atomic.Int64
	executed [numPriorities]atomic.Int64
}

type worker struct {
	mu sync.Mutex
	q  [numPriorities][]*Task
}

// NewScheduler starts a pool of n workers (n >= 1).
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{workers: make([]*worker, n)}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.workers {
		s.workers[i] = &worker{}
	}
	for i := range s.workers {
		s.wg.Add(1)
		go s.run(i)
	}
	return s
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return len(s.workers) }

// Submit enqueues a task. Tasks may submit further tasks (merge-tree
// continuations); submission never blocks.
func (s *Scheduler) Submit(t *Task) {
	w := s.workers[s.rr.Add(1)%uint64(len(s.workers))]
	pri := t.Tag.Priority()
	w.mu.Lock()
	w.q[pri] = append(w.q[pri], t)
	w.mu.Unlock()

	s.mu.Lock()
	s.queued++
	s.inflight++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Queued returns the number of tasks waiting for a worker.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// QueuedByPriority returns the waiting tasks per priority class
// (indexed by engine.Tag.Priority()) for the /metrics endpoint.
func (s *Scheduler) QueuedByPriority() [numPriorities]int {
	var out [numPriorities]int
	for _, w := range s.workers {
		w.mu.Lock()
		for pri := range w.q {
			out[pri] += len(w.q[pri])
		}
		w.mu.Unlock()
	}
	return out
}

// WaitQueuedBelow blocks until fewer than n tasks are waiting — the
// ingest path's backpressure hook.
func (s *Scheduler) WaitQueuedBelow(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued >= n && !s.closed {
		s.cond.Wait()
	}
}

// Wait blocks until every submitted task (including tasks submitted by
// tasks) has finished.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.inflight > 0 {
		s.cond.Wait()
	}
}

// Close drains remaining tasks and stops the workers. No Submit may
// race or follow Close.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	var st SchedStats
	st.Stolen = s.stolen.Load()
	for i := range st.Executed {
		st.Executed[i] = s.executed[i].Load()
	}
	return st
}

// run is one worker's loop.
func (s *Scheduler) run(id int) {
	defer s.wg.Done()
	for {
		t := s.grab(id)
		if t == nil {
			s.mu.Lock()
			if s.closed && s.queued == 0 {
				s.mu.Unlock()
				return
			}
			if s.queued == 0 {
				s.cond.Wait()
			}
			s.mu.Unlock()
			continue
		}
		t.Run()
		s.executed[t.Tag.Priority()].Add(1)
		s.mu.Lock()
		s.inflight--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// grab takes the next task for worker id: own queues first (highest
// priority, newest first), then stealing (highest priority, oldest
// first) from the other workers.
func (s *Scheduler) grab(id int) *Task {
	if t := s.workers[id].popOwn(); t != nil {
		s.noteTaken()
		return t
	}
	n := len(s.workers)
	for pri := numPriorities - 1; pri >= 0; pri-- {
		for off := 1; off < n; off++ {
			victim := s.workers[(id+off)%n]
			if t := victim.stealAt(pri); t != nil {
				s.stolen.Add(1)
				s.noteTaken()
				return t
			}
		}
	}
	return nil
}

func (s *Scheduler) noteTaken() {
	s.mu.Lock()
	s.queued--
	s.cond.Broadcast() // unblock WaitQueuedBelow
	s.mu.Unlock()
}

// popOwn takes the worker's newest highest-priority task.
func (w *worker) popOwn() *Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	for pri := numPriorities - 1; pri >= 0; pri-- {
		if n := len(w.q[pri]); n > 0 {
			t := w.q[pri][n-1]
			w.q[pri][n-1] = nil
			w.q[pri] = w.q[pri][:n-1]
			return t
		}
	}
	return nil
}

// stealAt takes the worker's oldest task of priority pri.
func (w *worker) stealAt(pri int) *Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.q[pri]) == 0 {
		return nil
	}
	t := w.q[pri][0]
	w.q[pri][0] = nil
	w.q[pri] = w.q[pri][1:]
	return t
}
