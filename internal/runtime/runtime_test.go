package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streambox/internal/engine"
	"streambox/internal/ingress"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/ops"
	"streambox/internal/wm"
)

// --- Scheduler tests. ------------------------------------------------------

// TestSchedulerPriorityOrder blocks the single worker behind a gate
// task, queues Low before Urgent, and checks the Urgent task runs
// first — the per-priority queues must honor the dispatch order.
func TestSchedulerPriorityOrder(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []engine.Tag
	note := func(tag engine.Tag) func() {
		return func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	s.Submit(&Task{Name: "gate", Tag: engine.Low, Run: func() { <-gate }})
	for _, tag := range []engine.Tag{engine.Low, engine.Low, engine.High, engine.Urgent} {
		s.Submit(&Task{Name: tag.String(), Tag: tag, Run: note(tag)})
	}
	close(gate)
	s.Wait()
	if len(order) != 4 {
		t.Fatalf("executed %d tasks, want 4", len(order))
	}
	if order[0] != engine.Urgent || order[1] != engine.High {
		t.Fatalf("priority order violated: %v", order)
	}
}

// TestSchedulerWorkStealing parks one worker on a slow task whose
// queue holds many quick tasks; the other worker must steal them.
func TestSchedulerWorkStealing(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	var done atomic.Int64
	// Once the slow task is running it pins one worker; round-robin
	// still lands half the quick tasks on that worker's queue, so they
	// can only finish by being stolen.
	started := make(chan struct{})
	s.Submit(&Task{Name: "slow", Tag: engine.Low, Run: func() {
		close(started)
		time.Sleep(100 * time.Millisecond)
	}})
	<-started
	for i := 0; i < 64; i++ {
		s.Submit(&Task{Name: "quick", Tag: engine.Low, Run: func() { done.Add(1) }})
	}
	s.Wait()
	if done.Load() != 64 {
		t.Fatalf("executed %d quick tasks, want 64", done.Load())
	}
	if s.Stats().Stolen == 0 {
		t.Fatal("no tasks were stolen despite a pinned worker")
	}
}

// TestSchedulerTaskSpawnsTask checks Wait covers tasks submitted by
// tasks (the merge-tree continuation pattern).
func TestSchedulerTaskSpawnsTask(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	var hits atomic.Int64
	s.Submit(&Task{Name: "parent", Tag: engine.High, Run: func() {
		for i := 0; i < 8; i++ {
			s.Submit(&Task{Name: "child", Tag: engine.Urgent, Run: func() { hits.Add(1) }})
		}
	}})
	s.Wait()
	if hits.Load() != 8 {
		t.Fatalf("children executed %d times, want 8", hits.Load())
	}
}

// --- Native pipeline tests. ------------------------------------------------

func testPlan(gen engine.Generator, total int64) Plan {
	return Plan{
		Gen: gen,
		Source: engine.SourceConfig{
			Name:           "test",
			Rate:           1e6,
			BundleRecords:  1000,
			WindowRecords:  4000,
			WatermarkEvery: 4,
		},
		Win:          wm.Fixed(1_000_000),
		TotalRecords: total,
		TsCol:        2,
		KeyCol:       0,
		ValCol:       1,
		NewAgg:       ops.Sum(),
		Label:        "sum",
	}
}

// TestNativeExactSums runs the quickstart shape on a deterministic
// round-robin stream: every window must sum to exactly
// WindowRecords/keys per key.
func TestNativeExactSums(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(8, 1), 40_000)
	rep, err := Run(plan, Config{Workers: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != 40_000 {
		t.Fatalf("ingested %d, want 40000", rep.IngestedRecords)
	}
	if rep.WindowsClosed != 10 {
		t.Fatalf("closed %d windows, want 10", rep.WindowsClosed)
	}
	if rep.EmittedRecords != 80 {
		t.Fatalf("emitted %d rows, want 80 (10 windows x 8 keys)", rep.EmittedRecords)
	}
	for _, r := range rep.Rows {
		if r.Val != 4000/8 {
			t.Fatalf("window %d key %d: sum %d, want %d", r.Win, r.Key, r.Val, 4000/8)
		}
	}
	if rep.Throughput <= 0 {
		t.Fatal("native run must report real throughput")
	}
	total := int64(0)
	for _, n := range rep.Sched.Executed {
		total += n
	}
	if total == 0 {
		t.Fatal("no tasks executed on the worker pool")
	}
}

// TestNativeFilter fuses a filter into extraction: only keys < 4
// survive, so each window emits 4 rows.
func TestNativeFilter(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(8, 1), 8_000)
	plan.Filters = []Filter{{Col: 0, Keep: func(v uint64) bool { return v < 4 }}}
	rep, err := Run(plan, Config{Workers: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed != 2 || rep.EmittedRecords != 8 {
		t.Fatalf("windows %d rows %d, want 2 windows x 4 rows", rep.WindowsClosed, rep.EmittedRecords)
	}
	for _, r := range rep.Rows {
		if r.Key >= 4 {
			t.Fatalf("filtered key %d leaked through", r.Key)
		}
		if r.Val != 500 {
			t.Fatalf("sum %d, want 500", r.Val)
		}
	}
}

// TestNativeSlidingWindows checks the sliding-window path: interior
// windows see a full window of records across two slides.
func TestNativeSlidingWindows(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(4, 1), 20_000)
	plan.Win = wm.Sliding(1_000_000, 500_000)
	rep, err := Run(plan, Config{Workers: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for _, r := range rep.Rows {
		if r.Val == 4000/4 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("no interior sliding window saw full counts")
	}
}

// TestNativeBackpressure runs against a tiny memory pool: ingest must
// stall rather than fail, and the run must still complete correctly.
func TestNativeBackpressure(t *testing.T) {
	machine := memsim.KNLConfig()
	machine.Tiers[memsim.HBM].Capacity = 1 << 20   // 1 MiB HBM
	machine.Tiers[memsim.DRAM].Capacity = 12 << 20 // 12 MiB DRAM
	plan := testPlan(ingress.NewRoundRobinKV(8, 1), 40_000)
	rep, err := Run(plan, Config{Workers: 2, Machine: machine, ReservedHBM: 256 << 10, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed != 10 {
		t.Fatalf("closed %d windows, want 10", rep.WindowsClosed)
	}
	for _, r := range rep.Rows {
		if r.Val != 500 {
			t.Fatalf("sum %d under memory pressure, want 500", r.Val)
		}
	}
}

// TestNativeWindowColumnNotSchemaTs windows on a column other than the
// schema's timestamp column (the Window stage may pick any column):
// registration and partitioning must agree, or records are silently
// dropped. RoundRobinKV's value column is constant 5, so every record
// of the run lands in window 0 and per-key sums cover all records.
func TestNativeWindowColumnNotSchemaTs(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(8, 5), 8_000)
	plan.TsCol = 1 // the value column, not the schema ts column (2)
	rep, err := Run(plan, Config{Workers: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed != 1 {
		t.Fatalf("closed %d windows, want 1 (all records share window 0)", rep.WindowsClosed)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("emitted %d rows, want 8", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Win != 0 {
			t.Fatalf("window %d, want 0", r.Win)
		}
		if r.Val != 1000*5 {
			t.Fatalf("key %d: sum %d, want 5000 — records were dropped", r.Key, r.Val)
		}
	}
}

// TestNativeExhaustionFailsInsteadOfHanging gives the run less DRAM
// than a single open window of state: ingest must force watermarks,
// time out, and return an exhaustion error rather than spin forever.
func TestNativeExhaustionFailsInsteadOfHanging(t *testing.T) {
	machine := memsim.KNLConfig()
	machine.Tiers[memsim.HBM].Capacity = 32 << 10
	machine.Tiers[memsim.DRAM].Capacity = 64 << 10
	plan := testPlan(ingress.NewRoundRobinKV(8, 1), 40_000)
	done := make(chan error, 1)
	go func() {
		_, err := Run(plan, Config{
			Workers:        2,
			Machine:        machine,
			ReservedHBM:    16 << 10,
			ExhaustTimeout: 300 * time.Millisecond,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with impossible DRAM budget must fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung on an exhausted DRAM pool")
	}
}

// TestNativeKnobPlacement checks that KPAs actually land on both tiers
// under the default knob (k=1 sends High/Low draws to HBM) and that
// the placement counters add up.
func TestNativeKnobPlacement(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(16, 1), 40_000)
	rep, err := Run(plan, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HBMKPAs+rep.DRAMKPAs == 0 {
		t.Fatal("no KPAs were placed")
	}
	if rep.HBMKPAs == 0 {
		t.Fatal("knob at k=1 must place KPAs on HBM")
	}
	if lo, hi := rep.KLow, rep.KHigh; lo < 0 || lo > 1 || hi < 0 || hi > 1 {
		t.Fatalf("knob out of range: {%g, %g}", lo, hi)
	}
}

// TestNativeMergeTree forces many runs per window (tiny bundles) so
// closing a window exercises the fused range-partitioned merge-reduce
// over a full loser tree (16 runs).
func TestNativeMergeTree(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(4, 1), 12_000)
	plan.Source.BundleRecords = 250 // 16 runs per window
	plan.Source.WatermarkEvery = 16
	rep, err := Run(plan, Config{Workers: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed != 3 {
		t.Fatalf("closed %d windows, want 3", rep.WindowsClosed)
	}
	for _, r := range rep.Rows {
		if r.Val != 1000 {
			t.Fatalf("window %d key %d: sum %d, want 1000", r.Win, r.Key, r.Val)
		}
	}
}

// TestNativeFanInClose pushes a window past the fan-in cap (40 runs >
// mergeFanIn) so closing exercises the k-way compaction level before
// the fused merge-reduce.
func TestNativeFanInClose(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(4, 1), 12_000)
	plan.Source.BundleRecords = 100 // 40 runs per window
	plan.Source.WatermarkEvery = 40
	rep, err := Run(plan, Config{Workers: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed != 3 {
		t.Fatalf("closed %d windows, want 3", rep.WindowsClosed)
	}
	if rep.EmittedRecords != 12 {
		t.Fatalf("emitted %d rows, want 12 (3 windows x 4 keys)", rep.EmittedRecords)
	}
	for _, r := range rep.Rows {
		if r.Val != 1000 {
			t.Fatalf("window %d key %d: sum %d, want 1000", r.Win, r.Key, r.Val)
		}
	}
}

// TestNativeFanInCloseLoneTrailingRun covers R % mergeFanIn == 1 (33
// runs): the lone trailing run passes through the compaction level
// without a task, and its slot must be filled before any merge task can
// finish — a drop here loses one bundle's worth of every window's
// aggregates.
func TestNativeFanInCloseLoneTrailingRun(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(4, 1), 9_900)
	plan.Source.WindowRecords = 3_300 // 33 bundles of 100 per window
	plan.Source.BundleRecords = 100
	plan.Source.WatermarkEvery = 33
	rep, err := Run(plan, Config{Workers: 4, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowsClosed != 3 {
		t.Fatalf("closed %d windows, want 3", rep.WindowsClosed)
	}
	var total uint64
	for _, r := range rep.Rows {
		total += r.Val
	}
	if want := uint64(9_900); total != want {
		t.Fatalf("summed %d across windows, want %d — the trailing run was dropped", total, want)
	}
}

// rowsByWindowKey indexes captured rows for comparison.
func rowsByWindowKey(rows []Row) map[wm.Time]map[uint64]uint64 {
	out := make(map[wm.Time]map[uint64]uint64)
	for _, r := range rows {
		m := out[r.Win]
		if m == nil {
			m = make(map[uint64]uint64)
			out[r.Win] = m
		}
		m[r.Key] = r.Val
	}
	return out
}

// TestFusedMatchesPairwiseClose runs the same plan through the fused
// close and the Config.PairwiseClose baseline (merge tree + separate
// reduce) on fixed and sliding windows and requires identical windows,
// keys and aggregates.
func TestFusedMatchesPairwiseClose(t *testing.T) {
	for _, win := range []wm.Windowing{wm.Fixed(1_000_000), wm.Sliding(1_000_000, 250_000)} {
		plan := testPlan(ingress.NewRoundRobinKV(8, 1), 24_000)
		plan.Win = win
		plan.Source.BundleRecords = 250
		plan.Source.WatermarkEvery = 16
		fused, err := Run(plan, Config{Workers: 4, Capture: true})
		if err != nil {
			t.Fatal(err)
		}
		pairwise, err := Run(plan, Config{Workers: 4, Capture: true, PairwiseClose: true})
		if err != nil {
			t.Fatal(err)
		}
		f, p := rowsByWindowKey(fused.Rows), rowsByWindowKey(pairwise.Rows)
		if len(f) == 0 || len(f) != len(p) {
			t.Fatalf("slide=%d: fused closed %d windows, pairwise %d", win.Slide, len(f), len(p))
		}
		for w, fk := range f {
			pk, ok := p[w]
			if !ok || len(fk) != len(pk) {
				t.Fatalf("slide=%d window %d: fused %d keys, pairwise %d (present=%v)",
					win.Slide, w, len(fk), len(pk), ok)
			}
			for k, v := range fk {
				if pk[k] != v {
					t.Fatalf("slide=%d window %d key %d: fused %d, pairwise %d",
						win.Slide, w, k, v, pk[k])
				}
			}
		}
	}
}

// TestPlanValidation rejects broken plans.
func TestPlanValidation(t *testing.T) {
	good := testPlan(ingress.NewRoundRobinKV(4, 1), 1000)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Gen = nil
	if bad.Validate() == nil {
		t.Fatal("nil generator must fail")
	}
	bad = good
	bad.KeyCol = 9
	if bad.Validate() == nil {
		t.Fatal("key column out of range must fail")
	}
	bad = good
	bad.NewAgg = nil
	if bad.Validate() == nil {
		t.Fatal("missing aggregator must fail")
	}
	bad = good
	bad.TotalRecords = 0
	if bad.Validate() == nil {
		t.Fatal("zero records must fail")
	}
}

// TestWindowsInRange covers the registration helper on fixed and
// sliding windowings.
func TestWindowsInRange(t *testing.T) {
	fixed := wm.Fixed(100)
	got := windowsInRange(fixed, 50, 250)
	want := []wm.Time{0, 100, 200}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	sliding := wm.Sliding(100, 50)
	got = windowsInRange(sliding, 120, 180)
	// Windows containing ts in [120,180]: starts 50, 100, 150.
	want = []wm.Time{50, 100, 150}
	if len(got) != len(want) {
		t.Fatalf("sliding: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sliding: got %v, want %v", got, want)
		}
	}
}

// TestWindowsInRangeMidSlide is the regression for the stepping
// implementation windowsInRange replaced: a bundle whose minimum
// timestamp sits mid-slide (not on a window-start boundary) must still
// register every window start in (lo, hi], including ones that begin
// after lo.
func TestWindowsInRangeMidSlide(t *testing.T) {
	w := wm.Sliding(1_000_000, 250_000)
	// min-ts 375_000 sits mid-slide between starts 250k and 500k.
	got := windowsInRange(w, 375_000, 1_100_000)
	want := []wm.Time{0, 250_000, 500_000, 750_000, 1_000_000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestWindowsInRangeProperty cross-checks windowsInRange against direct
// enumeration — every window start s (a multiple of the slide) with
// s <= hi and s+Size > lo, and nothing else — across window shapes and
// offsets, including slides that do not divide the size.
func TestWindowsInRangeProperty(t *testing.T) {
	for _, shape := range []wm.Windowing{
		wm.Fixed(100), wm.Sliding(100, 50), wm.Sliding(100, 30),
		wm.Sliding(96, 7), wm.Sliding(10, 1),
	} {
		slide := shape.Slide
		if slide == 0 {
			slide = shape.Size
		}
		for lo := wm.Time(0); lo < 400; lo += 3 {
			for hi := lo; hi < lo+250; hi += 17 {
				got := windowsInRange(shape, lo, hi)
				var want []wm.Time
				for s := wm.Time(0); s <= hi; s += slide {
					if s+shape.Size > lo {
						want = append(want, s)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%+v lo=%d hi=%d: got %v, want %v", shape, lo, hi, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%+v lo=%d hi=%d: got %v, want %v", shape, lo, hi, got, want)
					}
				}
			}
		}
	}
}

// TestNativeSlidingMidSlideBundle drives the sliding scatter path with
// a stream whose first bundle starts mid-slide (no record at ts 0) and
// checks no records are dropped: the total across all windows must be
// records x slide-multiplicity.
func TestNativeSlidingMidSlideBundle(t *testing.T) {
	plan := testPlan(ingress.NewRoundRobinKV(4, 1), 16_000)
	plan.Win = wm.Sliding(1_000_000, 250_000)
	rep, err := Run(plan, Config{Workers: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range rep.Rows {
		total += r.Val
	}
	// 16k records of value 1, each landing in Size/Slide = 4 windows —
	// except the first Size of stream time, where windows clamp at start
	// 0: the 1000 records per slide there land in 1, 2 and 3 windows.
	want := uint64(16_000*4 - 1000*(3+2+1))
	if total != want {
		t.Fatalf("sliding windows summed %d, want %d — records were dropped or duplicated", total, want)
	}
}

// TestNativeAggFamily runs count and average on the same stream to
// cover non-sum aggregators end to end.
func TestNativeAggFamily(t *testing.T) {
	count := testPlan(ingress.NewRoundRobinKV(8, 3), 8_000)
	count.NewAgg = ops.Count()
	count.Label = "count"
	rep, err := Run(count, Config{Workers: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Val != 500 {
			t.Fatalf("count %d, want 500", r.Val)
		}
	}
	avg := testPlan(ingress.NewRoundRobinKV(8, 3), 8_000)
	avg.NewAgg = ops.Avg()
	avg.Label = "avg"
	rep, err = Run(avg, Config{Workers: 2, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Val != 3 {
			t.Fatalf("avg %d, want 3", r.Val)
		}
	}
}

var _ kpa.Allocator = (*knobAllocator)(nil)
