package runtime

// spillpath.go is the degradation ladder's muscle: the eviction sweep
// that walks the coldest sealed runs out to the mmap'd spill tier, the
// close-path load that brings them back (or falls back to merging
// straight over the mmap view when the pool cannot host the load), and
// the gauge plumbing that keeps the per-tier window-state accounting
// truthful as runs move. Decision logic lives in controller.go.
//
// Concurrency protocol: every eviction happens under x.wmu and only
// touches runs of quiescent windows — no close requested, none in
// flight — so no merge task can be reading the pairs it relocates.
// Loads happen on the close path, after the closing window's runs were
// collected under x.wmu, which orders them after any prior eviction of
// those runs; two closes sharing a spilled pane run both call
// EnsureResident, whose per-KPA lock makes the load happen exactly
// once and publishes the loaded pairs to the second caller.

import (
	"sort"
	"time"

	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// maxEvictRunsPerSweep bounds how many runs one sweep relocates while
// holding the window lock; the controller simply resumes on its next
// tick if pressure persists.
const maxEvictRunsPerSweep = 128

// evictTarget returns the bytes to free to bring every memory tier
// back under the eviction low-water mark.
func (x *exec) evictTarget() int64 {
	low := defaultEvictLowWater
	if x.ctrl != nil {
		low = x.ctrl.lowWater
	}
	var target int64
	for t := memsim.Tier(0); t < memsim.Tier(memsim.MemTiers); t++ {
		capT := x.pool.Capacity(t)
		if capT <= 0 {
			continue
		}
		if used := x.pool.Used(t); used > int64(low*float64(capT)) {
			target += used - int64(low*float64(capT))
		}
	}
	return target
}

// evictColdest relocates sealed runs of quiescent windows to the spill
// tier, coldest (oldest window/pane start) first, until target bytes
// have left the memory tiers, the per-sweep cap is reached, or the
// spill file fills. It returns the bytes actually freed. Safe to call
// from the monitor goroutine and from the ingest loop's exhaustion
// path; x.wmu serializes sweeps against each other and against close
// collection.
func (x *exec) evictColdest(target int64) int64 {
	if x.spillFile == nil || target <= 0 {
		return 0
	}
	var freed, evicted int64
	evictRun := func(r *kpa.KPA) bool {
		if r.Len() == 0 || r.Spilled() || r.Tier() == memsim.Spill {
			// Already out of the memory tiers — either evicted, or
			// allocated straight into the arena by the ladder's last
			// allocation rung.
			return true
		}
		from := r.Tier()
		n, err := r.Evict(x.pool, x.plan.ValCol)
		if err != nil {
			// Spill file full (or an unsealed run slipped in): stop the
			// sweep; backpressure and the exhaustion path take over.
			return false
		}
		if n > 0 {
			x.moveStateBytes(from, memsim.Spill, n)
			x.evictions.Add(1)
			x.evictedBytes.Add(n)
			freed += n
			evicted++
		}
		return freed < target && evicted < maxEvictRunsPerSweep
	}

	x.wmu.Lock()
	defer x.wmu.Unlock()
	if x.paneW > 0 {
		starts := make([]wm.Time, 0, len(x.panes))
		for p := range x.panes {
			starts = append(starts, p)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, p := range starts {
			if !x.paneQuiescentLocked(p) {
				continue
			}
			for _, r := range x.panes[p].runs {
				if !evictRun(r) {
					return freed
				}
			}
		}
		return freed
	}
	starts := make([]wm.Time, 0, len(x.windows))
	for s, e := range x.windows {
		if e.closeRequested || e.closing {
			continue
		}
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		for _, r := range x.windows[s].runs {
			if !evictRun(r) {
				return freed
			}
		}
	}
	return freed
}

// paneQuiescentLocked reports whether no window covering pane p has a
// close requested or in flight — i.e. none of p's runs can be under a
// concurrent merge read. Covering windows absent from x.windows are
// either future (no runs collected yet) or fully retired; both are
// safe. Caller holds x.wmu.
func (x *exec) paneQuiescentLocked(p wm.Time) bool {
	for s, e := range x.windows {
		if s <= p && p < s+x.plan.Win.Size && (e.closeRequested || e.closing) {
			return false
		}
	}
	return true
}

// loadRuns brings a closing window's spilled runs back into a memory
// tier before the merge. Every run passes through EnsureResident even
// when resident — its per-KPA lock is the publication point for loads
// done by a concurrent close sharing the same pane runs. A load the
// pool cannot host is not an error: the run stays value-resident in
// the mmap'd arena and the fused merge reads it there, bit-identical,
// just slower.
func (x *exec) loadRuns(runs []*kpa.KPA, tag engine.Tag) {
	al := &knobAllocator{x: x, tag: tag, noSpill: true}
	for _, r := range runs {
		t0 := time.Now()
		loaded, err := r.EnsureResident(al)
		switch {
		case loaded:
			x.spillLoads.Add(1)
			x.spillLoadNanos.Add(time.Since(t0).Nanoseconds())
			x.moveStateBytes(memsim.Spill, r.Tier(), r.Bytes())
		case err != nil:
			x.spillLoadFallbacks.Add(1)
		}
	}
}

// homogenizeRuns converts a close's runs to one pointer/value mode so
// the materializing merges (Merge, MergeK) can copy pairs verbatim.
// Only mixed sets convert, and only the pointer runs: a run this close
// owns outright materializes its values in place; a pane run shared
// with other still-open windows is cloned (the clone joins the close,
// the original keeps its pointers and sources for the other windows,
// and this close's reference moves to the clone).
func (x *exec) homogenizeRuns(start wm.Time, runs []*kpa.KPA) []*kpa.KPA {
	var vals, ptrs bool
	for _, r := range runs {
		if r.ValuesResident() {
			vals = true
		} else {
			ptrs = true
		}
	}
	if !vals || !ptrs {
		return runs
	}
	tag := engine.TagFor(x.plan.Win, wm.Time(x.targetWM.Load()), start)
	al := x.allocator(tag)
	for i, r := range runs {
		if r.ValuesResident() {
			continue
		}
		if r.Refs() == 1 {
			if err := r.MaterializeValues(x.plan.ValCol); err != nil {
				x.recordError(err)
			}
			continue
		}
		c, err := r.CloneValues(x.plan.ValCol, al)
		if err != nil {
			x.recordError(err)
			continue
		}
		x.noteKPA(c)
		x.destroyRun(r)
		runs[i] = c
	}
	return runs
}

// moveStateBytes shifts n live window-state bytes between tier gauges
// as a run relocates, maintaining the destination's high-water mark.
// The combined total is unchanged.
func (x *exec) moveStateBytes(from, to memsim.Tier, n int64) {
	if n <= 0 || from == to {
		return
	}
	x.stateBytes[from].Add(-n)
	cur := x.stateBytes[to].Add(n)
	for {
		peak := x.peakState[to].Load()
		if cur <= peak || x.peakState[to].CompareAndSwap(peak, cur) {
			break
		}
	}
}

// recordCloseLatency appends one close-request-to-retirement sample.
func (x *exec) recordCloseLatency(d time.Duration) {
	if d <= 0 {
		return
	}
	x.cmu.Lock()
	x.closeNanos = append(x.closeNanos, d.Nanoseconds())
	x.cmu.Unlock()
}

// closeP99 returns the 99th-percentile close latency in nanoseconds.
func (x *exec) closeP99() int64 {
	x.cmu.Lock()
	defer x.cmu.Unlock()
	if len(x.closeNanos) == 0 {
		return 0
	}
	s := append([]int64(nil), x.closeNanos...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * 99 / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
