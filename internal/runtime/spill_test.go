package runtime

import (
	goruntime "runtime"
	"testing"
	"time"

	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// tinyMachine returns a machine whose memory tiers are small enough
// that the test workloads' window state cannot fit — the shape that
// trips ErrExhausted without a spill tier attached.
func tinyMachine(hbm, dram int64) memsim.Config {
	m := memsim.KNLConfig()
	m.Tiers[memsim.HBM].Capacity = hbm
	m.Tiers[memsim.DRAM].Capacity = dram
	return m
}

// TestSpillMatchesNeverSpill is the degradation ladder's equivalence
// property: the same plan — overlapping panes, skewed keys, an
// order-sensitive aggregator — run on a machine so small that sealed
// runs must be evicted to the spill tier and loaded back (or merged in
// place from the mmap), and run unconstrained with no spill tier, must
// produce bit-identical windows: same window starts, same keys, same
// fold hashes. Run under -race in CI.
func TestSpillMatchesNeverSpill(t *testing.T) {
	for _, win := range []wm.Windowing{
		wm.Fixed(1_000_000),
		wm.Sliding(1_000_000, 250_000), // overlap 4: shared pane runs spill
	} {
		plan := paneTestPlan(win, 7)
		// Stall the watermark so sealed state piles up ~4 windows deep
		// against a budget sized for less than one.
		plan.Source.WatermarkEvery = 16
		baseline, err := Run(paneTestPlan(win, 7), Config{Workers: 4, Capture: true})
		if err != nil {
			t.Fatalf("size=%d slide=%d baseline: %v", win.Size, win.Slide, err)
		}
		spilled, err := Run(plan, Config{
			Workers:         4,
			Capture:         true,
			Machine:         tinyMachine(64<<10, 128<<10),
			ReservedHBM:     32 << 10,
			SpillCapacity:   32 << 20,
			MonitorInterval: time.Millisecond,
			ExhaustTimeout:  2 * time.Second,
		})
		if err != nil {
			t.Fatalf("size=%d slide=%d spilled: %v", win.Size, win.Slide, err)
		}
		if spilled.SpilledRuns == 0 {
			t.Fatalf("size=%d slide=%d: constrained run evicted nothing — the property was not exercised", win.Size, win.Slide)
		}
		if spilled.SpillLoads == 0 && spilled.SpillLoadFallbacks == 0 {
			t.Fatalf("size=%d slide=%d: no spilled run was read back at close", win.Size, win.Slide)
		}
		if spilled.IngestedRecords != baseline.IngestedRecords {
			t.Fatalf("size=%d slide=%d: ingested %d vs %d", win.Size, win.Slide,
				spilled.IngestedRecords, baseline.IngestedRecords)
		}
		b, s := rowsByWindowKey(baseline.Rows), rowsByWindowKey(spilled.Rows)
		if len(b) == 0 || len(b) != len(s) {
			t.Fatalf("size=%d slide=%d: baseline closed %d windows, spilled %d",
				win.Size, win.Slide, len(b), len(s))
		}
		for w, bk := range b {
			sk, ok := s[w]
			if !ok || len(bk) != len(sk) {
				t.Fatalf("size=%d slide=%d window %d: baseline %d keys, spilled %d (present=%v)",
					win.Size, win.Slide, w, len(bk), len(sk), ok)
			}
			for k, v := range bk {
				if sk[k] != v {
					t.Fatalf("size=%d slide=%d window %d key %d: baseline fold %x, spilled fold %x — evict/load reordered pairs",
						win.Size, win.Slide, w, k, v, sk[k])
				}
			}
		}
	}
}

// TestControllerConvergence steps the placement controller against
// synthetic step loads and checks it walks the knob the right way,
// settles inside the deadband, and latches eviction with hysteresis.
func TestControllerConvergence(t *testing.T) {
	c := newPlacementController(0, 0)
	sig := func(hbm, dram, bw float64) ctrlSignals {
		return ctrlSignals{HBMUtil: hbm, DRAMUtil: dram, DRAMBW: bw, Workers: 4}
	}

	// Step 1: HBM far above the setpoint. kLow must descend toward 0.
	var act ctrlAction
	for i := 0; i < 50; i++ {
		act = c.step(sig(0.95, 0.3, 0.2))
	}
	if act.KLow > 0.05 {
		t.Fatalf("overloaded HBM: kLow = %.2f, want ~0", act.KLow)
	}
	if act.KHigh == 1 && c.kLow > 0 {
		t.Fatalf("kHigh moved before kLow bottomed out")
	}

	// Step 2: load releases. Both knobs must recover to 1 (kHigh first
	// needs queue headroom, which the zero QueueDepths provide).
	for i := 0; i < 100; i++ {
		act = c.step(sig(0.30, 0.3, 0.2))
	}
	if act.KLow < 0.95 || act.KHigh < 0.95 {
		t.Fatalf("recovered HBM: knob = {%.2f, %.2f}, want ~{1, 1}", act.KLow, act.KHigh)
	}

	// Step 3: inside the deadband nothing changes.
	before := [2]float64{c.kLow, c.kHigh}
	act = c.step(sig(ctrlSetpoint, 0.3, 0.2))
	if c.kLow != before[0] || c.kHigh != before[1] {
		t.Fatalf("deadband: knob moved {%.2f, %.2f} -> {%.2f, %.2f}",
			before[0], before[1], c.kLow, c.kHigh)
	}

	// Step 4: eviction latches above the high water mark and holds
	// until utilization falls below the low water mark.
	if act = c.step(sig(0.5, 0.90, 0.2)); !act.Evict {
		t.Fatal("worst util 0.90 must start eviction")
	}
	if act = c.step(sig(0.5, 0.75, 0.2)); !act.Evict {
		t.Fatal("eviction must hold at 0.75 (hysteresis: above low water)")
	}
	if act = c.step(sig(0.5, 0.65, 0.2)); act.Evict {
		t.Fatal("eviction must release below the low water mark")
	}
	if act = c.step(sig(0.5, 0.80, 0.2)); act.Evict {
		t.Fatal("eviction must not restart below the high water mark")
	}
}

// TestSpillRunLeavesNoGoroutines pins the controller/monitor teardown:
// a spill-enabled run (controller active, evictions taken) must leave
// no goroutines behind once Run returns.
func TestSpillRunLeavesNoGoroutines(t *testing.T) {
	before := goruntime.NumGoroutine()
	plan := paneTestPlan(wm.Sliding(1_000_000, 250_000), 3)
	plan.Source.WatermarkEvery = 16
	if _, err := Run(plan, Config{
		Workers:         2,
		Machine:         tinyMachine(64<<10, 128<<10),
		ReservedHBM:     32 << 10,
		SpillCapacity:   32 << 20,
		MonitorInterval: time.Millisecond,
		ExhaustTimeout:  2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := goruntime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before run, %d after", before, goruntime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
