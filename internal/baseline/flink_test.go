package baseline

import (
	"testing"

	"streambox/internal/engine"
	"streambox/internal/ingress"
	"streambox/internal/memsim"
	"streambox/internal/ops"
	"streambox/internal/wm"
)

func src(name string) engine.SourceConfig {
	return engine.SourceConfig{
		Name:           name,
		Rate:           2e6,
		BundleRecords:  1000,
		WindowRecords:  4000,
		WatermarkEvery: 4,
	}
}

func TestFlinkYSBBaselineProducesCounts(t *testing.T) {
	gen := ingress.NewYSB(ingress.YSBConfig{Ads: 100, Campaigns: 10, Seed: 1})
	cfg := FlinkConfig(memsim.KNLConfig(), wm.Fixed(1_000_000))
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := ops.NewCapture()
	op := NewHashWindowCount(ingress.YSBEventType, ingress.YSBAdID, ingress.YSBEventTime,
		ingress.YSBEventView, gen.CampaignTable())
	nodes := e.Chain(op, sink)
	e.AddSource(gen, src("ysb"), nodes[0], 0)
	stats, err := e.Run(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsClosed == 0 || len(sink.Rows) == 0 {
		t.Fatal("flink baseline produced nothing")
	}
	for _, r := range sink.Rows {
		if r.Key >= 10 {
			t.Fatalf("campaign %d out of range", r.Key)
		}
		if r.Val == 0 {
			t.Fatal("zero count emitted")
		}
	}
}

func TestFlinkMatchesStreamBoxResults(t *testing.T) {
	// The baseline must compute the same answer as StreamBox-HBM on a
	// deterministic stream; only its cost model differs.
	mk := func() (*ops.CaptureSink, error) {
		gen := ingress.NewRoundRobinKV(8, 1)
		cfg := FlinkConfig(memsim.KNLConfig(), wm.Fixed(1_000_000))
		e, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		sink := ops.NewCapture()
		nodes := e.Chain(NewHashKeyedAgg(0, 1, 2, nil), sink)
		e.AddSource(gen, src("kv"), nodes[0], 0)
		_, err = e.Run(0.02)
		return sink, err
	}
	sink, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	byWin := sink.ByWindow()
	if len(byWin) == 0 {
		t.Fatal("no windows")
	}
	for win, rows := range byWin {
		if len(rows) != 8 {
			t.Fatalf("window %d: %d keys", win, len(rows))
		}
		for _, r := range rows {
			if r.Val != 4000/8 {
				t.Fatalf("sum = %d, want %d", r.Val, 4000/8)
			}
		}
	}
}

func TestBaselineConfigs(t *testing.T) {
	m := memsim.KNLConfig()
	w := wm.Fixed(1000)
	if c := FlinkConfig(m, w); c.UseKPA || c.Placement != engine.PlacementCache {
		t.Error("flink config wrong")
	}
	if c := DRAMOnlyConfig(m, w); !c.UseKPA || c.Placement != engine.PlacementDRAM {
		t.Error("dram-only config wrong")
	}
	if c := CachingConfig(m, w); !c.UseKPA || c.Placement != engine.PlacementCache {
		t.Error("caching config wrong")
	}
	if c := CachingNoKPAConfig(m, w); c.UseKPA || c.Placement != engine.PlacementCache {
		t.Error("caching-nokpa config wrong")
	}
}

func TestFlinkSlowerPerCoreThanStreamBox(t *testing.T) {
	// Qualitative §7.1 check at small scale: with identical offered
	// load and cores, the Flink baseline burns far more virtual time
	// per record. Compare busy time per ingested record.
	run := func(flink bool) float64 {
		gen := ingress.NewYSB(ingress.YSBConfig{Ads: 100, Campaigns: 10, Seed: 1})
		var cfg engine.Config
		if flink {
			cfg = FlinkConfig(memsim.KNLConfig(), wm.Fixed(1_000_000))
		} else {
			cfg = engine.Config{Machine: memsim.KNLConfig(), Win: wm.Fixed(1_000_000), UseKPA: true}
		}
		e, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sink := ops.NewCapture()
		if flink {
			op := NewHashWindowCount(ingress.YSBEventType, ingress.YSBAdID, ingress.YSBEventTime,
				ingress.YSBEventView, gen.CampaignTable())
			nodes := e.Chain(op, sink)
			e.AddSource(gen, src("ysb"), nodes[0], 0)
		} else {
			filter := &ops.FilterOp{Label: "views", Col: ingress.YSBEventType,
				Keep: func(v uint64) bool { return v == ingress.YSBEventView }}
			extJoin := &ops.ExternalJoinOp{Label: "campaign", KeyCol: ingress.YSBAdID, Table: gen.CampaignTable()}
			window := &ops.WindowOp{TsCol: ingress.YSBEventTime}
			count := ops.NewKeyedAgg("campaigns", ingress.YSBAdID, ingress.YSBAdID, ops.Count())
			nodes := e.Chain(filter, extJoin, window, count, sink)
			e.AddSource(gen, src("ysb"), nodes[0], 0)
		}
		stats, err := e.Run(0.02)
		if err != nil {
			t.Fatal(err)
		}
		if stats.IngestedRecords == 0 {
			t.Fatal("nothing ingested")
		}
		return e.Sim.Stats().CoreBusyTime / float64(stats.IngestedRecords)
	}
	sbx := run(false)
	flink := run(true)
	if flink <= sbx*2 {
		t.Fatalf("flink busy/record (%g) must far exceed streambox (%g)", flink, sbx)
	}
}
