// Package baseline implements the comparison systems of the paper's
// evaluation: a Flink-like engine (hash-based random-access grouping on
// transparently-managed memory, record-at-a-time overheads, §7.1) and
// helpers to configure the StreamBox-HBM ablations of §7.3 (DRAM-only,
// cache mode, cache mode without KPA).
package baseline

import (
	"streambox/internal/algo"
	"streambox/internal/engine"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// FlinkCyclesPerRecord models the per-record overhead of a JVM
// record-at-a-time engine relative to StreamBox-HBM's vectorized
// bundle processing. Calibrated so the per-core YSB throughput gap is
// roughly the paper's 18x (§7.1).
const FlinkCyclesPerRecord = 10000

// FlinkConfig returns the engine configuration a Flink-like system
// implies on the given machine: transparent cache-mode memory (the
// paper runs Flink with HBM in cache mode), no KPA extraction.
func FlinkConfig(machine memsim.Config, win wm.Windowing) engine.Config {
	return engine.Config{
		Machine:   machine,
		Win:       win,
		Placement: engine.PlacementCache,
		UseKPA:    false,
	}
}

// DRAMOnlyConfig is "StreamBox-HBM DRAM" (§7.3): KPAs, software
// placement, but every KPA in DRAM.
func DRAMOnlyConfig(machine memsim.Config, win wm.Windowing) engine.Config {
	return engine.Config{Machine: machine, Win: win, Placement: engine.PlacementDRAM, UseKPA: true}
}

// CachingConfig is "StreamBox-HBM Caching" (§7.3): KPAs, but hardware
// cache-mode placement instead of the knob.
func CachingConfig(machine memsim.Config, win wm.Windowing) engine.Config {
	return engine.Config{Machine: machine, Win: win, Placement: engine.PlacementCache, UseKPA: true}
}

// CachingNoKPAConfig is "StreamBox-HBM Caching NoKPA" (§7.3): no KPA
// extraction (grouping moves full records) on cache-mode memory — i.e.
// StreamBox with sequential algorithms on hardware-managed memory.
func CachingNoKPAConfig(machine memsim.Config, win wm.Windowing) engine.Config {
	return engine.Config{Machine: machine, Win: win, Placement: engine.PlacementCache, UseKPA: false}
}

// HashWindowCountOp is the Flink-like fused YSB stage: per record it
// filters by event type, maps ad to campaign through the side table,
// assigns the window, and increments a per-window hash-table count —
// random-access grouping on full records, the "existing engines" design
// of §2.2. One fused stage mirrors Flink's operator chaining.
type HashWindowCountOp struct {
	// EventTypeCol / KeyCol / TsCol locate the YSB columns.
	EventTypeCol int
	KeyCol       int
	TsCol        int
	// KeepEvent is the event type that survives the filter.
	KeepEvent uint64
	// Table maps ad IDs to campaign IDs.
	Table *algo.HashTable

	tables map[wm.Time]*algo.HashTable
}

var _ engine.Operator = (*HashWindowCountOp)(nil)

// NewHashWindowCount creates the fused stage.
func NewHashWindowCount(eventCol, keyCol, tsCol int, keep uint64, table *algo.HashTable) *HashWindowCountOp {
	return &HashWindowCountOp{
		EventTypeCol: eventCol,
		KeyCol:       keyCol,
		TsCol:        tsCol,
		KeepEvent:    keep,
		Table:        table,
		tables:       make(map[wm.Time]*algo.HashTable),
	}
}

// Name implements engine.Operator.
func (o *HashWindowCountOp) Name() string { return "flink:hash-window-count" }

// InPorts implements engine.Operator.
func (o *HashWindowCountOp) InPorts() int { return 1 }

// OnInput processes one bundle record-at-a-time into per-window hash
// tables.
func (o *HashWindowCountOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	b := in.B
	if b == nil {
		ctx.Errorf("flink baseline consumes record bundles")
		in.Release()
		return
	}
	n := int64(b.Rows())
	ts := in.MaxTs()
	// Record-at-a-time CPU plus hash-grouping traffic on nominal fast
	// memory (cache mode splits it into HBM hits + DRAM misses).
	d := memsim.Demand{}.CPU(n * FlinkCyclesPerRecord)
	hd := memsim.HashGroupDemand(memsim.HBM, int(n))
	d.Phases = append(d.Phases, hd.Phases...)
	win := ctx.Windowing()
	ctx.Spawn(o.Name(), ts, d, func() []engine.Emission {
		for i := 0; i < b.Rows(); i++ {
			if b.At(i, o.EventTypeCol) != o.KeepEvent {
				continue
			}
			camp, ok := o.Table.Get(b.At(i, o.KeyCol))
			if !ok {
				continue
			}
			w := win.WindowOf(b.Ts(i))
			tab := o.tables[w]
			if tab == nil {
				tab = algo.NewHashTable(128)
				o.tables[w] = tab
			}
			tab.Add(camp, 1)
		}
		in.Release()
		return nil
	})
}

// OnWatermark emits (campaign, count, winStart) records for closed
// windows.
func (o *HashWindowCountOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	win := ctx.Windowing()
	var closed []wm.Time
	for start := range o.tables {
		if win.End(start) <= w {
			closed = append(closed, start)
		}
	}
	for _, start := range closed {
		tab := o.tables[start]
		delete(o.tables, start)
		winStart := start
		n := int64(tab.Len())
		d := memsim.Demand{}.CPU(n*50).Seq(memsim.DRAM, n*24)
		ctx.SpawnTagged(o.Name()+":emit", engine.Urgent, d, func() []engine.Emission {
			bd, err := ctx.NewBuilder(resultSchema, tab.Len()+1)
			if err != nil {
				ctx.Errorf("result: %v", err)
				return nil
			}
			tab.Range(func(k, v uint64) bool {
				bd.Append(k, v, winStart)
				return true
			})
			return []engine.Emission{{Port: 0, In: engine.Input{B: bd.Seal(), WinStart: winStart, HasWin: true}}}
		})
	}
}

// HashKeyedAggOp is the generic Flink-like keyed aggregation (used by
// the Fig 9 qualitative "random access engines" comparison): per-window
// hash grouping of (key, value) records with a fold function.
type HashKeyedAggOp struct {
	// KeyCol and ValCol locate the grouped columns; TsCol the time.
	KeyCol, ValCol, TsCol int
	// Fold merges a value into the accumulator (e.g. add).
	Fold func(acc, v uint64) uint64

	tables map[wm.Time]*algo.HashTable
}

var _ engine.Operator = (*HashKeyedAggOp)(nil)

// NewHashKeyedAgg creates the operator (Fold defaults to sum).
func NewHashKeyedAgg(keyCol, valCol, tsCol int, fold func(acc, v uint64) uint64) *HashKeyedAggOp {
	if fold == nil {
		fold = func(acc, v uint64) uint64 { return acc + v }
	}
	return &HashKeyedAggOp{KeyCol: keyCol, ValCol: valCol, TsCol: tsCol, Fold: fold,
		tables: make(map[wm.Time]*algo.HashTable)}
}

// Name implements engine.Operator.
func (o *HashKeyedAggOp) Name() string { return "baseline:hash-keyed-agg" }

// InPorts implements engine.Operator.
func (o *HashKeyedAggOp) InPorts() int { return 1 }

// OnInput hashes each record into its window table.
func (o *HashKeyedAggOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	b := in.B
	if b == nil {
		ctx.Errorf("hash baseline consumes record bundles")
		in.Release()
		return
	}
	n := int64(b.Rows())
	d := memsim.HashGroupDemand(memsim.HBM, int(n))
	win := ctx.Windowing()
	ctx.Spawn(o.Name(), in.MaxTs(), d, func() []engine.Emission {
		for i := 0; i < b.Rows(); i++ {
			w := win.WindowOf(b.Ts(i))
			tab := o.tables[w]
			if tab == nil {
				tab = algo.NewHashTable(1024)
				o.tables[w] = tab
			}
			key := b.At(i, o.KeyCol)
			cur, _ := tab.Get(key)
			tab.Put(key, o.Fold(cur, b.At(i, o.ValCol)))
		}
		in.Release()
		return nil
	})
}

// OnWatermark emits per-window aggregates.
func (o *HashKeyedAggOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	win := ctx.Windowing()
	var closed []wm.Time
	for start := range o.tables {
		if win.End(start) <= w {
			closed = append(closed, start)
		}
	}
	for _, start := range closed {
		tab := o.tables[start]
		delete(o.tables, start)
		winStart := start
		n := int64(tab.Len())
		d := memsim.Demand{}.CPU(n*20).Seq(memsim.DRAM, n*24)
		ctx.SpawnTagged(o.Name()+":emit", engine.Urgent, d, func() []engine.Emission {
			bd, err := ctx.NewBuilder(resultSchema, tab.Len()+1)
			if err != nil {
				ctx.Errorf("result: %v", err)
				return nil
			}
			tab.Range(func(k, v uint64) bool {
				bd.Append(k, v, winStart)
				return true
			})
			return []engine.Emission{{Port: 0, In: engine.Input{B: bd.Seal(), WinStart: winStart, HasWin: true}}}
		})
	}
}
