package baseline

import "streambox/internal/bundle"

// resultSchema matches ops.ResultSchema: (key, value, ts).
var resultSchema = bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}}
