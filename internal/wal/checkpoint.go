package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// CheckpointFile is the checkpoint's name inside the log directory.
const CheckpointFile = "checkpoint.ckpt"

const (
	ckptMagic   = "SBXK"
	ckptVersion = 1
)

// SessionState is one resumable session's recovery record: enough to
// re-grant the client's token at the durable ack and put its watermark
// cursor back where the checkpoint saw it.
type SessionState struct {
	Token    uint64 `json:"token"`
	Conn     int64  `json:"conn"`
	LastSeq  uint64 `json:"last_seq"`
	CursorTs uint64 `json:"cursor_ts"`
	Parked   bool   `json:"parked"`
}

// RowState is one aggregated result row of a sealed window.
type RowState struct {
	Key uint64 `json:"key"`
	Val uint64 `json:"val"`
}

// WindowState is one sealed, published window result.
type WindowState struct {
	Sink  string     `json:"sink"`
	Start uint64     `json:"start"`
	End   uint64     `json:"end"`
	Rows  []RowState `json:"rows"`
}

// Checkpoint is the recovery metadata persisted alongside the segments.
// SealedWM is the watermark through which every window has been
// published and is captured in Windows; on recovery the runtime
// suppresses re-publication of anything sealed at or before it, and
// frames feeding only sealed windows are skipped during replay.
type Checkpoint struct {
	SealedWM   uint64         `json:"sealed_wm"`
	HighTs     uint64         `json:"high_ts"`
	NextConnID int64          `json:"next_conn_id"`
	Sessions   []SessionState `json:"sessions,omitempty"`
	Windows    []WindowState  `json:"windows,omitempty"`
}

// WriteCheckpoint atomically replaces dir's checkpoint: serialize to a
// temp file, fsync it, rename over the old one, fsync the directory. A
// crash mid-write leaves the previous checkpoint intact.
func WriteCheckpoint(dir string, ck *Checkpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 12+len(payload)+4)
	buf = append(buf, ckptMagic...)
	buf = append(buf, ckptVersion, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))

	tmp := filepath.Join(dir, CheckpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, CheckpointFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpoint loads dir's checkpoint. A missing file returns
// (nil, nil) — recovery then rebuilds everything from the segments
// alone. A corrupt checkpoint is an error: silently ignoring it could
// double-publish sealed windows.
func ReadCheckpoint(dir string) (*Checkpoint, error) {
	b, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(b) < 12+4 || string(b[:4]) != ckptMagic {
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	if b[4] != ckptVersion {
		return nil, fmt.Errorf("wal: unsupported checkpoint version %d", b[4])
	}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) != 12+n+4 {
		return nil, fmt.Errorf("wal: checkpoint length %d, header says %d: %w", len(b), 12+n+4, io.ErrUnexpectedEOF)
	}
	payload := b[12 : 12+n]
	want := binary.LittleEndian.Uint32(b[12+n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("wal: checkpoint checksum %08x, want %08x", got, want)
	}
	var ck Checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, fmt.Errorf("wal: checkpoint decode: %v", err)
	}
	return &ck, nil
}

// RemoveCheckpoint deletes dir's checkpoint if present.
func RemoveCheckpoint(dir string) error {
	err := os.Remove(filepath.Join(dir, CheckpointFile))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
