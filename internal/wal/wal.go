package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"streambox/internal/parsefmt"
)

// Config tunes a Log. Zero values select the defaults.
type Config struct {
	// Dir holds the segments and checkpoint; created if missing.
	Dir string
	// SegmentBytes rolls the active segment past this size
	// (default 64 MiB).
	SegmentBytes int64
	// SyncInterval is the background flush cadence for appends nobody
	// is waiting on — sessionless frames ride it instead of paying a
	// per-frame fsync (default 5ms). Durable appends are group-committed
	// immediately regardless.
	SyncInterval time.Duration
}

// LSN identifies an appended record; Sync(lsn) returns once every
// record at or below it is on stable storage.
type LSN uint64

// fsyncBuckets is the number of fsync latency histogram buckets.
const fsyncBuckets = 12

// FsyncBucketsNs are the upper bounds (inclusive, nanoseconds) of the
// fsync latency histogram; the last bucket is unbounded.
var FsyncBucketsNs = [fsyncBuckets]int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, int64(^uint64(0) >> 1),
}

// Bucket is one fsync-latency histogram bucket (non-cumulative count).
type Bucket struct {
	LeNs  int64
	Count int64
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	AppendedFrames  int64
	AppendedBytes   int64
	Syncs           int64
	FsyncP99Ns      int64
	Fsync           []Bucket
	SegmentsActive  int64
	SegmentsRetired int64
}

type segment struct {
	idx    uint64
	path   string
	f      *os.File
	bytes  int64
	maxTs  uint64
	synced bool // completed segments only: fully fsynced at roll
}

// Log is a segmented write-ahead log. Append is cheap — records are
// packed into an in-memory accumulation buffer under a mutex, and a
// dedicated writer goroutine drains that buffer to disk outside the
// lock, so neither write(2) latency nor fsync writeback stalls ever
// ride the append path. Durability is batched: every waiter that calls
// Sync while an fsync is in flight is covered by the next one — group
// commit without a timer on the ack path.
type Log struct {
	cfg Config

	mu         sync.Mutex
	appendCnd  *sync.Cond // writer waits here for work
	syncedCnd  *sync.Cond // Sync waiters wait here for durability
	drainedCnd *sync.Cond // backpressured appends wait for a drain
	active     *segment
	completed  []*segment // rolled segments, oldest first
	nextIdx    uint64
	firstIdx   uint64 // first segment index created by this process
	appendLSN  LSN
	wantLSN    LSN // highest LSN somebody asked to make durable
	syncedLSN  LSN
	err        error
	closing    bool

	// Accumulation buffer: appends encode records into abuf; chunks
	// records which segment each byte range belongs to (a drain can
	// span a roll). spare/spareChunks are the writer's double buffer.
	abuf        []byte
	chunks      []chunk
	spare       []byte
	spareChunks []chunk
	// sealedPending are segments rolled away from but not yet fsynced;
	// the writer syncs them after the drain that carries their bytes.
	sealedPending []*segment

	frames   int64
	bytes    int64
	syncs    int64
	retired  int64
	fsyncCnt [fsyncBuckets]int64

	writerDone chan struct{}
	tickerStop chan struct{}
	tickerDone chan struct{}
}

// chunk assigns a run of accumulated bytes to the segment that owns
// them.
type chunk struct {
	seg *segment
	n   int
}

const (
	// drainBytes is the writer's wake-up threshold: below it, appended
	// bytes wait for more company (or the sync tick) so steady-state
	// write(2) calls stay well-sized.
	drainBytes = 128 << 10
	// maxBufferedBytes caps the accumulation buffer; appends beyond it
	// block until the writer drains — backpressure when the disk is
	// genuinely behind.
	maxBufferedBytes = 4 << 20
)

// Open creates (or reopens) the log in cfg.Dir. Existing segments from
// a previous run are indexed — their valid record prefix scanned for
// size and max timestamp so retirement keeps working across a restart —
// but left untouched; new appends go to a fresh segment. Use
// ReplayExisting to feed their records back through the pipeline before
// serving.
func Open(cfg Config) (*Log, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 64 << 20
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = 5 * time.Millisecond
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		cfg:        cfg,
		abuf:       make([]byte, 0, drainBytes),
		spare:      make([]byte, 0, drainBytes),
		writerDone: make(chan struct{}),
		tickerStop: make(chan struct{}),
		tickerDone: make(chan struct{}),
	}
	l.appendCnd = sync.NewCond(&l.mu)
	l.syncedCnd = sync.NewCond(&l.mu)
	l.drainedCnd = sync.NewCond(&l.mu)
	if err := l.indexExisting(); err != nil {
		return nil, err
	}
	l.firstIdx = l.nextIdx
	if err := l.roll(); err != nil {
		return nil, err
	}
	go l.writeLoop()
	go l.tickLoop()
	return l, nil
}

func segPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", idx))
}

// indexExisting scans segments left by a previous process: records each
// one's valid prefix length and max timestamp. The scan stops a
// segment's accounting at the first torn record (crash tail).
func (l *Log) indexExisting() error {
	paths, err := filepath.Glob(filepath.Join(l.cfg.Dir, "wal-*.seg"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, p := range paths {
		seg, err := scanSegment(p)
		if err != nil {
			return fmt.Errorf("wal: index %s: %w", p, err)
		}
		seg.synced = true // survived a restart; as durable as it gets
		l.completed = append(l.completed, seg)
		if seg.idx >= l.nextIdx {
			l.nextIdx = seg.idx + 1
		}
	}
	return nil
}

// scanSegment reads a segment's header and walks its records, stopping
// at the first corruption, and returns its metadata (file left open for
// retirement bookkeeping; records are not retained).
func scanSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("short segment header: %w", err)
	}
	idx, err := parseSegHeader(hdr[:])
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &segment{idx: idx, path: path, f: f, bytes: segHeaderBytes}
	var rec Record
	err = walkSegment(f, &rec, func(r *Record, recBytes int64) error {
		seg.bytes += recBytes
		if r.Kind == KindFrame && r.MaxTs > seg.maxTs {
			seg.maxTs = r.MaxTs
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	return seg, nil
}

// walkSegment streams records from r (positioned after the segment
// header) into fn until EOF or the first corrupt record — corruption is
// the log's end, not an error. fn may keep nothing: rec is reused.
func walkSegment(r io.Reader, rec *Record, fn func(rec *Record, recBytes int64) error) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var buf []byte
	for {
		var lenb [4]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return nil // clean EOF or torn length prefix: end of log
		}
		body := int(uint32(lenb[0]) | uint32(lenb[1])<<8 | uint32(lenb[2])<<16 | uint32(lenb[3])<<24)
		if body < recHeaderBytes+recCRCBytes || body > maxRecordData+recHeaderBytes+recCRCBytes {
			return nil
		}
		if cap(buf) < 4+body {
			buf = make([]byte, 4+body)
		}
		buf = buf[:4+body]
		copy(buf, lenb[:])
		if _, err := io.ReadFull(br, buf[4:]); err != nil {
			return nil // torn body
		}
		if _, err := DecodeRecord(buf, rec); err != nil {
			return nil // checksum/geometry failure: end of durable prefix
		}
		if err := fn(rec, int64(4+body)); err != nil {
			return err
		}
	}
}

// ReplayExisting streams every record of the segments that predate this
// Open, oldest segment first, into fn. Call before serving traffic —
// concurrent appends go to the new active segment and are not replayed.
func (l *Log) ReplayExisting(fn func(rec *Record) error) (frames int64, err error) {
	l.mu.Lock()
	var segs []*segment
	for _, s := range l.completed {
		if s.idx < l.firstIdx {
			segs = append(segs, s)
		}
	}
	l.mu.Unlock()
	var rec Record
	for _, s := range segs {
		f, err := os.Open(s.path)
		if err != nil {
			return frames, err
		}
		if _, err := f.Seek(segHeaderBytes, io.SeekStart); err != nil {
			f.Close()
			return frames, err
		}
		err = walkSegment(f, &rec, func(r *Record, _ int64) error {
			if r.Kind == KindFrame {
				frames++
			}
			return fn(r)
		})
		f.Close()
		if err != nil {
			return frames, err
		}
	}
	return frames, nil
}

// roll seals the active segment (the writer fsyncs it once the drain
// carrying its last bytes lands) and opens the next one. Caller must
// hold l.mu or be initializing.
func (l *Log) roll() error {
	if l.active != nil {
		l.completed = append(l.completed, l.active)
		l.sealedPending = append(l.sealedPending, l.active)
	}
	idx := l.nextIdx
	l.nextIdx++
	path := segPath(l.cfg.Dir, idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderBytes]byte
	putSegHeader(hdr[:], idx)
	// The header goes straight to the file: every accumulated chunk for
	// this segment drains strictly later, so file order is preserved.
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.active = &segment{idx: idx, path: path, f: f, bytes: segHeaderBytes}
	return nil
}

// append packs one record into the accumulation buffer and returns its
// LSN. No I/O happens here — the writer goroutine drains the buffer —
// so the caller pays the encode and a memory append, nothing more.
// Durability comes from Sync (or the background tick).
func (l *Log) append(kind byte, token uint64, conn int64, seq, maxTs uint64, cols [][]uint64, ranges []parsefmt.ColRange, nrows int) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.abuf) > maxBufferedBytes && l.err == nil && !l.closing {
		l.drainedCnd.Wait() // disk behind: block until the writer catches up
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.closing {
		return 0, os.ErrClosed
	}
	start := len(l.abuf)
	l.abuf = appendRecord(l.abuf, kind, token, conn, seq, maxTs, cols, ranges, nrows)
	n := len(l.abuf) - start
	if k := len(l.chunks); k > 0 && l.chunks[k-1].seg == l.active {
		l.chunks[k-1].n += n
	} else {
		l.chunks = append(l.chunks, chunk{seg: l.active, n: n})
	}
	l.active.bytes += int64(n)
	if kind == KindFrame {
		if maxTs > l.active.maxTs {
			l.active.maxTs = maxTs
		}
		l.frames++
	}
	l.bytes += int64(n)
	l.appendLSN++
	lsn := l.appendLSN
	if l.active.bytes >= l.cfg.SegmentBytes {
		if err := l.roll(); err != nil {
			l.err = err
			return 0, err
		}
	}
	if len(l.abuf) >= drainBytes || len(l.sealedPending) > 0 {
		l.appendCnd.Signal()
	}
	return lsn, nil
}

// Sync blocks until every record at or below lsn is on stable storage,
// sharing fsyncs with every other concurrent waiter (group commit).
func (l *Log) Sync(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.wantLSN {
		l.wantLSN = lsn
		l.appendCnd.Signal()
	}
	for l.syncedLSN < lsn && l.err == nil && !l.closing {
		l.syncedCnd.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.syncedLSN < lsn {
		return os.ErrClosed
	}
	return nil
}

// AppendFrame logs an accepted data frame. cols hold equal-length
// columns (the engine's native layout); ranges, when non-nil, carry
// each column's exact min/max so the packer skips its own scan (the
// ingest path gets them for free from its checksum pass). When durable
// is set the call blocks until the record is fsynced — the
// precondition for advancing a session ack; sessionless frames return
// after the buffered write and ride the background sync.
func (l *Log) AppendFrame(token uint64, conn int64, seq, maxTs uint64, cols [][]uint64, ranges []parsefmt.ColRange, durable bool) error {
	nrows := 0
	if len(cols) > 0 {
		nrows = len(cols[0])
	}
	lsn, err := l.append(KindFrame, token, conn, seq, maxTs, cols, ranges, nrows)
	if err != nil {
		return err
	}
	if durable {
		return l.Sync(lsn)
	}
	return nil
}

// AppendSessionEnd records that a session finished cleanly (EOS) or
// expired: recovery must not resurrect its cursor or session entry.
func (l *Log) AppendSessionEnd(token uint64, conn int64) error {
	_, err := l.append(KindSessionEnd, token, conn, 0, 0, nil, nil, 0)
	return err
}

// writeLoop is the log's only disk writer and the group-commit daemon.
// It steals the accumulation buffer under the mutex, then performs
// every write(2) and fsync outside it — appends keep encoding into the
// other buffer while the disk works, so writeback stalls never reach
// the ingest path. An fsync happens only when some Sync waiter (or the
// ticker, or close) wants durability; one fsync covers everyone who
// queued up meanwhile.
func (l *Log) writeLoop() {
	defer close(l.writerDone)
	for {
		l.mu.Lock()
		for !l.closing && l.err == nil &&
			len(l.abuf) < drainBytes && len(l.sealedPending) == 0 &&
			(l.wantLSN <= l.syncedLSN || l.appendLSN <= l.syncedLSN) {
			l.appendCnd.Wait()
		}
		if l.err != nil || (l.closing && len(l.abuf) == 0 && len(l.sealedPending) == 0 && l.appendLSN <= l.syncedLSN) {
			l.syncedCnd.Broadcast()
			l.drainedCnd.Broadcast()
			l.mu.Unlock()
			return
		}
		// Steal the accumulated bytes, their segment spans, and the
		// segments sealed since the last drain; give appends the spare.
		buf, chunks := l.abuf, l.chunks
		l.abuf, l.chunks = l.spare[:0], l.spareChunks[:0]
		sealed := l.sealedPending
		l.sealedPending = nil
		target := l.appendLSN
		syncActive := l.wantLSN > l.syncedLSN || l.closing
		tail := l.active
		l.drainedCnd.Broadcast()
		l.mu.Unlock()

		var err error
		off := 0
		for _, ch := range chunks {
			if _, werr := ch.seg.f.Write(buf[off : off+ch.n]); werr != nil {
				err = werr
				break
			}
			off += ch.n
		}
		// Sealed segments are fully on the fd now: make them durable so
		// retirement can drop them. Then the group commit, if anyone
		// wants it.
		if err == nil {
			for _, s := range sealed {
				if serr := s.f.Sync(); serr != nil {
					err = serr
					break
				}
			}
		}
		if err == nil && syncActive {
			start := time.Now()
			err = tail.f.Sync()
			l.observeFsync(time.Since(start))
		}

		l.mu.Lock()
		l.spare, l.spareChunks = buf, chunks
		if err != nil {
			l.err = err
		} else {
			for _, s := range sealed {
				s.synced = true
			}
			if syncActive && target > l.syncedLSN {
				l.syncedLSN = target
			}
		}
		l.syncedCnd.Broadcast()
		l.drainedCnd.Broadcast()
		l.mu.Unlock()
	}
}

func (l *Log) observeFsync(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < fsyncBuckets-1 && ns > FsyncBucketsNs[i] {
		i++
	}
	l.mu.Lock()
	l.fsyncCnt[i]++
	l.syncs++
	l.mu.Unlock()
}

// tickLoop periodically asks for a background sync so sessionless
// appends become durable within ~SyncInterval without anyone waiting.
func (l *Log) tickLoop() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.tickerStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.appendLSN > l.syncedLSN && l.appendLSN > l.wantLSN {
				l.wantLSN = l.appendLSN
				l.appendCnd.Signal()
			}
			l.mu.Unlock()
		}
	}
}

// RetireThrough removes completed segments whose every frame feeds only
// windows sealed at or before tsBound — call it after the checkpoint
// covering tsBound has persisted, passing sealedWatermark−windowSize.
// The active segment never retires. Returns how many segments were
// removed.
func (l *Log) RetireThrough(tsBound uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	kept := l.completed[:0]
	var firstErr error
	for _, s := range l.completed {
		if s.synced && s.maxTs <= tsBound {
			s.f.Close()
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = err
			}
			n++
			continue
		}
		kept = append(kept, s)
	}
	l.completed = kept
	l.retired += int64(n)
	return n, firstErr
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		AppendedFrames:  l.frames,
		AppendedBytes:   l.bytes,
		Syncs:           l.syncs,
		SegmentsActive:  int64(len(l.completed)) + 1,
		SegmentsRetired: l.retired,
		Fsync:           make([]Bucket, fsyncBuckets),
	}
	if l.active == nil {
		st.SegmentsActive--
	}
	var total, cum int64
	for i := 0; i < fsyncBuckets; i++ {
		st.Fsync[i] = Bucket{LeNs: FsyncBucketsNs[i], Count: l.fsyncCnt[i]}
		total += l.fsyncCnt[i]
	}
	for i := 0; i < fsyncBuckets; i++ {
		cum += l.fsyncCnt[i]
		if total > 0 && cum*100 >= total*99 {
			st.FsyncP99Ns = FsyncBucketsNs[i]
			break
		}
	}
	return st
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.cfg.Dir }

// Close drains and fsyncs everything appended, stops the writer and
// ticker, and closes the segment files. The segments stay on disk for
// recovery unless PurgeSegments is called.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		<-l.writerDone
		return l.err
	}
	l.closing = true
	close(l.tickerStop)
	// The writer sees closing, performs one final drain + fsync (the
	// closing flag forces syncActive), and exits once everything
	// appended is durable.
	l.appendCnd.Broadcast()
	l.drainedCnd.Broadcast()
	l.mu.Unlock()
	<-l.tickerDone
	<-l.writerDone

	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.completed {
		s.f.Close()
	}
	if l.active != nil {
		l.active.f.Close()
		l.active = nil
	}
	return l.err
}

// PurgeSegments removes every segment file in dir — used after a clean
// shutdown has sealed all windows and written the final checkpoint, so
// the log carries no unsealed frames.
func PurgeSegments(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return err
	}
	var firstErr error
	for _, p := range paths {
		if err := os.Remove(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
