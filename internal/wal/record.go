// Package wal implements the durability tier behind the ingest path: a
// segmented, checksummed write-ahead log of accepted data frames plus
// periodic checkpoints of recovery metadata (session table, watermark
// cursors, sealed window results). The server appends every accepted
// frame and only advances a session's cumulative ack after a batched
// group-commit fsync, so the client's replay buffer (frames above the
// ack) and the log (frames at or below it) partition the stream: every
// frame survives a process crash exactly once. Segments retire once the
// global watermark has sealed — and a checkpoint has persisted — every
// window their frames could feed, bounding disk use to the unsealed
// horizon.
//
// On-disk layout (all integers little-endian, host order for column
// payloads — the log never leaves the machine that wrote it):
//
//	wal-%016d.seg    segment: 16-byte header, then records back to back
//	checkpoint.ckpt  latest checkpoint (atomic tmp+rename)
//
// A segment header is the magic "SBXW", a version byte, three reserved
// zero bytes, and the uint64 segment index. Each record is a uint32
// body length followed by the body: a kind byte (1 data frame,
// 2 session end), uint64 session token (0 for sessionless
// connections), uint64 feed cursor id, uint64 frame sequence number,
// uint64 max event timestamp, uint16 column count, uint32 row count,
// two reserved zero bytes, the packed columns, and a trailing uint32
// CRC-32C over the body before it.
//
// Columns are frame-of-reference packed rather than stored as raw
// words: per column a uint64 base (the column's minimum), a width byte
// (0, 1, 2, 4, or 8), and nrows deltas of that many little-endian
// bytes each. Ingest columns are timestamps and small categorical ids,
// so their per-frame ranges are tiny and most columns pack to one or
// two bytes per value — or zero for a constant column — which is what
// keeps logging every accepted frame cheaper than the wire transfer
// that carried it. The encoding is canonical (base is the exact
// minimum, width the smallest that fits the range) and the decoder
// rejects non-canonical packings, so decode∘encode is the identity on
// accepted bytes. Recovery replays records in append order and treats
// the first torn or corrupt record as the end of the log — by the ack
// invariant nothing at or past a torn record was ever acknowledged, so
// the clients' replay buffers re-cover it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"streambox/internal/parsefmt"
)

// Record kinds.
const (
	KindFrame      = 1 // an accepted data frame with its column payload
	KindSessionEnd = 2 // session finished cleanly or expired; never resumes
)

const (
	segMagic       = "SBXW"
	segVersion     = 1
	segHeaderBytes = 16

	// recHeaderBytes is the fixed body prefix before the packed columns:
	// kind(1) token(8) conn(8) seq(8) maxTs(8) ncols(2) nrows(4) pad(2).
	recHeaderBytes = 41
	recCRCBytes    = 4
	// colHeaderBytes prefixes each packed column: base(8) width(1).
	colHeaderBytes = 9

	// maxRecordData bounds a record's column payload so a corrupt length
	// field cannot drive the decoder into a huge allocation.
	maxRecordData = 64 << 20
)

// packWidth returns the canonical frame-of-reference width for a
// column whose deltas span [0, rng]: the smallest of 0, 1, 2, 4, 8
// bytes that holds rng.
func packWidth(rng uint64) int {
	switch {
	case rng == 0:
		return 0
	case rng < 1<<8:
		return 1
	case rng < 1<<16:
		return 2
	case rng < 1<<32:
		return 4
	default:
		return 8
	}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a torn or checksum-failing record; scanning stops
// there and treats everything before it as the durable prefix.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is one decoded log record. For KindFrame, Data holds the
// column words row-major by column: NCols runs of NRows uint64s.
type Record struct {
	Kind  byte
	Token uint64
	Conn  int64
	Seq   uint64
	MaxTs uint64
	NCols int
	NRows int
	Data  []uint64
}

// CopyCols scatters the record's column words into cols, which must
// hold NCols slices of at least NRows elements each (extra capacity is
// left untouched); it returns the slices truncated to NRows.
func (r *Record) CopyCols(cols [][]uint64) [][]uint64 {
	for c := 0; c < r.NCols; c++ {
		copy(cols[c][:r.NRows], r.Data[c*r.NRows:(c+1)*r.NRows])
		cols[c] = cols[c][:r.NRows]
	}
	return cols[:r.NCols]
}

// appendRecord serializes a record body (length prefix included) into
// buf and returns the extended slice. cols is nil for control records.
// ranges, when non-nil, must hold each column's exact min and max —
// the ingest path computes them during its checksum pass, sparing this
// function a second scan over the frame; a stale or wrong range would
// pack deltas that the decoder's canonicality check rejects. A nil
// ranges scans here.
func appendRecord(buf []byte, kind byte, token uint64, conn int64, seq, maxTs uint64, cols [][]uint64, ranges []parsefmt.ColRange, nrows int) []byte {
	ncols := len(cols)
	var bases []uint64
	var widths []int
	body := recHeaderBytes + ncols*colHeaderBytes
	if ranges != nil {
		if nrows > 0 {
			for _, rng := range ranges[:ncols] {
				body += nrows * packWidth(rng.Max-rng.Min)
			}
		}
	} else {
		// No precomputed ranges: per-column min/max fixes each column's
		// base and canonical width, and with them the exact body size.
		bases = make([]uint64, 0, 16)
		widths = make([]int, 0, 16)
		for _, col := range cols {
			var lo, hi uint64
			if nrows > 0 {
				lo, hi = col[0], col[0]
				for _, v := range col[1:nrows] {
					if v < lo {
						lo = v
					} else if v > hi {
						hi = v
					}
				}
			}
			bases = append(bases, lo)
			widths = append(widths, packWidth(hi-lo))
			body += nrows * packWidth(hi-lo)
		}
	}
	total := 4 + body + recCRCBytes
	start := len(buf)
	if cap(buf) < start+total {
		grown := make([]byte, start+total)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:start+total]
	}
	b := buf[start:]
	binary.LittleEndian.PutUint32(b, uint32(body+recCRCBytes))
	b = b[4:]
	b[0] = kind
	binary.LittleEndian.PutUint64(b[1:], token)
	binary.LittleEndian.PutUint64(b[9:], uint64(conn))
	binary.LittleEndian.PutUint64(b[17:], seq)
	binary.LittleEndian.PutUint64(b[25:], maxTs)
	binary.LittleEndian.PutUint16(b[33:], uint16(ncols))
	binary.LittleEndian.PutUint32(b[35:], uint32(nrows))
	b[39], b[40] = 0, 0
	off := recHeaderBytes
	for ci, col := range cols {
		var base uint64
		var w int
		switch {
		case nrows == 0:
			// Canonical empty column: zero base, zero width.
		case ranges != nil:
			base = ranges[ci].Min
			w = packWidth(ranges[ci].Max - base)
		default:
			base, w = bases[ci], widths[ci]
		}
		binary.LittleEndian.PutUint64(b[off:], base)
		b[off+8] = byte(w)
		off += colHeaderBytes
		// Pack deltas a full word at a time where the width allows: one
		// 8-byte store carries 8 (w=1), 4 (w=2), or 2 (w=4) values, which
		// matters because this loop runs on the ingest path for every
		// accepted frame.
		p := b[off:]
		i := 0
		switch w {
		case 0:
		case 1:
			for ; i+8 <= nrows; i += 8 {
				c := col[i : i+8 : i+8]
				binary.LittleEndian.PutUint64(p[i:],
					uint64(byte(c[0]-base))|uint64(byte(c[1]-base))<<8|
						uint64(byte(c[2]-base))<<16|uint64(byte(c[3]-base))<<24|
						uint64(byte(c[4]-base))<<32|uint64(byte(c[5]-base))<<40|
						uint64(byte(c[6]-base))<<48|uint64(byte(c[7]-base))<<56)
			}
			for ; i < nrows; i++ {
				p[i] = byte(col[i] - base)
			}
		case 2:
			for ; i+4 <= nrows; i += 4 {
				c := col[i : i+4 : i+4]
				binary.LittleEndian.PutUint64(p[i*2:],
					uint64(uint16(c[0]-base))|uint64(uint16(c[1]-base))<<16|
						uint64(uint16(c[2]-base))<<32|uint64(uint16(c[3]-base))<<48)
			}
			for ; i < nrows; i++ {
				binary.LittleEndian.PutUint16(p[i*2:], uint16(col[i]-base))
			}
		case 4:
			for ; i+2 <= nrows; i += 2 {
				c := col[i : i+2 : i+2]
				binary.LittleEndian.PutUint64(p[i*4:],
					uint64(uint32(c[0]-base))|uint64(uint32(c[1]-base))<<32)
			}
			for ; i < nrows; i++ {
				binary.LittleEndian.PutUint32(p[i*4:], uint32(col[i]-base))
			}
		default:
			for ; i < nrows; i++ {
				binary.LittleEndian.PutUint64(p[i*8:], col[i]-base)
			}
		}
		off += nrows * w
	}
	crc := crc32.Checksum(b[:off], castagnoli)
	binary.LittleEndian.PutUint32(b[off:], crc)
	return buf
}

// DecodeRecord parses one record from the front of b, returning the
// decoded record and the number of bytes consumed. It never panics and
// never reads past len(b); a short buffer, bad geometry, or checksum
// mismatch returns ErrCorrupt (wrapped with detail).
func DecodeRecord(b []byte, rec *Record) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: short length prefix", ErrCorrupt)
	}
	body := int(binary.LittleEndian.Uint32(b))
	if body < recHeaderBytes+recCRCBytes || body > maxRecordData+recHeaderBytes+recCRCBytes {
		return 0, fmt.Errorf("%w: body length %d out of range", ErrCorrupt, body)
	}
	if len(b) < 4+body {
		return 0, fmt.Errorf("%w: truncated body (%d of %d bytes)", ErrCorrupt, len(b)-4, body)
	}
	p := b[4 : 4+body]
	crcOff := body - recCRCBytes
	want := binary.LittleEndian.Uint32(p[crcOff:])
	if got := crc32.Checksum(p[:crcOff], castagnoli); got != want {
		return 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	kind := p[0]
	if kind != KindFrame && kind != KindSessionEnd {
		return 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	ncols := int(binary.LittleEndian.Uint16(p[33:]))
	nrows := int(binary.LittleEndian.Uint32(p[35:]))
	if p[39] != 0 || p[40] != 0 {
		return 0, fmt.Errorf("%w: nonzero reserved bytes", ErrCorrupt)
	}
	if kind == KindSessionEnd && ncols|nrows != 0 {
		return 0, fmt.Errorf("%w: session-end record carries data", ErrCorrupt)
	}
	rec.Kind = kind
	rec.Token = binary.LittleEndian.Uint64(p[1:])
	rec.Conn = int64(binary.LittleEndian.Uint64(p[9:]))
	rec.Seq = binary.LittleEndian.Uint64(p[17:])
	rec.MaxTs = binary.LittleEndian.Uint64(p[25:])
	rec.NCols, rec.NRows = ncols, nrows
	words := ncols * nrows
	if words > maxRecordData/8 {
		return 0, fmt.Errorf("%w: geometry %dx%d too large", ErrCorrupt, ncols, nrows)
	}
	if cap(rec.Data) < words {
		rec.Data = make([]uint64, words)
	}
	rec.Data = rec.Data[:words]
	off := recHeaderBytes
	for c := 0; c < ncols; c++ {
		if off+colHeaderBytes > crcOff {
			return 0, fmt.Errorf("%w: truncated column %d header", ErrCorrupt, c)
		}
		base := binary.LittleEndian.Uint64(p[off:])
		w := int(p[off+8])
		if w != 0 && w != 1 && w != 2 && w != 4 && w != 8 {
			return 0, fmt.Errorf("%w: column %d width %d", ErrCorrupt, c, w)
		}
		off += colHeaderBytes
		if off+nrows*w > crcOff {
			return 0, fmt.Errorf("%w: truncated column %d payload", ErrCorrupt, c)
		}
		out := rec.Data[c*nrows : (c+1)*nrows]
		q := p[off:]
		var maxDelta uint64
		minDelta := ^uint64(0)
		switch w {
		case 0:
			for i := range out {
				out[i] = base
			}
			minDelta, maxDelta = 0, 0
		case 1:
			for i := range out {
				d := uint64(q[i])
				out[i] = base + d
				if d < minDelta {
					minDelta = d
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
		case 2:
			for i := range out {
				d := uint64(binary.LittleEndian.Uint16(q[i*2:]))
				out[i] = base + d
				if d < minDelta {
					minDelta = d
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
		case 4:
			for i := range out {
				d := uint64(binary.LittleEndian.Uint32(q[i*4:]))
				out[i] = base + d
				if d < minDelta {
					minDelta = d
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
		default:
			for i := range out {
				d := binary.LittleEndian.Uint64(q[i*8:])
				out[i] = base + d
				if d < minDelta {
					minDelta = d
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
		}
		// Canonical form only: base is the exact column minimum and the
		// width is the smallest that fits the range, so re-encoding an
		// accepted record reproduces its bytes bit for bit.
		if nrows > 0 && (minDelta != 0 || packWidth(maxDelta) != w || maxDelta > ^uint64(0)-base) {
			return 0, fmt.Errorf("%w: column %d not canonically packed", ErrCorrupt, c)
		}
		if nrows == 0 && (base != 0 || w != 0) {
			return 0, fmt.Errorf("%w: empty column %d not canonically packed", ErrCorrupt, c)
		}
		off += nrows * w
	}
	if off != crcOff {
		return 0, fmt.Errorf("%w: geometry %dx%d does not match body length %d", ErrCorrupt, ncols, nrows, body)
	}
	return 4 + body, nil
}

// EncodeRecord serializes one record for tests and the fuzzer — the
// exact bytes Append writes into a segment.
func EncodeRecord(rec *Record) []byte {
	cols := make([][]uint64, rec.NCols)
	for c := range cols {
		cols[c] = rec.Data[c*rec.NRows : (c+1)*rec.NRows]
	}
	return appendRecord(nil, rec.Kind, rec.Token, rec.Conn, rec.Seq, rec.MaxTs, cols, nil, rec.NRows)
}

func putSegHeader(b []byte, idx uint64) {
	copy(b, segMagic)
	b[4] = segVersion
	b[5], b[6], b[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(b[8:], idx)
}

func parseSegHeader(b []byte) (idx uint64, err error) {
	if len(b) < segHeaderBytes || string(b[:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic")
	}
	if b[4] != segVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d", b[4])
	}
	if b[5]|b[6]|b[7] != 0 {
		return 0, fmt.Errorf("wal: nonzero reserved segment header bytes")
	}
	return binary.LittleEndian.Uint64(b[8:]), nil
}
