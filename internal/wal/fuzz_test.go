package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func sampleRecords() [][]byte {
	frame := &Record{
		Kind: KindFrame, Token: 0xfeedface, Conn: 9, Seq: 41, MaxTs: 123456,
		NCols: 3, NRows: 4,
		Data: []uint64{1, 2, 3, 4, 10, 20, 30, 40, 100, 200, 300, 400},
	}
	end := &Record{Kind: KindSessionEnd, Token: 0xfeedface, Conn: 9}
	valid := EncodeRecord(frame)
	endRec := EncodeRecord(end)

	truncated := valid[:len(valid)-5]
	corrupt := bytes.Clone(valid)
	corrupt[20] ^= 0x04
	badKind := bytes.Clone(valid)
	badKind[4] = 0x7f
	hugeLen := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hugeLen, 0xfffffff0)
	badGeom := bytes.Clone(valid)
	binary.LittleEndian.PutUint16(badGeom[4+33:], 999) // ncols no longer matches body
	reserved := bytes.Clone(valid)
	reserved[4+39] = 1

	return [][]byte{
		valid, endRec, truncated, corrupt, badKind, hugeLen, badGeom, reserved,
		{}, {0, 0, 0, 0}, bytes.Repeat([]byte{0xff}, 64),
	}
}

// FuzzWALRecord drives the segment record decoder with arbitrary bytes:
// it must never panic, never report consuming more bytes than it was
// given, and any record it accepts must re-encode to the exact bytes it
// consumed.
func FuzzWALRecord(f *testing.F) {
	for _, s := range sampleRecords() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec Record
		n, err := DecodeRecord(data, &rec)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if rec.NCols*rec.NRows != len(rec.Data) {
			t.Fatalf("geometry %dx%d vs %d data words", rec.NCols, rec.NRows, len(rec.Data))
		}
		round := EncodeRecord(&rec)
		if !bytes.Equal(round, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", round, data[:n])
		}
	})
}
