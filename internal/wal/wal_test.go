package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func testCols(base uint64, rows int) [][]uint64 {
	cols := make([][]uint64, 3)
	for c := range cols {
		cols[c] = make([]uint64, rows)
		for r := range cols[c] {
			cols[c][r] = base + uint64(c*rows+r)
		}
	}
	return cols
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		cols := testCols(uint64(i*100), 4)
		if err := l.AppendFrame(7, 3, uint64(i+1), uint64(i*1000), cols, nil, i%2 == 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.AppendSessionEnd(7, 3); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.AppendedFrames != 10 {
		t.Fatalf("AppendedFrames = %d, want 10", st.AppendedFrames)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the previous segment is indexed and replayable.
	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var frames, ends int
	var lastSeq uint64
	n, err := l2.ReplayExisting(func(r *Record) error {
		switch r.Kind {
		case KindFrame:
			frames++
			lastSeq = r.Seq
			if r.Token != 7 || r.Conn != 3 || r.NCols != 3 || r.NRows != 4 {
				t.Fatalf("bad frame record: %+v", r)
			}
			cols := make([][]uint64, r.NCols)
			for c := range cols {
				cols[c] = make([]uint64, r.NRows)
			}
			got := r.CopyCols(cols)
			want := testCols(uint64((frames-1)*100), 4)
			if !reflect.DeepEqual([][]uint64(got), want) {
				t.Fatalf("frame %d cols = %v, want %v", frames, got, want)
			}
		case KindSessionEnd:
			ends++
			if r.Token != 7 {
				t.Fatalf("session end token = %d", r.Token)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || frames != 10 || ends != 1 || lastSeq != 10 {
		t.Fatalf("replayed %d frames (%d seen, %d ends, lastSeq %d)", n, frames, ends, lastSeq)
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.AppendFrame(1, 1, uint64(i+1), uint64(i), testCols(0, 2), nil, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop bytes off the tail and flip one byte of
	// what remains of it.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b = b[:len(b)-10]
	b[len(b)-1] ^= 0x40
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var seqs []uint64
	n, err := l2.ReplayExisting(func(r *Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(seqs) != 4 || seqs[3] != 4 {
		t.Fatalf("replay after torn tail: %d frames, seqs %v (want the 4 intact records)", n, seqs)
	}
}

func TestSegmentRollAndRetire(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Each record packs to ~100 bytes (3 single-byte-width columns of 8
	// rows): force several rolls, with ascending timestamps.
	// The last append is durable: its group commit also fsyncs every
	// sealed segment, so they are retirable when it returns.
	for i := 0; i < 40; i++ {
		if err := l.AppendFrame(0, 1, 0, uint64(i*100), testCols(0, 8), nil, i == 39); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.SegmentsActive < 3 {
		t.Fatalf("SegmentsActive = %d, want several after rolls", st.SegmentsActive)
	}
	// Retire everything sealed through ts 2000: at least one completed
	// segment has maxTs below that.
	n, err := l.RetireThrough(2000)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("RetireThrough(2000) retired nothing")
	}
	st2 := l.Stats()
	if st2.SegmentsRetired != int64(n) || st2.SegmentsActive != st.SegmentsActive-int64(n) {
		t.Fatalf("after retire: %+v (was %+v, retired %d)", st2, st, n)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if int64(len(segs)) != st2.SegmentsActive {
		t.Fatalf("%d segment files on disk, stats say %d active", len(segs), st2.SegmentsActive)
	}
	// Nothing above the bound may retire: the active segment stays.
	if _, err := l.RetireThrough(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if st3 := l.Stats(); st3.SegmentsActive != 1 {
		t.Fatalf("retire-all left %d active segments, want just the active one", st3.SegmentsActive)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.AppendFrame(uint64(g+1), int64(g), uint64(i+1), uint64(i), testCols(0, 2), nil, true); err != nil {
					t.Errorf("goroutine %d append %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.AppendedFrames != 400 {
		t.Fatalf("AppendedFrames = %d, want 400", st.AppendedFrames)
	}
	// Group commit: far fewer fsyncs than durable appends.
	if st.Syncs == 0 || st.Syncs >= 400 {
		t.Fatalf("Syncs = %d, want batched (0 < syncs < 400)", st.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if ck, err := ReadCheckpoint(dir); err != nil || ck != nil {
		t.Fatalf("missing checkpoint: got %v, %v", ck, err)
	}
	want := &Checkpoint{
		SealedWM:   123456,
		HighTs:     999999,
		NextConnID: 42,
		Sessions: []SessionState{
			{Token: 0xdeadbeef, Conn: 3, LastSeq: 77, CursorTs: 5000, Parked: true},
		},
		Windows: []WindowState{
			{Sink: "out", Start: 0, End: 1000, Rows: []RowState{{Key: 1, Val: 10}, {Key: 2, Val: 20}}},
		},
	}
	if err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint round trip:\n got %+v\nwant %+v", got, want)
	}

	// A corrupt checkpoint must be an error, not silently nil.
	path := filepath.Join(dir, CheckpointFile)
	b, _ := os.ReadFile(path)
	b[len(b)-7] ^= 1
	os.WriteFile(path, b, 0o644)
	if _, err := ReadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint read back without error")
	}
	if err := RemoveCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	if ck, err := ReadCheckpoint(dir); err != nil || ck != nil {
		t.Fatalf("after remove: got %v, %v", ck, err)
	}
}

// TestCloseStopsGoroutines pins the leak contract: Close terminates the
// writer and ticker goroutines.
func TestCloseStopsGoroutines(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFrame(1, 1, 1, 1, testCols(0, 2), nil, true); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "wal.(*Log).writeLoop") && !strings.Contains(stacks, "wal.(*Log).tickLoop") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wal goroutines survived Close:\n%s", stacks)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Appends after Close fail cleanly.
	if err := l.AppendFrame(1, 1, 2, 2, testCols(0, 2), nil, true); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestPurgeSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFrame(1, 1, 1, 1, testCols(0, 2), nil, true); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := PurgeSegments(dir); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 0 {
		t.Fatalf("segments survived purge: %v", segs)
	}
}
