package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConns returns a connected in-memory pair.
func pipeConns() (net.Conn, net.Conn) { return net.Pipe() }

func TestDisabledInjectorIsPassthrough(t *testing.T) {
	for _, inj := range []*Injector{nil, New(Config{})} {
		if inj.Enabled() {
			t.Fatal("disabled injector reports enabled")
		}
		a, b := pipeConns()
		wrapped := inj.WrapConn(a)
		if wrapped != a {
			t.Fatal("disabled injector wrapped the connection")
		}
		go wrapped.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(b, buf); err != nil || !bytes.Equal(buf, []byte("ping")) {
			t.Fatalf("passthrough read: %q %v", buf, err)
		}
		a.Close()
		b.Close()
	}
}

// TestDeterministicSequence pins that two injectors with the same seed
// make the same decisions in the same order.
func TestDeterministicSequence(t *testing.T) {
	decisions := func(seed uint64) []bool {
		inj := New(Config{ResetProb: 0.3, Seed: seed})
		out := make([]bool, 64)
		for k := range out {
			r, _ := inj.roll()
			out[k] = r < 0.3
		}
		return out
	}
	a, b, c := decisions(7), decisions(7), decisions(8)
	same := true
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at decision %d", k)
		}
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-decision sequence")
	}
}

func TestInjectedResetSeversWrites(t *testing.T) {
	inj := New(Config{ResetProb: 1, Seed: 1})
	a, b := pipeConns()
	defer b.Close()
	w := inj.WrapConn(a)
	if _, err := w.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write error %v, want ErrInjectedReset", err)
	}
	if c := inj.Counters(); c.Resets != 1 {
		t.Fatalf("counters %+v, want one reset", c)
	}
}

func TestPartialWriteCutsPrefix(t *testing.T) {
	inj := New(Config{PartialWriteProb: 1, Seed: 3})
	a, b := pipeConns()
	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		got <- buf
	}()
	w := inj.WrapConn(a)
	payload := bytes.Repeat([]byte("x"), 100)
	n, err := w.Write(payload)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n >= len(payload) {
		t.Fatalf("partial write sent %d of %d bytes", n, len(payload))
	}
	if buf := <-got; len(buf) != n {
		t.Fatalf("peer saw %d bytes, writer reported %d", len(buf), n)
	}
	if c := inj.Counters(); c.PartialWrites != 1 {
		t.Fatalf("counters %+v, want one partial write", c)
	}
}

func TestCorruptionFlipsOneBitInCopy(t *testing.T) {
	inj := New(Config{CorruptProb: 1, Seed: 5})
	a, b := pipeConns()
	payload := bytes.Repeat([]byte{0xAA}, 32)
	keep := append([]byte(nil), payload...)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(payload))
		io.ReadFull(b, buf)
		got <- buf
	}()
	w := inj.WrapConn(a)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, keep) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	buf := <-got
	diff := 0
	for k := range buf {
		if buf[k] != payload[k] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ on the wire, want exactly 1", diff)
	}
	a.Close()
	b.Close()
}

func TestDisableStopsInjection(t *testing.T) {
	inj := New(Config{ResetProb: 1, Seed: 9, Delay: time.Millisecond})
	if !inj.Enabled() {
		t.Fatal("injector should start enabled")
	}
	inj.Disable()
	if inj.Enabled() {
		t.Fatal("Disable did not stick")
	}
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	w := inj.WrapConn(a) // wrapped while... still returns a: disabled
	if w != a {
		t.Fatal("disabled injector wrapped the connection")
	}
}
