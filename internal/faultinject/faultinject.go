// Package faultinject is the engine's failpoint harness: a
// deterministic, probabilistic fault injector threaded through the
// netio layer so chaos tests (and the CI chaos leg) can subject the
// wire protocol to the failures a real network delivers — connection
// resets, partial writes, delayed acks, and in-flight bit corruption —
// while asserting the ingest path still produces bit-identical window
// results. Every decision comes from a seeded splitmix64 sequence, so a
// failing chaos run replays with the same seed; a nil *Injector (or a
// zero Config) is a no-op and costs one nil check on the hot path.
package faultinject

import (
	"errors"
	"net"
	"os"
	"sync/atomic"
	"time"
)

// ErrInjectedReset marks an injected connection reset, so tests can
// tell deliberate faults from real network failures.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// Config sets the per-operation fault probabilities, each in [0,1] and
// evaluated independently per Read/Write call on a wrapped connection.
// The zero value injects nothing.
type Config struct {
	// ResetProb severs the connection (close + error) instead of
	// performing the operation.
	ResetProb float64
	// PartialWriteProb writes only a prefix of the buffer, then severs
	// the connection — the classic mid-frame cut.
	PartialWriteProb float64
	// CorruptProb flips one bit of the buffer before writing it, and
	// reports success: silent corruption for checksums to catch.
	CorruptProb float64
	// DelayProb stalls the operation by Delay before performing it —
	// on a server-side injector this delays acks and credit grants.
	DelayProb float64
	// Delay is the stall applied on a DelayProb hit (0 picks 2ms).
	Delay time.Duration
	// CrashAfterBytes hard-kills the whole process (SIGKILL, no
	// deferred cleanup, no flush) once the injector has read this many
	// bytes across all wrapped connections — the process-crash mode the
	// WAL recovery tests drive. Seed jitters the exact crossing point
	// by up to 4 KiB so repeated runs die at slightly different frame
	// boundaries.
	CrashAfterBytes int64
	// Seed drives the deterministic decision sequence.
	Seed uint64
}

// Counters tallies the faults an injector has fired.
type Counters struct {
	Resets, PartialWrites, Corruptions, Delays int64
}

// Injector makes fault decisions from a seeded sequence and wraps
// connections with them. All methods are nil-safe.
type Injector struct {
	cfg  Config
	ctr  atomic.Uint64
	on   bool
	dis  atomic.Bool // runtime kill switch (Disable)
	rst  atomic.Int64
	part atomic.Int64
	corr atomic.Int64
	dly  atomic.Int64

	// crashAt is the jittered read-byte threshold for CrashAfterBytes
	// (0 = crash mode off); readBytes counts across all wrapped conns.
	crashAt   int64
	readBytes atomic.Int64
}

// New builds an injector for cfg. A zero cfg yields a disabled
// injector; nil *Injector works everywhere an injector is accepted.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 2 * time.Millisecond
	}
	on := cfg.ResetProb > 0 || cfg.PartialWriteProb > 0 || cfg.CorruptProb > 0 || cfg.DelayProb > 0 ||
		cfg.CrashAfterBytes > 0
	inj := &Injector{cfg: cfg, on: on}
	if cfg.CrashAfterBytes > 0 {
		inj.crashAt = cfg.CrashAfterBytes + int64(splitmix64(cfg.Seed^0xC4A5)%4096)
	}
	return inj
}

// Enabled reports whether the injector can fire at all.
func (i *Injector) Enabled() bool {
	return i != nil && i.on && !i.dis.Load()
}

// Disable turns the injector off at runtime — chaos tests use it to
// stop injecting during the drain phase so the run can converge.
func (i *Injector) Disable() {
	if i != nil {
		i.dis.Store(true)
	}
}

// Counters returns the faults fired so far.
func (i *Injector) Counters() Counters {
	if i == nil {
		return Counters{}
	}
	return Counters{
		Resets:        i.rst.Load(),
		PartialWrites: i.part.Load(),
		Corruptions:   i.corr.Load(),
		Delays:        i.dly.Load(),
	}
}

// splitmix64 is the standard 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll draws the next decision word: uniform in [0,1), plus raw bits
// for secondary choices (cut offsets, bit positions).
func (i *Injector) roll() (float64, uint64) {
	bits := splitmix64(i.cfg.Seed ^ i.ctr.Add(1))
	return float64(bits>>11) / (1 << 53), bits
}

// WrapConn wraps c with fault injection; with a nil or disabled
// injector it returns c unchanged.
func (i *Injector) WrapConn(c net.Conn) net.Conn {
	if !i.Enabled() {
		return c
	}
	return &faultConn{Conn: c, inj: i}
}

// faultConn injects faults on a connection's Read/Write path. Faults
// fire per call: the caller's framing (bufio flushes, io.ReadFull) maps
// calls to frames closely enough for realistic mid-frame cuts.
type faultConn struct {
	net.Conn
	inj *Injector
}

func (f *faultConn) Read(p []byte) (int, error) {
	i := f.inj
	if !i.Enabled() {
		return f.Conn.Read(p)
	}
	r, bits := i.roll()
	switch {
	case r < i.cfg.ResetProb:
		i.rst.Add(1)
		f.Conn.Close()
		return 0, ErrInjectedReset
	case r < i.cfg.ResetProb+i.cfg.DelayProb:
		i.dly.Add(1)
		time.Sleep(i.cfg.Delay)
	}
	_ = bits
	n, err := f.Conn.Read(p)
	if n > 0 && i.crashAt > 0 && i.readBytes.Add(int64(n)) >= i.crashAt {
		i.crash()
	}
	return n, err
}

// crash kills the process the way a power cut would: SIGKILL to self,
// so no deferred cleanup, no buffered flush, no atexit runs. The WAL
// recovery tests assert the durable state alone reconstructs the
// stream.
func (i *Injector) crash() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	// Kill is asynchronous on some platforms; never return to the caller.
	select {}
}

func (f *faultConn) Write(p []byte) (int, error) {
	i := f.inj
	if !i.Enabled() {
		return f.Conn.Write(p)
	}
	r, bits := i.roll()
	c := i.cfg
	switch {
	case r < c.ResetProb:
		i.rst.Add(1)
		f.Conn.Close()
		return 0, ErrInjectedReset
	case r < c.ResetProb+c.PartialWriteProb:
		i.part.Add(1)
		cut := 0
		if len(p) > 1 {
			cut = int(bits % uint64(len(p)))
		}
		n, err := f.Conn.Write(p[:cut])
		f.Conn.Close()
		if err == nil {
			err = ErrInjectedReset
		}
		return n, err
	case r < c.ResetProb+c.PartialWriteProb+c.CorruptProb && len(p) > 0:
		i.corr.Add(1)
		// Flip one bit in a copy: the caller's buffer must stay intact
		// (a client retransmits it from its replay buffer).
		dirty := make([]byte, len(p))
		copy(dirty, p)
		pos := bits % uint64(len(p))
		dirty[pos] ^= 1 << (bits >> 32 % 8)
		return f.Conn.Write(dirty)
	case r < c.ResetProb+c.PartialWriteProb+c.CorruptProb+c.DelayProb:
		i.dly.Add(1)
		time.Sleep(c.Delay)
	}
	return f.Conn.Write(p)
}
