package wm

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWindowingValidate(t *testing.T) {
	if err := Fixed(10).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Sliding(10, 5).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Windowing{Size: 0}).Validate(); err == nil {
		t.Error("zero size must fail")
	}
	if err := Sliding(10, 20).Validate(); err == nil {
		t.Error("slide > size must fail")
	}
}

func TestFixedWindowOf(t *testing.T) {
	w := Fixed(10)
	cases := []struct{ ts, want Time }{
		{0, 0}, {9, 0}, {10, 10}, {15, 10}, {20, 20},
	}
	for _, c := range cases {
		if got := w.WindowOf(c.ts); got != c.want {
			t.Errorf("WindowOf(%d) = %d, want %d", c.ts, got, c.want)
		}
	}
	if !w.IsFixed() {
		t.Error("Fixed must be fixed")
	}
	if w.End(10) != 20 {
		t.Error("End wrong")
	}
}

func TestSlidingWindowsOf(t *testing.T) {
	w := Sliding(10, 5)
	if w.IsFixed() {
		t.Error("sliding must not be fixed")
	}
	got := w.WindowsOf(12)
	// ts=12 belongs to windows starting at 5 and 10.
	want := []Time{5, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WindowsOf(12) = %v, want %v", got, want)
	}
	// Near zero: no underflow.
	got = w.WindowsOf(3)
	if !reflect.DeepEqual(got, []Time{0}) {
		t.Fatalf("WindowsOf(3) = %v", got)
	}
	got = w.WindowsOf(7)
	if !reflect.DeepEqual(got, []Time{0, 5}) {
		t.Fatalf("WindowsOf(7) = %v", got)
	}
}

func TestFixedWindowsOfSingle(t *testing.T) {
	w := Fixed(10)
	got := w.WindowsOf(15)
	if !reflect.DeepEqual(got, []Time{10}) {
		t.Fatalf("WindowsOf(15) = %v", got)
	}
}

func TestBoundaries(t *testing.T) {
	w := Fixed(10)
	got := w.Boundaries(12, 35)
	want := []Time{10, 20, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}
	if b := w.Boundaries(5, 5); !reflect.DeepEqual(b, []Time{0}) {
		t.Fatalf("point boundaries = %v", b)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, End: 20}
	if !w.Contains(10) || !w.Contains(19) {
		t.Error("inclusive start / last tick")
	}
	if w.Contains(20) || w.Contains(9) {
		t.Error("exclusive end / before start")
	}
	if w.String() != "[10,20)" {
		t.Errorf("String = %q", w.String())
	}
}

func TestTrackerSingleInput(t *testing.T) {
	tr := NewTracker(1)
	if tr.Current() != 0 {
		t.Error("initial watermark must be 0")
	}
	if got := tr.Advance(0, 100); got != 100 {
		t.Errorf("advance = %d", got)
	}
	// Monotone: regressions are ignored.
	if got := tr.Advance(0, 50); got != 100 {
		t.Errorf("watermark regressed to %d", got)
	}
}

func TestTrackerMultiInputMin(t *testing.T) {
	tr := NewTracker(3)
	tr.Advance(0, 100)
	tr.Advance(1, 50)
	if tr.Current() != 0 {
		t.Errorf("watermark = %d, want 0 (input 2 silent)", tr.Current())
	}
	tr.Advance(2, 80)
	if tr.Current() != 50 {
		t.Errorf("watermark = %d, want min 50", tr.Current())
	}
	tr.Advance(1, 90)
	if tr.Current() != 80 {
		t.Errorf("watermark = %d, want 80", tr.Current())
	}
}

func TestClosedWindows(t *testing.T) {
	w := Fixed(10)
	got := w.ClosedWindows(0, 35)
	want := []Time{0, 10, 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("closed = %v, want %v", got, want)
	}
	if w.ClosedWindows(0, 9) != nil {
		t.Error("no window closes before size")
	}
	got = w.ClosedWindows(20, 45)
	if !reflect.DeepEqual(got, []Time{20, 30}) {
		t.Fatalf("closed from 20 = %v", got)
	}
	if (Windowing{}).ClosedWindows(0, 100) != nil {
		t.Error("invalid windowing yields nothing")
	}
}

func TestSlidingClosedWindows(t *testing.T) {
	w := Sliding(10, 5)
	got := w.ClosedWindows(0, 21)
	want := []Time{0, 5, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("closed = %v, want %v", got, want)
	}
}

// Property: every window returned by WindowsOf contains ts, and the
// fixed-window special case matches WindowOf.
func TestPropWindowsOfContain(t *testing.T) {
	f := func(rawTs uint32, rawSize, rawSlide uint8) bool {
		size := Time(rawSize%50) + 1
		slide := Time(rawSlide%uint8(size)) + 1
		w := Sliding(size, slide)
		ts := Time(rawTs % 10000)
		wins := w.WindowsOf(ts)
		if len(wins) == 0 {
			return false
		}
		for _, s := range wins {
			if !(Window{Start: s, End: w.End(s)}).Contains(ts) {
				return false
			}
		}
		// Count check: approximately size/slide windows contain ts.
		return len(wins) <= int(size/slide)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClosedWindows returns exactly the windows whose end is at or
// before the watermark.
func TestPropClosedWindows(t *testing.T) {
	f := func(rawWM uint16, rawSize uint8) bool {
		size := Time(rawSize%30) + 1
		w := Fixed(size)
		watermark := Time(rawWM % 2000)
		closed := w.ClosedWindows(0, watermark)
		for _, s := range closed {
			if s+size > watermark {
				return false
			}
		}
		expect := int(watermark / size)
		return len(closed) == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPaneGeometry pins the pane decomposition helpers on divisible and
// non-divisible size/slide combinations.
func TestPaneGeometry(t *testing.T) {
	cases := []struct {
		win    Windowing
		paneW  Time
		perWin int
	}{
		{Sliding(100, 50), 50, 2},
		{Sliding(100, 25), 25, 4},
		{Sliding(700, 200), 100, 7},
		{Sliding(96, 7), 1, 96},
		{Fixed(100), 100, 1},
	}
	for _, c := range cases {
		if got := c.win.PaneWidth(); got != c.paneW {
			t.Fatalf("%+v: pane width %d, want %d", c.win, got, c.paneW)
		}
		if got := c.win.PanesPerWindow(); got != c.perWin {
			t.Fatalf("%+v: panes/window %d, want %d", c.win, got, c.perWin)
		}
		// Windows must decompose into whole panes.
		if c.win.Size%c.paneW != 0 || c.win.slide()%c.paneW != 0 {
			t.Fatalf("%+v: pane width %d does not tile size/slide", c.win, c.paneW)
		}
	}
}

// TestCoveringWindowsProperty cross-checks CoveringWindows against
// direct enumeration: the count of window starts s (multiples of the
// slide, clamped at 0) whose [s, s+Size) fully contains the pane.
func TestCoveringWindowsProperty(t *testing.T) {
	for _, win := range []Windowing{
		Sliding(100, 50), Sliding(100, 25), Sliding(700, 200),
		Sliding(96, 7), Sliding(10, 1), Fixed(100),
	} {
		pw := win.PaneWidth()
		slide := win.slide()
		for pane := Time(0); pane < 5*win.Size; pane += pw {
			want := 0
			for s := Time(0); s <= pane; s += slide {
				if s+win.Size >= pane+pw {
					want++
				}
			}
			if got := win.CoveringWindows(pane); got != want {
				t.Fatalf("%+v pane %d: covering %d, want %d", win, pane, got, want)
			}
		}
	}
}

// TestOverlap pins the sharing factor.
func TestOverlap(t *testing.T) {
	for _, c := range []struct {
		win  Windowing
		want int
	}{
		{Fixed(100), 1}, {Sliding(100, 50), 2}, {Sliding(100, 25), 4},
		{Sliding(700, 200), 4}, {Sliding(100, 100), 1},
	} {
		if got := c.win.Overlap(); got != c.want {
			t.Fatalf("%+v: overlap %d, want %d", c.win, got, c.want)
		}
	}
}
