// Package wm implements event-time windowing and watermark tracking
// (paper §2.1). Streams carry watermark records guaranteeing that all
// subsequent record timestamps are later; windows close when the
// watermark passes their end. The engine's target watermark — the next
// window to close — defines the critical path used for performance
// impact tags (paper §5).
package wm

import (
	"fmt"
	"sort"
	"sync"
)

// Time is an event timestamp in stream time units (the benchmarks use
// one unit per paper "event-time nanosecond"; only ordering and window
// arithmetic matter).
type Time = uint64

// Windowing describes fixed or sliding event-time windows.
type Windowing struct {
	// Size is the window length.
	Size Time
	// Slide is the distance between window starts; Slide == Size (or 0,
	// normalized to Size) is a fixed window.
	Slide Time
}

// Fixed returns a fixed (tumbling) windowing of the given size.
func Fixed(size Time) Windowing { return Windowing{Size: size, Slide: size} }

// Sliding returns a sliding windowing.
func Sliding(size, slide Time) Windowing { return Windowing{Size: size, Slide: slide} }

// Validate reports configuration errors.
func (w Windowing) Validate() error {
	if w.Size == 0 {
		return fmt.Errorf("wm: window size must be positive")
	}
	if w.Slide > w.Size {
		return fmt.Errorf("wm: slide %d larger than size %d", w.Slide, w.Size)
	}
	return nil
}

func (w Windowing) slide() Time {
	if w.Slide == 0 {
		return w.Size
	}
	return w.Slide
}

// IsFixed reports whether the windowing tumbles.
func (w Windowing) IsFixed() bool { return w.slide() == w.Size }

// WindowOf returns the start of the last window containing ts (for
// fixed windows, the unique one).
func (w Windowing) WindowOf(ts Time) Time {
	return ts / w.slide() * w.slide()
}

// WindowsOf returns the starts of every window containing ts, ascending
// (a single element for fixed windows).
func (w Windowing) WindowsOf(ts Time) []Time {
	s := w.slide()
	last := ts / s * s
	var starts []Time
	for start := last; ; start -= s {
		if start+w.Size > ts {
			starts = append(starts, start)
		}
		if start < s { // would underflow
			break
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts
}

// End returns the end (exclusive) of the window starting at start.
func (w Windowing) End(start Time) Time { return start + w.Size }

// PaneWidth returns the width of the non-overlapping panes sliding
// windows decompose into: gcd(Size, Slide), so every window is an exact
// union of whole panes (in practice the slide, since sizes are usually
// slide multiples). Fixed windows are their own single pane.
func (w Windowing) PaneWidth() Time {
	a, b := w.Size, w.slide()
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PanesPerWindow returns how many panes one window spans. When the
// slide divides the size it equals Overlap; for near-coprime
// size/slide combinations the gcd degenerates towards 1 and the count
// blows up — the runtime compares it against Overlap to decide whether
// pane sharing is worth engaging.
func (w Windowing) PanesPerWindow() int { return int(w.Size / w.PaneWidth()) }

// Overlap returns ceil(Size/Slide): how many windows an interior
// timestamp (and so an interior pane) belongs to — the sharing factor
// pane-based aggregation divides grouping work and state by.
func (w Windowing) Overlap() int {
	s := w.slide()
	return int((w.Size + s - 1) / s)
}

// MaxPanesPerOverlap bounds how fragmented the pane decomposition may
// get before pane-based sharing stops paying: the pane width is
// gcd(Size, Slide), so a near-coprime size/slide (say 1e6/333_333,
// gcd 1) would shatter each window into ~Size panes — per-timestamp
// runs and a pane probe per time unit at close. Divisible slides give
// exactly Overlap panes per window; mildly non-divisible ones a small
// multiple.
const MaxPanesPerOverlap = 8

// PaneSharing reports whether this windowing decomposes into coarse
// enough panes for shared pane aggregation to win; shapes past the
// bound run the direct duplicate-scatter path, whose cost is just
// overlap×. Both execution backends key off this predicate, so the
// native path and the simulator's demand model agree on when sharing
// is in effect.
func (w Windowing) PaneSharing() bool {
	return !w.IsFixed() && w.PanesPerWindow() <= MaxPanesPerOverlap*w.Overlap()
}

// CoveringWindows returns how many windows contain the pane starting at
// pane — the multiples s of the slide with s <= pane and
// s+Size >= pane+PaneWidth, clamped at window start 0. This is the
// reference count a shared pane run carries: each covering window
// releases one reference when it closes.
func (w Windowing) CoveringWindows(pane Time) int {
	s := w.slide()
	hi := pane / s // last covering start
	var lo Time
	if pane+w.PaneWidth() > w.Size {
		lo = (pane + w.PaneWidth() - w.Size + s - 1) / s
	}
	return int(hi-lo) + 1
}

// Boundaries returns the window-start boundaries covering [lo, hi],
// suitable as Partition key ranges for the Windowing operator.
func (w Windowing) Boundaries(lo, hi Time) []Time {
	s := w.slide()
	first := w.WindowOf(lo)
	var out []Time
	for b := first; b <= hi; b += s {
		out = append(out, b)
	}
	return out
}

// Window identifies one window instance.
type Window struct {
	Start Time
	End   Time
}

func (w Window) String() string { return fmt.Sprintf("[%d,%d)", w.Start, w.End) }

// Contains reports whether ts falls inside the window.
func (w Window) Contains(ts Time) bool { return ts >= w.Start && ts < w.End }

// Tracker maintains the watermark of a stream (possibly merged from
// several inputs: the effective watermark is the minimum).
type Tracker struct {
	mu     sync.Mutex
	inputs map[int]Time
	single Time
	seen   bool
}

// NewTracker creates a tracker for n upstream inputs; n == 1 is the
// common single-source case.
func NewTracker(n int) *Tracker {
	t := &Tracker{}
	if n > 1 {
		t.inputs = make(map[int]Time, n)
		for i := 0; i < n; i++ {
			t.inputs[i] = 0
		}
	}
	return t
}

// Advance moves input i's watermark to ts (monotonically) and returns
// the effective stream watermark.
func (t *Tracker) Advance(i int, ts Time) Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inputs == nil {
		if ts > t.single {
			t.single = ts
		}
		t.seen = true
		return t.single
	}
	if ts > t.inputs[i] {
		t.inputs[i] = ts
	}
	t.seen = true
	return t.minLocked()
}

// Current returns the effective watermark.
func (t *Tracker) Current() Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inputs == nil {
		return t.single
	}
	return t.minLocked()
}

func (t *Tracker) minLocked() Time {
	first := true
	var min Time
	for _, v := range t.inputs {
		if first || v < min {
			min = v
			first = false
		}
	}
	return min
}

// ClosedWindows returns the starts of all windows that end at or before
// the watermark and start at or after from, ascending — the windows now
// safe to externalize.
func (w Windowing) ClosedWindows(from, watermark Time) []Time {
	if err := w.Validate(); err != nil {
		return nil
	}
	s := w.slide()
	var out []Time
	for start := from; start+w.Size <= watermark; start += s {
		out = append(out, start)
	}
	return out
}
