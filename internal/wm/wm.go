// Package wm implements event-time windowing and watermark tracking
// (paper §2.1). Streams carry watermark records guaranteeing that all
// subsequent record timestamps are later; windows close when the
// watermark passes their end. The engine's target watermark — the next
// window to close — defines the critical path used for performance
// impact tags (paper §5).
package wm

import (
	"fmt"
	"sort"
	"sync"
)

// Time is an event timestamp in stream time units (the benchmarks use
// one unit per paper "event-time nanosecond"; only ordering and window
// arithmetic matter).
type Time = uint64

// Windowing describes fixed or sliding event-time windows.
type Windowing struct {
	// Size is the window length.
	Size Time
	// Slide is the distance between window starts; Slide == Size (or 0,
	// normalized to Size) is a fixed window.
	Slide Time
}

// Fixed returns a fixed (tumbling) windowing of the given size.
func Fixed(size Time) Windowing { return Windowing{Size: size, Slide: size} }

// Sliding returns a sliding windowing.
func Sliding(size, slide Time) Windowing { return Windowing{Size: size, Slide: slide} }

// Validate reports configuration errors.
func (w Windowing) Validate() error {
	if w.Size == 0 {
		return fmt.Errorf("wm: window size must be positive")
	}
	if w.Slide > w.Size {
		return fmt.Errorf("wm: slide %d larger than size %d", w.Slide, w.Size)
	}
	return nil
}

func (w Windowing) slide() Time {
	if w.Slide == 0 {
		return w.Size
	}
	return w.Slide
}

// IsFixed reports whether the windowing tumbles.
func (w Windowing) IsFixed() bool { return w.slide() == w.Size }

// WindowOf returns the start of the last window containing ts (for
// fixed windows, the unique one).
func (w Windowing) WindowOf(ts Time) Time {
	return ts / w.slide() * w.slide()
}

// WindowsOf returns the starts of every window containing ts, ascending
// (a single element for fixed windows).
func (w Windowing) WindowsOf(ts Time) []Time {
	s := w.slide()
	last := ts / s * s
	var starts []Time
	for start := last; ; start -= s {
		if start+w.Size > ts {
			starts = append(starts, start)
		}
		if start < s { // would underflow
			break
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts
}

// End returns the end (exclusive) of the window starting at start.
func (w Windowing) End(start Time) Time { return start + w.Size }

// Boundaries returns the window-start boundaries covering [lo, hi],
// suitable as Partition key ranges for the Windowing operator.
func (w Windowing) Boundaries(lo, hi Time) []Time {
	s := w.slide()
	first := w.WindowOf(lo)
	var out []Time
	for b := first; b <= hi; b += s {
		out = append(out, b)
	}
	return out
}

// Window identifies one window instance.
type Window struct {
	Start Time
	End   Time
}

func (w Window) String() string { return fmt.Sprintf("[%d,%d)", w.Start, w.End) }

// Contains reports whether ts falls inside the window.
func (w Window) Contains(ts Time) bool { return ts >= w.Start && ts < w.End }

// Tracker maintains the watermark of a stream (possibly merged from
// several inputs: the effective watermark is the minimum).
type Tracker struct {
	mu     sync.Mutex
	inputs map[int]Time
	single Time
	seen   bool
}

// NewTracker creates a tracker for n upstream inputs; n == 1 is the
// common single-source case.
func NewTracker(n int) *Tracker {
	t := &Tracker{}
	if n > 1 {
		t.inputs = make(map[int]Time, n)
		for i := 0; i < n; i++ {
			t.inputs[i] = 0
		}
	}
	return t
}

// Advance moves input i's watermark to ts (monotonically) and returns
// the effective stream watermark.
func (t *Tracker) Advance(i int, ts Time) Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inputs == nil {
		if ts > t.single {
			t.single = ts
		}
		t.seen = true
		return t.single
	}
	if ts > t.inputs[i] {
		t.inputs[i] = ts
	}
	t.seen = true
	return t.minLocked()
}

// Current returns the effective watermark.
func (t *Tracker) Current() Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inputs == nil {
		return t.single
	}
	return t.minLocked()
}

func (t *Tracker) minLocked() Time {
	first := true
	var min Time
	for _, v := range t.inputs {
		if first || v < min {
			min = v
			first = false
		}
	}
	return min
}

// ClosedWindows returns the starts of all windows that end at or before
// the watermark and start at or after from, ascending — the windows now
// safe to externalize.
func (w Windowing) ClosedWindows(from, watermark Time) []Time {
	if err := w.Validate(); err != nil {
		return nil
	}
	s := w.slide()
	var out []Time
	for start := from; start+w.Size <= watermark; start += s {
		out = append(out, start)
	}
	return out
}
