package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestConfigValidate(t *testing.T) {
	if err := KNLConfig().Validate(); err != nil {
		t.Fatalf("KNL config invalid: %v", err)
	}
	if err := X56Config().Validate(); err != nil {
		t.Fatalf("X56 config invalid: %v", err)
	}
	bad := KNLConfig()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero cores")
	}
	bad = KNLConfig()
	bad.Tiers[HBM].Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
	bad = KNLConfig()
	bad.Tiers[DRAM].LatencyNS = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative latency")
	}
	bad = KNLConfig()
	bad.CacheLine = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero cache line")
	}
}

func TestTable3Configs(t *testing.T) {
	knl := KNLConfig()
	if knl.Cores != 64 {
		t.Errorf("KNL cores = %d, want 64", knl.Cores)
	}
	if knl.Tier(HBM).Capacity != 16*GB {
		t.Errorf("KNL HBM capacity = %d, want 16 GiB", knl.Tier(HBM).Capacity)
	}
	if knl.Tier(DRAM).Capacity != 96*GB {
		t.Errorf("KNL DRAM capacity = %d, want 96 GiB", knl.Tier(DRAM).Capacity)
	}
	if knl.Tier(HBM).Bandwidth != 375e9 {
		t.Errorf("KNL HBM bandwidth = %g, want 375e9", knl.Tier(HBM).Bandwidth)
	}
	if knl.Tier(DRAM).Bandwidth != 80e9 {
		t.Errorf("KNL DRAM bandwidth = %g, want 80e9", knl.Tier(DRAM).Bandwidth)
	}
	if knl.Tier(HBM).LatencyNS <= knl.Tier(DRAM).LatencyNS {
		t.Error("paper: HBM latency must exceed DRAM latency on KNL")
	}
	if knl.RDMABW != 5e9 {
		t.Errorf("KNL RDMA bandwidth = %g, want 5e9 (40 Gb/s)", knl.RDMABW)
	}
	x := X56Config()
	if x.Cores != 56 {
		t.Errorf("X56 cores = %d, want 56", x.Cores)
	}
	if x.Tier(HBM).Capacity != 0 {
		t.Error("X56 must have no HBM")
	}
	if x.ClockHz != 2.0e9 {
		t.Errorf("X56 clock = %g, want 2 GHz", x.ClockHz)
	}
}

func TestTierString(t *testing.T) {
	if HBM.String() != "HBM" || DRAM.String() != "DRAM" {
		t.Error("tier names wrong")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Error("unknown tier formatting wrong")
	}
	if Sequential.String() != "seq" || Random.String() != "rand" {
		t.Error("pattern names wrong")
	}
}

func TestPerCoreRandomBW(t *testing.T) {
	c := KNLConfig()
	// One cacheline per latency at MLP 1.
	want := 64.0 / (172e-9)
	if got := c.PerCoreRandomBW(HBM, 1); !almostEqual(got, want, 1e-9) {
		t.Errorf("PerCoreRandomBW(HBM,1) = %g, want %g", got, want)
	}
	if got := c.PerCoreRandomBW(HBM, 4); !almostEqual(got, 4*want, 1e-9) {
		t.Errorf("MLP must scale linearly")
	}
	if got := c.PerCoreRandomBW(HBM, 0); !almostEqual(got, want, 1e-9) {
		t.Errorf("MLP 0 must clamp to 1")
	}
	// DRAM has lower latency, so per-core random bandwidth is higher.
	if c.PerCoreRandomBW(DRAM, 1) <= c.PerCoreRandomBW(HBM, 1) {
		t.Error("DRAM random per-core bandwidth should exceed HBM's")
	}
}

func TestDemandBuilders(t *testing.T) {
	d := Demand{}.CPU(100).Seq(HBM, 1000).Rand(DRAM, 500, 4).Vec(10)
	if len(d.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(d.Phases))
	}
	if d.TotalCPUOps() != 110 {
		t.Errorf("cpu ops = %d, want 110", d.TotalCPUOps())
	}
	b := d.TotalBytes()
	if b[HBM] != 1000 || b[DRAM] != 500 {
		t.Errorf("bytes = %v", b)
	}
	// Zero-size phases are dropped.
	d2 := Demand{}.CPU(0).Seq(HBM, 0).Rand(DRAM, 0, 1)
	if !d2.Empty() {
		t.Error("zero demand should be empty")
	}
	// MLP clamping.
	d3 := Demand{}.Rand(HBM, 10, 0)
	if d3.Phases[0].MLP != 1 {
		t.Error("MLP must clamp to >= 1")
	}
}

func TestMergeReduceDemand(t *testing.T) {
	n := 1 << 20
	d := MergeReduceDemand(HBM, n, 16)
	b := d.TotalBytes()
	// One streaming read of the pairs from the KPA tier, one 8-byte
	// value gather per pair from DRAM — and nothing else: the fused pass
	// writes no intermediate KPA.
	if b[HBM] != int64(n)*PairBytes {
		t.Errorf("HBM bytes = %d, want %d (one streaming read)", b[HBM], int64(n)*PairBytes)
	}
	if b[DRAM] != int64(n)*8 {
		t.Errorf("DRAM bytes = %d, want %d (value gather)", b[DRAM], int64(n)*8)
	}
	// The pairwise path for the same close: log2(16) = 4 merge levels
	// plus a separate reduce sweep. The fused demand must move several
	// times less memory.
	pair := int64(0)
	for i := 0; i < 4; i++ {
		pb := MergeDemand(HBM, n).TotalBytes()
		pair += pb[HBM] + pb[DRAM]
	}
	rb := ReduceKeyedDemand(HBM, n).TotalBytes()
	pair += rb[HBM] + rb[DRAM]
	fused := b[HBM] + b[DRAM]
	if pair < 4*fused {
		t.Errorf("pairwise traffic %d not >= 4x fused %d", pair, fused)
	}
	// Fan-in 1 needs no tree levels; deeper trees cost more compute.
	if MergeReduceDemand(HBM, n, 1).TotalCPUOps() >= MergeReduceDemand(HBM, n, 32).TotalCPUOps() {
		t.Error("loser-tree compute must grow with fan-in")
	}
	if !MergeReduceDemand(HBM, 0, 16).Empty() {
		t.Error("zero pairs must produce an empty demand")
	}
}

func TestPhaseString(t *testing.T) {
	p := Phase{CPUOps: 5}
	if p.String() != "cpu(5 ops)" {
		t.Errorf("got %q", p.String())
	}
	p = Phase{CPUOps: 5, Vector: true}
	if p.String() != "vec(5 ops)" {
		t.Errorf("got %q", p.String())
	}
	p = Phase{Bytes: 7, Tier: HBM, Pattern: Random, MLP: 2}
	if p.String() != "mem(7 B HBM rand mlp=2)" {
		t.Errorf("got %q", p.String())
	}
}

func TestWaterFillEvenSplit(t *testing.T) {
	rates := waterFill([]float64{100, 100, 100, 100}, 200)
	for _, r := range rates {
		if !almostEqual(r, 50, 1e-12) {
			t.Fatalf("rates = %v, want all 50", rates)
		}
	}
}

func TestWaterFillCapped(t *testing.T) {
	// One consumer capped at 10, others split the rest.
	rates := waterFill([]float64{10, 100, 100}, 110)
	if !almostEqual(rates[0], 10, 1e-12) {
		t.Fatalf("capped consumer got %v", rates[0])
	}
	if !almostEqual(rates[1], 50, 1e-12) || !almostEqual(rates[2], 50, 1e-12) {
		t.Fatalf("rates = %v", rates)
	}
}

func TestWaterFillUnderloaded(t *testing.T) {
	rates := waterFill([]float64{10, 20}, 1000)
	if !almostEqual(rates[0], 10, 1e-12) || !almostEqual(rates[1], 20, 1e-12) {
		t.Fatalf("rates = %v, want caps", rates)
	}
}

func TestWaterFillConserves(t *testing.T) {
	f := func(rawCaps []uint16, rawTotal uint32) bool {
		if len(rawCaps) == 0 {
			return true
		}
		caps := make([]float64, len(rawCaps))
		var capSum float64
		for i, c := range rawCaps {
			caps[i] = float64(c%1000) + 1
			capSum += caps[i]
		}
		total := float64(rawTotal%100000) + 1
		rates := waterFill(caps, total)
		var sum float64
		for i, r := range rates {
			if r < 0 || r > caps[i]+1e-9 {
				return false
			}
			sum += r
		}
		want := math.Min(total, capSum)
		return almostEqual(sum, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimSingleCPUTask(t *testing.T) {
	cfg := KNLConfig().WithCores(1)
	s := NewSim(cfg)
	ran := false
	var doneAt float64
	s.Submit(&Task{
		Name:   "t",
		Demand: Demand{}.CPU(1_300_000), // 1e-3 s at 1.3 GHz, IPC 1
		Body:   func() { ran = true },
		OnDone: func(now float64) { doneAt = now },
	})
	s.Run()
	if !ran {
		t.Fatal("body did not run")
	}
	if !almostEqual(doneAt, 1e-3, 1e-6) {
		t.Fatalf("doneAt = %g, want 1e-3", doneAt)
	}
	if s.Stats().TasksRun != 1 {
		t.Fatalf("tasks run = %d", s.Stats().TasksRun)
	}
}

func TestSimVectorFasterThanScalar(t *testing.T) {
	cfg := KNLConfig().WithCores(1)
	runOne := func(d Demand) float64 {
		s := NewSim(cfg)
		var doneAt float64
		s.Submit(&Task{Demand: d, OnDone: func(now float64) { doneAt = now }})
		s.Run()
		return doneAt
	}
	scalar := runOne(Demand{}.CPU(1e6))
	vec := runOne(Demand{}.Vec(1e6))
	if vec >= scalar {
		t.Fatalf("vector (%g) must beat scalar (%g)", vec, scalar)
	}
	if !almostEqual(scalar/vec, cfg.VectorIPC/cfg.IPC, 1e-6) {
		t.Fatalf("speedup = %g, want %g", scalar/vec, cfg.VectorIPC/cfg.IPC)
	}
}

func TestSimMemoryPhaseDuration(t *testing.T) {
	cfg := KNLConfig().WithCores(1)
	s := NewSim(cfg)
	var doneAt float64
	bytes := int64(6e9) // exactly 1 s at the 6 GB/s per-core cap
	s.Submit(&Task{
		Demand: Demand{}.Seq(HBM, bytes),
		OnDone: func(now float64) { doneAt = now },
	})
	s.Run()
	if !almostEqual(doneAt, 1.0, 1e-6) {
		t.Fatalf("doneAt = %g, want 1.0", doneAt)
	}
	if s.BytesConsumed(HBM) != bytes {
		t.Fatalf("bytes consumed = %d, want %d", s.BytesConsumed(HBM), bytes)
	}
	if s.BytesConsumed(DRAM) != 0 {
		t.Fatal("no DRAM traffic expected")
	}
}

func TestSimBandwidthContention(t *testing.T) {
	// 32 tasks streaming DRAM: per-core cap 6 GB/s x 32 = 192 GB/s
	// demand against an 80 GB/s pool, so each gets 2.5 GB/s.
	cfg := KNLConfig().WithCores(64)
	s := NewSim(cfg)
	var last float64
	for i := 0; i < 32; i++ {
		s.Submit(&Task{
			Demand: Demand{}.Seq(DRAM, 2_500_000_000),
			OnDone: func(now float64) { last = now },
		})
	}
	s.Run()
	if !almostEqual(last, 1.0, 1e-6) {
		t.Fatalf("completion = %g, want 1.0 under contention", last)
	}
}

func TestSimNoContentionBelowPool(t *testing.T) {
	// 4 tasks at per-core cap: 24 GB/s < 80 GB/s pool, each runs at cap.
	cfg := KNLConfig().WithCores(64)
	s := NewSim(cfg)
	var last float64
	for i := 0; i < 4; i++ {
		s.Submit(&Task{
			Demand: Demand{}.Seq(DRAM, 6_000_000_000),
			OnDone: func(now float64) { last = now },
		})
	}
	s.Run()
	if !almostEqual(last, 1.0, 1e-6) {
		t.Fatalf("completion = %g, want 1.0 uncontended", last)
	}
}

func TestSimRandomSlowOnHBM(t *testing.T) {
	// The paper's key observation: random access cannot exploit HBM.
	cfg := KNLConfig().WithCores(1)
	run := func(d Demand) float64 {
		s := NewSim(cfg)
		var doneAt float64
		s.Submit(&Task{Demand: d, OnDone: func(now float64) { doneAt = now }})
		s.Run()
		return doneAt
	}
	bytes := int64(1e8)
	seqHBM := run(Demand{}.Seq(HBM, bytes))
	randHBM := run(Demand{}.Rand(HBM, bytes, 1))
	randDRAM := run(Demand{}.Rand(DRAM, bytes, 1))
	if randHBM <= seqHBM {
		t.Fatal("random access must be slower than sequential on HBM")
	}
	if randHBM <= randDRAM {
		t.Fatal("random access must be slower on HBM than DRAM (latency)")
	}
}

func TestSimCoresLimitParallelism(t *testing.T) {
	cfg := KNLConfig().WithCores(2)
	s := NewSim(cfg)
	var finishes []float64
	for i := 0; i < 4; i++ {
		s.Submit(&Task{
			Demand: Demand{}.CPU(1_300_000),
			OnDone: func(now float64) { finishes = append(finishes, now) },
		})
	}
	s.Run()
	if len(finishes) != 4 {
		t.Fatalf("finished %d tasks", len(finishes))
	}
	// Two waves of two tasks: 1 ms and 2 ms.
	if !almostEqual(finishes[0], 1e-3, 1e-6) || !almostEqual(finishes[3], 2e-3, 1e-6) {
		t.Fatalf("finishes = %v", finishes)
	}
}

func TestSimPriorityDispatch(t *testing.T) {
	cfg := KNLConfig().WithCores(1)
	s := NewSim(cfg)
	var order []string
	mk := func(name string, pri int) *Task {
		return &Task{
			Name:     name,
			Priority: pri,
			Demand:   Demand{}.CPU(1000),
			Body:     func() { order = append(order, name) },
		}
	}
	// All four are queued before Run starts: strict priority order,
	// FIFO within a priority level.
	s.Submit(mk("first", 0))
	s.Submit(mk("low", 0))
	s.Submit(mk("urgent", 2))
	s.Submit(mk("high", 1))
	s.Run()
	want := []string{"urgent", "high", "first", "low"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimTimers(t *testing.T) {
	s := NewSim(KNLConfig())
	var fired []float64
	s.At(0.5, func(now float64) { fired = append(fired, now) })
	s.At(0.1, func(now float64) {
		fired = append(fired, now)
		s.After(0.05, func(now float64) { fired = append(fired, now) })
	})
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d timers", len(fired))
	}
	if !almostEqual(fired[0], 0.1, 1e-9) || !almostEqual(fired[1], 0.15, 1e-9) || !almostEqual(fired[2], 0.5, 1e-9) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimTimerInPast(t *testing.T) {
	s := NewSim(KNLConfig())
	var at float64 = -1
	s.At(0.2, func(now float64) {
		s.At(0.1, func(now float64) { at = now }) // in the past: clamp to now
	})
	s.Run()
	if !almostEqual(at, 0.2, 1e-9) {
		t.Fatalf("past timer fired at %g, want 0.2", at)
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(KNLConfig().WithCores(1))
	done := false
	s.Submit(&Task{
		Demand: Demand{}.CPU(13_000_000), // 10 ms
		OnDone: func(now float64) { done = true },
	})
	s.RunUntil(5e-3)
	if done {
		t.Fatal("task must not complete before deadline")
	}
	if !almostEqual(s.Now(), 5e-3, 1e-9) {
		t.Fatalf("clock = %g, want 5e-3", s.Now())
	}
	s.RunUntil(1.0)
	if !done {
		t.Fatal("task must complete after resume")
	}
}

func TestSimStop(t *testing.T) {
	s := NewSim(KNLConfig())
	count := 0
	var tick func(now float64)
	tick = func(now float64) {
		count++
		if count == 3 {
			s.Stop()
			return
		}
		s.After(0.01, tick)
	}
	s.After(0.01, tick)
	s.Run()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestSimChainedTasks(t *testing.T) {
	s := NewSim(KNLConfig().WithCores(4))
	var total int
	var spawn func(depth int) *Task
	spawn = func(depth int) *Task {
		return &Task{
			Demand: Demand{}.CPU(1000),
			OnDone: func(now float64) {
				total++
				if depth < 5 {
					s.Submit(spawn(depth + 1))
					s.Submit(spawn(depth + 1))
				}
			},
		}
	}
	s.Submit(spawn(1))
	s.Run()
	if total != 31 { // binary tree of depth 5
		t.Fatalf("tasks completed = %d, want 31", total)
	}
}

func TestSimEmptyDemandCompletes(t *testing.T) {
	s := NewSim(KNLConfig().WithCores(1))
	done := false
	s.Submit(&Task{OnDone: func(now float64) { done = true }})
	s.Run()
	if !done {
		t.Fatal("empty-demand task must complete")
	}
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %g for empty task", s.Now())
	}
}

func TestSimMultiPhaseTask(t *testing.T) {
	cfg := KNLConfig().WithCores(1)
	s := NewSim(cfg)
	var doneAt float64
	// 1 ms CPU + 1 s HBM stream at per-core cap.
	s.Submit(&Task{
		Demand: Demand{}.CPU(1_300_000).Seq(HBM, 6_000_000_000),
		OnDone: func(now float64) { doneAt = now },
	})
	s.Run()
	if !almostEqual(doneAt, 1.001, 1e-5) {
		t.Fatalf("doneAt = %g, want 1.001", doneAt)
	}
}

func TestSimPeakBW(t *testing.T) {
	cfg := KNLConfig().WithCores(64)
	s := NewSim(cfg)
	for i := 0; i < 64; i++ {
		s.Submit(&Task{Demand: Demand{}.Seq(HBM, 1e9)})
	}
	s.Run()
	// 64 cores x 6 GB/s = 384 demanded, capped at 375 GB/s pool.
	if !almostEqual(s.PeakBW(HBM), 375e9, 1e-6) {
		t.Fatalf("peak HBM bw = %g, want 375e9", s.PeakBW(HBM))
	}
}

func TestSimStatsAccounting(t *testing.T) {
	s := NewSim(KNLConfig().WithCores(2))
	s.Submit(&Task{Demand: Demand{}.Seq(HBM, 1000).Rand(DRAM, 500, 2)})
	s.Run()
	st := s.Stats()
	if st.SeqBytes[HBM] != 1000 {
		t.Errorf("seq HBM bytes = %d", st.SeqBytes[HBM])
	}
	if st.RandBytes[DRAM] != 500 {
		t.Errorf("rand DRAM bytes = %d", st.RandBytes[DRAM])
	}
	if st.BytesByTier[HBM] != 1000 || st.BytesByTier[DRAM] != 500 {
		t.Errorf("bytes by tier = %v", st.BytesByTier)
	}
}

func TestSimIdle(t *testing.T) {
	s := NewSim(KNLConfig())
	if !s.Idle() {
		t.Fatal("new sim must be idle")
	}
	s.Submit(&Task{Demand: Demand{}.CPU(10)})
	if s.Idle() {
		t.Fatal("sim with ready task is not idle")
	}
	s.Run()
	if !s.Idle() {
		t.Fatal("drained sim must be idle")
	}
}

func TestSimIntervalBytes(t *testing.T) {
	s := NewSim(KNLConfig().WithCores(1))
	s.Submit(&Task{Demand: Demand{}.Seq(DRAM, 1e6)})
	s.Run()
	got := s.IntervalBytes()
	if !almostEqual(got[DRAM], 1e6, 1e-3) {
		t.Fatalf("interval DRAM bytes = %g", got[DRAM])
	}
	got = s.IntervalBytes()
	if got[DRAM] != 0 {
		t.Fatal("interval bytes must reset after read")
	}
}

func TestSortDemandScaling(t *testing.T) {
	small := SortDemand(HBM, 1<<10)
	large := SortDemand(HBM, 1<<20)
	sb := small.TotalBytes()[HBM]
	lb := large.TotalBytes()[HBM]
	// Bytes scale linearly with input (fixed effective pass count keeps
	// demands invariant under specimen scaling).
	if lb != sb*(1<<10) {
		t.Fatalf("sort bytes must scale linearly: %d vs %d", lb, sb*(1<<10))
	}
	// Multiple passes amplify traffic well beyond one read+write.
	if sb < int64(1<<10)*PairBytes*4 {
		t.Fatal("sort demand must include multi-pass amplification")
	}
	if SortDemand(HBM, 0).Empty() == false {
		t.Fatal("zero-size sort must be empty")
	}
}

func TestDemandModelAccessPatterns(t *testing.T) {
	// Paper Table 2: grouping primitives are sequential; reduction and
	// maintenance primitives that dereference pointers are random.
	assertHasPattern := func(name string, d Demand, tier Tier, pat Pattern) {
		t.Helper()
		for _, p := range d.Phases {
			if !p.isCPU() && p.Tier == tier && p.Pattern == pat {
				return
			}
		}
		t.Errorf("%s: no %v phase on %v", name, pat, tier)
	}
	assertNoPattern := func(name string, d Demand, pat Pattern) {
		t.Helper()
		for _, p := range d.Phases {
			if !p.isCPU() && p.Pattern == pat {
				t.Errorf("%s: unexpected %v phase", name, pat)
			}
		}
	}
	assertNoPattern("Sort", SortDemand(HBM, 1000), Random)
	assertNoPattern("Merge", MergeDemand(HBM, 1000), Random)
	assertNoPattern("Join", JoinDemand(HBM, 1000, 10, 24), Random)
	assertNoPattern("Extract", ExtractDemand(DRAM, HBM, 1000, 8), Random)
	assertHasPattern("Materialize", MaterializeDemand(HBM, 1000, 24), DRAM, Random)
	assertHasPattern("KeySwap", KeySwapDemand(HBM, 1000), DRAM, Random)
	assertHasPattern("ReduceKeyed", ReduceKeyedDemand(HBM, 1000), DRAM, Random)
	assertHasPattern("HashGroup", HashGroupDemand(DRAM, 1000), DRAM, Random)
}

func TestSubmitNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSim(KNLConfig()).Submit(nil)
}

func TestAtNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSim(KNLConfig()).At(1, nil)
}

func TestNewSimInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := KNLConfig()
	bad.Cores = -1
	NewSim(bad)
}
