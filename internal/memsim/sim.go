package memsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Task is a unit of work scheduled on a virtual core. Its Body runs the
// real computation (on real Go data) when the task is dispatched; its
// Demand determines how long the task occupies the virtual core; OnDone
// fires when the virtual completion time is reached and may submit
// successor tasks.
type Task struct {
	Name     string
	Priority int // higher dispatches first
	Demand   Demand
	Body     func()
	OnDone   func(now float64)

	seq       uint64
	phase     int
	remaining float64 // ops or bytes left in the current phase
	rate      float64 // current progress rate of the current phase
	startedAt float64
}

// readyQueue orders tasks by (priority desc, seq asc).
type readyQueue []*Task

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x interface{}) { *q = append(*q, x.(*Task)) }
func (q *readyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// timer is a scheduled callback at an absolute virtual time.
type timer struct {
	at  float64
	seq uint64
	fn  func(now float64)
}

type timerQueue []timer

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *timerQueue) Push(x interface{}) { *q = append(*q, x.(timer)) }
func (q *timerQueue) Pop() interface{} {
	old := *q
	n := len(old)
	t := old[n-1]
	*q = old[:n-1]
	return t
}

// Stats accumulates simulator-wide counters.
type Stats struct {
	TasksRun     int64
	BytesByTier  [numTiers]int64
	SeqBytes     [numTiers]int64
	RandBytes    [numTiers]int64
	CPUOps       int64
	CoreBusyTime float64 // core-seconds of occupied virtual cores
}

// Sim is the discrete-event simulator: a set of virtual cores executing
// tasks whose memory phases share per-tier bandwidth pools under
// water-filling processor sharing.
type Sim struct {
	cfg     Config
	now     float64
	seq     uint64
	ready   readyQueue
	timers  timerQueue
	running []*Task
	free    int
	stats   Stats

	// peak bandwidth observed per tier (bytes/s, instantaneous).
	peakBW [numTiers]float64
	// bwIntegral accumulates rate*dt per tier for interval averaging.
	bwIntegral [numTiers]float64

	stopped bool
}

// NewSim creates a simulator for the given machine configuration.
func NewSim(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Sim{cfg: cfg, free: cfg.Cores}
}

// Config returns the machine configuration.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Stats returns a copy of the accumulated counters.
func (s *Sim) Stats() Stats { return s.stats }

// PeakBW returns the highest instantaneous bandwidth seen on tier t.
func (s *Sim) PeakBW(t Tier) float64 { return s.peakBW[t] }

// BytesConsumed returns cumulative traffic on tier t.
func (s *Sim) BytesConsumed(t Tier) int64 { return s.stats.BytesByTier[t] }

// Submit enqueues a task for execution. Safe to call from Body, OnDone
// and timer callbacks.
func (s *Sim) Submit(t *Task) {
	if t == nil {
		panic("memsim: Submit(nil)")
	}
	s.seq++
	t.seq = s.seq
	heap.Push(&s.ready, t)
}

// At schedules fn to run at absolute virtual time at (clamped to now).
func (s *Sim) At(at float64, fn func(now float64)) {
	if fn == nil {
		panic("memsim: At(nil)")
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.timers, timer{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d virtual seconds from now.
func (s *Sim) After(d float64, fn func(now float64)) { s.At(s.now+d, fn) }

// Stop makes Run return after the current event is processed.
func (s *Sim) Stop() { s.stopped = true }

// Idle reports whether no tasks are ready, running, or timed.
func (s *Sim) Idle() bool {
	return len(s.ready) == 0 && len(s.running) == 0 && len(s.timers) == 0
}

// Run processes events until the simulator is idle or stopped.
func (s *Sim) Run() {
	s.RunUntil(math.Inf(1))
}

// RunUntil processes events until virtual time reaches deadline, the
// simulator goes idle, or Stop is called. The clock never advances past
// deadline.
func (s *Sim) RunUntil(deadline float64) {
	s.stopped = false
	stalls := 0
	for !s.stopped {
		s.dispatch()
		if len(s.running) == 0 && len(s.timers) == 0 {
			return // idle (ready non-empty only if zero cores, impossible)
		}

		s.recomputeRates()

		// Earliest next event: a running-task phase completion or a timer.
		next := math.Inf(1)
		for _, t := range s.running {
			if t.rate <= 0 {
				continue
			}
			if fin := s.now + t.remaining/t.rate; fin < next {
				next = fin
			}
		}
		if len(s.timers) > 0 && s.timers[0].at < next {
			next = s.timers[0].at
		}
		if next > deadline {
			s.advanceTo(deadline)
			return
		}
		if math.IsInf(next, 1) {
			return
		}
		// Stall detector: a bounded number of zero-width events (task
		// completions, timer cascades) at one instant is normal; an
		// unbounded run means an accounting bug and must fail loudly
		// rather than spin forever.
		if next == s.now {
			stalls++
			if stalls > 1_000_000 {
				panic(fmt.Sprintf("memsim: event loop stalled at t=%g\n%s", s.now, s.DebugRunning()))
			}
		} else {
			stalls = 0
		}
		s.advanceTo(next)
		s.completePhases()
		s.fireTimers()
	}
}

// dispatch moves ready tasks onto free cores, executing bodies.
func (s *Sim) dispatch() {
	for s.free > 0 && len(s.ready) > 0 {
		t := heap.Pop(&s.ready).(*Task)
		s.free--
		t.phase = 0
		t.startedAt = s.now
		t.remaining = s.phaseSize(t)
		if t.Body != nil {
			t.Body()
		}
		s.stats.TasksRun++
		s.running = append(s.running, t)
		// An empty demand completes immediately at the same timestamp.
	}
}

// phaseSize returns the size (ops or bytes) of the task's current phase,
// skipping empty phases; returns 0 when the task has no work left.
func (t *Task) currentPhase() (Phase, bool) {
	for t.phase < len(t.Demand.Phases) {
		p := t.Demand.Phases[t.phase]
		if p.CPUOps > 0 || p.Bytes > 0 {
			return p, true
		}
		t.phase++
	}
	return Phase{}, false
}

func (s *Sim) phaseSize(t *Task) float64 {
	p, ok := t.currentPhase()
	if !ok {
		return 0
	}
	if p.isCPU() {
		return float64(p.CPUOps)
	}
	return float64(p.Bytes)
}

// recomputeRates assigns progress rates to all running tasks: CPU phases
// run at the core's instruction rate; memory phases share each tier's
// bandwidth pool by water-filling subject to per-core caps.
func (s *Sim) recomputeRates() {
	type memPhase struct {
		t   *Task
		cap float64
	}
	var pools [numTiers][2][]memPhase // [tier][pattern]

	for _, t := range s.running {
		p, ok := t.currentPhase()
		if !ok {
			t.rate = math.Inf(1) // completes instantly
			continue
		}
		if p.isCPU() {
			hz := s.cfg.ClockHz * s.cfg.IPC
			if p.Vector {
				hz = s.cfg.ClockHz * s.cfg.VectorIPC
			}
			t.rate = hz
			continue
		}
		cap := s.cfg.Tiers[p.Tier].PerCoreSeq
		if p.Pattern == Random {
			cap = s.cfg.PerCoreRandomBW(p.Tier, p.MLP)
		}
		pools[p.Tier][p.Pattern] = append(pools[p.Tier][p.Pattern], memPhase{t, cap})
	}

	for tier := Tier(0); tier < numTiers; tier++ {
		for pat := 0; pat < 2; pat++ {
			phases := pools[tier][pat]
			if len(phases) == 0 {
				continue
			}
			total := s.cfg.Tiers[tier].Bandwidth
			if Pattern(pat) == Random {
				total = s.cfg.Tiers[tier].RandomBW
			}
			caps := make([]float64, len(phases))
			for i, mp := range phases {
				caps[i] = mp.cap
			}
			rates := waterFill(caps, total)
			for i, mp := range phases {
				mp.t.rate = rates[i]
			}
		}
	}
}

// waterFill distributes total capacity among consumers with individual
// caps: consumers below the fair share keep their cap; the remainder is
// split evenly among the rest.
func waterFill(caps []float64, total float64) []float64 {
	n := len(caps)
	rates := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return caps[idx[a]] < caps[idx[b]] })
	remaining := total
	left := n
	for _, i := range idx {
		share := remaining / float64(left)
		r := math.Min(caps[i], share)
		rates[i] = r
		remaining -= r
		left--
	}
	return rates
}

// advanceTo moves the clock to t, draining phase progress and recording
// bandwidth statistics.
func (s *Sim) advanceTo(t float64) {
	dt := t - s.now
	if dt < 0 {
		panic(fmt.Sprintf("memsim: clock moving backwards: %g -> %g", s.now, t))
	}
	if dt == 0 {
		s.now = t
		s.observeBW(0)
		return
	}
	for _, task := range s.running {
		if math.IsInf(task.rate, 1) {
			task.remaining = 0
			continue
		}
		progress := task.rate * dt
		if p, ok := task.currentPhase(); ok && !p.isCPU() {
			bytes := progress
			if bytes > task.remaining {
				bytes = task.remaining
			}
			b := int64(bytes)
			s.stats.BytesByTier[p.Tier] += b
			if p.Pattern == Sequential {
				s.stats.SeqBytes[p.Tier] += b
			} else {
				s.stats.RandBytes[p.Tier] += b
			}
			s.bwIntegral[p.Tier] += bytes
		} else if ok && p.isCPU() {
			ops := progress
			if ops > task.remaining {
				ops = task.remaining
			}
			s.stats.CPUOps += int64(ops)
		}
		task.remaining -= progress
		// Demands are integral bytes/ops: residues below half a unit are
		// floating-point noise and would otherwise stall the clock (a
		// residual finish time can round to now+0, never advancing).
		if task.remaining < 0.5 {
			task.remaining = 0
		}
	}
	s.stats.CoreBusyTime += float64(len(s.running)) * dt
	s.observeBW(dt)
	s.now = t
}

// observeBW records instantaneous per-tier bandwidth for peak tracking.
func (s *Sim) observeBW(dt float64) {
	var cur [numTiers]float64
	for _, task := range s.running {
		if p, ok := task.currentPhase(); ok && !p.isCPU() && !math.IsInf(task.rate, 1) {
			cur[p.Tier] += task.rate
		}
	}
	for t := Tier(0); t < numTiers; t++ {
		if cur[t] > s.peakBW[t] {
			s.peakBW[t] = cur[t]
		}
	}
}

// IntervalBytes returns and resets the per-tier byte integral, used by
// the resource monitor to compute average bandwidth over its sampling
// interval.
func (s *Sim) IntervalBytes() [numTiers]float64 {
	out := s.bwIntegral
	s.bwIntegral = [numTiers]float64{}
	return out
}

// CurrentBW returns the instantaneous bandwidth demand on tier t.
func (s *Sim) CurrentBW(t Tier) float64 {
	s.recomputeRates()
	var cur float64
	for _, task := range s.running {
		if p, ok := task.currentPhase(); ok && !p.isCPU() && p.Tier == t && !math.IsInf(task.rate, 1) {
			cur += task.rate
		}
	}
	return cur
}

// completePhases advances finished phases and retires finished tasks.
func (s *Sim) completePhases() {
	kept := s.running[:0]
	var done []*Task
	for _, t := range s.running {
		for t.remaining == 0 {
			if _, ok := t.currentPhase(); ok {
				t.phase++
			}
			if _, ok := t.currentPhase(); !ok {
				break
			}
			t.remaining = s.phaseSize(t)
			if t.remaining > 0 {
				break
			}
		}
		if _, ok := t.currentPhase(); !ok && t.remaining == 0 {
			done = append(done, t)
			continue
		}
		kept = append(kept, t)
	}
	s.running = kept
	for _, t := range done {
		s.free++
		if t.OnDone != nil {
			t.OnDone(s.now)
		}
	}
}

// fireTimers runs all timers due at or before the current time.
func (s *Sim) fireTimers() {
	for len(s.timers) > 0 && s.timers[0].at <= s.now {
		tm := heap.Pop(&s.timers).(timer)
		tm.fn(s.now)
	}
}

// RunningTasks returns the number of tasks currently occupying cores.
func (s *Sim) RunningTasks() int { return len(s.running) }

// ReadyTasks returns the number of tasks waiting for a core.
func (s *Sim) ReadyTasks() int { return len(s.ready) }

// FreeCores returns the number of unoccupied virtual cores.
func (s *Sim) FreeCores() int { return s.free }

// DebugRunning renders the running set for diagnostics.
func (s *Sim) DebugRunning() string {
	out := ""
	for _, t := range s.running {
		p, ok := t.currentPhase()
		out += fmt.Sprintf("task=%q phase=%d/%d cur=%v ok=%v remaining=%g rate=%g\n",
			t.Name, t.phase, len(t.Demand.Phases), p, ok, t.remaining, t.rate)
	}
	return out
}
