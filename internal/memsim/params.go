// Package memsim models a hybrid high-bandwidth-memory machine.
//
// The paper evaluates on an Intel Knights Landing whose HBM and DRAM tiers
// differ in capacity, bandwidth and latency. Go cannot place data in
// physical tiers, so memsim substitutes a discrete-event simulator: engine
// tasks run their real computation, but time is virtual and advances under
// a processor-sharing bandwidth model. All calibration constants live in
// this file so the hardware substitution is auditable in one place.
package memsim

import "fmt"

// Tier identifies one memory tier of the hybrid machine.
type Tier int

const (
	// HBM is the 3D-stacked high-bandwidth tier: small capacity, very
	// high sequential bandwidth, slightly worse latency than DRAM.
	HBM Tier = iota
	// DRAM is the commodity DDR4 tier: large capacity, limited bandwidth.
	DRAM
	// Spill is the cold tier: an mmap'd file holding evicted sealed
	// window runs. It is not memory the machine model schedules traffic
	// on — capacity comes from the attached spill file, not TierParams —
	// but it indexes the same per-tier arrays (pool accounting, window
	// state, metrics) so the degradation ladder HBM → DRAM → Spill reads
	// uniformly everywhere.
	Spill
	numTiers
)

// NumTiers is the number of memory tiers, exported for per-tier arrays
// outside this package (mempool accounting, runtime window-state
// gauges, metrics exposition).
const NumTiers = int(numTiers)

// MemTiers is the number of real memory tiers (HBM, DRAM) — the tiers
// the bandwidth model schedules and admission control watches. Spill is
// excluded: a full spill file degrades service but must not shed it.
const MemTiers = int(Spill)

// String returns the conventional tier name.
func (t Tier) String() string {
	switch t {
	case HBM:
		return "HBM"
	case DRAM:
		return "DRAM"
	case Spill:
		return "Spill"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Pattern classifies how a demand touches memory. Sequential streams
// enjoy per-core streaming bandwidth; random accesses are latency-bound
// and capped by cacheline-size transfers times memory-level parallelism.
type Pattern int

const (
	// Sequential is a streaming scan (sort, merge, extract, scan).
	Sequential Pattern = iota
	// Random is pointer-chasing or hashed access (probe, dereference).
	Random
)

func (p Pattern) String() string {
	if p == Sequential {
		return "seq"
	}
	return "rand"
}

// TierParams describes one tier of a machine.
type TierParams struct {
	Capacity   int64   // bytes
	Bandwidth  float64 // bytes/second, aggregate sequential ceiling
	RandomBW   float64 // bytes/second, aggregate ceiling for random traffic
	LatencyNS  float64 // load-to-use latency in nanoseconds
	PerCoreSeq float64 // bytes/second one core can stream
}

// Config describes a whole machine: cores, tiers and NICs.
type Config struct {
	Name      string
	Cores     int
	ClockHz   float64 // per-core frequency
	IPC       float64 // sustained scalar instructions per cycle
	VectorIPC float64 // sustained ops/cycle for vectorized kernels
	CacheLine int64   // bytes per random-access transfer

	Tiers [numTiers]TierParams

	// RDMABW and EthBW are ingress NIC bandwidths in bytes/second.
	RDMABW float64
	EthBW  float64
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
)

// GB is one gibibyte in bytes, exported for configuration literals.
const GB = int64(1) << 30

// KNLConfig returns the paper's Table 3 Knights Landing machine:
// 64 cores @ 1.3 GHz, 16 GB HBM (375 GB/s, 172 ns), 96 GB DDR4
// (80 GB/s, 143 ns), 40 Gb/s Infiniband and 10 GbE NICs.
func KNLConfig() Config {
	return Config{
		Name:      "KNL",
		Cores:     64,
		ClockHz:   1.3e9,
		IPC:       1.0,
		VectorIPC: 4.0,
		CacheLine: 64,
		Tiers: [numTiers]TierParams{
			HBM: {
				Capacity:   16 * gib,
				Bandwidth:  375e9,
				RandomBW:   110e9,
				LatencyNS:  172,
				PerCoreSeq: 6.0e9,
			},
			DRAM: {
				Capacity:   96 * gib,
				Bandwidth:  80e9,
				RandomBW:   65e9,
				LatencyNS:  143,
				PerCoreSeq: 6.0e9,
			},
			Spill: spillTierParams(),
		},
		RDMABW: 5.0e9,  // 40 Gb/s
		EthBW:  1.25e9, // 10 Gb/s
	}
}

// X56Config returns the paper's Table 3 Xeon E7-4830v4 comparison box:
// 56 cores @ 2.0 GHz, 256 GB DDR4 (87 GB/s, 131 ns), no HBM. The HBM
// tier is configured with zero capacity so allocations must use DRAM.
func X56Config() Config {
	return Config{
		Name:      "X56",
		Cores:     56,
		ClockHz:   2.0e9,
		IPC:       2.0,
		VectorIPC: 4.0,
		CacheLine: 64,
		Tiers: [numTiers]TierParams{
			HBM: {
				Capacity:   0,
				Bandwidth:  1, // never used; avoid division by zero
				RandomBW:   1,
				LatencyNS:  131,
				PerCoreSeq: 1,
			},
			DRAM: {
				Capacity:   256 * gib,
				Bandwidth:  87e9,
				RandomBW:   70e9,
				LatencyNS:  131,
				PerCoreSeq: 12.0e9,
			},
			Spill: spillTierParams(),
		},
		RDMABW: 0,
		EthBW:  1.4e9, // "slightly faster" X540 per Fig 7 caption
	}
}

// spillTierParams models the cold spill tier as an NVMe-class device:
// sequential-friendly, latency three orders of magnitude above memory.
// Capacity is zero because the real limit is the attached spill file,
// not the machine model; the bandwidth figures exist so demand
// accounting against the tier stays well defined.
func spillTierParams() TierParams {
	return TierParams{
		Capacity:   0,
		Bandwidth:  2.4e9,
		RandomBW:   0.6e9,
		LatencyNS:  90_000,
		PerCoreSeq: 2.4e9,
	}
}

// WithCores returns a copy of the config restricted to n cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	return c
}

// Tier returns the parameters of tier t.
func (c Config) Tier(t Tier) TierParams { return c.Tiers[t] }

// PerCoreRandomBW returns the bandwidth one core can extract from tier t
// with random accesses at the given memory-level parallelism: one
// cacheline per latency, times mlp outstanding requests.
func (c Config) PerCoreRandomBW(t Tier, mlp int) float64 {
	if mlp < 1 {
		mlp = 1
	}
	lat := c.Tiers[t].LatencyNS * 1e-9
	return float64(c.CacheLine) * float64(mlp) / lat
}

// CPUSeconds converts a scalar-op count into seconds on one core.
func (c Config) CPUSeconds(ops int64) float64 {
	return float64(ops) / (c.ClockHz * c.IPC)
}

// VectorSeconds converts a vector-op count into seconds on one core,
// standing in for the AVX-512 kernels of the paper.
func (c Config) VectorSeconds(ops int64) float64 {
	return float64(ops) / (c.ClockHz * c.VectorIPC)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("memsim: config %q: cores must be positive, got %d", c.Name, c.Cores)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("memsim: config %q: clock must be positive", c.Name)
	}
	if c.CacheLine <= 0 {
		return fmt.Errorf("memsim: config %q: cache line must be positive", c.Name)
	}
	for t := Tier(0); t < numTiers; t++ {
		p := c.Tiers[t]
		if p.Capacity < 0 {
			return fmt.Errorf("memsim: config %q: %v capacity negative", c.Name, t)
		}
		if t == Spill {
			// The spill tier is file-backed: its capacity comes from the
			// attached spill file and no simulated traffic is scheduled on
			// it, so zero-value params (configs written before the tier
			// existed, test machines) stay valid.
			continue
		}
		if p.Bandwidth <= 0 || p.RandomBW <= 0 || p.PerCoreSeq <= 0 {
			return fmt.Errorf("memsim: config %q: %v bandwidth must be positive", c.Name, t)
		}
		if p.LatencyNS <= 0 {
			return fmt.Errorf("memsim: config %q: %v latency must be positive", c.Name, t)
		}
	}
	return nil
}
