package memsim

import "fmt"

// Phase is one stage of a task's resource demand. A task executes its
// phases in order: a CPU phase spins one virtual core; a memory phase
// streams or randomly touches bytes on one tier, sharing that tier's
// bandwidth with every other concurrently active memory phase.
type Phase struct {
	// CPUOps is the scalar-equivalent operation count for a pure CPU
	// phase. Exactly one of CPUOps and Bytes should be nonzero.
	CPUOps int64
	// Vector marks the CPU phase as vectorizable (AVX-512 in the paper).
	Vector bool

	// Bytes is the memory traffic of a memory phase.
	Bytes int64
	// Tier is the tier the memory phase touches.
	Tier Tier
	// Pattern is Sequential or Random.
	Pattern Pattern
	// MLP is the memory-level parallelism of a Random phase: the number
	// of independent outstanding misses one core sustains. Ignored for
	// Sequential. Zero means 1 (a fully dependent pointer chase).
	MLP int
}

func (p Phase) isCPU() bool { return p.CPUOps > 0 }

// String renders the phase for debugging.
func (p Phase) String() string {
	if p.isCPU() {
		kind := "cpu"
		if p.Vector {
			kind = "vec"
		}
		return fmt.Sprintf("%s(%d ops)", kind, p.CPUOps)
	}
	return fmt.Sprintf("mem(%d B %v %v mlp=%d)", p.Bytes, p.Tier, p.Pattern, p.MLP)
}

// Demand is an ordered list of phases.
type Demand struct {
	Phases []Phase
}

// CPU appends a scalar compute phase of n operations.
func (d Demand) CPU(ops int64) Demand {
	if ops > 0 {
		d.Phases = append(d.Phases, Phase{CPUOps: ops})
	}
	return d
}

// Vec appends a vectorized compute phase of n operations.
func (d Demand) Vec(ops int64) Demand {
	if ops > 0 {
		d.Phases = append(d.Phases, Phase{CPUOps: ops, Vector: true})
	}
	return d
}

// Seq appends a sequential memory phase.
func (d Demand) Seq(t Tier, bytes int64) Demand {
	if bytes > 0 {
		d.Phases = append(d.Phases, Phase{Bytes: bytes, Tier: t, Pattern: Sequential})
	}
	return d
}

// Rand appends a random memory phase with the given MLP.
func (d Demand) Rand(t Tier, bytes int64, mlp int) Demand {
	if bytes > 0 {
		if mlp < 1 {
			mlp = 1
		}
		d.Phases = append(d.Phases, Phase{Bytes: bytes, Tier: t, Pattern: Random, MLP: mlp})
	}
	return d
}

// TotalBytes reports the memory traffic of the demand per tier.
func (d Demand) TotalBytes() [numTiers]int64 {
	var out [numTiers]int64
	for _, p := range d.Phases {
		if !p.isCPU() {
			out[p.Tier] += p.Bytes
		}
	}
	return out
}

// TotalCPUOps reports the compute work of the demand.
func (d Demand) TotalCPUOps() int64 {
	var ops int64
	for _, p := range d.Phases {
		if p.isCPU() {
			ops += p.CPUOps
		}
	}
	return ops
}

// Empty reports whether the demand has no phases.
func (d Demand) Empty() bool { return len(d.Phases) == 0 }

// --- Demand models for the engine's kernels. -------------------------------
//
// These encode, per primitive, how many bytes move and how much compute
// runs per element. They are deliberately simple; the calibration targets
// are the curve shapes of the paper's Figures 2 and 7-10.

const (
	// PairBytes is the size of one KPA element: 64-bit key + 64-bit ptr.
	PairBytes = 16

	// sortCyclesPerPair is compute per pair per pass of the merge sort
	// (vector ops; stands in for the AVX-512 bitonic kernel plus the
	// engine's per-element bookkeeping).
	sortCyclesPerPair = 20.0
	// hashCyclesPerRec is compute per record for hash insert/probe.
	hashCyclesPerRec = 250.0
	// hashBytesRandom is random traffic per hashed record: bucket
	// cachelines touched on insert and probe, including collision
	// chains at realistic load factors.
	hashBytesRandom = 256
	// hashBytesSeq is the sequential partition-copy traffic per record
	// (read input, write partition) that precedes table insertion.
	hashBytesSeq = 96
	// hashMLP reflects limited overlap of dependent probes.
	hashMLP = 2

	// Per-element engine overheads (scalar cycles per record) for the
	// maintenance and reduction primitives: record handling, bounds
	// checks, task bookkeeping. These dominate real stream engines'
	// per-record budgets and set the compute-bound throughput plateaus
	// of Figures 7-9.
	extractCycles     = 300
	keySwapCycles     = 250
	materializeCycles = 300
	reduceCycles      = 450
	partitionCycles   = 250
	selectCycles      = 200
)

// PartitionCycles and SelectCycles expose the per-element scan costs
// for demand builders outside this package.
const (
	PartitionCycles = partitionCycles
	SelectCycles    = selectCycles
)

// sortEffectivePasses is the effective number of full-data passes a
// chunked merge sort makes. The true count is log2(n/block); over the
// KPA sizes the engine sorts (10^5..10^7 pairs) it ranges 5..12, and a
// fixed effective value keeps demands invariant under specimen scaling
// (which shrinks the real n while representing the same virtual KPA).
const sortEffectivePasses = 8

// sortBytesPerPairPerPass is the traffic one pass moves per pair:
// read + write + scratch-buffer traffic.
const sortBytesPerPairPerPass = 6 * 2 * PairBytes

// SortDemand models sorting n pairs resident on tier t: every pass
// streams the pairs (read+write+scratch) and runs the compare/exchange
// kernel.
func SortDemand(t Tier, n int) Demand {
	if n <= 0 {
		return Demand{}
	}
	bytes := int64(n) * sortBytesPerPairPerPass * sortEffectivePasses
	ops := int64(float64(n) * sortCyclesPerPair * sortEffectivePasses)
	return Demand{}.Vec(ops).Seq(t, bytes)
}

// Radix run formation (algo.RadixSortPairs): LSD over the 64-bit key
// with 8-bit digits. Each pass streams the pairs once (read + scatter
// write; the 256 scatter streams stay effectively sequential on HBM,
// the observation driving radix partitioning in the HBM-analytics
// literature) plus amortized histogram traffic, and the scatter/gather
// kernel vectorizes (AVX-512 scatter on KNL). Unlike merge sort's
// log2(n/block) passes, the pass count is fixed, which is what makes
// run formation bandwidth-proportional.
const (
	radixEffectivePasses = 8
	// Per pass and pair: stream read (16 B) + scatter write, which on a
	// write-allocate cache costs allocate + writeback (32 B), + the
	// histogram pre-pass share (16 B).
	radixBytesPerPairPerPass = 64
	radixCyclesPerPair       = 6.0
)

// RadixSortDemand models first-level run formation over n pairs on
// tier t with the LSD radix kernel: a fixed number of streaming
// scatter passes instead of merge sort's data-dependent pass count.
func RadixSortDemand(t Tier, n int) Demand {
	if n <= 0 {
		return Demand{}
	}
	bytes := int64(n) * radixBytesPerPairPerPass * radixEffectivePasses
	ops := int64(float64(n) * radixCyclesPerPair * radixEffectivePasses)
	return Demand{}.Vec(ops).Seq(t, bytes)
}

// PaneDemand models the per-window share of pane-based sliding
// aggregation with the radix run-formation kernel: each record is
// scattered into exactly one non-overlapping pane and the pane run is
// radix-sorted once, then *shared* (by reference) across the `share`
// overlapping windows covering the pane. One window is therefore
// charged 1/share of a single scatter+sort over its n pairs, so the
// total across all windows equals one extraction and one sort — where
// the direct (unshared) path pays RadixSortDemand per window, i.e.
// share× the staging, sort and state traffic. Compare only against
// RadixSortDemand (experiments.FigPanes does): the engine's operator
// path instead scales its own SortDemand model by 1/share, so sharing
// is never conflated with a kernel change.
func PaneDemand(t Tier, n, share int) Demand {
	if share < 1 {
		share = 1
	}
	return RadixSortDemand(t, (n+share-1)/share)
}

// MergeDemand models merging two sorted runs totalling n pairs on tier t:
// one streaming pass reading both inputs and writing the output.
func MergeDemand(t Tier, n int) Demand {
	if n <= 0 {
		return Demand{}
	}
	bytes := int64(n) * PairBytes * 2
	ops := int64(float64(n) * sortCyclesPerPair)
	return Demand{}.Vec(ops).Seq(t, bytes)
}

// Fused window close (kpa.MergeReduceRange): the range-partitioned
// k-way merge folds keyed reduction into the loser-tree visitor, so
// closing a window costs one streaming read of the runs from the KPA
// tier plus the random value-column gather from DRAM — no intermediate
// KPA is written and no separate reduce pass re-streams the data. The
// pairwise baseline instead pays ceil(log2(k)) MergeDemand passes (each
// materializing a full copy) followed by ReduceKeyedDemand.
const (
	// mergeReduceCycles is the scalar per-pair cost of the fused
	// visitor: the pointer dereference through the per-run bundle cache
	// and the aggregator fold. It sits below reduceCycles because the
	// fused pass hoists the per-record bounds checks, task setup and
	// output staging that the separate reduce sweep pays per element.
	mergeReduceCycles = 250
	// loserTreeCyclesPerPairPerLevel is the vector-equivalent replay
	// cost of one loser-tree level: one comparison plus a node store,
	// touching tree nodes rather than run data.
	loserTreeCyclesPerPairPerLevel = 4.0
)

// MergeReduceDemand models the fused merge-reduce over n pairs spread
// across fanIn sorted runs on tier t: one sequential read of the pairs,
// ceil(log2(fanIn)) loser-tree levels of compute per pair, the fold,
// and the value gather from DRAM.
func MergeReduceDemand(t Tier, n, fanIn int) Demand {
	if n <= 0 {
		return Demand{}
	}
	levels := 0
	for 1<<levels < fanIn {
		levels++
	}
	return Demand{}.
		CPU(int64(n)*mergeReduceCycles).
		Vec(int64(float64(n)*loserTreeCyclesPerPairPerLevel*float64(levels))).
		Seq(t, int64(n)*PairBytes).
		Rand(DRAM, int64(n)*8, 4)
}

// JoinDemand models the single-pass scan joining two sorted KPAs with a
// total of n pairs, emitting m output records of recBytes each to DRAM.
func JoinDemand(t Tier, n, m int, recBytes int64) Demand {
	d := Demand{}.Vec(int64(float64(n)*sortCyclesPerPair)).
		Seq(t, int64(n)*PairBytes)
	if m > 0 {
		d = d.Seq(DRAM, int64(m)*recBytes)
	}
	return d
}

// HashGroupDemand models the DRAM-era baseline: partition n records
// sequentially then insert into an open-addressing table with random
// probes, all on tier t.
func HashGroupDemand(t Tier, n int) Demand {
	return Demand{}.
		CPU(int64(float64(n)*hashCyclesPerRec)).
		Seq(t, int64(n)*hashBytesSeq).
		Rand(t, int64(n)*hashBytesRandom, hashMLP)
}

// ExtractDemand models building a KPA from a record bundle: stream the
// key column from the bundle's tier and write pairs to the KPA's tier.
func ExtractDemand(from, to Tier, n int, colBytes int64) Demand {
	return Demand{}.
		CPU(int64(n)*extractCycles).
		Seq(from, int64(n)*colBytes).
		Seq(to, int64(n)*PairBytes)
}

// MaterializeDemand models emitting full records through KPA pointers:
// stream the KPA, randomly load records, stream the output bundle.
func MaterializeDemand(kpaTier Tier, n int, recBytes int64) Demand {
	return Demand{}.
		CPU(int64(n)*materializeCycles).
		Seq(kpaTier, int64(n)*PairBytes).
		Rand(DRAM, int64(n)*recBytes, 4).
		Seq(DRAM, int64(n)*recBytes)
}

// KeySwapDemand models replacing resident keys with another column:
// stream the KPA, randomly gather the nonresident column from DRAM.
func KeySwapDemand(kpaTier Tier, n int) Demand {
	return Demand{}.
		CPU(int64(n)*keySwapCycles).
		Seq(kpaTier, int64(n)*PairBytes).
		Rand(DRAM, int64(n)*8, 4)
}

// ScanDemand models a simple sequential pass over bytes on tier t with
// opsPerByte compute.
func ScanDemand(t Tier, bytes int64, ops int64) Demand {
	return Demand{}.CPU(ops).Seq(t, bytes)
}

// ReduceKeyedDemand models per-key aggregation over a sorted KPA of n
// pairs: stream the KPA, gather value columns randomly from DRAM.
func ReduceKeyedDemand(kpaTier Tier, n int) Demand {
	return Demand{}.
		CPU(int64(n)*reduceCycles).
		Seq(kpaTier, int64(n)*PairBytes).
		Rand(DRAM, int64(n)*8, 4)
}
