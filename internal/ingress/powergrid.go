package ingress

import (
	"math/rand"

	"streambox/internal/bundle"
	"streambox/internal/ops"
	"streambox/internal/wm"
)

// PowerGridConfig shapes the synthetic smart-plug stream that replaces
// the DEBS 2014 grand-challenge trace (which is not redistributable).
// The hierarchy and value model follow the challenge: houses contain
// households contain plugs; each plug reports instantaneous load.
type PowerGridConfig struct {
	// Houses, HouseholdsPerHouse and PlugsPerHousehold set the
	// hierarchy (DEBS: 40 houses).
	Houses             uint64
	HouseholdsPerHouse uint64
	PlugsPerHousehold  uint64
	// BaseLoad and LoadJitter shape per-plug load values; a subset of
	// "hot" plugs runs at several times the base load so some houses
	// reliably exceed the global average.
	BaseLoad   uint64
	LoadJitter uint64
	HotFrac    float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Defaults fills unset fields with DEBS-like values.
func (c PowerGridConfig) Defaults() PowerGridConfig {
	if c.Houses == 0 {
		c.Houses = 40
	}
	if c.HouseholdsPerHouse == 0 {
		c.HouseholdsPerHouse = 3
	}
	if c.PlugsPerHousehold == 0 {
		c.PlugsPerHousehold = 4
	}
	if c.BaseLoad == 0 {
		c.BaseLoad = 100
	}
	if c.LoadJitter == 0 {
		c.LoadJitter = 20
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.1
	}
	return c
}

// PowerGridGen emits (plugKey, load, ts) samples cycling through every
// plug, mimicking the challenge's periodic per-plug reports.
type PowerGridGen struct {
	cfg    PowerGridConfig
	schema bundle.Schema
	rng    *rand.Rand
	plugs  []uint64 // pre-built plug keys
	hot    map[uint64]bool
	next   int
}

// NewPowerGrid creates the generator.
func NewPowerGrid(cfg PowerGridConfig) *PowerGridGen {
	cfg = cfg.Defaults()
	g := &PowerGridGen{
		cfg:    cfg,
		schema: bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"plug", "load", "ts"}},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		hot:    make(map[uint64]bool),
	}
	for h := uint64(0); h < cfg.Houses; h++ {
		for hh := uint64(0); hh < cfg.HouseholdsPerHouse; hh++ {
			for p := uint64(0); p < cfg.PlugsPerHousehold; p++ {
				key := ops.PlugKey(h, hh, p)
				g.plugs = append(g.plugs, key)
				if g.rng.Float64() < cfg.HotFrac {
					g.hot[key] = true
				}
			}
		}
	}
	return g
}

// Schema implements engine.Generator.
func (g *PowerGridGen) Schema() bundle.Schema { return g.schema }

// Fill implements engine.Generator.
func (g *PowerGridGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		key := g.plugs[g.next%len(g.plugs)]
		g.next++
		load := g.cfg.BaseLoad + g.rng.Uint64()%g.cfg.LoadJitter
		if g.hot[key] {
			load *= 5
		}
		bd.Append(key, load, ts)
	}
}

// NumPlugs returns the plug count (tests).
func (g *PowerGridGen) NumPlugs() int { return len(g.plugs) }

// HotPlugs returns the number of hot plugs (tests).
func (g *PowerGridGen) HotPlugs() int { return len(g.hot) }
