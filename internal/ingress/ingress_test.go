package ingress

import (
	"testing"

	"streambox/internal/bundle"
	"streambox/internal/memsim"
	"streambox/internal/ops"
)

func fillOne(t *testing.T, g interface {
	Schema() bundle.Schema
	Fill(*bundle.Builder, int, uint64, uint64)
}, n int, tsLo, tsHi uint64) *bundle.Bundle {
	t.Helper()
	bd, err := bundle.NewBuilder(1, g.Schema(), n, memsim.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(bd, n, tsLo, tsHi)
	return bd.Seal()
}

func TestKVGenDefaults(t *testing.T) {
	g := NewKV(KVConfig{Seed: 1})
	b := fillOne(t, g, 1000, 0, 1000)
	if b.Rows() != 1000 {
		t.Fatalf("rows = %d", b.Rows())
	}
	if b.Schema().NumCols != 3 {
		t.Fatalf("cols = %d", b.Schema().NumCols)
	}
	for i := 0; i < b.Rows(); i++ {
		if b.At(i, 0) >= 1<<10 {
			t.Fatal("key out of default cardinality")
		}
		if b.Ts(i) >= 1000 {
			t.Fatal("ts out of range")
		}
	}
	// Timestamps are non-decreasing within a bundle.
	for i := 1; i < b.Rows(); i++ {
		if b.Ts(i) < b.Ts(i-1) {
			t.Fatal("timestamps must be non-decreasing")
		}
	}
}

func TestKVGenSecondaryKeys(t *testing.T) {
	g := NewKV(KVConfig{Seed: 2, SecondaryKeys: 16})
	if g.Schema().NumCols != 4 {
		t.Fatalf("cols = %d, want 4", g.Schema().NumCols)
	}
	b := fillOne(t, g, 100, 0, 100)
	for i := 0; i < b.Rows(); i++ {
		if b.At(i, 3) >= 16 {
			t.Fatal("secondary key out of range")
		}
	}
}

func TestKVGenDeterministic(t *testing.T) {
	g1 := NewKV(KVConfig{Seed: 42})
	g2 := NewKV(KVConfig{Seed: 42})
	b1 := fillOne(t, g1, 100, 0, 100)
	b2 := fillOne(t, g2, 100, 0, 100)
	for i := 0; i < 100; i++ {
		if b1.At(i, 0) != b2.At(i, 0) || b1.At(i, 1) != b2.At(i, 1) {
			t.Fatal("same seed must reproduce the stream")
		}
	}
}

func TestRoundRobinKV(t *testing.T) {
	g := NewRoundRobinKV(4, 9)
	b := fillOne(t, g, 8, 0, 8)
	for i := 0; i < 8; i++ {
		if b.At(i, 0) != uint64(i%4) {
			t.Fatalf("key[%d] = %d", i, b.At(i, 0))
		}
		if b.At(i, 1) != 9 {
			t.Fatal("value wrong")
		}
	}
	// Continues across bundles.
	b2 := fillOne(t, g, 4, 8, 12)
	if b2.At(0, 0) != 0 {
		t.Fatalf("round robin must continue: got %d", b2.At(0, 0))
	}
}

func TestAlternatingKV(t *testing.T) {
	g := NewAlternatingKV(2, 10, 20)
	b := fillOne(t, g, 6, 0, 6)
	for i := 0; i < 6; i++ {
		want := uint64(10)
		if i%2 == 1 {
			want = 20
		}
		if b.At(i, 1) != want {
			t.Fatalf("value[%d] = %d, want %d", i, b.At(i, 1), want)
		}
	}
}

func TestYSBGen(t *testing.T) {
	g := NewYSB(YSBConfig{Ads: 50, Campaigns: 5, Seed: 3})
	if g.Schema().NumCols != 7 {
		t.Fatalf("YSB cols = %d, want 7 (paper §6)", g.Schema().NumCols)
	}
	if g.Schema().TsCol != YSBEventTime {
		t.Fatal("ts column mismatch")
	}
	b := fillOne(t, g, 1000, 0, 1000)
	views := 0
	for i := 0; i < b.Rows(); i++ {
		if b.At(i, YSBAdID) >= 50 {
			t.Fatal("ad id out of range")
		}
		if b.At(i, YSBEventType) == YSBEventView {
			views++
		}
	}
	// Roughly a third of events are views.
	if views < 200 || views > 500 {
		t.Fatalf("views = %d of 1000, expected near 333", views)
	}
}

func TestYSBCampaignTable(t *testing.T) {
	g := NewYSB(YSBConfig{Ads: 100, Campaigns: 10})
	tab := g.CampaignTable()
	if tab.Len() != 100 {
		t.Fatalf("table size = %d", tab.Len())
	}
	for ad := uint64(0); ad < 100; ad++ {
		c, ok := tab.Get(ad)
		if !ok {
			t.Fatalf("ad %d missing", ad)
		}
		if c >= 10 {
			t.Fatalf("campaign %d out of range", c)
		}
	}
	if g.Config().Ads != 100 {
		t.Fatal("config accessor wrong")
	}
}

func TestPowerGridGen(t *testing.T) {
	g := NewPowerGrid(PowerGridConfig{Seed: 7})
	want := 40 * 3 * 4
	if g.NumPlugs() != want {
		t.Fatalf("plugs = %d, want %d", g.NumPlugs(), want)
	}
	if g.HotPlugs() == 0 {
		t.Fatal("no hot plugs generated")
	}
	b := fillOne(t, g, g.NumPlugs()*2, 0, 1000)
	seen := make(map[uint64]int)
	for i := 0; i < b.Rows(); i++ {
		key := b.At(i, 0)
		if ops.HouseOf(key) >= 40 {
			t.Fatal("house out of range")
		}
		seen[key]++
		if b.At(i, 1) == 0 {
			t.Fatal("zero load")
		}
	}
	// Cycling through plugs: every plug sampled exactly twice.
	if len(seen) != g.NumPlugs() {
		t.Fatalf("distinct plugs = %d", len(seen))
	}
	for _, c := range seen {
		if c != 2 {
			t.Fatalf("plug sampled %d times, want 2", c)
		}
	}
}

func TestPowerGridHotPlugsRunHotter(t *testing.T) {
	g := NewPowerGrid(PowerGridConfig{Seed: 7, HotFrac: 0.2})
	b := fillOne(t, g, g.NumPlugs(), 0, 1000)
	var hotMin, coldMax uint64 = ^uint64(0), 0
	for i := 0; i < b.Rows(); i++ {
		load := b.At(i, 1)
		if g.hot[b.At(i, 0)] {
			if load < hotMin {
				hotMin = load
			}
		} else if load > coldMax {
			coldMax = load
		}
	}
	if hotMin <= coldMax {
		t.Fatalf("hot plugs (min %d) must exceed cold plugs (max %d)", hotMin, coldMax)
	}
}
