package ingress

import (
	"math/rand"

	"streambox/internal/algo"
	"streambox/internal/bundle"
	"streambox/internal/wm"
)

// YSB column indices (seven numeric columns, paper §6: "YSB processes
// input records with seven columns, for which we use numerical values
// rather than JSON strings").
const (
	YSBAdID = iota
	YSBAdType
	YSBEventType
	YSBUserID
	YSBPageID
	YSBIP
	YSBEventTime
)

// YSBEventView is the event type the Filter stage keeps.
const YSBEventView = 0

// YSBConfig configures the Yahoo streaming benchmark generator.
type YSBConfig struct {
	// Ads is the number of distinct ad IDs.
	Ads uint64
	// Campaigns is the number of distinct campaigns; each ad maps to
	// Ads/Campaigns ads.
	Campaigns uint64
	// EventTypes is the number of event types (views are type 0).
	EventTypes uint64
	// Seed makes the stream reproducible.
	Seed int64
}

// Defaults fills unset fields with the benchmark's conventional sizes.
func (c YSBConfig) Defaults() YSBConfig {
	if c.Ads == 0 {
		c.Ads = 1000
	}
	if c.Campaigns == 0 {
		c.Campaigns = 100
	}
	if c.EventTypes == 0 {
		c.EventTypes = 3
	}
	return c
}

// YSBGen generates the YSB ad-event stream.
type YSBGen struct {
	cfg    YSBConfig
	schema bundle.Schema
	rng    *rand.Rand
}

// NewYSB creates the generator.
func NewYSB(cfg YSBConfig) *YSBGen {
	cfg = cfg.Defaults()
	return &YSBGen{
		cfg: cfg,
		schema: bundle.Schema{
			NumCols: 7,
			TsCol:   YSBEventTime,
			Names:   []string{"ad_id", "ad_type", "event_type", "user_id", "page_id", "ip", "event_time"},
		},
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Schema implements engine.Generator.
func (g *YSBGen) Schema() bundle.Schema { return g.schema }

// Fill implements engine.Generator.
func (g *YSBGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		bd.Append(
			g.rng.Uint64()%g.cfg.Ads,
			g.rng.Uint64()%5,
			g.rng.Uint64()%g.cfg.EventTypes,
			g.rng.Uint64()%100000,
			g.rng.Uint64()%1000,
			g.rng.Uint64(),
			ts,
		)
	}
}

// CampaignTable builds the external ad→campaign side table the YSB
// pipeline joins against (held in HBM by the engine; paper §4.3:
// "a small table in HBM").
func (g *YSBGen) CampaignTable() *algo.HashTable {
	t := algo.NewHashTable(int(g.cfg.Ads))
	for ad := uint64(0); ad < g.cfg.Ads; ad++ {
		t.Put(ad, ad%g.cfg.Campaigns)
	}
	return t
}

// Config returns the generator's configuration.
func (g *YSBGen) Config() YSBConfig { return g.cfg }
