// Package ingress provides the paper's workload generators (§6): the
// three-column key/value streams used by benchmarks 1–7, the
// four-column secondary-key variant for benchmarks 8–9, the YSB ad
// stream, and the synthetic Power Grid stream standing in for the DEBS
// 2014 trace. All generators implement engine.Generator and produce
// purely numeric records.
package ingress

import (
	"math/rand"

	"streambox/internal/bundle"
	"streambox/internal/wm"
)

// KVConfig configures a key/value stream.
type KVConfig struct {
	// Keys is the key cardinality; keys are drawn uniformly (the
	// paper's grouping primitives are insensitive to skew, §6).
	Keys uint64
	// ValueRange bounds values in [0, ValueRange).
	ValueRange uint64
	// Seed makes the stream reproducible.
	Seed int64
	// SecondaryKeys adds a fourth column of secondary keys with this
	// cardinality when nonzero (benchmarks 8 and 9).
	SecondaryKeys uint64
}

// KVGen generates (key, value, ts[, key2]) records with 64-bit values.
type KVGen struct {
	cfg    KVConfig
	schema bundle.Schema
	rng    *rand.Rand
}

// NewKV creates a generator; zero fields get workable defaults.
func NewKV(cfg KVConfig) *KVGen {
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 10
	}
	if cfg.ValueRange == 0 {
		cfg.ValueRange = 1 << 20
	}
	schema := bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}}
	if cfg.SecondaryKeys > 0 {
		schema = bundle.Schema{NumCols: 4, TsCol: 2, Names: []string{"key", "value", "ts", "key2"}}
	}
	return &KVGen{cfg: cfg, schema: schema, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Schema implements engine.Generator.
func (g *KVGen) Schema() bundle.Schema { return g.schema }

// Fill implements engine.Generator.
func (g *KVGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		key := g.rng.Uint64() % g.cfg.Keys
		val := g.rng.Uint64() % g.cfg.ValueRange
		if g.cfg.SecondaryKeys > 0 {
			bd.Append(key, val, ts, g.rng.Uint64()%g.cfg.SecondaryKeys)
		} else {
			bd.Append(key, val, ts)
		}
	}
}

// RoundRobinKVGen emits keys cyclically with value 1 — a deterministic
// stream whose per-window aggregates are exactly computable, used by
// integration tests.
type RoundRobinKVGen struct {
	Keys   uint64
	Value  uint64
	schema bundle.Schema
	next   uint64
}

// NewRoundRobinKV creates the deterministic generator.
func NewRoundRobinKV(keys, value uint64) *RoundRobinKVGen {
	return &RoundRobinKVGen{
		Keys:   keys,
		Value:  value,
		schema: bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}},
	}
}

// Schema implements engine.Generator.
func (g *RoundRobinKVGen) Schema() bundle.Schema { return g.schema }

// Fill implements engine.Generator.
func (g *RoundRobinKVGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		bd.Append(g.next%g.Keys, g.Value, ts)
		g.next++
	}
}

// AlternatingKVGen emits round-robin keys whose values alternate
// between Lo and Hi — deterministic input for threshold filters.
type AlternatingKVGen struct {
	Keys   uint64
	Lo, Hi uint64
	schema bundle.Schema
	next   uint64
}

// NewAlternatingKV creates the generator.
func NewAlternatingKV(keys, lo, hi uint64) *AlternatingKVGen {
	return &AlternatingKVGen{
		Keys:   keys,
		Lo:     lo,
		Hi:     hi,
		schema: bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}},
	}
}

// Schema implements engine.Generator.
func (g *AlternatingKVGen) Schema() bundle.Schema { return g.schema }

// Fill implements engine.Generator.
func (g *AlternatingKVGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		v := g.Lo
		if g.next%2 == 1 {
			v = g.Hi
		}
		bd.Append(g.next%g.Keys, v, ts)
		g.next++
	}
}
