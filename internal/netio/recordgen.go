package netio

import (
	"streambox/internal/bundle"
	"streambox/internal/parsefmt"
)

// WindowTicks is the event-time length of one "second" window in ticks,
// matching streambox.Second.
const WindowTicks = 1_000_000

// WireSchema is the record layout carried by the wire format: the seven
// numeric columns of a parsefmt (YSB-style) record, with event_time as
// the timestamp column.
func WireSchema() bundle.Schema {
	return bundle.Schema{
		NumCols: 7,
		TsCol:   6,
		Names:   []string{"ad_id", "ad_type", "event_type", "user_id", "page_id", "ip", "event_time"},
	}
}

// RecordGen deterministically produces the wire workload stream: record
// i is a pure function of i, so any subsequence partitioning (one
// client per residue class, as sbx-loadgen does) reassembles into
// exactly the same stream — the seam that lets a network run be
// compared bit-for-bit against an in-process generator run.
type RecordGen struct {
	// Keys is the ad_id cardinality (0 picks 1024).
	Keys uint64
	// ValueRange bounds user_id values; 0 means the constant 1, making
	// per-window sums exactly predictable.
	ValueRange uint64
	// WindowRecords is the event-time density: this many records span
	// one window of WindowTicks (0 picks 100_000).
	WindowRecords uint64
	// Random draws keys and values from a splitmix64 sequence instead
	// of round-robin.
	Random bool
	// Seed perturbs the random sequence.
	Seed uint64
}

// withDefaults fills zero fields.
func (g RecordGen) withDefaults() RecordGen {
	if g.Keys == 0 {
		g.Keys = 1 << 10
	}
	if g.WindowRecords == 0 {
		g.WindowRecords = 100_000
	}
	return g
}

// splitmix64 is the standard 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ColsAt returns record i of the stream in column order — the columnar
// send path's primitive, filling column buffers without materializing a
// Record.
func (g RecordGen) ColsAt(i uint64) [7]uint64 {
	g = g.withDefaults()
	// Per-window decomposition avoids overflow for very long streams.
	ts := i/g.WindowRecords*WindowTicks + i%g.WindowRecords*WindowTicks/g.WindowRecords
	key, val := i%g.Keys, uint64(1)
	if g.Random {
		key = splitmix64(g.Seed^i) % g.Keys
	}
	if g.ValueRange > 0 {
		val = splitmix64(g.Seed^(i+0x51ED2701)) % g.ValueRange
	}
	return [7]uint64{key, key % 10, i % 4, val, i % 1000, 0x0A000000 + i%65536, ts}
}

// At returns record i of the stream.
func (g RecordGen) At(i uint64) parsefmt.Record {
	c := g.ColsAt(i)
	return parsefmt.Record{
		AdID:      c[0],
		AdType:    c[1],
		EventType: c[2],
		UserID:    c[3],
		PageID:    c[4],
		IP:        c[5],
		EventTime: c[6],
	}
}

// Records materializes records [lo, hi) of the stream.
func (g RecordGen) Records(lo, hi uint64) []parsefmt.Record {
	out := make([]parsefmt.Record, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, g.At(i))
	}
	return out
}

// StreamGen adapts a RecordGen to the engine.Generator interface,
// producing exactly the records network clients would send — run it on
// the native backend in-process to get the ground truth for a loopback
// equivalence check.
type StreamGen struct {
	g    RecordGen
	next uint64
}

// NewStreamGen starts the adapter at record 0.
func NewStreamGen(g RecordGen) *StreamGen { return &StreamGen{g: g} }

// Schema implements engine.Generator.
func (s *StreamGen) Schema() bundle.Schema { return WireSchema() }

// Fill implements engine.Generator. The event timestamps come from the
// RecordGen's own clock (identical to what travels the wire), not from
// the engine-proposed [tsLo, tsHi) range.
func (s *StreamGen) Fill(bd *bundle.Builder, n int, _, _ uint64) {
	for i := 0; i < n; i++ {
		c := s.g.ColsAt(s.next)
		bd.Append(c[:]...)
		s.next++
	}
}
