package netio

import (
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/bundle"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
)

// colTier is the memory tier ingest column batches stage through. Wire
// batches are DRAM-resident until the runtime copies them into bundles;
// HBM stays dedicated to the compute-side KPAs.
const colTier = memsim.DRAM

// batch is one decoded frame flowing from a connection handler to the
// runtime, or a sentinel retiring a connection's watermark cursor.
type batch struct {
	conn   int64
	cols   [][]uint64
	maxTs  uint64
	retire bool
}

// feedCursor is one source's watermark state. A parked cursor belongs
// to a session whose connection has been gone past the cursor grace
// period: its timestamp still advances if late batches drain through,
// but it no longer holds the feed watermark down — window closes
// proceed without it until a resume unparks it.
type feedCursor struct {
	ts     uint64
	parked bool
}

// Feed buffers decoded record batches between the ingest server and the
// native runtime, implementing runtime.ExternalFeed. It also tracks the
// stream's event-time watermark the way a multi-source streaming system
// must: each connection is a source with its own cursor (the highest
// timestamp among batches *delivered* to the runtime — not merely
// received, so the watermark can never overtake data still buffered
// here), and the feed watermark is the minimum cursor over live
// connections. A window therefore closes only once every connection has
// delivered all its records for that window, which makes multi-client
// runs produce exactly the results of the equivalent single-generator
// run.
//
// Column memory has one owner: the engine's mempool (attached via
// UsePool). Handlers borrow column slabs here, the runtime returns them
// through Recycle, and /metrics reports the pool's column-slab
// occupancy alongside every other engine buffer. Only the [][]uint64
// headers cycle through a sync.Pool.
type Feed struct {
	schema bundle.Schema
	ch     chan batch
	stop   chan struct{} // closed when the server begins shutdown

	mu      sync.Mutex
	cursors map[int64]*feedCursor
	highTs  uint64 // max delivered timestamp ever (watermark once all conns retire)

	// pool owns the column slabs behind every batch. Until UsePool
	// attaches one (standalone feeds in tests), columns fall back to
	// plain make and Recycle keeps them on the header for append reuse.
	pool atomic.Pointer[mempool.Pool]

	// headers recycles the [][]uint64 batch headers only — never column
	// memory, which the mempool owns.
	headers sync.Pool
}

// NewFeed creates a feed buffering up to buffer batches (0 picks 64).
func NewFeed(schema bundle.Schema, buffer int) *Feed {
	if buffer <= 0 {
		buffer = 64
	}
	return &Feed{
		schema:  schema,
		ch:      make(chan batch, buffer),
		stop:    make(chan struct{}),
		cursors: make(map[int64]*feedCursor),
	}
}

// UsePool hands the feed the engine's slab allocator as the owner of
// all column memory. Call before ingest traffic starts (Serve attaches
// the runtime's pool between starting the execution and opening the
// listener).
func (f *Feed) UsePool(p *mempool.Pool) { f.pool.Store(p) }

// Schema implements runtime.ExternalFeed.
func (f *Feed) Schema() bundle.Schema { return f.schema }

// register adds a connection's watermark cursor at zero, holding the
// feed watermark until the connection's data starts flowing.
func (f *Feed) register(conn int64) {
	f.mu.Lock()
	f.cursors[conn] = &feedCursor{}
	f.mu.Unlock()
}

// park marks a cursor as no longer holding the feed watermark — the
// stale-cursor expiry for a session whose connection has been gone past
// the grace period. Idempotent; a missing cursor is a no-op.
func (f *Feed) park(conn int64) {
	f.mu.Lock()
	if c, ok := f.cursors[conn]; ok {
		c.parked = true
	}
	f.mu.Unlock()
}

// unpark restores a parked cursor into the watermark minimum — a
// session resumed. Idempotent; a missing cursor is a no-op.
func (f *Feed) unpark(conn int64) {
	f.mu.Lock()
	if c, ok := f.cursors[conn]; ok {
		c.parked = false
	}
	f.mu.Unlock()
}

// RestoreCursor re-registers a connection's watermark cursor at a
// recovered timestamp — recovery seeds each checkpointed session's
// cursor (and a synthetic cursor per replayed sessionless connection)
// before replaying the log through Inject.
func (f *Feed) RestoreCursor(conn int64, ts uint64, parked bool) {
	f.mu.Lock()
	f.cursors[conn] = &feedCursor{ts: ts, parked: parked}
	f.mu.Unlock()
}

// SeedHighTs raises the feed's high-water timestamp — recovery restores
// the checkpoint's value so retired pre-crash connections keep counting
// toward the all-retired watermark.
func (f *Feed) SeedHighTs(ts uint64) {
	f.mu.Lock()
	if ts > f.highTs {
		f.highTs = ts
	}
	f.mu.Unlock()
}

// Inject delivers a recovered batch under conn's cursor through the
// normal delivery path (blocking on feed backpressure); it reports
// false once shutdown has begun. cols must come from BorrowCols so
// recycling returns them to the pool.
func (f *Feed) Inject(conn int64, cols [][]uint64, maxTs uint64) bool {
	return f.push(batch{conn: conn, cols: cols, maxTs: maxTs})
}

// BorrowCols exposes the columnar receive path's slab borrowing for
// recovery replay: exact-length columns the caller must fill entirely.
func (f *Feed) BorrowCols(rows int) [][]uint64 { return f.borrowCols(rows) }

// Retire removes conn's cursor after any batches already injected for
// it: the sentinel rides the channel behind the data, falling back to
// direct removal during shutdown.
func (f *Feed) Retire(conn int64) {
	if !f.push(batch{conn: conn, retire: true}) {
		f.retire(conn)
	}
}

// CursorState is one watermark cursor's checkpointable state.
type CursorState struct {
	Conn   int64
	Ts     uint64
	Parked bool
}

// Cursors snapshots the live cursors (checkpointing).
func (f *Feed) Cursors() []CursorState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]CursorState, 0, len(f.cursors))
	for id, c := range f.cursors {
		out = append(out, CursorState{Conn: id, Ts: c.ts, Parked: c.parked})
	}
	return out
}

// HighTs returns the highest delivered timestamp (checkpointing).
func (f *Feed) HighTs() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.highTs
}

// liveCursors returns the number of registered cursors and how many of
// them are parked (for tests and leak checks).
func (f *Feed) liveCursors() (total, parked int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.cursors {
		if c.parked {
			parked++
		}
	}
	return len(f.cursors), parked
}

// push delivers a batch, blocking while the buffer is full. It returns
// false — and drops the batch — once shutdown has begun.
func (f *Feed) push(b batch) bool {
	select {
	case <-f.stop:
		return false
	default:
	}
	select {
	case f.ch <- b:
		return true
	case <-f.stop:
		return false
	}
}

// retire removes a connection's cursor directly, for handlers whose
// sentinel could not be delivered during shutdown.
func (f *Feed) retire(conn int64) {
	f.mu.Lock()
	f.retireLocked(conn)
	f.mu.Unlock()
}

func (f *Feed) retireLocked(conn int64) {
	if c, ok := f.cursors[conn]; ok {
		delete(f.cursors, conn)
		if c.ts > f.highTs {
			f.highTs = c.ts
		}
	}
}

// beginShutdown unblocks pushers; no push succeeds afterwards.
func (f *Feed) beginShutdown() { close(f.stop) }

// closeSend closes the batch channel. Only the server may call it, after
// every connection handler has exited (no concurrent pushers).
func (f *Feed) closeSend() { close(f.ch) }

// Close shuts down a feed no server owns (error paths before Listen
// succeeds), releasing a runtime blocked in Recv. With a server
// attached, Server.Close performs the ordered shutdown instead.
func (f *Feed) Close() {
	f.beginShutdown()
	f.closeSend()
}

// Recv implements runtime.ExternalFeed: it blocks up to maxWait
// (forever when <= 0) for the next batch, advancing the owning
// connection's watermark cursor as the batch is handed over. ok is
// false when the feed is closed and drained; idle is true when maxWait
// elapsed with no batch.
func (f *Feed) Recv(maxWait time.Duration) ([][]uint64, bool, bool) {
	var timeout <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		var b batch
		var ok bool
		select {
		case b, ok = <-f.ch:
		case <-timeout:
			return nil, true, true
		}
		if !ok {
			return nil, false, false
		}
		f.mu.Lock()
		if b.retire {
			f.retireLocked(b.conn)
			f.mu.Unlock()
			continue
		}
		if cur, live := f.cursors[b.conn]; live && b.maxTs > cur.ts {
			cur.ts = b.maxTs
		}
		if b.maxTs > f.highTs {
			f.highTs = b.maxTs
		}
		f.mu.Unlock()
		return b.cols, true, false
	}
}

// Recycle implements runtime.BatchRecycler: the runtime hands back a
// batch's column buffers after copying them into a bundle. Column slabs
// return to the mempool's column free lists; the bare header joins the
// header pool. Without an attached pool, columns stay on the header,
// truncated, for append reuse.
func (f *Feed) Recycle(cols [][]uint64) {
	if len(cols) != f.schema.NumCols {
		return
	}
	if p := f.pool.Load(); p != nil {
		for i := range cols {
			p.PutCol(colTier, cols[i])
			cols[i] = nil
		}
	} else {
		for i := range cols {
			cols[i] = cols[i][:0]
		}
	}
	f.headers.Put(&cols)
}

// getCols returns an empty column-major batch for the row-format append
// decoders: a recycled header whose columns have length zero. With a
// pool attached, each column is a pooled slab sized for a typical frame
// so steady-state appends stay within recycled capacity.
func (f *Feed) getCols() [][]uint64 {
	cols := f.getHeader()
	p := f.pool.Load()
	for i := range cols {
		if cols[i] == nil {
			if p != nil {
				cols[i] = p.TakeCol(colTier, defaultFrameRecords)
			} else {
				cols[i] = make([]uint64, 0)
			}
		}
		cols[i] = cols[i][:0]
	}
	return cols
}

// borrowCols returns a batch of exact-length columns for the columnar
// receive path: frame payload bytes are read straight into these slabs.
// Recycled slabs hold stale contents; the caller overwrites every
// element (io.ReadFull fills each column completely).
func (f *Feed) borrowCols(rows int) [][]uint64 {
	cols := f.getHeader()
	p := f.pool.Load()
	for i := range cols {
		switch {
		case p != nil:
			if cols[i] != nil {
				p.PutCol(colTier, cols[i])
			}
			cols[i] = p.TakeCol(colTier, rows)
		case cap(cols[i]) >= rows:
			cols[i] = cols[i][:rows]
		default:
			cols[i] = make([]uint64, rows)
		}
	}
	return cols
}

// getHeader returns a schema-width batch header; entries may be nil or
// carry leftover fallback columns.
func (f *Feed) getHeader() [][]uint64 {
	if v := f.headers.Get(); v != nil {
		return *v.(*[][]uint64)
	}
	return make([][]uint64, f.schema.NumCols)
}

// Watermark implements runtime.ExternalFeed: the minimum cursor over
// live, unparked connections — or the highest delivered timestamp once
// none remain (all retired, or every survivor parked past its grace
// period). Parked cursors deliberately drop out of the minimum so one
// silent session cannot stall every window close.
func (f *Feed) Watermark() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	first := true
	var min uint64
	for _, c := range f.cursors {
		if c.parked {
			continue
		}
		if first || c.ts < min {
			min = c.ts
			first = false
		}
	}
	if first {
		return f.highTs
	}
	return min
}
