package netio

import (
	"sync/atomic"
	"testing"

	"streambox/internal/mempool"
	"streambox/internal/memsim"
	"streambox/internal/parsefmt"
	"streambox/internal/wal"
)

// benchIngest measures the wire→feed ingest path over real loopback
// TCP: one client streams b.N records, a drain goroutine plays the
// runtime (Recv + Recycle against a mempool), and the reported metrics
// are records/second of wall time plus — via -benchmem — allocations
// per record on the whole path. A non-nil log additionally appends
// every frame to the write-ahead log, pinning the durability overhead
// against the log-free baseline.
func benchIngest(b *testing.B, format parsefmt.Format, log FrameLog) {
	feed := NewFeed(WireSchema(), 64)
	pool := mempool.New(memsim.KNLConfig(), 0)
	feed.UsePool(pool)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed, FrameCredits: 256, WAL: log})
	if err != nil {
		b.Fatal(err)
	}
	var drained atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			cols, ok, _ := feed.Recv(0)
			if !ok {
				return
			}
			drained.Add(int64(len(cols[0])))
			feed.Recycle(cols)
		}
	}()

	const frameRows = 4096
	c, err := Dial(srv.Addr().String(), ClientConfig{Format: format, FrameRecords: frameRows})
	if err != nil {
		b.Fatal(err)
	}

	// Pre-materialize one batch outside the timer; the send loop replays
	// it, so the measurement is the wire path, not the generator.
	const batch = 1 << 16
	gen := RecordGen{Keys: 1024, WindowRecords: 100_000}
	var recs []parsefmt.Record
	var cols [][]uint64
	if format == parsefmt.Columnar {
		cols = make([][]uint64, 7)
		for i := range cols {
			cols[i] = make([]uint64, batch)
		}
		for i := uint64(0); i < batch; i++ {
			rc := gen.ColsAt(i)
			for k := range cols {
				cols[k][i] = rc[k]
			}
		}
	} else {
		recs = gen.Records(0, batch)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; sent += batch {
		if format == parsefmt.Columnar {
			err = c.SendColumns(cols)
		} else {
			err = c.Send(recs)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
	srv.Close()
	<-done
	b.StopTimer()
	if n := drained.Load(); n < int64(b.N) {
		b.Fatalf("drained %d records, want at least %d", n, b.N)
	}
	b.ReportMetric(float64(drained.Load())/b.Elapsed().Seconds(), "rec/s")
}

// BenchmarkIngest compares the ingest formats end to end; CSV is the
// Text wire format under its benchmark-table name.
func BenchmarkIngest(b *testing.B) {
	b.Run("JSON", func(b *testing.B) { benchIngest(b, parsefmt.JSON, nil) })
	b.Run("PB", func(b *testing.B) { benchIngest(b, parsefmt.PB, nil) })
	b.Run("CSV", func(b *testing.B) { benchIngest(b, parsefmt.Text, nil) })
	b.Run("Columnar", func(b *testing.B) { benchIngest(b, parsefmt.Columnar, nil) })
}

// BenchmarkColumnarIngest is the zero-copy acceptance pin on its own
// name: loopback columnar ingest, records/second and allocations per
// record.
func BenchmarkColumnarIngest(b *testing.B) {
	benchIngest(b, parsefmt.Columnar, nil)
}

// BenchmarkColumnarIngestWAL is the durability-overhead pin: the same
// loopback columnar path with every frame also appended to a real
// write-ahead log on disk (sessionless, so frames ride the background
// sync like the fault-free fast path). The acceptance bound is within
// 15% of BenchmarkColumnarIngest.
func BenchmarkColumnarIngestWAL(b *testing.B) {
	log, err := wal.Open(wal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	benchIngest(b, parsefmt.Columnar, log)
}
