package netio

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streambox/internal/parsefmt"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout waiting for " + msg)
}

// genColumnarPayload builds one columnar frame payload holding records
// [lo, lo+n) of gen.
func genColumnarPayload(gen *RecordGen, lo, n int) []byte {
	cols := make([][]uint64, 7)
	for i := lo; i < lo+n; i++ {
		rc := gen.ColsAt(uint64(i))
		for k := range cols {
			cols[k] = append(cols[k], rc[k])
		}
	}
	return parsefmt.EncodeColumnarFrame(cols)
}

// rawSessionDial runs the full version-3 session handshake by hand and
// returns the raw connection plus the grant. A zero returned token
// means the server refused the resume (unknown/expired session).
func rawSessionDial(t *testing.T, addr string, token uint64) (conn net.Conn, credits int, gotToken, lastSeq uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHello(conn, parsefmt.Columnar, Version, helloFlagSession); err != nil {
		t.Fatal(err)
	}
	credits, version, err := readAck(conn)
	if err != nil {
		t.Fatal(err)
	}
	if version < 3 {
		t.Fatalf("negotiated version %d, want >= 3", version)
	}
	if err := writeResume(conn, token); err != nil {
		t.Fatal(err)
	}
	gotToken, lastSeq, err = readSessionGrant(conn)
	if err != nil {
		t.Fatal(err)
	}
	return conn, credits, gotToken, lastSeq
}

// awaitAck reads credit acks off a raw session connection until the
// cumulative ack reaches want.
func awaitAck(t *testing.T, conn net.Conn, want uint64) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	for {
		_, last, err := readCreditAck(conn)
		if err != nil {
			t.Fatalf("credit ack: %v", err)
		}
		if last >= want {
			return
		}
	}
}

// TestIdleTimeoutClosesSilentConn pins the steady-state read deadline:
// with IdleTimeout set a silent connection is severed and its cursor
// retired; with it unset (the old behavior) silence is tolerated.
func TestIdleTimeoutClosesSilentConn(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed, IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)
	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		total, _ := feed.liveCursors()
		return srv.Counters().ActiveConns == 0 && total == 0
	}, "silent connection to be severed")
	if n := srv.Counters().IdleTimeouts; n < 1 {
		t.Fatalf("IdleTimeouts = %d, want >= 1", n)
	}
	c.conn.Close()
	srv.Close()
	<-done

	// Without IdleTimeout, the same silence is tolerated.
	feed2 := NewFeed(WireSchema(), 8)
	srv2, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed2})
	if err != nil {
		t.Fatal(err)
	}
	got, done2 := collect(feed2)
	c2, err := Dial(srv2.Addr().String(), ClientConfig{Format: parsefmt.PB})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if n := srv2.Counters().ActiveConns; n != 1 {
		t.Fatalf("connection severed without IdleTimeout (active %d)", n)
	}
	gen := RecordGen{Keys: 8, WindowRecords: 100}
	if err := c2.Send(gen.Records(0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	<-done2
	if n := got.Load(); n != 50 {
		t.Fatalf("ingested %d records after silence, want 50", n)
	}
}

// TestClientWriteTimeout pins the typed write-deadline error: against a
// server that handshakes and then never reads, a client with a
// WriteTimeout surfaces *TimeoutError instead of blocking forever.
func TestClientWriteTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetReadBuffer(4 << 10) // shrink the kernel buffer so writes stall sooner
		}
		// Handshake, grant a huge credit window, then go silent: never
		// read a frame, never grant again.
		if _, _, _, _, err := readHello(conn, Version); err != nil {
			conn.Close()
			return
		}
		writeAck(conn, 2, statusOK, 0xFFFF)
		accepted <- conn
	}()

	c, err := Dial(ln.Addr().String(), ClientConfig{
		Format:       parsefmt.Columnar,
		FrameRecords: 4096,
		WriteTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	conn := <-accepted
	defer conn.Close()

	cols := make([][]uint64, 7)
	for k := range cols {
		cols[k] = make([]uint64, 1<<16)
	}
	var sendErr error
	for i := 0; i < 64 && sendErr == nil; i++ { // ~229 MiB max, stalls long before that
		sendErr = c.SendColumns(cols)
	}
	if sendErr == nil {
		t.Fatal("writes against a non-reading server never timed out")
	}
	var te *TimeoutError
	if !errors.As(sendErr, &te) {
		t.Fatalf("send error %v, want *TimeoutError", sendErr)
	}
	if !te.Timeout() || te.After != 150*time.Millisecond {
		t.Fatalf("timeout error %+v not carrying the configured deadline", te)
	}
}

// TestAbruptDisconnectMatrix cuts connections at every interesting
// offset — during the handshake, at frame boundaries, and mid-frame at
// several byte offsets — and asserts the server retires each cursor,
// counts only the complete frames, and leaks nothing.
func TestAbruptDisconnectMatrix(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)
	gen := RecordGen{Keys: 16, WindowRecords: 100}

	const frameRecs = 32
	payload := genColumnarPayload(&gen, 0, frameRecs)
	// One full wire frame: length prefix + payload.
	var frame []byte
	frame = append(frame, byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
	frame = append(frame, payload...)

	handshake := func(tc *testing.T) net.Conn {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			tc.Fatal(err)
		}
		if err := writeHello(conn, parsefmt.Columnar, Version, 0); err != nil {
			tc.Fatal(err)
		}
		if _, _, err := readAck(conn); err != nil {
			tc.Fatal(err)
		}
		return conn
	}
	settle := func(tc *testing.T) {
		waitFor(tc, 5*time.Second, func() bool {
			total, _ := feed.liveCursors()
			return srv.Counters().ActiveConns == 0 && total == 0
		}, "cursor retirement after abrupt disconnect")
	}

	t.Run("mid-handshake", func(t *testing.T) {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("SBX"))
		conn.Close()
		settle(t)
	})

	for _, fullFrames := range []int{0, 1, 2} {
		t.Run("frame-boundary", func(t *testing.T) {
			before := srv.Counters().IngestedRecords
			conn := handshake(t)
			for i := 0; i < fullFrames; i++ {
				if _, err := conn.Write(frame); err != nil {
					t.Fatal(err)
				}
			}
			conn.Close()
			settle(t)
			waitFor(t, 5*time.Second, func() bool {
				return srv.Counters().IngestedRecords-before == int64(fullFrames*frameRecs)
			}, "complete frames ingested")
		})
	}

	for _, cut := range []int{1, 3, 5, 4 + 11, 4 + parsefmt.ColumnarHeaderBytes + 3, len(frame) - 1} {
		t.Run("mid-frame", func(t *testing.T) {
			before := srv.Counters().IngestedRecords
			conn := handshake(t)
			// One full frame, then a truncated second one.
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			conn.Write(frame[:cut])
			conn.Close()
			settle(t)
			waitFor(t, 5*time.Second, func() bool {
				return srv.Counters().IngestedRecords-before == int64(frameRecs)
			}, "only the complete frame ingested")
		})
	}

	srv.Close()
	<-done
	final := srv.Counters()
	if final.ActiveConns != 0 {
		t.Fatalf("ActiveConns %d after close", final.ActiveConns)
	}
	if total, _ := feed.liveCursors(); total != 0 {
		t.Fatalf("%d cursors leaked", total)
	}
	_ = got
}

// TestSessionResumeDedupe drives the resume protocol by hand: frames
// acked under a dead connection are replayed and discarded by seq
// dedup, a sequence gap severs the connection, and a retired session
// refuses to resume.
func TestSessionResumeDedupe(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)
	gen := RecordGen{Keys: 16, WindowRecords: 100}

	conn, _, token, lastSeq := rawSessionDial(t, srv.Addr().String(), 0)
	if token == 0 || lastSeq != 0 {
		t.Fatalf("fresh session grant token=%d lastSeq=%d", token, lastSeq)
	}
	p1 := genColumnarPayload(&gen, 0, 10)
	p2 := genColumnarPayload(&gen, 10, 10)
	p3 := genColumnarPayload(&gen, 20, 10)
	// In sequence order: the server severs on any gap, and map
	// iteration order would make the first write a coin flip.
	for seq, p := range []([]byte){1: p1, 2: p2} {
		if seq == 0 {
			continue
		}
		if err := writeSeqFrame(conn, uint64(seq), p); err != nil {
			t.Fatal(err)
		}
	}
	awaitAck(t, conn, 2)
	conn.Close() // abrupt loss after both frames were acked

	conn2, _, token2, last2 := rawSessionDial(t, srv.Addr().String(), token)
	if token2 != token || last2 != 2 {
		t.Fatalf("resume grant token=%d lastSeq=%d, want %d/2", token2, last2, token)
	}
	if n := srv.Counters().SessionsResumed; n != 1 {
		t.Fatalf("SessionsResumed = %d, want 1", n)
	}
	// Replay seq 2 (a frame the server already ingested), then the new
	// frame: the dup is discarded, the new frame lands.
	if err := writeSeqFrame(conn2, 2, p2); err != nil {
		t.Fatal(err)
	}
	if err := writeSeqFrame(conn2, 3, p3); err != nil {
		t.Fatal(err)
	}
	awaitAck(t, conn2, 3)
	if n := srv.Counters().DuplicateFrames; n != 1 {
		t.Fatalf("DuplicateFrames = %d, want 1", n)
	}

	// A sequence gap severs the connection so the client replays.
	if err := writeSeqFrame(conn2, 9, p3); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readCreditAck(conn2); err == nil {
		t.Fatal("server kept the connection across a sequence gap")
	}
	conn2.Close()

	// Resume once more and end the stream cleanly; the retired session
	// must then refuse a further resume.
	conn3, _, token3, last3 := rawSessionDial(t, srv.Addr().String(), token)
	if token3 != token || last3 != 3 {
		t.Fatalf("second resume grant token=%d lastSeq=%d, want %d/3", token3, last3, token)
	}
	if err := writeFrame(conn3, nil); err != nil { // EOS
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Counters().ActiveSessions == 0 }, "session retirement on EOS")
	conn3.Close()

	conn4, _, token4, _ := rawSessionDial(t, srv.Addr().String(), token)
	if token4 != 0 {
		t.Fatalf("retired session resumed (token %d)", token4)
	}
	conn4.Close()

	srv.Close()
	<-done
	if n := got.Load(); n != 30 {
		t.Fatalf("ingested %d records, want exactly 30 (no loss, no duplication)", n)
	}
}

// TestOverloadShedsNewConns pins admission control: handshakes past
// MaxConns (or while ShedPressure holds) are refused with a
// statusOverloaded ack that surfaces as ErrOverloaded.
func TestOverloadShedsNewConns(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)

	c1, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("dial past MaxConns: %v, want ErrOverloaded", err)
	}
	if n := srv.Counters().ShedConns; n != 1 {
		t.Fatalf("ShedConns = %d, want 1", n)
	}
	// A reconnecting client retries and still surfaces the shed.
	if _, err := Dial(srv.Addr().String(), ClientConfig{
		Format:    parsefmt.PB,
		Reconnect: &ReconnectConfig{MaxRetries: 2, BaseDelay: time.Millisecond},
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("retried dial past MaxConns: %v, want ErrOverloaded", err)
	}
	// Freeing the slot admits the next dial.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Counters().ActiveConns == 0 }, "slot to free")
	c3, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB})
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	c3.Close()
	srv.Close()
	<-done

	// Pressure-driven shedding, independent of the connection cap.
	feed2 := NewFeed(WireSchema(), 8)
	var pressured atomic.Bool
	pressured.Store(true)
	srv2, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed2, ShedPressure: pressured.Load})
	if err != nil {
		t.Fatal(err)
	}
	_, done2 := collect(feed2)
	if _, err := Dial(srv2.Addr().String(), ClientConfig{Format: parsefmt.PB}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("dial under pressure: %v, want ErrOverloaded", err)
	}
	pressured.Store(false)
	c4, err := Dial(srv2.Addr().String(), ClientConfig{Format: parsefmt.PB})
	if err != nil {
		t.Fatalf("dial after pressure cleared: %v", err)
	}
	c4.Close()
	srv2.Close()
	<-done2
}

// TestHungConnectionParksCursor pins stale-cursor expiry: a dead
// session's cursor first stalls the watermark (grace), then is parked
// so the watermark advances past it, and un-parks when the session
// resumes.
func TestHungConnectionParksCursor(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Feed:           feed,
		CursorGrace:    80 * time.Millisecond,
		SessionTimeout: 10 * time.Second, // expiry out of the picture here
	})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)
	gen := RecordGen{Keys: 16, WindowRecords: 100}

	// Session A delivers window-0 records, then goes silent.
	connA, _, token, _ := rawSessionDial(t, srv.Addr().String(), 0)
	if err := writeSeqFrame(connA, 1, genColumnarPayload(&gen, 0, 100)); err != nil {
		t.Fatal(err)
	}
	awaitAck(t, connA, 1)
	connA.Close()

	// Connection B streams far past window 0.
	cB, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Columnar, FrameRecords: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := cB.Send(gen.Records(0, 10_000)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Counters().IngestedRecords == 10_100 }, "B's records to land")

	// Within the grace period A's cursor still holds the watermark at
	// window 0.
	if w := feed.Watermark(); w >= WindowTicks {
		t.Fatalf("watermark %d advanced past the hung cursor before the grace period", w)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Counters().ParkedCursors == 1 }, "hung cursor to park")
	if w := feed.Watermark(); w < 50*WindowTicks {
		t.Fatalf("watermark %d still stalled after the cursor parked", w)
	}

	// Resuming un-parks the cursor: the watermark drops back to the
	// session's own position.
	connA2, _, token2, last2 := rawSessionDial(t, srv.Addr().String(), token)
	if token2 != token || last2 != 1 {
		t.Fatalf("resume grant token=%d lastSeq=%d", token2, last2)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Counters().ParkedCursors == 0 }, "cursor to un-park on resume")
	if w := feed.Watermark(); w >= WindowTicks {
		t.Fatalf("watermark %d ignores the resumed session's cursor", w)
	}
	if err := writeFrame(connA2, nil); err != nil { // clean EOS retires the session
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Counters().ActiveSessions == 0 }, "session retirement")
	connA2.Close()
	cB.Close()
	srv.Close()
	<-done
}

// TestSessionExpiryRetiresCursor pins the second deadline: a session
// whose client never comes back is expired outright, its cursor
// removed, and a late resume is refused.
func TestSessionExpiryRetiresCursor(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Feed:           feed,
		CursorGrace:    30 * time.Millisecond,
		SessionTimeout: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)
	gen := RecordGen{Keys: 16, WindowRecords: 100}

	conn, _, token, _ := rawSessionDial(t, srv.Addr().String(), 0)
	if err := writeSeqFrame(conn, 1, genColumnarPayload(&gen, 0, 10)); err != nil {
		t.Fatal(err)
	}
	awaitAck(t, conn, 1)
	conn.Close()

	waitFor(t, 5*time.Second, func() bool { return srv.Counters().ExpiredSessions == 1 }, "session expiry")
	if total, _ := feed.liveCursors(); total != 0 {
		t.Fatalf("%d cursors live after expiry", total)
	}
	conn2, _, token2, _ := rawSessionDial(t, srv.Addr().String(), token)
	if token2 != 0 {
		t.Fatalf("expired session resumed (token %d)", token2)
	}
	conn2.Close()
	srv.Close()
	<-done
}

// cutProxy forwards TCP connections to a target, cutting the Nth
// accepted connection after its byte budget (client→server direction)
// is spent. Budgets beyond the list are unlimited.
type cutProxy struct {
	ln      net.Listener
	target  string
	budgets []int64
	mu      sync.Mutex
	next    int
	wg      sync.WaitGroup
}

func startCutProxy(t *testing.T, target string, budgets ...int64) *cutProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &cutProxy{ln: ln, target: target, budgets: budgets}
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

func (p *cutProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		budget := int64(-1)
		if p.next < len(p.budgets) {
			budget = p.budgets[p.next]
		}
		p.next++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.pipe(conn, budget)
	}
}

func (p *cutProxy) pipe(client net.Conn, budget int64) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	go func() {
		io.Copy(client, server) // server→client: acks flow freely
		client.Close()
	}()
	if budget < 0 {
		io.Copy(server, client)
	} else {
		io.CopyN(server, client, budget)
	}
	server.Close()
	client.Close()
}

func (p *cutProxy) Close() {
	p.ln.Close()
	p.wg.Wait()
}

// TestClientReconnectResumeExactlyOnce drives the real client through
// deterministic mid-stream connection cuts (via a byte-budgeted proxy)
// and asserts the stream arrives complete and exactly once.
func TestClientReconnectResumeExactlyOnce(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)
	// Cut the first connection mid-frame after 8 KiB, the second at
	// ~3 frames (64 rows ≈ 3.6 KiB each), the third mid-frame again.
	proxy := startCutProxy(t, srv.Addr().String(), 8<<10, 11<<10, 20<<10)
	defer proxy.Close()

	c, err := Dial(proxy.ln.Addr().String(), netioTestReconnectCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Session() {
		t.Fatal("client did not negotiate a session")
	}
	gen := RecordGen{Keys: 16, WindowRecords: 100}
	const total = 20_000
	if err := c.Send(gen.Records(0, total)); err != nil {
		t.Fatalf("send across cuts: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := c.Reconnects(); n < 3 {
		t.Fatalf("Reconnects = %d, want >= 3 (one per cut budget)", n)
	}
	if n := c.Replayed(); n < 1 {
		t.Fatalf("Replayed = %d, want >= 1", n)
	}
	srv.Close()
	<-done
	if n := got.Load(); n != total {
		t.Fatalf("ingested %d records, want exactly %d (no loss, no duplication)", n, total)
	}
	ctr := srv.Counters()
	if ctr.SessionsResumed < 3 {
		t.Fatalf("SessionsResumed = %d, want >= 3", ctr.SessionsResumed)
	}
	if total, _ := feed.liveCursors(); total != 0 {
		t.Fatalf("%d cursors leaked", total)
	}
}

func netioTestReconnectCfg() ClientConfig {
	return ClientConfig{
		Format:       parsefmt.Columnar,
		FrameRecords: 64,
		Reconnect: &ReconnectConfig{
			MaxRetries: 20,
			BaseDelay:  time.Millisecond,
			MaxDelay:   10 * time.Millisecond,
			Seed:       7,
		},
	}
}
