package netio

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/parsefmt"
)

// ClientConfig configures a Dial.
type ClientConfig struct {
	// Format selects the payload encoding (default JSON, the zero
	// value; loadgen defaults to PB).
	Format parsefmt.Format
	// FrameRecords is the number of records per frame (0 picks 512).
	FrameRecords int
	// DialTimeout bounds connection establishment and the handshake
	// (0 picks 10s).
	DialTimeout time.Duration
}

// Client is one ingest connection: it frames and encodes records,
// respecting the server's credit window — Send blocks while the server
// withholds credits (engine backpressure).
type Client struct {
	conn   net.Conn
	bw     *bufio.Writer
	format parsefmt.Format
	frame  int

	mu      sync.Mutex
	cond    *sync.Cond
	credits int
	readErr error

	sent   atomic.Int64
	frames atomic.Int64
	done   chan struct{}
}

// Dial connects and handshakes with an ingest server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.FrameRecords <= 0 {
		cfg.FrameRecords = 512
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := writeHello(conn, cfg.Format); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netio: hello: %w", err)
	}
	credits, err := readAck(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		format:  cfg.Format,
		frame:   cfg.FrameRecords,
		credits: credits,
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.creditLoop()
	return c, nil
}

// creditLoop consumes the server's credit grants.
func (c *Client) creditLoop() {
	defer close(c.done)
	for {
		n, err := readCredit(c.conn)
		c.mu.Lock()
		if err != nil {
			if c.readErr == nil {
				c.readErr = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.credits += int(n)
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// takeCredit blocks until one frame credit is available.
func (c *Client) takeCredit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.credits == 0 && c.readErr == nil {
		c.cond.Wait()
	}
	if c.credits == 0 {
		if c.readErr == io.EOF {
			return fmt.Errorf("netio: server closed the connection")
		}
		return fmt.Errorf("netio: credit stream: %w", c.readErr)
	}
	c.credits--
	return nil
}

// Send frames and transmits records, splitting them into frames of the
// configured size. It blocks while the server withholds credits.
func (c *Client) Send(recs []parsefmt.Record) error {
	for len(recs) > 0 {
		n := c.frame
		if n > len(recs) {
			n = len(recs)
		}
		if err := c.takeCredit(); err != nil {
			return err
		}
		payload := parsefmt.Encode(c.format, recs[:n])
		if err := writeFrame(c.bw, payload); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		if err := c.bw.Flush(); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		c.sent.Add(int64(n))
		c.frames.Add(1)
		recs = recs[n:]
	}
	return nil
}

// Sent returns the records transmitted so far.
func (c *Client) Sent() int64 { return c.sent.Load() }

// Frames returns the frames transmitted so far.
func (c *Client) Frames() int64 { return c.frames.Load() }

// Close sends the end-of-stream marker, waits briefly for the server to
// finish the stream, and closes the connection.
func (c *Client) Close() error {
	err := writeFrame(c.bw, nil)
	if err == nil {
		err = c.bw.Flush()
	}
	if tc, ok := c.conn.(*net.TCPConn); ok && err == nil {
		tc.CloseWrite()
	}
	// Wait for the server's side of the close so in-flight frames are
	// consumed before the socket fully tears down.
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
	}
	c.conn.Close()
	return err
}
