package netio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/parsefmt"
)

// defaultFrameRecords is the records-per-frame default shared by the
// client and the feed's row-path column sizing.
const defaultFrameRecords = 512

// ClientConfig configures a Dial.
type ClientConfig struct {
	// Format selects the payload encoding (default JSON, the zero
	// value; loadgen defaults to PB). Columnar needs a wire-version-2
	// server; against an older one Dial falls back to PB on a fresh
	// connection unless NoFallback is set.
	Format parsefmt.Format
	// NoFallback makes Dial fail, rather than retry with PB, when the
	// server rejects the columnar format.
	NoFallback bool
	// FrameRecords is the number of records per frame (0 picks 512).
	FrameRecords int
	// DialTimeout bounds connection establishment and the handshake
	// (0 picks 10s).
	DialTimeout time.Duration
}

// Client is one ingest connection: it frames and encodes records,
// respecting the server's credit window — Send blocks while the server
// withholds credits (engine backpressure). A columnar client builds
// column-major frames directly; SendColumns streams column buffers to
// the wire without materializing records at all.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	format  parsefmt.Format
	version byte
	frame   int

	mu      sync.Mutex
	cond    *sync.Cond
	credits int
	readErr error

	// chunk and scatter are reusable staging for the columnar send
	// path: chunk holds per-frame column views, scatter the columns
	// Send scatters records into.
	chunk   [][]uint64
	scatter [][]uint64

	sent   atomic.Int64
	frames atomic.Int64
	done   chan struct{}
}

// Dial connects and handshakes with an ingest server. A columnar dial
// rejected by a row-only (wire version 1) server is retried once with
// the PB format unless cfg.NoFallback is set; check Format on the
// returned client for the format actually negotiated.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	c, err := dialOnce(addr, cfg)
	if err != nil && errors.Is(err, errFormatRejected) && cfg.Format == parsefmt.Columnar && !cfg.NoFallback {
		cfg.Format = parsefmt.PB
		return dialOnce(addr, cfg)
	}
	return c, err
}

func dialOnce(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.FrameRecords <= 0 {
		cfg.FrameRecords = defaultFrameRecords
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := writeHello(conn, cfg.Format, helloVersionFor(cfg.Format)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netio: hello: %w", err)
	}
	credits, version, err := readAck(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, writeBufSize(cfg)),
		format:  cfg.Format,
		version: version,
		frame:   cfg.FrameRecords,
		credits: credits,
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.creditLoop()
	return c, nil
}

// writeBufSize sizes the send buffer: row formats batch fine at 64 KiB;
// columnar sizes to roughly one frame so a frame flushes in few writes.
func writeBufSize(cfg ClientConfig) int {
	size := 64 << 10
	if cfg.Format == parsefmt.Columnar {
		size = cfg.FrameRecords*7*8 + 64
	}
	if size < 64<<10 {
		size = 64 << 10
	}
	if size > 1<<20 {
		size = 1 << 20
	}
	return size
}

// Format returns the payload format negotiated at dial time (PB when a
// columnar dial fell back).
func (c *Client) Format() parsefmt.Format { return c.format }

// creditLoop consumes the server's credit grants.
func (c *Client) creditLoop() {
	defer close(c.done)
	for {
		n, err := readCredit(c.conn)
		c.mu.Lock()
		if err != nil {
			if c.readErr == nil {
				c.readErr = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.credits += int(n)
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// takeCredit blocks until one frame credit is available.
func (c *Client) takeCredit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.credits == 0 && c.readErr == nil {
		c.cond.Wait()
	}
	if c.credits == 0 {
		if c.readErr == io.EOF {
			return fmt.Errorf("netio: server closed the connection")
		}
		return fmt.Errorf("netio: credit stream: %w", c.readErr)
	}
	c.credits--
	return nil
}

// Send frames and transmits records, splitting them into frames of the
// configured size. It blocks while the server withholds credits. On a
// columnar connection the records are scattered into column staging
// first; callers holding column data should prefer SendColumns, which
// skips record materialization entirely.
func (c *Client) Send(recs []parsefmt.Record) error {
	if c.format == parsefmt.Columnar {
		return c.SendColumns(c.scatterRecords(recs))
	}
	for len(recs) > 0 {
		n := c.frame
		if n > len(recs) {
			n = len(recs)
		}
		if err := c.takeCredit(); err != nil {
			return err
		}
		payload := parsefmt.Encode(c.format, recs[:n])
		if err := writeFrame(c.bw, payload); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		if err := c.bw.Flush(); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		c.sent.Add(int64(n))
		c.frames.Add(1)
		recs = recs[n:]
	}
	return nil
}

// scatterRecords transposes records into the client's reusable column
// staging.
func (c *Client) scatterRecords(recs []parsefmt.Record) [][]uint64 {
	if c.scatter == nil {
		c.scatter = make([][]uint64, 7)
	}
	for i := range c.scatter {
		if cap(c.scatter[i]) < len(recs) {
			c.scatter[i] = make([]uint64, len(recs))
		}
		c.scatter[i] = c.scatter[i][:len(recs)]
	}
	for r, rec := range recs {
		rc := rec.Cols()
		for i := range c.scatter {
			c.scatter[i][r] = rc[i]
		}
	}
	return c.scatter
}

// SendColumns frames and transmits a column-major batch over a columnar
// connection, splitting the rows into frames of the configured size.
// The column slices are written to the wire directly — on little-endian
// hosts without any re-encoding. It blocks while the server withholds
// credits.
func (c *Client) SendColumns(cols [][]uint64) error {
	if c.format != parsefmt.Columnar {
		return fmt.Errorf("netio: SendColumns on a %v connection", c.format)
	}
	if len(cols) == 0 || len(cols[0]) == 0 {
		return nil
	}
	nrows := len(cols[0])
	for _, col := range cols[1:] {
		if len(col) != nrows {
			return fmt.Errorf("netio: ragged columns (%d vs %d rows)", len(col), nrows)
		}
	}
	if cap(c.chunk) < len(cols) {
		c.chunk = make([][]uint64, len(cols))
	}
	chunk := c.chunk[:len(cols)]
	for lo := 0; lo < nrows; lo += c.frame {
		hi := lo + c.frame
		if hi > nrows {
			hi = nrows
		}
		for i := range cols {
			chunk[i] = cols[i][lo:hi]
		}
		if err := c.takeCredit(); err != nil {
			return err
		}
		if err := writeColumnarFrame(c.bw, chunk); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		if err := c.bw.Flush(); err != nil {
			return fmt.Errorf("netio: send: %w", err)
		}
		c.sent.Add(int64(hi - lo))
		c.frames.Add(1)
	}
	return nil
}

// Sent returns the records transmitted so far.
func (c *Client) Sent() int64 { return c.sent.Load() }

// Frames returns the frames transmitted so far.
func (c *Client) Frames() int64 { return c.frames.Load() }

// Close sends the end-of-stream marker, waits briefly for the server to
// finish the stream, and closes the connection.
func (c *Client) Close() error {
	err := writeFrame(c.bw, nil)
	if err == nil {
		err = c.bw.Flush()
	}
	if tc, ok := c.conn.(*net.TCPConn); ok && err == nil {
		tc.CloseWrite()
	}
	// Wait for the server's side of the close so in-flight frames are
	// consumed before the socket fully tears down.
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
	}
	c.conn.Close()
	return err
}
