package netio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/faultinject"
	"streambox/internal/parsefmt"
)

// defaultFrameRecords is the records-per-frame default shared by the
// client and the feed's row-path column sizing.
const defaultFrameRecords = 512

// defaultReplayFrames bounds the session replay buffer: frames sent but
// not yet cumulatively acked. It must exceed the server's credit window
// (default 16) or the send path would stall waiting on acks it has no
// credit to provoke.
const defaultReplayFrames = 64

// ReconnectConfig enables automatic reconnection with exponential
// backoff and jitter. With it set, Dial retries handshake failures
// (connection refused, server shedding with ErrOverloaded), and — when
// the server speaks wire version 3 — the client runs a resumable
// session: mid-stream connection losses trigger a transparent
// reconnect, resume, and replay of unacked frames, with the server
// deduplicating by frame sequence number.
type ReconnectConfig struct {
	// MaxRetries caps the dial attempts per outage (0 picks 8; negative
	// retries forever).
	MaxRetries int
	// BaseDelay is the first backoff delay (0 picks 50ms); each retry
	// multiplies it by Multiplier (0 picks 2) up to MaxDelay (0 picks 2s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the random fraction added to each delay, in [0,1]
	// (0 picks 0.2; negative disables jitter).
	Jitter float64
	// Seed drives the deterministic jitter sequence.
	Seed uint64
}

func (rc *ReconnectConfig) withDefaults() ReconnectConfig {
	out := *rc
	if out.MaxRetries == 0 {
		out.MaxRetries = 8
	}
	if out.BaseDelay <= 0 {
		out.BaseDelay = 50 * time.Millisecond
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 2 * time.Second
	}
	if out.Multiplier <= 1 {
		out.Multiplier = 2
	}
	if out.Jitter == 0 {
		out.Jitter = 0.2
	}
	return out
}

// ClientConfig configures a Dial.
type ClientConfig struct {
	// Format selects the payload encoding (default JSON, the zero
	// value; loadgen defaults to PB). Columnar needs a wire-version-2
	// server; against an older one Dial falls back to PB on a fresh
	// connection unless NoFallback is set.
	Format parsefmt.Format
	// NoFallback makes Dial fail, rather than retry with PB, when the
	// server rejects the columnar format.
	NoFallback bool
	// FrameRecords is the number of records per frame (0 picks 512).
	FrameRecords int
	// DialTimeout bounds connection establishment and the handshake
	// (0 picks 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (and the end-of-stream
	// marker); a stalled or half-open server surfaces as a *TimeoutError
	// instead of blocking Send forever. In session mode a write timeout
	// triggers a reconnect instead. Zero disables the deadline.
	WriteTimeout time.Duration
	// Reconnect enables automatic reconnection (and, against a wire
	// version 3 server, exactly-once session resume). Nil disables both:
	// any connection error surfaces to the caller.
	Reconnect *ReconnectConfig
	// ReplayFrames bounds the session replay buffer in frames (0 picks
	// 64). Larger buffers ride out longer ack gaps; the buffer holds
	// encoded payload copies, so memory is ReplayFrames × frame size.
	ReplayFrames int
	// Faults, when non-nil and enabled, wraps the connection with the
	// fault injector after each successful handshake — chaos tests
	// inject resets, partial writes, and corruption on the client side
	// while handshakes stay clean so reconnects converge.
	Faults *faultinject.Injector
}

// replayFrame is one unacked frame parked in the session replay buffer.
type replayFrame struct {
	seq     uint64
	payload []byte
}

// Client is one ingest stream: it frames and encodes records,
// respecting the server's credit window — Send blocks while the server
// withholds credits (engine backpressure). A columnar client builds
// column-major frames directly; SendColumns streams column buffers to
// the wire without materializing records at all.
//
// With a ReconnectConfig against a version >= 3 server the client is a
// resumable session rather than a single connection: every frame
// carries a sequence number and is parked in a bounded replay buffer
// until the server's cumulative ack covers it, and a lost connection is
// replaced by redial + resume + replay without losing or duplicating a
// record. Send and Close hide all of that; Reconnects and Replayed
// expose how often it happened.
type Client struct {
	cfg    ClientConfig
	rc     ReconnectConfig // defaults applied; valid only when cfg.Reconnect != nil
	addr   string
	format parsefmt.Format
	frame  int

	// session/token/version are fixed after Dial (the first handshake
	// decides whether the server can run a session at all).
	session bool
	token   uint64
	version byte

	conn net.Conn      // current connection; app goroutine + stale check
	bw   *bufio.Writer // app goroutine only

	mu      sync.Mutex
	cond    *sync.Cond
	credits int
	readErr error
	done    chan struct{} // current creditLoop's exit
	acked   uint64        // server's cumulative ack
	maxTx   uint64        // highest seq ever written to any connection
	replay  []replayFrame

	txSeq   uint64 // highest seq written to the *current* connection
	nextSeq uint64 // seq assigned to the next new frame

	// chunk and scatter are reusable staging for the columnar send
	// path: chunk holds per-frame column views, scatter the columns
	// Send scatters records into.
	chunk   [][]uint64
	scatter [][]uint64

	sent       atomic.Int64
	frames     atomic.Int64
	reconnects atomic.Int64
	replayed   atomic.Int64

	prng uint64 // jitter state
}

// Dial connects and handshakes with an ingest server. A columnar dial
// rejected by a row-only (wire version 1) server is retried once with
// the PB format unless cfg.NoFallback is set; check Format on the
// returned client for the format actually negotiated. With
// cfg.Reconnect set, dial-time failures (connection refused, shedding)
// are retried with backoff before giving up.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	dial := func() (*Client, error) {
		c, err := dialOnce(addr, cfg)
		if err != nil && errors.Is(err, errFormatRejected) && cfg.Format == parsefmt.Columnar && !cfg.NoFallback {
			fb := cfg
			fb.Format = parsefmt.PB
			return dialOnce(addr, fb)
		}
		return c, err
	}
	if cfg.Reconnect == nil {
		return dial()
	}
	rc := cfg.Reconnect.withDefaults()
	prng := rc.Seed
	delay := rc.BaseDelay
	var lastErr error
	for attempt := 0; rc.MaxRetries < 0 || attempt <= rc.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(jitteredDelay(&prng, &delay, rc))
		}
		c, err := dial()
		if err == nil {
			c.prng = prng
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("netio: dial retries exhausted: %w", lastErr)
}

// jitteredDelay returns the next backoff delay and advances the state:
// the current delay plus its jitter fraction, with the base delay
// growing geometrically toward rc.MaxDelay.
func jitteredDelay(prng *uint64, delay *time.Duration, rc ReconnectConfig) time.Duration {
	d := *delay
	if rc.Jitter > 0 {
		*prng = splitmix64(*prng + 1)
		frac := float64(*prng>>11) / (1 << 53)
		d += time.Duration(float64(d) * rc.Jitter * frac)
	}
	next := time.Duration(float64(*delay) * rc.Multiplier)
	if next > rc.MaxDelay {
		next = rc.MaxDelay
	}
	*delay = next
	return d
}

func dialOnce(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.FrameRecords <= 0 {
		cfg.FrameRecords = defaultFrameRecords
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.ReplayFrames <= 0 {
		cfg.ReplayFrames = defaultReplayFrames
	}
	c := &Client{
		cfg:    cfg,
		addr:   addr,
		format: cfg.Format,
		frame:  cfg.FrameRecords,
	}
	if cfg.Reconnect != nil {
		c.rc = cfg.Reconnect.withDefaults()
	}
	c.cond = sync.NewCond(&c.mu)
	conn, credits, version, token, lastSeq, err := c.handshake(0)
	if err != nil {
		return nil, err
	}
	c.version = version
	c.session = token != 0
	c.token = token
	c.acked = lastSeq
	c.maxTx = lastSeq
	c.txSeq = lastSeq
	c.nextSeq = lastSeq + 1
	c.install(conn, credits)
	return c, nil
}

// handshake dials and runs the full exchange: hello, ack, and — when a
// session is wanted — the resume request and session grant. token is
// the session to resume (0 asks for a fresh one); the returned token is
// 0 when no session was negotiated.
func (c *Client) handshake(token uint64) (conn net.Conn, credits int, version byte, gotToken, lastSeq uint64, err error) {
	cfg := c.cfg
	wantSession := cfg.Reconnect != nil
	conn, err = net.DialTimeout("tcp", c.addr, cfg.DialTimeout)
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	var flags byte
	if wantSession {
		flags |= helloFlagSession
	}
	if err := writeHello(conn, cfg.Format, helloVersionFor(cfg.Format, wantSession), flags); err != nil {
		conn.Close()
		return nil, 0, 0, 0, 0, fmt.Errorf("netio: hello: %w", err)
	}
	credits, version, err = readAck(conn)
	if err != nil {
		conn.Close()
		return nil, 0, 0, 0, 0, err
	}
	if wantSession && version >= 3 {
		if err := writeResume(conn, token); err != nil {
			conn.Close()
			return nil, 0, 0, 0, 0, fmt.Errorf("netio: resume request: %w", err)
		}
		gotToken, lastSeq, err = readSessionGrant(conn)
		if err != nil {
			conn.Close()
			return nil, 0, 0, 0, 0, err
		}
		if gotToken == 0 {
			conn.Close()
			return nil, 0, 0, 0, 0, ErrSessionExpired
		}
		if token != 0 && gotToken != token {
			conn.Close()
			return nil, 0, 0, 0, 0, fmt.Errorf("netio: session grant token mismatch")
		}
	}
	conn.SetDeadline(time.Time{})
	return cfg.Faults.WrapConn(conn), credits, version, gotToken, lastSeq, nil
}

// install makes conn the client's live connection and starts its credit
// loop.
func (c *Client) install(conn net.Conn, credits int) {
	done := make(chan struct{})
	c.mu.Lock()
	c.conn = conn
	c.credits = credits
	c.readErr = nil
	c.done = done
	c.mu.Unlock()
	c.bw = bufio.NewWriterSize(conn, writeBufSize(c.cfg))
	go c.creditLoop(conn, done)
}

// writeBufSize sizes the send buffer: row formats batch fine at 64 KiB;
// columnar sizes to roughly one frame so a frame flushes in few writes.
func writeBufSize(cfg ClientConfig) int {
	size := 64 << 10
	if cfg.Format == parsefmt.Columnar {
		size = cfg.FrameRecords*7*8 + 64
	}
	if size < 64<<10 {
		size = 64 << 10
	}
	if size > 1<<20 {
		size = 1 << 20
	}
	return size
}

// Format returns the payload format negotiated at dial time (PB when a
// columnar dial fell back).
func (c *Client) Format() parsefmt.Format { return c.format }

// Session reports whether the client negotiated a resumable session.
func (c *Client) Session() bool { return c.session }

// Reconnects returns how many times the client successfully reconnected
// and resumed mid-stream.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Replayed returns how many frames were retransmitted after resumes.
func (c *Client) Replayed() int64 { return c.replayed.Load() }

// creditLoop consumes the server's credit grants for one connection; in
// session mode each grant carries the cumulative ack that trims the
// replay buffer. It exits — marking the connection dead for
// takeCredit — when the read fails or the connection is superseded.
func (c *Client) creditLoop(conn net.Conn, done chan struct{}) {
	defer close(done)
	for {
		var n uint32
		var last uint64
		var err error
		if c.session {
			n, last, err = readCreditAck(conn)
		} else {
			n, err = readCredit(conn)
		}
		c.mu.Lock()
		if c.conn != conn {
			c.mu.Unlock()
			return // superseded by a reconnect
		}
		if err != nil {
			if c.readErr == nil {
				c.readErr = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.credits += int(n)
		if c.session && last > c.acked && last <= c.maxTx {
			// last <= maxTx guards against a corrupted ack claiming
			// frames the client never sent; a real cumulative ack can
			// only cover transmitted frames.
			c.acked = last
			c.trimReplayLocked()
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// trimReplayLocked drops the acked prefix of the replay buffer. Caller
// holds c.mu.
func (c *Client) trimReplayLocked() {
	k := 0
	for k < len(c.replay) && c.replay[k].seq <= c.acked {
		c.replay[k].payload = nil
		k++
	}
	if k > 0 {
		c.replay = append(c.replay[:0], c.replay[k:]...)
	}
}

// takeCredit blocks until one frame credit is available.
func (c *Client) takeCredit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.credits == 0 && c.readErr == nil {
		c.cond.Wait()
	}
	if c.credits == 0 {
		if c.readErr == io.EOF {
			return fmt.Errorf("netio: server closed the connection")
		}
		return fmt.Errorf("netio: credit stream: %w", c.readErr)
	}
	c.credits--
	return nil
}

// armWrite sets the per-frame write deadline; mapWriteErr converts a
// missed one into the typed *TimeoutError.
func (c *Client) armWrite() {
	if c.cfg.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
}

func (c *Client) mapWriteErr(op string, err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if c.cfg.WriteTimeout > 0 && errors.As(err, &ne) && ne.Timeout() {
		return &TimeoutError{Op: op, After: c.cfg.WriteTimeout}
	}
	return err
}

// reconnect replaces a dead connection: backoff, redial, resume the
// session, trim the replay buffer to the server's ack, and rewind txSeq
// so pump retransmits everything unacked. Fatal errors (session
// expired, retries exhausted) surface to the caller.
func (c *Client) reconnect() error {
	c.conn.Close()
	<-c.done // the old credit loop owns readErr until it exits
	delay := c.rc.BaseDelay
	var lastErr error
	for attempt := 0; c.rc.MaxRetries < 0 || attempt < c.rc.MaxRetries; attempt++ {
		time.Sleep(jitteredDelay(&c.prng, &delay, c.rc))
		conn, credits, _, token, lastSeq, err := c.handshake(c.token)
		if err != nil {
			if errors.Is(err, ErrSessionExpired) {
				return err
			}
			lastErr = err
			continue
		}
		_ = token
		c.mu.Lock()
		if lastSeq > c.acked && lastSeq <= c.maxTx {
			c.acked = lastSeq
			c.trimReplayLocked()
		}
		acked := c.acked
		c.mu.Unlock()
		c.txSeq = acked
		c.install(conn, credits)
		c.reconnects.Add(1)
		return nil
	}
	return fmt.Errorf("netio: reconnect retries exhausted: %w", lastErr)
}

// appendReplay parks one frame in the replay buffer, blocking while the
// buffer is full of unacked frames. A dead connection cannot produce
// acks, so a full buffer triggers the reconnect that will.
func (c *Client) appendReplay(seq uint64, payload []byte) error {
	for {
		c.mu.Lock()
		if len(c.replay) < c.cfg.ReplayFrames {
			c.replay = append(c.replay, replayFrame{seq: seq, payload: payload})
			c.mu.Unlock()
			return nil
		}
		if c.readErr != nil {
			c.mu.Unlock()
			if err := c.reconnect(); err != nil {
				return fmt.Errorf("%w: %v", ErrReplayOverflow, err)
			}
			if err := c.pump(); err != nil {
				return err
			}
			continue
		}
		c.cond.Wait()
		c.mu.Unlock()
	}
}

// nextReplay returns the first replay frame not yet written to the
// current connection.
func (c *Client) nextReplay() (replayFrame, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.replay) == 0 {
		return replayFrame{}, false
	}
	idx := int(c.txSeq + 1 - c.replay[0].seq)
	if idx < 0 || idx >= len(c.replay) {
		return replayFrame{}, false
	}
	return c.replay[idx], true
}

// pump transmits every replay-buffered frame the current connection has
// not carried yet, reconnecting (and thereby rewinding to the server's
// ack) whenever the connection dies under it.
func (c *Client) pump() error {
	for {
		fr, ok := c.nextReplay()
		if !ok {
			return nil
		}
		if err := c.takeCredit(); err != nil {
			if rerr := c.reconnect(); rerr != nil {
				return rerr
			}
			continue
		}
		c.armWrite()
		err := writeSeqFrame(c.bw, fr.seq, fr.payload)
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			if rerr := c.reconnect(); rerr != nil {
				return c.mapWriteErr("frame write", err)
			}
			continue
		}
		c.mu.Lock()
		if fr.seq > c.maxTx {
			c.maxTx = fr.seq
		} else {
			c.replayed.Add(1)
		}
		c.mu.Unlock()
		c.txSeq = fr.seq
	}
}

// sendSessionFrame assigns the next sequence number to payload (which
// the replay buffer takes ownership of), parks it, and pumps the
// connection.
func (c *Client) sendSessionFrame(payload []byte, records int) error {
	seq := c.nextSeq
	c.nextSeq++
	if err := c.appendReplay(seq, payload); err != nil {
		return err
	}
	c.sent.Add(int64(records))
	c.frames.Add(1)
	return c.pump()
}

// Send frames and transmits records, splitting them into frames of the
// configured size. It blocks while the server withholds credits. On a
// columnar connection the records are scattered into column staging
// first; callers holding column data should prefer SendColumns, which
// skips record materialization entirely.
func (c *Client) Send(recs []parsefmt.Record) error {
	if c.format == parsefmt.Columnar {
		return c.SendColumns(c.scatterRecords(recs))
	}
	for len(recs) > 0 {
		n := c.frame
		if n > len(recs) {
			n = len(recs)
		}
		payload := parsefmt.Encode(c.format, recs[:n])
		if c.session {
			if err := c.sendSessionFrame(payload, n); err != nil {
				return err
			}
			recs = recs[n:]
			continue
		}
		if err := c.takeCredit(); err != nil {
			return err
		}
		c.armWrite()
		err := writeFrame(c.bw, payload)
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			return fmt.Errorf("netio: send: %w", c.mapWriteErr("frame write", err))
		}
		c.sent.Add(int64(n))
		c.frames.Add(1)
		recs = recs[n:]
	}
	return nil
}

// scatterRecords transposes records into the client's reusable column
// staging.
func (c *Client) scatterRecords(recs []parsefmt.Record) [][]uint64 {
	if c.scatter == nil {
		c.scatter = make([][]uint64, 7)
	}
	for i := range c.scatter {
		if cap(c.scatter[i]) < len(recs) {
			c.scatter[i] = make([]uint64, len(recs))
		}
		c.scatter[i] = c.scatter[i][:len(recs)]
	}
	for r, rec := range recs {
		rc := rec.Cols()
		for i := range c.scatter {
			c.scatter[i][r] = rc[i]
		}
	}
	return c.scatter
}

// SendColumns frames and transmits a column-major batch over a columnar
// connection, splitting the rows into frames of the configured size.
// The column slices are written to the wire directly — on little-endian
// hosts without any re-encoding. It blocks while the server withholds
// credits. In session mode each frame's payload is materialized once
// into the replay buffer instead (the price of being able to replay it
// after a connection loss).
func (c *Client) SendColumns(cols [][]uint64) error {
	if c.format != parsefmt.Columnar {
		return fmt.Errorf("netio: SendColumns on a %v connection", c.format)
	}
	if len(cols) == 0 || len(cols[0]) == 0 {
		return nil
	}
	nrows := len(cols[0])
	for _, col := range cols[1:] {
		if len(col) != nrows {
			return fmt.Errorf("netio: ragged columns (%d vs %d rows)", len(col), nrows)
		}
	}
	if cap(c.chunk) < len(cols) {
		c.chunk = make([][]uint64, len(cols))
	}
	chunk := c.chunk[:len(cols)]
	for lo := 0; lo < nrows; lo += c.frame {
		hi := lo + c.frame
		if hi > nrows {
			hi = nrows
		}
		for i := range cols {
			chunk[i] = cols[i][lo:hi]
		}
		if c.session {
			if err := c.sendSessionFrame(parsefmt.EncodeColumnarFrame(chunk), hi-lo); err != nil {
				return err
			}
			continue
		}
		if err := c.takeCredit(); err != nil {
			return err
		}
		c.armWrite()
		err := writeColumnarFrame(c.bw, chunk)
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			return fmt.Errorf("netio: send: %w", c.mapWriteErr("frame write", err))
		}
		c.sent.Add(int64(hi - lo))
		c.frames.Add(1)
	}
	return nil
}

// Sent returns the records transmitted so far.
func (c *Client) Sent() int64 { return c.sent.Load() }

// Frames returns the frames transmitted so far.
func (c *Client) Frames() int64 { return c.frames.Load() }

// waitAcked blocks until every replay-buffered frame is covered by the
// server's cumulative ack, reconnecting and replaying when the
// connection dies while unacked frames remain. With a WriteTimeout
// configured, the wait is progress-bounded: a server that holds the
// connection open but stops acking (died mid-drain behind a proxy,
// wedged disk) cannot park Close forever — once no ack arrives for a
// full WriteTimeout the drain fails with a *TimeoutError.
func (c *Client) waitAcked() error {
	to := c.cfg.WriteTimeout
	var deadline time.Time
	lastAcked, armed := uint64(0), false
	for {
		c.mu.Lock()
		if len(c.replay) == 0 {
			c.mu.Unlock()
			return nil
		}
		if c.readErr != nil {
			c.mu.Unlock()
			if err := c.reconnect(); err != nil {
				return err
			}
			if err := c.pump(); err != nil {
				return err
			}
			armed = false // the resume handshake was progress; re-arm
			continue
		}
		if to > 0 {
			if !armed || c.acked != lastAcked {
				lastAcked, armed = c.acked, true
				deadline = time.Now().Add(to)
			} else if !time.Now().Before(deadline) {
				c.mu.Unlock()
				return &TimeoutError{Op: "ack drain", After: to}
			}
			// cond.Wait cannot time out on its own; a timer broadcast
			// re-checks the deadline if no ack ever wakes us.
			wake := time.AfterFunc(time.Until(deadline), c.cond.Broadcast)
			c.cond.Wait()
			wake.Stop()
		} else {
			c.cond.Wait()
		}
		c.mu.Unlock()
	}
}

// Close sends the end-of-stream marker, waits briefly for the server to
// finish the stream, and closes the connection. A session client first
// waits for the cumulative ack to cover every sent frame (reconnecting
// if needed), so Close returning nil means every record was ingested
// exactly once and the session is retired.
func (c *Client) Close() error {
	var err error
	if c.session {
		err = c.waitAcked()
		if err != nil {
			// Failed drain (timeout, reconnects exhausted): there is no
			// ack left to wait for — tear the socket down immediately
			// instead of riding the grace wait below.
			c.conn.Close()
			return err
		}
		if err == nil {
			err = c.writeEOS()
			if err != nil {
				// One reconnect attempt so the clean end of stream (and
				// the session retirement it triggers) still lands; every
				// frame is already acked, so nothing needs replaying.
				if rerr := c.reconnect(); rerr == nil {
					err = c.writeEOS()
				}
			}
		}
	} else {
		err = c.writeEOS()
	}
	if tc, ok := c.conn.(*net.TCPConn); ok && err == nil {
		tc.CloseWrite()
	}
	// Wait for the server's side of the close so in-flight frames are
	// consumed before the socket fully tears down.
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
	c.conn.Close()
	return err
}

// writeEOS sends the zero-length end-of-stream marker.
func (c *Client) writeEOS() error {
	c.armWrite()
	err := writeFrame(c.bw, nil)
	if err == nil {
		err = c.bw.Flush()
	}
	return c.mapWriteErr("end-of-stream write", err)
}
