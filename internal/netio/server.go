package netio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/parsefmt"
)

// ServerConfig configures an ingest listener.
type ServerConfig struct {
	// Feed receives decoded batches (required).
	Feed *Feed
	// AcceptShards is the number of concurrent acceptor goroutines
	// sharing the listener (0 picks 2).
	AcceptShards int
	// FrameCredits is the per-connection flow-control window in frames
	// (0 picks 16).
	FrameCredits int
	// MaxFrameBytes caps one frame's payload (0 picks 4 MiB).
	MaxFrameBytes int
	// Overloaded, when non-nil, reports engine backpressure: while it
	// returns true the server withholds credit grants, so clients stall
	// instead of the server buffering unboundedly. The serving layer
	// wires this to mempool DRAM utilization crossing the runtime's
	// backpressure threshold.
	Overloaded func() bool
	// HandshakeTimeout bounds the wait for a client hello (0 picks 10s).
	HandshakeTimeout time.Duration
}

// Counters is one scrape of the server's aggregate ingest counters.
type Counters struct {
	// Conns counts accepted connections; ActiveConns is the current
	// number still open.
	Conns, ActiveConns int64
	// Frames counts data frames received.
	Frames int64
	// IngestedRecords counts records decoded and delivered to the feed.
	IngestedRecords int64
	// DroppedRecords counts records decoded but discarded because the
	// pipeline was draining (listener closed mid-stream).
	DroppedRecords int64
	// DecodeErrors counts frames whose payload failed to decode; the
	// frame's remaining bytes are dropped.
	DecodeErrors int64
}

// ConnCounters is one connection's view for /metrics.
type ConnCounters struct {
	ID              int64
	Remote          string
	Format          string
	Frames          int64
	IngestedRecords int64
	DroppedRecords  int64
	DecodeErrors    int64
}

// serverConn is one accepted connection's state.
type serverConn struct {
	id     int64
	conn   net.Conn
	format parsefmt.Format

	frames   atomic.Int64
	ingested atomic.Int64
	dropped  atomic.Int64
	decErrs  atomic.Int64
}

// Server is the TCP ingest listener: per-connection framed decoding,
// credit-based flow control, and counters.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu      sync.Mutex
	conns   map[int64]*serverConn
	pending map[net.Conn]struct{} // accepted, handshake not yet complete
	nextID  int64

	wg      sync.WaitGroup // acceptors + connection handlers
	closing atomic.Bool
	closed  sync.Once

	accepted atomic.Int64
	frames   atomic.Int64
	ingested atomic.Int64
	dropped  atomic.Int64
	decErrs  atomic.Int64
}

// Listen starts an ingest server on addr (e.g. ":7077" or
// "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Feed == nil {
		return nil, fmt.Errorf("netio: ServerConfig.Feed is required")
	}
	if got, want := cfg.Feed.Schema().NumCols, WireSchema().NumCols; got != want {
		return nil, fmt.Errorf("netio: feed schema has %d columns, the wire format carries %d", got, want)
	}
	if cfg.AcceptShards <= 0 {
		cfg.AcceptShards = 2
	}
	if cfg.FrameCredits <= 0 {
		cfg.FrameCredits = 16
	}
	if cfg.FrameCredits > 0xFFFF {
		cfg.FrameCredits = 0xFFFF // the ack carries the grant as uint16
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, ln: ln, conns: make(map[int64]*serverConn), pending: make(map[net.Conn]struct{})}
	for i := 0; i < cfg.AcceptShards; i++ {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close gracefully shuts ingestion down: it stops accepting, severs the
// remaining connections, waits for every handler to finish, and closes
// the feed so the runtime drains and terminates. Safe to call more than
// once.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.closing.Store(true)
		s.cfg.Feed.beginShutdown()
		s.ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.conn.Close()
		}
		for c := range s.pending {
			c.Close() // sever peers still mid-handshake, too
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.cfg.Feed.closeSend()
	})
}

// Counters returns the aggregate ingest counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return Counters{
		Conns:           s.accepted.Load(),
		ActiveConns:     active,
		Frames:          s.frames.Load(),
		IngestedRecords: s.ingested.Load(),
		DroppedRecords:  s.dropped.Load(),
		DecodeErrors:    s.decErrs.Load(),
	}
}

// ConnCounters returns a per-connection counter snapshot, ordered by
// connection ID.
func (s *Server) ConnCounters() []ConnCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ConnCounters, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, ConnCounters{
			ID:              c.id,
			Remote:          c.conn.RemoteAddr().String(),
			Format:          c.format.String(),
			Frames:          c.frames.Load(),
			IngestedRecords: c.ingested.Load(),
			DroppedRecords:  c.dropped.Load(),
			DecodeErrors:    c.decErrs.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// acceptLoop is one acceptor shard.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(time.Millisecond) // transient accept error
			continue
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle runs one connection: handshake, then the frame/credit loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		return
	}
	s.pending[conn] = struct{}{}
	s.mu.Unlock()

	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	format, status, err := readHello(conn)
	s.mu.Lock()
	delete(s.pending, conn)
	s.mu.Unlock()
	if err != nil {
		writeAck(conn, status, 0)
		return
	}
	conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		return
	}
	s.nextID++
	c := &serverConn{id: s.nextID, conn: conn, format: format}
	s.conns[c.id] = c
	s.mu.Unlock()
	s.cfg.Feed.register(c.id)

	defer func() {
		// Ordered cursor retirement: the sentinel travels the feed
		// behind the connection's last batch, so the watermark cannot
		// pass data still queued. During shutdown the direct path
		// removes the cursor instead.
		if !s.cfg.Feed.push(batch{conn: c.id, retire: true}) {
			s.cfg.Feed.retire(c.id)
		}
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
	}()

	if writeAck(conn, statusOK, uint16(s.cfg.FrameCredits)) != nil {
		return
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		payload, eos, err := readFrame(br, buf, s.cfg.MaxFrameBytes)
		if err != nil || eos {
			return // clean EOS, peer gone, or oversized frame
		}
		buf = payload[:cap(payload)]
		s.frames.Add(1)
		c.frames.Add(1)

		cols, maxTs := s.decodeFrame(c, payload)
		if cols != nil {
			if s.cfg.Feed.push(batch{conn: c.id, cols: cols, maxTs: maxTs}) {
				n := int64(len(cols[0]))
				s.ingested.Add(n)
				c.ingested.Add(n)
			} else {
				// Draining: the pipeline no longer accepts records.
				n := int64(len(cols[0]))
				s.dropped.Add(n)
				c.dropped.Add(n)
				return
			}
		}

		// Credit regeneration: one credit per consumed frame, withheld
		// while the engine reports backpressure. Clients block on their
		// send window, so pipeline overload propagates to the traffic
		// sources instead of filling server memory.
		for s.cfg.Overloaded != nil && s.cfg.Overloaded() {
			if s.closing.Load() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		if writeCredit(conn, 1) != nil {
			return
		}
	}
}

// decodeFrame decodes one frame payload into a column-major batch using
// the streaming decoders (network bytes are untrusted: errors are
// counted, never fatal to the server). Returns nil when no record
// survives.
func (s *Server) decodeFrame(c *serverConn, payload []byte) ([][]uint64, uint64) {
	schema := s.cfg.Feed.Schema()
	cols := s.cfg.Feed.getCols() // recycled via Feed.Recycle
	dec := parsefmt.NewStreamDecoder(c.format, bytes.NewReader(payload))
	var maxTs uint64
	n := 0
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Malformed payload: keep the records already decoded,
			// drop the rest of the frame.
			s.decErrs.Add(1)
			c.decErrs.Add(1)
			break
		}
		rc := rec.Cols()
		for i := range cols {
			cols[i] = append(cols[i], rc[i])
		}
		if rc[schema.TsCol] > maxTs {
			maxTs = rc[schema.TsCol]
		}
		n++
	}
	if n == 0 {
		s.cfg.Feed.Recycle(cols)
		return nil, 0
	}
	return cols, maxTs
}
