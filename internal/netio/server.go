package netio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"os"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/faultinject"
	"streambox/internal/parsefmt"
)

// rowPipelineDepth is the number of frame buffers cycling between a row
// connection's read loop and its decode goroutine: enough to overlap
// socket reads with decoding, small enough that per-connection memory
// stays bounded by depth × MaxFrameBytes.
const rowPipelineDepth = 2

// ServerConfig configures an ingest listener.
type ServerConfig struct {
	// Feed receives decoded batches (required).
	Feed *Feed
	// AcceptShards is the number of concurrent acceptor goroutines
	// sharing the listener (0 picks 2).
	AcceptShards int
	// FrameCredits is the per-connection flow-control window in frames
	// (0 picks 16).
	FrameCredits int
	// MaxFrameBytes caps one frame's payload (0 picks 4 MiB).
	MaxFrameBytes int
	// MaxVersion caps the negotiated wire version (0 picks Version).
	// Setting 1 serves row-format clients only; columnar hellos are
	// acked with a format rejection and fall back.
	MaxVersion int
	// DecodeWorkers bounds the row-format decode goroutines running
	// concurrently across all connections (0 picks GOMAXPROCS), so a
	// connection flood cannot oversubscribe the cores the engine's own
	// workers need. Columnar frames bypass the decoders entirely.
	DecodeWorkers int
	// Overloaded, when non-nil, reports engine backpressure: while it
	// returns true the server withholds credit grants, so clients stall
	// instead of the server buffering unboundedly. The serving layer
	// wires this to mempool DRAM utilization crossing the runtime's
	// backpressure threshold.
	Overloaded func() bool
	// HandshakeTimeout bounds the wait for a client hello (0 picks 10s).
	HandshakeTimeout time.Duration
	// IdleTimeout bounds the steady-state wait for the next frame from a
	// connected client; a connection silent past it is severed (and, in
	// session mode, left for the reaper to park and expire). Zero
	// disables the deadline — the pre-fault-tolerance behavior.
	IdleTimeout time.Duration
	// CursorGrace is how long a detached session's watermark cursor keeps
	// holding window closes before it is parked (excluded from the
	// watermark minimum). Zero picks 10s; negative disables parking.
	CursorGrace time.Duration
	// SessionTimeout is how long a detached session stays resumable
	// before it is expired and its cursor retired. Zero picks 120s;
	// negative disables expiry.
	SessionTimeout time.Duration
	// MaxConns caps concurrently served connections; a handshake past
	// the cap is shed with a statusOverloaded ack. Zero means unlimited.
	MaxConns int
	// ShedPressure, when non-nil, sheds *new* handshakes while it
	// returns true (wired to mempool pressure past the shedding
	// threshold). Deliberately separate from Overloaded, which throttles
	// established connections by withholding credit instead.
	ShedPressure func() bool
	// Faults, when non-nil and enabled, wraps every accepted connection
	// with the fault injector (chaos testing: delayed acks, injected
	// resets on the server side of the pipe).
	Faults *faultinject.Injector
	// WAL, when non-nil, receives every accepted data frame before it is
	// delivered to the feed. Session frames are appended durably — the
	// call returns only after an fsync — and the cumulative ack advances
	// strictly afterwards, so a crash can never lose a frame the client
	// was told to forget. Sessionless frames ride the log's background
	// sync (bounded tail loss, matching their at-most-once contract).
	WAL FrameLog
	// ReapInterval overrides the session reaper's scan tick. Zero keeps
	// the automatic derivation (a quarter of the shortest enabled
	// deadline); tests with tight CursorGrace/SessionTimeout set it
	// explicitly instead of riding real-time waits.
	ReapInterval time.Duration
	// RestoreSessions seeds the session table from a recovery checkpoint
	// before the listener accepts: each entry re-arms a resume token at
	// its durable ack, detached as of startup (the reaper's grace and
	// expiry clocks start now).
	RestoreSessions []RestoredSession
	// NextConnID, when positive, is the highest connection/cursor id
	// already in use — recovery passes the highest id seen in the
	// checkpoint and log so newly minted ids cannot collide with
	// replayed cursors.
	NextConnID int64
}

// FrameLog is the write-ahead durability hook the serving layer plugs
// in (implemented by internal/wal.Log). Appends must be safe for
// concurrent use by every connection handler.
type FrameLog interface {
	// AppendFrame logs one accepted data frame. ranges, when non-nil,
	// carry each column's exact min/max (computed during the checksum
	// pass) so the log's packer skips its own scan. When durable is
	// true the call returns only once the record is on stable storage.
	AppendFrame(token uint64, conn int64, seq, maxTs uint64, cols [][]uint64, ranges []parsefmt.ColRange, durable bool) error
	// AppendSessionEnd logs that a session finished for good (clean EOS
	// or expiry), so recovery does not resurrect it.
	AppendSessionEnd(token uint64, conn int64) error
}

// RestoredSession is one recovered resumable session: its resume token,
// its stable feed-cursor id, and the durable cumulative ack clients
// resume above.
type RestoredSession struct {
	Token   uint64
	Conn    int64
	LastSeq uint64
	// Parked mirrors the checkpointed cursor state, so a session whose
	// cursor had already been parked pre-crash is restored parked and a
	// later resume unparks both session and cursor together.
	Parked bool
}

// Counters is one scrape of the server's aggregate ingest counters.
type Counters struct {
	// Conns counts accepted connections; ActiveConns is the current
	// number still open.
	Conns, ActiveConns int64
	// Frames counts data frames received; FramesByFormat splits the
	// count by wire format code.
	Frames         int64
	FramesByFormat [4]int64
	// IngestedRecords counts records decoded and delivered to the feed.
	IngestedRecords int64
	// DroppedRecords counts records decoded but discarded because the
	// pipeline was draining (listener closed mid-stream).
	DroppedRecords int64
	// DecodeErrors counts frames whose payload failed to decode
	// (malformed bytes, bad columnar geometry, oversized frames);
	// ChecksumErrors separately counts columnar frames whose payload
	// parsed but failed checksum verification — corruption in transit
	// rather than a confused or hostile sender.
	DecodeErrors   int64
	ChecksumErrors int64
	// SessionsResumed counts successful resume handshakes (a client
	// reattaching to its session after a connection loss);
	// ActiveSessions is the current number of live sessions.
	SessionsResumed int64
	ActiveSessions  int64
	// DuplicateFrames counts replayed frames discarded by sequence-number
	// dedup — frames the client retransmitted because the ack for the
	// first copy was lost with the connection.
	DuplicateFrames int64
	// ShedConns counts handshakes refused by admission control (MaxConns
	// or ShedPressure) with a statusOverloaded ack.
	ShedConns int64
	// ExpiredSessions counts detached sessions reaped past
	// SessionTimeout; ParkedCursors is the current number of watermark
	// cursors parked past CursorGrace (no longer stalling window closes).
	ExpiredSessions int64
	ParkedCursors   int64
	// IdleTimeouts counts connections severed by the steady-state
	// IdleTimeout read deadline.
	IdleTimeouts int64
}

// ConnCounters is one connection's view for /metrics.
type ConnCounters struct {
	ID              int64
	Remote          string
	Format          string
	Frames          int64
	IngestedRecords int64
	DroppedRecords  int64
	DecodeErrors    int64
	ChecksumErrors  int64
	// CreditWindow is the connection's in-flight flow-control window:
	// credits granted minus frames consumed — how many frames the
	// client may still send before blocking.
	CreditWindow int64
	// Session is true for a resumable (version >= 3, sequenced) stream;
	// DuplicateFrames counts its replayed frames discarded by dedup.
	Session         bool
	DuplicateFrames int64
}

// serverConn is one accepted connection's state. key identifies the
// accepted socket; id is the feed watermark cursor, which a resumable
// session keeps stable across its connections (so key != id after a
// resume).
type serverConn struct {
	key     int64
	id      int64
	conn    net.Conn
	format  parsefmt.Format
	version byte
	sess    *session // nil outside session mode

	// cleanEOS is set by the serve loop on a clean end-of-stream marker,
	// read by the handler's exit path (same goroutine) to decide between
	// retiring the session and leaving it resumable.
	cleanEOS bool

	frames   atomic.Int64
	ingested atomic.Int64
	dropped  atomic.Int64
	decErrs  atomic.Int64
	chkErrs  atomic.Int64
	granted  atomic.Int64
	dups     atomic.Int64
}

// session reports whether the connection carries a resumable sequenced
// stream.
func (c *serverConn) session() bool { return c.sess != nil }

// Server is the TCP ingest listener: per-connection framed decoding,
// credit-based flow control, and counters.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// decodeSem bounds concurrent row-format decode work server-wide.
	decodeSem chan struct{}

	mu      sync.Mutex
	conns   map[int64]*serverConn
	pending map[net.Conn]struct{} // accepted, handshake not yet complete
	nextID  int64

	sessions *sessionTable
	stopC    chan struct{} // closed when shutdown begins; stops the reaper

	wg      sync.WaitGroup // acceptors + connection handlers + reaper
	closing atomic.Bool
	closed  sync.Once

	accepted    atomic.Int64
	frames      atomic.Int64
	framesByFmt [4]atomic.Int64
	ingested    atomic.Int64
	dropped     atomic.Int64
	decErrs     atomic.Int64
	chkErrs     atomic.Int64
	resumed     atomic.Int64
	dups        atomic.Int64
	shed        atomic.Int64
	expired     atomic.Int64
	idleTOs     atomic.Int64

	// frameLog2 tracks, per format, the log2 of the largest frame seen —
	// a one-word histogram summary that sizes new connections' buffered
	// readers to batch socket reads around real traffic.
	frameLog2 [4]atomic.Int32
}

// Listen starts an ingest server on addr (e.g. ":7077" or
// "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Feed == nil {
		return nil, fmt.Errorf("netio: ServerConfig.Feed is required")
	}
	if got, want := cfg.Feed.Schema().NumCols, WireSchema().NumCols; got != want {
		return nil, fmt.Errorf("netio: feed schema has %d columns, the wire format carries %d", got, want)
	}
	if cfg.AcceptShards <= 0 {
		cfg.AcceptShards = 2
	}
	if cfg.FrameCredits <= 0 {
		cfg.FrameCredits = 16
	}
	if cfg.FrameCredits > 0xFFFF {
		cfg.FrameCredits = 0xFFFF // the ack carries the grant as uint16
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.MaxVersion <= 0 || cfg.MaxVersion > Version {
		cfg.MaxVersion = Version
	}
	if cfg.DecodeWorkers <= 0 {
		cfg.DecodeWorkers = goruntime.GOMAXPROCS(0)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.CursorGrace == 0 {
		cfg.CursorGrace = 10 * time.Second
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 120 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		decodeSem: make(chan struct{}, cfg.DecodeWorkers),
		conns:     make(map[int64]*serverConn),
		pending:   make(map[net.Conn]struct{}),
		sessions:  newSessionTable(),
		stopC:     make(chan struct{}),
	}
	if cfg.NextConnID > s.nextID {
		s.nextID = cfg.NextConnID
	}
	for _, rs := range cfg.RestoreSessions {
		s.sessions.restore(rs.Token, rs.Conn, rs.LastSeq, rs.Parked)
		if rs.Conn > s.nextID {
			s.nextID = rs.Conn
		}
	}
	for i := 0; i < cfg.AcceptShards; i++ {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	s.wg.Add(1)
	go s.reaper()
	return s, nil
}

// reapInterval picks how often the reaper scans detached sessions: the
// configured override when set, else a quarter of the shortest enabled
// deadline, clamped to [5ms, 500ms].
func (s *Server) reapInterval() time.Duration {
	if s.cfg.ReapInterval > 0 {
		return s.cfg.ReapInterval
	}
	d := 500 * time.Millisecond
	if g := s.cfg.CursorGrace; g > 0 && g/4 < d {
		d = g / 4
	}
	if t := s.cfg.SessionTimeout; t > 0 && t/4 < d {
		d = t / 4
	}
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// reaper walks detached sessions: past CursorGrace it parks the
// session's watermark cursor so one silent client cannot stall every
// window close; past SessionTimeout it expires the session outright,
// retiring the cursor. Both scans are disabled by negative config.
func (s *Server) reaper() {
	defer s.wg.Done()
	if s.cfg.CursorGrace < 0 && s.cfg.SessionTimeout < 0 {
		<-s.stopC
		return
	}
	tick := time.NewTicker(s.reapInterval())
	defer tick.Stop()
	for {
		select {
		case <-s.stopC:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, ss := range s.sessions.snapshot() {
			if s.cfg.SessionTimeout > 0 && ss.staleFor(now) > s.cfg.SessionTimeout {
				if s.sessions.expire(ss) {
					// No handler is alive to push a retire sentinel;
					// remove the cursor directly. Queued batches from
					// the dead connection still fold into highTs.
					s.cfg.Feed.retire(ss.id)
					s.expired.Add(1)
					if s.cfg.WAL != nil {
						// An expired session can never resume; make sure
						// recovery does not resurrect its cursor either.
						s.cfg.WAL.AppendSessionEnd(ss.token, ss.id)
					}
				}
				continue
			}
			if s.cfg.CursorGrace > 0 {
				ss.parkIfStale(now, s.cfg.CursorGrace, s.cfg.Feed)
			}
		}
	}
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close gracefully shuts ingestion down: it stops accepting, severs the
// remaining connections, waits for every handler to finish, and closes
// the feed so the runtime drains and terminates. Safe to call more than
// once.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.closing.Store(true)
		close(s.stopC)
		s.cfg.Feed.beginShutdown()
		s.ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.conn.Close()
		}
		for c := range s.pending {
			c.Close() // sever peers still mid-handshake, too
		}
		s.mu.Unlock()
		s.wg.Wait()
		// Every handler and the reaper have exited; retire the cursors of
		// sessions left detached so nothing leaks into the final drain.
		for _, ss := range s.sessions.snapshot() {
			s.sessions.remove(ss)
			s.cfg.Feed.retire(ss.id)
		}
		s.cfg.Feed.closeSend()
	})
}

// Drain is the ordered graceful shutdown: stop accepting immediately,
// wait up to grace for in-flight streams to finish cleanly (clients
// sending their end-of-stream markers), then Close — which severs
// whatever remains and flushes the feed so the runtime drains its
// windows. Safe to call concurrently with Close.
func (s *Server) Drain(grace time.Duration) {
	s.ln.Close() // acceptors exit on net.ErrClosed
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) && !s.closing.Load() {
		s.mu.Lock()
		n := len(s.conns) + len(s.pending)
		s.mu.Unlock()
		if n == 0 && s.sessions.count() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
}

// Counters returns the aggregate ingest counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	_, parked := s.cfg.Feed.liveCursors()
	c := Counters{
		Conns:           s.accepted.Load(),
		ActiveConns:     active,
		Frames:          s.frames.Load(),
		IngestedRecords: s.ingested.Load(),
		DroppedRecords:  s.dropped.Load(),
		DecodeErrors:    s.decErrs.Load(),
		ChecksumErrors:  s.chkErrs.Load(),
		SessionsResumed: s.resumed.Load(),
		ActiveSessions:  int64(s.sessions.count()),
		DuplicateFrames: s.dups.Load(),
		ShedConns:       s.shed.Load(),
		ExpiredSessions: s.expired.Load(),
		ParkedCursors:   int64(parked),
		IdleTimeouts:    s.idleTOs.Load(),
	}
	for i := range c.FramesByFormat {
		c.FramesByFormat[i] = s.framesByFmt[i].Load()
	}
	return c
}

// SessionSnapshot returns every live session's resume token, cursor id,
// and cumulative ack, for checkpointing. lastSeq is safe to persist:
// with a WAL attached it only advances after the frame is fsynced.
func (s *Server) SessionSnapshot() []RestoredSession {
	live := s.sessions.snapshot()
	out := make([]RestoredSession, 0, len(live))
	for _, ss := range live {
		out = append(out, RestoredSession{Token: ss.token, Conn: ss.id, LastSeq: ss.lastSeq.Load()})
	}
	return out
}

// NextID returns the highest connection/cursor id minted so far, for
// checkpointing (recovery passes it back as ServerConfig.NextConnID).
func (s *Server) NextID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// ConnCounters returns a per-connection counter snapshot, ordered by
// connection ID.
func (s *Server) ConnCounters() []ConnCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ConnCounters, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, ConnCounters{
			ID:              c.id,
			Remote:          c.conn.RemoteAddr().String(),
			Format:          c.format.String(),
			Frames:          c.frames.Load(),
			IngestedRecords: c.ingested.Load(),
			DroppedRecords:  c.dropped.Load(),
			DecodeErrors:    c.decErrs.Load(),
			ChecksumErrors:  c.chkErrs.Load(),
			CreditWindow:    c.granted.Load() - c.frames.Load(),
			Session:         c.session(),
			DuplicateFrames: c.dups.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// acceptLoop is one acceptor shard.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(time.Millisecond) // transient accept error
			continue
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// noteFrameSize folds one frame's size into the per-format histogram
// summary.
func (s *Server) noteFrameSize(f parsefmt.Format, n int) {
	lg := int32(bits.Len(uint(n)))
	for {
		cur := s.frameLog2[f].Load()
		if lg <= cur || s.frameLog2[f].CompareAndSwap(cur, lg) {
			return
		}
	}
}

// readBufSize picks a connection's buffered-reader size from the frame
// histogram: roughly two frames of readahead, clamped to [64 KiB,
// 1 MiB]. Columnar connections start at 256 KiB before any history
// exists — their frames are wide by design.
func (s *Server) readBufSize(f parsefmt.Format) int {
	size := 64 << 10
	if f == parsefmt.Columnar {
		size = 256 << 10
	}
	if lg := s.frameLog2[f].Load(); lg > 0 {
		size = 1 << (uint(lg) + 1)
	}
	if size < 64<<10 {
		size = 64 << 10
	}
	if size > 1<<20 {
		size = 1 << 20
	}
	return size
}

// shouldShed is the admission-control decision for one completed hello:
// shed when the connection count is at the cap or the pressure signal
// says the engine is past its memory headroom. Established connections
// are never shed — they are throttled through credit withholding
// (Overloaded) instead.
func (s *Server) shouldShed() bool {
	if s.cfg.MaxConns > 0 {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n >= s.cfg.MaxConns {
			return true
		}
	}
	return s.cfg.ShedPressure != nil && s.cfg.ShedPressure()
}

// handle runs one connection: handshake (hello, admission, optional
// session resume), then the frame/credit loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn = s.cfg.Faults.WrapConn(conn)

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		return
	}
	s.pending[conn] = struct{}{}
	s.mu.Unlock()

	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	format, version, flags, status, err := readHello(conn, byte(s.cfg.MaxVersion))
	s.mu.Lock()
	delete(s.pending, conn)
	s.mu.Unlock()
	if err != nil {
		writeAck(conn, version, status, 0)
		return
	}
	if s.shouldShed() {
		s.shed.Add(1)
		writeAck(conn, version, statusOverloaded, 0)
		return
	}

	if writeAck(conn, version, statusOK, uint16(s.cfg.FrameCredits)) != nil {
		return
	}

	// Session phase: a version >= 3 client that set the session flag now
	// sends its resume request (still under the handshake deadline).
	sessionMode := version >= 3 && flags&helloFlagSession != 0
	var sess *session
	freshSession := false
	if sessionMode {
		token, err := readResume(conn)
		if err != nil {
			return
		}
		if token == 0 {
			freshSession = true
			s.mu.Lock()
			if s.closing.Load() {
				s.mu.Unlock()
				return
			}
			s.nextID++
			id := s.nextID
			s.mu.Unlock()
			sess = s.sessions.create(id)
			s.cfg.Feed.register(id)
		} else {
			sess = s.sessions.lookup(token)
			if sess == nil {
				// Unknown or expired: the client cannot resume
				// exactly-once; tell it so and close.
				writeSessionGrant(conn, 0, 0)
				return
			}
			s.resumed.Add(1)
		}
	}
	conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		if freshSession {
			// Fresh session created above but the server is closing and
			// Close may already have walked the table; clean up here.
			s.sessions.remove(sess)
			s.cfg.Feed.retire(sess.id)
		}
		return
	}
	s.nextID++
	c := &serverConn{key: s.nextID, conn: conn, format: format, version: version, sess: sess}
	if sess != nil {
		c.id = sess.id
	} else {
		c.id = c.key
	}
	c.granted.Store(int64(s.cfg.FrameCredits))
	s.conns[c.key] = c
	s.mu.Unlock()

	if sess != nil {
		old, ok := sess.attach(c, s.cfg.Feed)
		if !ok {
			// Lost the race with expiry between lookup and attach.
			s.mu.Lock()
			delete(s.conns, c.key)
			s.mu.Unlock()
			writeSessionGrant(conn, 0, 0)
			return
		}
		if old != nil {
			old.conn.Close() // takeover: sever the half-open predecessor
		}
	} else {
		s.cfg.Feed.register(c.id)
	}

	defer func() {
		s.mu.Lock()
		delete(s.conns, c.key)
		s.mu.Unlock()
		switch {
		case sess == nil:
			// Ordered cursor retirement: the sentinel travels the feed
			// behind the connection's last batch, so the watermark
			// cannot pass data still queued. During shutdown the direct
			// path removes the cursor instead.
			if !s.cfg.Feed.push(batch{conn: c.id, retire: true}) {
				s.cfg.Feed.retire(c.id)
			}
		case c.cleanEOS:
			// Clean end of stream ends the session for good.
			s.sessions.remove(sess)
			if s.cfg.WAL != nil {
				s.cfg.WAL.AppendSessionEnd(sess.token, c.id)
			}
			if !s.cfg.Feed.push(batch{conn: c.id, retire: true}) {
				s.cfg.Feed.retire(c.id)
			}
		default:
			// Abnormal exit: leave the session resumable, its cursor
			// live. The reaper parks and eventually expires it; a
			// detach that fails means another connection already took
			// the session over and owns the cursor now.
			sess.detach(c)
		}
	}()

	if sess != nil {
		if writeSessionGrant(conn, sess.token, sess.lastSeq.Load()) != nil {
			return
		}
	}

	br := bufio.NewReaderSize(conn, s.readBufSize(format))
	if format == parsefmt.Columnar {
		s.serveColumnar(c, br)
	} else {
		s.serveRows(c, br)
	}
}

// armIdle sets the steady-state read deadline before one frame read;
// noteReadErr classifies the read error that ends a serve loop.
func (s *Server) armIdle(c *serverConn) {
	if s.cfg.IdleTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
}

func (s *Server) noteReadErr(err error) {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		s.idleTOs.Add(1)
	}
}

// grantCredit regenerates one frame credit after the engine's
// backpressure clears. Clients block on their send window, so pipeline
// overload propagates to the traffic sources instead of filling server
// memory. Returns false when the connection should end.
func (s *Server) grantCredit(c *serverConn) bool {
	for s.cfg.Overloaded != nil && s.cfg.Overloaded() {
		if s.closing.Load() {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	var err error
	if c.session() {
		// The session grant doubles as the cumulative ack: lastSeq lets
		// the client trim its replay buffer.
		err = writeCreditAck(c.conn, 1, c.sess.lastSeq.Load())
	} else {
		err = writeCredit(c.conn, 1)
	}
	if err != nil {
		return false
	}
	c.granted.Add(1)
	return true
}

// countDecodeError attributes one undecodable frame.
func (s *Server) countDecodeError(c *serverConn) {
	s.decErrs.Add(1)
	c.decErrs.Add(1)
}

// serveColumnar runs a columnar connection's receive loop: frame
// payload bytes are read directly from the socket into pooled column
// slabs — no intermediate payload buffer, no per-record work, just
// geometry validation, an endian fix (a no-op on little-endian hosts)
// and a checksum scan. A single goroutine per connection keeps frame
// delivery sequential, which the feed's watermark cursors require.
func (s *Server) serveColumnar(c *serverConn, br *bufio.Reader) {
	schema := s.cfg.Feed.Schema()
	var hdrBuf [parsefmt.ColumnarHeaderBytes]byte
	session := c.session()
	var expect uint64
	if session {
		expect = c.sess.lastSeq.Load() + 1
	}
	// With a WAL attached, the checksum pass doubles as the packer's
	// column scan: it fills ranges with each column's min/max, and the
	// timestamp column's max is the frame's maxTs — no extra pass over
	// the frame anywhere on the logging path.
	var ranges []parsefmt.ColRange
	if s.cfg.WAL != nil {
		ranges = make([]parsefmt.ColRange, schema.NumCols)
	}
	for {
		s.armIdle(c)
		size, seq, eos, err := readFrameHeader(br, session)
		if err != nil {
			s.noteReadErr(err)
			return // peer gone or idle-timed out
		}
		if eos {
			c.cleanEOS = true
			return
		}
		if size > int64(s.cfg.MaxFrameBytes) {
			s.countDecodeError(c)
			return // oversized frame: refuse to stream that much hostile data
		}
		s.frames.Add(1)
		c.frames.Add(1)
		s.framesByFmt[parsefmt.Columnar].Add(1)
		s.noteFrameSize(parsefmt.Columnar, int(size))

		if session {
			if seq < expect {
				// A replayed frame the server already ingested under a
				// previous connection: discard, but still re-grant the
				// credit it consumed.
				if _, err := io.CopyN(io.Discard, br, size); err != nil {
					return
				}
				s.dups.Add(1)
				c.dups.Add(1)
				if !s.grantCredit(c) {
					return
				}
				continue
			}
			if seq != expect {
				return // sequence gap: sever so the client replays
			}
		}

		if size < parsefmt.ColumnarHeaderBytes {
			if session {
				s.countDecodeError(c)
				return // can't trust the stream; the client replays
			}
			if _, err := io.CopyN(io.Discard, br, size); err != nil {
				return
			}
			s.countDecodeError(c)
			if !s.grantCredit(c) {
				return
			}
			continue
		}
		if _, err := io.ReadFull(br, hdrBuf[:]); err != nil {
			return
		}
		body := size - parsefmt.ColumnarHeaderBytes
		hdr, err := parsefmt.ParseColumnarHeader(hdrBuf[:])
		if err != nil || hdr.NCols != schema.NumCols || parsefmt.ColumnarDataBytes(hdr.NCols, hdr.NRows) != body {
			// Malformed geometry. A sessionless connection drops the
			// frame's remaining bytes and keeps going — the framing
			// layer is still intact. A session severs without advancing
			// lastSeq: the client retransmits the frame, which is how a
			// corrupted-in-flight frame gets delivered after all.
			if session {
				s.countDecodeError(c)
				return
			}
			if _, err := io.CopyN(io.Discard, br, body); err != nil {
				return
			}
			s.countDecodeError(c)
			if !s.grantCredit(c) {
				return
			}
			continue
		}

		cols := s.cfg.Feed.borrowCols(hdr.NRows)
		short := false
		for i := range cols {
			if _, err := io.ReadFull(br, parsefmt.ColumnBytes(cols[i])); err != nil {
				short = true
				break
			}
			parsefmt.FixWireOrder(cols[i])
		}
		if short {
			s.cfg.Feed.Recycle(cols)
			return // truncated mid-frame: peer gone
		}
		var sum uint64
		if ranges != nil {
			sum = parsefmt.ChecksumColumnsRanges(cols, ranges)
		} else {
			sum = parsefmt.ChecksumColumns(cols)
		}
		if sum != hdr.Checksum {
			s.cfg.Feed.Recycle(cols)
			s.chkErrs.Add(1)
			c.chkErrs.Add(1)
			if session {
				return // sever without advancing: the client replays
			}
			if !s.grantCredit(c) {
				return
			}
			continue
		}

		var maxTs uint64
		if ranges != nil {
			maxTs = ranges[schema.TsCol].Max
		} else {
			for _, ts := range cols[schema.TsCol] {
				if ts > maxTs {
					maxTs = ts
				}
			}
		}
		if s.cfg.WAL != nil {
			// Durability before delivery, delivery before ack: a session
			// frame is fsynced here, pushed below, and only then reflected
			// in lastSeq — so the client's replay buffer and the log
			// together cover every frame across a crash, with no overlap
			// the dedup line cannot absorb.
			var tok uint64
			if session {
				tok = c.sess.token
			}
			if err := s.cfg.WAL.AppendFrame(tok, c.id, seq, maxTs, cols, ranges, session); err != nil {
				// The frame's durability is unknown; sever without
				// advancing the ack so a session client replays it.
				s.cfg.Feed.Recycle(cols)
				return
			}
		}
		n := int64(hdr.NRows)
		if !s.cfg.Feed.push(batch{conn: c.id, cols: cols, maxTs: maxTs}) {
			s.dropped.Add(n)
			c.dropped.Add(n)
			return // draining: the pipeline no longer accepts records
		}
		s.ingested.Add(n)
		c.ingested.Add(n)
		if session {
			c.sess.lastSeq.Store(seq)
			expect = seq + 1
		}
		if !s.grantCredit(c) {
			return
		}
	}
}

// rowFrame is one received row-format frame riding the work channel to
// the decode goroutine, carrying its sequence number in session mode.
type rowFrame struct {
	payload []byte
	seq     uint64
}

// serveRows runs a row-format connection: the socket read loop and the
// decoder are pipelined over a small ring of frame buffers, so the next
// frame streams in while the previous one parses.
func (s *Server) serveRows(c *serverConn, br *bufio.Reader) {
	work := make(chan rowFrame, rowPipelineDepth)
	free := make(chan []byte, rowPipelineDepth)
	for i := 0; i < rowPipelineDepth; i++ {
		free <- nil
	}
	done := make(chan struct{})
	go s.decodeRows(c, work, free, done)
	defer func() {
		close(work)
		<-done
	}()
	session := c.session()
	// expect is the read loop's local dedup line: it runs ahead of the
	// session's lastSeq by the frames still in the decode pipeline, so
	// an in-order frame behind an undecoded one is not mistaken for a
	// gap. lastSeq itself only advances once the decoder consumes the
	// frame.
	var expect uint64
	if session {
		expect = c.sess.lastSeq.Load() + 1
	}
	for {
		buf := <-free
		s.armIdle(c)
		size, seq, eos, err := readFrameHeader(br, session)
		if err != nil {
			s.noteReadErr(err)
			return // peer gone or idle-timed out
		}
		if eos {
			c.cleanEOS = true
			return
		}
		if size > int64(s.cfg.MaxFrameBytes) {
			s.countDecodeError(c)
			return // oversized frame
		}
		s.frames.Add(1)
		c.frames.Add(1)
		s.framesByFmt[c.format].Add(1)
		s.noteFrameSize(c.format, int(size))
		if session {
			if seq < expect {
				// Replayed frame already ingested: discard and re-grant.
				if _, err := io.CopyN(io.Discard, br, size); err != nil {
					return
				}
				s.dups.Add(1)
				c.dups.Add(1)
				free <- buf
				if !s.grantCredit(c) {
					return
				}
				continue
			}
			if seq != expect {
				return // sequence gap: sever so the client replays
			}
			expect = seq + 1
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		payload := buf[:size]
		if _, err := io.ReadFull(br, payload); err != nil {
			return // truncated mid-frame: peer gone
		}
		work <- rowFrame{payload: payload, seq: seq}
	}
}

// decodeRows is a row connection's decode half: parse each frame (under
// the server-wide decode-worker bound), deliver the batch, regenerate
// the client's credit, and hand the frame buffer back to the read loop.
// Frames decode strictly in arrival order — the feed's watermark cursor
// advances per delivered batch, so reordering could close a window past
// records still in flight. On a fatal condition it severs the
// connection (unblocking the read loop) and drains remaining buffers.
func (s *Server) decodeRows(c *serverConn, work chan rowFrame, free chan []byte, done chan struct{}) {
	defer close(done)
	fatal := false
	for fr := range work {
		if fatal {
			free <- fr.payload
			continue
		}
		s.decodeSem <- struct{}{}
		cols, maxTs := s.decodeFrame(c, fr.payload)
		<-s.decodeSem
		free <- fr.payload[:cap(fr.payload)]
		if cols != nil {
			if s.cfg.WAL != nil {
				// Log the decoded columnar form — replay re-enters the
				// feed without needing the original wire encoding. Same
				// ordering contract as the columnar path: fsync (for
				// sessions) before delivery, delivery before the ack.
				var tok uint64
				if c.session() {
					tok = c.sess.token
				}
				if err := s.cfg.WAL.AppendFrame(tok, c.id, fr.seq, maxTs, cols, nil, c.session()); err != nil {
					s.cfg.Feed.Recycle(cols)
					fatal = true
					c.conn.Close()
					continue
				}
			}
			n := int64(len(cols[0]))
			if s.cfg.Feed.push(batch{conn: c.id, cols: cols, maxTs: maxTs}) {
				s.ingested.Add(n)
				c.ingested.Add(n)
			} else {
				// Draining: the pipeline no longer accepts records.
				s.dropped.Add(n)
				c.dropped.Add(n)
				fatal = true
				c.conn.Close()
				continue
			}
		}
		if c.session() {
			// The frame is consumed — decoded, or counted as a decode
			// error that a replay of the same bytes could not improve
			// (row formats carry no checksum). Advance the cumulative
			// ack so the client trims its replay buffer.
			c.sess.lastSeq.Store(fr.seq)
		}
		if !s.grantCredit(c) {
			fatal = true
			c.conn.Close()
		}
	}
}

// decodeFrame decodes one frame payload into a column-major batch using
// the streaming decoders (network bytes are untrusted: errors are
// counted, never fatal to the server). Returns nil when no record
// survives.
func (s *Server) decodeFrame(c *serverConn, payload []byte) ([][]uint64, uint64) {
	schema := s.cfg.Feed.Schema()
	cols := s.cfg.Feed.getCols() // recycled via Feed.Recycle
	dec := parsefmt.NewStreamDecoder(c.format, bytes.NewReader(payload))
	var maxTs uint64
	n := 0
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Malformed payload: keep the records already decoded,
			// drop the rest of the frame.
			s.countDecodeError(c)
			break
		}
		rc := rec.Cols()
		for i := range cols {
			cols[i] = append(cols[i], rc[i])
		}
		if rc[schema.TsCol] > maxTs {
			maxTs = rc[schema.TsCol]
		}
		n++
	}
	if n == 0 {
		s.cfg.Feed.Recycle(cols)
		return nil, 0
	}
	return cols, maxTs
}
