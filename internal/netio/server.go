package netio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streambox/internal/parsefmt"
)

// rowPipelineDepth is the number of frame buffers cycling between a row
// connection's read loop and its decode goroutine: enough to overlap
// socket reads with decoding, small enough that per-connection memory
// stays bounded by depth × MaxFrameBytes.
const rowPipelineDepth = 2

// ServerConfig configures an ingest listener.
type ServerConfig struct {
	// Feed receives decoded batches (required).
	Feed *Feed
	// AcceptShards is the number of concurrent acceptor goroutines
	// sharing the listener (0 picks 2).
	AcceptShards int
	// FrameCredits is the per-connection flow-control window in frames
	// (0 picks 16).
	FrameCredits int
	// MaxFrameBytes caps one frame's payload (0 picks 4 MiB).
	MaxFrameBytes int
	// MaxVersion caps the negotiated wire version (0 picks Version).
	// Setting 1 serves row-format clients only; columnar hellos are
	// acked with a format rejection and fall back.
	MaxVersion int
	// DecodeWorkers bounds the row-format decode goroutines running
	// concurrently across all connections (0 picks GOMAXPROCS), so a
	// connection flood cannot oversubscribe the cores the engine's own
	// workers need. Columnar frames bypass the decoders entirely.
	DecodeWorkers int
	// Overloaded, when non-nil, reports engine backpressure: while it
	// returns true the server withholds credit grants, so clients stall
	// instead of the server buffering unboundedly. The serving layer
	// wires this to mempool DRAM utilization crossing the runtime's
	// backpressure threshold.
	Overloaded func() bool
	// HandshakeTimeout bounds the wait for a client hello (0 picks 10s).
	HandshakeTimeout time.Duration
}

// Counters is one scrape of the server's aggregate ingest counters.
type Counters struct {
	// Conns counts accepted connections; ActiveConns is the current
	// number still open.
	Conns, ActiveConns int64
	// Frames counts data frames received; FramesByFormat splits the
	// count by wire format code.
	Frames         int64
	FramesByFormat [4]int64
	// IngestedRecords counts records decoded and delivered to the feed.
	IngestedRecords int64
	// DroppedRecords counts records decoded but discarded because the
	// pipeline was draining (listener closed mid-stream).
	DroppedRecords int64
	// DecodeErrors counts frames whose payload failed to decode
	// (malformed bytes, bad columnar geometry, oversized frames);
	// ChecksumErrors separately counts columnar frames whose payload
	// parsed but failed checksum verification — corruption in transit
	// rather than a confused or hostile sender.
	DecodeErrors   int64
	ChecksumErrors int64
}

// ConnCounters is one connection's view for /metrics.
type ConnCounters struct {
	ID              int64
	Remote          string
	Format          string
	Frames          int64
	IngestedRecords int64
	DroppedRecords  int64
	DecodeErrors    int64
	ChecksumErrors  int64
	// CreditWindow is the connection's in-flight flow-control window:
	// credits granted minus frames consumed — how many frames the
	// client may still send before blocking.
	CreditWindow int64
}

// serverConn is one accepted connection's state.
type serverConn struct {
	id      int64
	conn    net.Conn
	format  parsefmt.Format
	version byte

	frames   atomic.Int64
	ingested atomic.Int64
	dropped  atomic.Int64
	decErrs  atomic.Int64
	chkErrs  atomic.Int64
	granted  atomic.Int64
}

// Server is the TCP ingest listener: per-connection framed decoding,
// credit-based flow control, and counters.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// decodeSem bounds concurrent row-format decode work server-wide.
	decodeSem chan struct{}

	mu      sync.Mutex
	conns   map[int64]*serverConn
	pending map[net.Conn]struct{} // accepted, handshake not yet complete
	nextID  int64

	wg      sync.WaitGroup // acceptors + connection handlers
	closing atomic.Bool
	closed  sync.Once

	accepted    atomic.Int64
	frames      atomic.Int64
	framesByFmt [4]atomic.Int64
	ingested    atomic.Int64
	dropped     atomic.Int64
	decErrs     atomic.Int64
	chkErrs     atomic.Int64

	// frameLog2 tracks, per format, the log2 of the largest frame seen —
	// a one-word histogram summary that sizes new connections' buffered
	// readers to batch socket reads around real traffic.
	frameLog2 [4]atomic.Int32
}

// Listen starts an ingest server on addr (e.g. ":7077" or
// "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Feed == nil {
		return nil, fmt.Errorf("netio: ServerConfig.Feed is required")
	}
	if got, want := cfg.Feed.Schema().NumCols, WireSchema().NumCols; got != want {
		return nil, fmt.Errorf("netio: feed schema has %d columns, the wire format carries %d", got, want)
	}
	if cfg.AcceptShards <= 0 {
		cfg.AcceptShards = 2
	}
	if cfg.FrameCredits <= 0 {
		cfg.FrameCredits = 16
	}
	if cfg.FrameCredits > 0xFFFF {
		cfg.FrameCredits = 0xFFFF // the ack carries the grant as uint16
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.MaxVersion <= 0 || cfg.MaxVersion > Version {
		cfg.MaxVersion = Version
	}
	if cfg.DecodeWorkers <= 0 {
		cfg.DecodeWorkers = goruntime.GOMAXPROCS(0)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		decodeSem: make(chan struct{}, cfg.DecodeWorkers),
		conns:     make(map[int64]*serverConn),
		pending:   make(map[net.Conn]struct{}),
	}
	for i := 0; i < cfg.AcceptShards; i++ {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close gracefully shuts ingestion down: it stops accepting, severs the
// remaining connections, waits for every handler to finish, and closes
// the feed so the runtime drains and terminates. Safe to call more than
// once.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.closing.Store(true)
		s.cfg.Feed.beginShutdown()
		s.ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.conn.Close()
		}
		for c := range s.pending {
			c.Close() // sever peers still mid-handshake, too
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.cfg.Feed.closeSend()
	})
}

// Counters returns the aggregate ingest counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	c := Counters{
		Conns:           s.accepted.Load(),
		ActiveConns:     active,
		Frames:          s.frames.Load(),
		IngestedRecords: s.ingested.Load(),
		DroppedRecords:  s.dropped.Load(),
		DecodeErrors:    s.decErrs.Load(),
		ChecksumErrors:  s.chkErrs.Load(),
	}
	for i := range c.FramesByFormat {
		c.FramesByFormat[i] = s.framesByFmt[i].Load()
	}
	return c
}

// ConnCounters returns a per-connection counter snapshot, ordered by
// connection ID.
func (s *Server) ConnCounters() []ConnCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ConnCounters, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, ConnCounters{
			ID:              c.id,
			Remote:          c.conn.RemoteAddr().String(),
			Format:          c.format.String(),
			Frames:          c.frames.Load(),
			IngestedRecords: c.ingested.Load(),
			DroppedRecords:  c.dropped.Load(),
			DecodeErrors:    c.decErrs.Load(),
			ChecksumErrors:  c.chkErrs.Load(),
			CreditWindow:    c.granted.Load() - c.frames.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// acceptLoop is one acceptor shard.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(time.Millisecond) // transient accept error
			continue
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// noteFrameSize folds one frame's size into the per-format histogram
// summary.
func (s *Server) noteFrameSize(f parsefmt.Format, n int) {
	lg := int32(bits.Len(uint(n)))
	for {
		cur := s.frameLog2[f].Load()
		if lg <= cur || s.frameLog2[f].CompareAndSwap(cur, lg) {
			return
		}
	}
}

// readBufSize picks a connection's buffered-reader size from the frame
// histogram: roughly two frames of readahead, clamped to [64 KiB,
// 1 MiB]. Columnar connections start at 256 KiB before any history
// exists — their frames are wide by design.
func (s *Server) readBufSize(f parsefmt.Format) int {
	size := 64 << 10
	if f == parsefmt.Columnar {
		size = 256 << 10
	}
	if lg := s.frameLog2[f].Load(); lg > 0 {
		size = 1 << (uint(lg) + 1)
	}
	if size < 64<<10 {
		size = 64 << 10
	}
	if size > 1<<20 {
		size = 1 << 20
	}
	return size
}

// handle runs one connection: handshake, then the frame/credit loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		return
	}
	s.pending[conn] = struct{}{}
	s.mu.Unlock()

	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	format, version, status, err := readHello(conn, byte(s.cfg.MaxVersion))
	s.mu.Lock()
	delete(s.pending, conn)
	s.mu.Unlock()
	if err != nil {
		writeAck(conn, version, status, 0)
		return
	}
	conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		return
	}
	s.nextID++
	c := &serverConn{id: s.nextID, conn: conn, format: format, version: version}
	c.granted.Store(int64(s.cfg.FrameCredits))
	s.conns[c.id] = c
	s.mu.Unlock()
	s.cfg.Feed.register(c.id)

	defer func() {
		// Ordered cursor retirement: the sentinel travels the feed
		// behind the connection's last batch, so the watermark cannot
		// pass data still queued. During shutdown the direct path
		// removes the cursor instead.
		if !s.cfg.Feed.push(batch{conn: c.id, retire: true}) {
			s.cfg.Feed.retire(c.id)
		}
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
	}()

	if writeAck(conn, version, statusOK, uint16(s.cfg.FrameCredits)) != nil {
		return
	}

	br := bufio.NewReaderSize(conn, s.readBufSize(format))
	if format == parsefmt.Columnar {
		s.serveColumnar(c, br)
	} else {
		s.serveRows(c, br)
	}
}

// grantCredit regenerates one frame credit after the engine's
// backpressure clears. Clients block on their send window, so pipeline
// overload propagates to the traffic sources instead of filling server
// memory. Returns false when the connection should end.
func (s *Server) grantCredit(c *serverConn) bool {
	for s.cfg.Overloaded != nil && s.cfg.Overloaded() {
		if s.closing.Load() {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	if writeCredit(c.conn, 1) != nil {
		return false
	}
	c.granted.Add(1)
	return true
}

// countDecodeError attributes one undecodable frame.
func (s *Server) countDecodeError(c *serverConn) {
	s.decErrs.Add(1)
	c.decErrs.Add(1)
}

// serveColumnar runs a columnar connection's receive loop: frame
// payload bytes are read directly from the socket into pooled column
// slabs — no intermediate payload buffer, no per-record work, just
// geometry validation, an endian fix (a no-op on little-endian hosts)
// and a checksum scan. A single goroutine per connection keeps frame
// delivery sequential, which the feed's watermark cursors require.
func (s *Server) serveColumnar(c *serverConn, br *bufio.Reader) {
	schema := s.cfg.Feed.Schema()
	var lenBuf [4]byte
	var hdrBuf [parsefmt.ColumnarHeaderBytes]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return // peer gone
		}
		size := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if size == 0 {
			return // clean end of stream
		}
		if size > int64(s.cfg.MaxFrameBytes) {
			s.countDecodeError(c)
			return // oversized frame: refuse to stream that much hostile data
		}
		s.frames.Add(1)
		c.frames.Add(1)
		s.framesByFmt[parsefmt.Columnar].Add(1)
		s.noteFrameSize(parsefmt.Columnar, int(size))

		if size < parsefmt.ColumnarHeaderBytes {
			if _, err := io.CopyN(io.Discard, br, size); err != nil {
				return
			}
			s.countDecodeError(c)
			if !s.grantCredit(c) {
				return
			}
			continue
		}
		if _, err := io.ReadFull(br, hdrBuf[:]); err != nil {
			return
		}
		body := size - parsefmt.ColumnarHeaderBytes
		hdr, err := parsefmt.ParseColumnarHeader(hdrBuf[:])
		if err != nil || hdr.NCols != schema.NumCols || parsefmt.ColumnarDataBytes(hdr.NCols, hdr.NRows) != body {
			// Malformed geometry: drop the frame's remaining bytes and
			// keep the connection — the framing layer is still intact.
			if _, err := io.CopyN(io.Discard, br, body); err != nil {
				return
			}
			s.countDecodeError(c)
			if !s.grantCredit(c) {
				return
			}
			continue
		}

		cols := s.cfg.Feed.borrowCols(hdr.NRows)
		short := false
		for i := range cols {
			if _, err := io.ReadFull(br, parsefmt.ColumnBytes(cols[i])); err != nil {
				short = true
				break
			}
			parsefmt.FixWireOrder(cols[i])
		}
		if short {
			s.cfg.Feed.Recycle(cols)
			return // truncated mid-frame: peer gone
		}
		if sum := parsefmt.ChecksumColumns(cols); sum != hdr.Checksum {
			s.cfg.Feed.Recycle(cols)
			s.chkErrs.Add(1)
			c.chkErrs.Add(1)
			if !s.grantCredit(c) {
				return
			}
			continue
		}

		var maxTs uint64
		for _, ts := range cols[schema.TsCol] {
			if ts > maxTs {
				maxTs = ts
			}
		}
		n := int64(hdr.NRows)
		if !s.cfg.Feed.push(batch{conn: c.id, cols: cols, maxTs: maxTs}) {
			s.dropped.Add(n)
			c.dropped.Add(n)
			return // draining: the pipeline no longer accepts records
		}
		s.ingested.Add(n)
		c.ingested.Add(n)
		if !s.grantCredit(c) {
			return
		}
	}
}

// serveRows runs a row-format connection: the socket read loop and the
// decoder are pipelined over a small ring of frame buffers, so the next
// frame streams in while the previous one parses.
func (s *Server) serveRows(c *serverConn, br *bufio.Reader) {
	work := make(chan []byte, rowPipelineDepth)
	free := make(chan []byte, rowPipelineDepth)
	for i := 0; i < rowPipelineDepth; i++ {
		free <- nil
	}
	done := make(chan struct{})
	go s.decodeRows(c, work, free, done)
	defer func() {
		close(work)
		<-done
	}()
	for {
		buf := <-free
		payload, eos, err := readFrame(br, buf, s.cfg.MaxFrameBytes)
		if err != nil || eos {
			if errors.Is(err, errFrameTooBig) {
				s.countDecodeError(c)
			}
			return // clean EOS, peer gone, or oversized frame
		}
		s.frames.Add(1)
		c.frames.Add(1)
		s.framesByFmt[c.format].Add(1)
		s.noteFrameSize(c.format, len(payload))
		work <- payload
	}
}

// decodeRows is a row connection's decode half: parse each frame (under
// the server-wide decode-worker bound), deliver the batch, regenerate
// the client's credit, and hand the frame buffer back to the read loop.
// Frames decode strictly in arrival order — the feed's watermark cursor
// advances per delivered batch, so reordering could close a window past
// records still in flight. On a fatal condition it severs the
// connection (unblocking the read loop) and drains remaining buffers.
func (s *Server) decodeRows(c *serverConn, work, free chan []byte, done chan struct{}) {
	defer close(done)
	fatal := false
	for payload := range work {
		if fatal {
			free <- payload
			continue
		}
		s.decodeSem <- struct{}{}
		cols, maxTs := s.decodeFrame(c, payload)
		<-s.decodeSem
		free <- payload[:cap(payload)]
		if cols != nil {
			n := int64(len(cols[0]))
			if s.cfg.Feed.push(batch{conn: c.id, cols: cols, maxTs: maxTs}) {
				s.ingested.Add(n)
				c.ingested.Add(n)
			} else {
				// Draining: the pipeline no longer accepts records.
				s.dropped.Add(n)
				c.dropped.Add(n)
				fatal = true
				c.conn.Close()
				continue
			}
		}
		if !s.grantCredit(c) {
			fatal = true
			c.conn.Close()
		}
	}
}

// decodeFrame decodes one frame payload into a column-major batch using
// the streaming decoders (network bytes are untrusted: errors are
// counted, never fatal to the server). Returns nil when no record
// survives.
func (s *Server) decodeFrame(c *serverConn, payload []byte) ([][]uint64, uint64) {
	schema := s.cfg.Feed.Schema()
	cols := s.cfg.Feed.getCols() // recycled via Feed.Recycle
	dec := parsefmt.NewStreamDecoder(c.format, bytes.NewReader(payload))
	var maxTs uint64
	n := 0
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Malformed payload: keep the records already decoded,
			// drop the rest of the frame.
			s.countDecodeError(c)
			break
		}
		rc := rec.Cols()
		for i := range cols {
			cols[i] = append(cols[i], rc[i])
		}
		if rc[schema.TsCol] > maxTs {
			maxTs = rc[schema.TsCol]
		}
		n++
	}
	if n == 0 {
		s.cfg.Feed.Recycle(cols)
		return nil, 0
	}
	return cols, maxTs
}
