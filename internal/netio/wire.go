// Package netio turns the native backend into a network server: an
// ingest listener accepts TCP connections carrying length-prefixed
// frames of parsefmt-encoded records (binary, JSON or CSV, negotiated
// in a small handshake), decodes them with the streaming decoders, and
// hands sealed batches to the runtime through its ExternalFeed seam. A
// credit-based flow-control loop ties client send permission to the
// engine's mempool backpressure signal, so an overloaded pipeline slows
// its clients instead of buffering unboundedly (paper §7.4 treats
// ingestion as a first-class bottleneck; the ROADMAP north-star is a
// server for live traffic). The package also serves live query results
// (/windows) and engine metrics (/metrics) over HTTP, and provides the
// client used by cmd/sbx-loadgen.
//
// # Wire format
//
// All integers are big-endian. The client opens with an 8-byte hello:
//
//	offset 0: magic "SBX1"
//	offset 4: protocol version (1)
//	offset 5: payload format: 0 JSON, 1 binary (PB), 2 text (CSV)
//	offset 6: reserved (2 bytes, zero)
//
// The server answers with an 8-byte ack:
//
//	offset 0: magic "SBXA"
//	offset 4: protocol version (1)
//	offset 5: status: 0 OK, 1 bad magic/version, 2 bad format
//	offset 6: initial credit grant, uint16 (frames the client may send)
//
// After the ack, the client sends data frames — a uint32 payload length
// followed by that many bytes of parsefmt-encoded records; a zero
// length marks a clean end of stream — and the server sends uint32
// credit grants, each extending the client's send window by that many
// frames. The client must keep one credit per in-flight frame.
package netio

import (
	"encoding/binary"
	"fmt"
	"io"

	"streambox/internal/parsefmt"
)

// Version is the wire protocol version.
const Version = 1

var (
	magicHello = [4]byte{'S', 'B', 'X', '1'}
	magicAck   = [4]byte{'S', 'B', 'X', 'A'}
)

// Handshake statuses.
const (
	statusOK        = 0
	statusBadMagic  = 1
	statusBadFormat = 2
)

// DefaultMaxFrameBytes caps one frame's payload unless ServerConfig
// overrides it.
const DefaultMaxFrameBytes = 4 << 20

// writeHello sends the client's 8-byte hello.
func writeHello(w io.Writer, f parsefmt.Format) error {
	var h [8]byte
	copy(h[:4], magicHello[:])
	h[4] = Version
	h[5] = byte(f)
	_, err := w.Write(h[:])
	return err
}

// readHello parses the client hello, distinguishing protocol errors by
// ack status.
func readHello(r io.Reader) (parsefmt.Format, byte, error) {
	var h [8]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, statusBadMagic, fmt.Errorf("netio: reading hello: %w", err)
	}
	if [4]byte(h[:4]) != magicHello || h[4] != Version {
		return 0, statusBadMagic, fmt.Errorf("netio: bad hello magic/version %q v%d", h[:4], h[4])
	}
	f := parsefmt.Format(h[5])
	if f != parsefmt.JSON && f != parsefmt.PB && f != parsefmt.Text {
		return 0, statusBadFormat, fmt.Errorf("netio: unknown payload format %d", h[5])
	}
	return f, statusOK, nil
}

// writeAck sends the server's 8-byte ack with the initial credit grant.
func writeAck(w io.Writer, status byte, credits uint16) error {
	var a [8]byte
	copy(a[:4], magicAck[:])
	a[4] = Version
	a[5] = status
	binary.BigEndian.PutUint16(a[6:], credits)
	_, err := w.Write(a[:])
	return err
}

// readAck parses the server ack and returns the initial credits.
func readAck(r io.Reader) (int, error) {
	var a [8]byte
	if _, err := io.ReadFull(r, a[:]); err != nil {
		return 0, fmt.Errorf("netio: reading ack: %w", err)
	}
	if [4]byte(a[:4]) != magicAck || a[4] != Version {
		return 0, fmt.Errorf("netio: bad ack magic/version %q v%d", a[:4], a[4])
	}
	switch a[5] {
	case statusOK:
		return int(binary.BigEndian.Uint16(a[6:])), nil
	case statusBadFormat:
		return 0, fmt.Errorf("netio: server rejected payload format")
	default:
		return 0, fmt.Errorf("netio: server rejected handshake (status %d)", a[5])
	}
}

// writeFrame sends one data frame; an empty payload is the end-of-stream
// marker.
func writeFrame(w io.Writer, payload []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one data frame into buf (grown as needed), bounding
// the payload at max bytes. eos is true for the end-of-stream marker.
func readFrame(r io.Reader, buf []byte, max int) (payload []byte, eos bool, err error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, false, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size == 0 {
		return nil, true, nil
	}
	if int64(size) > int64(max) {
		return nil, false, fmt.Errorf("netio: frame of %d bytes exceeds %d-byte limit", size, max)
	}
	if cap(buf) < int(size) {
		buf = make([]byte, size)
	}
	payload = buf[:size]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, false, fmt.Errorf("netio: truncated frame: %w", err)
	}
	return payload, false, nil
}

// writeCredit sends one credit grant extending the client's window by n
// frames.
func writeCredit(w io.Writer, n uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], n)
	_, err := w.Write(b[:])
	return err
}

// readCredit reads one credit grant.
func readCredit(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// ParseFormat maps a format flag string to a parsefmt.Format.
func ParseFormat(s string) (parsefmt.Format, error) {
	switch s {
	case "json":
		return parsefmt.JSON, nil
	case "pb", "binary", "bin":
		return parsefmt.PB, nil
	case "text", "csv":
		return parsefmt.Text, nil
	default:
		return 0, fmt.Errorf("netio: unknown format %q (json|pb|text)", s)
	}
}
