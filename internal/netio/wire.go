// Package netio turns the native backend into a network server: an
// ingest listener accepts TCP connections carrying length-prefixed
// frames of parsefmt-encoded records (columnar, binary, JSON or CSV,
// negotiated in a small handshake), decodes them, and hands sealed
// batches to the runtime through its ExternalFeed seam. Row-format
// payloads go through the streaming decoders on a per-connection decode
// goroutine; columnar frames land their payload bytes directly in
// mempool-backed column slabs — decode is validate + bounds-check +
// endian-fix + pointer-cast, with zero per-record work. A credit-based
// flow-control loop ties client send permission to the engine's mempool
// backpressure signal, so an overloaded pipeline slows its clients
// instead of buffering unboundedly (paper §7.4 treats ingestion as a
// first-class bottleneck; the ROADMAP north-star is a server for live
// traffic). The package also serves live query results (/windows) and
// engine metrics (/metrics) over HTTP, and provides the client used by
// cmd/sbx-loadgen.
//
// # Wire format
//
// Handshake and framing integers are big-endian. The client opens with
// an 8-byte hello:
//
//	offset 0: magic "SBX1"
//	offset 4: protocol version (1, 2 or 3)
//	offset 5: payload format: 0 JSON, 1 binary (PB), 2 text (CSV),
//	          3 columnar (version 2 and up)
//	offset 6: flags: bit 0 requests a resumable session (version 3 and
//	          up; reserved and zero before that)
//	offset 7: reserved (zero)
//
// The server answers with an 8-byte ack:
//
//	offset 0: magic "SBXA"
//	offset 4: negotiated protocol version (min of the hello's and the
//	          server's; a version-1 hello is always acked with 1, so
//	          version-1 clients see bit-for-bit the version-1 exchange)
//	offset 5: status: 0 OK, 1 bad magic/version, 2 bad format (also
//	          returned for a columnar request the negotiated version
//	          cannot carry — clients fall back to a row format on a
//	          fresh connection), 3 overloaded (admission control shed
//	          the handshake; back off and redial)
//	offset 6: initial credit grant, uint16 (frames the client may send)
//
// After the ack, the client sends data frames — a uint32 payload length
// followed by that many bytes of records in the negotiated format; a
// zero length marks a clean end of stream — and the server sends uint32
// credit grants, each extending the client's send window by that many
// frames. The client must keep one credit per in-flight frame. For the
// columnar format, each frame payload is exactly one parsefmt columnar
// frame (24-byte checksummed header + little-endian column-major data;
// see parsefmt/columnar.go for the layout).
//
// # Resumable sessions (version 3)
//
// A client that set the session flag in its hello follows the OK ack
// with a 12-byte resume request — magic "SBXR" then a uint64 session
// token, zero to open a fresh session — and the server answers with a
// 20-byte session grant: magic "SBXT", the uint64 session token (zero:
// the resumed session is unknown or expired and the connection is
// useless), and the uint64 sequence number of the last frame it fully
// ingested under that session. On a session connection every data
// frame carries a uint64 sequence number between the length prefix and
// the payload (the end-of-stream marker stays a bare zero length), and
// every credit grant widens to a 12-byte ack — the uint32 credit count
// followed by the uint64 cumulative last-ingested sequence. Frames at
// or below the acked sequence are discarded by the server (duplicate
// replay after a resume), a gap above the expected sequence severs the
// connection so the client replays from its send buffer, and a
// columnar checksum or geometry failure severs WITHOUT advancing the
// ack so the replay re-delivers the damaged frame. Version-1 and
// version-2 exchanges are carried unchanged, bit for bit.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"streambox/internal/parsefmt"
)

// Version is the highest wire protocol version this build speaks.
// Version 1 carries the row formats; version 2 adds columnar frames;
// version 3 adds resumable sessions (session tokens, per-frame sequence
// numbers, cumulative acks riding the credit grants).
const Version = 3

var (
	magicHello   = [4]byte{'S', 'B', 'X', '1'}
	magicAck     = [4]byte{'S', 'B', 'X', 'A'}
	magicResume  = [4]byte{'S', 'B', 'X', 'R'}
	magicSession = [4]byte{'S', 'B', 'X', 'T'}
)

// Handshake statuses.
const (
	statusOK         = 0
	statusBadMagic   = 1
	statusBadFormat  = 2
	statusOverloaded = 3
)

// helloFlagSession, set in the hello's flags byte (offset 6, reserved
// and zero before version 3), asks for a resumable session: sequenced
// frames, cumulative acks, and the session-token exchange after the
// ack. Only honored when the negotiated version is >= 3.
const helloFlagSession = 1 << 0

// errFormatRejected marks an ack rejecting the requested payload
// format — the trigger for the client's columnar→row fallback redial.
var errFormatRejected = errors.New("netio: server rejected payload format")

// ErrOverloaded marks a handshake shed by the server's admission
// control (too many connections, or memory pressure past the shedding
// threshold). Clients with a ReconnectConfig back off and redial;
// others surface it.
var ErrOverloaded = errors.New("netio: server overloaded, connection shed")

// ErrSessionExpired marks a resume attempt whose session the server no
// longer remembers (expired past SessionTimeout, or already retired by
// a clean end of stream). Exactly-once resume is impossible: the client
// cannot know which of its unacked frames were ingested.
var ErrSessionExpired = errors.New("netio: session expired on server, cannot resume exactly-once")

// ErrReplayOverflow marks a send-side replay buffer that filled while
// the server withheld acks; the session can no longer guarantee replay
// of every unacked frame.
var ErrReplayOverflow = errors.New("netio: session replay buffer overflow")

// TimeoutError is the typed error for a client-side write that missed
// its configured deadline (ClientConfig.WriteTimeout): a stalled or
// half-open server. It unwraps via errors.As and implements the
// net.Error timeout contract.
type TimeoutError struct {
	Op    string
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("netio: %s timed out after %v", e.Op, e.After)
}

// Timeout implements the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// errFrameTooBig marks a frame whose declared payload exceeds the
// server's limit; the server counts it as a decode error and severs the
// connection rather than stream the excess.
var errFrameTooBig = errors.New("netio: frame exceeds size limit")

// DefaultMaxFrameBytes caps one frame's payload unless ServerConfig
// overrides it.
const DefaultMaxFrameBytes = 4 << 20

// helloVersionFor picks the hello version a client sends for format f:
// a session request needs version 3, columnar needs at least version 2,
// and plain row formats stay on the version-1 exchange so they
// interoperate bit-for-bit with version-1 servers.
func helloVersionFor(f parsefmt.Format, session bool) byte {
	if session {
		return Version
	}
	if f == parsefmt.Columnar {
		return Version
	}
	return 1
}

// writeHello sends the client's 8-byte hello.
func writeHello(w io.Writer, f parsefmt.Format, version, flags byte) error {
	var h [8]byte
	copy(h[:4], magicHello[:])
	h[4] = version
	h[5] = byte(f)
	h[6] = flags
	_, err := w.Write(h[:])
	return err
}

// readHello parses the client hello against the server's maximum
// version, distinguishing protocol errors by ack status. The returned
// version is the negotiated one (min of hello and maxVersion) and is
// valid even on error, so the rejection ack echoes a version the peer
// understands. flags carries the hello's flags byte (session request);
// it is only honored by the caller when the negotiated version >= 3,
// since older exchanges reserved the byte as zero.
func readHello(r io.Reader, maxVersion byte) (f parsefmt.Format, version, flags byte, status byte, err error) {
	version = 1
	var h [8]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, version, 0, statusBadMagic, fmt.Errorf("netio: reading hello: %w", err)
	}
	if [4]byte(h[:4]) != magicHello || h[4] < 1 || h[4] > Version {
		return 0, version, 0, statusBadMagic, fmt.Errorf("netio: bad hello magic/version %q v%d", h[:4], h[4])
	}
	version = h[4]
	if version > maxVersion {
		version = maxVersion
	}
	f = parsefmt.Format(h[5])
	flags = h[6]
	switch f {
	case parsefmt.JSON, parsefmt.PB, parsefmt.Text:
	case parsefmt.Columnar:
		if version < 2 {
			return 0, version, flags, statusBadFormat, fmt.Errorf("netio: columnar format needs wire version 2 (negotiated %d)", version)
		}
	default:
		return 0, version, flags, statusBadFormat, fmt.Errorf("netio: unknown payload format %d", h[5])
	}
	return f, version, flags, statusOK, nil
}

// writeAck sends the server's 8-byte ack with the negotiated version
// and the initial credit grant.
func writeAck(w io.Writer, version, status byte, credits uint16) error {
	var a [8]byte
	copy(a[:4], magicAck[:])
	a[4] = version
	a[5] = status
	binary.BigEndian.PutUint16(a[6:], credits)
	_, err := w.Write(a[:])
	return err
}

// readAck parses the server ack, returning the initial credits and the
// negotiated version.
func readAck(r io.Reader) (credits int, version byte, err error) {
	var a [8]byte
	if _, err := io.ReadFull(r, a[:]); err != nil {
		return 0, 0, fmt.Errorf("netio: reading ack: %w", err)
	}
	if [4]byte(a[:4]) != magicAck || a[4] < 1 || a[4] > Version {
		return 0, 0, fmt.Errorf("netio: bad ack magic/version %q v%d", a[:4], a[4])
	}
	switch a[5] {
	case statusOK:
		return int(binary.BigEndian.Uint16(a[6:])), a[4], nil
	case statusBadFormat:
		return 0, a[4], errFormatRejected
	case statusOverloaded:
		return 0, a[4], ErrOverloaded
	default:
		return 0, a[4], fmt.Errorf("netio: server rejected handshake (status %d)", a[5])
	}
}

// writeResume sends the client's 12-byte session request, directly
// after a version >= 3 ack on a session-flagged hello: the token of the
// session to resume, or zero to open a fresh one.
func writeResume(w io.Writer, token uint64) error {
	var b [12]byte
	copy(b[:4], magicResume[:])
	binary.BigEndian.PutUint64(b[4:], token)
	_, err := w.Write(b[:])
	return err
}

// readResume parses the session request.
func readResume(r io.Reader) (token uint64, err error) {
	var b [12]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("netio: reading session request: %w", err)
	}
	if [4]byte(b[:4]) != magicResume {
		return 0, fmt.Errorf("netio: bad session request magic %q", b[:4])
	}
	return binary.BigEndian.Uint64(b[4:]), nil
}

// writeSessionGrant sends the server's 20-byte session grant: the
// session token (the one requested, or freshly assigned; zero means the
// requested session is unknown/expired and the connection will close)
// and the last frame sequence number fully ingested under it — the
// client replays everything after that seq from its replay buffer.
func writeSessionGrant(w io.Writer, token, lastSeq uint64) error {
	var b [20]byte
	copy(b[:4], magicSession[:])
	binary.BigEndian.PutUint64(b[4:], token)
	binary.BigEndian.PutUint64(b[12:], lastSeq)
	_, err := w.Write(b[:])
	return err
}

// readSessionGrant parses the session grant.
func readSessionGrant(r io.Reader) (token, lastSeq uint64, err error) {
	var b [20]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, fmt.Errorf("netio: reading session grant: %w", err)
	}
	if [4]byte(b[:4]) != magicSession {
		return 0, 0, fmt.Errorf("netio: bad session grant magic %q", b[:4])
	}
	return binary.BigEndian.Uint64(b[4:]), binary.BigEndian.Uint64(b[12:]), nil
}

// writeFrame sends one data frame; an empty payload is the end-of-stream
// marker.
func writeFrame(w io.Writer, payload []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// writeSeqFrame sends one sequenced data frame (session mode): the
// uint32 payload length, the uint64 frame sequence number, then the
// payload. The end-of-stream marker stays a bare zero length with no
// sequence number.
func writeSeqFrame(w io.Writer, seq uint64, payload []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameHeader reads one frame's length prefix — and, in session
// mode, the frame sequence number that follows it. eos is true for the
// end-of-stream marker (which carries no sequence number).
func readFrameHeader(r io.Reader, session bool) (size int64, seq uint64, eos bool, err error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return 0, 0, false, err
	}
	size = int64(binary.BigEndian.Uint32(n[:]))
	if size == 0 {
		return 0, 0, true, nil
	}
	if session {
		var s [8]byte
		if _, err := io.ReadFull(r, s[:]); err != nil {
			return 0, 0, false, fmt.Errorf("netio: truncated frame seq: %w", err)
		}
		seq = binary.BigEndian.Uint64(s[:])
	}
	return size, seq, false, nil
}

// writeColumnarFrame sends one columnar data frame holding cols without
// materializing the payload: length prefix, then the checksummed
// header, then each column's wire bytes straight from its backing
// array (an alias, not a copy, on little-endian hosts).
func writeColumnarFrame(w io.Writer, cols [][]uint64) error {
	ncols, nrows := len(cols), len(cols[0])
	var pre [4 + parsefmt.ColumnarHeaderBytes]byte
	size := int64(parsefmt.ColumnarHeaderBytes) + parsefmt.ColumnarDataBytes(ncols, nrows)
	binary.BigEndian.PutUint32(pre[:4], uint32(size))
	parsefmt.PutColumnarHeader(pre[4:], ncols, nrows, parsefmt.ChecksumColumns(cols))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	for _, col := range cols {
		if err := writeWireWords(w, col); err != nil {
			return err
		}
	}
	return nil
}

// writeWireWords writes one column in wire (little-endian) order.
func writeWireWords(w io.Writer, col []uint64) error {
	if parsefmt.HostIsLittleEndian() {
		_, err := w.Write(parsefmt.ColumnBytes(col))
		return err
	}
	var b [8]byte
	for _, v := range col {
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one data frame into buf (grown as needed), bounding
// the payload at max bytes. eos is true for the end-of-stream marker.
func readFrame(r io.Reader, buf []byte, max int) (payload []byte, eos bool, err error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, false, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size == 0 {
		return nil, true, nil
	}
	if int64(size) > int64(max) {
		return nil, false, fmt.Errorf("%w: %d bytes over the %d-byte limit", errFrameTooBig, size, max)
	}
	if cap(buf) < int(size) {
		buf = make([]byte, size)
	}
	payload = buf[:size]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, false, fmt.Errorf("netio: truncated frame: %w", err)
	}
	return payload, false, nil
}

// writeCredit sends one credit grant extending the client's window by n
// frames.
func writeCredit(w io.Writer, n uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], n)
	_, err := w.Write(b[:])
	return err
}

// readCredit reads one credit grant.
func readCredit(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// writeCreditAck sends a session-mode credit grant: the uint32 credit
// extension plus the cumulative ack — the last frame sequence number
// the server has fully ingested, which lets the client trim its replay
// buffer.
func writeCreditAck(w io.Writer, n uint32, lastSeq uint64) error {
	var b [12]byte
	binary.BigEndian.PutUint32(b[:4], n)
	binary.BigEndian.PutUint64(b[4:], lastSeq)
	_, err := w.Write(b[:])
	return err
}

// readCreditAck reads a session-mode credit grant.
func readCreditAck(r io.Reader) (n uint32, lastSeq uint64, err error) {
	var b [12]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, err
	}
	return binary.BigEndian.Uint32(b[:4]), binary.BigEndian.Uint64(b[4:]), nil
}

// ParseFormat maps a format flag string to a parsefmt.Format.
func ParseFormat(s string) (parsefmt.Format, error) {
	switch s {
	case "json":
		return parsefmt.JSON, nil
	case "pb", "binary", "bin":
		return parsefmt.PB, nil
	case "text", "csv":
		return parsefmt.Text, nil
	case "columnar", "col":
		return parsefmt.Columnar, nil
	default:
		return 0, fmt.Errorf("netio: unknown format %q (json|pb|text|columnar)", s)
	}
}

// formatLabel is the short metrics label per wire format code.
var formatLabel = [4]string{"json", "pb", "text", "columnar"}
