package netio

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"streambox/internal/parsefmt"
)

// TestCloseAckDrainTimeout pins the bounded ack drain: a server that
// accepts frames but never acks them (died mid-drain behind a proxy,
// wedged disk) must not park Close forever. With a WriteTimeout
// configured, the drain fails with a typed *TimeoutError once no ack
// arrives for a full timeout window.
func TestCloseAckDrainTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A protocol-correct but mute server: it completes the handshake
	// and the session grant, then swallows every data frame without
	// ever writing an ack.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, version, _, _, err := readHello(conn, 3)
		if err != nil {
			return
		}
		if writeAck(conn, version, statusOK, 64) != nil {
			return
		}
		if _, err := readResume(conn); err != nil {
			return
		}
		if writeSessionGrant(conn, 42, 0) != nil {
			return
		}
		for {
			size, _, eos, err := readFrameHeader(conn, true)
			if err != nil || eos {
				return
			}
			if _, err := io.CopyN(io.Discard, conn, size); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), ClientConfig{
		Format:       parsefmt.Columnar,
		FrameRecords: 16,
		WriteTimeout: 150 * time.Millisecond,
		Reconnect:    &ReconnectConfig{MaxRetries: 1, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Session() {
		t.Fatal("client did not negotiate a session")
	}
	gen := RecordGen{Keys: 8, WindowRecords: 1024}
	if err := c.Send(gen.Records(0, 64)); err != nil {
		t.Fatalf("send: %v", err)
	}

	start := time.Now()
	err = c.Close()
	waited := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Close = %v, want a *TimeoutError", err)
	}
	if te.Op != "ack drain" {
		t.Fatalf("TimeoutError.Op = %q, want %q", te.Op, "ack drain")
	}
	if waited > 3*time.Second {
		t.Fatalf("bounded ack drain took %s", waited)
	}
}
