package netio

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ResultRow is one (key, aggregate) pair of a closed window.
type ResultRow struct {
	Key uint64 `json:"key"`
	Val uint64 `json:"val"`
}

// WindowResult is one closed window's results for /windows.
type WindowResult struct {
	Sink    string      `json:"sink"`
	Start   uint64      `json:"start"`
	End     uint64      `json:"end"`
	Records int         `json:"records"`
	Rows    []ResultRow `json:"rows,omitempty"`
}

// ResultStore is the concurrent live-query store: the native reduce
// stage publishes every closed window here (via runtime's WindowSink
// hook), and GET /windows snapshots the most recent ones per sink while
// the pipeline runs.
type ResultStore struct {
	mu        sync.Mutex
	keep      int
	bySink    map[string][]WindowResult // ascending by Start
	published atomic.Int64
}

// NewResultStore creates a store retaining the most recent keep windows
// per sink (0 picks 16).
func NewResultStore(keep int) *ResultStore {
	if keep <= 0 {
		keep = 16
	}
	return &ResultStore{keep: keep, bySink: make(map[string][]WindowResult)}
}

// Publish files one closed window. A duplicate Start for the same sink
// (late network data re-opening a window at final drain) merges rows
// into the existing entry.
func (st *ResultStore) Publish(sink string, start, end uint64, rows []ResultRow) {
	st.published.Add(1)
	st.mu.Lock()
	defer st.mu.Unlock()
	ws := st.bySink[sink]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].Start >= start })
	if i < len(ws) && ws[i].Start == start {
		ws[i].Rows = append(ws[i].Rows, rows...)
		ws[i].Records = len(ws[i].Rows)
		return
	}
	w := WindowResult{Sink: sink, Start: start, End: end, Records: len(rows), Rows: rows}
	ws = append(ws, WindowResult{})
	copy(ws[i+1:], ws[i:])
	ws[i] = w
	if len(ws) > st.keep {
		ws = append(ws[:0], ws[len(ws)-st.keep:]...)
	}
	st.bySink[sink] = ws
}

// Snapshot returns a copy of the retained windows, every sink ascending
// by window start.
func (st *ResultStore) Snapshot() []WindowResult {
	st.mu.Lock()
	defer st.mu.Unlock()
	var sinks []string
	for s := range st.bySink {
		sinks = append(sinks, s)
	}
	sort.Strings(sinks)
	var out []WindowResult
	for _, s := range sinks {
		for _, w := range st.bySink[s] {
			cp := w
			cp.Rows = append([]ResultRow(nil), w.Rows...)
			out = append(out, cp)
		}
	}
	return out
}

// Published returns the total windows published since start.
func (st *ResultStore) Published() int64 { return st.published.Load() }
