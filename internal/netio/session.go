package netio

import (
	"sync"
	"sync/atomic"
	"time"
)

// session is one resumable ingest stream's server-side state. A session
// outlives the TCP connections that carry it: the handshake binds a
// connection to a session (fresh or resumed by token), the session owns
// the feed's watermark cursor, and lastSeq records the newest frame
// sequence number fully ingested — the dedup line a resuming client
// replays against. Between connections the session is detached; the
// server's reaper parks its cursor after the grace period and expires
// the whole session after the session timeout.
type session struct {
	token uint64
	id    int64 // feed cursor id, stable across reconnects

	// lastSeq is the cumulative ack: every frame <= lastSeq has been
	// delivered to the feed exactly once. Read by the credit/ack writer
	// and the resume handshake.
	lastSeq atomic.Uint64

	mu         sync.Mutex
	conn       *serverConn // attached connection, nil while detached
	detachedAt time.Time
	parked     bool
	gone       bool // retired or expired; resume must fail
}

// attach binds c to the session, severing a previous connection that
// still thinks it owns it (a takeover: the client gave up on the old
// socket, the server may not have noticed it die yet). Returns false
// when the session is already retired. The feed unpark happens under
// ss.mu so it cannot interleave with the reaper's park (lock order is
// always session → feed).
func (ss *session) attach(c *serverConn, f *Feed) (old *serverConn, ok bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.gone {
		return nil, false
	}
	old = ss.conn
	ss.conn = c
	ss.detachedAt = time.Time{}
	if ss.parked {
		ss.parked = false
		f.unpark(ss.id)
	}
	return old, true
}

// parkIfStale parks the session's cursor when the session has been
// detached longer than grace. Returns true when it parked the cursor
// this call.
func (ss *session) parkIfStale(now time.Time, grace time.Duration, f *Feed) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.conn != nil || ss.gone || ss.parked || ss.detachedAt.IsZero() {
		return false
	}
	if now.Sub(ss.detachedAt) < grace {
		return false
	}
	ss.parked = true
	f.park(ss.id)
	return true
}

// staleFor returns how long the session has been detached (zero while
// attached).
func (ss *session) staleFor(now time.Time) time.Duration {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.conn != nil || ss.detachedAt.IsZero() {
		return 0
	}
	return now.Sub(ss.detachedAt)
}

// detach releases c's claim on the session; a no-op if another
// connection already took the session over.
func (ss *session) detach(c *serverConn) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.conn != c {
		return false
	}
	ss.conn = nil
	ss.detachedAt = time.Now()
	return true
}

// owns reports whether c is still the session's attached connection.
func (ss *session) owns(c *serverConn) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.conn == c
}

// sessionTable tracks the server's live sessions by token.
type sessionTable struct {
	mu      sync.Mutex
	m       map[uint64]*session
	tokenCt uint64
	seedMix uint64
}

func newSessionTable() *sessionTable {
	return &sessionTable{
		m: make(map[uint64]*session),
		// Perturb tokens across server restarts so a client resuming
		// against a restarted server (which lost all session state)
		// cannot collide with a fresh session by accident.
		seedMix: uint64(time.Now().UnixNano()),
	}
}

// create registers a fresh session around feed cursor id.
func (t *sessionTable) create(id int64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	var token uint64
	for {
		t.tokenCt++
		token = splitmix64(t.seedMix ^ t.tokenCt)
		if token != 0 {
			if _, taken := t.m[token]; !taken {
				break
			}
		}
	}
	ss := &session{token: token, id: id}
	t.m[token] = ss
	return ss
}

// restore re-registers a recovered session under its original token and
// cursor id, with lastSeq at the checkpointed durable ack. The session
// starts detached as of now: the reaper's grace and expiry clocks give
// the client the usual window to reconnect after the restart.
func (t *sessionTable) restore(token uint64, id int64, lastSeq uint64, parked bool) *session {
	ss := &session{token: token, id: id, detachedAt: time.Now(), parked: parked}
	ss.lastSeq.Store(lastSeq)
	t.mu.Lock()
	t.m[token] = ss
	t.mu.Unlock()
	return ss
}

// lookup finds a session by token.
func (t *sessionTable) lookup(token uint64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[token]
}

// remove deletes a session from the table and marks it gone
// unconditionally (clean end of stream, server shutdown).
func (t *sessionTable) remove(ss *session) {
	t.mu.Lock()
	delete(t.m, ss.token)
	t.mu.Unlock()
	ss.mu.Lock()
	ss.gone = true
	ss.mu.Unlock()
}

// expire removes a session only while it is detached, so an expiry
// racing a resume loses: attach holds ss.mu and checks gone, expire
// holds ss.mu and checks conn. Returns false when the session was
// attached (or already gone) and must not be expired.
func (t *sessionTable) expire(ss *session) bool {
	ss.mu.Lock()
	if ss.conn != nil || ss.gone {
		ss.mu.Unlock()
		return false
	}
	ss.gone = true
	ss.mu.Unlock()
	t.mu.Lock()
	delete(t.m, ss.token)
	t.mu.Unlock()
	return true
}

// snapshot returns the live sessions (for the reaper and shutdown).
func (t *sessionTable) snapshot() []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*session, 0, len(t.m))
	for _, ss := range t.m {
		out = append(out, ss)
	}
	return out
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
