package netio

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streambox/internal/bundle"
	"streambox/internal/memsim"
	"streambox/internal/parsefmt"
)

// --- Wire format. -----------------------------------------------------------

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, parsefmt.PB); err != nil {
		t.Fatal(err)
	}
	f, status, err := readHello(&buf)
	if err != nil || status != statusOK || f != parsefmt.PB {
		t.Fatalf("hello round trip: %v %d %v", f, status, err)
	}

	buf.Reset()
	writeAck(&buf, statusOK, 37)
	credits, err := readAck(&buf)
	if err != nil || credits != 37 {
		t.Fatalf("ack round trip: %d %v", credits, err)
	}

	buf.Reset()
	payload := []byte("hello frames")
	writeFrame(&buf, payload)
	writeFrame(&buf, nil) // EOS
	got, eos, err := readFrame(&buf, nil, DefaultMaxFrameBytes)
	if err != nil || eos || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: %q eos=%v err=%v", got, eos, err)
	}
	if _, eos, err = readFrame(&buf, nil, DefaultMaxFrameBytes); err != nil || !eos {
		t.Fatalf("EOS frame: eos=%v err=%v", eos, err)
	}

	buf.Reset()
	writeCredit(&buf, 5)
	if n, err := readCredit(&buf); err != nil || n != 5 {
		t.Fatalf("credit round trip: %d %v", n, err)
	}
}

func TestWireRejectsBadHandshake(t *testing.T) {
	if _, status, err := readHello(strings.NewReader("XXXX\x01\x00\x00\x00")); err == nil || status != statusBadMagic {
		t.Fatalf("bad magic accepted (status %d)", status)
	}
	if _, status, err := readHello(strings.NewReader("SBX1\x01\x09\x00\x00")); err == nil || status != statusBadFormat {
		t.Fatalf("bad format accepted (status %d)", status)
	}
	var buf bytes.Buffer
	writeAck(&buf, statusBadFormat, 0)
	if _, err := readAck(&buf); err == nil {
		t.Fatal("rejection ack read as success")
	}
}

func TestReadFrameBoundsPayload(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, make([]byte, 2048))
	if _, _, err := readFrame(&buf, nil, 1024); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// --- Feed watermark semantics. ----------------------------------------------

func TestFeedWatermarkIsMinAcrossConnections(t *testing.T) {
	f := NewFeed(WireSchema(), 8)
	f.register(1)
	f.register(2)
	if w := f.Watermark(); w != 0 {
		t.Fatalf("fresh feed watermark %d, want 0", w)
	}
	push := func(conn int64, ts uint64) {
		f.push(batch{conn: conn, cols: [][]uint64{{1}, {0}, {0}, {1}, {0}, {0}, {ts}}, maxTs: ts})
		f.Recv(0)
	}
	push(1, 500)
	if w := f.Watermark(); w != 0 {
		t.Fatalf("watermark %d with conn 2 silent, want 0", w)
	}
	push(2, 300)
	if w := f.Watermark(); w != 300 {
		t.Fatalf("watermark %d, want min(500,300)=300", w)
	}
	// Conn 2 retires: only conn 1's cursor remains.
	f.push(batch{conn: 2, retire: true})
	push(1, 900)
	if w := f.Watermark(); w != 900 {
		t.Fatalf("watermark %d after retire, want 900", w)
	}
	// All conns retire: watermark falls back to the delivered maximum.
	f.push(batch{conn: 1, retire: true})
	go f.closeSend()
	if _, ok, _ := f.Recv(0); ok {
		t.Fatal("Recv delivered after close")
	}
	if w := f.Watermark(); w != 900 {
		t.Fatalf("drained watermark %d, want 900", w)
	}
}

// --- Server/client loopback. ------------------------------------------------

// collect drains the feed in the background, tallying records.
func collect(f *Feed) (*atomic.Int64, chan struct{}) {
	var n atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			cols, ok, _ := f.Recv(0)
			if !ok {
				return
			}
			n.Add(int64(len(cols[0])))
		}
	}()
	return &n, done
}

func TestServerClientLoopback(t *testing.T) {
	for _, format := range []parsefmt.Format{parsefmt.JSON, parsefmt.PB, parsefmt.Text} {
		feed := NewFeed(WireSchema(), 8)
		srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
		if err != nil {
			t.Fatal(err)
		}
		got, done := collect(feed)

		gen := RecordGen{Keys: 16, WindowRecords: 100}
		c, err := Dial(srv.Addr().String(), ClientConfig{Format: format, FrameRecords: 64})
		if err != nil {
			t.Fatal(err)
		}
		const total = 1000
		if err := c.Send(gen.Records(0, total)); err != nil {
			t.Fatalf("%v: send: %v", format, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%v: close: %v", format, err)
		}
		srv.Close()
		<-done

		if n := got.Load(); n != total {
			t.Fatalf("%v: feed received %d records, want %d", format, n, total)
		}
		ctr := srv.Counters()
		if ctr.IngestedRecords != total || ctr.DecodeErrors != 0 || ctr.DroppedRecords != 0 {
			t.Fatalf("%v: counters %+v", format, ctr)
		}
		if ctr.Conns != 1 || ctr.ActiveConns != 0 {
			t.Fatalf("%v: connection counters %+v", format, ctr)
		}
	}
}

func TestServerCountsDecodeErrors(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Text, FrameRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A frame whose payload goes bad after two valid records.
	if err := c.takeCredit(); err != nil {
		t.Fatal(err)
	}
	payload := append(parsefmt.EncodeText(RecordGen{}.Records(0, 2)), []byte("not,a,record\n")...)
	if err := writeFrame(c.bw, payload); err != nil {
		t.Fatal(err)
	}
	c.bw.Flush()
	if err := c.Send(RecordGen{}.Records(2, 4)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	<-done

	ctr := srv.Counters()
	if ctr.DecodeErrors != 1 {
		t.Fatalf("decode errors %d, want 1", ctr.DecodeErrors)
	}
	if got.Load() != 4 || ctr.IngestedRecords != 4 {
		t.Fatalf("ingested %d/%d, want 4 (valid records around the bad frame)", got.Load(), ctr.IngestedRecords)
	}
}

func TestCreditWithholdingBlocksClient(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	var overloaded atomic.Bool
	overloaded.Store(true)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Feed:         feed,
		FrameCredits: 2,
		Overloaded:   overloaded.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB, FrameRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	gen := RecordGen{Keys: 4, WindowRecords: 100}
	sent := make(chan error, 1)
	go func() { sent <- c.Send(gen.Records(0, 100)) }() // 10 frames, 2 credits

	select {
	case err := <-sent:
		t.Fatalf("send of 10 frames finished against a 2-frame window while overloaded (err=%v)", err)
	case <-time.After(200 * time.Millisecond):
		// Blocked on credits, as intended.
	}
	overloaded.Store(false)
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("send after pressure cleared: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send still blocked after pressure cleared")
	}
	c.Close()
	srv.Close()
	<-done
	if n := srv.Counters().IngestedRecords; n != 100 {
		t.Fatalf("ingested %d, want 100", n)
	}
}

// --- Result store and HTTP endpoints. ---------------------------------------

func TestResultStoreRetainsAndMerges(t *testing.T) {
	st := NewResultStore(2)
	st.Publish("out", 0, 10, []ResultRow{{Key: 1, Val: 5}})
	st.Publish("out", 10, 20, []ResultRow{{Key: 1, Val: 6}})
	st.Publish("out", 20, 30, []ResultRow{{Key: 1, Val: 7}})
	wins := st.Snapshot()
	if len(wins) != 2 || wins[0].Start != 10 || wins[1].Start != 20 {
		t.Fatalf("retention: %+v", wins)
	}
	// Late duplicate merges rather than duplicating the window.
	st.Publish("out", 20, 30, []ResultRow{{Key: 2, Val: 9}})
	wins = st.Snapshot()
	if len(wins) != 2 || wins[1].Records != 2 {
		t.Fatalf("merge: %+v", wins)
	}
	if st.Published() != 4 {
		t.Fatalf("published %d, want 4", st.Published())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	st := NewResultStore(4)
	st.Publish("out", 0, WindowTicks, []ResultRow{{Key: 3, Val: 42}})
	h := NewHandler(st, func() Metrics {
		return Metrics{
			MemUsed:         [2]int64{1024, 2048},
			MemCapacity:     [2]int64{4096, 8192},
			KLow:            0.5,
			KHigh:           0.25,
			QueueDepths:     [3]int{1, 2, 3},
			IngestedRecords: 99,
			Ingest:          Counters{Conns: 2, IngestedRecords: 99},
			PerConn:         []ConnCounters{{ID: 1, Remote: "127.0.0.1:9", Format: "JSON"}},
		}
	})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/windows", nil))
	if rr.Code != 200 {
		t.Fatalf("/windows: %d", rr.Code)
	}
	var body struct{ Windows []WindowResult }
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Windows) != 1 || body.Windows[0].Rows[0].Val != 42 {
		t.Fatalf("/windows body: %+v", body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	text := rr.Body.String()
	for _, want := range []string{
		`streambox_mempool_used_bytes{tier="hbm"} 1024`,
		`streambox_knob_k_low 0.5`,
		`streambox_sched_queue_depth{priority="urgent"} 3`,
		`streambox_ingested_records_total 99`,
		`streambox_conn_frames_total{conn="1"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestStreamGenMatchesRecordGen pins the equivalence seam: the
// generator adapter must emit exactly the wire stream.
func TestStreamGenMatchesRecordGen(t *testing.T) {
	gen := RecordGen{Keys: 8, WindowRecords: 50, ValueRange: 100, Random: true, Seed: 7}
	sg := NewStreamGen(gen)
	bd := newTestBuilder(t, 120)
	sg.Fill(bd, 120, 0, 0)
	b := bd.Seal()
	for i := 0; i < 120; i++ {
		want := gen.At(uint64(i)).Cols()
		for col := 0; col < 7; col++ {
			if b.At(i, col) != want[col] {
				t.Fatalf("record %d col %d: %d != %d", i, col, b.At(i, col), want[col])
			}
		}
	}
}

// newTestBuilder makes an unmanaged bundle builder for adapter tests.
func newTestBuilder(t *testing.T, capacity int) *bundle.Builder {
	t.Helper()
	bd, err := bundle.NewBuilder(1, WireSchema(), capacity, memsim.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}
