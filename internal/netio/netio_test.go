package netio

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streambox/internal/bundle"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
	"streambox/internal/parsefmt"
)

// --- Wire format. -----------------------------------------------------------

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, parsefmt.PB, 1, 0); err != nil {
		t.Fatal(err)
	}
	f, version, flags, status, err := readHello(&buf, Version)
	if err != nil || status != statusOK || f != parsefmt.PB || version != 1 || flags != 0 {
		t.Fatalf("hello round trip: %v v%d flags %d %d %v", f, version, flags, status, err)
	}

	buf.Reset()
	writeHello(&buf, parsefmt.Columnar, Version, helloFlagSession)
	f, version, flags, status, err = readHello(&buf, Version)
	if err != nil || status != statusOK || f != parsefmt.Columnar || version != Version || flags != helloFlagSession {
		t.Fatalf("columnar hello round trip: %v v%d flags %d %d %v", f, version, flags, status, err)
	}

	buf.Reset()
	writeAck(&buf, 1, statusOK, 37)
	credits, version, err := readAck(&buf)
	if err != nil || credits != 37 || version != 1 {
		t.Fatalf("ack round trip: %d v%d %v", credits, version, err)
	}

	buf.Reset()
	payload := []byte("hello frames")
	writeFrame(&buf, payload)
	writeFrame(&buf, nil) // EOS
	got, eos, err := readFrame(&buf, nil, DefaultMaxFrameBytes)
	if err != nil || eos || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: %q eos=%v err=%v", got, eos, err)
	}
	if _, eos, err = readFrame(&buf, nil, DefaultMaxFrameBytes); err != nil || !eos {
		t.Fatalf("EOS frame: eos=%v err=%v", eos, err)
	}

	buf.Reset()
	writeCredit(&buf, 5)
	if n, err := readCredit(&buf); err != nil || n != 5 {
		t.Fatalf("credit round trip: %d %v", n, err)
	}
}

func TestWireRejectsBadHandshake(t *testing.T) {
	if _, _, _, status, err := readHello(strings.NewReader("XXXX\x01\x00\x00\x00"), Version); err == nil || status != statusBadMagic {
		t.Fatalf("bad magic accepted (status %d)", status)
	}
	if _, _, _, status, err := readHello(strings.NewReader("SBX1\x09\x00\x00\x00"), Version); err == nil || status != statusBadMagic {
		t.Fatalf("future version accepted (status %d)", status)
	}
	if _, _, _, status, err := readHello(strings.NewReader("SBX1\x01\x09\x00\x00"), Version); err == nil || status != statusBadFormat {
		t.Fatalf("bad format accepted (status %d)", status)
	}
	// A version-1 hello cannot carry the columnar format…
	if _, version, _, status, err := readHello(strings.NewReader("SBX1\x01\x03\x00\x00"), Version); err == nil || status != statusBadFormat || version != 1 {
		t.Fatalf("columnar-on-v1 accepted (status %d, v%d)", status, version)
	}
	// …and neither can a version-2 hello against a version-1 server.
	if _, version, _, status, err := readHello(strings.NewReader("SBX1\x02\x03\x00\x00"), 1); err == nil || status != statusBadFormat || version != 1 {
		t.Fatalf("columnar against v1 server accepted (status %d, v%d)", status, version)
	}
	var buf bytes.Buffer
	writeAck(&buf, 1, statusBadFormat, 0)
	if _, _, err := readAck(&buf); !errors.Is(err, errFormatRejected) {
		t.Fatalf("rejection ack: %v, want errFormatRejected", err)
	}
	buf.Reset()
	writeAck(&buf, 1, statusBadMagic, 0)
	if _, _, err := readAck(&buf); err == nil || errors.Is(err, errFormatRejected) {
		t.Fatalf("bad-magic ack: %v, want a non-format error", err)
	}
}

// TestHelloV1BitCompat pins the version-1 exchange byte for byte: a v2
// server must answer a v1 hello with exactly the ack a v1 server wrote,
// and v1 clients (helloVersionFor row formats) must still emit the v1
// hello bytes.
func TestHelloV1BitCompat(t *testing.T) {
	var hello bytes.Buffer
	writeHello(&hello, parsefmt.PB, helloVersionFor(parsefmt.PB, false), 0)
	if got, want := hello.Bytes(), []byte("SBX1\x01\x01\x00\x00"); !bytes.Equal(got, want) {
		t.Fatalf("row hello bytes % x, want % x", got, want)
	}
	f, version, _, status, err := readHello(bytes.NewReader(hello.Bytes()), Version)
	if err != nil || status != statusOK || f != parsefmt.PB || version != 1 {
		t.Fatalf("v2 server on v1 hello: %v v%d %d %v", f, version, status, err)
	}
	var ack bytes.Buffer
	writeAck(&ack, version, statusOK, 16)
	if got, want := ack.Bytes(), []byte("SBXA\x01\x00\x00\x10"); !bytes.Equal(got, want) {
		t.Fatalf("ack to v1 client % x, want the v1 bytes % x", got, want)
	}
}

func TestReadFrameBoundsPayload(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, make([]byte, 2048))
	if _, _, err := readFrame(&buf, nil, 1024); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// --- Feed watermark semantics. ----------------------------------------------

func TestFeedWatermarkIsMinAcrossConnections(t *testing.T) {
	f := NewFeed(WireSchema(), 8)
	f.register(1)
	f.register(2)
	if w := f.Watermark(); w != 0 {
		t.Fatalf("fresh feed watermark %d, want 0", w)
	}
	push := func(conn int64, ts uint64) {
		f.push(batch{conn: conn, cols: [][]uint64{{1}, {0}, {0}, {1}, {0}, {0}, {ts}}, maxTs: ts})
		f.Recv(0)
	}
	push(1, 500)
	if w := f.Watermark(); w != 0 {
		t.Fatalf("watermark %d with conn 2 silent, want 0", w)
	}
	push(2, 300)
	if w := f.Watermark(); w != 300 {
		t.Fatalf("watermark %d, want min(500,300)=300", w)
	}
	// Conn 2 retires: only conn 1's cursor remains.
	f.push(batch{conn: 2, retire: true})
	push(1, 900)
	if w := f.Watermark(); w != 900 {
		t.Fatalf("watermark %d after retire, want 900", w)
	}
	// All conns retire: watermark falls back to the delivered maximum.
	f.push(batch{conn: 1, retire: true})
	go f.closeSend()
	if _, ok, _ := f.Recv(0); ok {
		t.Fatal("Recv delivered after close")
	}
	if w := f.Watermark(); w != 900 {
		t.Fatalf("drained watermark %d, want 900", w)
	}
}

// --- Server/client loopback. ------------------------------------------------

// collect drains the feed in the background, tallying records.
func collect(f *Feed) (*atomic.Int64, chan struct{}) {
	var n atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			cols, ok, _ := f.Recv(0)
			if !ok {
				return
			}
			n.Add(int64(len(cols[0])))
		}
	}()
	return &n, done
}

func TestServerClientLoopback(t *testing.T) {
	for _, format := range []parsefmt.Format{parsefmt.JSON, parsefmt.PB, parsefmt.Text, parsefmt.Columnar} {
		feed := NewFeed(WireSchema(), 8)
		srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
		if err != nil {
			t.Fatal(err)
		}
		got, done := collect(feed)

		gen := RecordGen{Keys: 16, WindowRecords: 100}
		c, err := Dial(srv.Addr().String(), ClientConfig{Format: format, FrameRecords: 64})
		if err != nil {
			t.Fatal(err)
		}
		const total = 1000
		if err := c.Send(gen.Records(0, total)); err != nil {
			t.Fatalf("%v: send: %v", format, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%v: close: %v", format, err)
		}
		srv.Close()
		<-done

		if n := got.Load(); n != total {
			t.Fatalf("%v: feed received %d records, want %d", format, n, total)
		}
		ctr := srv.Counters()
		if ctr.IngestedRecords != total || ctr.DecodeErrors != 0 || ctr.DroppedRecords != 0 || ctr.ChecksumErrors != 0 {
			t.Fatalf("%v: counters %+v", format, ctr)
		}
		if ctr.Conns != 1 || ctr.ActiveConns != 0 {
			t.Fatalf("%v: connection counters %+v", format, ctr)
		}
		if ctr.FramesByFormat[format] != ctr.Frames {
			t.Fatalf("%v: %d of %d frames attributed to the format", format, ctr.FramesByFormat[format], ctr.Frames)
		}
	}
}

// TestColumnarLoopbackSendColumns drives the column-native send path —
// no record materialization on either side — with the feed drawing its
// column slabs from a mempool, and checks the batches and the slab
// recycling both flow.
func TestColumnarLoopbackSendColumns(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	pool := mempool.New(memsim.KNLConfig(), 0)
	feed.UsePool(pool)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}

	// Drain with recycling, as the runtime does.
	var got atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			cols, ok, _ := feed.Recv(0)
			if !ok {
				return
			}
			got.Add(int64(len(cols[0])))
			feed.Recycle(cols)
		}
	}()

	gen := RecordGen{Keys: 16, WindowRecords: 100}
	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Columnar, FrameRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	const total = 1000
	cols := make([][]uint64, 7)
	for i := range cols {
		cols[i] = make([]uint64, total)
	}
	for i := uint64(0); i < total; i++ {
		rc := gen.ColsAt(i)
		for k := range cols {
			cols[k][i] = rc[k]
		}
	}
	if err := c.SendColumns(cols); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	<-done

	if n := got.Load(); n != total {
		t.Fatalf("feed received %d records, want %d", n, total)
	}
	if n := pool.Stats().ColRecycled; n == 0 {
		t.Fatal("no column slab was recycled through the mempool")
	}
	if s := pool.Snapshot(); s.ColSlabsCached == 0 || s.ColSlabBytesCache == 0 {
		t.Fatalf("column free lists empty after the run: %+v", s)
	}
}

// TestColumnarFallback covers a v2 client against a row-only server:
// Dial must retry with PB transparently, and NoFallback must surface
// the rejection instead.
func TestColumnarFallback(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed, MaxVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)

	if _, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Columnar, NoFallback: true}); !errors.Is(err, errFormatRejected) {
		t.Fatalf("NoFallback dial: %v, want errFormatRejected", err)
	}

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Columnar, FrameRecords: 64})
	if err != nil {
		t.Fatalf("fallback dial: %v", err)
	}
	if c.Format() != parsefmt.PB {
		t.Fatalf("fallback format %v, want PB", c.Format())
	}
	gen := RecordGen{Keys: 16, WindowRecords: 100}
	if err := c.Send(gen.Records(0, 200)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	<-done
	if n := got.Load(); n != 200 {
		t.Fatalf("ingested %d records through the fallback, want 200", n)
	}
}

// TestServerRejectsOversizedFrame: a frame declaring more bytes than
// MaxFrameBytes is a decode error and severs the connection, for both
// the row and the columnar receive loops.
func TestServerRejectsOversizedFrame(t *testing.T) {
	for _, format := range []parsefmt.Format{parsefmt.PB, parsefmt.Columnar} {
		feed := NewFeed(WireSchema(), 8)
		srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed, MaxFrameBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		_, done := collect(feed)

		c, err := Dial(srv.Addr().String(), ClientConfig{Format: format})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.takeCredit(); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(c.bw, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		c.bw.Flush()
		c.Close()
		srv.Close()
		<-done
		if n := srv.Counters().DecodeErrors; n != 1 {
			t.Fatalf("%v: decode errors %d, want 1", format, n)
		}
	}
}

// TestColumnarChecksumAndGeometryErrors: a corrupted checksum and a
// malformed header are counted in their own buckets, neither kills the
// connection, and clean frames around them still flow.
func TestColumnarChecksumAndGeometryErrors(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Columnar, FrameRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	gen := RecordGen{Keys: 16, WindowRecords: 100}
	cols := make([][]uint64, 7)
	for i := range cols {
		cols[i] = make([]uint64, 10)
	}
	for i := uint64(0); i < 10; i++ {
		rc := gen.ColsAt(i)
		for k := range cols {
			cols[k][i] = rc[k]
		}
	}

	// Frame 1: flipped checksum byte.
	bad := parsefmt.EncodeColumnarFrame(cols)
	bad[16] ^= 0xFF
	if err := c.takeCredit(); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c.bw, bad); err != nil {
		t.Fatal(err)
	}
	// Frame 2: wrong column count for the wire schema.
	badCols := parsefmt.EncodeColumnarFrame(cols[:5])
	if err := c.takeCredit(); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c.bw, badCols); err != nil {
		t.Fatal(err)
	}
	c.bw.Flush()
	// Frame 3: a clean one, proving the connection survived.
	if err := c.SendColumns(cols); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	<-done

	ctr := srv.Counters()
	if ctr.ChecksumErrors != 1 {
		t.Fatalf("checksum errors %d, want 1 (counters %+v)", ctr.ChecksumErrors, ctr)
	}
	if ctr.DecodeErrors != 1 {
		t.Fatalf("decode errors %d, want 1 (counters %+v)", ctr.DecodeErrors, ctr)
	}
	if n := got.Load(); n != 10 {
		t.Fatalf("ingested %d records, want the 10 from the clean frame", n)
	}
}

// TestConnCountersExposeCreditWindow: the per-connection snapshot
// reports the in-flight credit window while a connection is live.
func TestConnCountersExposeCreditWindow(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed, FrameCredits: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		pc := srv.ConnCounters()
		if len(pc) == 1 && pc[0].CreditWindow == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-conn counters never showed the idle credit window: %+v", pc)
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	srv.Close()
	<-done
}

// TestHelloAckOverWire exercises the rejection acks end to end: bad
// magic and bad format both come back as explicit statuses on the
// socket, not just dropped connections.
func TestHelloAckOverWire(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rawAck := func(hello []byte) [8]byte {
		t.Helper()
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(hello); err != nil {
			t.Fatal(err)
		}
		var ack [8]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			t.Fatal(err)
		}
		return ack
	}

	if ack := rawAck([]byte("XXXX\x01\x00\x00\x00")); ack[5] != statusBadMagic {
		t.Fatalf("bad magic acked with status %d, want %d", ack[5], statusBadMagic)
	}
	if ack := rawAck([]byte("SBX1\x01\x09\x00\x00")); ack[5] != statusBadFormat {
		t.Fatalf("bad format acked with status %d, want %d", ack[5], statusBadFormat)
	}
	// Columnar on a v1 hello: format rejection, acked at version 1.
	if ack := rawAck([]byte("SBX1\x01\x03\x00\x00")); ack[5] != statusBadFormat || ack[4] != 1 {
		t.Fatalf("columnar-on-v1 acked with status %d v%d, want %d v1", ack[5], ack[4], statusBadFormat)
	}
}

func TestServerCountsDecodeErrors(t *testing.T) {
	feed := NewFeed(WireSchema(), 8)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	got, done := collect(feed)

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.Text, FrameRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A frame whose payload goes bad after two valid records.
	if err := c.takeCredit(); err != nil {
		t.Fatal(err)
	}
	payload := append(parsefmt.EncodeText(RecordGen{}.Records(0, 2)), []byte("not,a,record\n")...)
	if err := writeFrame(c.bw, payload); err != nil {
		t.Fatal(err)
	}
	c.bw.Flush()
	if err := c.Send(RecordGen{}.Records(2, 4)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	<-done

	ctr := srv.Counters()
	if ctr.DecodeErrors != 1 {
		t.Fatalf("decode errors %d, want 1", ctr.DecodeErrors)
	}
	if got.Load() != 4 || ctr.IngestedRecords != 4 {
		t.Fatalf("ingested %d/%d, want 4 (valid records around the bad frame)", got.Load(), ctr.IngestedRecords)
	}
}

func TestCreditWithholdingBlocksClient(t *testing.T) {
	feed := NewFeed(WireSchema(), 64)
	var overloaded atomic.Bool
	overloaded.Store(true)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Feed:         feed,
		FrameCredits: 2,
		Overloaded:   overloaded.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, done := collect(feed)

	c, err := Dial(srv.Addr().String(), ClientConfig{Format: parsefmt.PB, FrameRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	gen := RecordGen{Keys: 4, WindowRecords: 100}
	sent := make(chan error, 1)
	go func() { sent <- c.Send(gen.Records(0, 100)) }() // 10 frames, 2 credits

	select {
	case err := <-sent:
		t.Fatalf("send of 10 frames finished against a 2-frame window while overloaded (err=%v)", err)
	case <-time.After(200 * time.Millisecond):
		// Blocked on credits, as intended.
	}
	overloaded.Store(false)
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("send after pressure cleared: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send still blocked after pressure cleared")
	}
	c.Close()
	srv.Close()
	<-done
	if n := srv.Counters().IngestedRecords; n != 100 {
		t.Fatalf("ingested %d, want 100", n)
	}
}

// --- Result store and HTTP endpoints. ---------------------------------------

func TestResultStoreRetainsAndMerges(t *testing.T) {
	st := NewResultStore(2)
	st.Publish("out", 0, 10, []ResultRow{{Key: 1, Val: 5}})
	st.Publish("out", 10, 20, []ResultRow{{Key: 1, Val: 6}})
	st.Publish("out", 20, 30, []ResultRow{{Key: 1, Val: 7}})
	wins := st.Snapshot()
	if len(wins) != 2 || wins[0].Start != 10 || wins[1].Start != 20 {
		t.Fatalf("retention: %+v", wins)
	}
	// Late duplicate merges rather than duplicating the window.
	st.Publish("out", 20, 30, []ResultRow{{Key: 2, Val: 9}})
	wins = st.Snapshot()
	if len(wins) != 2 || wins[1].Records != 2 {
		t.Fatalf("merge: %+v", wins)
	}
	if st.Published() != 4 {
		t.Fatalf("published %d, want 4", st.Published())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	st := NewResultStore(4)
	st.Publish("out", 0, WindowTicks, []ResultRow{{Key: 3, Val: 42}})
	h := NewHandler(st, func() Metrics {
		return Metrics{
			MemUsed:         [3]int64{1024, 2048, 0},
			MemCapacity:     [3]int64{4096, 8192, 0},
			KLow:            0.5,
			KHigh:           0.25,
			QueueDepths:     [3]int{1, 2, 3},
			IngestedRecords: 99,
			Ingest:          Counters{Conns: 2, IngestedRecords: 99},
			PerConn:         []ConnCounters{{ID: 1, Remote: "127.0.0.1:9", Format: "JSON"}},
		}
	})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/windows", nil))
	if rr.Code != 200 {
		t.Fatalf("/windows: %d", rr.Code)
	}
	var body struct{ Windows []WindowResult }
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Windows) != 1 || body.Windows[0].Rows[0].Val != 42 {
		t.Fatalf("/windows body: %+v", body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	text := rr.Body.String()
	for _, want := range []string{
		`streambox_mempool_used_bytes{tier="hbm"} 1024`,
		`streambox_knob_k_low 0.5`,
		`streambox_sched_queue_depth{priority="urgent"} 3`,
		`streambox_ingested_records_total 99`,
		`streambox_conn_frames_total{conn="1"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestStreamGenMatchesRecordGen pins the equivalence seam: the
// generator adapter must emit exactly the wire stream.
func TestStreamGenMatchesRecordGen(t *testing.T) {
	gen := RecordGen{Keys: 8, WindowRecords: 50, ValueRange: 100, Random: true, Seed: 7}
	sg := NewStreamGen(gen)
	bd := newTestBuilder(t, 120)
	sg.Fill(bd, 120, 0, 0)
	b := bd.Seal()
	for i := 0; i < 120; i++ {
		want := gen.At(uint64(i)).Cols()
		for col := 0; col < 7; col++ {
			if b.At(i, col) != want[col] {
				t.Fatalf("record %d col %d: %d != %d", i, col, b.At(i, col), want[col])
			}
		}
	}
}

// newTestBuilder makes an unmanaged bundle builder for adapter tests.
func newTestBuilder(t *testing.T, capacity int) *bundle.Builder {
	t.Helper()
	bd, err := bundle.NewBuilder(1, WireSchema(), capacity, memsim.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}
