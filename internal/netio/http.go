package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Metrics is one scrape of engine and server state for /metrics. The
// serving layer fills it from the live runtime execution, the ingest
// server and the result store.
type Metrics struct {
	// Per-tier mempool state, indexed by memsim.Tier (0 HBM, 1 DRAM,
	// 2 the mmap'd spill tier — capacity 0 unless attached).
	MemUsed, MemCapacity [3]int64
	MemUtilization       [3]float64
	Allocs, Frees        int64
	AllocFailures        int64
	// Column-slab pool occupancy: the mempool's []uint64 free lists
	// backing the zero-copy ingest path.
	ColSlabsCached    int64
	ColSlabBytesCache int64
	ColSlabsRecycled  int64
	// Per-tier live grouped window-state bytes (sorted runs + merge
	// intermediates), indexed like the mempool tiers. Pane sharing is
	// what keeps the sliding-window figure ~overlap× below the
	// duplicate-scatter baseline.
	WindowStateBytes [3]int64
	// Pane-sharing counters: sorted pane runs built, and the extra
	// window references taken on them.
	PaneRuns, SharedRunRefs int64
	// Demand-balance knob probabilities.
	KLow, KHigh float64
	// Scheduler backlog per priority class (low, high, urgent).
	QueueDepths [3]int
	// Pipeline progress.
	IngestedRecords int64
	WindowsClosed   int64
	// Ingest server counters.
	Ingest Counters
	// Per-connection ingest counters.
	PerConn []ConnCounters
	// Windows published to the result store.
	WindowsPublished int64
	// Durability: write-ahead log and crash-recovery state. WALEnabled
	// gates the whole family so fault-free deployments scrape nothing
	// extra. FsyncBucket mirrors wal.Bucket without importing the
	// package (netio only sees the FrameLog interface).
	WALEnabled         bool
	WALAppendedFrames  int64
	WALAppendedBytes   int64
	WALSyncs           int64
	WALFsyncP99Ns      int64
	WALSegmentsActive  int64
	WALSegmentsRetired int64
	WALFsync           []FsyncBucket
	RecoveredSessions  int64
	ReplayedFrames     int64
	// Degradation ladder: the adaptive placement controller and the
	// mmap'd cold spill tier. SpillEnabled gates the family so runs
	// without a spill file scrape nothing extra.
	SpillEnabled       bool
	SpilledRuns        int64
	SpilledBytes       int64
	SpillLoads         int64
	SpillUsedBytes     int64
	SpillCapacityBytes int64
	CtrlDecisions      int64
}

// FsyncBucket is one cumulative fsync-latency histogram bucket
// (upper bound in nanoseconds; -1 means +Inf).
type FsyncBucket struct {
	LeNs  int64
	Count int64
}

var tierNames = [3]string{"hbm", "dram", "spill"}
var priorityNames = [3]string{"low", "high", "urgent"}

// WriteMetrics renders m in the Prometheus text exposition format.
func WriteMetrics(w io.Writer, m Metrics) {
	gauge := func(name, labels string, v interface{}) {
		if labels != "" {
			labels = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s%s %v\n", name, labels, v)
	}
	for t, name := range tierNames {
		l := `tier="` + name + `"`
		gauge("streambox_mempool_used_bytes", l, m.MemUsed[t])
		gauge("streambox_mempool_capacity_bytes", l, m.MemCapacity[t])
		gauge("streambox_mempool_utilization", l, m.MemUtilization[t])
	}
	for t, name := range tierNames {
		gauge("streambox_window_state_bytes", `tier="`+name+`"`, m.WindowStateBytes[t])
	}
	gauge("streambox_pane_runs_total", "", m.PaneRuns)
	gauge("streambox_shared_run_refs_total", "", m.SharedRunRefs)
	gauge("streambox_mempool_allocs_total", "", m.Allocs)
	gauge("streambox_mempool_frees_total", "", m.Frees)
	gauge("streambox_mempool_alloc_failures_total", "", m.AllocFailures)
	gauge("streambox_mempool_colslabs_cached", "", m.ColSlabsCached)
	gauge("streambox_mempool_colslab_cached_bytes", "", m.ColSlabBytesCache)
	gauge("streambox_mempool_colslabs_recycled_total", "", m.ColSlabsRecycled)
	gauge("streambox_knob_k_low", "", m.KLow)
	gauge("streambox_knob_k_high", "", m.KHigh)
	for p, name := range priorityNames {
		gauge("streambox_sched_queue_depth", `priority="`+name+`"`, m.QueueDepths[p])
	}
	gauge("streambox_ingested_records_total", "", m.IngestedRecords)
	gauge("streambox_windows_closed_total", "", m.WindowsClosed)
	gauge("streambox_windows_published_total", "", m.WindowsPublished)
	gauge("streambox_ingest_connections_total", "", m.Ingest.Conns)
	gauge("streambox_ingest_connections_active", "", m.Ingest.ActiveConns)
	gauge("streambox_ingest_frames_total", "", m.Ingest.Frames)
	gauge("streambox_ingest_records_total", "", m.Ingest.IngestedRecords)
	gauge("streambox_ingest_dropped_records_total", "", m.Ingest.DroppedRecords)
	gauge("streambox_ingest_decode_errors_total", "", m.Ingest.DecodeErrors)
	gauge("streambox_ingest_checksum_errors_total", "", m.Ingest.ChecksumErrors)
	gauge("streambox_ingest_sessions_active", "", m.Ingest.ActiveSessions)
	gauge("streambox_ingest_sessions_resumed_total", "", m.Ingest.SessionsResumed)
	gauge("streambox_ingest_sessions_expired_total", "", m.Ingest.ExpiredSessions)
	gauge("streambox_ingest_duplicate_frames_total", "", m.Ingest.DuplicateFrames)
	gauge("streambox_ingest_shed_connections_total", "", m.Ingest.ShedConns)
	gauge("streambox_ingest_parked_cursors", "", m.Ingest.ParkedCursors)
	gauge("streambox_ingest_idle_timeouts_total", "", m.Ingest.IdleTimeouts)
	for f, n := range m.Ingest.FramesByFormat {
		gauge("streambox_ingest_format_frames_total", `format="`+formatLabel[f]+`"`, n)
	}
	if m.WALEnabled {
		gauge("streambox_wal_appended_frames_total", "", m.WALAppendedFrames)
		gauge("streambox_wal_appended_bytes_total", "", m.WALAppendedBytes)
		gauge("streambox_wal_syncs_total", "", m.WALSyncs)
		gauge("streambox_wal_fsync_p99_ns", "", m.WALFsyncP99Ns)
		gauge("streambox_wal_segments_active", "", m.WALSegmentsActive)
		gauge("streambox_wal_segments_retired_total", "", m.WALSegmentsRetired)
		var cum int64
		for _, b := range m.WALFsync {
			le := "+Inf"
			if b.LeNs >= 0 {
				le = strconv.FormatInt(b.LeNs, 10)
			}
			cum += b.Count
			gauge("streambox_wal_fsync_ns_bucket", `le="`+le+`"`, cum)
		}
		gauge("streambox_wal_fsync_ns_count", "", m.WALSyncs)
		gauge("streambox_recovered_sessions", "", m.RecoveredSessions)
		gauge("streambox_replayed_frames_total", "", m.ReplayedFrames)
	}
	if m.SpillEnabled {
		gauge("streambox_spill_evicted_runs_total", "", m.SpilledRuns)
		gauge("streambox_spill_evicted_bytes_total", "", m.SpilledBytes)
		gauge("streambox_spill_loads_total", "", m.SpillLoads)
		gauge("streambox_spill_used_bytes", "", m.SpillUsedBytes)
		gauge("streambox_spill_capacity_bytes", "", m.SpillCapacityBytes)
		gauge("streambox_ctrl_decisions_total", "", m.CtrlDecisions)
	}
	for _, c := range m.PerConn {
		l := fmt.Sprintf(`conn="%d",remote=%q,format=%q`, c.ID, c.Remote, c.Format)
		gauge("streambox_conn_frames_total", l, c.Frames)
		gauge("streambox_conn_records_total", l, c.IngestedRecords)
		gauge("streambox_conn_dropped_records_total", l, c.DroppedRecords)
		gauge("streambox_conn_decode_errors_total", l, c.DecodeErrors)
		gauge("streambox_conn_checksum_errors_total", l, c.ChecksumErrors)
		gauge("streambox_conn_credit_window", l, c.CreditWindow)
	}
}

// NewHandler builds the HTTP mux serving GET /windows (JSON snapshot of
// the latest closed windows per sink) and GET /metrics (text
// exposition), plus a one-line index at /.
func NewHandler(store *ResultStore, metrics func() Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /windows", func(w http.ResponseWriter, r *http.Request) {
		wins := store.Snapshot()
		if sink := r.URL.Query().Get("sink"); sink != "" {
			kept := wins[:0]
			for _, win := range wins {
				if win.Sink == sink {
					kept = append(kept, win)
				}
			}
			wins = kept
		}
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(wins) {
				wins = wins[len(wins)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Windows []WindowResult `json:"windows"`
		}{wins})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteMetrics(w, metrics())
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.TrimLeft(`
streambox serve endpoint
  GET /windows[?sink=NAME&limit=N]  latest closed windows (JSON)
  GET /metrics                      engine + ingest metrics (Prometheus text)
`, "\n"))
	})
	return mux
}
