package mempool

import (
	"sync"
	"testing"

	"streambox/internal/memsim"
)

// TestSlabReuse exhausts a small tier, frees, and re-allocates: the
// recycled allocation must hand back the very same backing array
// (pointer identity), not a fresh one.
func TestSlabReuse(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 64 << 10
	p := New(cfg, 0)

	a, err := p.Alloc(memsim.HBM, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	first := a.Pairs(1000)
	first[0].Key = 7 // touch it so the slab is real
	if _, err := p.Alloc(memsim.HBM, 4<<10); err == nil {
		t.Fatal("tier should be exhausted")
	}
	a.Free()

	b, err := p.Alloc(memsim.HBM, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	second := b.Pairs(1000)
	if &first[0] != &second[0] {
		t.Error("recycled allocation must reuse the freed slab's backing array")
	}
	if p.Stats().Recycled != 1 {
		t.Errorf("recycled = %d, want 1", p.Stats().Recycled)
	}
	b.Free()
}

// TestSlabReuseTierAndClassSeparation checks that free lists are keyed
// by (tier, class): a freed DRAM slab must not satisfy an HBM request,
// nor a different class.
func TestSlabReuseTierAndClassSeparation(t *testing.T) {
	p := testPool()
	d, _ := p.Alloc(memsim.DRAM, 16<<10)
	dp := d.Pairs(100)
	d.Free()

	h, _ := p.Alloc(memsim.HBM, 16<<10)
	hp := h.Pairs(100)
	if &dp[0] == &hp[0] {
		t.Error("HBM allocation reused a DRAM slab")
	}
	h.Free()

	big, _ := p.Alloc(memsim.DRAM, 32<<10)
	bp := big.Pairs(100)
	if &bp[0] == &dp[0] {
		t.Error("32 KiB class reused a 16 KiB slab")
	}
	big.Free()

	// Same tier, same class: now it must hit.
	d2, _ := p.Alloc(memsim.DRAM, 16<<10)
	if got := d2.Pairs(100); &got[0] != &dp[0] {
		t.Error("same-class DRAM allocation should reuse the freed slab")
	}
	d2.Free()
}

func TestPairsSizing(t *testing.T) {
	p := testPool()

	// Exactly a class: full capacity usable in pairs.
	a, _ := p.Alloc(memsim.DRAM, 4<<10)
	pairs := a.Pairs(256) // 256 * 16 B == 4 KiB exactly
	if len(pairs) != 256 {
		t.Errorf("len = %d", len(pairs))
	}
	if cap(pairs) < 256 {
		t.Errorf("cap = %d, want >= 256", cap(pairs))
	}
	// One past the charged size must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pairs beyond the allocation must panic")
			}
		}()
		a.Pairs(257)
	}()
	a.Free()

	// Rounding: a 5 KiB request is charged the 8 KiB class and serves
	// 512 pairs.
	b, _ := p.Alloc(memsim.DRAM, 5<<10)
	if b.Size() != 8<<10 {
		t.Errorf("size = %d", b.Size())
	}
	if got := b.Pairs(512); len(got) != 512 {
		t.Errorf("rounded class must serve 512 pairs, got %d", len(got))
	}
	b.Free()

	// Zero pairs on a minimal allocation (empty-KPA placement).
	c, _ := p.Alloc(memsim.DRAM, 16)
	if got := c.Pairs(0); len(got) != 0 {
		t.Errorf("Pairs(0) len = %d", len(got))
	}
	c.Free()
}

// TestJumboNotRecycled: allocations beyond the largest class pass
// through to the heap and never join a free list.
func TestJumboNotRecycled(t *testing.T) {
	cfg := memsim.KNLConfig()
	p := New(cfg, 0)
	jumbo := int64(300 << 20)
	a, err := p.Alloc(memsim.DRAM, jumbo)
	if err != nil {
		t.Fatal(err)
	}
	n := int(jumbo / memsim.PairBytes)
	first := a.Pairs(n)
	a.Free()
	b, _ := p.Alloc(memsim.DRAM, jumbo)
	second := b.Pairs(n)
	if &first[0] == &second[0] {
		t.Error("jumbo slabs must not be recycled")
	}
	if p.Stats().Recycled != 0 {
		t.Errorf("recycled = %d, want 0", p.Stats().Recycled)
	}
	b.Free()
}

func TestPairsOnFreedAllocationPanics(t *testing.T) {
	p := testPool()
	a, _ := p.Alloc(memsim.DRAM, 4096)
	a.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("Pairs after Free must panic")
		}
	}()
	a.Pairs(1)
}

func TestScratchRecycles(t *testing.T) {
	p := testPool()
	s := p.ScratchFor(memsim.HBM)
	b1 := s.GetPairs(1000)
	s.PutPairs(b1)
	b2 := s.GetPairs(900) // same 16 KiB class
	if &b1[0] != &b2[0] {
		t.Error("scratch must reuse the returned buffer")
	}
	if len(b2) != 900 {
		t.Errorf("len = %d", len(b2))
	}
	// Scratch bypasses accounting.
	if p.Used(memsim.HBM) != 0 {
		t.Errorf("scratch charged the tier: used = %d", p.Used(memsim.HBM))
	}
}

// TestScratchFeedsAllocations: scratch buffers and allocation slabs
// share one free list per (tier, class).
func TestScratchFeedsAllocations(t *testing.T) {
	p := testPool()
	s := p.ScratchFor(memsim.DRAM)
	b := s.GetPairs(256) // 4 KiB class
	s.PutPairs(b)
	a, _ := p.Alloc(memsim.DRAM, 4<<10)
	if got := a.Pairs(256); &got[0] != &b[0] {
		t.Error("allocation should draw from the scratch-returned slab")
	}
	a.Free()
}

func TestSetRecyclingOff(t *testing.T) {
	p := testPool()
	a, _ := p.Alloc(memsim.DRAM, 4<<10)
	first := a.Pairs(10)
	a.Free()
	p.SetRecycling(false)
	b, _ := p.Alloc(memsim.DRAM, 4<<10)
	if got := b.Pairs(10); &got[0] == &first[0] {
		t.Error("recycling disabled must not reuse slabs")
	}
	b.Free()
	c, _ := p.Alloc(memsim.DRAM, 4<<10)
	if got := c.Pairs(10); p.Stats().Recycled != 0 && &got[0] == &first[0] {
		t.Error("freed slab survived SetRecycling(false)")
	}
	c.Free()
}

// TestConcurrentRecycle hammers the sharded free lists from many
// goroutines (run with -race): accounting must conserve and every
// allocation's pairs view must be private to its owner.
func TestConcurrentRecycle(t *testing.T) {
	p := testPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, err := p.Alloc(memsim.Tier(i%2), int64(4+i%60)<<10)
				if err != nil {
					continue
				}
				pairs := a.Pairs(64)
				for j := range pairs {
					pairs[j].Key = uint64(g)
				}
				for j := range pairs {
					if pairs[j].Key != uint64(g) {
						t.Errorf("slab shared across owners")
						break
					}
				}
				a.Free()
			}
		}(g)
	}
	wg.Wait()
	if p.Used(memsim.HBM) != 0 || p.Used(memsim.DRAM) != 0 {
		t.Error("accounting leak after concurrent recycle")
	}
	if p.Stats().Recycled == 0 {
		t.Error("expected some recycling under churn")
	}
}

// TestColSlabReuse pins the column free lists behind the zero-copy
// ingest path: a returned column slab must be handed out again
// (pointer identity), class-rounded, with occupancy gauges tracking.
func TestColSlabReuse(t *testing.T) {
	p := New(memsim.KNLConfig(), 0)

	col := p.TakeCol(memsim.DRAM, 512) // exactly the 4 KiB class
	if len(col) != 512 || cap(col) != 512 {
		t.Fatalf("len %d cap %d, want the full 512-word class", len(col), cap(col))
	}
	first := &col[0]
	p.PutCol(memsim.DRAM, col)
	s := p.Snapshot()
	if s.ColSlabsCached != 1 || s.ColSlabBytesCache == 0 {
		t.Fatalf("occupancy after put: %+v", s)
	}

	again := p.TakeCol(memsim.DRAM, 100)
	if &again[0] != first {
		t.Fatal("column slab not recycled")
	}
	if len(again) != 100 {
		t.Fatalf("recycled slab has len %d, want 100", len(again))
	}
	if p.Stats().ColRecycled != 1 {
		t.Fatalf("ColRecycled %d, want 1", p.Stats().ColRecycled)
	}
	s = p.Snapshot()
	if s.ColSlabsCached != 0 || s.ColSlabBytesCache != 0 {
		t.Fatalf("occupancy after take: %+v", s)
	}

	// Foreign capacities are trimmed to the class floor; tiny ones drop.
	p.PutCol(memsim.DRAM, make([]uint64, 700)) // floor class 4 KiB
	if got := p.TakeCol(memsim.DRAM, 512); cap(got) != 512 {
		t.Fatalf("floored slab cap %d, want 512 words", cap(got))
	}
	p.PutCol(memsim.DRAM, make([]uint64, 10)) // below the smallest class
	if n := p.Snapshot().ColSlabsCached; n != 0 {
		t.Fatalf("sub-class slab cached (%d)", n)
	}

	// Disabling recycling empties the column lists too.
	p.PutCol(memsim.DRAM, p.TakeCol(memsim.DRAM, 512))
	p.SetRecycling(false)
	if s := p.Snapshot(); s.ColSlabsCached != 0 || s.ColSlabBytesCache != 0 {
		t.Fatalf("occupancy survived SetRecycling(false): %+v", s)
	}
}
