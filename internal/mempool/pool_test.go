package mempool

import (
	"errors"
	"testing"
	"testing/quick"

	"streambox/internal/memsim"
)

func testPool() *Pool { return New(memsim.KNLConfig(), 256<<20) }

func TestSizeClasses(t *testing.T) {
	cs := SizeClasses()
	if cs[0] != 4<<10 {
		t.Errorf("smallest class = %d, want 4 KiB", cs[0])
	}
	if cs[len(cs)-1] != 256<<20 {
		t.Errorf("largest class = %d, want 256 MiB", cs[len(cs)-1])
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] != cs[i-1]*2 {
			t.Fatal("classes must double")
		}
	}
}

func TestRoundUp(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{1, 4 << 10},
		{4 << 10, 4 << 10},
		{4<<10 + 1, 8 << 10},
		{100 << 20, 128 << 20},
		{256 << 20, 256 << 20},
		{300 << 20, 300 << 20}, // jumbo passes through
	}
	for _, c := range cases {
		if got := roundUp(c.in); got != c.want {
			t.Errorf("roundUp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAllocFree(t *testing.T) {
	p := testPool()
	a, err := p.Alloc(memsim.HBM, 10<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier() != memsim.HBM {
		t.Error("wrong tier")
	}
	if a.Size() != 16<<10 {
		t.Errorf("size = %d, want rounded 16 KiB", a.Size())
	}
	if a.Request != 10<<10 {
		t.Errorf("request = %d", a.Request)
	}
	if p.Used(memsim.HBM) != 16<<10 {
		t.Errorf("used = %d", p.Used(memsim.HBM))
	}
	a.Free()
	if p.Used(memsim.HBM) != 0 {
		t.Errorf("used after free = %d", p.Used(memsim.HBM))
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := testPool()
	a, _ := p.Alloc(memsim.DRAM, 4096)
	a.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	a.Free()
}

func TestNilAllocationFree(t *testing.T) {
	var a *Allocation
	a.Free() // must not panic
}

func TestExhaustion(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 1 << 20
	p := New(cfg, 0)
	a, err := p.Alloc(memsim.HBM, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Alloc(memsim.HBM, 4096)
	var ex *ErrExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if ex.Tier != memsim.HBM || ex.Free != 0 {
		t.Errorf("exhaustion detail = %+v", ex)
	}
	if ex.Error() == "" {
		t.Error("empty error string")
	}
	a.Free()
	if _, err := p.Alloc(memsim.HBM, 4096); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if p.Stats().Failures != 1 {
		t.Errorf("failures = %d", p.Stats().Failures)
	}
}

func TestDRAMIndependentOfHBM(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 4096
	p := New(cfg, 0)
	if _, err := p.Alloc(memsim.HBM, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(memsim.DRAM, 1<<20); err != nil {
		t.Fatalf("DRAM must be unaffected: %v", err)
	}
}

func TestUrgentReservedPool(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 1 << 20
	p := New(cfg, 512<<10) // half reserved
	// Fill the general HBM pool.
	if _, err := p.Alloc(memsim.HBM, 512<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(memsim.HBM, 4096); err == nil {
		t.Fatal("general pool should be exhausted")
	}
	// Urgent still succeeds from the reserved region, on HBM.
	a, err := p.AllocUrgent(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier() != memsim.HBM {
		t.Error("urgent allocation must be on HBM while reserve lasts")
	}
	a.Free()
}

func TestUrgentFallsBackToDRAM(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 8 << 10
	p := New(cfg, 4<<10)
	if _, err := p.AllocUrgent(4 << 10); err != nil { // takes reserve
		t.Fatal(err)
	}
	if _, err := p.Alloc(memsim.HBM, 4<<10); err != nil { // takes general
		t.Fatal(err)
	}
	a, err := p.AllocUrgent(4 << 10) // both HBM regions full
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier() != memsim.DRAM {
		t.Errorf("urgent fallback tier = %v, want DRAM", a.Tier())
	}
}

func TestReservationCountsInCapacity(t *testing.T) {
	cfg := memsim.KNLConfig()
	p := New(cfg, 256<<20)
	if p.Capacity(memsim.HBM) != cfg.Tier(memsim.HBM).Capacity {
		t.Error("reserved region must count towards HBM capacity")
	}
	a, _ := p.AllocUrgent(4096)
	if p.Used(memsim.HBM) != 4096 {
		t.Errorf("urgent use must show in Used: %d", p.Used(memsim.HBM))
	}
	a.Free()
}

func TestUtilization(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 1 << 20
	p := New(cfg, 0)
	if u := p.Utilization(memsim.HBM); u != 0 {
		t.Errorf("empty utilization = %g", u)
	}
	p.Alloc(memsim.HBM, 512<<10)
	if u := p.Utilization(memsim.HBM); u != 0.5 {
		t.Errorf("utilization = %g, want 0.5", u)
	}
	// A zero-capacity tier reads as fully utilized.
	cfg.Tiers[memsim.HBM].Capacity = 0
	p0 := New(cfg, 0)
	if u := p0.Utilization(memsim.HBM); u != 1 {
		t.Errorf("zero-cap utilization = %g, want 1", u)
	}
}

func TestInvalidSizes(t *testing.T) {
	p := testPool()
	if _, err := p.Alloc(memsim.HBM, 0); err == nil {
		t.Error("zero alloc must fail")
	}
	if _, err := p.Alloc(memsim.HBM, -5); err == nil {
		t.Error("negative alloc must fail")
	}
	if _, err := p.AllocUrgent(0); err == nil {
		t.Error("zero urgent alloc must fail")
	}
}

func TestNegativeReservationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(memsim.KNLConfig(), -1)
}

func TestReservationClampedToCapacity(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 1 << 20
	p := New(cfg, 1<<30) // bigger than HBM: clamps
	if p.Capacity(memsim.HBM) != 1<<20 {
		t.Errorf("capacity = %d", p.Capacity(memsim.HBM))
	}
	// All of HBM is reserve; general allocs fail, urgent succeeds.
	if _, err := p.Alloc(memsim.HBM, 4096); err == nil {
		t.Error("general HBM alloc should fail when fully reserved")
	}
	if a, err := p.AllocUrgent(4096); err != nil || a.Tier() != memsim.HBM {
		t.Errorf("urgent alloc: %v", err)
	}
}

func TestStatsAndPeak(t *testing.T) {
	p := testPool()
	a1, _ := p.Alloc(memsim.DRAM, 1<<20)
	a2, _ := p.Alloc(memsim.DRAM, 1<<20)
	a1.Free()
	a2.Free()
	st := p.Stats()
	if st.Allocs != 2 || st.Frees != 2 {
		t.Errorf("allocs=%d frees=%d", st.Allocs, st.Frees)
	}
	if st.PeakUsed[memsim.DRAM] != 2<<20 {
		t.Errorf("peak = %d, want 2 MiB", st.PeakUsed[memsim.DRAM])
	}
}

// Property: any interleaving of allocs and frees conserves accounting —
// used equals the sum of live allocation sizes and never exceeds capacity.
func TestAccountingConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := memsim.KNLConfig()
		cfg.Tiers[memsim.HBM].Capacity = 64 << 20
		cfg.Tiers[memsim.DRAM].Capacity = 64 << 20
		p := New(cfg, 4<<20)
		var live []*Allocation
		var liveSum [2]int64
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // alloc
				tier := memsim.Tier(op % 2)
				size := int64(op%64+1) << 10
				a, err := p.Alloc(tier, size)
				if err == nil {
					live = append(live, a)
					liveSum[a.Tier()] += a.Size()
				}
			case 2: // free
				if len(live) > 0 {
					a := live[len(live)-1]
					live = live[:len(live)-1]
					liveSum[a.Tier()] -= a.Size()
					a.Free()
				}
			}
			for _, tr := range []memsim.Tier{memsim.HBM, memsim.DRAM} {
				if p.Used(tr) != liveSum[tr] {
					return false
				}
				if p.Used(tr) > p.Capacity(tr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
