// Package mempool implements the engine's custom slab allocator over the
// two memory tiers (paper §5.1). Allocations are rounded up to fixed size
// classes tuned to typical KPA, bundle and window sizes; the pool tracks
// free capacity per tier, which feeds the runtime's resource monitor, and
// keeps a small reserved HBM region for Urgent allocations.
package mempool

import (
	"fmt"
	"sync"

	"streambox/internal/memsim"
)

// sizeClasses are the slab element sizes in bytes: 4 KiB .. 256 MiB in
// powers of two, covering KPAs (tens of KB .. tens of MB), record bundles
// (MBs) and window state (tens to hundreds of MB).
var sizeClasses = func() []int64 {
	var cs []int64
	for s := int64(4 << 10); s <= 256<<20; s <<= 1 {
		cs = append(cs, s)
	}
	return cs
}()

// ErrExhausted is returned when a tier cannot satisfy an allocation.
type ErrExhausted struct {
	Tier memsim.Tier
	Want int64
	Free int64
}

func (e *ErrExhausted) Error() string {
	return fmt.Sprintf("mempool: %v exhausted: want %d bytes, %d free", e.Tier, e.Want, e.Free)
}

// Allocation is a live slab allocation. Free must be called exactly once.
type Allocation struct {
	pool    *Pool
	tier    memsim.Tier
	size    int64 // rounded class size actually charged
	urgent  bool
	freed   bool
	Request int64 // the size the caller asked for
}

// Tier returns the tier the allocation lives on.
func (a *Allocation) Tier() memsim.Tier { return a.tier }

// Size returns the charged (class-rounded) size in bytes.
func (a *Allocation) Size() int64 { return a.size }

// Free returns the allocation to its pool. Freeing twice panics: the
// engine's reference counting must never double-free a bundle or KPA.
func (a *Allocation) Free() {
	if a == nil {
		return
	}
	a.pool.mu.Lock()
	defer a.pool.mu.Unlock()
	if a.freed {
		panic("mempool: double free")
	}
	a.freed = true
	if a.urgent {
		a.pool.usedReserved -= a.size
	} else {
		a.pool.used[a.tier] -= a.size
	}
	a.pool.frees++
}

// Stats summarises pool activity.
type Stats struct {
	Allocs   int64
	Frees    int64
	Failures int64
	PeakUsed [2]int64
}

// Pool is a two-tier slab allocator with capacity accounting.
type Pool struct {
	mu           sync.Mutex
	cap          [2]int64
	used         [2]int64
	reserved     int64 // HBM set aside for Urgent allocations
	usedReserved int64
	peak         [2]int64
	allocs       int64
	frees        int64
	failures     int64
}

// New creates a pool with tier capacities from cfg. reservedHBM bytes of
// HBM are carved out for Urgent allocations (paper §5: "Urgent tasks
// always allocate KPAs from a small reserved pool of HBM").
func New(cfg memsim.Config, reservedHBM int64) *Pool {
	if reservedHBM < 0 {
		panic("mempool: negative reservation")
	}
	hbm := cfg.Tier(memsim.HBM).Capacity
	if reservedHBM > hbm {
		reservedHBM = hbm
	}
	p := &Pool{reserved: reservedHBM}
	p.cap[memsim.HBM] = hbm - reservedHBM
	p.cap[memsim.DRAM] = cfg.Tier(memsim.DRAM).Capacity
	return p
}

// roundUp returns the smallest size class >= n, or n itself for jumbo
// allocations beyond the largest class.
func roundUp(n int64) int64 {
	for _, c := range sizeClasses {
		if n <= c {
			return c
		}
	}
	return n
}

// Alloc carves size bytes (class-rounded) from tier t.
func (p *Pool) Alloc(t memsim.Tier, size int64) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mempool: invalid allocation size %d", size)
	}
	n := roundUp(size)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used[t]+n > p.cap[t] {
		p.failures++
		return nil, &ErrExhausted{Tier: t, Want: n, Free: p.cap[t] - p.used[t]}
	}
	p.used[t] += n
	if p.used[t] > p.peak[t] {
		p.peak[t] = p.used[t]
	}
	p.allocs++
	return &Allocation{pool: p, tier: t, size: n, Request: size}, nil
}

// AllocUrgent carves from the reserved HBM region, falling back to the
// general HBM pool, then DRAM, so Urgent work always gets memory.
func (p *Pool) AllocUrgent(size int64) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mempool: invalid allocation size %d", size)
	}
	n := roundUp(size)
	p.mu.Lock()
	if p.usedReserved+n <= p.reserved {
		p.usedReserved += n
		p.allocs++
		p.mu.Unlock()
		return &Allocation{pool: p, tier: memsim.HBM, size: n, urgent: true, Request: size}, nil
	}
	p.mu.Unlock()
	if a, err := p.Alloc(memsim.HBM, size); err == nil {
		return a, nil
	}
	return p.Alloc(memsim.DRAM, size)
}

// Used returns the bytes in use on tier t (excluding the reserved pool).
func (p *Pool) Used(t memsim.Tier) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.used[t]
	if t == memsim.HBM {
		u += p.usedReserved
	}
	return u
}

// Capacity returns the allocatable bytes on tier t (the reserved HBM
// region counts towards HBM capacity).
func (p *Pool) Capacity(t memsim.Tier) int64 {
	c := p.cap[t]
	if t == memsim.HBM {
		c += p.reserved
	}
	return c
}

// Free returns the unallocated bytes on tier t.
func (p *Pool) Free(t memsim.Tier) int64 { return p.Capacity(t) - p.Used(t) }

// Utilization returns Used/Capacity on tier t in [0,1].
func (p *Pool) Utilization(t memsim.Tier) float64 {
	c := p.Capacity(t)
	if c == 0 {
		return 1
	}
	return float64(p.Used(t)) / float64(c)
}

// Stats returns a snapshot of allocator counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Allocs: p.allocs, Frees: p.frees, Failures: p.failures, PeakUsed: p.peak}
}

// TierSnapshot is one tier's live view for metrics exposition.
type TierSnapshot struct {
	Used, Capacity, Peak int64
	Utilization          float64
}

// Snapshot is a consistent one-scrape view of the whole pool, taken
// under a single lock acquisition (the per-field getters can tear
// between tiers while allocations race).
type Snapshot struct {
	Tiers                  [2]TierSnapshot // indexed by memsim.Tier
	Reserved, UsedReserved int64
	Allocs, Frees          int64
	Failures               int64
}

// Snapshot returns a consistent view of capacities, usage and counters
// for the /metrics endpoint.
func (p *Pool) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s Snapshot
	for t := memsim.Tier(0); t < 2; t++ {
		used, capa := p.used[t], p.cap[t]
		if t == memsim.HBM {
			used += p.usedReserved
			capa += p.reserved
		}
		ts := TierSnapshot{Used: used, Capacity: capa, Peak: p.peak[t]}
		if capa > 0 {
			ts.Utilization = float64(used) / float64(capa)
		} else {
			ts.Utilization = 1
		}
		s.Tiers[t] = ts
	}
	s.Reserved, s.UsedReserved = p.reserved, p.usedReserved
	s.Allocs, s.Frees, s.Failures = p.allocs, p.frees, p.failures
	return s
}

// SizeClasses exposes the slab classes (for tests and documentation).
func SizeClasses() []int64 {
	out := make([]int64, len(sizeClasses))
	copy(out, sizeClasses)
	return out
}
