// Package mempool implements the engine's custom slab allocator over the
// machine's memory tiers (paper §5.1). The two real memory tiers — HBM
// and DRAM — get allocations rounded up to fixed size classes tuned to
// typical KPA, bundle and window sizes; the pool tracks free capacity
// per tier, which feeds the runtime's resource monitor, and keeps a
// small reserved HBM region for Urgent allocations. A third cold tier,
// memsim.Spill, can be attached via AttachSpill: its allocations are
// extents of an mmap'd file (internal/spill) behind the same
// Allocation/TakeCol interfaces, giving the degradation ladder
// HBM → DRAM → Spill a single allocator facade. The spill tier is
// excluded from Pressure: a full spill file degrades latency, it must
// never shed traffic.
//
// Beyond accounting, the pool is a real recycling allocator for the
// engine's hottest object: the KPA pair array. Allocation.Pairs hands
// out backing []algo.Pair storage for an allocation, and Free returns
// that slab to a per-tier, per-size-class, lock-sharded free list, so
// the steady-state grouping path (extract → sort → merge tree → reduce)
// reuses the same slabs instead of pressuring the Go garbage collector.
// The same free lists back transient kernel scratch via ScratchFor.
package mempool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"streambox/internal/algo"
	"streambox/internal/memsim"
	"streambox/internal/spill"
)

// sizeClasses are the slab element sizes in bytes: 4 KiB .. 256 MiB in
// powers of two, covering KPAs (tens of KB .. tens of MB), record bundles
// (MBs) and window state (tens to hundreds of MB).
var sizeClasses = func() []int64 {
	var cs []int64
	for s := int64(4 << 10); s <= 256<<20; s <<= 1 {
		cs = append(cs, s)
	}
	return cs
}()

// slabShards is the number of free-list shards per (tier, class); shard
// locks keep concurrent workers recycling slabs without contending on
// one mutex.
const slabShards = 4

// ErrExhausted is returned when a tier cannot satisfy an allocation.
type ErrExhausted struct {
	Tier memsim.Tier
	Want int64
	Free int64
}

func (e *ErrExhausted) Error() string {
	return fmt.Sprintf("mempool: %v exhausted: want %d bytes, %d free", e.Tier, e.Want, e.Free)
}

// Allocation is a live slab allocation. Free must be called exactly once.
type Allocation struct {
	pool     *Pool
	tier     memsim.Tier
	size     int64 // rounded class size actually charged
	class    int   // size-class index, -1 for jumbo allocations
	urgent   bool
	freed    bool
	pairs    []algo.Pair // backing slab, materialized by Pairs
	spillOff int64       // extent offset for spill-tier allocations
	Request  int64       // the size the caller asked for
}

// Tier returns the tier the allocation lives on.
func (a *Allocation) Tier() memsim.Tier { return a.tier }

// Size returns the charged (class-rounded) size in bytes.
func (a *Allocation) Size() int64 { return a.size }

// Pairs returns a view of n pairs over the allocation's backing slab,
// materializing the slab on first call — recycled from the pool's free
// list when one of the right class is available, freshly allocated
// otherwise. The view's capacity is the full slab, so callers may
// re-slice within the charged size. Recycled slabs hold stale contents:
// callers must write every element before reading it (the engine's
// primitives fill before they read). Pairs and Free are not safe for
// concurrent use on one Allocation; the engine's single-owner KPA
// discipline provides that exclusion.
func (a *Allocation) Pairs(n int) []algo.Pair {
	if a.freed {
		panic("mempool: Pairs on freed allocation")
	}
	if int64(n)*memsim.PairBytes > a.size {
		panic(fmt.Sprintf("mempool: Pairs(%d) exceeds %d-byte allocation", n, a.size))
	}
	if a.tier == memsim.Spill {
		return a.pool.spill.Pairs(a.spillOff, n)
	}
	if a.pairs == nil {
		a.pairs = a.pool.takeSlab(a.tier, a.class, a.size)
	}
	return a.pairs[:n]
}

// Bytes returns the raw extent of a spill-tier allocation as a view
// into the mmap'd file — the surface the runtime encodes spill records
// into (spill.EncodeInto) and decodes them from (spill.View). Panics
// on memory-tier allocations, whose backing is typed pair slabs.
func (a *Allocation) Bytes() []byte {
	if a.freed {
		panic("mempool: Bytes on freed allocation")
	}
	if a.tier != memsim.Spill {
		panic("mempool: Bytes on memory-tier allocation")
	}
	return a.pool.spill.Bytes(a.spillOff, a.size)
}

// Free returns the allocation to its pool — both the capacity
// accounting and, when Pairs materialized a slab, the backing array,
// which joins the tier's free list for reuse. Freeing twice panics: the
// engine's reference counting must never double-free a bundle or KPA.
func (a *Allocation) Free() {
	if a == nil {
		return
	}
	a.pool.mu.Lock()
	if a.freed {
		a.pool.mu.Unlock()
		panic("mempool: double free")
	}
	a.freed = true
	if a.urgent {
		a.pool.usedReserved -= a.size
	} else {
		a.pool.used[a.tier] -= a.size
	}
	a.pool.frees++
	a.pool.mu.Unlock()
	if a.tier == memsim.Spill {
		a.pool.spill.Free(a.spillOff, a.size)
		return
	}
	if a.pairs != nil {
		a.pool.putSlab(a.tier, a.class, a.pairs)
		a.pairs = nil
	}
}

// Stats summarises pool activity.
type Stats struct {
	Allocs   int64
	Frees    int64
	Failures int64
	// Recycled counts slab requests served from a free list instead of
	// the Go heap.
	Recycled int64
	// ColRecycled counts column-slab requests served from a free list.
	ColRecycled int64
	PeakUsed    [memsim.NumTiers]int64
}

// slabList is one shard of a (tier, class) free list.
type slabList struct {
	mu    sync.Mutex
	slabs [][]algo.Pair
}

// colList is one shard of a (tier, class) column free list: []uint64
// slabs backing ingest column batches (the wire→engine zero-copy path),
// recycled through the same size classes as the pair slabs.
type colList struct {
	mu    sync.Mutex
	slabs [][]uint64
}

// Pool is a tiered slab allocator with capacity accounting and
// per-size-class slab recycling over the memory tiers, plus an
// optional attached spill arena for the cold tier.
type Pool struct {
	mu           sync.Mutex
	cap          [memsim.NumTiers]int64
	used         [memsim.NumTiers]int64
	reserved     int64 // HBM set aside for Urgent allocations
	usedReserved int64
	peak         [memsim.NumTiers]int64
	allocs       int64
	frees        int64
	failures     int64

	// spill backs memsim.Spill allocations; nil when the cold tier is
	// disabled. Set once by AttachSpill before concurrent use.
	spill *spill.File

	recycle  atomic.Bool
	recycled atomic.Int64
	shardRR  atomic.Uint32
	free     [memsim.NumTiers][][slabShards]*slabList // [tier][class][shard]

	colFree        [memsim.NumTiers][][slabShards]*colList // [tier][class][shard]
	colCached      atomic.Int64                            // column slabs sitting in free lists
	colCachedBytes atomic.Int64                            // their total capacity in bytes
	colRecycled    atomic.Int64                            // column requests served from a free list
}

// New creates a pool with tier capacities from cfg. reservedHBM bytes of
// HBM are carved out for Urgent allocations (paper §5: "Urgent tasks
// always allocate KPAs from a small reserved pool of HBM").
func New(cfg memsim.Config, reservedHBM int64) *Pool {
	if reservedHBM < 0 {
		panic("mempool: negative reservation")
	}
	hbm := cfg.Tier(memsim.HBM).Capacity
	if reservedHBM > hbm {
		reservedHBM = hbm
	}
	p := &Pool{reserved: reservedHBM}
	p.cap[memsim.HBM] = hbm - reservedHBM
	p.cap[memsim.DRAM] = cfg.Tier(memsim.DRAM).Capacity
	// Spill capacity stays zero until AttachSpill hands over a file.
	for t := 0; t < memsim.NumTiers; t++ {
		p.free[t] = make([][slabShards]*slabList, len(sizeClasses))
		p.colFree[t] = make([][slabShards]*colList, len(sizeClasses))
		for c := range p.free[t] {
			for s := 0; s < slabShards; s++ {
				p.free[t][c][s] = &slabList{}
				p.colFree[t][c][s] = &colList{}
			}
		}
	}
	p.recycle.Store(true)
	return p
}

// AttachSpill connects an mmap'd spill arena as the cold tier. Must be
// called before the pool sees concurrent use (the runtime attaches it
// during Start, before workers run); attaching twice panics.
func (p *Pool) AttachSpill(f *spill.File) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spill != nil {
		panic("mempool: spill already attached")
	}
	p.spill = f
	p.cap[memsim.Spill] = f.Capacity()
}

// Spill returns the attached cold-tier arena, or nil when the spill
// tier is disabled.
func (p *Pool) Spill() *spill.File {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spill
}

// SetRecycling toggles slab reuse; disabling it drops every cached slab
// and makes Pairs/scratch requests hit the Go heap (the `-exp alloc`
// baseline). Accounting is unaffected.
func (p *Pool) SetRecycling(on bool) {
	p.recycle.Store(on)
	if !on {
		for t := range p.free {
			for c := range p.free[t] {
				for s := range p.free[t][c] {
					l := p.free[t][c][s]
					l.mu.Lock()
					l.slabs = nil
					l.mu.Unlock()
					cl := p.colFree[t][c][s]
					cl.mu.Lock()
					cl.slabs = nil
					cl.mu.Unlock()
				}
			}
		}
		p.colCached.Store(0)
		p.colCachedBytes.Store(0)
	}
}

// classIndex returns the index of the smallest class >= n, or -1 for
// jumbo allocations beyond the largest class.
func classIndex(n int64) int {
	for i, c := range sizeClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// roundUp returns the smallest size class >= n, or n itself for jumbo
// allocations beyond the largest class.
func roundUp(n int64) int64 {
	if i := classIndex(n); i >= 0 {
		return sizeClasses[i]
	}
	return n
}

// classFloorIndex returns the index of the largest class <= n bytes, or
// -1 when n is below the smallest class.
func classFloorIndex(n int64) int {
	idx := -1
	for i, c := range sizeClasses {
		if c > n {
			break
		}
		idx = i
	}
	return idx
}

// TakeCol returns a []uint64 column slab of length rows for tier t,
// recycled from the column free lists when a slab of the right class is
// available, freshly allocated otherwise. Capacity is class-rounded so
// the slab can be trimmed and reused across frame sizes. Like scratch
// buffers, column slabs bypass capacity accounting: the batch is
// charged when the runtime copies it into a bundle, and charging the
// transient wire-side staging too would double-count every record into
// spurious backpressure. Recycled slabs hold stale contents — the
// ingest path overwrites every element before reading (columnar frames
// by io.ReadFull, row decoders by append).
func (p *Pool) TakeCol(t memsim.Tier, rows int) []uint64 {
	if t == memsim.Spill {
		if f := p.Spill(); f != nil {
			if col, err := f.TakeCol(rows); err == nil {
				return col
			}
		}
		return make([]uint64, rows) // cold tier disabled or full
	}
	bytes := int64(rows) * 8
	class := classIndex(bytes)
	if class >= 0 && p.recycle.Load() {
		start := p.shardRR.Add(1)
		for i := uint32(0); i < slabShards; i++ {
			l := p.colFree[t][class][(start+i)%slabShards]
			l.mu.Lock()
			if k := len(l.slabs); k > 0 {
				slab := l.slabs[k-1]
				l.slabs[k-1] = nil
				l.slabs = l.slabs[:k-1]
				l.mu.Unlock()
				p.colRecycled.Add(1)
				p.colCached.Add(-1)
				p.colCachedBytes.Add(-int64(cap(slab)) * 8)
				return slab[:rows]
			}
			l.mu.Unlock()
		}
	}
	words := int64(rows)
	if class >= 0 {
		words = sizeClasses[class] / 8
	}
	return make([]uint64, words)[:rows]
}

// PutCol returns a column slab to tier t's free lists. Any capacity is
// accepted: the slab is trimmed down to the largest class its capacity
// holds (append-grown buffers land on a class boundary again instead of
// being thrown away); capacities below the smallest class go back to
// the garbage collector.
func (p *Pool) PutCol(t memsim.Tier, col []uint64) {
	if t == memsim.Spill {
		if f := p.Spill(); f != nil {
			f.PutCol(col)
		}
		return
	}
	if !p.recycle.Load() {
		return
	}
	class := classFloorIndex(int64(cap(col)) * 8)
	if class < 0 {
		return
	}
	words := sizeClasses[class] / 8
	col = col[:0:words]
	l := p.colFree[t][class][p.shardRR.Add(1)%slabShards]
	l.mu.Lock()
	l.slabs = append(l.slabs, col)
	l.mu.Unlock()
	p.colCached.Add(1)
	p.colCachedBytes.Add(words * 8)
}

// takeSlab returns a pair slab of sizeBytes capacity for (tier, class):
// recycled when a class free-list shard has one, fresh otherwise. The
// returned slice has full slab length.
func (p *Pool) takeSlab(t memsim.Tier, class int, sizeBytes int64) []algo.Pair {
	if class >= 0 && p.recycle.Load() {
		start := p.shardRR.Add(1)
		for i := uint32(0); i < slabShards; i++ {
			l := p.free[t][class][(start+i)%slabShards]
			l.mu.Lock()
			if k := len(l.slabs); k > 0 {
				slab := l.slabs[k-1]
				l.slabs[k-1] = nil
				l.slabs = l.slabs[:k-1]
				l.mu.Unlock()
				p.recycled.Add(1)
				return slab
			}
			l.mu.Unlock()
		}
	}
	return make([]algo.Pair, (sizeBytes+memsim.PairBytes-1)/memsim.PairBytes)
}

// putSlab returns a class-sized slab to its free list (jumbos and
// foreign capacities go back to the garbage collector).
func (p *Pool) putSlab(t memsim.Tier, class int, slab []algo.Pair) {
	if class < 0 || !p.recycle.Load() {
		return
	}
	if int64(cap(slab))*memsim.PairBytes != sizeClasses[class] {
		return // not a slab this class owns
	}
	slab = slab[:cap(slab)]
	l := p.free[t][class][p.shardRR.Add(1)%slabShards]
	l.mu.Lock()
	l.slabs = append(l.slabs, slab)
	l.mu.Unlock()
}

// ScratchFor returns an algo.Scratch drawing transient kernel buffers
// (sort scratch, merge ping-pong, radix scatter) from tier t's slab
// free lists. Scratch buffers bypass capacity accounting: they reuse
// slabs the accounting has already released, and charging them would
// turn short-lived sort scratch into spurious backpressure.
func (p *Pool) ScratchFor(t memsim.Tier) *algo.Scratch {
	return &algo.Scratch{
		Get: func(n int) []algo.Pair {
			bytes := int64(n) * memsim.PairBytes
			class := classIndex(bytes)
			if class >= 0 {
				bytes = sizeClasses[class]
			}
			return p.takeSlab(t, class, bytes)
		},
		Put: func(b []algo.Pair) {
			p.putSlab(t, classIndex(int64(cap(b))*memsim.PairBytes), b)
		},
	}
}

// Alloc carves size bytes from tier t: class-rounded slabs on the
// memory tiers, extent-rounded mmap regions on the spill tier.
func (p *Pool) Alloc(t memsim.Tier, size int64) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mempool: invalid allocation size %d", size)
	}
	if t == memsim.Spill {
		return p.allocSpill(size)
	}
	n := roundUp(size)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used[t]+n > p.cap[t] {
		p.failures++
		return nil, &ErrExhausted{Tier: t, Want: n, Free: p.cap[t] - p.used[t]}
	}
	p.used[t] += n
	if p.used[t] > p.peak[t] {
		p.peak[t] = p.used[t]
	}
	p.allocs++
	return &Allocation{pool: p, tier: t, size: n, class: classIndex(size), Request: size}, nil
}

// allocSpill carves an extent from the attached spill arena. Sizes are
// rounded to the arena's 64-byte extent granularity rather than the
// slab classes: spill records are variable-sized and class rounding
// would waste up to half the file.
func (p *Pool) allocSpill(size int64) (*Allocation, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spill == nil {
		p.failures++
		return nil, &ErrExhausted{Tier: memsim.Spill, Want: size, Free: 0}
	}
	off, err := p.spill.Alloc(size)
	if err != nil {
		p.failures++
		var full *spill.ErrFull
		if errors.As(err, &full) {
			return nil, &ErrExhausted{Tier: memsim.Spill, Want: full.Want, Free: full.Free}
		}
		return nil, err
	}
	n := spill.RoundUp(size)
	p.used[memsim.Spill] += n
	if p.used[memsim.Spill] > p.peak[memsim.Spill] {
		p.peak[memsim.Spill] = p.used[memsim.Spill]
	}
	p.allocs++
	return &Allocation{pool: p, tier: memsim.Spill, size: n, class: -1, spillOff: off, Request: size}, nil
}

// AllocUrgent carves from the reserved HBM region, falling back to the
// general HBM pool, then DRAM, so Urgent work always gets memory.
func (p *Pool) AllocUrgent(size int64) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mempool: invalid allocation size %d", size)
	}
	n := roundUp(size)
	p.mu.Lock()
	if p.usedReserved+n <= p.reserved {
		p.usedReserved += n
		p.allocs++
		p.mu.Unlock()
		return &Allocation{pool: p, tier: memsim.HBM, size: n, class: classIndex(size), urgent: true, Request: size}, nil
	}
	p.mu.Unlock()
	if a, err := p.Alloc(memsim.HBM, size); err == nil {
		return a, nil
	}
	return p.Alloc(memsim.DRAM, size)
}

// Used returns the bytes in use on tier t (excluding the reserved pool).
func (p *Pool) Used(t memsim.Tier) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.used[t]
	if t == memsim.HBM {
		u += p.usedReserved
	}
	return u
}

// Capacity returns the allocatable bytes on tier t (the reserved HBM
// region counts towards HBM capacity).
func (p *Pool) Capacity(t memsim.Tier) int64 {
	c := p.cap[t]
	if t == memsim.HBM {
		c += p.reserved
	}
	return c
}

// Free returns the unallocated bytes on tier t.
func (p *Pool) Free(t memsim.Tier) int64 { return p.Capacity(t) - p.Used(t) }

// Utilization returns Used/Capacity on tier t in [0,1]. A zero-capacity
// memory tier reads as fully utilized (X56 has no HBM: allocations must
// go elsewhere), but a detached spill tier reads as empty — "no cold
// tier" must not look like "cold tier full" on the ladder gauges.
func (p *Pool) Utilization(t memsim.Tier) float64 {
	c := p.Capacity(t)
	if c == 0 {
		if t == memsim.Spill {
			return 0
		}
		return 1
	}
	return float64(p.Used(t)) / float64(c)
}

// Pressure is the pool's overall memory pressure: the worst utilization
// across the real memory tiers. It is the admission-control signal — a
// server sheds new connections when HBM or DRAM is nearly exhausted,
// since a fresh stream would only deepen the deficit. The spill tier is
// excluded: filling the cold tier degrades latency, never admission.
func (p *Pool) Pressure() float64 {
	max := 0.0
	for t := memsim.Tier(0); t < memsim.Tier(memsim.MemTiers); t++ {
		if u := p.Utilization(t); u > max {
			max = u
		}
	}
	return max
}

// Stats returns a snapshot of allocator counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Allocs:      p.allocs,
		Frees:       p.frees,
		Failures:    p.failures,
		Recycled:    p.recycled.Load(),
		ColRecycled: p.colRecycled.Load(),
		PeakUsed:    p.peak,
	}
}

// TierSnapshot is one tier's live view for metrics exposition.
type TierSnapshot struct {
	Used, Capacity, Peak int64
	Utilization          float64
}

// Snapshot is a consistent one-scrape view of the whole pool, taken
// under a single lock acquisition (the per-field getters can tear
// between tiers while allocations race).
type Snapshot struct {
	Tiers                  [memsim.NumTiers]TierSnapshot // indexed by memsim.Tier
	Reserved, UsedReserved int64
	Allocs, Frees          int64
	Failures               int64
	Recycled               int64
	// Column-slab pool occupancy: slabs (and their bytes) sitting in
	// the []uint64 free lists, and requests served from them.
	ColSlabsCached    int64
	ColSlabBytesCache int64
	ColSlabsRecycled  int64
}

// Snapshot returns a consistent view of capacities, usage and counters
// for the /metrics endpoint.
func (p *Pool) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var s Snapshot
	for t := memsim.Tier(0); t < memsim.Tier(memsim.NumTiers); t++ {
		used, capa := p.used[t], p.cap[t]
		if t == memsim.HBM {
			used += p.usedReserved
			capa += p.reserved
		}
		ts := TierSnapshot{Used: used, Capacity: capa, Peak: p.peak[t]}
		switch {
		case capa > 0:
			ts.Utilization = float64(used) / float64(capa)
		case t == memsim.Spill:
			ts.Utilization = 0 // cold tier disabled, not full
		default:
			ts.Utilization = 1
		}
		s.Tiers[t] = ts
	}
	s.Reserved, s.UsedReserved = p.reserved, p.usedReserved
	s.Allocs, s.Frees, s.Failures = p.allocs, p.frees, p.failures
	s.Recycled = p.recycled.Load()
	s.ColSlabsCached = p.colCached.Load()
	s.ColSlabBytesCache = p.colCachedBytes.Load()
	s.ColSlabsRecycled = p.colRecycled.Load()
	return s
}

// SizeClasses exposes the slab classes (for tests and documentation).
func SizeClasses() []int64 {
	out := make([]int64, len(sizeClasses))
	copy(out, sizeClasses)
	return out
}
