package mempool

import (
	"errors"
	"testing"

	"streambox/internal/memsim"
	"streambox/internal/spill"
)

func TestSpillTierAlloc(t *testing.T) {
	p := New(memsim.KNLConfig(), 0)

	// Detached cold tier: allocations fail, gauges read empty.
	if _, err := p.Alloc(memsim.Spill, 128); err == nil {
		t.Fatal("Alloc on detached spill tier succeeded")
	}
	if u := p.Utilization(memsim.Spill); u != 0 {
		t.Fatalf("detached spill utilization %v, want 0", u)
	}

	f, err := spill.Create(t.TempDir(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p.AttachSpill(f)
	if got := p.Capacity(memsim.Spill); got != 1<<16 {
		t.Fatalf("spill capacity %d, want %d", got, 1<<16)
	}

	a, err := p.Alloc(memsim.Spill, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier() != memsim.Spill {
		t.Fatalf("tier %v", a.Tier())
	}
	if a.Size() != spill.RoundUp(100) {
		t.Fatalf("size %d, want extent-rounded %d", a.Size(), spill.RoundUp(100))
	}
	if got := len(a.Bytes()); int64(got) != a.Size() {
		t.Fatalf("Bytes len %d, want %d", got, a.Size())
	}
	pairs := a.Pairs(4)
	pairs[3].Key = 42
	if again := a.Pairs(4); again[3].Key != 42 {
		t.Fatal("spill Pairs view is not stable")
	}
	if used := p.Used(memsim.Spill); used != a.Size() {
		t.Fatalf("used %d, want %d", used, a.Size())
	}
	snap := p.Snapshot()
	if snap.Tiers[memsim.Spill].Used != a.Size() {
		t.Fatalf("snapshot spill used %d, want %d", snap.Tiers[memsim.Spill].Used, a.Size())
	}

	// Spill pressure must not trigger admission control.
	if pr := p.Pressure(); pr != 0 {
		t.Fatalf("pressure %v with only spill in use, want 0", pr)
	}

	a.Free()
	if used := p.Used(memsim.Spill); used != 0 {
		t.Fatalf("used after free %d", used)
	}
	if f.Used() != 0 {
		t.Fatalf("arena used after free %d", f.Used())
	}

	// Exhaustion surfaces as the pool's uniform ErrExhausted.
	if _, err := p.Alloc(memsim.Spill, 1<<20); err == nil {
		t.Fatal("oversize spill alloc succeeded")
	} else {
		var ex *ErrExhausted
		if !errors.As(err, &ex) || ex.Tier != memsim.Spill {
			t.Fatalf("err = %v, want spill ErrExhausted", err)
		}
	}
}

func TestSpillTierCols(t *testing.T) {
	p := New(memsim.KNLConfig(), 0)

	// Detached: heap fallback still works.
	col := p.TakeCol(memsim.Spill, 16)
	if len(col) != 16 {
		t.Fatalf("fallback col len %d", len(col))
	}
	p.PutCol(memsim.Spill, col)

	f, err := spill.Create(t.TempDir(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p.AttachSpill(f)

	col = p.TakeCol(memsim.Spill, 16)
	if len(col) != 16 {
		t.Fatalf("col len %d", len(col))
	}
	if f.Used() == 0 {
		t.Fatal("spill col not arena-backed")
	}
	for i := range col {
		col[i] = uint64(i)
	}
	p.PutCol(memsim.Spill, col)
	if f.Used() != 0 {
		t.Fatalf("arena used after PutCol: %d", f.Used())
	}
}
