// Columnar wire frames: the zero-copy ingest format (wire format code
// 3). A frame carries a column-major [ncols][nrows]uint64 batch — the
// exact in-memory layout the engine's column buffers use — so decoding
// degenerates to validate + bounds-check + endian-fix + pointer-cast
// instead of the per-record parse/scatter the row formats pay (the
// per-record data movement §7.4 identifies as the ingest tax).
//
// Frame payload layout (inside a netio length-prefixed frame):
//
//	offset  0: magic "SBXC" (4 bytes)
//	offset  4: ncols, uint16 little-endian
//	offset  6: reserved (2 bytes, zero)
//	offset  8: nrows, uint32 little-endian
//	offset 12: reserved (4 bytes, zero)
//	offset 16: checksum, uint64 little-endian (xxHash64-derived, over
//	           the data words in column order)
//	offset 24: data — ncols columns back to back, each nrows
//	           little-endian uint64 values
//
// Unlike the big-endian handshake/framing integers, columnar payloads
// are little-endian on the wire: that is the native order of every
// deployment host, so the receive path lands socket bytes directly in
// column slabs and FixWireOrder is a no-op (big-endian hosts swap in
// place). The checksum is defined over the decoded values, not the raw
// bytes, so both ends compute it over their native representation.
package parsefmt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"unsafe"
)

// ColumnarHeaderBytes is the fixed size of the columnar frame header.
const ColumnarHeaderBytes = 24

// maxColumnarStreamRows bounds one frame's rows in the record-oriented
// stream decoder, where no outer frame length caps hostile input.
const maxColumnarStreamRows = 1 << 20

var columnarMagic = [4]byte{'S', 'B', 'X', 'C'}

// hostLittle reports whether this host stores uint64 little-endian —
// the wire order, making FixWireOrder a no-op.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostIsLittleEndian reports whether host order matches wire order, in
// which case ColumnBytes views need no conversion in either direction.
func HostIsLittleEndian() bool { return hostLittle }

// ColumnarHeader is one parsed columnar frame header.
type ColumnarHeader struct {
	NCols, NRows int
	Checksum     uint64
}

// ColumnarDataBytes returns the data-section size of an ncols × nrows
// frame.
func ColumnarDataBytes(ncols, nrows int) int64 {
	return int64(ncols) * int64(nrows) * 8
}

// PutColumnarHeader writes a frame header into dst (at least
// ColumnarHeaderBytes long).
func PutColumnarHeader(dst []byte, ncols, nrows int, checksum uint64) {
	_ = dst[:ColumnarHeaderBytes]
	copy(dst, columnarMagic[:])
	binary.LittleEndian.PutUint16(dst[4:], uint16(ncols))
	binary.LittleEndian.PutUint16(dst[6:], 0)
	binary.LittleEndian.PutUint32(dst[8:], uint32(nrows))
	binary.LittleEndian.PutUint32(dst[12:], 0)
	binary.LittleEndian.PutUint64(dst[16:], checksum)
}

// ParseColumnarHeader validates and parses a frame header. It checks
// only the header itself; callers must still check that the data
// section's length equals ColumnarDataBytes(NCols, NRows) before
// touching it.
func ParseColumnarHeader(h []byte) (ColumnarHeader, error) {
	if len(h) < ColumnarHeaderBytes {
		return ColumnarHeader{}, fmt.Errorf("parsefmt: columnar: header truncated at %d bytes", len(h))
	}
	if [4]byte(h[:4]) != columnarMagic {
		return ColumnarHeader{}, fmt.Errorf("parsefmt: columnar: bad magic %q", h[:4])
	}
	if binary.LittleEndian.Uint16(h[6:]) != 0 || binary.LittleEndian.Uint32(h[12:]) != 0 {
		return ColumnarHeader{}, fmt.Errorf("parsefmt: columnar: nonzero reserved header bytes")
	}
	hdr := ColumnarHeader{
		NCols:    int(binary.LittleEndian.Uint16(h[4:])),
		NRows:    int(binary.LittleEndian.Uint32(h[8:])),
		Checksum: binary.LittleEndian.Uint64(h[16:]),
	}
	if hdr.NCols == 0 || hdr.NRows == 0 {
		return ColumnarHeader{}, fmt.Errorf("parsefmt: columnar: empty frame (%d cols × %d rows)", hdr.NCols, hdr.NRows)
	}
	return hdr, nil
}

// ColumnBytes aliases a column's backing array as bytes, in host
// representation, so the receive path can io.ReadFull socket bytes
// straight into a pooled slab (and the send path can write a slab
// without re-encoding). Pair with FixWireOrder to convert between wire
// (little-endian) and host order; on little-endian hosts both are the
// identity and the whole decode is a pointer cast.
func ColumnBytes(col []uint64) []byte {
	if len(col) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&col[0])), len(col)*8)
}

// FixWireOrder converts a column between wire order (little-endian)
// and host order, in place. It is its own inverse; on little-endian
// hosts it is a no-op.
func FixWireOrder(col []uint64) {
	if hostLittle {
		return
	}
	swapWords(col)
}

// swapWords byte-reverses every word (split out so the big-endian path
// stays testable on little-endian hosts).
func swapWords(col []uint64) {
	for i, v := range col {
		col[i] = bits.ReverseBytes64(v)
	}
}

// --- Checksum ---------------------------------------------------------------

// xxHash64 primes.
const (
	xxhPrime1 = 0x9E3779B185EBCA87
	xxhPrime2 = 0xC2B2AE3D27D4EB4F
	xxhPrime3 = 0x165667B19E3779F9
)

func xxhRound(acc, w uint64) uint64 {
	acc += w * xxhPrime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * xxhPrime1
}

func xxhMerge(h, acc uint64) uint64 {
	h ^= xxhRound(0, acc)
	return h*xxhPrime1 + 0x85EBCA77C2B2AE63
}

// ChecksumColumns computes the frame checksum: an xxHash64-derived
// digest over the batch's words in column order. One multiply+rotate
// per word keeps it far off the ingest critical path's bandwidth, and
// operating on values (not bytes) makes it endian-independent.
func ChecksumColumns(cols [][]uint64) uint64 {
	acc := [4]uint64{xxhPrime1, xxhPrime2, 0, 0}
	acc[0] += xxhPrime2 // wrapping variable arithmetic: these sums overflow as constants
	acc[3] -= xxhPrime1
	lane := 0
	var words uint64
	for _, col := range cols {
		for _, w := range col {
			acc[lane] = xxhRound(acc[lane], w)
			lane = (lane + 1) & 3
			words++
		}
	}
	return xxhFinal(acc, words)
}

// ColRange is one column's exact value range. The WAL's
// frame-of-reference packer needs each column's min (the base) and max
// (the delta width); computing them in the checksum pass costs two
// compares on words already in registers, where a separate scan would
// re-stream the whole frame.
type ColRange struct{ Min, Max uint64 }

// ChecksumColumnsRanges computes the same digest as ChecksumColumns —
// bit for bit, both ends of the wire must agree — and fills ranges[i]
// with column i's min/max in the same pass. ranges must have len(cols)
// entries; an empty column yields {0, 0}.
//
// The loop is unrolled four wide: each slot keeps a fixed hash lane
// (lane is the global word index mod 4, so advancing four words leaves
// every slot's lane unchanged), and min/max alternates between two
// accumulator pairs so the loop-carried compare chain is half as deep
// as a naive fused scan.
func ChecksumColumnsRanges(cols [][]uint64, ranges []ColRange) uint64 {
	acc := [4]uint64{xxhPrime1, xxhPrime2, 0, 0}
	acc[0] += xxhPrime2
	acc[3] -= xxhPrime1
	lane := 0
	var words uint64
	for ci, col := range cols {
		var lo, hi uint64
		n := len(col)
		if n > 0 {
			lo, hi = col[0], col[0]
		}
		i := 0
		if n >= 4 {
			lo2, hi2 := lo, hi
			l0, l1, l2, l3 := lane, (lane+1)&3, (lane+2)&3, (lane+3)&3
			a0, a1, a2, a3 := acc[l0], acc[l1], acc[l2], acc[l3]
			for ; i+4 <= n; i += 4 {
				c := col[i : i+4 : i+4]
				v0, v1, v2, v3 := c[0], c[1], c[2], c[3]
				a0 = xxhRound(a0, v0)
				a1 = xxhRound(a1, v1)
				a2 = xxhRound(a2, v2)
				a3 = xxhRound(a3, v3)
				if v0 < lo {
					lo = v0
				}
				if v0 > hi {
					hi = v0
				}
				if v1 < lo2 {
					lo2 = v1
				}
				if v1 > hi2 {
					hi2 = v1
				}
				if v2 < lo {
					lo = v2
				}
				if v2 > hi {
					hi = v2
				}
				if v3 < lo2 {
					lo2 = v3
				}
				if v3 > hi2 {
					hi2 = v3
				}
			}
			acc[l0], acc[l1], acc[l2], acc[l3] = a0, a1, a2, a3
			if lo2 < lo {
				lo = lo2
			}
			if hi2 > hi {
				hi = hi2
			}
		}
		for ; i < n; i++ {
			v := col[i]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			acc[(lane+i)&3] = xxhRound(acc[(lane+i)&3], v)
		}
		lane = (lane + n) & 3
		words += uint64(n)
		ranges[ci] = ColRange{Min: lo, Max: hi}
	}
	return xxhFinal(acc, words)
}

func xxhFinal(acc [4]uint64, words uint64) uint64 {
	h := bits.RotateLeft64(acc[0], 1) + bits.RotateLeft64(acc[1], 7) +
		bits.RotateLeft64(acc[2], 12) + bits.RotateLeft64(acc[3], 18)
	for _, a := range acc {
		h = xxhMerge(h, a)
	}
	h ^= words * 8
	h ^= h >> 33
	h *= xxhPrime2
	h ^= h >> 29
	h *= xxhPrime3
	h ^= h >> 32
	return h
}

// --- Batch encode/decode ----------------------------------------------------

// AppendColumnarFrame appends one frame (header + data) holding cols to
// dst and returns the extended slice. Columns must be non-empty, of
// equal length, at most 65535 of them and at most 1<<32-1 rows —
// violations are programmer errors and panic.
func AppendColumnarFrame(dst []byte, cols [][]uint64) []byte {
	ncols := len(cols)
	if ncols == 0 || ncols > 0xFFFF {
		panic(fmt.Sprintf("parsefmt: columnar: %d columns", ncols))
	}
	nrows := len(cols[0])
	if nrows == 0 || int64(nrows) > 0xFFFFFFFF {
		panic(fmt.Sprintf("parsefmt: columnar: %d rows", nrows))
	}
	for _, c := range cols[1:] {
		if len(c) != nrows {
			panic("parsefmt: columnar: ragged columns")
		}
	}
	var hdr [ColumnarHeaderBytes]byte
	PutColumnarHeader(hdr[:], ncols, nrows, ChecksumColumns(cols))
	dst = append(dst, hdr[:]...)
	for _, c := range cols {
		dst = appendWireWords(dst, c)
	}
	return dst
}

// EncodeColumnarFrame renders one frame holding cols.
func EncodeColumnarFrame(cols [][]uint64) []byte {
	n := int64(ColumnarHeaderBytes) + ColumnarDataBytes(len(cols), len(cols[0]))
	return AppendColumnarFrame(make([]byte, 0, n), cols)
}

// appendWireWords appends a column's little-endian wire bytes.
func appendWireWords(dst []byte, col []uint64) []byte {
	if hostLittle {
		return append(dst, ColumnBytes(col)...)
	}
	var w [8]byte
	for _, v := range col {
		binary.LittleEndian.PutUint64(w[:], v)
		dst = append(dst, w[:]...)
	}
	return dst
}

// DecodeColumnarFrame validates one frame payload and returns its
// columns. The payload must be exactly one frame: every dimension is
// bounds-checked against len(payload) before any data is touched, the
// checksum must match, and malformed input returns an error — never a
// panic or an over-read. takeCol, when non-nil, supplies column storage
// of the requested length (the pooled-slab seam); nil falls back to
// make.
func DecodeColumnarFrame(payload []byte, takeCol func(rows int) []uint64) ([][]uint64, error) {
	hdr, err := ParseColumnarHeader(payload)
	if err != nil {
		return nil, err
	}
	want := int64(ColumnarHeaderBytes) + ColumnarDataBytes(hdr.NCols, hdr.NRows)
	if int64(len(payload)) != want {
		return nil, fmt.Errorf("parsefmt: columnar: %d-byte payload, header describes %d", len(payload), want)
	}
	if takeCol == nil {
		takeCol = func(rows int) []uint64 { return make([]uint64, rows) }
	}
	cols := make([][]uint64, hdr.NCols)
	data := payload[ColumnarHeaderBytes:]
	for i := range cols {
		cols[i] = takeCol(hdr.NRows)[:hdr.NRows]
		copy(ColumnBytes(cols[i]), data[:hdr.NRows*8])
		FixWireOrder(cols[i])
		data = data[hdr.NRows*8:]
	}
	if sum := ChecksumColumns(cols); sum != hdr.Checksum {
		return nil, fmt.Errorf("parsefmt: columnar: checksum %#x, frame declares %#x", sum, hdr.Checksum)
	}
	return cols, nil
}

// --- Record bridge ----------------------------------------------------------

// EncodeColumnarRecords scatters records into columns and renders one
// frame — the compatibility path for record-oriented callers; the
// network fast path builds frames from column buffers directly.
func EncodeColumnarRecords(recs []Record) []byte {
	if len(recs) == 0 {
		return nil
	}
	cols := make([][]uint64, 7)
	for i := range cols {
		cols[i] = make([]uint64, len(recs))
	}
	for r, rec := range recs {
		c := rec.Cols()
		for i := range cols {
			cols[i][r] = c[i]
		}
	}
	return EncodeColumnarFrame(cols)
}

// DecodeColumnarRecords parses a concatenation of columnar frames
// carrying the seven-column record schema back into records.
func DecodeColumnarRecords(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		hdr, err := ParseColumnarHeader(data)
		if err != nil {
			return nil, err
		}
		frame := int64(ColumnarHeaderBytes) + ColumnarDataBytes(hdr.NCols, hdr.NRows)
		if int64(len(data)) < frame {
			return nil, fmt.Errorf("parsefmt: columnar: truncated frame")
		}
		cols, err := DecodeColumnarFrame(data[:frame], nil)
		if err != nil {
			return nil, err
		}
		if len(cols) != 7 {
			return nil, fmt.Errorf("parsefmt: columnar: %d columns, records carry 7", len(cols))
		}
		for r := 0; r < hdr.NRows; r++ {
			out = append(out, fromCols([7]uint64{
				cols[0][r], cols[1][r], cols[2][r], cols[3][r], cols[4][r], cols[5][r], cols[6][r],
			}))
		}
		data = data[frame:]
	}
	return out, nil
}

// columnarStream adapts the frame format to the record-oriented
// StreamDecoder interface (used by tests and generic tooling; the
// server's columnar path reads frames straight into column slabs and
// never goes through here).
type columnarStream struct {
	r    io.Reader
	cols [][]uint64
	row  int
}

func (d *columnarStream) Next() (Record, error) {
	for d.cols == nil || d.row >= len(d.cols[0]) {
		var hdr [ColumnarHeaderBytes]byte
		if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("parsefmt: columnar: truncated header: %w", err)
		}
		h, err := ParseColumnarHeader(hdr[:])
		if err != nil {
			return Record{}, err
		}
		if h.NCols != 7 {
			return Record{}, fmt.Errorf("parsefmt: columnar: %d columns, records carry 7", h.NCols)
		}
		if h.NRows > maxColumnarStreamRows {
			return Record{}, fmt.Errorf("parsefmt: columnar: %d-row frame exceeds stream limit", h.NRows)
		}
		if d.cols == nil {
			d.cols = make([][]uint64, h.NCols)
		}
		for i := range d.cols {
			if cap(d.cols[i]) < h.NRows {
				d.cols[i] = make([]uint64, h.NRows)
			}
			d.cols[i] = d.cols[i][:h.NRows]
			if _, err := io.ReadFull(d.r, ColumnBytes(d.cols[i])); err != nil {
				return Record{}, fmt.Errorf("parsefmt: columnar: truncated column %d: %w", i, err)
			}
			FixWireOrder(d.cols[i])
		}
		if sum := ChecksumColumns(d.cols); sum != h.Checksum {
			return Record{}, fmt.Errorf("parsefmt: columnar: checksum %#x, frame declares %#x", sum, h.Checksum)
		}
		d.row = 0
	}
	r := d.row
	d.row++
	return fromCols([7]uint64{
		d.cols[0][r], d.cols[1][r], d.cols[2][r], d.cols[3][r], d.cols[4][r], d.cols[5][r], d.cols[6][r],
	}), nil
}
