package parsefmt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords(n int, seed int64) []Record {
	r := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			AdID:      r.Uint64() % 1000,
			AdType:    r.Uint64() % 5,
			EventType: r.Uint64() % 3,
			UserID:    r.Uint64() % 100000,
			PageID:    r.Uint64() % 1000,
			IP:        r.Uint64(),
			EventTime: r.Uint64() % 1_000_000,
		}
	}
	return out
}

func TestRoundTripAllFormats(t *testing.T) {
	recs := sampleRecords(500, 1)
	for _, f := range []Format{JSON, PB, Text} {
		data := Encode(f, recs)
		got, err := Decode(f, data)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("%v: round trip mismatch", f)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	for _, f := range []Format{JSON, PB, Text} {
		got, err := Decode(f, nil)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if len(got) != 0 {
			t.Fatalf("%v: decoded %d records from nothing", f, len(got))
		}
	}
}

func TestFormatNames(t *testing.T) {
	if JSON.String() != "JSON" || PB.String() != "Protocol Buffers" || Text.String() != "Text Strings" {
		t.Error("format names must match Figure 11 labels")
	}
}

func TestPBErrors(t *testing.T) {
	if _, err := DecodePB([]byte{0x05, 0x01}); err == nil {
		t.Error("truncated message must fail")
	}
	// Field 9 (tag 0x48) is invalid.
	if _, err := DecodePB([]byte{0x02, 0x48, 0x01}); err == nil {
		t.Error("bad field must fail")
	}
}

func TestTextErrors(t *testing.T) {
	if _, err := DecodeText([]byte("1,2,3\n")); err == nil {
		t.Error("short line must fail")
	}
	if _, err := DecodeText([]byte("1,2,3,4,5,6,7,8\n")); err == nil {
		t.Error("long line must fail")
	}
	if _, err := DecodeText([]byte("a,2,3,4,5,6,7\n")); err == nil {
		t.Error("non-numeric must fail")
	}
	// Trailing newline and blank lines are tolerated.
	got, err := DecodeText([]byte("1,2,3,4,5,6,7\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank line handling: %v %d", err, len(got))
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := DecodeJSON([]byte(`{"ad_id":`)); err == nil {
		t.Error("truncated JSON must fail")
	}
}

func TestEncodingSizes(t *testing.T) {
	recs := sampleRecords(1000, 2)
	j := len(EncodeJSON(recs))
	p := len(EncodePB(recs))
	x := len(EncodeText(recs))
	// JSON carries field names: largest. PB varints: smallest.
	if !(p < x && x < j) {
		t.Fatalf("sizes: pb=%d text=%d json=%d, want pb < text < json", p, x, j)
	}
}

func TestPropPBRoundTrip(t *testing.T) {
	f := func(cols [7]uint64) bool {
		rec := fromCols(cols)
		got, err := DecodePB(EncodePB([]Record{rec}))
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTextRoundTrip(t *testing.T) {
	f := func(cols [7]uint64) bool {
		rec := fromCols(cols)
		got, err := DecodeText(EncodeText([]Record{rec}))
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFactorsOrdering(t *testing.T) {
	// §7.4: X56 parses 3-4x faster than KNL per core.
	ratio := X56ParseScale / KNLParseScale
	if ratio < 3 || ratio > 4.5 {
		t.Fatalf("X56/KNL parse ratio = %g, want 3-4x", ratio)
	}
}
