package parsefmt

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzDecodePB throws arbitrary bytes at the binary decoders — network
// bytes are untrusted, so they must return errors, never panic, and the
// batch and incremental decoders must agree on valid input.
func FuzzDecodePB(f *testing.F) {
	f.Add(EncodePB(sampleFuzzRecords()))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x09, 0x08, 0x01, 0x10, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodePB(data) // must not panic
		_, _ = DecodePBLibrary(data)

		var sgot []Record
		var serr error
		d := NewStreamDecoder(PB, bytes.NewReader(data))
		for serr == nil {
			var r Record
			r, serr = d.Next()
			if serr == nil {
				sgot = append(sgot, r)
			}
		}
		if err != nil {
			return
		}
		// Valid input: the incremental decoder must produce the same
		// records and end cleanly.
		if serr != io.EOF {
			t.Fatalf("batch decoded %d records but stream failed: %v", len(recs), serr)
		}
		if !reflect.DeepEqual(sgot, recs) {
			t.Fatalf("stream decoded %d records, batch %d", len(sgot), len(recs))
		}
		// Decoded records must re-encode and decode to the same values.
		again, err := DecodePB(EncodePB(recs))
		if err != nil || !reflect.DeepEqual(again, recs) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

func sampleFuzzRecords() []Record {
	return []Record{
		{AdID: 1, AdType: 2, EventType: 3, UserID: 4, PageID: 5, IP: 6, EventTime: 7},
		{AdID: ^uint64(0), EventTime: 1 << 62},
	}
}
