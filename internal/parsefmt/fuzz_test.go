package parsefmt

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzDecodePB throws arbitrary bytes at the binary decoders — network
// bytes are untrusted, so they must return errors, never panic, and the
// batch and incremental decoders must agree on valid input.
func FuzzDecodePB(f *testing.F) {
	f.Add(EncodePB(sampleFuzzRecords()))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x09, 0x08, 0x01, 0x10, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodePB(data) // must not panic
		_, _ = DecodePBLibrary(data)

		var sgot []Record
		var serr error
		d := NewStreamDecoder(PB, bytes.NewReader(data))
		for serr == nil {
			var r Record
			r, serr = d.Next()
			if serr == nil {
				sgot = append(sgot, r)
			}
		}
		if err != nil {
			return
		}
		// Valid input: the incremental decoder must produce the same
		// records and end cleanly.
		if serr != io.EOF {
			t.Fatalf("batch decoded %d records but stream failed: %v", len(recs), serr)
		}
		if !reflect.DeepEqual(sgot, recs) {
			t.Fatalf("stream decoded %d records, batch %d", len(sgot), len(recs))
		}
		// Decoded records must re-encode and decode to the same values.
		again, err := DecodePB(EncodePB(recs))
		if err != nil || !reflect.DeepEqual(again, recs) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// FuzzDecodeJSON mirrors FuzzDecodePB for the JSON decoders: no panics,
// batch/stream agreement on valid input, stable re-encode round trip.
func FuzzDecodeJSON(f *testing.F) {
	f.Add(EncodeJSON(sampleFuzzRecords()))
	f.Add([]byte{})
	f.Add([]byte(`{"ad_id":1}`))
	f.Add([]byte(`{"ad_id":1}{"ad_id":`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"event_time":18446744073709551615}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeJSON(data) // must not panic

		var sgot []Record
		var serr error
		d := NewStreamDecoder(JSON, bytes.NewReader(data))
		for serr == nil {
			var r Record
			r, serr = d.Next()
			if serr == nil {
				sgot = append(sgot, r)
			}
		}
		if err != nil {
			return
		}
		if serr != io.EOF {
			t.Fatalf("batch decoded %d records but stream failed: %v", len(recs), serr)
		}
		if !reflect.DeepEqual(sgot, recs) {
			t.Fatalf("stream decoded %d records, batch %d", len(sgot), len(recs))
		}
		again, err := DecodeJSON(EncodeJSON(recs))
		if err != nil || !reflect.DeepEqual(again, recs) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// FuzzDecodeCSV mirrors FuzzDecodePB for the text decoders.
func FuzzDecodeCSV(f *testing.F) {
	f.Add(EncodeText(sampleFuzzRecords()))
	f.Add([]byte{})
	f.Add([]byte("1,2,3,4,5,6,7\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte("not,a,record\n\n8,9,10,11,12,13,14"))
	f.Add([]byte("18446744073709551616,0,0,0,0,0,0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeText(data) // must not panic

		var sgot []Record
		var serr error
		d := NewStreamDecoder(Text, bytes.NewReader(data))
		for serr == nil {
			var r Record
			r, serr = d.Next()
			if serr == nil {
				sgot = append(sgot, r)
			}
		}
		if err != nil {
			return
		}
		if serr != io.EOF {
			t.Fatalf("batch decoded %d records but stream failed: %v", len(recs), serr)
		}
		if !reflect.DeepEqual(sgot, recs) {
			t.Fatalf("stream decoded %d records, batch %d", len(sgot), len(recs))
		}
		again, err := DecodeText(EncodeText(recs))
		if err != nil || !reflect.DeepEqual(again, recs) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// FuzzColumnarFrame attacks the columnar frame validator with mutated
// headers, lengths and checksums: DecodeColumnarFrame must never panic
// or over-read, and whatever it accepts must re-encode to a frame it
// accepts again with identical columns.
func FuzzColumnarFrame(f *testing.F) {
	good := EncodeColumnarRecords(sampleFuzzRecords())
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SBXC"))
	// Truncated data section.
	f.Add(good[:len(good)-3])
	// Oversized dims for the payload.
	huge := bytes.Clone(good)
	huge[8], huge[9] = 0xFF, 0xFF
	f.Add(huge)
	// Corrupted checksum.
	sum := bytes.Clone(good)
	sum[16] ^= 0x01
	f.Add(sum)
	// Nonzero reserved bytes.
	res := bytes.Clone(good)
	res[6] = 1
	f.Add(res)
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, err := DecodeColumnarFrame(data, nil) // must not panic or over-read
		_, _ = DecodeColumnarRecords(data)
		var r Record
		d := NewStreamDecoder(Columnar, bytes.NewReader(data))
		for serr := error(nil); serr == nil; {
			r, serr = d.Next()
		}
		_ = r
		if err != nil {
			return
		}
		// Accepted frames re-encode bit-for-bit and decode identically.
		again, err2 := DecodeColumnarFrame(EncodeColumnarFrame(cols), nil)
		if err2 != nil || !reflect.DeepEqual(again, cols) {
			t.Fatalf("re-encode round trip failed: %v", err2)
		}
	})
}

func sampleFuzzRecords() []Record {
	return []Record{
		{AdID: 1, AdType: 2, EventType: 3, UserID: 4, PageID: 5, IP: 6, EventTime: 7},
		{AdID: ^uint64(0), EventTime: 1 << 62},
	}
}
