package parsefmt

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func wireSampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		u := uint64(i)
		recs[i] = Record{
			AdID:      u % 97,
			AdType:    u % 5,
			EventType: u % 3,
			UserID:    u * 2654435761,
			PageID:    u % 1000,
			IP:        0xC0A80000 + u,
			EventTime: u * 100,
		}
	}
	return recs
}

// drain reads every record from a stream decoder until io.EOF.
func drain(t *testing.T, d StreamDecoder) []Record {
	t.Helper()
	var out []Record
	for {
		r, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, r)
	}
}

// TestStreamDecodersRoundTrip checks the incremental decoders agree
// with the batch decoders on every format, including through a reader
// that delivers one byte at a time.
func TestStreamDecodersRoundTrip(t *testing.T) {
	recs := wireSampleRecords(257)
	for _, f := range []Format{JSON, PB, Text} {
		data := Encode(f, recs)
		got := drain(t, NewStreamDecoder(f, bytes.NewReader(data)))
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("%v: stream decode mismatch", f)
		}
		got = drain(t, NewStreamDecoder(f, iotest1{bytes.NewReader(data)}))
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("%v: one-byte-at-a-time stream decode mismatch", f)
		}
	}
}

// iotest1 yields at most one byte per Read (a worst-case fragmented
// network stream).
type iotest1 struct{ r io.Reader }

func (o iotest1) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestStreamDecodersTruncated checks every format reports an error (not
// a panic, not silent success) on a truncated stream.
func TestStreamDecodersTruncated(t *testing.T) {
	recs := wireSampleRecords(4)
	for _, f := range []Format{JSON, PB, Text} {
		data := Encode(f, recs)
		cut := len(data) - 3
		if f == Text {
			// Cutting mid-digit leaves a shorter but valid number, which
			// no CSV decoder can detect; cut a whole field instead.
			cut = bytes.LastIndexByte(data, ',')
		}
		d := NewStreamDecoder(f, bytes.NewReader(data[:cut]))
		var err error
		for err == nil {
			_, err = d.Next()
		}
		if err == io.EOF {
			t.Fatalf("%v: truncated stream decoded cleanly", f)
		}
	}
}

// TestStreamDecoderGarbage checks malformed bytes surface as errors on
// every format.
func TestStreamDecoderGarbage(t *testing.T) {
	garbage := []byte("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xffnot,a,record\n")
	for _, f := range []Format{JSON, PB, Text} {
		d := NewStreamDecoder(f, bytes.NewReader(garbage))
		var err error
		for err == nil {
			_, err = d.Next()
		}
		if err == io.EOF {
			t.Fatalf("%v: garbage decoded cleanly", f)
		}
	}
}

// TestTextOverflowRejected checks the text decoder rejects values that
// would overflow uint64 instead of silently wrapping.
func TestTextOverflowRejected(t *testing.T) {
	line := []byte("99999999999999999999999,1,2,3,4,5,6\n")
	if _, err := DecodeText(line); err == nil {
		t.Fatal("batch decoder accepted overflowing value")
	}
	d := NewStreamDecoder(Text, bytes.NewReader(line))
	if _, err := d.Next(); err == nil {
		t.Fatal("stream decoder accepted overflowing value")
	}
}

// TestJSONOversizedRecordRejected checks the JSON stream decoder bounds
// per-record memory: a hostile unterminated value must error out, not
// buffer without limit.
func TestJSONOversizedRecordRejected(t *testing.T) {
	endless := io.MultiReader(strings.NewReader(`{"ad_id":1`), repeatReader{b: []byte("1")})
	d := NewStreamDecoder(JSON, endless)
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("unterminated JSON value accepted: %v", err)
	}
}

// repeatReader yields its byte pattern forever.
type repeatReader struct{ b []byte }

func (r repeatReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.b[i%len(r.b)]
	}
	return len(p), nil
}

// TestPBOversizedMessageRejected checks the incremental binary decoder
// bounds per-record allocation.
func TestPBOversizedMessageRejected(t *testing.T) {
	// A length prefix claiming a 1 GiB record.
	data := []byte{0x80, 0x80, 0x80, 0x80, 0x04, 0x08, 0x01}
	d := NewStreamDecoder(PB, bytes.NewReader(data))
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("oversized message accepted: %v", err)
	}
}
