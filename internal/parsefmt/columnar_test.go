package parsefmt

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

func sampleCols(ncols, nrows int) [][]uint64 {
	cols := make([][]uint64, ncols)
	for i := range cols {
		cols[i] = make([]uint64, nrows)
		for r := range cols[i] {
			cols[i][r] = uint64(i)<<32 ^ uint64(r)*2654435761
		}
	}
	return cols
}

func TestColumnarFrameRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {7, 64}, {3, 1000}} {
		cols := sampleCols(dims[0], dims[1])
		frame := EncodeColumnarFrame(cols)
		want := int64(ColumnarHeaderBytes) + ColumnarDataBytes(dims[0], dims[1])
		if int64(len(frame)) != want {
			t.Fatalf("%v: frame is %d bytes, want %d", dims, len(frame), want)
		}
		got, err := DecodeColumnarFrame(frame, nil)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if !reflect.DeepEqual(got, cols) {
			t.Fatalf("%v: columns changed across the round trip", dims)
		}
	}
}

// TestColumnarDecodeTakeCol pins the pooled-slab seam: storage with
// excess capacity and stale contents must come back trimmed and
// correct.
func TestColumnarDecodeTakeCol(t *testing.T) {
	cols := sampleCols(7, 33)
	frame := EncodeColumnarFrame(cols)
	taken := 0
	got, err := DecodeColumnarFrame(frame, func(rows int) []uint64 {
		taken++
		slab := make([]uint64, rows+100)
		for i := range slab {
			slab[i] = ^uint64(0) // stale garbage the copy must overwrite
		}
		return slab
	})
	if err != nil || taken != 7 {
		t.Fatalf("takeCol used %d times, err %v", taken, err)
	}
	for i := range got {
		if len(got[i]) != 33 || !reflect.DeepEqual(got[i], cols[i]) {
			t.Fatalf("col %d wrong through pooled storage", i)
		}
	}
}

func TestColumnarRejectsMalformedFrames(t *testing.T) {
	good := EncodeColumnarFrame(sampleCols(7, 16))
	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(good)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:10],
		"bad magic":        mutate(func(b []byte) { b[0] = 'X' }),
		"reserved16":       mutate(func(b []byte) { b[6] = 1 }),
		"reserved32":       mutate(func(b []byte) { b[12] = 1 }),
		"zero cols":        mutate(func(b []byte) { b[4], b[5] = 0, 0 }),
		"zero rows":        mutate(func(b []byte) { b[8], b[9], b[10], b[11] = 0, 0, 0, 0 }),
		"truncated data":   good[:len(good)-1],
		"trailing bytes":   append(bytes.Clone(good), 0),
		"rows beyond data": mutate(func(b []byte) { b[8]++ }),
		"bad checksum":     mutate(func(b []byte) { b[16] ^= 1 }),
		"corrupt word":     mutate(func(b []byte) { b[ColumnarHeaderBytes+3] ^= 0x80 }),
	}
	for name, frame := range cases {
		if _, err := DecodeColumnarFrame(frame, nil); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := DecodeColumnarFrame(good, nil); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

func TestChecksumColumnsSensitivity(t *testing.T) {
	cols := sampleCols(7, 64)
	base := ChecksumColumns(cols)
	cols[3][17]++
	if ChecksumColumns(cols) == base {
		t.Fatal("checksum blind to a single-word change")
	}
	cols[3][17]--
	if ChecksumColumns(cols) != base {
		t.Fatal("checksum not deterministic")
	}
	// Column order matters: swapping two equal-length columns must not
	// collide (the words travel in column order).
	swapped := [][]uint64{cols[1], cols[0]}
	if ChecksumColumns(cols[:2]) == ChecksumColumns(swapped) {
		t.Fatal("checksum blind to column order")
	}
}

// TestChecksumColumnsRangesMatches pins the wire contract: the fused
// checksum+min/max scan (server ingest) must produce the exact digest
// of ChecksumColumns (client encode) for any geometry — including the
// ragged and sub-unroll column lengths the unrolled loop special-cases
// — along with exact per-column ranges.
func TestChecksumColumnsRangesMatches(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 3}, {2, 4}, {7, 5}, {7, 64}, {3, 1001}, {5, 0}} {
		cols := sampleCols(dims[0], dims[1])
		if dims[0] > 1 && dims[1] > 2 {
			cols[1] = cols[1][:dims[1]-2] // ragged: lane offset shifts mid-frame
		}
		ranges := make([]ColRange, len(cols))
		if got, want := ChecksumColumnsRanges(cols, ranges), ChecksumColumns(cols); got != want {
			t.Fatalf("%v: fused checksum %#x, ChecksumColumns %#x", dims, got, want)
		}
		for ci, col := range cols {
			var lo, hi uint64
			if len(col) > 0 {
				lo, hi = col[0], col[0]
				for _, v := range col {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			if ranges[ci] != (ColRange{Min: lo, Max: hi}) {
				t.Fatalf("%v col %d: range %+v, want {%d %d}", dims, ci, ranges[ci], lo, hi)
			}
		}
	}
}

func TestSwapWordsIsWireOrderInverse(t *testing.T) {
	col := []uint64{0, 1, 0x0123456789ABCDEF, ^uint64(0)}
	want := bytes.Clone(ColumnBytes(col))
	swapWords(col)
	swapWords(col)
	if !bytes.Equal(ColumnBytes(col), want) {
		t.Fatal("swapWords is not an involution")
	}
}

func TestColumnarRecordsBridge(t *testing.T) {
	recs := []Record{
		{AdID: 1, AdType: 2, EventType: 3, UserID: 4, PageID: 5, IP: 6, EventTime: 7},
		{AdID: ^uint64(0), EventTime: 1 << 62},
		{UserID: 42},
	}
	data := Encode(Columnar, recs)
	got, err := Decode(Columnar, data)
	if err != nil || !reflect.DeepEqual(got, recs) {
		t.Fatalf("record bridge round trip: %v", err)
	}
	// Two concatenated frames decode as one stream, batch and
	// incremental alike.
	both := append(bytes.Clone(data), EncodeColumnarRecords(recs)...)
	got, err = DecodeColumnarRecords(both)
	if err != nil || len(got) != 6 {
		t.Fatalf("concatenated frames: %d records, %v", len(got), err)
	}
	var sgot []Record
	d := NewStreamDecoder(Columnar, bytes.NewReader(both))
	for {
		r, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sgot = append(sgot, r)
	}
	if !reflect.DeepEqual(sgot, got) {
		t.Fatalf("stream decoded %d records, batch %d", len(sgot), len(got))
	}
	if Encode(Columnar, nil) != nil {
		t.Fatal("empty record set must encode to no bytes")
	}
}
