// Streaming decoders: the batch Decode* entry points require the whole
// payload in memory, which is fine for Figure 11's parse study but not
// for network ingestion, where bytes arrive incrementally off a socket
// and are untrusted. StreamDecoder reads records one at a time from an
// io.Reader, returns errors (never panics) on malformed or truncated
// input, and bounds per-record memory so a hostile peer cannot force
// unbounded allocation.
package parsefmt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// maxWireRecordBytes bounds one encoded record on the wire. A legitimate
// record is well under 200 bytes in every format; anything larger is a
// corrupt or hostile stream.
const maxWireRecordBytes = 1 << 16

// StreamDecoder decodes records incrementally from a byte stream. Next
// returns io.EOF at a clean end of stream and a descriptive error on
// malformed input; decoding cannot continue after an error.
type StreamDecoder interface {
	Next() (Record, error)
}

// NewStreamDecoder returns an incremental decoder for format f reading
// from r.
func NewStreamDecoder(f Format, r io.Reader) StreamDecoder {
	switch f {
	case JSON:
		br := &budgetReader{r: r}
		return &jsonStream{dec: json.NewDecoder(br), br: br}
	case PB:
		return &pbStream{br: bufio.NewReader(r)}
	case Columnar:
		return &columnarStream{r: bufio.NewReader(r)}
	default:
		return &textStream{br: bufio.NewReader(r)}
	}
}

// --- JSON -------------------------------------------------------------------

// budgetReader enforces the per-record byte bound for the JSON decoder,
// whose internal buffering would otherwise grow without limit on a
// hostile unterminated value: each Next replenishes the read budget, so
// a single record can pull at most maxWireRecordBytes (plus buffered
// readahead) before erroring out.
type budgetReader struct {
	r      io.Reader
	budget int
}

var errRecordTooLarge = fmt.Errorf("parsefmt: json: record exceeds %d-byte limit", maxWireRecordBytes)

func (b *budgetReader) Read(p []byte) (int, error) {
	if b.budget <= 0 {
		return 0, errRecordTooLarge
	}
	if len(p) > b.budget {
		p = p[:b.budget]
	}
	n, err := b.r.Read(p)
	b.budget -= n
	return n, err
}

type jsonStream struct {
	dec *json.Decoder
	br  *budgetReader
}

func (d *jsonStream) Next() (Record, error) {
	d.br.budget = maxWireRecordBytes
	var r Record
	if err := d.dec.Decode(&r); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("parsefmt: json: %w", err)
	}
	return r, nil
}

// --- Protobuf-style varint binary -------------------------------------------

type pbStream struct {
	br  *bufio.Reader
	buf []byte
}

func (d *pbStream) Next() (Record, error) {
	msgLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("parsefmt: pb: length prefix: %w", err)
	}
	if msgLen > maxWireRecordBytes {
		return Record{}, fmt.Errorf("parsefmt: pb: message of %d bytes exceeds limit", msgLen)
	}
	if uint64(cap(d.buf)) < msgLen {
		d.buf = make([]byte, msgLen)
	}
	msg := d.buf[:msgLen]
	if _, err := io.ReadFull(d.br, msg); err != nil {
		return Record{}, fmt.Errorf("parsefmt: pb: truncated message: %w", err)
	}
	return decodePBRecord(msg)
}

// --- Text (comma-separated integers) ----------------------------------------

type textStream struct {
	br *bufio.Reader
}

func (d *textStream) Next() (Record, error) {
	for {
		line, err := d.readLine()
		if err != nil {
			return Record{}, err
		}
		if len(line) == 0 {
			continue // blank line, as in the batch decoder
		}
		return parseTextLine(line)
	}
}

// readLine reads one newline-terminated line (the final line may omit
// the newline), bounding its length.
func (d *textStream) readLine() ([]byte, error) {
	var long []byte
	for {
		chunk, err := d.br.ReadSlice('\n')
		switch err {
		case nil:
			line := chunk[:len(chunk)-1]
			if long != nil {
				line = append(long, line...)
			}
			return bytes.TrimSuffix(line, []byte{'\r'}), nil
		case bufio.ErrBufferFull:
			long = append(long, chunk...)
			if len(long) > maxWireRecordBytes {
				return nil, fmt.Errorf("parsefmt: text: line of %d+ bytes exceeds limit", len(long))
			}
		case io.EOF:
			if len(chunk) == 0 && long == nil {
				return nil, io.EOF
			}
			return append(long, chunk...), nil
		default:
			return nil, fmt.Errorf("parsefmt: text: %w", err)
		}
	}
}
