// Package parsefmt implements the ingestion-format study of paper §7.4
// (Figure 11): encoding and parsing YSB records as JSON, as a
// protobuf-style varint binary format (hand-written, stdlib only), and
// as comma-separated text. Parse throughput is measured for real on the
// host and projected onto the paper's KNL and X56 machines with the
// per-core scale factors below.
package parsefmt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
)

// Record is one YSB event with seven numeric columns (§6).
type Record struct {
	AdID      uint64 `json:"ad_id"`
	AdType    uint64 `json:"ad_type"`
	EventType uint64 `json:"event_type"`
	UserID    uint64 `json:"user_id"`
	PageID    uint64 `json:"page_id"`
	IP        uint64 `json:"ip"`
	EventTime uint64 `json:"event_time"`
}

// Cols flattens the record into column order.
func (r Record) Cols() [7]uint64 {
	return [7]uint64{r.AdID, r.AdType, r.EventType, r.UserID, r.PageID, r.IP, r.EventTime}
}

// fromCols rebuilds a record.
func fromCols(c [7]uint64) Record {
	return Record{c[0], c[1], c[2], c[3], c[4], c[5], c[6]}
}

// --- JSON ------------------------------------------------------------------

// EncodeJSON renders records as newline-delimited JSON objects.
func EncodeJSON(recs []Record) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			panic(err) // numeric structs cannot fail to encode
		}
	}
	return buf.Bytes()
}

// DecodeJSON parses newline-delimited JSON records.
func DecodeJSON(data []byte) ([]Record, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []Record
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("parsefmt: json: %w", err)
		}
		out = append(out, r)
	}
	return out, nil
}

// --- Protobuf-style varint binary -------------------------------------------
//
// Wire format per record: 7 fields, each (tag byte, uvarint value),
// prefixed by a uvarint byte length — the shape of a proto3 message
// with fields 1..7, implemented from scratch.

// EncodePB renders records in the varint wire format.
func EncodePB(recs []Record) []byte {
	var buf []byte
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, r := range recs {
		body = body[:0]
		for i, v := range r.Cols() {
			body = append(body, byte((i+1)<<3)) // field tag, wire type 0
			n := binary.PutUvarint(tmp[:], v)
			body = append(body, tmp[:n]...)
		}
		n := binary.PutUvarint(tmp[:], uint64(len(body)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, body...)
	}
	return buf
}

// DecodePB parses the varint wire format.
func DecodePB(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		msgLen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < msgLen {
			return nil, fmt.Errorf("parsefmt: pb: truncated length prefix")
		}
		data = data[n:]
		msg := data[:msgLen]
		data = data[msgLen:]
		r, err := decodePBRecord(msg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// decodePBRecord parses one length-delimited message body (the strict
// hand-inlined configuration: fields 1..7 only, wire type 0).
func decodePBRecord(msg []byte) (Record, error) {
	if len(msg) > maxWireRecordBytes {
		return Record{}, fmt.Errorf("parsefmt: pb: message of %d bytes exceeds limit", len(msg))
	}
	var cols [7]uint64
	for len(msg) > 0 {
		tag := msg[0]
		field := int(tag >> 3)
		if field < 1 || field > 7 {
			return Record{}, fmt.Errorf("parsefmt: pb: bad field %d", field)
		}
		v, vn := binary.Uvarint(msg[1:])
		if vn <= 0 {
			return Record{}, fmt.Errorf("parsefmt: pb: truncated varint")
		}
		cols[field-1] = v
		msg = msg[1+vn:]
	}
	return fromCols(cols), nil
}

// fieldDescriptor drives the library-style decoder: one entry per
// proto field, dispatched through closures the way a protobuf runtime
// dispatches through generated setters and descriptor tables.
type fieldDescriptor struct {
	num      int
	wireType uint8
	set      func(m *Record, v uint64)
}

var recordDescriptor = []fieldDescriptor{
	{1, 0, func(m *Record, v uint64) { m.AdID = v }},
	{2, 0, func(m *Record, v uint64) { m.AdType = v }},
	{3, 0, func(m *Record, v uint64) { m.EventType = v }},
	{4, 0, func(m *Record, v uint64) { m.UserID = v }},
	{5, 0, func(m *Record, v uint64) { m.PageID = v }},
	{6, 0, func(m *Record, v uint64) { m.IP = v }},
	{7, 0, func(m *Record, v uint64) { m.EventTime = v }},
}

// DecodePBLibrary parses the same wire format the way a general-purpose
// protobuf runtime does: one heap-allocated message per record,
// descriptor-table dispatch per field, wire-type validation, and
// tolerant skipping of unknown fields. This is the configuration the
// paper measures ("Protocol Buffers (v3.6.0)", §7.4); DecodePB above is
// the idealized hand-inlined codec.
func DecodePBLibrary(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		msgLen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < msgLen {
			return nil, fmt.Errorf("parsefmt: pb: truncated length prefix")
		}
		data = data[n:]
		msg := data[:msgLen]
		data = data[msgLen:]
		m := new(Record) // per-message allocation, as in the library
		for len(msg) > 0 {
			tag := msg[0]
			field := int(tag >> 3)
			wire := tag & 7
			if wire != 0 {
				return nil, fmt.Errorf("parsefmt: pb: unsupported wire type %d", wire)
			}
			v, vn := binary.Uvarint(msg[1:])
			if vn <= 0 {
				return nil, fmt.Errorf("parsefmt: pb: truncated varint")
			}
			// Descriptor-table dispatch.
			known := false
			for i := range recordDescriptor {
				if recordDescriptor[i].num == field {
					recordDescriptor[i].set(m, v)
					known = true
					break
				}
			}
			_ = known // unknown fields are skipped, per proto3
			msg = msg[1+vn:]
		}
		out = append(out, *m)
	}
	return out, nil
}

// --- Text (comma-separated integers) ----------------------------------------

// EncodeText renders records as comma-separated integer lines.
func EncodeText(recs []Record) []byte {
	var buf bytes.Buffer
	for _, r := range recs {
		cols := r.Cols()
		for i, v := range cols {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.FormatUint(v, 10))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// DecodeText parses comma-separated integer lines.
func DecodeText(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			nl = len(data)
		}
		line := data[:nl]
		if nl < len(data) {
			data = data[nl+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		r, err := parseTextLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// parseTextLine parses one comma-separated record line. Network bytes
// are untrusted, so values that would overflow uint64 are rejected
// instead of silently wrapping.
func parseTextLine(line []byte) (Record, error) {
	var cols [7]uint64
	field := 0
	var v uint64
	digits := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ',' {
			if field >= 7 {
				return Record{}, fmt.Errorf("parsefmt: text: too many fields")
			}
			if digits == 0 {
				return Record{}, fmt.Errorf("parsefmt: text: empty field")
			}
			cols[field] = v
			field++
			v, digits = 0, 0
			continue
		}
		c := line[i]
		if c < '0' || c > '9' {
			return Record{}, fmt.Errorf("parsefmt: text: invalid byte %q", c)
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return Record{}, fmt.Errorf("parsefmt: text: value overflows uint64")
		}
		// Allocation-free digit accumulation (the paper cites the
		// "fastest string-to-uint64" conversion, §7.4).
		v = v*10 + d
		digits++
	}
	if field != 7 {
		return Record{}, fmt.Errorf("parsefmt: text: %d fields, want 7", field)
	}
	return fromCols(cols), nil
}

// Format identifies one tested encoding.
type Format int

// The tested formats (JSON/PB/Text are Figure 11's row encodings;
// Columnar is the zero-copy frame format of columnar.go). The values
// double as the wire-protocol format codes.
const (
	JSON Format = iota
	PB
	Text
	Columnar
)

// String returns the format name as used in Figure 11.
func (f Format) String() string {
	switch f {
	case JSON:
		return "JSON"
	case PB:
		return "Protocol Buffers"
	case Columnar:
		return "Columnar"
	default:
		return "Text Strings"
	}
}

// Encode renders records in the given format.
func Encode(f Format, recs []Record) []byte {
	switch f {
	case JSON:
		return EncodeJSON(recs)
	case PB:
		return EncodePB(recs)
	case Columnar:
		return EncodeColumnarRecords(recs)
	default:
		return EncodeText(recs)
	}
}

// Decode parses records in the given format, using the library-style
// protobuf decoder (the configuration the paper measures).
func Decode(f Format, data []byte) ([]Record, error) {
	switch f {
	case JSON:
		return DecodeJSON(data)
	case PB:
		return DecodePBLibrary(data)
	case Columnar:
		return DecodeColumnarRecords(data)
	default:
		return DecodeText(data)
	}
}

// Per-core parsing-speed projection factors relative to the host core
// the measurement runs on. Parsing is branchy scalar code: the paper
// finds KNL's 1.3 GHz in-order-ish cores parse 3-4x slower than the
// 2 GHz Xeon's (§7.4). The absolute host speed cancels in the ratios
// Figure 11 reports.
const (
	// KNLParseScale projects host parse throughput to one KNL core.
	KNLParseScale = 0.22
	// X56ParseScale projects host parse throughput to one X56 core.
	X56ParseScale = 0.80
)
