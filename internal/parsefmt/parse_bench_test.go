package parsefmt

import (
	"math/rand"
	"testing"
)

func mkRecs(n int) []Record {
	r := rand.New(rand.NewSource(1))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{r.Uint64() % 1000, r.Uint64() % 5, r.Uint64() % 3, r.Uint64() % 100000, r.Uint64() % 1000, r.Uint64(), r.Uint64() % 1000000}
	}
	return out
}

func BenchmarkDecText(b *testing.B) {
	data := EncodeText(mkRecs(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeText(data)
	}
}
func BenchmarkDecPB(b *testing.B) {
	data := EncodePB(mkRecs(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodePB(data)
	}
}

func BenchmarkDecPBLibrary(b *testing.B) {
	data := EncodePB(mkRecs(1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodePBLibrary(data)
	}
}
