package spill

import (
	"errors"
	"testing"

	"streambox/internal/algo"
)

func TestArenaAllocFreeReuse(t *testing.T) {
	f, err := Create(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Capacity() != 4096 {
		t.Fatalf("capacity %d, want 4096", f.Capacity())
	}
	a, err := f.Alloc(100) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	if a%extentAlign != 0 {
		t.Fatalf("offset %d not %d-aligned", a, extentAlign)
	}
	b, err := f.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("distinct allocs share offset %d", a)
	}
	if got := f.Used(); got != 256 {
		t.Fatalf("used %d, want 256", got)
	}
	f.Free(a, 100)
	if got := f.Used(); got != 128 {
		t.Fatalf("used after free %d, want 128", got)
	}
	c, err := f.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("free-list reuse: got offset %d, want %d", c, a)
	}
	st := f.Stats()
	if st.Allocs != 3 || st.Frees != 1 || st.PeakUsed != 256 {
		t.Fatalf("stats %+v", st)
	}
}

func TestArenaFull(t *testing.T) {
	f, err := Create(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Alloc(256); err != nil {
		t.Fatal(err)
	}
	_, err = f.Alloc(64)
	var full *ErrFull
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want *ErrFull", err)
	}
	if full.Want != 64 || full.Free != 0 {
		t.Fatalf("ErrFull %+v", full)
	}
}

func TestArenaPairsView(t *testing.T) {
	f, err := Create(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 10
	off, err := f.Alloc(int64(n * PairSize))
	if err != nil {
		t.Fatal(err)
	}
	view := f.Pairs(off, n)
	for i := range view {
		view[i] = algo.Pair{Key: uint64(i), Ptr: uint64(100 + i)}
	}
	again := f.Pairs(off, n)
	for i, p := range again {
		if p.Key != uint64(i) || p.Ptr != uint64(100+i) {
			t.Fatalf("pair %d = %+v", i, p)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Sorted: true, Resident: 2, Meta: algo.RunMeta{Origin: 17, Lo: 8000},
			Pairs: []algo.Pair{{Key: 1, Ptr: 5}, {Key: 2, Ptr: 6}, {Key: 2, Ptr: 7}}},
		{Sorted: false, Resident: -1, Meta: algo.RunMeta{Origin: 1},
			Pairs: []algo.Pair{{Key: 9, Ptr: 1}, {Key: 3, Ptr: 2}}},
		{Sorted: true, Resident: 0}, // empty payload
	}
	for i, want := range recs {
		enc := EncodeRecord(&want)
		if len(enc) != RecordBytes(len(want.Pairs)) {
			t.Fatalf("rec %d: encoded %d bytes, want %d", i, len(enc), RecordBytes(len(want.Pairs)))
		}
		var got Record
		n, err := DecodeRecord(enc, &got)
		if err != nil {
			t.Fatalf("rec %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("rec %d: consumed %d of %d", i, n, len(enc))
		}
		if got.Sorted != want.Sorted || got.Resident != want.Resident || got.Meta != want.Meta {
			t.Fatalf("rec %d: header %+v, want %+v", i, got, want)
		}
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("rec %d: %d pairs, want %d", i, len(got.Pairs), len(want.Pairs))
		}
		for j := range want.Pairs {
			if got.Pairs[j] != want.Pairs[j] {
				t.Fatalf("rec %d pair %d: %+v, want %+v", i, j, got.Pairs[j], want.Pairs[j])
			}
		}
	}
}

func TestRecordInArenaView(t *testing.T) {
	f, err := Create(t.TempDir(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec := Record{
		Sorted:   true,
		Resident: 1,
		Meta:     algo.RunMeta{Origin: 3, Lo: 12000},
		Pairs:    []algo.Pair{{Key: 10, Ptr: 100}, {Key: 20, Ptr: 200}, {Key: 30, Ptr: 300}},
	}
	size := int64(RecordBytes(len(rec.Pairs)))
	off, err := f.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if n := EncodeInto(f.Bytes(off, size), &rec); int64(n) != size {
		t.Fatalf("EncodeInto wrote %d, want %d", n, size)
	}
	var view Record
	n, err := View(f.Bytes(off, size), &view)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != size {
		t.Fatalf("View consumed %d, want %d", n, size)
	}
	if view.Meta != rec.Meta || view.Resident != rec.Resident || !view.Sorted {
		t.Fatalf("view header %+v", view)
	}
	for i := range rec.Pairs {
		if view.Pairs[i] != rec.Pairs[i] {
			t.Fatalf("view pair %d: %+v, want %+v", i, view.Pairs[i], rec.Pairs[i])
		}
	}
	// The view aliases the mapping: mutating the arena shows through.
	f.Pairs(off+HeaderSize, len(rec.Pairs))[0].Ptr = 999
	if view.Pairs[0].Ptr != 999 {
		t.Fatalf("view did not alias arena")
	}
}

func TestDecodeRejectsNonCanonical(t *testing.T) {
	// Every mutated seed from the fuzz corpus must be rejected.
	names := []string{
		"valid", "synth", "empty", "truncated", "corrupt", "badMagic",
		"badVersion", "reservedFlags", "badResident", "hugeLen", "liarSorted",
		"nil", "zeros", "ff",
	}
	wantErr := map[string]bool{
		"truncated": true, "corrupt": true, "badMagic": true,
		"badVersion": true, "reservedFlags": true, "badResident": true,
		"hugeLen": true, "liarSorted": true, "nil": true, "zeros": true,
		"ff": true,
	}
	for i, data := range sampleRecords() {
		var rec Record
		n, err := DecodeRecord(data, &rec)
		if wantErr[names[i]] {
			if err == nil {
				t.Errorf("%s: accepted, want error", names[i])
			}
			if n != 0 {
				t.Errorf("%s: consumed %d bytes on error", names[i], n)
			}
		} else if err != nil {
			t.Errorf("%s: rejected: %v", names[i], err)
		}
	}
}
