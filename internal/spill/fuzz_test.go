package spill

import (
	"bytes"
	"encoding/binary"
	"testing"

	"streambox/internal/algo"
)

func sampleRecords() [][]byte {
	sorted := &Record{
		Sorted:   true,
		Resident: 0,
		Meta:     algo.RunMeta{Origin: 7, Lo: 4000},
		Pairs: []algo.Pair{
			{Key: 1, Ptr: 10}, {Key: 1, Ptr: 11}, {Key: 5, Ptr: 50}, {Key: 9, Ptr: 90},
		},
	}
	synthetic := &Record{
		Sorted:   false,
		Resident: -1,
		Meta:     algo.RunMeta{Origin: 1, Lo: 0},
		Pairs:    []algo.Pair{{Key: 3, Ptr: 30}, {Key: 2, Ptr: 20}},
	}
	empty := &Record{Sorted: true, Resident: 1}
	valid := EncodeRecord(sorted)
	synth := EncodeRecord(synthetic)
	emptyRec := EncodeRecord(empty)

	truncated := valid[:len(valid)-5]
	corrupt := bytes.Clone(valid)
	corrupt[HeaderSize+3] ^= 0x40 // payload bit flip: crc must catch it
	badMagic := bytes.Clone(valid)
	badMagic[0] = 'x'
	badVersion := bytes.Clone(valid)
	badVersion[4] = 9
	reservedFlags := bytes.Clone(valid)
	reservedFlags[5] |= 0x80
	badResident := bytes.Clone(valid)
	binary.LittleEndian.PutUint16(badResident[6:8], uint16(0xfffe)) // -2
	hugeLen := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hugeLen[8:12], 0xfffffff0)
	// Sorted flag set over an unsorted payload, with the CRC patched so
	// only the canonical-form check can reject it.
	liarSorted := bytes.Clone(synth)
	liarSorted[5] |= flagSorted
	binary.LittleEndian.PutUint32(liarSorted[28:32], 0) // placeholder, fixed below
	{
		var rec Record
		rec.Sorted = true
		rec.Resident = -1
		rec.Meta = algo.RunMeta{Origin: 1, Lo: 0}
		rec.Pairs = []algo.Pair{{Key: 3, Ptr: 30}, {Key: 2, Ptr: 20}}
		liarSorted = EncodeRecord(&rec)
	}

	return [][]byte{
		valid, synth, emptyRec, truncated, corrupt, badMagic, badVersion,
		reservedFlags, badResident, hugeLen, liarSorted,
		{}, {0, 0, 0, 0}, bytes.Repeat([]byte{0xff}, 64),
	}
}

// FuzzSpillRecord drives the spill record decoder with arbitrary
// bytes: it must never panic, never report consuming more bytes than
// it was given, and any record it accepts must re-encode to the exact
// bytes it consumed (canonical form only).
func FuzzSpillRecord(f *testing.F) {
	for _, s := range sampleRecords() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec Record
		n, err := DecodeRecord(data, &rec)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if n != RecordBytes(len(rec.Pairs)) {
			t.Fatalf("consumed %d bytes for %d pairs, want %d", n, len(rec.Pairs), RecordBytes(len(rec.Pairs)))
		}
		if rec.Sorted && !algo.PairsSorted(rec.Pairs) {
			t.Fatalf("accepted sorted flag over unsorted payload")
		}
		round := EncodeRecord(&rec)
		if !bytes.Equal(round, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", round, data[:n])
		}
	})
}
