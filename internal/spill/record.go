// Spill-file record format. One record holds one evicted KPA run:
// a fixed 32-byte header followed by the pair payload.
//
//	offset  size  field
//	0       4     magic "SBXP"
//	4       1     version (1)
//	5       1     flags (bit0 = sorted; bits 1-7 reserved, must be 0)
//	6       2     resident column, int16 little-endian (-1 = synthetic)
//	8       4     nPairs, uint32 little-endian
//	12      8     meta.Origin, uint64 little-endian
//	20      8     meta.Lo, uint64 little-endian
//	28      4     CRC-32C (Castagnoli) of the payload
//	32      16·n  pairs: (key uint64, ptr uint64) little-endian each
//
// Canonical form only: DecodeRecord rejects unknown versions, set
// reserved flag bits, resident below -1, CRC mismatches and a sorted
// flag over an unsorted payload, so every accepted encoding
// re-encodes to the identical bytes (decode ∘ encode = id). Spilled
// runs are always value-resident — Ptr carries the aggregation value
// itself, never a bundle pointer — so a record is self-contained.
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"streambox/internal/algo"
)

const (
	// HeaderSize is the fixed record header length in bytes.
	HeaderSize = 32
	// PairSize is the wire size of one pair.
	PairSize = 16

	recordVersion = 1
	flagSorted    = 0x01
)

var recordMagic = [4]byte{'S', 'B', 'X', 'P'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a non-canonical or damaged record.
var ErrCorrupt = errors.New("spill: corrupt record")

// Record is one spilled run.
type Record struct {
	Sorted   bool
	Resident int // resident column index; -1 for synthetic keys
	Meta     algo.RunMeta
	Pairs    []algo.Pair
}

// RecordBytes returns the encoded size of a record with n pairs.
func RecordBytes(n int) int { return HeaderSize + n*PairSize }

// pairBytes reinterprets pairs as their in-memory bytes. algo.Pair is
// two uint64s, so on a little-endian host this is exactly the wire
// layout. The view is over the pair slice (always 8-aligned), so the
// conversion is alignment-safe regardless of the byte side.
func pairBytes(pairs []algo.Pair) []byte {
	if len(pairs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&pairs[0])), len(pairs)*PairSize)
}

// EncodeInto writes rec into dst, which must hold at least
// RecordBytes(len(rec.Pairs)) bytes, and returns the bytes written.
// Panics on a resident column outside int16 (programmer error, not
// data corruption).
func EncodeInto(dst []byte, rec *Record) int {
	if rec.Resident < -1 || rec.Resident > math.MaxInt16 {
		panic(fmt.Sprintf("spill: resident column %d out of range", rec.Resident))
	}
	n := RecordBytes(len(rec.Pairs))
	if len(dst) < n {
		panic(fmt.Sprintf("spill: EncodeInto: need %d bytes, have %d", n, len(dst)))
	}
	copy(dst[0:4], recordMagic[:])
	dst[4] = recordVersion
	var flags byte
	if rec.Sorted {
		flags |= flagSorted
	}
	dst[5] = flags
	binary.LittleEndian.PutUint16(dst[6:8], uint16(int16(rec.Resident)))
	binary.LittleEndian.PutUint32(dst[8:12], uint32(len(rec.Pairs)))
	binary.LittleEndian.PutUint64(dst[12:20], rec.Meta.Origin)
	binary.LittleEndian.PutUint64(dst[20:28], rec.Meta.Lo)
	payload := dst[HeaderSize:n]
	copy(payload, pairBytes(rec.Pairs))
	binary.LittleEndian.PutUint32(dst[28:32], crc32.Checksum(payload, castagnoli))
	return n
}

// PayloadView returns the n-pair payload area of a record extent as a
// zero-copy view, valid even before the record is encoded: a writer
// can fill the payload in place and then EncodeInto with rec.Pairs set
// to this view (the payload copy degenerates to a self-move), avoiding
// a staging buffer. b must be 8-aligned (any File extent is).
func PayloadView(b []byte, n int) []algo.Pair {
	if n == 0 {
		return nil
	}
	payload := b[HeaderSize : HeaderSize+n*PairSize]
	return unsafe.Slice((*algo.Pair)(unsafe.Pointer(&payload[0])), n)
}

// EncodeRecord returns the canonical encoding of rec.
func EncodeRecord(rec *Record) []byte {
	dst := make([]byte, RecordBytes(len(rec.Pairs)))
	EncodeInto(dst, rec)
	return dst
}

// decodeHeader validates the fixed header and returns the pair count
// and total record length.
func decodeHeader(b []byte, rec *Record) (nPairs, total int, err error) {
	if len(b) < HeaderSize {
		return 0, 0, fmt.Errorf("%w: %d bytes, header is %d", ErrCorrupt, len(b), HeaderSize)
	}
	if [4]byte(b[0:4]) != recordMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[0:4])
	}
	if b[4] != recordVersion {
		return 0, 0, fmt.Errorf("%w: version %d", ErrCorrupt, b[4])
	}
	if b[5]&^flagSorted != 0 {
		return 0, 0, fmt.Errorf("%w: reserved flag bits %#x", ErrCorrupt, b[5])
	}
	resident := int16(binary.LittleEndian.Uint16(b[6:8]))
	if resident < -1 {
		return 0, 0, fmt.Errorf("%w: resident column %d", ErrCorrupt, resident)
	}
	n64 := int64(binary.LittleEndian.Uint32(b[8:12]))
	t64 := int64(HeaderSize) + n64*PairSize
	if t64 > int64(len(b)) {
		return 0, 0, fmt.Errorf("%w: %d pairs need %d bytes, have %d", ErrCorrupt, n64, t64, len(b))
	}
	payload := b[HeaderSize:t64]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[28:32]); got != want {
		return 0, 0, fmt.Errorf("%w: crc %#x, want %#x", ErrCorrupt, got, want)
	}
	rec.Sorted = b[5]&flagSorted != 0
	rec.Resident = int(resident)
	rec.Meta = algo.RunMeta{
		Origin: binary.LittleEndian.Uint64(b[12:20]),
		Lo:     binary.LittleEndian.Uint64(b[20:28]),
	}
	return int(n64), int(t64), nil
}

// DecodeRecord decodes one record from the front of b into rec,
// copying the payload (rec.Pairs reuses capacity when possible), and
// returns the bytes consumed. On error n is 0 and rec is unspecified.
func DecodeRecord(b []byte, rec *Record) (int, error) {
	nPairs, total, err := decodeHeader(b, rec)
	if err != nil {
		return 0, err
	}
	if cap(rec.Pairs) >= nPairs {
		rec.Pairs = rec.Pairs[:nPairs]
	} else {
		rec.Pairs = make([]algo.Pair, nPairs)
	}
	copy(pairBytes(rec.Pairs), b[HeaderSize:total])
	if rec.Sorted && !algo.PairsSorted(rec.Pairs) {
		return 0, fmt.Errorf("%w: sorted flag on unsorted payload", ErrCorrupt)
	}
	return total, nil
}

// View decodes one record from the front of b without copying:
// rec.Pairs aliases b, which must therefore be 8-aligned at its
// payload (true for any extent returned by File.Alloc) and must
// outlive the view. Returns the bytes consumed.
func View(b []byte, rec *Record) (int, error) {
	nPairs, total, err := decodeHeader(b, rec)
	if err != nil {
		return 0, err
	}
	if nPairs == 0 {
		rec.Pairs = nil
		return total, nil
	}
	payload := b[HeaderSize:total]
	if uintptr(unsafe.Pointer(&payload[0]))%8 != 0 {
		return 0, fmt.Errorf("spill: View: payload not 8-aligned")
	}
	rec.Pairs = unsafe.Slice((*algo.Pair)(unsafe.Pointer(&payload[0])), nPairs)
	if rec.Sorted && !algo.PairsSorted(rec.Pairs) {
		return 0, fmt.Errorf("%w: sorted flag on unsorted payload", ErrCorrupt)
	}
	return total, nil
}
