// Package spill implements the cold tier of the memory degradation
// ladder: an mmap'd, file-backed arena that holds sealed window runs
// evicted from the HBM/DRAM pools under pressure.
//
// The arena is deliberately simple. A temporary file is created,
// truncated to the configured capacity, mapped MAP_SHARED and then
// unlinked, so spill data can never outlive the process — the spill
// tier is a pressure valve, not a durability mechanism (crash recovery
// replays the WAL; spilled runs are reconstructible from it). Extents
// are carved with a bump pointer plus per-size free lists; sizes are
// rounded to 64 bytes so pair payloads stay alignment-safe for
// zero-copy views.
//
// Records written into extents use the canonical encoding in record.go.
// Both the arena views and the record codec assume a little-endian
// host: pair payloads are memcpy'd between []algo.Pair and the mapped
// bytes.
package spill

import (
	"fmt"
	"os"
	"sync"
	"syscall"
	"unsafe"

	"streambox/internal/algo"
)

// extentAlign is the allocation granularity. 64 bytes keeps extents
// cacheline-aligned and, since the header is 32 bytes, keeps record
// payloads 8-aligned for zero-copy []algo.Pair views.
const extentAlign = 64

// ErrFull reports that the spill file cannot satisfy an allocation.
// The controller treats it as "ladder exhausted": eviction stops and
// the existing backpressure/shed machinery takes over.
type ErrFull struct {
	Want int64 // bytes requested (rounded)
	Free int64 // bytes available
}

func (e *ErrFull) Error() string {
	return fmt.Sprintf("spill: file full: want %d bytes, %d free", e.Want, e.Free)
}

// Stats counts arena activity since creation.
type Stats struct {
	Allocs   int64
	Frees    int64
	PeakUsed int64
}

// File is an mmap'd spill arena. All methods are safe for concurrent
// use; Bytes/Pairs return views into the mapping that stay valid until
// Close.
type File struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	data  []byte
	used  int64
	tail  int64
	free  map[int64][]int64 // rounded extent size -> free offsets (LIFO)
	stats Stats
}

// Create makes a spill arena of capBytes in dir (or the default temp
// directory when dir is empty). The backing file is unlinked
// immediately: it occupies disk space only while the process lives.
func Create(dir string, capBytes int64) (*File, error) {
	if capBytes <= 0 {
		return nil, fmt.Errorf("spill: capacity must be positive, got %d", capBytes)
	}
	capBytes = RoundUp(capBytes)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("spill: create dir: %w", err)
		}
	}
	f, err := os.CreateTemp(dir, "sbx-spill-*.dat")
	if err != nil {
		return nil, fmt.Errorf("spill: create: %w", err)
	}
	path := f.Name()
	if err := f.Truncate(capBytes); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("spill: truncate to %d: %w", capBytes, err)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(capBytes),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("spill: mmap %d bytes: %w", capBytes, err)
	}
	// Unlink now: the mapping keeps the storage alive, and a crash
	// leaves nothing behind to clean up.
	os.Remove(path)
	return &File{
		f:    f,
		path: path,
		data: data,
		free: make(map[int64][]int64),
	}, nil
}

// RoundUp rounds n up to the extent granularity — the size actually
// consumed by Alloc(n), which callers doing their own accounting
// (mempool) must charge.
func RoundUp(n int64) int64 {
	return (n + extentAlign - 1) &^ (extentAlign - 1)
}

// Alloc reserves an extent of at least n bytes and returns its offset.
// Returns *ErrFull when neither the free lists nor the bump region can
// satisfy the request.
func (f *File) Alloc(n int64) (int64, error) {
	if n <= 0 {
		panic(fmt.Sprintf("spill: Alloc(%d)", n))
	}
	n = RoundUp(n)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.data == nil {
		panic("spill: Alloc after Close")
	}
	if list := f.free[n]; len(list) > 0 {
		off := list[len(list)-1]
		f.free[n] = list[:len(list)-1]
		f.account(n)
		return off, nil
	}
	if f.tail+n > int64(len(f.data)) {
		return 0, &ErrFull{Want: n, Free: int64(len(f.data)) - f.tail}
	}
	off := f.tail
	f.tail += n
	f.account(n)
	return off, nil
}

func (f *File) account(n int64) {
	f.used += n
	f.stats.Allocs++
	if f.used > f.stats.PeakUsed {
		f.stats.PeakUsed = f.used
	}
}

// Free returns the extent at off (allocated with size n) to the arena.
func (f *File) Free(off, n int64) {
	n = RoundUp(n)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.data == nil {
		return // closed: the whole mapping is already gone
	}
	f.free[n] = append(f.free[n], off)
	f.used -= n
	f.stats.Frees++
}

// Bytes returns the n bytes starting at off as a view into the
// mapping. The capacity is clamped so appends cannot scribble past the
// extent.
func (f *File) Bytes(off, n int64) []byte {
	return f.data[off : off+n : off+n]
}

// Pairs returns the extent at off as a zero-copy []algo.Pair view of n
// pairs. off must be extent-aligned (which Alloc guarantees).
func (f *File) Pairs(off int64, n int) []algo.Pair {
	if n == 0 {
		return nil
	}
	b := f.data[off:]
	return unsafe.Slice((*algo.Pair)(unsafe.Pointer(&b[0])), n)
}

// TakeCol returns a []uint64 column slab of length rows backed by the
// arena, with capacity covering the whole extent. The slab must go
// back via PutCol with its capacity intact (length-trimming is fine;
// capacity-trimming would leak the extent's tail).
func (f *File) TakeCol(rows int) ([]uint64, error) {
	bytes := int64(rows) * 8
	if bytes <= 0 {
		bytes = extentAlign
	}
	off, err := f.Alloc(bytes)
	if err != nil {
		return nil, err
	}
	words := RoundUp(bytes) / 8
	b := f.data[off:]
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), words)[:rows], nil
}

// PutCol returns a TakeCol slab to the arena. Slabs whose backing
// storage lies outside the mapping (heap fallbacks, append-grown
// copies) are ignored and left to the garbage collector.
func (f *File) PutCol(col []uint64) {
	if cap(col) == 0 {
		return
	}
	base := uintptr(unsafe.Pointer(&col[:1][0]))
	f.mu.Lock()
	data := f.data
	f.mu.Unlock()
	if data == nil {
		return
	}
	start := uintptr(unsafe.Pointer(&data[0]))
	if base < start || base >= start+uintptr(len(data)) {
		return
	}
	f.Free(int64(base-start), int64(cap(col))*8)
}

// Capacity returns the arena size in bytes.
func (f *File) Capacity() int64 { return int64(len(f.data)) }

// Used returns the bytes currently allocated.
func (f *File) Used() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// Stats returns a snapshot of arena counters.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Path returns the (already unlinked) backing file path, for reports.
func (f *File) Path() string { return f.path }

// Close unmaps and closes the arena. All outstanding views become
// invalid. Safe to call once; the backing file was unlinked at Create.
func (f *File) Close() error {
	f.mu.Lock()
	data := f.data
	f.data = nil
	f.mu.Unlock()
	if data == nil {
		return nil
	}
	err := syscall.Munmap(data)
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}
