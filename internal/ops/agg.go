// Package ops implements StreamBox-HBM's compound (declarative)
// operators (paper Table 1) on top of the KPA streaming primitives:
// ParDo/Filter, Windowing, the Keyed Aggregation family, AvgAll, Union,
// Temporal Join, Windowed Filter, External Join and the Power Grid
// composite. Each operator decomposes into grouping primitives
// (sequential access, on KPAs) and reductions (random access into
// DRAM), exactly as Figure 4 describes.
package ops

import (
	"sort"

	"streambox/internal/kpa"
)

// --- Aggregators (the reduction side of Table 1's operators). -------------

// SumAgg sums values.
type SumAgg struct{ s uint64 }

// Add implements kpa.Agg.
func (a *SumAgg) Add(v uint64) { a.s += v }

// Result implements kpa.Agg.
func (a *SumAgg) Result() uint64 { return a.s }

// Sum returns a factory for SumPerKey.
func Sum() kpa.AggFactory { return func() kpa.Agg { return &SumAgg{} } }

// CountAgg counts values.
type CountAgg struct{ n uint64 }

// Add implements kpa.Agg.
func (a *CountAgg) Add(uint64) { a.n++ }

// Result implements kpa.Agg.
func (a *CountAgg) Result() uint64 { return a.n }

// Count returns a factory for CountByKey.
func Count() kpa.AggFactory { return func() kpa.Agg { return &CountAgg{} } }

// AvgAgg averages values (integer division, matching the numeric-only
// record model).
type AvgAgg struct {
	sum uint64
	n   uint64
}

// Add implements kpa.Agg.
func (a *AvgAgg) Add(v uint64) { a.sum += v; a.n++ }

// Result implements kpa.Agg.
func (a *AvgAgg) Result() uint64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / a.n
}

// Avg returns a factory for AveragePerKey.
func Avg() kpa.AggFactory { return func() kpa.Agg { return &AvgAgg{} } }

// MaxAgg keeps the maximum.
type MaxAgg struct{ m uint64 }

// Add implements kpa.Agg.
func (a *MaxAgg) Add(v uint64) {
	if v > a.m {
		a.m = v
	}
}

// Result implements kpa.Agg.
func (a *MaxAgg) Result() uint64 { return a.m }

// Max returns a factory for MaxPerKey.
func Max() kpa.AggFactory { return func() kpa.Agg { return &MaxAgg{} } }

// MinAgg keeps the minimum.
type MinAgg struct {
	m   uint64
	any bool
}

// Add implements kpa.Agg.
func (a *MinAgg) Add(v uint64) {
	if !a.any || v < a.m {
		a.m = v
		a.any = true
	}
}

// Result implements kpa.Agg.
func (a *MinAgg) Result() uint64 { return a.m }

// Min returns a factory for MinPerKey.
func Min() kpa.AggFactory { return func() kpa.Agg { return &MinAgg{} } }

// collectAgg gathers all values for order statistics.
type collectAgg struct {
	vals []uint64
}

func (a *collectAgg) Add(v uint64) { a.vals = append(a.vals, v) }

func (a *collectAgg) sorted() []uint64 {
	sort.Slice(a.vals, func(i, j int) bool { return a.vals[i] < a.vals[j] })
	return a.vals
}

// MedianAgg computes the median value.
type MedianAgg struct{ collectAgg }

// Result implements kpa.Agg.
func (a *MedianAgg) Result() uint64 {
	if len(a.vals) == 0 {
		return 0
	}
	s := a.sorted()
	return s[len(s)/2]
}

// Median returns a factory for MedianPerKey.
func Median() kpa.AggFactory { return func() kpa.Agg { return &MedianAgg{} } }

// PercentileAgg computes the p-th percentile (0 < p <= 100).
type PercentileAgg struct {
	collectAgg
	P int
}

// Result implements kpa.Agg.
func (a *PercentileAgg) Result() uint64 {
	if len(a.vals) == 0 {
		return 0
	}
	s := a.sorted()
	idx := (len(s) - 1) * a.P / 100
	return s[idx]
}

// Percentile returns a factory for PercentileByKey.
func Percentile(p int) kpa.AggFactory {
	return func() kpa.Agg { return &PercentileAgg{P: p} }
}

// TopKAgg identifies the K-th largest value (the boundary of the top-K
// set; the TopK operator emits it as the per-key result).
type TopKAgg struct {
	collectAgg
	K int
}

// Result implements kpa.Agg.
func (a *TopKAgg) Result() uint64 {
	if len(a.vals) == 0 {
		return 0
	}
	s := a.sorted()
	idx := len(s) - a.K
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// TopK returns a factory for TopKPerKey.
func TopK(k int) kpa.AggFactory {
	return func() kpa.Agg { return &TopKAgg{K: k} }
}

// UniqueCountAgg counts distinct values.
type UniqueCountAgg struct {
	seen map[uint64]struct{}
}

// Add implements kpa.Agg.
func (a *UniqueCountAgg) Add(v uint64) {
	if a.seen == nil {
		a.seen = make(map[uint64]struct{})
	}
	a.seen[v] = struct{}{}
}

// Result implements kpa.Agg.
func (a *UniqueCountAgg) Result() uint64 { return uint64(len(a.seen)) }

// UniqueCount returns a factory for UniqueCountPerKey.
func UniqueCount() kpa.AggFactory { return func() kpa.Agg { return &UniqueCountAgg{} } }
