package ops_test

import (
	"testing"

	"streambox/internal/engine"
	"streambox/internal/ingress"
	"streambox/internal/memsim"
	"streambox/internal/ops"
	"streambox/internal/wm"
)

const (
	testWinSize    = 1_000_000 // event-time units per window
	testWinRecords = 4000      // records per window
	testBundle     = 1000      // records per bundle
)

func testConfig() engine.Config {
	return engine.Config{
		Machine: memsim.KNLConfig(),
		Win:     wm.Fixed(testWinSize),
		UseKPA:  true,
		Seed:    7,
	}
}

func testSource(name string) engine.SourceConfig {
	return engine.SourceConfig{
		Name:           name,
		Rate:           2e6,
		BundleRecords:  testBundle,
		WindowRecords:  testWinRecords,
		WatermarkEvery: testWinRecords / testBundle,
	}
}

// runKeyedPipeline wires Source -> Window -> op -> capture and runs for
// duration virtual seconds.
func runKeyedPipeline(t *testing.T, gen engine.Generator, op engine.Operator, duration float64) (*ops.CaptureSink, engine.Stats) {
	t.Helper()
	e, err := engine.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sink := ops.NewCapture()
	nodes := e.Chain(&ops.WindowOp{TsCol: 2}, op, sink)
	if _, err := e.AddSource(gen, testSource("kv"), nodes[0], 0); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run(duration)
	if err != nil {
		t.Fatal(err)
	}
	return sink, stats
}

func TestWindowedSumPerKey(t *testing.T) {
	const keys = 8
	gen := ingress.NewRoundRobinKV(keys, 1)
	sink, stats := runKeyedPipeline(t, gen, ops.NewKeyedAgg("sum", 0, 1, ops.Sum()), 0.02)
	if stats.WindowsClosed == 0 {
		t.Fatal("no windows closed")
	}
	byWin := sink.ByWindow()
	if len(byWin) == 0 {
		t.Fatal("no results captured")
	}
	for win, rows := range byWin {
		if len(rows) != keys {
			t.Fatalf("window %d: %d keys, want %d", win, len(rows), keys)
		}
		for _, r := range rows {
			// Round-robin keys with value 1: sum per key = records/keys.
			if r.Val != testWinRecords/keys {
				t.Fatalf("window %d key %d: sum = %d, want %d", win, r.Key, r.Val, testWinRecords/keys)
			}
		}
	}
}

func TestWindowedCountPerKey(t *testing.T) {
	const keys = 5
	gen := ingress.NewRoundRobinKV(keys, 42)
	sink, _ := runKeyedPipeline(t, gen, ops.NewKeyedAgg("count", 0, 1, ops.Count()), 0.02)
	for win, rows := range sink.ByWindow() {
		if len(rows) != keys {
			t.Fatalf("window %d: %d keys", win, len(rows))
		}
		for _, r := range rows {
			if r.Val != testWinRecords/keys {
				t.Fatalf("count = %d, want %d", r.Val, testWinRecords/keys)
			}
		}
	}
}

func TestWindowedAvgPerKey(t *testing.T) {
	const keys = 4
	gen := ingress.NewRoundRobinKV(keys, 10)
	sink, _ := runKeyedPipeline(t, gen, ops.NewKeyedAgg("avg", 0, 1, ops.Avg()), 0.02)
	if len(sink.Rows) == 0 {
		t.Fatal("no results")
	}
	for _, r := range sink.Rows {
		if r.Val != 10 {
			t.Fatalf("avg of constant-10 stream = %d", r.Val)
		}
	}
}

func TestWindowedMedianPerKey(t *testing.T) {
	gen := ingress.NewRoundRobinKV(2, 7)
	sink, _ := runKeyedPipeline(t, gen, ops.NewKeyedAgg("med", 0, 1, ops.Median()), 0.02)
	for _, r := range sink.Rows {
		if r.Val != 7 {
			t.Fatalf("median of constant-7 stream = %d", r.Val)
		}
	}
}

func TestWindowedTopKPerKey(t *testing.T) {
	gen := ingress.NewRoundRobinKV(2, 9)
	sink, _ := runKeyedPipeline(t, gen, ops.NewKeyedAgg("topk", 0, 1, ops.TopK(3)), 0.02)
	if len(sink.Rows) == 0 {
		t.Fatal("no results")
	}
	for _, r := range sink.Rows {
		if r.Val != 9 {
			t.Fatalf("topk of constant-9 stream = %d", r.Val)
		}
	}
}

func TestWindowedUniqueCountPerKey(t *testing.T) {
	gen := ingress.NewRoundRobinKV(4, 5) // constant value: 1 unique
	sink, _ := runKeyedPipeline(t, gen, ops.NewKeyedAgg("uniq", 0, 1, ops.UniqueCount()), 0.02)
	for _, r := range sink.Rows {
		if r.Val != 1 {
			t.Fatalf("unique count of constant stream = %d", r.Val)
		}
	}
}

func TestWindowedAvgAll(t *testing.T) {
	gen := ingress.NewRoundRobinKV(16, 50)
	e, _ := engine.New(testConfig())
	sink := ops.NewCapture()
	nodes := e.Chain(&ops.WindowOp{TsCol: 2}, ops.NewAvgAll(1), sink)
	e.AddSource(gen, testSource("kv"), nodes[0], 0)
	stats, err := e.Run(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsClosed == 0 || len(sink.Rows) == 0 {
		t.Fatal("no output")
	}
	// One record per window; avg of constant-50 stream is 50.
	byWin := sink.ByWindow()
	for win, rows := range byWin {
		if len(rows) != 1 {
			t.Fatalf("window %d: %d rows, want 1", win, len(rows))
		}
		if rows[0].Val != 50 {
			t.Fatalf("avg = %d, want 50", rows[0].Val)
		}
	}
}

func TestFilterThenCount(t *testing.T) {
	const keys = 8
	gen := ingress.NewRoundRobinKV(keys, 1)
	e, _ := engine.New(testConfig())
	sink := ops.NewCapture()
	filter := &ops.FilterOp{Label: "even", Col: 0, Keep: func(v uint64) bool { return v%2 == 0 }}
	nodes := e.Chain(filter, &ops.WindowOp{TsCol: 2}, ops.NewKeyedAgg("count", 0, 1, ops.Count()), sink)
	e.AddSource(gen, testSource("kv"), nodes[0], 0)
	if _, err := e.Run(0.02); err != nil {
		t.Fatal(err)
	}
	byWin := sink.ByWindow()
	if len(byWin) == 0 {
		t.Fatal("no results")
	}
	for win, rows := range byWin {
		if len(rows) != keys/2 {
			t.Fatalf("window %d: %d keys, want %d (odd keys filtered)", win, len(rows), keys/2)
		}
		for _, r := range rows {
			if r.Key%2 != 0 {
				t.Fatalf("odd key %d survived the filter", r.Key)
			}
			if r.Val != testWinRecords/keys {
				t.Fatalf("count = %d, want %d", r.Val, testWinRecords/keys)
			}
		}
	}
}

func TestTemporalJoin(t *testing.T) {
	const keys = 100
	genL := ingress.NewRoundRobinKV(keys, 1)
	genR := ingress.NewRoundRobinKV(keys, 2)
	e, _ := engine.New(testConfig())
	join := ops.NewTemporalJoin(0, 1)
	winL := e.AddOperator(&ops.WindowOp{TsCol: 2})
	winR := e.AddOperator(&ops.WindowOp{TsCol: 2})
	joinNode := e.AddOperator(join)
	sink := ops.NewCapture()
	sinkNode := e.AddOperator(sink)
	e.Connect(winL, 0, joinNode, 0)
	e.Connect(winR, 0, joinNode, 1)
	e.Connect(joinNode, 0, sinkNode, 0)
	e.AddSource(genL, testSource("L"), winL, 0)
	e.AddSource(genR, testSource("R"), winR, 0)
	stats, err := e.Run(0.015)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Records == 0 {
		t.Fatal("join produced nothing")
	}
	// Round-robin keys: each window has testWinRecords/keys records per
	// key per side; matches per window = keys * (W/keys)^2.
	perKey := int64(testWinRecords / keys)
	wantPerWindow := int64(keys) * perKey * perKey
	byWin := sink.ByWindow()
	full := 0
	for _, rows := range byWin {
		if int64(len(rows)) == wantPerWindow {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no window reached the expected %d matches; got sizes %v", wantPerWindow, winSizes(byWin))
	}
	if join.PendingWindows() > 4 {
		t.Fatalf("join state not reclaimed: %d windows pending", join.PendingWindows())
	}
	_ = stats
}

func winSizes(byWin map[wm.Time][]ops.CapturedRow) map[wm.Time]int {
	out := make(map[wm.Time]int)
	for w, r := range byWin {
		out[w] = len(r)
	}
	return out
}

func TestWindowedFilter(t *testing.T) {
	// Control stream: constant value 100 -> threshold 100.
	// Data stream: alternates 50 and 150 -> half survive.
	ctrl := ingress.NewRoundRobinKV(4, 100)
	data := ingress.NewAlternatingKV(2, 50, 150)
	e, _ := engine.New(testConfig())
	wf := ops.NewWindowedFilter(1)
	winC := e.AddOperator(&ops.WindowOp{TsCol: 2})
	winD := e.AddOperator(&ops.WindowOp{TsCol: 2})
	wfNode := e.AddOperator(wf)
	sink := ops.NewCapture()
	sinkNode := e.AddOperator(sink)
	e.Connect(winC, 0, wfNode, 0)
	e.Connect(winD, 0, wfNode, 1)
	e.Connect(wfNode, 0, sinkNode, 0)
	e.AddSource(ctrl, testSource("ctrl"), winC, 0)
	e.AddSource(data, testSource("data"), winD, 0)
	if _, err := e.Run(0.015); err != nil {
		t.Fatal(err)
	}
	if sink.Records == 0 {
		t.Fatal("no survivors")
	}
	byWin := sink.ByWindow()
	sawFull := false
	for _, rows := range byWin {
		if len(rows) == testWinRecords/2 {
			sawFull = true
		}
		for _, r := range rows {
			if r.Val != 150 {
				t.Fatalf("survivor value = %d, want 150", r.Val)
			}
		}
	}
	if !sawFull {
		t.Fatalf("no window passed exactly half its records: %v", winSizes(byWin))
	}
}

func TestPowerGridPipeline(t *testing.T) {
	gen := ingress.NewPowerGrid(ingress.PowerGridConfig{Seed: 3})
	e, _ := engine.New(testConfig())
	sink := ops.NewCapture()
	nodes := e.Chain(&ops.WindowOp{TsCol: 2}, ops.NewPowerGrid(), sink)
	e.AddSource(gen, testSource("pg"), nodes[0], 0)
	stats, err := e.Run(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsClosed == 0 {
		t.Fatal("no windows closed")
	}
	if len(sink.Rows) == 0 {
		t.Fatal("no top houses emitted")
	}
	for _, r := range sink.Rows {
		if r.Key >= 40 {
			t.Fatalf("house id %d out of range", r.Key)
		}
		if r.Val == 0 {
			t.Fatal("top house with zero high-power plugs")
		}
	}
}

func TestYSBPipeline(t *testing.T) {
	gen := ingress.NewYSB(ingress.YSBConfig{Ads: 100, Campaigns: 10, Seed: 5})
	e, _ := engine.New(testConfig())
	sink := ops.NewCapture()
	filter := &ops.FilterOp{Label: "views", Col: ingress.YSBEventType,
		Keep: func(v uint64) bool { return v == ingress.YSBEventView }}
	proj := &ops.ProjectOp{Cols: []int{ingress.YSBAdID, ingress.YSBEventTime}}
	// The external join key-swaps to ad_id, maps ad -> campaign and
	// writes campaign IDs back into the ad_id column (paper §4.3), so
	// the final aggregation groups on that column.
	extJoin := &ops.ExternalJoinOp{Label: "campaign", KeyCol: ingress.YSBAdID, Table: gen.CampaignTable()}
	window := &ops.WindowOp{TsCol: ingress.YSBEventTime}
	count := ops.NewKeyedAgg("campaigns", ingress.YSBAdID, ingress.YSBAdID, ops.Count())
	nodes := e.Chain(filter, proj, extJoin, window, count, sink)
	e.AddSource(gen, testSource("ysb"), nodes[0], 0)
	stats, err := e.Run(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsClosed == 0 || len(sink.Rows) == 0 {
		t.Fatal("YSB produced no output")
	}
	// All counts are per-campaign; campaigns are 0..9.
	var total uint64
	for _, r := range sink.Rows {
		if r.Key >= 10 {
			t.Fatalf("campaign id %d out of range", r.Key)
		}
		total += r.Val
	}
	// Roughly 1/3 of events are views (EventTypes defaults to 3).
	if total == 0 {
		t.Fatal("no views counted")
	}
}

func TestEngineMemoryReclaimedAfterRun(t *testing.T) {
	gen := ingress.NewRoundRobinKV(8, 1)
	e, _ := engine.New(testConfig())
	sink := ops.NewCapture()
	nodes := e.Chain(&ops.WindowOp{TsCol: 2}, ops.NewKeyedAgg("sum", 0, 1, ops.Sum()), sink)
	e.AddSource(gen, testSource("kv"), nodes[0], 0)
	if _, err := e.Run(0.02); err != nil {
		t.Fatal(err)
	}
	// Bundles behind closed windows must be reclaimed; only the tail
	// (open windows, in-flight bundles) may remain.
	maxLive := 3 * testWinRecords / testBundle
	if live := e.Reg.Live(); live > maxLive {
		t.Fatalf("%d bundles live after run (max expected %d): leak", live, maxLive)
	}
}

func TestAggregators(t *testing.T) {
	feed := func(a interface {
		Add(uint64)
		Result() uint64
	}, vals ...uint64) uint64 {
		for _, v := range vals {
			a.Add(v)
		}
		return a.Result()
	}
	if got := feed(ops.Sum()(), 1, 2, 3); got != 6 {
		t.Errorf("sum = %d", got)
	}
	if got := feed(ops.Count()(), 9, 9, 9, 9); got != 4 {
		t.Errorf("count = %d", got)
	}
	if got := feed(ops.Avg()(), 10, 20, 30); got != 20 {
		t.Errorf("avg = %d", got)
	}
	if got := feed(ops.Avg()()); got != 0 {
		t.Errorf("empty avg = %d", got)
	}
	if got := feed(ops.Max()(), 3, 9, 1); got != 9 {
		t.Errorf("max = %d", got)
	}
	if got := feed(ops.Min()(), 3, 9, 1); got != 1 {
		t.Errorf("min = %d", got)
	}
	if got := feed(ops.Median()(), 5, 1, 9); got != 5 {
		t.Errorf("median = %d", got)
	}
	if got := feed(ops.Median()()); got != 0 {
		t.Errorf("empty median = %d", got)
	}
	if got := feed(ops.TopK(2)(), 1, 5, 3, 9); got != 5 {
		t.Errorf("top2 boundary = %d", got)
	}
	if got := feed(ops.TopK(10)(), 4, 2); got != 2 {
		t.Errorf("topk beyond size = %d", got)
	}
	if got := feed(ops.UniqueCount()(), 1, 1, 2, 3, 3, 3); got != 3 {
		t.Errorf("unique = %d", got)
	}
	if got := feed(ops.Percentile(50)(), 1, 2, 3, 4, 5); got != 3 {
		t.Errorf("p50 = %d", got)
	}
	if got := feed(ops.Percentile(100)(), 1, 2, 3); got != 3 {
		t.Errorf("p100 = %d", got)
	}
	if got := feed(ops.Percentile(100)()); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}

func TestPlugKeyPacking(t *testing.T) {
	k := ops.PlugKey(39, 2, 3)
	if ops.HouseOf(k) != 39 {
		t.Errorf("house = %d", ops.HouseOf(k))
	}
	if ops.PlugKey(1, 0, 0) == ops.PlugKey(0, 1, 0) {
		t.Error("collision between house and household")
	}
}

func TestTable1OperatorPrimitives(t *testing.T) {
	// Paper Table 1: which primitives each compound operator uses. We
	// assert the operators exist and decompose as documented by
	// exercising their code paths above; here we assert the static
	// port/name contract.
	cases := []struct {
		op    engine.Operator
		ports int
	}{
		{&ops.WindowOp{}, 1},
		{&ops.FilterOp{Label: "x", Col: 0, Keep: func(uint64) bool { return true }}, 1},
		{ops.NewKeyedAgg("x", 0, 1, ops.Sum()), 1},
		{ops.NewAvgAll(1), 1},
		{ops.NewTemporalJoin(0, 1), 2},
		{ops.NewWindowedFilter(1), 2},
		{ops.NewPowerGrid(), 1},
		{&ops.UnionOp{}, 2},
		{&ops.ProjectOp{}, 1},
		{&ops.SampleOp{Every: 2}, 1},
		{&ops.ExternalJoinOp{Label: "x"}, 1},
	}
	for _, c := range cases {
		if c.op.InPorts() != c.ports {
			t.Errorf("%s: ports = %d, want %d", c.op.Name(), c.op.InPorts(), c.ports)
		}
		if c.op.Name() == "" {
			t.Error("operator without a name")
		}
	}
}
