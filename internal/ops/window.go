package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/wm"
)

// WindowOp assigns records to temporal windows using the Partition
// primitive on the timestamp column (paper §4.2, "Windowing operators"):
// the timestamp is the partitioning key and the window (or slide) length
// is the key range of each output partition. Inputs may be record
// bundles (extracted here) or KPAs; outputs are per-window KPAs whose
// resident column is the timestamp.
type WindowOp struct {
	// TsCol is the timestamp column index of the input schema.
	TsCol int
}

var _ engine.Operator = (*WindowOp)(nil)

// Name implements engine.Operator.
func (o *WindowOp) Name() string { return "Windowing" }

// InPorts implements engine.Operator.
func (o *WindowOp) InPorts() int { return 1 }

// OnInput partitions the input by window boundaries.
func (o *WindowOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	ts := in.MaxTs()
	win := ctx.Windowing()
	tier, al := ctx.PlanPlacement(ts)
	d := ensureKPADemand(ctx, in, o.TsCol, tier, false)
	pd := kpa.PartitionDemandN(tier, in.Rows())
	d.Phases = append(d.Phases, ctx.GroupDemand(pd, inputSchema(in)).Phases...)

	ctx.Spawn("window:partition", ts, d, func() []engine.Emission {
		k := toKeyedKPA(ctx, in, o.TsCol, al, false)
		if k == nil {
			return nil
		}
		lo, hi, ok := minMaxKeys(k)
		if !ok {
			k.Destroy()
			return nil
		}
		if win.IsFixed() {
			return o.emitFixed(ctx, k, win, lo, hi, al)
		}
		return o.emitSliding(ctx, k, win, lo, hi, al)
	})
}

// emitFixed partitions the KPA once: each record lands in exactly one
// window.
func (o *WindowOp) emitFixed(ctx *engine.Ctx, k *kpa.KPA, win wm.Windowing, lo, hi wm.Time, al kpa.Allocator) []engine.Emission {
	bounds := win.Boundaries(lo, hi)
	parts, err := kpa.Partition(k, bounds, al)
	k.Destroy()
	if err != nil {
		ctx.Errorf("partition: %v", err)
		return nil
	}
	var out []engine.Emission
	for i, p := range parts {
		// Bucket 0 holds keys below the first boundary, empty by
		// construction of Boundaries(lo, hi).
		if i == 0 || p.Len() == 0 {
			p.Destroy()
			continue
		}
		out = append(out, engine.Emission{Port: 0, In: engine.Input{
			K: p, WinStart: bounds[i-1], HasWin: true,
		}})
	}
	return out
}

// emitSliding replicates records into every window containing them
// (each record belongs to Size/Slide windows). When the windowing
// decomposes into coarse enough panes (wm.PaneSharing — the same
// predicate the native backend gates its pane path on), the emitted
// KPAs carry PaneShare so downstream grouping charges the pane-shared
// demand (each record's one pane run is built and sorted once,
// referenced by every covering window) rather than a full sort per
// replica; shapes that fall back to direct scatter are charged in
// full.
func (o *WindowOp) emitSliding(ctx *engine.Ctx, k *kpa.KPA, win wm.Windowing, lo, hi wm.Time, al kpa.Allocator) []engine.Emission {
	first := win.WindowsOf(lo)[0]
	share := 1
	if win.PaneSharing() {
		share = win.Overlap()
	}
	var out []engine.Emission
	for _, start := range win.Boundaries(first, hi) {
		s, e := start, win.End(start)
		sel, err := kpa.Select(k, func(key uint64) bool { return key >= s && key < e }, al)
		if err != nil {
			ctx.Errorf("select: %v", err)
			break
		}
		if sel.Len() == 0 {
			sel.Destroy()
			continue
		}
		out = append(out, engine.Emission{Port: 0, In: engine.Input{
			K: sel, WinStart: start, HasWin: true, PaneShare: share,
		}})
	}
	k.Destroy()
	return out
}

// OnWatermark implements engine.Operator (stateless: pass through).
func (o *WindowOp) OnWatermark(*engine.Ctx, int, wm.Time) {}

// minMaxKeys returns the resident-key range of a KPA.
func minMaxKeys(k *kpa.KPA) (lo, hi uint64, ok bool) {
	pairs := k.Pairs()
	if len(pairs) == 0 {
		return 0, 0, false
	}
	lo, hi = pairs[0].Key, pairs[0].Key
	for _, p := range pairs[1:] {
		if p.Key < lo {
			lo = p.Key
		}
		if p.Key > hi {
			hi = p.Key
		}
	}
	return lo, hi, true
}
