package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// FilterOp is a stateless ParDo that drops records failing a predicate
// on one column. It performs Selection over KPA (paper §4.2: "If the
// ParDo does not produce new records, StreamBox-HBM performs Selection
// over KPA"), leaving survivors as key/pointer pairs.
type FilterOp struct {
	// Label names the filter.
	Label string
	// Col is the tested column.
	Col int
	// Keep decides whether a record survives.
	Keep func(v uint64) bool
}

var _ engine.Operator = (*FilterOp)(nil)

// Name implements engine.Operator.
func (o *FilterOp) Name() string { return "Filter:" + o.Label }

// InPorts implements engine.Operator.
func (o *FilterOp) InPorts() int { return 1 }

// OnInput selects surviving pairs into a new KPA.
func (o *FilterOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	ts := in.MaxTs()
	tier, al := ctx.PlanPlacement(ts)
	n := int64(in.Rows())
	var d memsim.Demand
	if in.B != nil {
		// Scan the column in DRAM, write survivors to the KPA tier.
		d = ctx.GroupDemand(memsim.Demand{}.CPU(n*2).Seq(memsim.DRAM, n*8).Seq(tier, n*memsim.PairBytes), inputSchema(in))
	} else {
		d = ctx.GroupDemand(memsim.ScanDemand(tier, 2*n*memsim.PairBytes, n*2), inputSchema(in))
	}
	win := in.WinStart
	hasWin := in.HasWin
	ctx.Spawn(o.Name(), ts, d, func() []engine.Emission {
		var out *kpa.KPA
		var err error
		if in.B != nil {
			out, err = kpa.SelectFromBundle(in.B, o.Col, o.Keep, al)
			if err == nil {
				in.Release()
			}
		} else {
			if in.K.Resident() != o.Col {
				if err = kpa.KeySwap(in.K, o.Col); err == nil {
					out, err = kpa.Select(in.K, o.Keep, al)
				}
			} else {
				out, err = kpa.Select(in.K, o.Keep, al)
			}
			if err == nil {
				in.Release()
			}
		}
		if err != nil {
			ctx.Errorf("select: %v", err)
			in.Release()
			return nil
		}
		if out.Len() == 0 {
			out.Destroy()
			return nil
		}
		return []engine.Emission{{Port: 0, In: engine.Input{K: out, WinStart: win, HasWin: hasWin}}}
	})
}

// OnWatermark implements engine.Operator (stateless).
func (o *FilterOp) OnWatermark(*engine.Ctx, int, wm.Time) {}

// ProjectOp models YSB's Projection: with columnar bundles and KPA
// extraction, projection is a no-op pass-through (paper §4.3: "We omit
// Projection, since StreamBox-HBM stores results in DRAM"). It exists
// so pipelines mirror the paper's Figure 1a shape.
type ProjectOp struct {
	// Cols lists the retained columns (informational).
	Cols []int
}

var _ engine.Operator = (*ProjectOp)(nil)

// Name implements engine.Operator.
func (o *ProjectOp) Name() string { return "Projection" }

// InPorts implements engine.Operator.
func (o *ProjectOp) InPorts() int { return 1 }

// OnInput forwards the input unchanged.
func (o *ProjectOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	ctx.Emit(0, in)
}

// OnWatermark implements engine.Operator (stateless).
func (o *ProjectOp) OnWatermark(*engine.Ctx, int, wm.Time) {}

// UnionOp merges two streams into one (Table 1's Union): it forwards
// inputs from both ports; the engine's per-port watermark tracker
// already emits the min watermark downstream.
type UnionOp struct{}

var _ engine.Operator = (*UnionOp)(nil)

// Name implements engine.Operator.
func (o *UnionOp) Name() string { return "Union" }

// InPorts implements engine.Operator.
func (o *UnionOp) InPorts() int { return 2 }

// OnInput forwards either port's data to the single output.
func (o *UnionOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	ctx.Emit(0, in)
}

// OnWatermark implements engine.Operator (merging handled by engine).
func (o *UnionOp) OnWatermark(*engine.Ctx, int, wm.Time) {}

// SampleOp keeps every Nth record (a ParDo that subsets without new
// records, like Filter).
type SampleOp struct {
	// Every keeps one record in Every (must be >= 1).
	Every uint64
	// Col is the column sampled on (hashed).
	Col int
}

var _ engine.Operator = (*SampleOp)(nil)

// Name implements engine.Operator.
func (o *SampleOp) Name() string { return "Sample" }

// InPorts implements engine.Operator.
func (o *SampleOp) InPorts() int { return 1 }

// OnInput delegates to a filter on the sampled column.
func (o *SampleOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	every := o.Every
	if every == 0 {
		every = 1
	}
	f := &FilterOp{Label: "sample", Col: o.Col, Keep: func(v uint64) bool { return v%every == 0 }}
	f.OnInput(ctx, port, in)
}

// OnWatermark implements engine.Operator (stateless).
func (o *SampleOp) OnWatermark(*engine.Ctx, int, wm.Time) {}
