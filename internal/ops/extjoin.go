package ops

import (
	"streambox/internal/algo"
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// ExternalJoinOp joins a stream against a small external key-value
// table held in HBM (paper §4.3 step 3: YSB joins ad_id with the
// associated campaign_id from an external store). It key-swaps the
// input to KeyCol if needed, updates the resident keys in place through
// the table, and writes the dirty keys back to the full records so
// downstream KeySwap and Materialize observe them (§4.3 step 4).
type ExternalJoinOp struct {
	// Label names the join.
	Label string
	// KeyCol is the column joined through the table.
	KeyCol int
	// Table maps resident keys to replacement keys.
	Table *algo.HashTable
	// Default is used for keys missing from the table.
	Default uint64
}

var _ engine.Operator = (*ExternalJoinOp)(nil)

// Name implements engine.Operator.
func (o *ExternalJoinOp) Name() string { return "ExternalJoin:" + o.Label }

// InPorts implements engine.Operator.
func (o *ExternalJoinOp) InPorts() int { return 1 }

// OnInput rewrites resident keys through the table.
func (o *ExternalJoinOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	ts := in.MaxTs()
	n := int64(in.Rows())
	tier, al := ctx.PlanPlacement(ts)
	// Extract/key-swap, then scan the KPA sequentially; each key probes
	// the HBM-resident table and writes back to the record column.
	d := ensureKPADemand(ctx, in, o.KeyCol, tier, false)
	probe := memsim.Demand{}.CPU(n*4).
		Seq(tier, n*memsim.PairBytes).
		Rand(memsim.HBM, n*64, 4). // table probes
		Rand(memsim.DRAM, n*8, 4)  // dirty-key write-back
	d.Phases = append(d.Phases, ctx.GroupDemand(probe, inputSchema(in)).Phases...)
	win := in.WinStart
	hasWin := in.HasWin
	ctx.Spawn(o.Name(), ts, d, func() []engine.Emission {
		k := toKeyedKPA(ctx, in, o.KeyCol, al, false)
		if k == nil {
			return nil
		}
		err := kpa.UpdateKeysWriteBack(k, func(key uint64) uint64 {
			if v, ok := o.Table.Get(key); ok {
				return v
			}
			return o.Default
		})
		if err != nil {
			ctx.Errorf("write-back: %v", err)
			k.Destroy()
			return nil
		}
		return []engine.Emission{{Port: 0, In: engine.Input{K: k, WinStart: win, HasWin: hasWin}}}
	})
}

// OnWatermark implements engine.Operator (stateless).
func (o *ExternalJoinOp) OnWatermark(*engine.Ctx, int, wm.Time) {}
