package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// WindowedFilterOp implements benchmark 8: it takes two windowed
// streams, computes the per-window average of the control stream's
// value column (port 0), and at window closure filters the data
// stream's records (port 1) to those whose value exceeds that average,
// emitting the survivors as full records.
type WindowedFilterOp struct {
	// ValCol is the value column on both streams.
	ValCol int

	avg  map[wm.Time]*avgPartial
	data *windowState
}

var _ engine.Operator = (*WindowedFilterOp)(nil)

// NewWindowedFilter creates the operator.
func NewWindowedFilter(valCol int) *WindowedFilterOp {
	return &WindowedFilterOp{
		ValCol: valCol,
		avg:    make(map[wm.Time]*avgPartial),
		data:   newWindowState(),
	}
}

// Name implements engine.Operator.
func (o *WindowedFilterOp) Name() string { return "WindowedFilter" }

// InPorts implements engine.Operator: control (0) and data (1).
func (o *WindowedFilterOp) InPorts() int { return 2 }

// OnInput folds control-stream values into the window average or
// key-swaps data-stream KPAs to the value column and stores them.
func (o *WindowedFilterOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	if !in.HasWin {
		ctx.Errorf("windowed filter requires windowed input")
		in.Release()
		return
	}
	win := in.WinStart
	if port == 0 {
		d := ctx.GroupDemand(memsim.ReduceKeyedDemand(tierOf(in), in.Rows()), inputSchema(in))
		ctx.Spawn("winfilter:avg", win, d, func() []engine.Emission {
			agg := &SumAgg{}
			n := uint64(in.Rows())
			switch {
			case in.K != nil:
				if err := kpa.ReduceAll(in.K, o.ValCol, agg); err != nil {
					ctx.Errorf("reduce: %v", err)
					in.Release()
					return nil
				}
			case in.B != nil:
				for _, v := range in.B.Col(o.ValCol) {
					agg.Add(v)
				}
			}
			p := o.avg[win]
			if p == nil {
				p = &avgPartial{}
				o.avg[win] = p
			}
			p.sum += agg.Result()
			p.n += n
			in.Release()
			return nil
		})
		return
	}
	// Data stream: hold KPAs keyed by the value column for closure-time
	// selection.
	tier, al := ctx.PlanPlacement(win)
	d := ensureKPADemand(ctx, in, o.ValCol, tier, false)
	ctx.Spawn("winfilter:stage", win, d, func() []engine.Emission {
		k := toKeyedKPA(ctx, in, o.ValCol, al, false)
		if k == nil {
			return nil
		}
		o.data.add(win, k)
		return nil
	})
}

// OnWatermark filters and materializes the data stream of every closed
// window against the control stream's average.
func (o *WindowedFilterOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	// Drop control partials for closed windows that saw no data.
	for start := range o.avg {
		if ctx.Windowing().End(start) <= w {
			if _, hasData := o.data.runs[start]; !hasData {
				delete(o.avg, start)
			}
		}
	}
	for _, win := range o.data.closable(ctx.Windowing(), w) {
		runs := o.data.take(win)
		p := o.avg[win]
		delete(o.avg, win)
		threshold := uint64(0)
		if p != nil && p.n > 0 {
			threshold = p.sum / p.n
		}
		for _, run := range runs {
			run := run
			winStart := win
			n := int64(run.Len())
			d := memsim.ScanDemand(run.Tier(), 2*n*memsim.PairBytes, n*2)
			md := kpa.MaterializeDemand(run, ResultSchema.RecordBytes())
			d.Phases = append(d.Phases, md.Phases...)
			ctx.SpawnTagged("winfilter:select", engine.Urgent, d, func() []engine.Emission {
				sel, err := kpa.Select(run, func(v uint64) bool { return v > threshold }, ctx.AllocTagged(engine.Urgent))
				run.Destroy()
				if err != nil {
					ctx.Errorf("select: %v", err)
					return nil
				}
				if sel.Len() == 0 {
					sel.Destroy()
					return nil
				}
				out, err := kpa.Materialize(sel, ctx.NewBuilder)
				sel.Destroy()
				if err != nil {
					ctx.Errorf("materialize: %v", err)
					return nil
				}
				return []engine.Emission{{Port: 0, In: engine.Input{B: out, WinStart: winStart, HasWin: true}}}
			})
		}
	}
}
