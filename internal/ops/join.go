package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// TemporalJoinOp joins two windowed streams by key (Figure 4b): for
// each arriving bundle it extracts and sorts a KPA, joins it against
// the opposite stream's accumulated window state, emits combined
// records, and merges the KPA into its own side's state. Each matching
// (left, right) pair is emitted exactly once because every new KPA only
// joins records that arrived before it on the other side.
type TemporalJoinOp struct {
	// KeyCol is the join key column; ValCol the payload column carried
	// into the output (key, lval, rval, ts) records.
	KeyCol int
	ValCol int

	sides [2]*windowState
}

var _ engine.Operator = (*TemporalJoinOp)(nil)

// NewTemporalJoin creates the operator.
func NewTemporalJoin(keyCol, valCol int) *TemporalJoinOp {
	return &TemporalJoinOp{
		KeyCol: keyCol,
		ValCol: valCol,
		sides:  [2]*windowState{newWindowState(), newWindowState()},
	}
}

// Name implements engine.Operator.
func (o *TemporalJoinOp) Name() string { return "TemporalJoin" }

// InPorts implements engine.Operator: L and R streams.
func (o *TemporalJoinOp) InPorts() int { return 2 }

// OnInput sorts the arriving KPA, joins it with the other side's state
// and stores it as own state.
func (o *TemporalJoinOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	if !in.HasWin {
		ctx.Errorf("temporal join requires windowed input")
		in.Release()
		return
	}
	if port != 0 && port != 1 {
		ctx.Errorf("invalid port %d", port)
		in.Release()
		return
	}
	win := in.WinStart
	tier, al := ctx.PlanPlacement(win)
	d := ensureKPADemand(ctx, in, o.KeyCol, tier, true)
	// Joining against existing runs adds a scan of those runs.
	other := o.sides[1-port]
	otherPairs := 0
	for _, r := range other.runs[win] {
		otherPairs += r.Len()
	}
	jd := ctx.GroupDemand(
		memsim.JoinDemand(tier, in.Rows()+otherPairs, 0, JoinedSchema.RecordBytes()),
		inputSchema(in))
	d.Phases = append(d.Phases, jd.Phases...)

	ctx.Spawn(o.Name()+":probe", win, d, func() []engine.Emission {
		k := toKeyedKPA(ctx, in, o.KeyCol, al, true)
		if k == nil {
			return nil
		}
		type match struct{ key, lv, rv uint64 }
		var matches []match
		for _, run := range other.runs[win] {
			run := run
			err := kpa.Join(k, run, func(r kpa.JoinRow) {
				lv := derefVal(k, r.Left, o.ValCol)
				rv := derefVal(run, r.Rght, o.ValCol)
				if port == 1 {
					lv, rv = rv, lv
				}
				matches = append(matches, match{r.Key, lv, rv})
			})
			if err != nil {
				ctx.Errorf("join: %v", err)
				k.Destroy()
				return nil
			}
		}
		var out []engine.Emission
		if len(matches) > 0 {
			bd, err := ctx.NewBuilder(JoinedSchema, len(matches))
			if err != nil {
				ctx.Errorf("join output: %v", err)
			} else {
				for _, m := range matches {
					bd.Append(m.key, m.lv, m.rv, win)
				}
				out = append(out, engine.Emission{Port: 0, In: engine.Input{B: bd.Seal(), WinStart: win, HasWin: true}})
			}
		}
		o.sides[port].add(win, k)
		return out
	})
}

// derefVal loads column col of the record behind ptr via its owning KPA.
func derefVal(k *kpa.KPA, ptr uint64, col int) uint64 {
	b, row := k.Deref(ptr)
	return b.At(row, col)
}

// OnWatermark discards state for closed windows (join results stream
// out as they are found).
func (o *TemporalJoinOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	for side := 0; side < 2; side++ {
		for _, win := range o.sides[side].closable(ctx.Windowing(), w) {
			for _, k := range o.sides[side].take(win) {
				k.Destroy()
			}
		}
	}
}

// PendingWindows reports held window state (tests).
func (o *TemporalJoinOp) PendingWindows() int {
	return len(o.sides[0].runs) + len(o.sides[1].runs)
}
