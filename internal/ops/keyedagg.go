package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/wm"
)

// KeyedAggOp is the stateful Keyed Aggregation family of Figure 4a
// (SumPerKey, AvgPerKey, MedianPerKey, TopKPerKey, CountByKey,
// UniqueCountPerKey, PercentileByKey — pick the aggregator). As sorted
// KPAs arrive for a window they are saved as window state; at window
// closure the runs are pairwise-merged and reduced per key, emitting
// (key, result, winStart) records.
type KeyedAggOp struct {
	// Label names the aggregation in task names and stats.
	Label string
	// KeyCol is the grouping column; ValCol the aggregated column.
	KeyCol int
	ValCol int
	// Agg builds one aggregator per key group.
	Agg kpa.AggFactory
	// ReduceCost scales the reduction demand relative to a running
	// aggregate: order statistics (median, top-k, percentiles) and
	// distinct counting collect and sort per-key values, costing a
	// multiple of a simple fold. 0 means 1.
	ReduceCost float64

	state *windowState
}

var _ engine.Operator = (*KeyedAggOp)(nil)

// NewKeyedAgg creates a keyed aggregation operator.
func NewKeyedAgg(label string, keyCol, valCol int, agg kpa.AggFactory) *KeyedAggOp {
	return &KeyedAggOp{Label: label, KeyCol: keyCol, ValCol: valCol, Agg: agg, state: newWindowState()}
}

// WithReduceCost sets the reduction demand multiplier and returns the
// operator (builder style).
func (o *KeyedAggOp) WithReduceCost(f float64) *KeyedAggOp {
	o.ReduceCost = f
	return o
}

// Name implements engine.Operator.
func (o *KeyedAggOp) Name() string { return "KeyedAgg:" + o.Label }

// InPorts implements engine.Operator.
func (o *KeyedAggOp) InPorts() int { return 1 }

// OnInput key-swaps (or extracts) the input to the grouping key, sorts
// it, and saves it as window state.
func (o *KeyedAggOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	if !in.HasWin {
		ctx.Errorf("keyed aggregation requires windowed input (insert a WindowOp upstream)")
		in.Release()
		return
	}
	win := in.WinStart
	tier, al := ctx.PlanPlacement(win)
	d := ensureKPADemand(ctx, in, o.KeyCol, tier, true)
	ctx.Spawn(o.Name()+":sort", win, d, func() []engine.Emission {
		k := toKeyedKPA(ctx, in, o.KeyCol, al, true)
		if k == nil {
			return nil
		}
		o.state.add(win, k)
		return nil
	})
}

// OnWatermark merges and reduces every closed window (Figure 4a right
// side), emitting one result bundle per window.
func (o *KeyedAggOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	for _, win := range o.state.closable(ctx.Windowing(), w) {
		runs := o.state.take(win)
		winStart := win
		mergeTree(ctx, o.Name(), runs, func(merged *kpa.KPA) {
			if merged == nil {
				return
			}
			parallelReduce(ctx, o.Name(), merged, o.ValCol, o.Agg, winStart, o.ReduceCost)
		})
	}
}

// PendingWindows reports how many windows hold state (tests/stats).
func (o *KeyedAggOp) PendingWindows() int { return len(o.state.runs) }
