package ops

import (
	"streambox/internal/bundle"
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// ResultSchema is the layout of aggregate results: (key, value, ts).
var ResultSchema = bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}}

// JoinedSchema is the layout of temporal-join outputs:
// (key, left value, right value, ts).
var JoinedSchema = bundle.Schema{NumCols: 4, TsCol: 3, Names: []string{"key", "lval", "rval", "ts"}}

// tierOf returns the tier the input's grouped representation lives on
// (bundles are always DRAM).
func tierOf(in engine.Input) memsim.Tier {
	if in.K != nil {
		return in.K.Tier()
	}
	return memsim.DRAM
}

// emitDemand is the cost of writing rows result records to DRAM.
func emitDemand(rows int, recBytes int64) memsim.Demand {
	return memsim.ScanDemand(memsim.DRAM, int64(rows)*recBytes, int64(rows)*4)
}

// inputSchema returns the record schema behind an input, defaulting to
// ResultSchema when indeterminate.
func inputSchema(in engine.Input) bundle.Schema {
	if in.B != nil {
		return in.B.Schema()
	}
	if in.K != nil {
		if s, ok := in.K.Schema(); ok {
			return s
		}
	}
	return ResultSchema
}

// ensureKPADemand estimates the cost of toKeyedKPA before spawning:
// extract (bundle inputs) or key swap (mismatched resident), plus the
// sort when requested.
func ensureKPADemand(ctx *engine.Ctx, in engine.Input, keyCol int, tier memsim.Tier, doSort bool) memsim.Demand {
	d := memsim.Demand{}
	n := in.Rows()
	if share := in.PaneShare; share > 1 && in.K != nil {
		// Pane-shared sliding state: key swap and run formation happen
		// once per pane run and amortize across the windows referencing
		// it, so each window is charged a 1/share slice of the *same*
		// kernel model the unshared branch uses — only the sharing
		// factor separates the two paths, never a kernel swap.
		// (memsim.PaneDemand is the radix-kernel counterpart, used
		// where run formation is modeled as radix: experiments.FigPanes.)
		per := (n + share - 1) / share
		if in.K.Resident() != keyCol {
			d = memsim.KeySwapDemand(in.K.Tier(), per)
		}
		if doSort {
			sd := memsim.SortDemand(tier, per)
			d.Phases = append(d.Phases, sd.Phases...)
		}
		return ctx.GroupDemand(d, inputSchema(in))
	}
	if in.B != nil {
		d = kpa.ExtractDemand(in.B, tier)
	} else if in.K != nil && in.K.Resident() != keyCol {
		d = kpa.KeySwapDemand(in.K)
	}
	if doSort {
		sd := memsim.SortDemand(tier, n)
		d.Phases = append(d.Phases, sd.Phases...)
	}
	return ctx.GroupDemand(d, inputSchema(in))
}

// toKeyedKPA runs inside a task body: it converts the input into a KPA
// whose resident column is keyCol (paper §4.3 pseudocode:
// "X = IsKPA(X) ? X : Extract(X); if ResidentColumn != c KeySwap"),
// optionally sorting. It consumes the input (the caller must not
// release it again). Returns nil after reporting an error.
func toKeyedKPA(ctx *engine.Ctx, in engine.Input, keyCol int, al kpa.Allocator, doSort bool) *kpa.KPA {
	var k *kpa.KPA
	if in.B != nil {
		var err error
		k, err = kpa.Extract(in.B, keyCol, al)
		if err != nil {
			ctx.Errorf("extract: %v", err)
			in.Release()
			return nil
		}
		in.Release() // KPA holds its own bundle reference now
	} else {
		k = in.K
		if k == nil {
			ctx.Errorf("empty input")
			return nil
		}
		if k.Resident() != keyCol {
			if err := kpa.KeySwap(k, keyCol); err != nil {
				ctx.Errorf("keyswap: %v", err)
				k.Destroy()
				return nil
			}
		}
	}
	if doSort && !k.Sorted() {
		kpa.Sort(k)
	}
	return k
}

// emitAggregates materializes (key, result, winStart) rows into a fresh
// result bundle. Returns nil when there is nothing to emit.
func emitAggregates(ctx *engine.Ctx, merged *kpa.KPA, valCol int, factory kpa.AggFactory, winStart wm.Time) *bundle.Bundle {
	if merged.Len() == 0 {
		return nil
	}
	type kv struct{ k, v uint64 }
	var rows []kv
	err := kpa.ReduceByKey(merged, valCol, factory, func(key, res uint64) {
		rows = append(rows, kv{key, res})
	})
	if err != nil {
		ctx.Errorf("reduce: %v", err)
		return nil
	}
	bd, err := ctx.NewBuilder(ResultSchema, len(rows))
	if err != nil {
		ctx.Errorf("result bundle: %v", err)
		return nil
	}
	for _, r := range rows {
		bd.Append(r.k, r.v, winStart)
	}
	return bd.Seal()
}

// windowState tracks per-window sorted KPA runs for stateful operators
// (the dashed-line boxes of Figure 4).
type windowState struct {
	runs map[wm.Time][]*kpa.KPA
}

func newWindowState() *windowState {
	return &windowState{runs: make(map[wm.Time][]*kpa.KPA)}
}

func (s *windowState) add(win wm.Time, k *kpa.KPA) {
	s.runs[win] = append(s.runs[win], k)
}

// take removes and returns the runs of one window.
func (s *windowState) take(win wm.Time) []*kpa.KPA {
	r := s.runs[win]
	delete(s.runs, win)
	return r
}

// closable returns the window starts whose end has passed the
// watermark, ascending.
func (s *windowState) closable(w wm.Windowing, watermark wm.Time) []wm.Time {
	var out []wm.Time
	for win := range s.runs {
		if w.End(win) <= watermark {
			out = append(out, win)
		}
	}
	sortTimes(out)
	return out
}

// destroyAll drops every stored run (shutdown/error path).
func (s *windowState) destroyAll() {
	for win, runs := range s.runs {
		for _, k := range runs {
			k.Destroy()
		}
		delete(s.runs, win)
	}
}

func sortTimes(ts []wm.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// mergeTree pairwise-merges the sorted runs of a closing window (paper
// §4.2: "all N threads participate in pairwise merge of these chunks
// iteratively"), then calls done with the single merged KPA. Large
// merges near the tree root are sliced at key boundaries into one task
// per core. Runs are consumed. Every task is Urgent: the window is on
// the critical path to output.
func mergeTree(ctx *engine.Ctx, name string, runs []*kpa.KPA, done func(*kpa.KPA)) {
	switch len(runs) {
	case 0:
		done(nil)
		return
	case 1:
		done(runs[0])
		return
	}
	var next []*kpa.KPA
	pending := 0
	finish := func() {
		pending--
		if pending == 0 {
			if len(runs)%2 == 1 {
				next = append(next, runs[len(runs)-1])
			}
			mergeTree(ctx, name, next, done)
		}
	}
	// sliceThreshold: merges wider than one run's worth of pairs per
	// core get sliced so the tree's upper levels stay parallel.
	cores := ctx.Cores()
	schedule := func(a, b *kpa.KPA) {
		pending++
		total := a.Len() + b.Len()
		if cores <= 1 || total < 4*cores {
			d := ctx.GroupDemand(kpa.MergeDemand(a, b), ResultSchema)
			var m *kpa.KPA
			ctx.SpawnCont(name+":merge", engine.Urgent, d, func() []engine.Emission {
				var err error
				m, err = kpa.Merge(a, b, ctx.AllocTagged(engine.Urgent))
				if err != nil {
					ctx.Errorf("merge: %v", err)
				}
				a.Destroy()
				b.Destroy()
				return nil
			}, func() {
				if m != nil {
					next = append(next, m)
				}
				finish()
			})
			return
		}
		// Sliced parallel merge.
		out, err := kpa.NewMergeTarget(a, b, ctx.AllocTagged(engine.Urgent))
		if err != nil {
			ctx.Errorf("merge target: %v", err)
			a.Destroy()
			b.Destroy()
			finish()
			return
		}
		slices, err := kpa.MergeSlices(a, b, cores)
		if err != nil {
			ctx.Errorf("merge slices: %v", err)
			out.Destroy()
			a.Destroy()
			b.Destroy()
			finish()
			return
		}
		remaining := len(slices)
		for _, sl := range slices {
			sl := sl
			d := ctx.GroupDemand(memsim.MergeDemand(out.Tier(), sl.Len()), ResultSchema)
			ctx.SpawnCont(name+":merge-slice", engine.Urgent, d, func() []engine.Emission {
				kpa.MergeSegment(out, a, b, sl)
				return nil
			}, func() {
				remaining--
				if remaining == 0 {
					a.Destroy()
					b.Destroy()
					next = append(next, out)
					finish()
				}
			})
		}
	}
	for i := 0; i+1 < len(runs); i += 2 {
		schedule(runs[i], runs[i+1])
	}
}

// parallelReduce range-partitions a sorted, merged KPA at key
// boundaries and runs one keyed-reduction task per range, emitting one
// result bundle per range. The merged KPA is destroyed when all ranges
// finish.
func parallelReduce(ctx *engine.Ctx, name string, merged *kpa.KPA, valCol int, factory kpa.AggFactory, winStart wm.Time, costFactor float64) {
	if costFactor <= 0 {
		costFactor = 1
	}
	cuts, err := kpa.KeyAlignedCuts(merged, ctx.Cores())
	if err != nil {
		ctx.Errorf("reduce cuts: %v", err)
		merged.Destroy()
		return
	}
	remaining := len(cuts) - 1
	if remaining <= 0 {
		merged.Destroy()
		return
	}
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		d := ctx.GroupDemand(memsim.ReduceKeyedDemand(merged.Tier(), int(float64(hi-lo)*costFactor)), ResultSchema)
		ctx.SpawnCont(name+":reduce", engine.Urgent, d, func() []engine.Emission {
			type kv struct{ k, v uint64 }
			var rows []kv
			err := kpa.ReduceByKeyRange(merged, lo, hi, valCol, factory, func(key, res uint64) {
				rows = append(rows, kv{key, res})
			})
			if err != nil {
				ctx.Errorf("reduce: %v", err)
				return nil
			}
			if len(rows) == 0 {
				return nil
			}
			bd, err := ctx.NewBuilder(ResultSchema, len(rows))
			if err != nil {
				ctx.Errorf("result bundle: %v", err)
				return nil
			}
			for _, r := range rows {
				bd.Append(r.k, r.v, winStart)
			}
			return []engine.Emission{{Port: 0, In: engine.Input{B: bd.Seal(), WinStart: winStart, HasWin: true}}}
		}, func() {
			remaining--
			if remaining == 0 {
				merged.Destroy()
			}
		})
	}
}
