package ops

import (
	"streambox/internal/engine"
	"streambox/internal/wm"
)

// CapturedRow is one result record observed by a CaptureSink.
type CapturedRow struct {
	Key uint64
	Val uint64
	Win wm.Time
}

// CaptureSink terminates a pipeline and keeps every result record for
// inspection — integration tests and examples use it to verify pipeline
// output; production pipelines use engine.EgressSink.
type CaptureSink struct {
	// Rows holds the captured (key, value, window) triples.
	Rows []CapturedRow
	// Records counts result records (including non-bundle inputs).
	Records int64

	lastWM wm.Time
}

var _ engine.Operator = (*CaptureSink)(nil)

// NewCapture creates the sink.
func NewCapture() *CaptureSink { return &CaptureSink{} }

// Name implements engine.Operator.
func (s *CaptureSink) Name() string { return "capture" }

// InPorts implements engine.Operator.
func (s *CaptureSink) InPorts() int { return 1 }

// OnInput records the result rows and releases the input.
func (s *CaptureSink) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	s.Records += int64(in.Rows())
	ctx.Engine().CountEmitted(int64(in.Rows()))
	if in.B != nil {
		cols := in.B.Schema().NumCols
		for i := 0; i < in.B.Rows(); i++ {
			row := CapturedRow{Key: in.B.At(i, 0), Win: in.WinStart}
			if cols > 1 {
				row.Val = in.B.At(i, 1)
			}
			s.Rows = append(s.Rows, row)
		}
	} else if in.K != nil {
		for _, key := range in.K.Keys() {
			s.Rows = append(s.Rows, CapturedRow{Key: key, Win: in.WinStart})
		}
	}
	in.Release()
}

// OnWatermark records output delays once per watermark.
func (s *CaptureSink) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	if w <= s.lastWM {
		return
	}
	s.lastWM = w
	ctx.Engine().SinkWatermark(w, ctx.Now())
}

// ByWindow groups captured rows per window start.
func (s *CaptureSink) ByWindow() map[wm.Time][]CapturedRow {
	out := make(map[wm.Time][]CapturedRow)
	for _, r := range s.Rows {
		out[r.Win] = append(out[r.Win], r)
	}
	return out
}

// KeyVals returns a key → value map for one window.
func (s *CaptureSink) KeyVals(win wm.Time) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for _, r := range s.Rows {
		if r.Win == win {
			out[r.Key] = r.Val
		}
	}
	return out
}
