package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// AvgAllOp computes the average of one column across all records of
// each window (Windowed Average All, benchmark 5). It is an unkeyed
// reduction: per-bundle partial sums accumulate in window state and
// combine at closure — no sorting or merging needed.
type AvgAllOp struct {
	// ValCol is the averaged column.
	ValCol int

	partial map[wm.Time]*avgPartial
}

type avgPartial struct {
	sum uint64
	n   uint64
}

var _ engine.Operator = (*AvgAllOp)(nil)

// NewAvgAll creates the operator.
func NewAvgAll(valCol int) *AvgAllOp {
	return &AvgAllOp{ValCol: valCol, partial: make(map[wm.Time]*avgPartial)}
}

// Name implements engine.Operator.
func (o *AvgAllOp) Name() string { return "AvgAll" }

// InPorts implements engine.Operator.
func (o *AvgAllOp) InPorts() int { return 1 }

// OnInput folds the input's value column into the window partial.
func (o *AvgAllOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	if !in.HasWin {
		ctx.Errorf("AvgAll requires windowed input")
		in.Release()
		return
	}
	win := in.WinStart
	d := ctx.GroupDemand(memsim.ReduceKeyedDemand(tierOf(in), in.Rows()), inputSchema(in))
	ctx.Spawn("avgall:partial", win, d, func() []engine.Emission {
		agg := &SumAgg{}
		var n uint64
		switch {
		case in.K != nil:
			if err := kpa.ReduceAll(in.K, o.ValCol, agg); err != nil {
				ctx.Errorf("reduce: %v", err)
				in.Release()
				return nil
			}
			n = uint64(in.K.Len())
		case in.B != nil:
			for _, v := range in.B.Col(o.ValCol) {
				agg.Add(v)
			}
			n = uint64(in.B.Rows())
		}
		p := o.partial[win]
		if p == nil {
			p = &avgPartial{}
			o.partial[win] = p
		}
		p.sum += agg.Result()
		p.n += n
		in.Release()
		return nil
	})
}

// OnWatermark emits one (0, avg, winStart) record per closed window.
func (o *AvgAllOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	win := ctx.Windowing()
	var closed []wm.Time
	for start := range o.partial {
		if win.End(start) <= w {
			closed = append(closed, start)
		}
	}
	sortTimes(closed)
	for _, start := range closed {
		p := o.partial[start]
		delete(o.partial, start)
		winStart := start
		avg := uint64(0)
		if p.n > 0 {
			avg = p.sum / p.n
		}
		ctx.SpawnTagged("avgall:emit", engine.Urgent, emitDemand(1, ResultSchema.RecordBytes()), func() []engine.Emission {
			bd, err := ctx.NewBuilder(ResultSchema, 1)
			if err != nil {
				ctx.Errorf("result bundle: %v", err)
				return nil
			}
			bd.Append(0, avg, winStart)
			return []engine.Emission{{Port: 0, In: engine.Input{B: bd.Seal(), WinStart: winStart, HasWin: true}}}
		})
	}
}
