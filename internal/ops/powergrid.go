package ops

import (
	"streambox/internal/engine"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// PlugKey packs the DEBS 2014 hierarchy (house, household, plug) into
// one 64-bit grouping key so plug averages can be computed per plug and
// later folded per house.
func PlugKey(house, household, plug uint64) uint64 {
	return house<<32 | household<<16 | plug
}

// HouseOf extracts the house from a plug key.
func HouseOf(plugKey uint64) uint64 { return plugKey >> 32 }

// PowerGridOp implements benchmark 9 (derived from the DEBS 2014 grand
// challenge): per window it computes the average power of each plug and
// the average over all plugs, counts each house's plugs above the
// global average, and emits the houses with the most high-power plugs.
//
// Input records are (plugKey, load, ts); input arrives windowed (insert
// a WindowOp upstream). Output records are (house, count, winStart) for
// the top houses.
type PowerGridOp struct {
	state  *windowState
	global map[wm.Time]*avgPartial
}

var _ engine.Operator = (*PowerGridOp)(nil)

// NewPowerGrid creates the operator.
func NewPowerGrid() *PowerGridOp {
	return &PowerGridOp{state: newWindowState(), global: make(map[wm.Time]*avgPartial)}
}

// Name implements engine.Operator.
func (o *PowerGridOp) Name() string { return "PowerGrid" }

// InPorts implements engine.Operator.
func (o *PowerGridOp) InPorts() int { return 1 }

const (
	pgKeyCol = 0
	pgValCol = 1
)

// OnInput sorts arriving KPAs by plug key (for the per-plug averages)
// and accumulates the global load partial in the same pass.
func (o *PowerGridOp) OnInput(ctx *engine.Ctx, port int, in engine.Input) {
	if !in.HasWin {
		ctx.Errorf("power grid requires windowed input")
		in.Release()
		return
	}
	win := in.WinStart
	tier, al := ctx.PlanPlacement(win)
	d := ensureKPADemand(ctx, in, pgKeyCol, tier, true)
	ctx.Spawn("powergrid:sort", win, d, func() []engine.Emission {
		k := toKeyedKPA(ctx, in, pgKeyCol, al, true)
		if k == nil {
			return nil
		}
		agg := &SumAgg{}
		if err := kpa.ReduceAll(k, pgValCol, agg); err != nil {
			ctx.Errorf("global partial: %v", err)
			k.Destroy()
			return nil
		}
		p := o.global[win]
		if p == nil {
			p = &avgPartial{}
			o.global[win] = p
		}
		p.sum += agg.Result()
		p.n += uint64(k.Len())
		o.state.add(win, k)
		return nil
	})
}

// OnWatermark closes windows: merge plug runs, compute per-plug
// averages, compare with the global average, count per house, emit the
// top houses.
func (o *PowerGridOp) OnWatermark(ctx *engine.Ctx, port int, w wm.Time) {
	for _, win := range o.state.closable(ctx.Windowing(), w) {
		runs := o.state.take(win)
		p := o.global[win]
		delete(o.global, win)
		globalAvg := uint64(0)
		if p != nil && p.n > 0 {
			globalAvg = p.sum / p.n
		}
		winStart := win
		mergeTree(ctx, o.Name(), runs, func(merged *kpa.KPA) {
			if merged == nil {
				return
			}
			o.reduceWindow(ctx, merged, globalAvg, winStart)
		})
	}
}

// reduceWindow computes per-plug averages in range-parallel tasks
// (plug-key-aligned), folds per-house counts of plugs above the global
// average, and emits the top houses in a final combining task.
func (o *PowerGridOp) reduceWindow(ctx *engine.Ctx, merged *kpa.KPA, globalAvg uint64, winStart wm.Time) {
	cuts, err := kpa.KeyAlignedCuts(merged, ctx.Cores())
	if err != nil {
		ctx.Errorf("cuts: %v", err)
		merged.Destroy()
		return
	}
	remaining := len(cuts) - 1
	if remaining <= 0 {
		merged.Destroy()
		return
	}
	houseCounts := make(map[uint64]uint64)
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		// Two aggregation rounds (per-plug average, per-house fold) over
		// the range: charge a multiple of a plain keyed reduction.
		d := ctx.GroupDemand(memsim.ReduceKeyedDemand(merged.Tier(), 3*(hi-lo)), ResultSchema)
		ctx.SpawnCont(o.Name()+":reduce", engine.Urgent, d, func() []engine.Emission {
			err := kpa.ReduceByKeyRange(merged, lo, hi, pgValCol, Avg(), func(plugKey, avg uint64) {
				if avg > globalAvg {
					houseCounts[HouseOf(plugKey)]++
				}
			})
			if err != nil {
				ctx.Errorf("reduce: %v", err)
			}
			return nil
		}, func() {
			remaining--
			if remaining == 0 {
				merged.Destroy()
				o.emitTopHouses(ctx, houseCounts, winStart)
			}
		})
	}
}

// emitTopHouses emits the houses with the maximum high-power plug count.
func (o *PowerGridOp) emitTopHouses(ctx *engine.Ctx, houseCounts map[uint64]uint64, winStart wm.Time) {
	var maxCount uint64
	for _, c := range houseCounts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return
	}
	var top []uint64
	for h, c := range houseCounts {
		if c == maxCount {
			top = append(top, h)
		}
	}
	sortU64(top)
	ctx.SpawnTagged(o.Name()+":emit", engine.Urgent, emitDemand(len(top), ResultSchema.RecordBytes()), func() []engine.Emission {
		bd, err := ctx.NewBuilder(ResultSchema, len(top))
		if err != nil {
			ctx.Errorf("result bundle: %v", err)
			return nil
		}
		for _, h := range top {
			bd.Append(h, maxCount, winStart)
		}
		return []engine.Emission{{Port: 0, In: engine.Input{B: bd.Seal(), WinStart: winStart, HasWin: true}}}
	})
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
