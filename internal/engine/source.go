package engine

import (
	"fmt"

	"streambox/internal/bundle"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// Generator produces a stream's records. Implementations live in
// internal/ingress (KV, YSB, Power Grid).
type Generator interface {
	// Schema returns the record layout of the stream.
	Schema() bundle.Schema
	// Fill appends n records with event timestamps drawn from
	// [tsLo, tsHi) to the builder.
	Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time)
}

// SourceConfig describes one ingress stream (paper §6 "Data ingress").
type SourceConfig struct {
	// Name labels the source in stats.
	Name string
	// Rate is the offered load in records/second of virtual time.
	Rate float64
	// NICBandwidth caps ingress in bytes/second (RDMA: 5 GB/s,
	// 10 GbE: 1.25 GB/s). Zero means unconstrained.
	NICBandwidth float64
	// BundleRecords is the number of records per ingested bundle.
	BundleRecords int
	// WindowRecords sets the event-time density: this many records span
	// one window of event time (paper: 10 M records per 1 s window).
	WindowRecords int
	// WatermarkEvery emits a watermark after this many bundles.
	WatermarkEvery int
	// WatermarkLagBundles delays each watermark by this many bundles of
	// event time (Fig 10b: "delaying watermark arrival").
	WatermarkLagBundles int
}

// Validate reports configuration errors.
func (c SourceConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("engine: source %q: rate must be positive", c.Name)
	}
	if c.BundleRecords <= 0 {
		return fmt.Errorf("engine: source %q: bundle size must be positive", c.Name)
	}
	if c.WindowRecords <= 0 {
		return fmt.Errorf("engine: source %q: window records must be positive", c.Name)
	}
	if c.WatermarkEvery <= 0 {
		return fmt.Errorf("engine: source %q: watermark interval must be positive", c.Name)
	}
	return nil
}

// sourceOp is the hidden operator heading a source's node; it only
// exists so ingestion tasks and watermarks use the node machinery.
type sourceOp struct{ name string }

func (s *sourceOp) Name() string                   { return s.name }
func (s *sourceOp) InPorts() int                   { return 1 }
func (s *sourceOp) OnInput(*Ctx, int, Input)       {}
func (s *sourceOp) OnWatermark(*Ctx, int, wm.Time) {}

// sourceDriver generates bundles on a virtual-time schedule, respecting
// the NIC bandwidth, the offered rate and engine back-pressure.
type sourceDriver struct {
	e    *Engine
	cfg  SourceConfig
	gen  Generator
	node *Node

	emitted      int64 // records generated so far
	bundleCount  int
	nextEventTs  wm.Time
	tsPerRecord  float64
	pendingStart bool
	stopped      bool
}

// AddSource attaches a generator to the pipeline, feeding input port
// inPort of entry.
func (e *Engine) AddSource(gen Generator, cfg SourceConfig, entry *Node, inPort int) (*sourceDriver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	srcNode := e.AddOperator(&sourceOp{name: "source:" + cfg.Name})
	e.Connect(srcNode, 0, entry, inPort)
	d := &sourceDriver{
		e:           e,
		cfg:         cfg,
		gen:         gen,
		node:        srcNode,
		tsPerRecord: float64(e.Win.Size) * float64(e.cfg.RecordWeight) / float64(cfg.WindowRecords),
	}
	e.sources = append(e.sources, d)
	return d, nil
}

// start schedules the first bundle at time zero.
func (d *sourceDriver) start() {
	d.e.Sim.At(0, func(now float64) { d.emitBundle(now) })
}

// kick resumes a back-pressured source.
func (d *sourceDriver) kick(now float64) {
	if d.pendingStart && !d.stopped {
		d.pendingStart = false
		d.emitBundle(now)
	}
}

// Stop halts the source permanently.
func (d *sourceDriver) Stop() { d.stopped = true }

// SetRate changes the offered load (Fig 10a sweeps ingestion rate).
func (d *sourceDriver) SetRate(rate float64) { d.cfg.Rate = rate }

// emitBundle generates one bundle, spawns its ingestion task and
// schedules the next emission.
func (d *sourceDriver) emitBundle(now float64) {
	if d.stopped {
		return
	}
	if d.e.paused {
		// Back-pressure: wait for the monitor to resume us.
		d.pendingStart = true
		return
	}
	n := d.cfg.BundleRecords
	schema := d.gen.Schema()
	bd, err := d.e.NewBundleBuilder(schema, n)
	if err != nil {
		// DRAM exhausted: behave like back-pressure and retry shortly.
		d.e.Sim.After(0.005, d.emitBundle)
		return
	}
	tsLo := d.nextEventTs
	tsHi := tsLo + wm.Time(float64(n)*d.tsPerRecord)
	if tsHi == tsLo {
		tsHi = tsLo + 1
	}
	d.gen.Fill(bd, n, tsLo, tsHi)
	b := bd.Seal()
	d.nextEventTs = tsHi
	d.emitted += int64(n)
	d.bundleCount++
	bundleBytes := b.Bytes()

	// Ingestion task: the NIC copy into a DRAM bundle. With specimen
	// scaling, each real record stands for RecordWeight virtual ones.
	w := d.e.cfg.RecordWeight
	d.e.stats.IngestedRecords += int64(n) * w
	d.e.stats.IngestedBytes += bundleBytes * w
	tag := tagFor(d.e.Win, d.e.targetWM, tsHi)
	d.e.spawn(d.node, "ingest:"+d.cfg.Name, tag,
		memsim.Demand{}.Seq(memsim.DRAM, bundleBytes),
		func() []Emission {
			return []Emission{{Port: 0, In: Input{B: b}}}
		}, nil)

	// Watermark cadence.
	if d.bundleCount%d.cfg.WatermarkEvery == 0 {
		lag := wm.Time(float64(d.cfg.WatermarkLagBundles*d.cfg.BundleRecords) * d.tsPerRecord)
		var w wm.Time
		if tsHi > lag {
			w = tsHi - lag
		}
		if w > 0 {
			d.emitWatermark(now, w)
		}
	}

	// Next bundle: limited by offered rate and NIC bandwidth (both in
	// virtual units).
	gap := float64(int64(n)*w) / d.cfg.Rate
	if d.cfg.NICBandwidth > 0 {
		// Wire bytes include per-record framing and bundle metadata
		// (roughly doubling payload for small numeric records).
		wireBytes := 2 * bundleBytes * w
		if nicGap := float64(wireBytes) / d.cfg.NICBandwidth; nicGap > gap {
			gap = nicGap
		}
	}
	d.e.Sim.After(gap, d.emitBundle)
}

// emitWatermark records the emission time (for output-delay accounting)
// and pushes the watermark into the pipeline.
func (d *sourceDriver) emitWatermark(now float64, w wm.Time) {
	if _, seen := d.e.wmEmitTime[w]; !seen {
		d.e.wmEmitTime[w] = now
	}
	if w > d.e.targetWM {
		d.e.targetWM = w
	}
	d.node.onUpstreamWM(d.e, 0, w)
}

// Emitted returns the records generated so far.
func (d *sourceDriver) Emitted() int64 { return d.emitted }
