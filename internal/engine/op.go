package engine

import (
	"fmt"

	"streambox/internal/bundle"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// Input is one unit of data flowing between operators: either a record
// bundle or a KPA, optionally annotated with the window it belongs to
// (set once the data passed a Windowing operator).
type Input struct {
	B        *bundle.Bundle
	K        *kpa.KPA
	WinStart wm.Time
	HasWin   bool
	// PaneShare, when > 1, marks a sliding-window KPA whose grouping
	// state is pane-shared across that many overlapping windows:
	// downstream operators charge a 1/PaneShare slice of their usual
	// key-swap/sort demand, mirroring the native backend's refcounted
	// shared pane runs. 0 or 1 means exclusive.
	PaneShare int
}

// IsKPA reports whether the input carries a KPA.
func (in Input) IsKPA() bool { return in.K != nil }

// Rows returns the record/pair count of the input.
func (in Input) Rows() int {
	if in.K != nil {
		return in.K.Len()
	}
	if in.B != nil {
		return in.B.Rows()
	}
	return 0
}

// MaxTs returns a representative event time for tagging: the window
// start when windowed, otherwise the data's maximum timestamp.
func (in Input) MaxTs() wm.Time {
	if in.HasWin {
		return in.WinStart
	}
	if in.B != nil {
		if _, maxTs, ok := in.B.MinMaxTs(); ok {
			return maxTs
		}
	}
	return 0
}

// Release drops the input's ownership reference: destroying a KPA or
// releasing a bundle reference. Operators that do not forward an input
// downstream must release it.
func (in Input) Release() {
	if in.K != nil {
		in.K.Destroy()
	} else if in.B != nil {
		in.B.Release()
	}
}

// Emission routes data to a downstream port after a task completes.
type Emission struct {
	Port int
	In   Input
}

// Operator is one pipeline stage. Implementations live in internal/ops.
// OnInput and OnWatermark run inside the simulator loop; long work must
// be pushed into tasks via Ctx.Spawn so that it costs virtual time.
type Operator interface {
	// Name identifies the operator in stats and errors.
	Name() string
	// InPorts returns the number of input ports (1 for most operators,
	// 2 for joins).
	InPorts() int
	// OnInput handles one bundle or KPA arriving on port.
	OnInput(ctx *Ctx, port int, in Input)
	// OnWatermark handles the event-time watermark advancing on port.
	// The engine forwards the merged watermark downstream automatically
	// once all tasks spawned here have drained.
	OnWatermark(ctx *Ctx, port int, watermark wm.Time)
}

// Ctx is the per-operator handle into the engine, passed to every
// Operator callback.
type Ctx struct {
	e    *Engine
	node *Node
}

// Engine returns the owning engine.
func (c *Ctx) Engine() *Engine { return c.e }

// Now returns the current virtual time in seconds.
func (c *Ctx) Now() float64 { return c.e.Sim.Now() }

// Windowing returns the pipeline's window configuration.
func (c *Ctx) Windowing() wm.Windowing { return c.e.Win }

// TargetWatermark returns the engine's global target watermark.
func (c *Ctx) TargetWatermark() wm.Time { return c.e.targetWM }

// Tag classifies work on data with representative event time ts.
func (c *Ctx) Tag(ts wm.Time) Tag { return tagFor(c.e.Win, c.e.targetWM, ts) }

// Spawn schedules one task: demand costs virtual time; body runs the
// real computation and returns the emissions delivered downstream when
// the task completes. ts is the representative event time used for the
// performance-impact tag.
func (c *Ctx) Spawn(name string, ts wm.Time, demand memsim.Demand, body func() []Emission) {
	c.e.spawn(c.node, name, c.Tag(ts), demand, body, nil)
}

// SpawnTagged schedules a task with an explicit tag.
func (c *Ctx) SpawnTagged(name string, tag Tag, demand memsim.Demand, body func() []Emission) {
	c.e.spawn(c.node, name, tag, demand, body, nil)
}

// SpawnCont schedules a task with a continuation that fires at the
// task's virtual completion time — the building block for dependent
// task trees (e.g. pairwise merges of a closing window).
func (c *Ctx) SpawnCont(name string, tag Tag, demand memsim.Demand, body func() []Emission, onComplete func()) {
	c.e.spawn(c.node, name, tag, demand, body, onComplete)
}

// Emit delivers data downstream immediately (without a task). Use Spawn
// for anything with nontrivial cost.
func (c *Ctx) Emit(port int, in Input) {
	c.e.deliver(c.node, port, in)
}

// Alloc returns a KPA allocator that applies the engine's placement
// policy (knob + tag) for work on event time ts.
func (c *Ctx) Alloc(ts wm.Time) kpa.Allocator {
	return &placementAllocator{e: c.e, tag: c.Tag(ts)}
}

// AllocTagged returns an allocator with an explicit tag.
func (c *Ctx) AllocTagged(tag Tag) kpa.Allocator {
	return &placementAllocator{e: c.e, tag: tag}
}

// PlanPlacement decides, at task-creation time, where the task's KPAs
// will live (paper §5: "When StreamBox-HBM creates a grouping task, it
// allocates or reuses a KPA"). The returned tier lets the caller build
// the task's demand profile; the returned allocator realizes the
// decision in the task body, spilling to DRAM only under exhaustion.
func (c *Ctx) PlanPlacement(ts wm.Time) (memsim.Tier, kpa.Allocator) {
	return c.e.planPlacement(c.Tag(ts))
}

// PlanPlacementTagged is PlanPlacement with an explicit tag.
func (c *Ctx) PlanPlacementTagged(tag Tag) (memsim.Tier, kpa.Allocator) {
	return c.e.planPlacement(tag)
}

// NewBuilder starts a DRAM record bundle charged against the pool.
func (c *Ctx) NewBuilder(schema bundle.Schema, capacity int) (*bundle.Builder, error) {
	return c.e.NewBundleBuilder(schema, capacity)
}

// UseKPA reports whether the engine runs with KPA extraction (false for
// the Fig 9 "NoKPA" ablation, which groups full records).
func (c *Ctx) UseKPA() bool { return c.e.cfg.UseKPA }

// Cores returns the machine's core count — the parallelism target for
// sliced merges and range-parallel reductions.
func (c *Ctx) Cores() int { return c.e.cfg.Machine.Cores }

// Errorf records an operator error; the engine surfaces the first one.
func (c *Ctx) Errorf(format string, args ...interface{}) {
	c.e.recordError(fmt.Errorf("%s: "+format, append([]interface{}{c.node.op.Name()}, args...)...))
}
