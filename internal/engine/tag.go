// Package engine implements the StreamBox-HBM runtime (paper §3 and §5):
// it executes operator pipelines over the hybrid-memory simulator,
// creating data and pipeline parallelism from bundles and KPAs, tagging
// tasks by performance impact, and balancing HBM capacity against DRAM
// bandwidth with the demand-balance knob.
package engine

import "streambox/internal/wm"

// Tag is a coarse performance-impact class (paper §5): Urgent tasks sit
// on the critical path of pipeline output; High tasks belong to windows
// externalized in the near future; Low tasks to windows far out.
type Tag int

const (
	// Low tags tasks on young windows, externalized far in the future.
	Low Tag = iota
	// High tags tasks whose windows close within the next few windows.
	High
	// Urgent tags tasks on the critical path: windows at or past the
	// target watermark.
	Urgent
)

// String returns the tag name.
func (t Tag) String() string {
	switch t {
	case Urgent:
		return "Urgent"
	case High:
		return "High"
	default:
		return "Low"
	}
}

// Priority maps the tag onto the simulator's dispatch priority.
func (t Tag) Priority() int { return int(t) }

// highSlackWindows is how many windows ahead of the target watermark
// still count as High ("externalized in the near future, say one or two
// windows in the future", paper §5).
const highSlackWindows = 2

// TagFor classifies a task operating on data with representative event
// time ts, given the target watermark and windowing — the engine's
// tagging rule, exported so the native runtime applies the identical
// policy from its worker pool.
func TagFor(w wm.Windowing, target, ts wm.Time) Tag { return tagFor(w, target, ts) }

// tagFor classifies a task operating on data with representative event
// time ts, given the target watermark and windowing. Records at or
// behind the target watermark are on the critical path.
func tagFor(w wm.Windowing, target, ts wm.Time) Tag {
	if w.Validate() != nil {
		return Low
	}
	winEnd := w.End(w.WindowOf(ts))
	if winEnd <= target+w.Size {
		return Urgent
	}
	if winEnd <= target+(highSlackWindows+1)*w.Size {
		return High
	}
	return Low
}
