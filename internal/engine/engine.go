package engine

import (
	"fmt"

	"streambox/internal/bundle"
	"streambox/internal/kpa"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// Placement selects the KPA placement policy (the Fig 9 ablations).
type Placement int

const (
	// PlacementManaged is StreamBox-HBM: software placement with the
	// demand-balance knob and performance-impact tags.
	PlacementManaged Placement = iota
	// PlacementDRAM puts every KPA in DRAM ("StreamBox-HBM DRAM").
	PlacementDRAM
	// PlacementCache models hardware cache-mode: KPAs live in the DRAM
	// address space, the 16 GB HBM acts as a transparent cache
	// ("StreamBox-HBM Caching").
	PlacementCache
)

// Config configures an engine instance.
type Config struct {
	// Machine is the simulated hardware.
	Machine memsim.Config
	// Win is the pipeline's window configuration.
	Win wm.Windowing
	// Placement selects the KPA placement policy.
	Placement Placement
	// UseKPA false disables key/pointer extraction: grouping moves full
	// records (the "Caching NoKPA" ablation).
	UseKPA bool
	// TargetDelaySec is the output-delay target (paper: 1 second).
	TargetDelaySec float64
	// ReservedHBM is the Urgent pool size; 0 picks a default.
	ReservedHBM int64
	// Seed drives the knob's placement randomness.
	Seed int64
	// MonitorInterval is the resource sampling period in virtual
	// seconds; 0 picks the paper's 10 ms.
	MonitorInterval float64
	// RecordSeries enables Fig 10 style time-series capture.
	RecordSeries bool
	// CacheHitFrac is the HBM hit fraction assumed in cache mode.
	CacheHitFrac float64
	// RecordWeight enables specimen scaling for paper-scale benchmarks:
	// every real record stands for RecordWeight virtual records. All
	// task demands, memory charges and throughput statistics scale by
	// this factor while the computation still runs on real (smaller)
	// data. 0 or 1 disables scaling; correctness tests use 1.
	RecordWeight int64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.TargetDelaySec == 0 {
		c.TargetDelaySec = 1.0
	}
	if c.ReservedHBM == 0 {
		c.ReservedHBM = 256 << 20
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = 0.010
	}
	if c.CacheHitFrac == 0 {
		// Streaming KPAs are ephemeral with little temporal locality, so
		// a hardware-managed HBM cache hits rarely (§7.3: software
		// manages hybrid memories better than hardware).
		c.CacheHitFrac = 0.25
	}
	if c.RecordWeight <= 0 {
		c.RecordWeight = 1
	}
	return c
}

// Sample is one monitor observation (Fig 10 time series).
type Sample struct {
	T        float64
	HBMUtil  float64 // HBM capacity utilization [0,1]
	DRAMBW   float64 // DRAM bandwidth over the interval, bytes/s
	HBMBW    float64 // HBM bandwidth over the interval, bytes/s
	KLow     float64
	KHigh    float64
	Paused   bool
	HBMBytes int64 // absolute HBM bytes in use
}

// Stats summarises one engine run.
type Stats struct {
	IngestedRecords int64
	IngestedBytes   int64
	EmittedRecords  int64
	WindowsClosed   int
	Delays          []float64
	Series          []Sample
	Errors          []error
}

// AvgDelay returns the mean output delay.
func (s Stats) AvgDelay() float64 {
	if len(s.Delays) == 0 {
		return 0
	}
	var sum float64
	for _, d := range s.Delays {
		sum += d
	}
	return sum / float64(len(s.Delays))
}

// MaxDelay returns the worst output delay.
func (s Stats) MaxDelay() float64 {
	var m float64
	for _, d := range s.Delays {
		if d > m {
			m = d
		}
	}
	return m
}

// Engine is one StreamBox-HBM instance.
type Engine struct {
	Sim  *memsim.Sim
	Pool *mempool.Pool
	Reg  *bundle.Registry
	Win  wm.Windowing

	cfg   Config
	knob  *Knob
	nodes []*Node

	targetWM   wm.Time
	wmEmitTime map[wm.Time]float64
	lastDelay  float64

	paused  bool
	sources []*sourceDriver

	stats Stats
}

// New creates an engine on a fresh simulator.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.Defaults()
	if err := cfg.Win.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		Sim:        memsim.NewSim(cfg.Machine),
		Reg:        bundle.NewRegistry(),
		Win:        cfg.Win,
		cfg:        cfg,
		knob:       NewKnob(cfg.Seed + 1),
		wmEmitTime: make(map[wm.Time]float64),
	}
	reserved := cfg.ReservedHBM
	if cfg.Placement != PlacementManaged {
		reserved = 0
	}
	e.Pool = mempool.New(cfg.Machine, reserved)
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Knob exposes the demand-balance knob (read by experiments).
func (e *Engine) Knob() *Knob { return e.knob }

// AddOperator inserts an operator into the pipeline graph.
func (e *Engine) AddOperator(op Operator) *Node {
	n := newNode(len(e.nodes), op, e)
	e.nodes = append(e.nodes, n)
	return n
}

// Connect wires output port outPort of from to input port inPort of to.
func (e *Engine) Connect(from *Node, outPort int, to *Node, inPort int) {
	from.ensurePort(outPort)
	from.down[outPort] = append(from.down[outPort], downstreamRef{n: to, port: inPort})
	if inPort >= to.op.InPorts() {
		e.recordError(fmt.Errorf("engine: connecting to invalid port %d of %s", inPort, to.op.Name()))
	}
}

// Chain connects ops linearly on port 0 and returns the node list.
func (e *Engine) Chain(ops ...Operator) []*Node {
	nodes := make([]*Node, len(ops))
	for i, op := range ops {
		nodes[i] = e.AddOperator(op)
		if i > 0 {
			e.Connect(nodes[i-1], 0, nodes[i], 0)
		}
	}
	return nodes
}

// Run starts the sources and monitor and executes the pipeline for the
// given virtual duration, returning the run's statistics.
func (e *Engine) Run(duration float64) (Stats, error) {
	for _, s := range e.sources {
		s.start()
	}
	e.startMonitor()
	e.Sim.RunUntil(duration)
	e.stats.Errors = append([]error(nil), e.stats.Errors...)
	var err error
	if len(e.stats.Errors) > 0 {
		err = e.stats.Errors[0]
	}
	return e.stats, err
}

// Stats returns the statistics accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// spawn schedules one operator task. body runs the real computation at
// dispatch; emissions and onComplete fire at the task's virtual
// completion time, so continuations observe correct dependency timing.
func (e *Engine) spawn(n *Node, name string, tag Tag, d memsim.Demand, body func() []Emission, onComplete func()) {
	ep := n.spawnEpoch()
	ep.inflight++
	var emissions []Emission
	e.Sim.Submit(&memsim.Task{
		Name:     name,
		Priority: tag.Priority(),
		Demand:   e.transformDemand(d),
		Body: func() {
			defer func() {
				if r := recover(); r != nil {
					e.recordError(fmt.Errorf("engine: task %s panicked: %v", name, r))
				}
			}()
			if body != nil {
				emissions = body()
			}
		},
		OnDone: func(now float64) {
			for _, em := range emissions {
				e.deliver(n, em.Port, em.In)
			}
			// Continuations spawned here (e.g. the next merge level)
			// stay in the completing task's epoch so watermark
			// forwarding waits for the whole dependent tree.
			prev := n.spawnCtx
			n.spawnCtx = ep
			if onComplete != nil {
				onComplete()
			}
			n.spawnCtx = prev
			ep.inflight--
			n.advance(e)
		},
	})
}

// deliver routes data from node n's output port to its consumers. Data
// emitted on an unconnected port leaves the pipeline and is released.
func (e *Engine) deliver(n *Node, port int, in Input) {
	if port >= len(n.down) || len(n.down[port]) == 0 {
		in.Release()
		return
	}
	refs := n.down[port]
	for i, d := range refs {
		if i > 0 {
			// Fan-out duplicates ownership: extra consumers retain.
			e.retainInput(in)
		}
		d.n.op.OnInput(d.n.ctx, d.port, in)
	}
}

func (e *Engine) retainInput(in Input) {
	if in.B != nil {
		in.B.Retain()
	}
	// KPAs are single-owner; fan-out of KPAs is not supported and the
	// pipeline builder must materialize first.
}

// transformDemand applies specimen scaling and the placement-mode cost
// model (paper §7.3): in cache mode, every nominally-HBM phase splits
// into an HBM hit portion, a DRAM miss portion, and cache-fill traffic
// back into HBM.
func (e *Engine) transformDemand(d memsim.Demand) memsim.Demand {
	if w := e.cfg.RecordWeight; w > 1 {
		scaled := memsim.Demand{Phases: make([]memsim.Phase, len(d.Phases))}
		for i, p := range d.Phases {
			p.Bytes *= w
			p.CPUOps *= w
			scaled.Phases[i] = p
		}
		d = scaled
	}
	if e.cfg.Placement != PlacementCache {
		return d
	}
	hit := e.cfg.CacheHitFrac
	hasHBM := e.cfg.Machine.Tier(memsim.HBM).Capacity > 0
	out := memsim.Demand{}
	for _, p := range d.Phases {
		if p.CPUOps > 0 || p.Tier != memsim.HBM {
			out.Phases = append(out.Phases, p)
			continue
		}
		if !hasHBM {
			// Machines without HBM (X56) serve everything from DRAM.
			p.Tier = memsim.DRAM
			out.Phases = append(out.Phases, p)
			continue
		}
		hitBytes := int64(float64(p.Bytes) * hit)
		missBytes := p.Bytes - hitBytes
		if p.Pattern == memsim.Sequential {
			out = out.Seq(memsim.HBM, hitBytes).Seq(memsim.DRAM, missBytes).Seq(memsim.HBM, missBytes)
		} else {
			out = out.Rand(memsim.HBM, hitBytes, p.MLP).Rand(memsim.DRAM, missBytes, p.MLP).Seq(memsim.HBM, missBytes)
		}
	}
	return out
}

// elemBytes returns the width of one grouped element: a 16-byte
// key/pointer pair with KPA, a full record without (NoKPA ablation).
func (e *Engine) elemBytes(schema bundle.Schema) int64 {
	if e.cfg.UseKPA {
		return memsim.PairBytes
	}
	return schema.RecordBytes()
}

// NewBundleBuilder allocates a DRAM record bundle charged to the pool
// (at virtual size under specimen scaling).
func (e *Engine) NewBundleBuilder(schema bundle.Schema, capacity int) (*bundle.Builder, error) {
	alloc, err := e.Pool.Alloc(memsim.DRAM, int64(capacity)*schema.RecordBytes()*e.cfg.RecordWeight)
	if err != nil {
		return nil, fmt.Errorf("engine: bundle allocation: %w", err)
	}
	bd, err := e.Reg.NewBuilder(schema, capacity, memsim.DRAM)
	if err != nil {
		alloc.Free()
		return nil, err
	}
	// Attach after seal: the builder exposes the bundle only via Seal,
	// so wrap the allocation through a sealed-bundle hook.
	return bd, attachAlloc(bd, alloc)
}

// attachAlloc defers SetAlloc until Seal by wrapping the builder's
// bundle. bundle.Builder seals in place, so we set the allocation on
// the eventual bundle via a seal hook; since Builder has no hook, we
// instead set it immediately on the embedded bundle.
func attachAlloc(bd *bundle.Builder, alloc *mempool.Allocation) error {
	return bd.AttachAlloc(alloc)
}

// planPlacement draws the placement decision for a new KPA given the
// task's tag, returning both the planned tier (for demand modeling) and
// an allocator realizing it.
func (e *Engine) planPlacement(tag Tag) (memsim.Tier, kpa.Allocator) {
	switch e.cfg.Placement {
	case PlacementDRAM:
		return memsim.DRAM, &plannedAllocator{e: e, tag: tag, tier: memsim.DRAM}
	case PlacementCache:
		return memsim.HBM, &plannedAllocator{e: e, tag: tag, tier: memsim.HBM}
	}
	tier := memsim.DRAM
	if tag == Urgent || e.knob.WantHBM(tag) {
		tier = memsim.HBM
	}
	return tier, &plannedAllocator{e: e, tag: tag, tier: tier}
}

// plannedAllocator realizes a placement decision made at task-creation
// time, spilling to DRAM when the planned tier is exhausted.
type plannedAllocator struct {
	e    *Engine
	tag  Tag
	tier memsim.Tier
}

// AllocKPA implements kpa.Allocator.
func (pa *plannedAllocator) AllocKPA(nBytes int64) (memsim.Tier, *mempool.Allocation, error) {
	e := pa.e
	nBytes *= e.cfg.RecordWeight
	if e.cfg.Placement == PlacementCache {
		a, err := e.Pool.Alloc(memsim.DRAM, nBytes)
		return memsim.HBM, a, err
	}
	if pa.tier == memsim.HBM {
		if pa.tag == Urgent && e.cfg.Placement == PlacementManaged {
			a, err := e.Pool.AllocUrgent(nBytes)
			if err != nil {
				return 0, nil, err
			}
			return a.Tier(), a, nil
		}
		if a, err := e.Pool.Alloc(memsim.HBM, nBytes); err == nil {
			return memsim.HBM, a, nil
		}
		// Planned HBM but full: spill (paper §5).
	}
	a, err := e.Pool.Alloc(memsim.DRAM, nBytes)
	return memsim.DRAM, a, err
}

// placementAllocator implements kpa.Allocator with the engine's policy.
type placementAllocator struct {
	e   *Engine
	tag Tag
}

// AllocKPA places a new KPA per the engine's placement mode, tag and
// knob. With managed placement, HBM exhaustion spills to DRAM (paper:
// "When HBM is full, all future KPAs regardless of their performance
// impact tag are forced to spill to DRAM").
func (pa *placementAllocator) AllocKPA(nBytes int64) (memsim.Tier, *mempool.Allocation, error) {
	e := pa.e
	nBytes *= e.cfg.RecordWeight
	switch e.cfg.Placement {
	case PlacementDRAM:
		a, err := e.Pool.Alloc(memsim.DRAM, nBytes)
		return memsim.DRAM, a, err
	case PlacementCache:
		// Address space is DRAM; tier reported as HBM so demand phases
		// go through the cache-mode transform.
		a, err := e.Pool.Alloc(memsim.DRAM, nBytes)
		return memsim.HBM, a, err
	}
	if pa.tag == Urgent {
		a, err := e.Pool.AllocUrgent(nBytes)
		if err != nil {
			return 0, nil, err
		}
		return a.Tier(), a, nil
	}
	if e.knob.WantHBM(pa.tag) {
		if a, err := e.Pool.Alloc(memsim.HBM, nBytes); err == nil {
			return memsim.HBM, a, nil
		}
		// HBM full: spill.
	}
	a, err := e.Pool.Alloc(memsim.DRAM, nBytes)
	return memsim.DRAM, a, err
}

// startMonitor begins the 10 ms resource sampling loop: it measures HBM
// capacity and DRAM bandwidth, refreshes the knob, applies ingestion
// back-pressure, and optionally records the Fig 10 time series.
func (e *Engine) startMonitor() {
	interval := e.cfg.MonitorInterval
	dramBWCap := e.cfg.Machine.Tier(memsim.DRAM).Bandwidth
	var tick func(now float64)
	tick = func(now float64) {
		bytes := e.Sim.IntervalBytes()
		dramBW := bytes[memsim.DRAM] / interval
		hbmBW := bytes[memsim.HBM] / interval
		hbmUtil := e.Pool.Utilization(memsim.HBM)
		headroom := e.lastDelay < (1-delayHeadroomFrac)*e.cfg.TargetDelaySec
		if e.cfg.Placement == PlacementManaged {
			e.knob.Update(hbmUtil, dramBW/dramBWCap, headroom)
		}
		// Back-pressure: both resources exhausted -> stop pulling data.
		exhausted := hbmUtil > 0.95 && dramBW/dramBWCap > 0.90
		if exhausted && !e.paused {
			e.paused = true
		} else if !exhausted && e.paused {
			e.paused = false
			for _, s := range e.sources {
				s.kick(now)
			}
		}
		if e.cfg.RecordSeries {
			e.stats.Series = append(e.stats.Series, Sample{
				T:        now,
				HBMUtil:  hbmUtil,
				DRAMBW:   dramBW,
				HBMBW:    hbmBW,
				KLow:     e.knob.KLow,
				KHigh:    e.knob.KHigh,
				Paused:   e.paused,
				HBMBytes: e.Pool.Used(memsim.HBM),
			})
		}
		e.Sim.After(interval, tick)
	}
	e.Sim.After(interval, tick)
}

func (e *Engine) recordError(err error) {
	if err != nil {
		e.stats.Errors = append(e.stats.Errors, err)
	}
}

// noteDelay records an observed output delay (called by EgressSink).
func (e *Engine) noteDelay(d float64) {
	e.stats.Delays = append(e.stats.Delays, d)
	e.stats.WindowsClosed++
	e.lastDelay = d
}

// SinkWatermark records the output delay for watermark w as observed
// by a sink at virtual time now. Custom sinks call this from their
// OnWatermark after deduplicating repeats.
func (e *Engine) SinkWatermark(w wm.Time, now float64) {
	if t, ok := e.wmEmitTime[w]; ok {
		e.noteDelay(now - t)
	}
}

// CountEmitted adds n records to the emitted-result counter (custom
// sinks call this).
func (e *Engine) CountEmitted(n int64) { e.stats.EmittedRecords += n }
