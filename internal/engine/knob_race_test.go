package engine

import (
	"sync"
	"testing"
)

// TestKnobConcurrentWantHBM hammers the knob from many goroutines the
// way the native runtime's workers do — placement draws racing monitor
// updates and snapshot reads. Run under -race this catches the shared
// *rand.Rand (and knob vector) being used without synchronization.
func TestKnobConcurrentWantHBM(t *testing.T) {
	k := NewKnob(42)
	const (
		goroutines = 16
		draws      = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tags := [3]Tag{Low, High, Urgent}
			for i := 0; i < draws; i++ {
				k.WantHBM(tags[(g+i)%3])
			}
		}(g)
	}
	// Monitor goroutine: knob updates racing the placement draws.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < draws; i++ {
			if i%2 == 0 {
				k.Update(0.9, 0.2, true) // zone 2: push toward DRAM
			} else {
				k.Update(0.3, 0.9, true) // zone 3: pull back to HBM
			}
		}
	}()
	// Reader goroutine: stats snapshots racing updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < draws; i++ {
			lo, hi := k.Snapshot()
			if lo < 0 || lo > 1 || hi < 0 || hi > 1 {
				panic("knob probabilities out of range")
			}
		}
	}()
	wg.Wait()
	lo, hi := k.Snapshot()
	if lo < 0 || lo > 1 || hi < 0 || hi > 1 {
		t.Fatalf("knob ended out of range: {%g, %g}", lo, hi)
	}
}

// TestKnobSnapshotMatchesFields checks Snapshot against direct field
// reads in the single-threaded case.
func TestKnobSnapshotMatchesFields(t *testing.T) {
	k := NewKnob(1)
	for i := 0; i < 7; i++ {
		k.Update(0.9, 0.1, true)
	}
	lo, hi := k.Snapshot()
	if lo != k.KLow || hi != k.KHigh {
		t.Fatalf("snapshot {%g,%g} != fields {%g,%g}", lo, hi, k.KLow, k.KHigh)
	}
}
