package engine

import (
	"testing"

	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// slowOp keeps at least one task in flight almost continuously,
// regression-testing the epoch-based watermark barriers (a naive
// "wait for idle" design starves watermarks under continuous load).
type slowOp struct{}

func (s *slowOp) Name() string { return "slow" }
func (s *slowOp) InPorts() int { return 1 }
func (s *slowOp) OnInput(ctx *Ctx, port int, in Input) {
	// Each bundle costs ~2x its inter-arrival gap, so with multiple
	// cores the node always has work in flight.
	d := memsim.Demand{}.CPU(int64(in.Rows()) * 2600)
	ctx.Spawn("slow", in.MaxTs(), d, func() []Emission {
		return []Emission{{Port: 0, In: in}}
	})
}
func (s *slowOp) OnWatermark(*Ctx, int, wm.Time) {}

func TestWatermarksTraverseContinuousLoad(t *testing.T) {
	e, _ := New(defaultConfig())
	sink := NewEgressSink("out")
	nodes := e.Chain(&slowOp{}, sink)
	e.AddSource(newTestGen(), defaultSource(), nodes[0], 0)
	stats, err := e.Run(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsClosed < 5 {
		t.Fatalf("only %d windows closed under continuous load (watermark starvation)", stats.WindowsClosed)
	}
	for _, d := range stats.Delays {
		if d < 0 {
			t.Fatal("negative delay")
		}
	}
}

func TestSpecimenScalingConsistency(t *testing.T) {
	// A run at weight W must report ~W times the ingested records and
	// proportionally scaled demands, with identical pipeline results
	// per real record.
	run := func(weight int64) (Stats, *Engine) {
		cfg := defaultConfig()
		cfg.RecordWeight = weight
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sink := NewEgressSink("out")
		nodes := e.Chain(&passthroughOp{name: "p"}, sink)
		src := defaultSource()
		e.AddSource(newTestGen(), src, nodes[0], 0)
		stats, err := e.Run(0.05)
		if err != nil {
			t.Fatal(err)
		}
		return stats, e
	}
	s1, e1 := run(1)
	s10, e10 := run(10)
	// Offered virtual rate is identical; weight shrinks real records.
	ratio := float64(s10.IngestedRecords) / float64(s1.IngestedRecords)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("virtual ingest should match across weights: %d vs %d", s10.IngestedRecords, s1.IngestedRecords)
	}
	// Memory traffic in virtual bytes should also be comparable.
	b1 := e1.Sim.BytesConsumed(memsim.DRAM)
	b10 := e10.Sim.BytesConsumed(memsim.DRAM)
	if b1 == 0 || b10 == 0 {
		t.Fatal("no traffic recorded")
	}
	br := float64(b10) / float64(b1)
	if br < 0.7 || br > 1.3 {
		t.Fatalf("virtual traffic should match across weights: %d vs %d", b10, b1)
	}
}

func TestBackpressurePausesSource(t *testing.T) {
	// Tiny HBM and DRAM force exhaustion; the engine must pause
	// ingestion rather than fail, and resume when pressure clears.
	cfg := defaultConfig()
	cfg.Machine.Tiers[memsim.HBM].Capacity = 1 << 20
	cfg.Machine.Tiers[memsim.DRAM].Capacity = 8 << 20
	cfg.ReservedHBM = 1 << 18
	e, _ := New(cfg)
	sink := NewEgressSink("out")
	nodes := e.Chain(&passthroughOp{name: "p"}, sink)
	src := defaultSource()
	src.Rate = 5e6
	e.AddSource(newTestGen(), src, nodes[0], 0)
	stats, err := e.Run(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The run must survive and make progress despite tiny memory.
	if stats.IngestedRecords == 0 {
		t.Fatal("no progress under memory pressure")
	}
}

func TestSourceStopAndRateChange(t *testing.T) {
	e, _ := New(defaultConfig())
	sink := NewEgressSink("out")
	nodes := e.Chain(&passthroughOp{name: "p"}, sink)
	drv, err := e.AddSource(newTestGen(), defaultSource(), nodes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Sim.After(0.01, func(now float64) { drv.SetRate(2e6) })
	e.Sim.After(0.02, func(now float64) { drv.Stop() })
	stats, err := e.Run(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if drv.Emitted() == 0 {
		t.Fatal("source emitted nothing")
	}
	// Stopped at 20 ms: roughly 1e6*0.01 + 2e6*0.01 = 30k records.
	if stats.IngestedRecords > 60_000 {
		t.Fatalf("source did not stop: %d records", stats.IngestedRecords)
	}
}

func TestWatermarkLag(t *testing.T) {
	// A lagging watermark delays window closure, so fewer windows close
	// within the same horizon.
	run := func(lag int) int {
		e, _ := New(defaultConfig())
		sink := NewEgressSink("out")
		nodes := e.Chain(&passthroughOp{name: "p"}, sink)
		src := defaultSource()
		src.WatermarkLagBundles = lag
		e.AddSource(newTestGen(), src, nodes[0], 0)
		stats, err := e.Run(0.06)
		if err != nil {
			t.Fatal(err)
		}
		return stats.WindowsClosed
	}
	noLag := run(0)
	lagged := run(30) // 3 windows of lag
	if lagged >= noLag {
		t.Fatalf("lagged watermark must close fewer windows: %d vs %d", lagged, noLag)
	}
}

func TestEgressSinkDedupesWatermarks(t *testing.T) {
	e, _ := New(defaultConfig())
	sink := NewEgressSink("out")
	n := e.AddOperator(sink)
	ctx := n.ctx
	e.wmEmitTime[100] = 0
	sink.OnWatermark(ctx, 0, 100)
	sink.OnWatermark(ctx, 0, 100) // repeat must not double-count
	sink.OnWatermark(ctx, 0, 50)  // regression must be ignored
	if got := len(e.Stats().Delays); got != 1 {
		t.Fatalf("delays recorded = %d, want 1", got)
	}
}

func TestUrgentPoolServesUrgentUnderPressure(t *testing.T) {
	cfg := defaultConfig()
	cfg.Machine.Tiers[memsim.HBM].Capacity = 1 << 20
	cfg.ReservedHBM = 512 << 10
	e, _ := New(cfg)
	// Fill the general HBM region.
	if _, err := e.Pool.Alloc(memsim.HBM, 512<<10); err != nil {
		t.Fatal(err)
	}
	tier, al := e.planPlacement(Urgent)
	if tier != memsim.HBM {
		t.Fatal("urgent must plan HBM")
	}
	gotTier, a, err := al.AllocKPA(4 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if gotTier != memsim.HBM {
		t.Fatalf("urgent allocation landed on %v", gotTier)
	}
	a.Free()
}

func TestPlanPlacementModes(t *testing.T) {
	mk := func(p Placement) *Engine {
		cfg := defaultConfig()
		cfg.Placement = p
		e, _ := New(cfg)
		return e
	}
	if tier, _ := mk(PlacementDRAM).planPlacement(Urgent); tier != memsim.DRAM {
		t.Error("DRAM mode must plan DRAM even for urgent")
	}
	if tier, _ := mk(PlacementCache).planPlacement(Low); tier != memsim.HBM {
		t.Error("cache mode must plan nominal HBM")
	}
	e := mk(PlacementManaged)
	e.knob.KLow, e.knob.KHigh = 0, 0
	if tier, _ := e.planPlacement(Low); tier != memsim.DRAM {
		t.Error("zero knob must plan DRAM for Low")
	}
	if tier, _ := e.planPlacement(Urgent); tier != memsim.HBM {
		t.Error("urgent must plan HBM")
	}
}
