package engine

import (
	"math"
	"testing"

	"streambox/internal/bundle"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/wm"
)

// testGen emits 3-column records (key, value, ts) with sequential keys.
type testGen struct {
	schema bundle.Schema
	next   uint64
}

func newTestGen() *testGen {
	return &testGen{schema: bundle.Schema{NumCols: 3, TsCol: 2}}
}

func (g *testGen) Schema() bundle.Schema { return g.schema }

func (g *testGen) Fill(bd *bundle.Builder, n int, tsLo, tsHi wm.Time) {
	span := tsHi - tsLo
	for i := 0; i < n; i++ {
		ts := tsLo + wm.Time(i)*span/wm.Time(n)
		bd.Append(g.next%64, g.next%100, ts)
		g.next++
	}
}

// passthroughOp forwards inputs through a task with a small demand.
type passthroughOp struct{ name string }

func (p *passthroughOp) Name() string { return p.name }
func (p *passthroughOp) InPorts() int { return 1 }
func (p *passthroughOp) OnInput(ctx *Ctx, port int, in Input) {
	d := memsim.Demand{}.CPU(int64(in.Rows()))
	ctx.Spawn(p.name, in.MaxTs(), d, func() []Emission {
		return []Emission{{Port: 0, In: in}}
	})
}
func (p *passthroughOp) OnWatermark(*Ctx, int, wm.Time) {}

func defaultConfig() Config {
	return Config{
		Machine: memsim.KNLConfig(),
		Win:     wm.Fixed(1_000_000), // 1e6 event-time units per window
		UseKPA:  true,
	}
}

func defaultSource() SourceConfig {
	return SourceConfig{
		Name:           "test",
		Rate:           1e6,
		BundleRecords:  1000,
		WindowRecords:  10_000, // 10 bundles per window
		WatermarkEvery: 10,
	}
}

func TestEngineEndToEnd(t *testing.T) {
	e, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewEgressSink("out")
	nodes := e.Chain(&passthroughOp{name: "pass"}, sink)
	if _, err := e.AddSource(newTestGen(), defaultSource(), nodes[0], 0); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run(0.1) // 100 ms virtual: 100k records offered
	if err != nil {
		t.Fatal(err)
	}
	if stats.IngestedRecords == 0 {
		t.Fatal("nothing ingested")
	}
	if sink.Records == 0 {
		t.Fatal("nothing reached the sink")
	}
	if sink.Records > stats.IngestedRecords {
		t.Fatalf("sink %d > ingested %d", sink.Records, stats.IngestedRecords)
	}
	// ~100 ms at 1M rec/s = ~100k records ingested (modulo task timing).
	if stats.IngestedRecords < 50_000 {
		t.Fatalf("ingested only %d records", stats.IngestedRecords)
	}
	if len(stats.Delays) == 0 {
		t.Fatal("no output delays recorded (watermarks did not traverse)")
	}
	for _, d := range stats.Delays {
		if d < 0 {
			t.Fatalf("negative delay %g", d)
		}
	}
}

func TestEngineWatermarkOrdering(t *testing.T) {
	// The sink's watermark must never overtake the data: every record
	// delivered after watermark W must have ts >= ... — here we check
	// monotonicity and that delays are recorded once per watermark.
	e, _ := New(defaultConfig())
	sink := NewEgressSink("out")
	nodes := e.Chain(&passthroughOp{name: "p1"}, &passthroughOp{name: "p2"}, sink)
	e.AddSource(newTestGen(), defaultSource(), nodes[0], 0)
	stats, err := e.Run(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WindowsClosed != len(stats.Delays) {
		t.Fatalf("windows %d != delays %d", stats.WindowsClosed, len(stats.Delays))
	}
}

func TestEngineInvalidConfigs(t *testing.T) {
	if _, err := New(Config{Machine: memsim.KNLConfig()}); err == nil {
		t.Fatal("missing windowing must fail")
	}
	bad := defaultConfig()
	bad.Machine.Cores = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid machine must fail")
	}
	e, _ := New(defaultConfig())
	n := e.AddOperator(&passthroughOp{name: "p"})
	if _, err := e.AddSource(newTestGen(), SourceConfig{}, n, 0); err == nil {
		t.Fatal("invalid source config must fail")
	}
}

func TestEngineConnectBadPort(t *testing.T) {
	e, _ := New(defaultConfig())
	a := e.AddOperator(&passthroughOp{name: "a"})
	b := e.AddOperator(&passthroughOp{name: "b"})
	e.Connect(a, 0, b, 5) // passthrough has 1 input port
	if len(e.Stats().Errors) == 0 {
		t.Fatal("bad port must record an error")
	}
}

func TestTagFor(t *testing.T) {
	w := wm.Fixed(100)
	target := wm.Time(500)
	cases := []struct {
		ts   wm.Time
		want Tag
	}{
		{450, Urgent}, // window [400,500): closed at target
		{550, Urgent}, // window [500,600): the very next to close
		{650, High},   // one window out
		{750, High},   // two windows out
		{850, Low},
		{10_000, Low},
	}
	for _, c := range cases {
		if got := tagFor(w, target, c.ts); got != c.want {
			t.Errorf("tagFor(ts=%d) = %v, want %v", c.ts, got, c.want)
		}
	}
	if tagFor(wm.Windowing{}, 0, 0) != Low {
		t.Error("invalid windowing must default to Low")
	}
}

func TestTagString(t *testing.T) {
	if Urgent.String() != "Urgent" || High.String() != "High" || Low.String() != "Low" {
		t.Error("tag names wrong")
	}
	if Urgent.Priority() <= High.Priority() || High.Priority() <= Low.Priority() {
		t.Error("priorities must order Urgent > High > Low")
	}
}

func TestKnobDecreasesUnderHBMPressure(t *testing.T) {
	k := NewKnob(1)
	if k.KLow != 1 || k.KHigh != 1 {
		t.Fatal("initial knob must be {1,1}")
	}
	// HBM capacity pressed, DRAM bandwidth fine: k_low falls first.
	for i := 0; i < 10; i++ {
		k.Update(0.95, 0.2, true)
	}
	if math.Abs(k.KLow-0.5) > 1e-9 {
		t.Fatalf("k_low = %g, want 0.5 after 10 steps", k.KLow)
	}
	if k.KHigh != 1 {
		t.Fatal("k_high must not move while k_low > 0")
	}
	for i := 0; i < 25; i++ {
		k.Update(0.95, 0.2, true)
	}
	if k.KLow != 0 {
		t.Fatalf("k_low = %g, want 0", k.KLow)
	}
	if k.KHigh >= 1 {
		t.Fatal("k_high must fall once k_low exhausted (with delay headroom)")
	}
}

func TestKnobRespectsDelayHeadroom(t *testing.T) {
	k := NewKnob(1)
	for i := 0; i < 30; i++ {
		k.Update(0.95, 0.2, false) // no headroom
	}
	if k.KLow != 0 {
		t.Fatalf("k_low = %g", k.KLow)
	}
	if k.KHigh != 1 {
		t.Fatal("k_high must hold without delay headroom")
	}
}

func TestKnobRecoversWhenDRAMPressed(t *testing.T) {
	k := NewKnob(1)
	for i := 0; i < 40; i++ {
		k.Update(0.95, 0.2, true)
	}
	lowBefore := k.KLow
	highBefore := k.KHigh
	// Now DRAM bandwidth is the bottleneck and HBM has room.
	for i := 0; i < 40; i++ {
		k.Update(0.3, 0.9, true)
	}
	if k.KHigh <= highBefore && k.KLow <= lowBefore {
		t.Fatal("knob must shift back toward HBM in zone 3")
	}
	if k.KHigh != 1 || k.KLow != 1 {
		t.Fatalf("knob must fully recover, got {%g,%g}", k.KLow, k.KHigh)
	}
}

func TestKnobBalancedZoneStable(t *testing.T) {
	k := NewKnob(1)
	k.KLow = 0.5
	for i := 0; i < 10; i++ {
		k.Update(0.7, 0.5, true) // diagonal zone: no change
	}
	if k.KLow != 0.5 {
		t.Fatalf("k_low moved in balanced zone: %g", k.KLow)
	}
}

func TestKnobWantHBMTags(t *testing.T) {
	k := NewKnob(7)
	// Urgent always wants HBM regardless of knob state.
	k.KLow, k.KHigh = 0, 0
	for i := 0; i < 10; i++ {
		if !k.WantHBM(Urgent) {
			t.Fatal("urgent must always want HBM")
		}
		if k.WantHBM(High) || k.WantHBM(Low) {
			t.Fatal("zero knob must never want HBM for High/Low")
		}
	}
	k.KLow, k.KHigh = 1, 1
	for i := 0; i < 10; i++ {
		if !k.WantHBM(High) || !k.WantHBM(Low) {
			t.Fatal("unit knob must always want HBM")
		}
	}
}

func TestPlacementAllocatorModes(t *testing.T) {
	mk := func(p Placement) *Engine {
		cfg := defaultConfig()
		cfg.Placement = p
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// DRAM-only.
	e := mk(PlacementDRAM)
	tier, a, err := (&placementAllocator{e: e, tag: Urgent}).AllocKPA(4096)
	if err != nil || tier != memsim.DRAM {
		t.Fatalf("DRAM mode: tier=%v err=%v", tier, err)
	}
	a.Free()
	// Cache mode reports HBM but charges DRAM.
	e = mk(PlacementCache)
	tier, a, err = (&placementAllocator{e: e, tag: Low}).AllocKPA(4096)
	if err != nil || tier != memsim.HBM {
		t.Fatalf("cache mode: tier=%v err=%v", tier, err)
	}
	if e.Pool.Used(memsim.DRAM) == 0 {
		t.Fatal("cache mode must charge DRAM capacity")
	}
	a.Free()
	// Managed: urgent uses HBM (reserved pool).
	e = mk(PlacementManaged)
	tier, a, err = (&placementAllocator{e: e, tag: Urgent}).AllocKPA(4096)
	if err != nil || tier != memsim.HBM {
		t.Fatalf("managed urgent: tier=%v err=%v", tier, err)
	}
	a.Free()
}

func TestPlacementSpillsWhenHBMFull(t *testing.T) {
	cfg := defaultConfig()
	cfg.Machine.Tiers[memsim.HBM].Capacity = 8 << 10
	cfg.ReservedHBM = 4 << 10
	e, _ := New(cfg)
	al := &placementAllocator{e: e, tag: High}
	// First alloc takes the general HBM region.
	tier, _, err := al.AllocKPA(4096)
	if err != nil || tier != memsim.HBM {
		t.Fatalf("first: tier=%v err=%v", tier, err)
	}
	// Second spills to DRAM (knob wants HBM but it is full).
	tier, _, err = al.AllocKPA(4096)
	if err != nil {
		t.Fatal(err)
	}
	if tier != memsim.DRAM {
		t.Fatalf("expected spill to DRAM, got %v", tier)
	}
}

func TestCacheModeDemandTransform(t *testing.T) {
	cfg := defaultConfig()
	cfg.Placement = PlacementCache
	cfg.CacheHitFrac = 0.5
	e, _ := New(cfg)
	d := memsim.Demand{}.Seq(memsim.HBM, 1000).CPU(10).Rand(memsim.HBM, 100, 2)
	out := e.transformDemand(d)
	bytes := out.TotalBytes()
	// Seq: 500 HBM + 500 DRAM + 500 fill; Rand: 50 + 50 + 50.
	if bytes[memsim.DRAM] != 550 {
		t.Errorf("DRAM bytes = %d, want 550", bytes[memsim.DRAM])
	}
	if bytes[memsim.HBM] != 1100 {
		t.Errorf("HBM bytes = %d, want 1100", bytes[memsim.HBM])
	}
	if out.TotalCPUOps() != 10 {
		t.Error("CPU phases must pass through")
	}
	// Managed mode is identity.
	e2, _ := New(defaultConfig())
	out2 := e2.transformDemand(d)
	if len(out2.Phases) != len(d.Phases) {
		t.Error("managed transform must be identity")
	}
}

func TestGroupDemandScaling(t *testing.T) {
	schema := bundle.Schema{NumCols: 7, TsCol: 0} // 56-byte records
	d := memsim.Demand{}.Seq(memsim.HBM, 1600).CPU(5)
	// KPA mode: unchanged.
	e, _ := New(defaultConfig())
	ctx := &Ctx{e: e}
	if got := ctx.GroupDemand(d, schema); got.TotalBytes()[memsim.HBM] != 1600 {
		t.Error("KPA mode must not scale")
	}
	// NoKPA: scaled by 56/16 = 3.5.
	cfg := defaultConfig()
	cfg.UseKPA = false
	e2, _ := New(cfg)
	ctx2 := &Ctx{e: e2}
	got := ctx2.GroupDemand(d, schema)
	if got.TotalBytes()[memsim.HBM] != 5600 {
		t.Errorf("NoKPA bytes = %d, want 5600", got.TotalBytes()[memsim.HBM])
	}
	if got.TotalCPUOps() != 5 {
		t.Error("CPU ops must not scale")
	}
}

func TestEngineMonitorSeries(t *testing.T) {
	cfg := defaultConfig()
	cfg.RecordSeries = true
	e, _ := New(cfg)
	sink := NewEgressSink("out")
	nodes := e.Chain(&passthroughOp{name: "p"}, sink)
	e.AddSource(newTestGen(), defaultSource(), nodes[0], 0)
	stats, err := e.Run(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Series) < 5 {
		t.Fatalf("series samples = %d, want >= 5 (10 ms cadence over 100 ms)", len(stats.Series))
	}
	for i := 1; i < len(stats.Series); i++ {
		if stats.Series[i].T <= stats.Series[i-1].T {
			t.Fatal("series must be time-ordered")
		}
	}
}

func TestEngineTaskPanicIsRecorded(t *testing.T) {
	e, _ := New(defaultConfig())
	n := e.AddOperator(&passthroughOp{name: "p"})
	e.spawn(n, "boom", Low, memsim.Demand{}, func() []Emission {
		panic("kaboom")
	}, nil)
	e.Sim.Run()
	if len(e.Stats().Errors) == 0 {
		t.Fatal("panic must be recorded as an error")
	}
}

// kpaForwardOp extracts a KPA from each bundle and forwards it, testing
// allocator integration and Input.Release plumbing.
type kpaForwardOp struct{}

func (k *kpaForwardOp) Name() string { return "kpafwd" }
func (k *kpaForwardOp) InPorts() int { return 1 }
func (k *kpaForwardOp) OnInput(ctx *Ctx, port int, in Input) {
	b := in.B
	ts := in.MaxTs()
	ctx.Spawn("extract", ts, memsim.Demand{}.Seq(memsim.DRAM, b.Bytes()), func() []Emission {
		kp, err := kpa.Extract(b, 0, ctx.Alloc(ts))
		if err != nil {
			ctx.Errorf("extract: %v", err)
			in.Release()
			return nil
		}
		in.Release() // KPA holds its own reference now
		return []Emission{{Port: 0, In: Input{K: kp}}}
	})
}
func (k *kpaForwardOp) OnWatermark(*Ctx, int, wm.Time) {}

func TestEngineKPAFlowAndReclaim(t *testing.T) {
	e, _ := New(defaultConfig())
	sink := NewEgressSink("out")
	nodes := e.Chain(&kpaForwardOp{}, sink)
	e.AddSource(newTestGen(), defaultSource(), nodes[0], 0)
	stats, err := e.Run(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Records == 0 {
		t.Fatal("no KPAs reached sink")
	}
	_ = stats
	// After the run, every delivered KPA was released by the sink, so
	// all bundles must be reclaimed and pool usage near zero.
	if live := e.Reg.Live(); live > 2 { // at most in-flight tail bundles
		t.Fatalf("%d bundles leaked", live)
	}
}
