package engine

import (
	"streambox/internal/wm"
)

// EgressSink terminates a pipeline: it counts emitted result records
// and measures output delay — the virtual time between a watermark's
// emission at the source and its arrival here, after all window-closing
// work upstream has drained (paper §6: "target egress delay").
type EgressSink struct {
	name    string
	Records int64
	Bundles int64
	// LastWatermark is the newest watermark observed.
	LastWatermark wm.Time
}

// NewEgressSink creates a sink.
func NewEgressSink(name string) *EgressSink { return &EgressSink{name: name} }

// Name implements Operator.
func (s *EgressSink) Name() string { return "egress:" + s.name }

// InPorts implements Operator.
func (s *EgressSink) InPorts() int { return 1 }

// OnInput counts and releases results.
func (s *EgressSink) OnInput(ctx *Ctx, port int, in Input) {
	s.Records += int64(in.Rows())
	s.Bundles++
	ctx.e.stats.EmittedRecords += int64(in.Rows())
	in.Release()
}

// OnWatermark records the output delay for the windows this watermark
// closes.
func (s *EgressSink) OnWatermark(ctx *Ctx, port int, w wm.Time) {
	if w <= s.LastWatermark {
		return
	}
	s.LastWatermark = w
	ctx.e.SinkWatermark(w, ctx.Now())
}
