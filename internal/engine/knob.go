package engine

import (
	"math/rand"
	"sync"
)

// Knob is the demand-balance knob (paper §5): a vector {k_low, k_high}
// of probabilities for allocating new KPAs on HBM for Low- and High-
// tagged tasks. Urgent tasks always allocate from the reserved HBM
// pool. The knob moves in increments of Delta as the monitor observes
// HBM capacity and DRAM bandwidth pressure.
//
// The knob is shared between the monitor (Update) and every task that
// plans a KPA placement (WantHBM). Under the simulator those calls all
// happen on the single event-loop goroutine, but the native runtime
// calls WantHBM from worker goroutines, so WantHBM and Update
// synchronize on a mutex. KLow/KHigh stay plain fields — tests and
// stats readers access them only while no concurrent Update runs; racy
// readers use Snapshot.
type Knob struct {
	KLow  float64
	KHigh float64

	mu  sync.Mutex
	rng *rand.Rand
}

const (
	// knobDelta is the per-sample adjustment step (paper: 0.05).
	knobDelta = 0.05
	// hbmHighWater marks high demand for HBM capacity.
	hbmHighWater = 0.80
	// hbmLowWater marks spare HBM capacity.
	hbmLowWater = 0.55
	// dramBWHighWater marks high demand for DRAM bandwidth.
	dramBWHighWater = 0.75
	// delayHeadroomFrac: k_high only drops while output delay retains
	// this much headroom below the target (paper: 10%).
	delayHeadroomFrac = 0.10
)

// NewKnob returns the knob at its initial state k_low = k_high = 1.
func NewKnob(seed int64) *Knob {
	return &Knob{KLow: 1, KHigh: 1, rng: rand.New(rand.NewSource(seed))}
}

// Snapshot returns the current (k_low, k_high) pair atomically with
// respect to Update.
func (k *Knob) Snapshot() (kLow, kHigh float64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.KLow, k.KHigh
}

// Set pins the knob to an explicit (k_low, k_high) pair, clamped to
// [0,1]. The native runtime's adaptive placement controller drives the
// knob through Set from its own control loop; fixed-knob ablations pin
// it once at start and never call Update.
func (k *Knob) Set(kLow, kHigh float64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.KLow = clamp01(kLow)
	k.KHigh = clamp01(kHigh)
}

// WantHBM draws the placement decision for a new KPA with the given tag.
// It is safe to call from concurrent worker goroutines.
func (k *Knob) WantHBM(tag Tag) bool {
	if tag == Urgent {
		return true
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if tag == High {
		return k.rng.Float64() < k.KHigh
	}
	return k.rng.Float64() < k.KLow
}

// Update moves the knob one step given the monitored HBM capacity
// utilization, DRAM bandwidth utilization (both in [0,1]) and whether
// the pipeline's output delay still has headroom below its target.
//
// The rule implements Figure 6: when HBM capacity demand outweighs DRAM
// bandwidth demand (zone 2), shift new KPAs toward DRAM; in the opposite
// imbalance (zone 3), shift them back toward HBM. k_low moves first;
// k_high follows only at k_low's extremes, and only downward while the
// output delay has headroom.
func (k *Knob) Update(hbmCap, dramBW float64, delayHeadroom bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch {
	case hbmCap >= hbmHighWater && hbmCap >= dramBW:
		// Zone 2: HBM capacity is the pressed resource.
		if k.KLow > 0 {
			k.KLow = clamp01(k.KLow - knobDelta)
		} else if delayHeadroom {
			k.KHigh = clamp01(k.KHigh - knobDelta)
		}
	case hbmCap <= hbmLowWater && dramBW >= dramBWHighWater:
		// Zone 3: DRAM bandwidth is the pressed resource; spare HBM.
		if k.KHigh < 1 {
			k.KHigh = clamp01(k.KHigh + knobDelta)
		} else {
			k.KLow = clamp01(k.KLow + knobDelta)
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
