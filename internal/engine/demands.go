package engine

import (
	"streambox/internal/bundle"
	"streambox/internal/memsim"
)

// GroupDemand adjusts a grouping primitive's demand for the engine's
// data representation: with KPA extraction the demand stands as built
// (16-byte pairs); in the NoKPA ablation grouping moves full records,
// so every memory phase scales by the record width (paper §7.3:
// "the performance bottleneck is excessive data movement due to
// migration and grouping full records").
func (c *Ctx) GroupDemand(d memsim.Demand, schema bundle.Schema) memsim.Demand {
	if c.e.cfg.UseKPA {
		return d
	}
	scale := float64(schema.RecordBytes()) / float64(memsim.PairBytes)
	if scale < 1 {
		scale = 1
	}
	out := memsim.Demand{}
	out.Phases = make([]memsim.Phase, len(d.Phases))
	for i, p := range d.Phases {
		if p.Bytes > 0 {
			p.Bytes = int64(float64(p.Bytes) * scale)
			// Grouping full multi-column records also loses the dense
			// sequential access of 16-byte pairs: the moved elements
			// span multiple cachelines and the hardware migrates full
			// records between tiers (§7.3: "excessive data movement due
			// to migration and grouping full records").
			if p.Pattern == memsim.Sequential {
				p.Pattern = memsim.Random
				p.MLP = 4
			}
		}
		out.Phases[i] = p
	}
	return out
}
