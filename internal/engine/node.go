package engine

import (
	"streambox/internal/wm"
)

// downstreamRef is one edge of the pipeline graph.
type downstreamRef struct {
	n    *Node
	port int
}

// epoch is the unit of watermark ordering on a node: all tasks spawned
// between two watermark arrivals belong to one epoch. A watermark is
// processed once every earlier task drained, and forwarded downstream
// once its own window-closing tasks drained too. This lets watermarks
// traverse a continuously loaded pipeline (out-of-order bundle
// processing with ordered window closure, as in StreamBox).
type epoch struct {
	inflight  int
	w         wm.Time
	sealed    bool
	processed bool
	forwarded bool
}

// node wraps an operator with the engine's plumbing: downstream edges,
// per-port watermark merging, and epoch tracking.
type Node struct {
	id   int
	op   Operator
	ctx  *Ctx
	down [][]downstreamRef // per output port

	tracker  *wm.Tracker
	lastSeen wm.Time
	epochs   []*epoch
	// spawnCtx, when set, attributes new tasks to a specific epoch
	// (continuations of a completing task, or window-closing work
	// spawned during OnWatermark). Otherwise tasks join the open epoch.
	spawnCtx *epoch
}

func newNode(id int, op Operator, e *Engine) *Node {
	n := &Node{
		id:      id,
		op:      op,
		tracker: wm.NewTracker(op.InPorts()),
		epochs:  []*epoch{{}},
	}
	n.ctx = &Ctx{e: e, node: n}
	return n
}

// ensurePort grows the downstream table to cover output port p.
func (n *Node) ensurePort(p int) {
	for len(n.down) <= p {
		n.down = append(n.down, nil)
	}
}

// spawnEpoch returns the epoch new tasks should join.
func (n *Node) spawnEpoch() *epoch {
	if n.spawnCtx != nil {
		return n.spawnCtx
	}
	return n.epochs[len(n.epochs)-1]
}

// onUpstreamWM merges a watermark arriving on an input port; a merged
// advance seals the open epoch and opens a fresh one.
func (n *Node) onUpstreamWM(e *Engine, port int, w wm.Time) {
	merged := n.tracker.Advance(port, w)
	if merged > n.lastSeen {
		n.lastSeen = merged
		open := n.epochs[len(n.epochs)-1]
		open.w = merged
		open.sealed = true
		n.epochs = append(n.epochs, &epoch{})
	}
	n.advance(e)
}

// advance drives the epoch queue: the front epoch's watermark is
// processed when its tasks drain, and forwarded when the processing
// tasks drain, unblocking the next epoch.
func (n *Node) advance(e *Engine) {
	for len(n.epochs) > 0 {
		front := n.epochs[0]
		if front.inflight > 0 {
			return
		}
		if !front.sealed {
			return // open epoch: nothing to close yet
		}
		if !front.processed {
			front.processed = true
			prev := n.spawnCtx
			n.spawnCtx = front
			n.op.OnWatermark(n.ctx, 0, front.w)
			n.spawnCtx = prev
			if front.inflight > 0 {
				return // window-closing tasks must drain first
			}
		}
		if !front.forwarded {
			front.forwarded = true
			for _, port := range n.down {
				for _, d := range port {
					d.n.onUpstreamWM(e, d.port, front.w)
				}
			}
		}
		n.epochs = n.epochs[1:]
	}
}
