package kpa

import (
	"fmt"

	"streambox/internal/memsim"
)

// Agg folds a stream of 64-bit values into one result. Implementations
// live in internal/ops (sum, average, median, top-k, ...); the kpa
// package only drives them.
type Agg interface {
	// Add folds one value.
	Add(v uint64)
	// Result returns the aggregate of the values added so far.
	Result() uint64
}

// AggFactory creates a fresh aggregator per key (or per window).
type AggFactory func() Agg

// ReduceByKey performs keyed reduction over a sorted KPA (paper Table 2,
// "Keyed"): it scans the KPA sequentially, tracks contiguous key ranges,
// dereferences each pointer to load the nonresident value column
// (random access into DRAM), and emits one (key, aggregate) per key.
func ReduceByKey(k *KPA, valCol int, factory AggFactory, emit func(key, result uint64)) error {
	if !k.sorted {
		return fmt.Errorf("kpa: keyed reduction requires a sorted KPA")
	}
	n := k.Len()
	for i := 0; i < n; {
		key := k.pairs[i].Key
		agg := factory()
		for i < n && k.pairs[i].Key == key {
			if k.vals {
				agg.Add(k.pairs[i].Ptr)
			} else {
				src, r := k.Deref(k.pairs[i].Ptr)
				if valCol < 0 || valCol >= src.Schema().NumCols {
					return fmt.Errorf("kpa: reduce value column %d out of range", valCol)
				}
				agg.Add(src.At(r, valCol))
			}
			i++
		}
		emit(key, agg.Result())
	}
	return nil
}

// ReduceByKeyResident reduces over the resident keys themselves grouped
// by key — used when the value is the resident column (e.g. counting).
func ReduceByKeyResident(k *KPA, factory AggFactory, emit func(key, result uint64)) error {
	if !k.sorted {
		return fmt.Errorf("kpa: keyed reduction requires a sorted KPA")
	}
	n := k.Len()
	for i := 0; i < n; {
		key := k.pairs[i].Key
		agg := factory()
		for i < n && k.pairs[i].Key == key {
			agg.Add(key)
			i++
		}
		emit(key, agg.Result())
	}
	return nil
}

// GroupScan calls fn once per contiguous key group of a sorted KPA with
// the half-open pair index range [lo, hi) of the group.
func GroupScan(k *KPA, fn func(key uint64, lo, hi int)) error {
	if !k.sorted {
		return fmt.Errorf("kpa: group scan requires a sorted KPA")
	}
	n := k.Len()
	for i := 0; i < n; {
		key := k.pairs[i].Key
		j := i
		for j < n && k.pairs[j].Key == key {
			j++
		}
		fn(key, i, j)
		i = j
	}
	return nil
}

// ReduceAll performs unkeyed reduction across every record of the KPA,
// loading value column valCol through the pointers.
func ReduceAll(k *KPA, valCol int, agg Agg) error {
	for _, p := range k.pairs {
		if k.vals {
			agg.Add(p.Ptr)
			continue
		}
		src, r := k.Deref(p.Ptr)
		if valCol < 0 || valCol >= src.Schema().NumCols {
			return fmt.Errorf("kpa: reduce value column %d out of range", valCol)
		}
		agg.Add(src.At(r, valCol))
	}
	return nil
}

// ReduceKeyedDemand returns the virtual cost of a keyed reduction.
func ReduceKeyedDemand(k *KPA) memsim.Demand {
	return memsim.ReduceKeyedDemand(k.Tier(), k.Len())
}
