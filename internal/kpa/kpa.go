// Package kpa implements the Key Pointer Array (paper §4), the only data
// structure StreamBox-HBM places in HBM. A KPA holds a sequence of
// (resident key, record pointer) pairs; keys replicate one column of the
// full records, pointers reference rows of record bundles in DRAM. The
// package provides the ten streaming primitives of paper Table 2.
//
// Ownership: a KPA is reference counted. Most KPAs live their whole
// life with the single reference they are born with — create, use,
// Destroy. Sorted pane runs under the native runtime's pane-based
// sliding aggregation are the exception: one run is referenced by every
// sliding window covering its pane (Retain per extra window), each
// window's close releases one reference, and the slab returns to the
// mempool exactly once, when the last covering window closes.
package kpa

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streambox/internal/algo"
	"streambox/internal/bundle"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
)

// Ptr packs a record pointer: high 32 bits bundle ID, low 32 bits row.
type Ptr = uint64

// PackPtr builds a record pointer.
func PackPtr(bundleID, row uint32) Ptr {
	return uint64(bundleID)<<32 | uint64(row)
}

// PtrBundle extracts the bundle ID of a pointer.
func PtrBundle(p Ptr) uint32 { return uint32(p >> 32) }

// PtrRow extracts the row index of a pointer.
func PtrRow(p Ptr) uint32 { return uint32(p) }

// Allocator decides where a new KPA lives. The engine's implementation
// applies the demand-balance knob and performance-impact tags (paper
// §5); tests use FixedAllocator.
type Allocator interface {
	// AllocKPA reserves nBytes for a new KPA and returns its placement.
	AllocKPA(nBytes int64) (memsim.Tier, *mempool.Allocation, error)
}

// FixedAllocator always allocates from one tier of a pool.
type FixedAllocator struct {
	Pool *mempool.Pool
	T    memsim.Tier
}

// AllocKPA implements Allocator.
func (f FixedAllocator) AllocKPA(nBytes int64) (memsim.Tier, *mempool.Allocation, error) {
	a, err := f.Pool.Alloc(f.T, nBytes)
	if err != nil {
		return 0, nil, err
	}
	return f.T, a, nil
}

// NoopAllocator places KPAs on a tier without capacity accounting
// (used by unit tests that do not care about memory pressure).
type NoopAllocator struct{ T memsim.Tier }

// AllocKPA implements Allocator.
func (n NoopAllocator) AllocKPA(int64) (memsim.Tier, *mempool.Allocation, error) {
	return n.T, nil, nil
}

// KPA is a key pointer array: intermediate grouping state. A KPA is
// itself reference counted: it is born with one reference, Retain adds
// more, and Destroy releases one — the storage frees when the last
// reference drops. Single-owner KPAs never call Retain and keep the
// original create/destroy discipline; the native runtime's pane-based
// sliding aggregation retains one reference per window sharing a
// sorted pane run, so the run is freed exactly once, when its last
// covering window closes.
type KPA struct {
	pairs    []algo.Pair
	resident int // column index the keys replicate; -1 for synthetic keys
	tier     memsim.Tier
	sorted   bool
	meta     algo.RunMeta
	// sources maps bundle ID -> bundle for every bundle any pointer
	// references; each entry holds one reference count (paper §5.1).
	sources map[uint32]*bundle.Bundle
	alloc   *mempool.Allocation
	// refs is the KPA's own reference count; <= 0 means destroyed.
	refs atomic.Int32

	// vals marks a value-resident KPA: each pair's Ptr field holds the
	// aggregation value itself, materialized from the source bundles,
	// and sources is empty. Runs become value-resident when evicted to
	// the spill tier (a spill record must be self-contained, and
	// dropping the bundle links is what actually frees DRAM) or when a
	// close mixes spilled with in-memory runs (merge inputs must agree
	// on pointer semantics). See residency.go.
	vals bool
	// resMu serializes residency transitions (Evict/EnsureResident):
	// two closes sharing a spilled pane run may both demand a load.
	resMu sync.Mutex
}

// SyntheticKey marks a KPA whose resident keys were computed (e.g. an
// external-join mapping) rather than copied from a record column.
const SyntheticKey = -1

// newKPA allocates backing storage for n pairs via al. When the
// allocator hands back a mempool allocation, the pair array is the
// allocation's (possibly recycled) slab; accounting-free allocators
// (NoopAllocator) fall back to the Go heap.
func newKPA(n int, resident int, al Allocator) (*KPA, error) {
	bytes := int64(n) * memsim.PairBytes
	if bytes == 0 {
		bytes = memsim.PairBytes // placement still matters for empties
	}
	tier, alloc, err := al.AllocKPA(bytes)
	if err != nil {
		return nil, fmt.Errorf("kpa: allocating %d pairs: %w", n, err)
	}
	var pairs []algo.Pair
	if alloc != nil {
		pairs = alloc.Pairs(n)[:0]
	} else {
		pairs = make([]algo.Pair, 0, n)
	}
	k := &KPA{
		pairs:    pairs,
		resident: resident,
		tier:     tier,
		alloc:    alloc,
	}
	k.refs.Store(1)
	return k, nil
}

// Len returns the number of pairs.
func (k *KPA) Len() int { return len(k.pairs) }

// Tier returns the memory tier holding the KPA.
func (k *KPA) Tier() memsim.Tier { return k.tier }

// Resident returns the column index the keys replicate (SyntheticKey
// for computed keys).
func (k *KPA) Resident() int { return k.resident }

// Sorted reports whether the pairs are sorted by resident key.
func (k *KPA) Sorted() bool { return k.sorted }

// Pairs returns the underlying pairs. Callers must treat the slice as
// read-only; primitives in this package are the only mutators.
func (k *KPA) Pairs() []algo.Pair { return k.pairs }

// Keys returns a copy of the resident keys (testing/debugging helper).
func (k *KPA) Keys() []uint64 { return algo.Keys(k.pairs) }

// Bytes returns the modeled in-memory size of the KPA.
func (k *KPA) Bytes() int64 { return int64(len(k.pairs)) * memsim.PairBytes }

// NumSources returns the number of distinct bundles referenced.
func (k *KPA) NumSources() int { return len(k.sources) }

// Schema returns the schema shared by the KPA's source bundles; ok is
// false when the KPA has no sources or they disagree.
func (k *KPA) Schema() (bundle.Schema, bool) {
	s, err := k.uniformSchema()
	return s, err == nil
}

// Source resolves a bundle ID to the referenced bundle, or nil.
func (k *KPA) Source(id uint32) *bundle.Bundle { return k.sources[id] }

// Deref resolves a pointer into (bundle, row). It panics on a dangling
// pointer, which would indicate broken reference counting.
func (k *KPA) Deref(p Ptr) (*bundle.Bundle, int) {
	b := k.sources[PtrBundle(p)]
	if b == nil {
		panic(fmt.Sprintf("kpa: dangling pointer into bundle %d", PtrBundle(p)))
	}
	return b, int(PtrRow(p))
}

// addSource links a bundle, taking one reference if new (paper §5.1:
// "adds a link pointing to R if one does not exist and increments the
// reference count").
func (k *KPA) addSource(b *bundle.Bundle) {
	id := uint32(b.ID())
	if _, ok := k.sources[id]; !ok {
		if k.sources == nil { // built lazily: most KPAs link one bundle
			k.sources = make(map[uint32]*bundle.Bundle, 1)
		}
		b.Retain()
		k.sources[id] = b
	}
}

// inheritSources copies another KPA's bundle links, retaining each.
func (k *KPA) inheritSources(from *KPA) {
	if len(from.sources) == 0 {
		return
	}
	if k.sources == nil {
		k.sources = make(map[uint32]*bundle.Bundle, len(from.sources))
	}
	for id, b := range from.sources {
		if _, ok := k.sources[id]; !ok {
			b.Retain()
			k.sources[id] = b
		}
	}
}

// Meta returns the run's provenance metadata (zero until SetMeta).
func (k *KPA) Meta() algo.RunMeta { return k.meta }

// SetMeta records the run's provenance, used to order a window's runs
// deterministically at close.
func (k *KPA) SetMeta(m algo.RunMeta) { k.meta = m }

// Retain adds n references to the KPA: Destroy must then be called n
// more times before the storage frees. The pane path retains one
// reference per additional window sharing a sorted pane run. Retaining
// a destroyed KPA panics — a reference can only be minted by an owner
// who already holds one.
func (k *KPA) Retain(n int) {
	if n <= 0 {
		return
	}
	if k.refs.Add(int32(n)) <= int32(n) {
		panic("kpa: retain of destroyed KPA")
	}
}

// Refs returns the current reference count (tests/metrics).
func (k *KPA) Refs() int { return int(k.refs.Load()) }

// Destroy releases one reference to the KPA; the last release drops
// every source-bundle reference (possibly reclaiming bundles) and frees
// the slab allocation, whose pair array rejoins the pool's free list
// for reuse. It returns true when this call freed the storage. Each
// reference must be destroyed exactly once; releasing more references
// than were ever held panics — the count is atomic, so even racing
// destroyers (a merge-tree bug, not a legal schedule) fail loudly
// instead of double-freeing a recycled slab under a still-running
// reader. The atomic decrement also orders the free after every
// sharer's reads: a window still merging a shared run holds a
// reference, so the slab cannot be recycled under it.
func (k *KPA) Destroy() bool {
	switch r := k.refs.Add(-1); {
	case r > 0:
		return false
	case r < 0:
		panic("kpa: double destroy")
	}
	for _, b := range k.sources {
		b.Release()
	}
	k.sources = nil
	if k.alloc != nil {
		k.alloc.Free()
		k.alloc = nil
	}
	k.pairs = nil
	return true
}

// Destroyed reports whether the last reference has been released.
func (k *KPA) Destroyed() bool { return k.refs.Load() <= 0 }

// String renders a short description.
func (k *KPA) String() string {
	return fmt.Sprintf("kpa(len=%d col=%d tier=%v sorted=%v srcs=%d)",
		len(k.pairs), k.resident, k.tier, k.sorted, len(k.sources))
}
