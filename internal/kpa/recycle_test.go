package kpa

import (
	"fmt"
	"sync"
	"testing"

	"streambox/internal/algo"
	"streambox/internal/bundle"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
)

// poolAllocator returns a FixedAllocator over a fresh accounting pool.
func poolAllocator(t *testing.T, tier memsim.Tier) (FixedAllocator, *mempool.Pool) {
	t.Helper()
	p := mempool.New(memsim.KNLConfig(), 0)
	return FixedAllocator{Pool: p, T: tier}, p
}

func sortedKPA(t *testing.T, reg *bundle.Registry, al Allocator, keys []uint64) *KPA {
	t.Helper()
	bd, err := reg.NewBuilder(bundle.Schema{NumCols: 2, TsCol: 1}, len(keys), memsim.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := bd.Append(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	b := bd.Seal()
	k, err := Extract(b, 0, al)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	Sort(k)
	return k
}

// TestPooledKPAUsesSlab: a KPA built through an accounting allocator
// stores its pairs in the allocation's slab, and destroying it recycles
// the slab into the next same-class KPA.
func TestPooledKPAUsesSlab(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	reg := bundle.NewRegistry()
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(997 * i % 1301)
	}
	k1 := sortedKPA(t, reg, al, keys)
	first := k1.Pairs()
	k1.Destroy()
	if got := pool.Used(memsim.HBM); got != 0 {
		t.Fatalf("used after destroy = %d", got)
	}
	k2 := sortedKPA(t, reg, al, keys)
	if &k2.Pairs()[0] != &first[0] {
		t.Error("second KPA should reuse the destroyed KPA's slab")
	}
	if pool.Stats().Recycled == 0 {
		t.Error("no recycling recorded")
	}
	// Recycling must not leak stale pairs: contents are exactly the
	// sorted keys, not leftovers.
	want := append([]uint64(nil), keys...)
	algo.SortPairs(k2.Pairs()) // already sorted; cheap no-op safety
	got := k2.Keys()
	seen := map[uint64]int{}
	for _, k := range want {
		seen[k]++
	}
	for _, k := range got {
		seen[k]--
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("key multiset mismatch at %d (%+d)", k, c)
		}
	}
	k2.Destroy()
}

// TestMergeTreeConcurrentDestroy runs a pairwise merge tree over pooled
// KPAs on many goroutines — each merge destroys its two inputs while
// sibling merges are consuming theirs, the exact shape of the native
// runtime's window close. Under -race this checks that slab recycling
// never hands a destroyed KPA's storage to a concurrent reader of a
// live one.
func TestMergeTreeConcurrentDestroy(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	reg := bundle.NewRegistry()

	const runs = 16
	const perRun = 500
	level := make([]*KPA, runs)
	total := 0
	for i := range level {
		keys := make([]uint64, perRun)
		for j := range keys {
			keys[j] = uint64((i*perRun+j)*2654435761) % 100_000
		}
		level[i] = sortedKPA(t, reg, al, keys)
		total += perRun
	}

	for len(level) > 1 {
		next := make([]*KPA, 0, (len(level)+1)/2)
		results := make([]*KPA, len(level)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(level); i += 2 {
			wg.Add(1)
			go func(slot int, a, b *KPA) {
				defer wg.Done()
				m, err := Merge(a, b, al)
				a.Destroy()
				b.Destroy()
				if err != nil {
					t.Error(err)
					return
				}
				results[slot] = m
			}(i/2, level[i], level[i+1])
		}
		wg.Wait()
		for _, m := range results {
			if m != nil {
				next = append(next, m)
			}
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}

	root := level[0]
	if root.Len() != total {
		t.Fatalf("root len = %d, want %d", root.Len(), total)
	}
	if !algo.PairsSorted(root.Pairs()) {
		t.Fatal("merge-tree output not sorted")
	}
	root.Destroy()
	if got := pool.Used(memsim.HBM); got != 0 {
		t.Errorf("pool leak after merge tree: %d bytes", got)
	}
}

// TestConcurrentDoubleDestroyPanics: racing destroyers of one KPA must
// produce exactly one panic and one successful destroy (never a silent
// double slab free).
func TestConcurrentDoubleDestroyPanics(t *testing.T) {
	al, _ := poolAllocator(t, memsim.DRAM)
	reg := bundle.NewRegistry()
	for iter := 0; iter < 50; iter++ {
		k := sortedKPA(t, reg, al, []uint64{3, 1, 2})
		var wg sync.WaitGroup
		panics := make(chan interface{}, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics <- r
					}
				}()
				k.Destroy()
			}()
		}
		wg.Wait()
		close(panics)
		n := 0
		for r := range panics {
			n++
			if fmt.Sprint(r) != "kpa: double destroy" {
				t.Fatalf("unexpected panic: %v", r)
			}
		}
		if n != 1 {
			t.Fatalf("got %d panics, want exactly 1", n)
		}
	}
}

// TestSortRadixPrimitive: SortRadix sorts and marks the KPA sorted,
// with scratch drawn from the pool.
func TestSortRadixPrimitive(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	reg := bundle.NewRegistry()
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i*48271) % (1 << 30)
	}
	bd, _ := reg.NewBuilder(bundle.Schema{NumCols: 2, TsCol: 1}, len(keys), memsim.DRAM)
	for i, k := range keys {
		bd.Append(k, uint64(i))
	}
	b := bd.Seal()
	k, err := Extract(b, 0, al)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if k.Sorted() {
		t.Fatal("unsorted KPA reported sorted")
	}
	SortRadix(k, 1, pool.ScratchFor(memsim.HBM))
	if !k.Sorted() || !algo.PairsSorted(k.Pairs()) {
		t.Fatal("SortRadix failed to sort")
	}
	k.Destroy()
}
