package kpa

import (
	"fmt"

	"streambox/internal/algo"
	"streambox/internal/bundle"
)

// Fused range-partitioned k-way merge-reduce (paper §4.3, "Parallel
// Full KPA Merge"): a closing window's sorted runs are partitioned once
// across the key space (MergeCuts), and each partition streams through
// a loser-tree merge whose visitor folds the keyed aggregator inline
// (MergeReduceRange), dereferencing bundle pointers as pairs arrive in
// key order. Closing a window of R runs costs one sequential read of
// the inputs — no per-level KPA materialization, no separate reduce
// sweep. MergeK is the materializing fallback used to cap fan-in when a
// window accumulates more runs than one loser tree should hold.

// checkMergeInputs validates that runs are sorted and share a resident
// column, returning that column.
func checkMergeInputs(runs []*KPA) (int, error) {
	if len(runs) == 0 {
		return 0, fmt.Errorf("kpa: merge of zero runs")
	}
	resident := runs[0].resident
	for _, r := range runs {
		if !r.sorted {
			return 0, fmt.Errorf("kpa: k-way merge requires sorted inputs")
		}
		if r.resident != resident {
			return 0, fmt.Errorf("kpa: k-way merge of different resident columns (%d vs %d)", r.resident, resident)
		}
	}
	return resident, nil
}

// MergeCuts partitions the k-way merge of the runs into up to p
// key-aligned ranges of balanced total size: cut vector i holds one
// cursor per run, and partition i covers pairs [cuts[i][j],
// cuts[i+1][j]) of run j. No key group spans a boundary, so each
// partition feeds an independent MergeReduceRange task.
func MergeCuts(runs []*KPA, p int) ([][]int, error) {
	if _, err := checkMergeInputs(runs); err != nil {
		return nil, err
	}
	segs := make([][]algo.Pair, len(runs))
	for j, r := range runs {
		segs[j] = r.pairs
	}
	return algo.MultiWayCuts(segs, p), nil
}

// MergeReduceRange merges one key-range partition of the runs — pairs
// [lo[j], hi[j]) of run j, as produced by MergeCuts — and folds the
// keyed aggregation inline: the loser-tree visitor dereferences each
// pair's bundle pointer, loads value column valCol, and feeds the
// current key's aggregator, emitting one (key, aggregate) when the key
// changes. The runs are only read; no intermediate KPA exists. Pairs
// visit in the exact order the pairwise merge tree would produce
// (ties by run index), so any aggregator — order-sensitive or not —
// yields bit-identical results to merge-then-reduce.
func MergeReduceRange(runs []*KPA, lo, hi []int, valCol int, factory AggFactory, emit func(key, result uint64)) error {
	if _, err := checkMergeInputs(runs); err != nil {
		return err
	}
	if len(lo) != len(runs) || len(hi) != len(runs) {
		return fmt.Errorf("kpa: merge-reduce cut vectors cover %d/%d runs, want %d", len(lo), len(hi), len(runs))
	}
	segs := make([][]algo.Pair, len(runs))
	for j, r := range runs {
		if lo[j] < 0 || hi[j] > r.Len() || lo[j] > hi[j] {
			return fmt.Errorf("kpa: merge-reduce range [%d,%d) out of bounds for run %d (len %d)", lo[j], hi[j], j, r.Len())
		}
		segs[j] = r.pairs[lo[j]:hi[j]]
		// Hoist the value-column bounds check out of the per-pair loop:
		// every source bundle's schema must hold valCol.
		for _, b := range r.sources {
			if valCol < 0 || valCol >= b.Schema().NumCols {
				return fmt.Errorf("kpa: reduce value column %d out of range", valCol)
			}
		}
	}

	// Per-run single-entry deref cache: first-level runs reference one
	// bundle, so the common case is an array hit instead of a map lookup
	// per pair. Misses fall back to the owning run's source map.
	// Value-resident runs (loaded back from the spill tier) carry their
	// values in Ptr and skip dereferencing entirely; the merge may mix
	// pointer and value runs freely because resolution is per run.
	cachedID := make([]uint32, len(runs))
	cached := make([]*bundle.Bundle, len(runs))
	valsRes := make([]bool, len(runs))
	for j, r := range runs {
		valsRes[j] = r.vals
		if !r.vals && lo[j] < hi[j] {
			p := r.pairs[lo[j]].Ptr
			cached[j] = r.sources[PtrBundle(p)]
			cachedID[j] = PtrBundle(p)
		}
	}

	var (
		cur     uint64
		agg     Agg
		started bool
	)
	algo.MultiMergeVisit(segs, func(run int, p algo.Pair) {
		if !started || p.Key != cur {
			if started {
				emit(cur, agg.Result())
			}
			cur = p.Key
			agg = factory()
			started = true
		}
		if valsRes[run] {
			agg.Add(p.Ptr)
			return
		}
		id := PtrBundle(p.Ptr)
		b := cached[run]
		if b == nil || cachedID[run] != id {
			b = runs[run].sources[id]
			if b == nil {
				panic(fmt.Sprintf("kpa: dangling pointer into bundle %d", id))
			}
			cached[run], cachedID[run] = b, id
		}
		agg.Add(b.At(int(PtrRow(p.Ptr)), valCol))
	})
	if started {
		emit(cur, agg.Result())
	}
	return nil
}

// MergeK merges k sorted KPAs into one sorted KPA with a single
// loser-tree pass — the fan-in-capping fallback of the fused close: a
// window with more runs than one merge task should stream is first
// compacted in batches of k, one materialization total instead of a
// log2(R)-level tree. Inputs remain valid (destroy them separately).
func MergeK(runs []*KPA, al Allocator) (*KPA, error) {
	resident, err := checkMergeInputs(runs)
	if err != nil {
		return nil, err
	}
	// Pairs are copied verbatim, so every input must agree on what Ptr
	// means — all pointer runs or all value-resident runs. The runtime
	// converts a close's runs to one mode before compacting.
	for _, r := range runs {
		if r.vals != runs[0].vals {
			return nil, fmt.Errorf("kpa: k-way merge of mixed pointer/value-resident runs")
		}
	}
	total := 0
	segs := make([][]algo.Pair, len(runs))
	for j, r := range runs {
		total += r.Len()
		segs[j] = r.pairs
	}
	out, err := newKPA(total, resident, al)
	if err != nil {
		return nil, err
	}
	algo.MultiMergeVisit(segs, func(_ int, p algo.Pair) {
		out.pairs = append(out.pairs, p)
	})
	for _, r := range runs {
		out.inheritSources(r)
	}
	out.sorted = true
	out.vals = runs[0].vals
	return out, nil
}
