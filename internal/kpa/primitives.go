package kpa

import (
	"fmt"

	"streambox/internal/algo"
	"streambox/internal/bundle"
	"streambox/internal/memsim"
)

// --- Maintenance primitives (paper Table 2). -------------------------------

// Extract creates a new KPA from a record bundle, copying column col as
// the resident keys and building pointers to the bundle's rows.
// Sequential access on both the bundle and the new KPA.
func Extract(b *bundle.Bundle, col int, al Allocator) (*KPA, error) {
	if col < 0 || col >= b.Schema().NumCols {
		return nil, fmt.Errorf("kpa: extract column %d out of range for %d-column schema", col, b.Schema().NumCols)
	}
	k, err := newKPA(b.Rows(), col, al)
	if err != nil {
		return nil, err
	}
	id := uint32(b.ID())
	keys := b.Col(col)
	for i, key := range keys {
		k.pairs = append(k.pairs, algo.Pair{Key: key, Ptr: PackPtr(id, uint32(i))})
	}
	if b.Rows() > 0 {
		k.addSource(b)
	}
	k.sorted = b.Rows() <= 1
	return k, nil
}

// ExtractDemand returns the virtual cost of Extract.
func ExtractDemand(b *bundle.Bundle, to memsim.Tier) memsim.Demand {
	return memsim.ExtractDemand(b.Tier(), to, b.Rows(), 8)
}

// FromPairs creates a KPA from externally prepared key/pointer pairs
// whose pointers all reference rows of source bundle b. The native
// runtime uses it to fuse filtering and window partitioning into a
// single extraction pass over a bundle. The pairs are copied into the
// KPA's own storage.
func FromPairs(pairs []algo.Pair, resident int, b *bundle.Bundle, al Allocator) (*KPA, error) {
	k, err := newKPA(len(pairs), resident, al)
	if err != nil {
		return nil, err
	}
	k.pairs = append(k.pairs, pairs...)
	if len(pairs) > 0 {
		k.addSource(b)
	}
	k.sorted = len(pairs) <= 1
	return k, nil
}

// Materialize emits a bundle of full records in KPA order by
// dereferencing every pointer (random access into DRAM). newBuilder is
// supplied by the engine so the output bundle gets a registry ID and a
// slab allocation.
func Materialize(k *KPA, newBuilder func(schema bundle.Schema, capacity int) (*bundle.Builder, error)) (*bundle.Bundle, error) {
	schema, err := k.uniformSchema()
	if err != nil {
		return nil, err
	}
	bd, err := newBuilder(schema, max(k.Len(), 1))
	if err != nil {
		return nil, fmt.Errorf("kpa: materialize: %w", err)
	}
	row := make([]uint64, schema.NumCols)
	for _, p := range k.pairs {
		src, r := k.Deref(p.Ptr)
		for c := 0; c < schema.NumCols; c++ {
			row[c] = src.At(r, c)
		}
		// The resident key may have been updated in place (paper §4.3
		// optimization: dirty keys are written back on materialize).
		if k.resident >= 0 {
			row[k.resident] = p.Key
		}
		if err := bd.Append(row...); err != nil {
			return nil, err
		}
	}
	return bd.Seal(), nil
}

// MaterializeDemand returns the virtual cost of Materialize.
func MaterializeDemand(k *KPA, recBytes int64) memsim.Demand {
	return memsim.MaterializeDemand(k.Tier(), k.Len(), recBytes)
}

// uniformSchema returns the schema shared by all source bundles.
func (k *KPA) uniformSchema() (bundle.Schema, error) {
	var schema bundle.Schema
	first := true
	for _, b := range k.sources {
		if first {
			schema = b.Schema()
			first = false
			continue
		}
		s := b.Schema()
		if s.NumCols != schema.NumCols || s.TsCol != schema.TsCol {
			return bundle.Schema{}, fmt.Errorf("kpa: mixed schemas across source bundles")
		}
	}
	if first {
		return bundle.Schema{}, fmt.Errorf("kpa: no source bundles (empty KPA)")
	}
	return schema, nil
}

// KeySwap replaces the KPA's resident keys with nonresident column col,
// loaded through the pointers (random access into DRAM). Sortedness is
// invalidated.
func KeySwap(k *KPA, col int) error {
	for i, p := range k.pairs {
		src, r := k.Deref(p.Ptr)
		if col < 0 || col >= src.Schema().NumCols {
			return fmt.Errorf("kpa: keyswap column %d out of range", col)
		}
		k.pairs[i].Key = src.At(r, col)
	}
	k.resident = col
	k.sorted = k.Len() <= 1
	return nil
}

// KeySwapDemand returns the virtual cost of KeySwap.
func KeySwapDemand(k *KPA) memsim.Demand {
	return memsim.KeySwapDemand(k.Tier(), k.Len())
}

// UpdateKeys rewrites every resident key through fn in place (sequential
// access). It implements the in-place update used by the YSB external
// join, which replaces ad_id with campaign_id (paper §4.3 step 3). The
// resident column becomes synthetic.
func UpdateKeys(k *KPA, fn func(key uint64) uint64) {
	for i := range k.pairs {
		k.pairs[i].Key = fn(k.pairs[i].Key)
	}
	k.resident = SyntheticKey
	k.sorted = k.Len() <= 1
}

// UpdateKeysWriteBack rewrites the resident keys through fn and writes
// the dirty keys back to the resident column of the full records
// (paper §4.3: "The operator writes back camp_id to full records"), so
// later KeySwap and Materialize see the new values. The KPA must have a
// real resident column.
func UpdateKeysWriteBack(k *KPA, fn func(key uint64) uint64) error {
	if k.resident < 0 {
		return fmt.Errorf("kpa: write-back needs a resident column, have synthetic keys")
	}
	col := k.resident
	for i := range k.pairs {
		nk := fn(k.pairs[i].Key)
		k.pairs[i].Key = nk
		src, row := k.Deref(k.pairs[i].Ptr)
		src.OverwriteAt(row, col, nk)
	}
	k.sorted = k.Len() <= 1
	return nil
}

// --- Grouping primitives (sequential access). ------------------------------

// Sort sorts the KPA by resident keys in place with the comparison
// merge-sort kernel.
func Sort(k *KPA) {
	algo.SortPairs(k.pairs)
	k.sorted = true
}

// SortRadix sorts the KPA by resident keys in place with the LSD radix
// kernel (algo.RadixSortPairs), drawing scatter scratch from s. The
// native runtime uses it for first-level run formation — bundle-sized
// KPAs right after extraction — and keeps the comparison merge kernels
// for the tree above (paper Table 2's partition/merge split).
func SortRadix(k *KPA, workers int, s *algo.Scratch) {
	algo.RadixSortPairs(k.pairs, workers, s)
	k.sorted = true
}

// SortDemand returns the virtual cost of Sort.
func SortDemand(k *KPA) memsim.Demand {
	return memsim.SortDemand(k.Tier(), k.Len())
}

// SortParallel sorts the KPA by resident keys in place using up to p
// real goroutines (algo.ParallelSortPairs). The native runtime uses it;
// the simulator instead expresses the same structure as SortChunk and
// Merge tasks so parallelism costs virtual time.
func SortParallel(k *KPA, p int) {
	algo.ParallelSortPairs(k.pairs, p)
	k.sorted = true
}

// SortChunk sorts pairs [lo,hi) of the KPA, the per-thread piece of the
// paper's parallel merge-sort. The engine schedules one SortChunk task
// per chunk followed by MergePairs tasks.
func SortChunk(k *KPA, lo, hi int) {
	algo.SortPairs(k.pairs[lo:hi])
}

// Merge combines two sorted KPAs with the same resident column into a
// new sorted KPA. Both inputs remain valid (destroy them separately).
func Merge(a, b *KPA, al Allocator) (*KPA, error) {
	if !a.sorted || !b.sorted {
		return nil, fmt.Errorf("kpa: merge requires sorted inputs")
	}
	if a.resident != b.resident {
		return nil, fmt.Errorf("kpa: merge of different resident columns (%d vs %d)", a.resident, b.resident)
	}
	if a.vals != b.vals {
		return nil, fmt.Errorf("kpa: merge of mixed pointer/value-resident runs")
	}
	out, err := newKPA(a.Len()+b.Len(), a.resident, al)
	if err != nil {
		return nil, err
	}
	out.pairs = out.pairs[:a.Len()+b.Len()]
	algo.MergeInto(out.pairs, a.pairs, b.pairs)
	out.inheritSources(a)
	out.inheritSources(b)
	out.sorted = true
	out.vals = a.vals
	return out, nil
}

// MergeDemand returns the virtual cost of merging a and b.
func MergeDemand(a, b *KPA) memsim.Demand {
	return memsim.MergeDemand(a.Tier(), a.Len()+b.Len())
}

// JoinRow is one match emitted by Join: the shared key plus the two
// source positions.
type JoinRow struct {
	Key  uint64
	Left Ptr
	Rght Ptr
}

// Join scans two sorted KPAs once and calls emit for every key match
// (paper: "Join two sorted KPAs by resident keys. Emit new records." —
// record construction from the pointer pair is the caller's business,
// via Deref on the respective sides).
func Join(a, b *KPA, emit func(JoinRow)) error {
	if !a.sorted || !b.sorted {
		return fmt.Errorf("kpa: join requires sorted inputs")
	}
	algo.JoinSorted(a.pairs, b.pairs, func(key, pa, pb uint64) {
		emit(JoinRow{Key: key, Left: pa, Rght: pb})
	})
	return nil
}

// JoinDemand returns the virtual cost of joining a and b with m output
// records of recBytes each.
func JoinDemand(a, b *KPA, m int, recBytes int64) memsim.Demand {
	return memsim.JoinDemand(a.Tier(), a.Len()+b.Len(), m, recBytes)
}

// SelectFromBundle creates a KPA holding only the rows of b whose
// column-col value satisfies pred (ParDo/Filter without new records).
func SelectFromBundle(b *bundle.Bundle, col int, pred func(uint64) bool, al Allocator) (*KPA, error) {
	if col < 0 || col >= b.Schema().NumCols {
		return nil, fmt.Errorf("kpa: select column %d out of range", col)
	}
	keys := b.Col(col)
	n := 0
	for _, key := range keys {
		if pred(key) {
			n++
		}
	}
	k, err := newKPA(n, col, al)
	if err != nil {
		return nil, err
	}
	id := uint32(b.ID())
	for i, key := range keys {
		if pred(key) {
			k.pairs = append(k.pairs, algo.Pair{Key: key, Ptr: PackPtr(id, uint32(i))})
		}
	}
	if n > 0 {
		k.addSource(b)
	}
	k.sorted = n <= 1
	return k, nil
}

// Select creates a new KPA with the surviving key/pointer pairs of k.
func Select(k *KPA, pred func(uint64) bool, al Allocator) (*KPA, error) {
	kept := algo.SelectPairs(k.pairs, pred)
	out, err := newKPA(len(kept), k.resident, al)
	if err != nil {
		return nil, err
	}
	out.pairs = append(out.pairs, kept...)
	if len(kept) > 0 {
		out.inheritSources(k)
	}
	out.sorted = k.sorted || len(kept) <= 1
	return out, nil
}

// SelectDemand returns the virtual cost of a selection scan.
func SelectDemand(k *KPA) memsim.Demand {
	return memsim.ScanDemand(k.Tier(), k.Bytes(), int64(k.Len())*memsim.SelectCycles)
}

// Partition splits the KPA into len(boundaries)+1 KPAs by ranges of the
// resident keys (paper: the Windowing operator partitions on the
// timestamp column). Output KPAs inherit the input's bundle links.
func Partition(k *KPA, boundaries []uint64, al Allocator) ([]*KPA, error) {
	buckets := algo.PartitionByKeyRange(k.pairs, boundaries)
	out := make([]*KPA, len(buckets))
	for i, bucket := range buckets {
		kp, err := newKPA(len(bucket), k.resident, al)
		if err != nil {
			for _, done := range out[:i] {
				done.Destroy()
			}
			return nil, err
		}
		kp.pairs = append(kp.pairs, bucket...)
		if len(bucket) > 0 {
			kp.inheritSources(k)
		}
		kp.sorted = k.sorted || len(bucket) <= 1
		out[i] = kp
	}
	return out, nil
}

// PartitionDemand returns the virtual cost of partitioning.
func PartitionDemand(k *KPA) memsim.Demand {
	return PartitionDemandN(k.Tier(), k.Len())
}

// PartitionDemandN is PartitionDemand for a KPA of n pairs on tier t,
// usable before the KPA exists.
func PartitionDemandN(t memsim.Tier, n int) memsim.Demand {
	return memsim.ScanDemand(t, 2*int64(n)*memsim.PairBytes, int64(n)*memsim.PartitionCycles)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
