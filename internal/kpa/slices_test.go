package kpa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"streambox/internal/algo"
)

// buildSorted makes a sorted KPA over one bundle with the given keys.
func buildSorted(t *testing.T, e *env, keys []uint64) *KPA {
	if t != nil {
		t.Helper()
	}
	rows := make([][3]uint64, len(keys))
	for i, k := range keys {
		rows[i] = [3]uint64{k, k * 10, uint64(i)}
	}
	b := e.bundleOf(t, rows...)
	k, err := Extract(b, 0, e.al)
	if err != nil {
		panic(err)
	}
	Sort(k)
	return k
}

func randKeys(n int, mod uint64, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64() % mod
	}
	return out
}

func TestMergeSlicesBasic(t *testing.T) {
	e := newEnv()
	a := buildSorted(t, e, []uint64{1, 3, 5, 7})
	b := buildSorted(t, e, []uint64{2, 4, 6, 8})
	slices, err := MergeSlices(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) == 0 {
		t.Fatal("no slices")
	}
	total := 0
	for _, s := range slices {
		total += s.Len()
	}
	if total != 8 {
		t.Fatalf("slices cover %d of 8", total)
	}
	out, err := NewMergeTarget(a, b, e.al)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slices {
		MergeSegment(out, a, b, s)
	}
	if !reflect.DeepEqual(out.Keys(), []uint64{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("merged = %v", out.Keys())
	}
	if !out.Sorted() {
		t.Fatal("target must be sorted")
	}
	if out.NumSources() != 2 {
		t.Fatal("sources not inherited")
	}
}

func TestMergeSlicesRequiresSorted(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{3, 0, 0}, [3]uint64{1, 0, 1})
	k, _ := Extract(b, 0, e.al)
	k2, _ := Extract(b, 0, e.al)
	Sort(k2)
	if _, err := MergeSlices(k, k2, 4); err == nil {
		t.Fatal("unsorted input must fail")
	}
	if _, err := NewMergeTarget(k, k2, e.al); err == nil {
		t.Fatal("unsorted target must fail")
	}
}

func TestMergeTargetResidentMismatch(t *testing.T) {
	e := newEnv()
	a := buildSorted(t, e, []uint64{1, 2})
	b := buildSorted(t, e, []uint64{3, 4})
	KeySwap(b, 1)
	Sort(b)
	if _, err := NewMergeTarget(a, b, e.al); err == nil {
		t.Fatal("resident mismatch must fail")
	}
}

func TestMergeSlicesEmptyInputs(t *testing.T) {
	e := newEnv()
	a := buildSorted(t, e, nil)
	b := buildSorted(t, e, []uint64{1, 2})
	slices, err := MergeSlices(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range slices {
		total += s.Len()
	}
	if total != 2 {
		t.Fatalf("cover = %d", total)
	}
	// Both empty.
	c := buildSorted(t, e, nil)
	slices, err = MergeSlices(a, c, 4)
	if err != nil || len(slices) != 0 {
		t.Fatalf("empty-empty: %v %d", err, len(slices))
	}
}

func TestPropSlicedMergeEqualsPlainMerge(t *testing.T) {
	f := func(rawA, rawB []uint16, pRaw uint8) bool {
		e := newEnv()
		ka := make([]uint64, len(rawA))
		for i, v := range rawA {
			ka[i] = uint64(v % 64) // many duplicates stress tie handling
		}
		kb := make([]uint64, len(rawB))
		for i, v := range rawB {
			kb[i] = uint64(v % 64)
		}
		a := buildSorted(nil, e, ka)
		b := buildSorted(nil, e, kb)
		p := int(pRaw%8) + 1
		want, err := Merge(a, b, e.al)
		if err != nil {
			return false
		}
		out, err := NewMergeTarget(a, b, e.al)
		if err != nil {
			return false
		}
		slices, err := MergeSlices(a, b, p)
		if err != nil {
			return false
		}
		covered := 0
		for _, s := range slices {
			if s.ALo > s.AHi || s.BLo > s.BHi || s.OutLo != covered {
				return false
			}
			MergeSegment(out, a, b, s)
			covered += s.Len()
		}
		if covered != a.Len()+b.Len() {
			return false
		}
		return reflect.DeepEqual(Keys(want), Keys(out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func Keys(k *KPA) []uint64 { return algo.Keys(k.Pairs()) }

func TestKeyAlignedCuts(t *testing.T) {
	e := newEnv()
	k := buildSorted(t, e, []uint64{1, 1, 1, 2, 2, 3, 4, 4})
	cuts, err := KeyAlignedCuts(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cuts[0] != 0 || cuts[len(cuts)-1] != 8 {
		t.Fatalf("cuts = %v", cuts)
	}
	// No key group spans a cut.
	pairs := k.Pairs()
	for _, c := range cuts[1 : len(cuts)-1] {
		if pairs[c-1].Key == pairs[c].Key {
			t.Fatalf("cut %d splits key %d", c, pairs[c].Key)
		}
	}
}

func TestKeyAlignedCutsSingleKey(t *testing.T) {
	e := newEnv()
	k := buildSorted(t, e, []uint64{7, 7, 7, 7})
	cuts, err := KeyAlignedCuts(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cuts, []int{0, 4}) {
		t.Fatalf("cuts = %v (one group cannot be split)", cuts)
	}
}

func TestKeyAlignedCutsUnsorted(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{3, 0, 0}, [3]uint64{1, 0, 1})
	k, _ := Extract(b, 0, e.al)
	if _, err := KeyAlignedCuts(k, 2); err == nil {
		t.Fatal("unsorted must fail")
	}
}

func TestReduceByKeyRangeMatchesFull(t *testing.T) {
	e := newEnv()
	keys := randKeys(500, 23, 9)
	k := buildSorted(t, e, keys)
	full := map[uint64]uint64{}
	if err := ReduceByKey(k, 1, func() Agg { return &sumAgg{} }, func(key, res uint64) { full[key] = res }); err != nil {
		t.Fatal(err)
	}
	cuts, err := KeyAlignedCuts(k, 7)
	if err != nil {
		t.Fatal(err)
	}
	ranged := map[uint64]uint64{}
	for i := 0; i+1 < len(cuts); i++ {
		err := ReduceByKeyRange(k, cuts[i], cuts[i+1], 1, func() Agg { return &sumAgg{} },
			func(key, res uint64) {
				if _, dup := ranged[key]; dup {
					t.Fatalf("key %d reduced twice across ranges", key)
				}
				ranged[key] = res
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(full, ranged) {
		t.Fatal("ranged reduction disagrees with full reduction")
	}
}

func TestReduceByKeyRangeErrors(t *testing.T) {
	e := newEnv()
	k := buildSorted(t, e, []uint64{1, 2, 3})
	if err := ReduceByKeyRange(k, -1, 2, 1, func() Agg { return &sumAgg{} }, nil); err == nil {
		t.Fatal("negative lo must fail")
	}
	if err := ReduceByKeyRange(k, 0, 9, 1, func() Agg { return &sumAgg{} }, nil); err == nil {
		t.Fatal("hi out of bounds must fail")
	}
	if err := ReduceByKeyRange(k, 0, 3, 99, func() Agg { return &sumAgg{} }, func(uint64, uint64) {}); err == nil {
		t.Fatal("bad column must fail")
	}
	b := e.bundleOf(t, [3]uint64{3, 0, 0}, [3]uint64{1, 0, 1})
	un, _ := Extract(b, 0, e.al)
	if err := ReduceByKeyRange(un, 0, 2, 1, func() Agg { return &sumAgg{} }, nil); err == nil {
		t.Fatal("unsorted must fail")
	}
}

func TestUpdateKeysWriteBack(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1}, [3]uint64{3, 30, 2})
	k, _ := Extract(b, 0, e.al)
	if err := UpdateKeysWriteBack(k, func(key uint64) uint64 { return key + 100 }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k.Keys(), []uint64{107, 103}) {
		t.Fatalf("keys = %v", k.Keys())
	}
	// Write-back visible in the records (paper §4.3).
	if b.At(0, 0) != 107 || b.At(1, 0) != 103 {
		t.Fatal("records not updated")
	}
	if k.Resident() != 0 {
		t.Fatal("resident column must stay")
	}
	// Synthetic keys cannot write back.
	UpdateKeys(k, func(v uint64) uint64 { return v })
	if err := UpdateKeysWriteBack(k, func(v uint64) uint64 { return v }); err == nil {
		t.Fatal("write-back on synthetic keys must fail")
	}
}
