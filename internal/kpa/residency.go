package kpa

import (
	"fmt"

	"streambox/internal/algo"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
	"streambox/internal/spill"
)

// Run residency: the cold rung of the degradation ladder.
//
// A sealed, sorted run can be evicted to the spill tier (Evict) and
// transparently brought back before its window closes (EnsureResident).
// Eviction materializes values: every pair's bundle pointer is
// dereferenced once and replaced by the value itself, the bundle links
// drop, and the pairs land in one self-contained spill record. That is
// what makes eviction actually relieve memory pressure — the pair slab
// is only 16 B/record, the bundles behind it are the bulk, and they
// free as soon as the last KPA link releases them.
//
// Concurrency contract: Evict may only be called while the run is
// quiescent — no merge reads it and no covering window is closing; the
// runtime guarantees this by evicting under its window-table lock.
// EnsureResident is idempotent and serialized per KPA (resMu), so the
// closes of two windows sharing a spilled pane run can both demand the
// load; each close must call it (even when it no-ops) before reading
// the pairs, because the lock handoff is what publishes the loaded
// slab to that close's merge tasks.

// ValuesResident reports whether the pairs carry materialized values in
// Ptr instead of bundle pointers.
func (k *KPA) ValuesResident() bool { return k.vals }

// Spilled reports whether the run currently lives on the spill tier.
func (k *KPA) Spilled() bool { return k.tier == memsim.Spill }

// dropSources releases every source-bundle link.
func (k *KPA) dropSources() {
	for _, b := range k.sources {
		b.Release()
	}
	k.sources = nil
}

// valueOf resolves one pair to its aggregation value: the materialized
// value for a value-resident run, a bundle dereference otherwise.
func (k *KPA) valueOf(p algo.Pair, valCol int) uint64 {
	if k.vals {
		return p.Ptr
	}
	b, row := k.Deref(p.Ptr)
	return b.At(row, valCol)
}

// MaterializeValues converts the run to value-resident in place:
// pointers become values of valCol and the source-bundle links drop.
// The caller must hold the only reference (Refs()==1) or otherwise
// guarantee no concurrent reader — sharers still expect pointers. Use
// CloneValues for shared runs.
func (k *KPA) MaterializeValues(valCol int) error {
	if k.vals {
		return nil
	}
	if err := k.checkValCol(valCol); err != nil {
		return err
	}
	for i, p := range k.pairs {
		b, row := k.Deref(p.Ptr)
		k.pairs[i].Ptr = b.At(row, valCol)
	}
	k.dropSources()
	k.vals = true
	return nil
}

// CloneValues returns a new value-resident run with the same pairs,
// metadata and sort state, allocated via al. The receiver is left
// untouched — this is the shared-run variant of MaterializeValues,
// safe while other windows concurrently read the original.
func (k *KPA) CloneValues(valCol int, al Allocator) (*KPA, error) {
	if err := k.checkValCol(valCol); err != nil {
		return nil, err
	}
	out, err := newKPA(k.Len(), k.resident, al)
	if err != nil {
		return nil, err
	}
	out.pairs = out.pairs[:k.Len()]
	for i, p := range k.pairs {
		out.pairs[i] = algo.Pair{Key: p.Key, Ptr: k.valueOf(p, valCol)}
	}
	out.sorted = k.sorted
	out.meta = k.meta
	out.vals = true
	return out, nil
}

// checkValCol validates valCol against every source bundle's schema
// (vacuously true for value-resident runs, which have no sources).
func (k *KPA) checkValCol(valCol int) error {
	if k.vals {
		return nil
	}
	for _, b := range k.sources {
		if valCol < 0 || valCol >= b.Schema().NumCols {
			return fmt.Errorf("kpa: value column %d out of range", valCol)
		}
	}
	return nil
}

// Evict moves a sealed, sorted run to the spill tier: values are
// materialized from valCol straight into one spill record (header +
// pair payload) in the pool's mmap'd arena, the bundle links and the
// memory-tier slab free, and the KPA's pairs become a zero-copy view
// of the record payload. Returns the bytes of pair slab released from
// the run's former tier. Fails without side effects when the spill
// tier is detached or full (mempool.ErrExhausted) — the caller stops
// evicting and lets backpressure take over.
//
// The caller must guarantee quiescence: no concurrent reader of the
// run (the runtime evicts only runs of non-closing windows, under the
// lock that close-collection takes).
func (k *KPA) Evict(pool *mempool.Pool, valCol int) (freed int64, err error) {
	k.resMu.Lock()
	defer k.resMu.Unlock()
	if k.tier == memsim.Spill {
		return 0, nil
	}
	if !k.sorted {
		return 0, fmt.Errorf("kpa: evict of unsorted run")
	}
	if err := k.checkValCol(valCol); err != nil {
		return 0, err
	}
	n := k.Len()
	alloc, err := pool.Alloc(memsim.Spill, int64(spill.RecordBytes(n)))
	if err != nil {
		return 0, err
	}
	buf := alloc.Bytes()
	payload := spill.PayloadView(buf, n)
	for i, p := range k.pairs {
		payload[i] = algo.Pair{Key: p.Key, Ptr: k.valueOf(p, valCol)}
	}
	rec := spill.Record{Sorted: true, Resident: k.resident, Meta: k.meta, Pairs: payload}
	spill.EncodeInto(buf, &rec)

	freed = k.Bytes()
	k.dropSources()
	if k.alloc != nil {
		k.alloc.Free()
	}
	k.alloc = alloc
	k.pairs = payload
	k.tier = memsim.Spill
	k.vals = true
	return freed, nil
}

// EnsureResident loads a spilled run back onto a memory tier chosen by
// al, copying the record payload into a fresh pair slab and freeing
// the spill extent; loaded reports whether this call performed the
// load. Idempotent: a run already in memory returns immediately, and
// concurrent callers serialize on the KPA, so exactly one performs the
// load. On allocation failure the run stays spilled and remains
// readable through its mmap view — the caller may merge directly over
// it (slower, never wrong).
func (k *KPA) EnsureResident(al Allocator) (loaded bool, err error) {
	k.resMu.Lock()
	defer k.resMu.Unlock()
	if k.tier != memsim.Spill {
		return false, nil
	}
	n := k.Len()
	tier, alloc, err := al.AllocKPA(k.Bytes())
	if err != nil {
		return false, err
	}
	var pairs []algo.Pair
	if alloc != nil {
		pairs = alloc.Pairs(n)
	} else {
		pairs = make([]algo.Pair, n)
	}
	copy(pairs, k.pairs)
	old := k.alloc
	k.pairs = pairs
	k.alloc = alloc
	k.tier = tier
	if old != nil {
		old.Free()
	}
	return true, nil
}
