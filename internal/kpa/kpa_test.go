package kpa

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"streambox/internal/bundle"
	"streambox/internal/mempool"
	"streambox/internal/memsim"
)

var kvSchema = bundle.Schema{NumCols: 3, TsCol: 2, Names: []string{"key", "value", "ts"}}

type env struct {
	reg  *bundle.Registry
	pool *mempool.Pool
	al   Allocator
}

func newEnv() *env {
	pool := mempool.New(memsim.KNLConfig(), 0)
	return &env{
		reg:  bundle.NewRegistry(),
		pool: pool,
		al:   FixedAllocator{Pool: pool, T: memsim.HBM},
	}
}

func (e *env) bundleOf(t *testing.T, rows ...[3]uint64) *bundle.Bundle {
	if t != nil {
		t.Helper()
	}
	bd, err := e.reg.NewBuilder(kvSchema, len(rows)+1, memsim.DRAM)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		if err := bd.Append(r[0], r[1], r[2]); err != nil {
			panic(err)
		}
	}
	return bd.Seal()
}

func (e *env) newBuilder(schema bundle.Schema, capacity int) (*bundle.Builder, error) {
	return e.reg.NewBuilder(schema, capacity, memsim.DRAM)
}

func TestPtrPacking(t *testing.T) {
	p := PackPtr(0xDEADBEEF, 0x12345678)
	if PtrBundle(p) != 0xDEADBEEF {
		t.Errorf("bundle = %x", PtrBundle(p))
	}
	if PtrRow(p) != 0x12345678 {
		t.Errorf("row = %x", PtrRow(p))
	}
}

func TestExtract(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1}, [3]uint64{3, 30, 2}, [3]uint64{9, 90, 3})
	k, err := Extract(b, 0, e.al)
	if err != nil {
		t.Fatal(err)
	}
	if k.Len() != 3 {
		t.Fatalf("len = %d", k.Len())
	}
	if !reflect.DeepEqual(k.Keys(), []uint64{7, 3, 9}) {
		t.Fatalf("keys = %v", k.Keys())
	}
	if k.Resident() != 0 {
		t.Errorf("resident = %d", k.Resident())
	}
	if k.Tier() != memsim.HBM {
		t.Errorf("tier = %v", k.Tier())
	}
	if k.Sorted() {
		t.Error("unsorted input must not claim sortedness")
	}
	if k.NumSources() != 1 {
		t.Errorf("sources = %d", k.NumSources())
	}
	// Extract takes a reference: producer ref + KPA ref.
	if b.RC() != 2 {
		t.Errorf("rc = %d, want 2", b.RC())
	}
	// Pointers resolve to the right rows.
	src, row := k.Deref(k.Pairs()[1].Ptr)
	if src != b || row != 1 {
		t.Error("pointer dereference wrong")
	}
	if !strings.Contains(k.String(), "len=3") {
		t.Errorf("String = %q", k.String())
	}
}

func TestExtractBadColumn(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 2, 3})
	if _, err := Extract(b, 5, e.al); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Extract(b, -1, e.al); err == nil {
		t.Fatal("expected error")
	}
}

func TestExtractAllocFailure(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 0
	pool := mempool.New(cfg, 0)
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 2, 3})
	_, err := Extract(b, 0, FixedAllocator{Pool: pool, T: memsim.HBM})
	if err == nil {
		t.Fatal("expected allocation failure")
	}
}

func TestDestroyReleasesSources(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 2, 3})
	k, _ := Extract(b, 0, e.al)
	st := e.pool.Stats()
	if st.Allocs != 1 {
		t.Fatalf("allocs = %d", st.Allocs)
	}
	k.Destroy()
	if !k.Destroyed() {
		t.Error("not marked destroyed")
	}
	if b.RC() != 1 {
		t.Errorf("rc after destroy = %d, want 1 (producer)", b.RC())
	}
	if e.pool.Stats().Frees != 1 {
		t.Error("slab not freed")
	}
	b.Release() // producer drops: bundle reclaimed
	if e.reg.Live() != 0 {
		t.Error("bundle not unregistered")
	}
}

func TestDoubleDestroyPanics(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 2, 3})
	k, _ := Extract(b, 0, e.al)
	k.Destroy()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Destroy()
}

func TestSortAndKeys(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1}, [3]uint64{3, 30, 2}, [3]uint64{9, 90, 3})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	if !k.Sorted() {
		t.Fatal("not marked sorted")
	}
	if !reflect.DeepEqual(k.Keys(), []uint64{3, 7, 9}) {
		t.Fatalf("keys = %v", k.Keys())
	}
	// Pointers still resolve to rows carrying the matching key.
	for _, p := range k.Pairs() {
		src, row := k.Deref(p.Ptr)
		if src.At(row, 0) != p.Key {
			t.Fatal("pointer/key binding broken")
		}
	}
}

func TestKeySwap(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1}, [3]uint64{3, 30, 2})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	if err := KeySwap(k, 1); err != nil {
		t.Fatal(err)
	}
	if k.Resident() != 1 {
		t.Errorf("resident = %d", k.Resident())
	}
	if k.Sorted() {
		t.Error("keyswap must invalidate sortedness")
	}
	sort.Slice(k.pairs, func(i, j int) bool { return k.pairs[i].Key < k.pairs[j].Key })
	if !reflect.DeepEqual(k.Keys(), []uint64{30, 70}) {
		t.Fatalf("keys = %v", k.Keys())
	}
	if err := KeySwap(k, 9); err == nil {
		t.Fatal("bad column must fail")
	}
}

func TestUpdateKeys(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1}, [3]uint64{3, 30, 2})
	k, _ := Extract(b, 0, e.al)
	UpdateKeys(k, func(key uint64) uint64 { return key * 10 })
	if !reflect.DeepEqual(k.Keys(), []uint64{70, 30}) {
		t.Fatalf("keys = %v", k.Keys())
	}
	if k.Resident() != SyntheticKey {
		t.Error("resident must become synthetic")
	}
}

func TestMaterialize(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1}, [3]uint64{3, 30, 2}, [3]uint64{9, 90, 3})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	out, err := Materialize(k, e.newBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("rows = %d", out.Rows())
	}
	// Sorted order: keys 3, 7, 9 with their full records.
	if out.At(0, 0) != 3 || out.At(0, 1) != 30 || out.At(0, 2) != 2 {
		t.Fatalf("row 0 = %d %d %d", out.At(0, 0), out.At(0, 1), out.At(0, 2))
	}
	if out.At(2, 1) != 90 {
		t.Error("row 2 wrong")
	}
}

func TestMaterializeWritesBackDirtyKeys(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{7, 70, 1})
	k, _ := Extract(b, 0, e.al)
	UpdateKeys(k, func(uint64) uint64 { return 42 })
	// Synthetic keys are not written back (no resident column).
	out, err := Materialize(k, e.newBuilder)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 7 {
		t.Error("synthetic keys must not overwrite columns")
	}
	// But a resident-column in-place update is written back.
	k2, _ := Extract(b, 0, e.al)
	k2.pairs[0].Key = 99
	out2, _ := Materialize(k2, e.newBuilder)
	if out2.At(0, 0) != 99 {
		t.Error("dirty resident key must be written back on materialize")
	}
}

func TestMaterializeEmptyFails(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t) // empty bundle
	k, err := Extract(b, 0, e.al)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(k, e.newBuilder); err == nil {
		t.Fatal("materializing an empty KPA must fail (no schema)")
	}
}

func TestMerge(t *testing.T) {
	e := newEnv()
	b1 := e.bundleOf(t, [3]uint64{5, 50, 1}, [3]uint64{1, 10, 2})
	b2 := e.bundleOf(t, [3]uint64{3, 30, 3}, [3]uint64{7, 70, 4})
	k1, _ := Extract(b1, 0, e.al)
	k2, _ := Extract(b2, 0, e.al)
	Sort(k1)
	Sort(k2)
	m, err := Merge(k1, k2, e.al)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Keys(), []uint64{1, 3, 5, 7}) {
		t.Fatalf("keys = %v", m.Keys())
	}
	if !m.Sorted() {
		t.Error("merge output must be sorted")
	}
	if m.NumSources() != 2 {
		t.Errorf("sources = %d", m.NumSources())
	}
	// RC: producer + k1 + m for b1.
	if b1.RC() != 3 {
		t.Errorf("b1 rc = %d, want 3", b1.RC())
	}
	// Destroying inputs keeps the merge output dereferenceable.
	k1.Destroy()
	k2.Destroy()
	for _, p := range m.Pairs() {
		src, row := m.Deref(p.Ptr)
		if src.At(row, 0) != p.Key {
			t.Fatal("binding broken after input destroy")
		}
	}
}

func TestMergeErrors(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{5, 50, 1}, [3]uint64{1, 10, 2})
	k1, _ := Extract(b, 0, e.al)
	k2, _ := Extract(b, 0, e.al)
	if _, err := Merge(k1, k2, e.al); err == nil {
		t.Fatal("unsorted merge must fail")
	}
	Sort(k1)
	Sort(k2)
	KeySwap(k2, 1)
	Sort(k2)
	if _, err := Merge(k1, k2, e.al); err == nil {
		t.Fatal("mixed-resident merge must fail")
	}
}

func TestJoin(t *testing.T) {
	e := newEnv()
	b1 := e.bundleOf(t, [3]uint64{1, 10, 1}, [3]uint64{2, 20, 2})
	b2 := e.bundleOf(t, [3]uint64{2, 200, 3}, [3]uint64{3, 300, 4})
	k1, _ := Extract(b1, 0, e.al)
	k2, _ := Extract(b2, 0, e.al)
	Sort(k1)
	Sort(k2)
	var rows []JoinRow
	if err := Join(k1, k2, func(r JoinRow) { rows = append(rows, r) }); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("join rows = %d", len(rows))
	}
	if rows[0].Key != 2 {
		t.Errorf("key = %d", rows[0].Key)
	}
	lb, lr := k1.Deref(rows[0].Left)
	rb, rr := k2.Deref(rows[0].Rght)
	if lb.At(lr, 1) != 20 || rb.At(rr, 1) != 200 {
		t.Error("join sides resolve wrong rows")
	}
	// Unsorted join fails.
	k3, _ := Extract(b1, 0, e.al)
	if err := Join(k3, k2, func(JoinRow) {}); err == nil {
		t.Fatal("unsorted join must fail")
	}
}

func TestSelectFromBundle(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 10, 1}, [3]uint64{2, 20, 2}, [3]uint64{3, 30, 3})
	k, err := SelectFromBundle(b, 0, func(v uint64) bool { return v%2 == 1 }, e.al)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k.Keys(), []uint64{1, 3}) {
		t.Fatalf("keys = %v", k.Keys())
	}
	if b.RC() != 2 {
		t.Errorf("rc = %d", b.RC())
	}
	// Empty selection holds no source reference.
	k0, _ := SelectFromBundle(b, 0, func(uint64) bool { return false }, e.al)
	if k0.NumSources() != 0 {
		t.Error("empty selection must not link the bundle")
	}
	if _, err := SelectFromBundle(b, 7, nil, e.al); err == nil {
		t.Fatal("bad column must fail")
	}
}

func TestSelectFromKPA(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 10, 1}, [3]uint64{2, 20, 2}, [3]uint64{4, 40, 3})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	out, err := Select(k, func(v uint64) bool { return v >= 2 }, e.al)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Keys(), []uint64{2, 4}) {
		t.Fatalf("keys = %v", out.Keys())
	}
	if !out.Sorted() {
		t.Error("selection of sorted KPA stays sorted")
	}
}

func TestPartition(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t,
		[3]uint64{1, 10, 5}, [3]uint64{2, 20, 15}, [3]uint64{3, 30, 25}, [3]uint64{4, 40, 8})
	k, _ := Extract(b, 2, e.al) // timestamp column as key
	parts, err := Partition(k, []uint64{10, 20}, e.al)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Len() != 2 || parts[1].Len() != 1 || parts[2].Len() != 1 {
		t.Fatalf("sizes = %d %d %d", parts[0].Len(), parts[1].Len(), parts[2].Len())
	}
	// ts 5 and 8 in part 0.
	if !reflect.DeepEqual(parts[0].Keys(), []uint64{5, 8}) {
		t.Fatalf("part0 = %v", parts[0].Keys())
	}
	// RC: producer + k + 3 partitions referencing (empty parts don't link).
	if b.RC() != 5 {
		t.Errorf("rc = %d, want 5", b.RC())
	}
	k.Destroy()
	for _, p := range parts {
		p.Destroy()
	}
	if b.RC() != 1 {
		t.Errorf("rc after destroy = %d", b.RC())
	}
}

func TestPartitionAllocFailureCleansUp(t *testing.T) {
	cfg := memsim.KNLConfig()
	cfg.Tiers[memsim.HBM].Capacity = 8 << 10 // two 4 KiB classes only
	pool := mempool.New(cfg, 0)
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 10, 5}, [3]uint64{2, 20, 15})
	k, err := Extract(b, 2, FixedAllocator{Pool: pool, T: memsim.HBM})
	if err != nil {
		t.Fatal(err)
	}
	rcBefore := b.RC()
	// 3 partitions need 3 allocations; only 1 class remains.
	_, err = Partition(k, []uint64{10, 20}, FixedAllocator{Pool: pool, T: memsim.HBM})
	if err == nil {
		t.Fatal("expected allocation failure")
	}
	if b.RC() != rcBefore {
		t.Errorf("partial partition leaked references: rc = %d, want %d", b.RC(), rcBefore)
	}
}

func TestReduceByKey(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t,
		[3]uint64{1, 10, 1}, [3]uint64{2, 20, 2}, [3]uint64{1, 30, 3}, [3]uint64{2, 5, 4})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	got := map[uint64]uint64{}
	err := ReduceByKey(k, 1, func() Agg { return &sumAgg{} }, func(key, res uint64) { got[key] = res })
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 40 || got[2] != 25 {
		t.Fatalf("sums = %v", got)
	}
	// Unsorted fails.
	k2, _ := Extract(b, 0, e.al)
	if err := ReduceByKey(k2, 1, func() Agg { return &sumAgg{} }, nil); err == nil {
		t.Fatal("unsorted reduce must fail")
	}
	// Bad column fails.
	if err := ReduceByKey(k, 9, func() Agg { return &sumAgg{} }, func(uint64, uint64) {}); err == nil {
		t.Fatal("bad column must fail")
	}
}

type sumAgg struct{ s uint64 }

func (a *sumAgg) Add(v uint64)   { a.s += v }
func (a *sumAgg) Result() uint64 { return a.s }

func TestReduceByKeyResident(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{2, 0, 1}, [3]uint64{2, 0, 2}, [3]uint64{5, 0, 3})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	counts := map[uint64]uint64{}
	err := ReduceByKeyResident(k, func() Agg { return &countAgg{} }, func(key, res uint64) { counts[key] = res })
	if err != nil {
		t.Fatal(err)
	}
	if counts[2] != 2 || counts[5] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	k2, _ := Extract(b, 0, e.al)
	if err := ReduceByKeyResident(k2, func() Agg { return &countAgg{} }, nil); err == nil {
		t.Fatal("unsorted must fail")
	}
}

type countAgg struct{ n uint64 }

func (a *countAgg) Add(uint64)     { a.n++ }
func (a *countAgg) Result() uint64 { return a.n }

func TestGroupScan(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 0, 1}, [3]uint64{1, 0, 2}, [3]uint64{3, 0, 3})
	k, _ := Extract(b, 0, e.al)
	Sort(k)
	var groups [][3]int
	GroupScan(k, func(key uint64, lo, hi int) { groups = append(groups, [3]int{int(key), lo, hi}) })
	want := [][3]int{{1, 0, 2}, {3, 2, 3}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups = %v", groups)
	}
	k2, _ := Extract(b, 0, e.al)
	if err := GroupScan(k2, nil); err == nil {
		t.Fatal("unsorted must fail")
	}
}

func TestReduceAll(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 10, 1}, [3]uint64{2, 20, 2})
	k, _ := Extract(b, 0, e.al)
	agg := &sumAgg{}
	if err := ReduceAll(k, 1, agg); err != nil {
		t.Fatal(err)
	}
	if agg.Result() != 30 {
		t.Fatalf("sum = %d", agg.Result())
	}
	if err := ReduceAll(k, 9, &sumAgg{}); err == nil {
		t.Fatal("bad column must fail")
	}
}

func TestDerefDanglingPanics(t *testing.T) {
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 10, 1})
	k, _ := Extract(b, 0, e.al)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Deref(PackPtr(9999, 0))
}

func TestTable2PrimitiveAccessPatterns(t *testing.T) {
	// Asserts the demand helpers attached to primitives match Table 2's
	// Sequential/Random column.
	e := newEnv()
	b := e.bundleOf(t, [3]uint64{1, 10, 1}, [3]uint64{2, 20, 2})
	k, _ := Extract(b, 0, e.al)
	hasRandom := func(d memsim.Demand) bool {
		for _, p := range d.Phases {
			if p.Bytes > 0 && p.Pattern == memsim.Random {
				return true
			}
		}
		return false
	}
	seq := map[string]memsim.Demand{
		"Extract":   ExtractDemand(b, memsim.HBM),
		"Sort":      SortDemand(k),
		"Merge":     MergeDemand(k, k),
		"Join":      JoinDemand(k, k, 2, 24),
		"Select":    SelectDemand(k),
		"Partition": PartitionDemand(k),
	}
	for name, d := range seq {
		if hasRandom(d) {
			t.Errorf("%s must be sequential (Table 2)", name)
		}
	}
	rnd := map[string]memsim.Demand{
		"Materialize": MaterializeDemand(k, 24),
		"KeySwap":     KeySwapDemand(k),
		"ReduceKeyed": ReduceKeyedDemand(k),
	}
	for name, d := range rnd {
		if !hasRandom(d) {
			t.Errorf("%s must include random access (Table 2)", name)
		}
	}
}

// Property: Extract -> Sort -> Materialize yields exactly the input rows
// reordered by key.
func TestPropExtractSortMaterialize(t *testing.T) {
	f := func(raw [][3]uint64) bool {
		if len(raw) == 0 {
			return true
		}
		e := newEnv()
		rows := make([][3]uint64, len(raw))
		copy(rows, raw)
		b := e.bundleOf(nil, rows...)
		k, err := Extract(b, 0, e.al)
		if err != nil {
			return false
		}
		Sort(k)
		out, err := Materialize(k, e.newBuilder)
		if err != nil {
			return false
		}
		if out.Rows() != len(rows) {
			return false
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
		for i := range rows {
			if out.At(i, 0) != rows[i][0] {
				return false
			}
		}
		// Multiset of (value, ts) per key preserved.
		wantVals := map[uint64]int{}
		gotVals := map[uint64]int{}
		for _, r := range raw {
			wantVals[r[1]]++
		}
		for i := 0; i < out.Rows(); i++ {
			gotVals[out.At(i, 1)]++
		}
		return reflect.DeepEqual(wantVals, gotVals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of merges, every source bundle's RC
// equals 1 (producer) + number of live KPAs referencing it; destroying
// all KPAs returns RC to 1.
func TestPropMergeRefcountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := newEnv()
		var bundles []*bundle.Bundle
		var live []*KPA
		for i := 0; i < 4; i++ {
			rows := make([][3]uint64, r.Intn(5)+1)
			for j := range rows {
				rows[j] = [3]uint64{r.Uint64() % 10, r.Uint64() % 100, uint64(j)}
			}
			b := e.bundleOf(nil, rows...)
			bundles = append(bundles, b)
			k, err := Extract(b, 0, e.al)
			if err != nil {
				t.Fatal(err)
			}
			Sort(k)
			live = append(live, k)
		}
		for len(live) > 1 {
			m, err := Merge(live[0], live[1], e.al)
			if err != nil {
				t.Fatal(err)
			}
			live[0].Destroy()
			live[1].Destroy()
			live = append(live[2:], m)
		}
		// Exactly one KPA referencing all bundles.
		for _, b := range bundles {
			if b.RC() != 2 {
				t.Fatalf("trial %d: rc = %d, want 2", trial, b.RC())
			}
		}
		live[0].Destroy()
		for _, b := range bundles {
			if b.RC() != 1 {
				t.Fatalf("trial %d: rc after destroy = %d, want 1", trial, b.RC())
			}
		}
	}
}

// Property: Partition conserves pairs and keeps every pair in range.
func TestPropPartitionConserves(t *testing.T) {
	f := func(tss []uint16, b1, b2 uint16) bool {
		if len(tss) == 0 {
			return true
		}
		e := newEnv()
		rows := make([][3]uint64, len(tss))
		for i, ts := range tss {
			rows[i] = [3]uint64{uint64(i), 0, uint64(ts)}
		}
		b := e.bundleOf(nil, rows...)
		k, err := Extract(b, 2, e.al)
		if err != nil {
			return false
		}
		lo, hi := uint64(b1), uint64(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			hi++
		}
		parts, err := Partition(k, []uint64{lo, hi}, e.al)
		if err != nil {
			return false
		}
		total := 0
		for i, p := range parts {
			total += p.Len()
			for _, key := range p.Keys() {
				if i == 0 && key >= lo {
					return false
				}
				if i == 1 && (key < lo || key >= hi) {
					return false
				}
				if i == 2 && key < hi {
					return false
				}
			}
		}
		return total == len(tss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
