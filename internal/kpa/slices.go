package kpa

import (
	"fmt"

	"streambox/internal/algo"
)

// MergeSlice is one independently mergeable segment of a two-way merge:
// rows [ALo,AHi) of the left input and [BLo,BHi) of the right input
// land at [OutLo, OutLo+width) of the output. Slices are computed at
// key boundaries so segments can merge in parallel (paper §4.2: "the
// threads slice chunks at key boundaries to parallelize the task of
// merging fewer, but larger chunks").
type MergeSlice struct {
	ALo, AHi int
	BLo, BHi int
	OutLo    int
}

// Len returns the slice's output width.
func (s MergeSlice) Len() int { return (s.AHi - s.ALo) + (s.BHi - s.BLo) }

// MergeSlices partitions the merge of sorted KPAs a and b into up to p
// balanced slices.
func MergeSlices(a, b *KPA, p int) ([]MergeSlice, error) {
	if !a.sorted || !b.sorted {
		return nil, fmt.Errorf("kpa: merge slicing requires sorted inputs")
	}
	na, nb := a.Len(), b.Len()
	total := na + nb
	if p < 1 {
		p = 1
	}
	if p > total {
		p = total
	}
	if total == 0 {
		return nil, nil
	}
	pa, pb := a.pairs, b.pairs
	var out []MergeSlice
	prevA, prevB := 0, 0
	for i := 1; i <= p; i++ {
		k := i * total / p
		// Constraining the search to ai >= prevA keeps slices monotone
		// even when equal keys admit several valid splits.
		ai := kthSplit(pa, pb, k, prevA)
		bi := k - ai
		if bi < prevB { // ties resolved leftward: clamp to monotone
			bi = prevB
			ai = k - bi
		}
		if ai == prevA && bi == prevB {
			continue // empty slice after rounding
		}
		out = append(out, MergeSlice{
			ALo: prevA, AHi: ai,
			BLo: prevB, BHi: bi,
			OutLo: prevA + prevB,
		})
		prevA, prevB = ai, bi
	}
	return out, nil
}

// kthSplit returns ai >= minA such that taking a[:ai] and b[:k-ai]
// yields k smallest elements of the merge (ties resolved consistently).
func kthSplit(a, b []algo.Pair, k, minA int) int {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	if lo < minA {
		lo = minA
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		ai := (lo + hi) / 2
		bi := k - ai
		// Valid split: a[ai-1] <= b[bi] and b[bi-1] <= a[ai].
		if ai > 0 && bi < len(b) && a[ai-1].Key > b[bi].Key {
			hi = ai - 1
			continue
		}
		if bi > 0 && ai < len(a) && b[bi-1].Key > a[ai].Key {
			lo = ai + 1
			continue
		}
		return ai
	}
	return lo
}

// NewMergeTarget allocates the output KPA for a sliced merge of a and
// b: full length, sources inherited, marked sorted (segments fill it).
func NewMergeTarget(a, b *KPA, al Allocator) (*KPA, error) {
	if !a.sorted || !b.sorted {
		return nil, fmt.Errorf("kpa: merge requires sorted inputs")
	}
	if a.resident != b.resident {
		return nil, fmt.Errorf("kpa: merge of different resident columns (%d vs %d)", a.resident, b.resident)
	}
	out, err := newKPA(a.Len()+b.Len(), a.resident, al)
	if err != nil {
		return nil, err
	}
	out.pairs = out.pairs[:a.Len()+b.Len()]
	out.inheritSources(a)
	out.inheritSources(b)
	out.sorted = true
	return out, nil
}

// MergeSegment merges one slice of a and b into out (safe to run from
// distinct tasks on disjoint slices).
func MergeSegment(out, a, b *KPA, s MergeSlice) {
	algo.MergeInto(out.pairs[s.OutLo:s.OutLo+s.Len()], a.pairs[s.ALo:s.AHi], b.pairs[s.BLo:s.BHi])
}

// KeyAlignedCuts returns up to p+1 ascending cut positions over a
// sorted KPA such that no key group spans a cut — the slice points for
// range-parallel keyed reduction.
func KeyAlignedCuts(k *KPA, p int) ([]int, error) {
	if !k.sorted {
		return nil, fmt.Errorf("kpa: key-aligned cuts require a sorted KPA")
	}
	n := k.Len()
	if p < 1 {
		p = 1
	}
	cuts := []int{0}
	for i := 1; i < p; i++ {
		pos := i * n / p
		// Advance past the current key group.
		for pos > 0 && pos < n && k.pairs[pos].Key == k.pairs[pos-1].Key {
			pos++
		}
		if pos > cuts[len(cuts)-1] && pos < n {
			cuts = append(cuts, pos)
		}
	}
	if n > 0 || len(cuts) == 1 {
		cuts = append(cuts, n)
	}
	return cuts, nil
}

// ReduceByKeyRange performs keyed reduction over rows [lo,hi) of a
// sorted KPA; the range must be key-aligned (see KeyAlignedCuts).
func ReduceByKeyRange(k *KPA, lo, hi, valCol int, factory AggFactory, emit func(key, result uint64)) error {
	if !k.sorted {
		return fmt.Errorf("kpa: keyed reduction requires a sorted KPA")
	}
	if lo < 0 || hi > k.Len() || lo > hi {
		return fmt.Errorf("kpa: reduce range [%d,%d) out of bounds", lo, hi)
	}
	for i := lo; i < hi; {
		key := k.pairs[i].Key
		agg := factory()
		for i < hi && k.pairs[i].Key == key {
			if k.vals {
				agg.Add(k.pairs[i].Ptr)
			} else {
				src, r := k.Deref(k.pairs[i].Ptr)
				if valCol < 0 || valCol >= src.Schema().NumCols {
					return fmt.Errorf("kpa: reduce value column %d out of range", valCol)
				}
				agg.Add(src.At(r, valCol))
			}
			i++
		}
		emit(key, agg.Result())
	}
	return nil
}
