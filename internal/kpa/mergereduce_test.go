package kpa

import (
	"math/rand"
	"sync"
	"testing"

	"streambox/internal/algo"
	"streambox/internal/bundle"
	"streambox/internal/memsim"
)

// orderAgg is an order-sensitive aggregator (a rolling polynomial hash
// of the value sequence): any difference in the order values reach the
// aggregator changes the result, so equivalence checks with it pin the
// fused path's visit order bit-for-bit against the pairwise tree.
type orderAgg struct{ h uint64 }

func (a *orderAgg) Add(v uint64)   { a.h = a.h*1099511628211 + v }
func (a *orderAgg) Result() uint64 { return a.h }
func newOrderAgg() Agg             { return &orderAgg{h: 14695981039346656037} }

// newSumAgg reuses kpa_test.go's sumAgg.
func newSumAgg() Agg { return &sumAgg{} }

type kv struct{ key, val uint64 }

// buildRuns creates nRuns sorted KPAs over fresh bundles with skewed
// duplicate-heavy keys (zipf-ish low domain plus a sprinkle of unique
// high keys). Each run draws from its own bundle, like first-level runs
// in the native runtime.
func buildRuns(t testing.TB, reg *bundle.Registry, al Allocator, r *rand.Rand, nRuns, maxLen int) []*KPA {
	t.Helper()
	runs := make([]*KPA, nRuns)
	for j := range runs {
		n := 1 + r.Intn(maxLen)
		bd, err := reg.NewBuilder(bundle.Schema{NumCols: 3, TsCol: 2}, n, memsim.DRAM)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			var key uint64
			if r.Intn(8) == 0 {
				key = r.Uint64() // occasional unique key
			} else {
				key = r.Uint64() % 37 // heavy duplication
			}
			if err := bd.Append(key, r.Uint64()%1000, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		b := bd.Seal()
		k, err := Extract(b, 0, al)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
		Sort(k)
		runs[j] = k
	}
	return runs
}

// pairwiseTreeReduce is the old close path: levelwise pairwise merges
// (odd run passing through at the end of each level, exactly as the
// runtime's merge tree paired them) materializing a KPA per merge, then
// one separate ReduceByKey sweep over the survivor.
func pairwiseTreeReduce(t testing.TB, runs []*KPA, al Allocator, valCol int, factory AggFactory) []kv {
	t.Helper()
	cur := append([]*KPA(nil), runs...)
	var intermediates []*KPA
	for len(cur) > 1 {
		next := make([]*KPA, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			m, err := Merge(cur[i], cur[i+1], al)
			if err != nil {
				t.Fatal(err)
			}
			intermediates = append(intermediates, m)
			next = append(next, m)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	var out []kv
	if len(cur) == 1 {
		if err := ReduceByKey(cur[0], valCol, factory, func(k, v uint64) {
			out = append(out, kv{k, v})
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range intermediates {
		m.Destroy()
	}
	return out
}

// fusedReduce closes the runs with the fused path: key-aligned cuts,
// then one MergeReduceRange per partition — run concurrently here so
// the race detector exercises the shared read-only runs — concatenated
// in partition order.
func fusedReduce(t testing.TB, runs []*KPA, p, valCol int, factory AggFactory) []kv {
	t.Helper()
	cuts, err := MergeCuts(runs, p)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]kv, len(cuts)-1)
	var wg sync.WaitGroup
	for i := 0; i+1 < len(cuts); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := MergeReduceRange(runs, cuts[i], cuts[i+1], valCol, factory, func(k, v uint64) {
				parts[i] = append(parts[i], kv{k, v})
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	var out []kv
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// TestMergeReduceEquivalence pins the fused range-partitioned
// merge-reduce bit-for-bit against the pairwise tree + separate reduce
// across run counts (including 1, 2 and just past the fan-in cap),
// partition counts and an order-sensitive aggregator.
func TestMergeReduceEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	al := NoopAllocator{T: memsim.HBM}
	for _, nRuns := range []int{1, 2, 3, 8, 16, 33} {
		reg := bundle.NewRegistry()
		runs := buildRuns(t, reg, al, r, nRuns, 4000)
		for _, factory := range []AggFactory{newSumAgg, newOrderAgg} {
			want := pairwiseTreeReduce(t, runs, al, 1, factory)
			for _, p := range []int{1, 3, 8} {
				got := fusedReduce(t, runs, p, 1, factory)
				if len(got) != len(want) {
					t.Fatalf("runs=%d p=%d: %d results, want %d", nRuns, p, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("runs=%d p=%d: result %d = %+v, pairwise tree has %+v",
							nRuns, p, i, got[i], want[i])
					}
				}
			}
		}
		for _, k := range runs {
			k.Destroy()
		}
	}
}

// TestMergeKEquivalence checks the fan-in-capping materializer produces
// the identical KPA the pairwise tree would.
func TestMergeKEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	al := NoopAllocator{T: memsim.DRAM}
	for _, nRuns := range []int{2, 5, 32} {
		reg := bundle.NewRegistry()
		runs := buildRuns(t, reg, al, r, nRuns, 1000)
		segs := make([][]algo.Pair, len(runs))
		for j, k := range runs {
			segs[j] = k.Pairs()
		}
		want := algo.MultiMerge(segs)
		merged, err := MergeK(runs, al)
		if err != nil {
			t.Fatal(err)
		}
		if !merged.Sorted() || merged.Len() != len(want) {
			t.Fatalf("runs=%d: merged len=%d sorted=%v, want len=%d sorted",
				nRuns, merged.Len(), merged.Sorted(), len(want))
		}
		for i, p := range merged.Pairs() {
			if p != want[i] {
				t.Fatalf("runs=%d: pair %d = %+v, want %+v", nRuns, i, p, want[i])
			}
		}
		if merged.NumSources() == 0 {
			t.Fatal("merged KPA lost its bundle links")
		}
		merged.Destroy()
		for _, k := range runs {
			k.Destroy()
		}
	}
}

// TestMergeReduceValidation covers the error paths: unsorted input,
// mismatched cut vectors, out-of-range value column.
func TestMergeReduceValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	al := NoopAllocator{T: memsim.DRAM}
	reg := bundle.NewRegistry()
	runs := buildRuns(t, reg, al, r, 2, 100)
	cuts, err := MergeCuts(runs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeReduceRange(runs, cuts[0], cuts[0][:1], 1, newSumAgg, func(uint64, uint64) {}); err == nil {
		t.Fatal("short cut vector must fail")
	}
	if err := MergeReduceRange(runs, cuts[0], cuts[len(cuts)-1], 99, newSumAgg, func(uint64, uint64) {}); err == nil {
		t.Fatal("out-of-range value column must fail")
	}
	if _, err := MergeK(nil, al); err == nil {
		t.Fatal("zero-run merge must fail")
	}
	runs[0].sorted = false
	if _, err := MergeCuts(runs, 2); err == nil {
		t.Fatal("unsorted run must fail")
	}
	runs[0].sorted = true
	for _, k := range runs {
		k.Destroy()
	}
}

// BenchmarkMergeReduce closes a window of 16 sorted runs x 64k pairs
// both ways: the fused range-partitioned merge-reduce (one streaming
// pass, zero intermediate KPAs) against the pairwise merge tree + a
// separate reduce sweep (log2(16) = 4 materializing levels). Both run
// single-threaded so the metric isolates the kernel, not scheduling.
func BenchmarkMergeReduce(b *testing.B) {
	const (
		nRuns  = 16
		runLen = 64 << 10
	)
	r := rand.New(rand.NewSource(7))
	al := NoopAllocator{T: memsim.HBM}
	reg := bundle.NewRegistry()
	runs := make([]*KPA, nRuns)
	for j := range runs {
		bd, err := reg.NewBuilder(bundle.Schema{NumCols: 3, TsCol: 2}, runLen, memsim.DRAM)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < runLen; i++ {
			if err := bd.Append(r.Uint64()%(1<<14), r.Uint64()%1000, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		bb := bd.Seal()
		k, err := Extract(bb, 0, al)
		if err != nil {
			b.Fatal(err)
		}
		bb.Release()
		Sort(k)
		runs[j] = k
	}
	total := float64(nRuns * runLen)
	sink := uint64(0)

	b.Run("fused", func(b *testing.B) {
		cuts, err := MergeCuts(runs, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := MergeReduceRange(runs, cuts[0], cuts[1], 1, newSumAgg, func(k, v uint64) {
				sink += k ^ v
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(total*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
	})
	b.Run("pairwise", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := pairwiseTreeReduce(b, runs, al, 1, newSumAgg)
			sink += uint64(len(out))
		}
		b.ReportMetric(total*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
	})
	_ = sink
	for _, k := range runs {
		k.Destroy()
	}
}
