package kpa

import (
	"fmt"
	"sync"
	"testing"

	"streambox/internal/bundle"
	"streambox/internal/memsim"
	"streambox/internal/spill"
)

// The order-sensitive orderAgg/newOrderAgg from mergereduce_test.go
// makes any reordering between evaluation strategies visible.

func emitKey(k, v uint64) string { return fmt.Sprintf("%d=%d", k, v) }

func TestEvictLoadRoundTrip(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	f, err := spill.Create(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool.AttachSpill(f)

	reg := bundle.NewRegistry()
	keys := make([]uint64, 600)
	for i := range keys {
		keys[i] = uint64(i * 37 % 101)
	}
	k := sortedKPA(t, reg, al, keys)

	// Capture the expected (key, value) sequence before eviction.
	type kv struct{ key, val uint64 }
	want := make([]kv, k.Len())
	for i, p := range k.Pairs() {
		b, row := k.Deref(p.Ptr)
		want[i] = kv{p.Key, b.At(row, 1)}
	}

	freed, err := k.Evict(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	if freed != int64(len(keys))*memsim.PairBytes {
		t.Fatalf("freed %d bytes, want %d", freed, int64(len(keys))*memsim.PairBytes)
	}
	if !k.Spilled() || !k.ValuesResident() {
		t.Fatalf("after evict: spilled=%v vals=%v", k.Spilled(), k.ValuesResident())
	}
	if k.NumSources() != 0 {
		t.Fatalf("evicted run still links %d bundles", k.NumSources())
	}
	if got := pool.Used(memsim.HBM); got != 0 {
		t.Fatalf("HBM used %d after evict, want 0", got)
	}
	if pool.Used(memsim.Spill) == 0 || f.Used() == 0 {
		t.Fatal("spill tier shows no usage after evict")
	}
	for i, p := range k.Pairs() {
		if p.Key != want[i].key || p.Ptr != want[i].val {
			t.Fatalf("spilled pair %d = %+v, want %+v", i, p, want[i])
		}
	}
	// Double evict is a no-op.
	if freed, err := k.Evict(pool, 1); err != nil || freed != 0 {
		t.Fatalf("second evict: freed=%d err=%v", freed, err)
	}

	loaded, err := k.EnsureResident(al)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("EnsureResident reported no load for a spilled run")
	}
	if k.Spilled() {
		t.Fatal("still spilled after EnsureResident")
	}
	if k.Tier() != memsim.HBM {
		t.Fatalf("loaded to %v, want HBM", k.Tier())
	}
	if got := pool.Used(memsim.Spill); got != 0 {
		t.Fatalf("spill used %d after load, want 0", got)
	}
	for i, p := range k.Pairs() {
		if p.Key != want[i].key || p.Ptr != want[i].val {
			t.Fatalf("loaded pair %d = %+v, want %+v", i, p, want[i])
		}
	}

	k.Destroy()
	if got := pool.Used(memsim.HBM); got != 0 {
		t.Fatalf("HBM used %d after destroy, want 0", got)
	}
}

// TestMergeReduceMixedResidency pins the tentpole's correctness claim
// at the kpa level: a fused merge-reduce over a mix of spilled
// (value-resident) and in-memory (pointer) runs emits bit-identical
// results to the all-in-memory merge, even for an order-sensitive
// aggregator.
func TestMergeReduceMixedResidency(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	f, err := spill.Create(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool.AttachSpill(f)

	reg := bundle.NewRegistry()
	mkKeys := func(seed int) []uint64 {
		keys := make([]uint64, 400)
		for i := range keys {
			keys[i] = uint64((i*seed + seed) % 53)
		}
		return keys
	}
	runs := []*KPA{
		sortedKPA(t, reg, al, mkKeys(7)),
		sortedKPA(t, reg, al, mkKeys(11)),
		sortedKPA(t, reg, al, mkKeys(13)),
	}

	collect := func() []string {
		var out []string
		lo := []int{0, 0, 0}
		hi := []int{runs[0].Len(), runs[1].Len(), runs[2].Len()}
		if err := MergeReduceRange(runs, lo, hi, 1, newOrderAgg, func(k, v uint64) {
			out = append(out, emitKey(k, v))
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := collect()
	if _, err := runs[1].Evict(pool, 1); err != nil {
		t.Fatal(err)
	}
	got := collect()
	if len(got) != len(want) {
		t.Fatalf("emitted %d groups with spilled run, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d: %s, want %s", i, got[i], want[i])
		}
	}
	for _, r := range runs {
		r.Destroy()
	}
}

// TestMergeHomogeneity: materializing merges (MergeK, Merge) refuse
// mixed pointer/value-resident inputs, and succeed once the inputs are
// converted to one mode.
func TestMergeHomogeneity(t *testing.T) {
	al, pool := poolAllocator(t, memsim.DRAM)
	f, err := spill.Create(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool.AttachSpill(f)

	reg := bundle.NewRegistry()
	a := sortedKPA(t, reg, al, []uint64{1, 3, 5})
	b := sortedKPA(t, reg, al, []uint64{2, 4, 6})
	if _, err := a.Evict(pool, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeK([]*KPA{a, b}, al); err == nil {
		t.Fatal("MergeK accepted mixed residency")
	}
	if _, err := Merge(a, b, al); err == nil {
		t.Fatal("Merge accepted mixed residency")
	}
	if err := b.MaterializeValues(1); err != nil {
		t.Fatal(err)
	}
	m, err := MergeK([]*KPA{a, b}, al)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ValuesResident() {
		t.Fatal("merged output of value-resident runs is not value-resident")
	}
	m.Destroy()
	a.Destroy()
	b.Destroy()
}

// TestCloneValuesLeavesSharedRunIntact: the shared-run conversion path
// copies; the original keeps its pointers and sources.
func TestCloneValuesLeavesSharedRunIntact(t *testing.T) {
	al, _ := poolAllocator(t, memsim.DRAM)
	reg := bundle.NewRegistry()
	k := sortedKPA(t, reg, al, []uint64{9, 1, 5, 1})
	c, err := k.CloneValues(1, al)
	if err != nil {
		t.Fatal(err)
	}
	if k.ValuesResident() || k.NumSources() == 0 {
		t.Fatal("CloneValues mutated the original")
	}
	if !c.ValuesResident() || c.NumSources() != 0 {
		t.Fatal("clone is not value-resident")
	}
	if c.Len() != k.Len() || c.Sorted() != k.Sorted() || c.Meta() != k.Meta() {
		t.Fatal("clone shape mismatch")
	}
	for i, p := range k.Pairs() {
		b, row := k.Deref(p.Ptr)
		if c.Pairs()[i].Key != p.Key || c.Pairs()[i].Ptr != b.At(row, 1) {
			t.Fatalf("clone pair %d mismatch", i)
		}
	}
	c.Destroy()
	k.Destroy()
}

// TestConcurrentEnsureResident: many closes demanding the same spilled
// pane run load it exactly once.
func TestConcurrentEnsureResident(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	f, err := spill.Create(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool.AttachSpill(f)

	reg := bundle.NewRegistry()
	k := sortedKPA(t, reg, al, make([]uint64, 256))
	if _, err := k.Evict(pool, 1); err != nil {
		t.Fatal(err)
	}
	before := pool.Stats().Allocs

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := k.EnsureResident(al); err != nil {
				t.Error(err)
			}
			// Post-load read: every caller must see the loaded pairs.
			if len(k.Pairs()) != 256 {
				t.Error("short pairs after load")
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := pool.Stats().Allocs - before; got != 1 {
		t.Fatalf("%d allocations for one shared load, want 1", got)
	}
	k.Destroy()
}
