package kpa

import (
	"sync"
	"testing"

	"streambox/internal/bundle"
	"streambox/internal/memsim"
)

// TestRetainDestroyCounts: a KPA retained N-1 extra times survives N-1
// destroys and frees on the Nth; pool accounting returns to zero and
// the slab is recycled exactly once.
func TestRetainDestroyCounts(t *testing.T) {
	al, pool := poolAllocator(t, memsim.HBM)
	reg := bundle.NewRegistry()
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(i * 31 % 257)
	}
	k := sortedKPA(t, reg, al, keys)
	const refs = 4
	k.Retain(refs - 1)
	if got := k.Refs(); got != refs {
		t.Fatalf("refs = %d, want %d", got, refs)
	}
	for i := 0; i < refs-1; i++ {
		if k.Destroy() {
			t.Fatalf("destroy %d freed the KPA with %d references outstanding", i, refs-1-i)
		}
		if k.Destroyed() {
			t.Fatal("KPA reports destroyed while references remain")
		}
		if pool.Used(memsim.HBM) == 0 {
			t.Fatal("slab freed while references remain")
		}
	}
	if !k.Destroy() {
		t.Fatal("final destroy must free the KPA")
	}
	if !k.Destroyed() {
		t.Fatal("KPA must report destroyed after the final release")
	}
	if got := pool.Used(memsim.HBM); got != 0 {
		t.Fatalf("pool used = %d after final destroy, want 0", got)
	}
	st := pool.Stats()
	if st.Frees != st.Allocs {
		t.Fatalf("frees %d != allocs %d: a shared run freed more or less than once", st.Frees, st.Allocs)
	}
}

// TestRetainAfterDestroyPanics: minting a reference on a dead KPA must
// fail loudly, like double destroy.
func TestRetainAfterDestroyPanics(t *testing.T) {
	al, _ := poolAllocator(t, memsim.DRAM)
	reg := bundle.NewRegistry()
	k := sortedKPA(t, reg, al, []uint64{3, 1, 2})
	k.Destroy()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain on a destroyed KPA must panic")
		}
	}()
	k.Retain(1)
}

// TestOverReleasePanics: releasing more references than were held must
// panic instead of double-freeing a recycled slab.
func TestOverReleasePanics(t *testing.T) {
	al, _ := poolAllocator(t, memsim.DRAM)
	reg := bundle.NewRegistry()
	k := sortedKPA(t, reg, al, []uint64{5, 4})
	k.Retain(1)
	k.Destroy()
	k.Destroy()
	defer func() {
		if recover() == nil {
			t.Fatal("third destroy of a twice-referenced KPA must panic")
		}
	}()
	k.Destroy()
}

// TestSharedRunConcurrentDestroy hammers the pane-sharing shape under
// -race: many shared runs, each referenced by `windows` concurrent
// closers that read the run's pairs (a stand-in for the fused merge)
// and then release their reference. Every slab must return to the pool
// exactly once — frees match allocs, used bytes drop to zero, and
// exactly one closer per run observes the final free.
func TestSharedRunConcurrentDestroy(t *testing.T) {
	const (
		runs    = 64
		windows = 7
		pairs   = 1024
	)
	al, pool := poolAllocator(t, memsim.HBM)
	reg := bundle.NewRegistry()
	keys := make([]uint64, pairs)
	for i := range keys {
		keys[i] = uint64(i*2654435761) % 1000
	}

	shared := make([]*KPA, runs)
	for i := range shared {
		shared[i] = sortedKPA(t, reg, al, keys)
		shared[i].Retain(windows - 1)
	}

	finals := make([]int, runs) // writes guarded by the exactly-once property
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < windows; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i, k := range shared {
				// Read the shared pairs before releasing — the reference
				// must keep the slab alive under every sibling's release.
				var sum uint64
				for _, p := range k.Pairs() {
					sum += p.Key
				}
				if sum == 0 {
					t.Error("shared run read empty pairs while holding a reference")
				}
				if k.Destroy() {
					finals[i]++ // only the last release may write
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	for i, n := range finals {
		if n != 1 {
			t.Fatalf("run %d freed %d times, want exactly 1", i, n)
		}
	}
	if got := pool.Used(memsim.HBM); got != 0 {
		t.Fatalf("pool used = %d after all windows closed, want 0", got)
	}
	st := pool.Stats()
	if st.Frees != st.Allocs {
		t.Fatalf("frees %d != allocs %d: shared runs must free exactly once", st.Frees, st.Allocs)
	}
}
