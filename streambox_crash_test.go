package streambox_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	streambox "streambox"
	"streambox/internal/faultinject"
	"streambox/internal/netio"
	"streambox/internal/parsefmt"
)

// crashHelperOut is what the recovered server subprocess reports back
// to the parent test.
type crashHelperOut struct {
	Windows []streambox.WindowResult `json:"windows"`
	Report  streambox.Report         `json:"report"`
}

// TestCrashHelperServer is not a test of its own: it is the server
// subprocess of TestCrashRecoveryEquivalence, re-executed from the
// test binary so a real SIGKILL can take the whole process down. In
// "crash" mode it serves with a WAL and a process-crash fault injector
// armed; in "recover" mode it recovers from the WAL directory, serves
// until SIGTERM, then drains and writes its final windows and report
// as JSON.
func TestCrashHelperServer(t *testing.T) {
	if os.Getenv("SBX_CRASH_HELPER") == "" {
		t.Skip("subprocess helper for TestCrashRecoveryEquivalence")
	}
	mode := os.Getenv("SBX_CRASH_MODE")
	sc := &streambox.ServeConfig{
		IngestAddr:  os.Getenv("SBX_CRASH_ADDR"),
		KeepWindows: 32,
		// No cursor may park or expire across the crash window, or the
		// equivalence check would race the reaper.
		CursorGrace:        time.Minute,
		SessionTimeout:     5 * time.Minute,
		CheckpointInterval: 50 * time.Millisecond,
		// Small segments so the run exercises rolling and checkpoint
		// retirement, not just a single open segment.
		WALSegmentBytes: 256 << 10,
	}
	switch mode {
	case "crash":
		var crashBytes int64
		fmt.Sscan(os.Getenv("SBX_CRASH_BYTES"), &crashBytes)
		sc.WALDir = os.Getenv("SBX_CRASH_DIR")
		sc.Faults = faultinject.New(faultinject.Config{CrashAfterBytes: crashBytes, Seed: 7})
	case "recover":
		sc.RecoverDir = os.Getenv("SBX_CRASH_DIR")
	default:
		t.Fatalf("bad SBX_CRASH_MODE %q", mode)
	}

	p, _ := netPipeline()
	srv, err := streambox.Serve(p, streambox.RunConfig{Backend: streambox.Native, Serve: sc})
	if err != nil {
		t.Fatalf("serve (%s): %v", mode, err)
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM)
	select {
	case <-sigC:
	case <-time.After(2 * time.Minute):
		os.Exit(3) // crash mode should have been SIGKILLed long ago
	}
	rep, err := srv.DrainShutdown(30 * time.Second)
	if err != nil {
		t.Fatalf("drain (%s): %v", mode, err)
	}
	b, err := json.Marshal(crashHelperOut{Windows: srv.Results(), Report: rep})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("SBX_CRASH_OUT"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryEquivalence is the acceptance test for the
// durability layer: clients stream a deterministic workload into a
// WAL-enabled server that SIGKILLs itself mid-run, a second server
// recovers from the log and checkpoint on the same address, the
// clients resume their sessions and finish — and the final per-window
// results are bit-identical to the fault-free in-process generator
// run. No record lost to the crash, none double-counted by the
// client replay + log replay overlap.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	const (
		total = 60_000
		conns = 3
	)
	gen := netio.RecordGen{Keys: 50, WindowRecords: 6_000} // 10 windows, value 1

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	outFile := filepath.Join(dir, "out.json")

	// Pre-pick a fixed port both server incarnations bind, so the
	// clients' reconnect loop redials one stable address across the
	// crash.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	helper := func(mode string, extra ...string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperServer$")
		cmd.Env = append(os.Environ(),
			"SBX_CRASH_HELPER=1",
			"SBX_CRASH_MODE="+mode,
			"SBX_CRASH_ADDR="+addr,
			"SBX_CRASH_DIR="+walDir,
			"SBX_CRASH_OUT="+outFile,
		)
		cmd.Env = append(cmd.Env, extra...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd
	}
	waitListening := func(who string) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
			if err == nil {
				c.Close()
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s server never started listening on %s", who, addr)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 1: the crashing server. ~3.5 MB of wire traffic total; the
	// injector SIGKILLs the process after ~1.5 MB read — mid-stream,
	// mid-window, with sealed and unsealed windows on disk.
	crash := helper("crash", "SBX_CRASH_BYTES=1500000")
	if err := crash.Start(); err != nil {
		t.Fatal(err)
	}
	waitListening("crash-mode")

	clients := make([]*netio.Client, conns)
	for j := range clients {
		c, err := netio.Dial(addr, netio.ClientConfig{
			Format:       parsefmt.Columnar,
			FrameRecords: 256,
			Reconnect: &netio.ReconnectConfig{
				MaxRetries: 2000,
				BaseDelay:  5 * time.Millisecond,
				MaxDelay:   100 * time.Millisecond,
				Seed:       uint64(j + 1),
			},
		})
		if err != nil {
			t.Fatalf("conn %d: dial: %v", j, err)
		}
		if !c.Session() {
			t.Fatalf("conn %d did not negotiate a resumable session", j)
		}
		clients[j] = c
	}
	var wg sync.WaitGroup
	for j := 0; j < conns; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sendPartition(t, clients[j], gen, j, conns, total)
		}(j)
	}

	// The server kills itself; a clean exit means the injector never
	// fired and the test exercised nothing.
	err = crash.Wait()
	if crash.ProcessState.Success() {
		t.Fatal("crash-mode server exited cleanly; the crash injector never fired")
	}
	if ws, ok := crash.ProcessState.Sys().(syscall.WaitStatus); ok && ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crash-mode server died of %v, want SIGKILL (err %v)", ws.Signal(), err)
	}

	// Phase 2: recover on the same address while the clients are mid
	// reconnect-retry. They resume their sessions at the durable ack
	// and stream the rest.
	rec := helper("recover")
	if err := rec.Start(); err != nil {
		t.Fatal(err)
	}
	waitListening("recover-mode")
	wg.Wait()
	if t.Failed() {
		rec.Process.Kill()
		rec.Wait()
		t.FailNow()
	}

	var reconnects int64
	for _, c := range clients {
		reconnects += c.Reconnects()
	}
	if reconnects < conns {
		t.Errorf("reconnects = %d, want >= %d (every client crossed the crash)", reconnects, conns)
	}

	if err := rec.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := rec.Wait(); err != nil {
		t.Fatalf("recovered server failed: %v", err)
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("recovered server wrote no output: %v", err)
	}
	var out crashHelperOut
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}

	// The recovered server must have actually recovered something.
	if out.Report.RecoveredSessions != conns {
		t.Errorf("RecoveredSessions = %d, want %d", out.Report.RecoveredSessions, conns)
	}
	if out.Report.ReplayedFrames == 0 {
		t.Error("ReplayedFrames = 0: recovery replayed nothing from the log")
	}
	if out.Report.SessionsResumed < conns {
		t.Errorf("SessionsResumed = %d, want >= %d", out.Report.SessionsResumed, conns)
	}
	// Clean shutdown seals the log: the final checkpoint stands alone.
	if out.Report.WALSegmentsActive != 0 {
		t.Errorf("WALSegmentsActive = %d after clean shutdown, want 0", out.Report.WALSegmentsActive)
	}
	if segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.seg")); len(segs) != 0 {
		t.Errorf("%d unsealed segments left after clean shutdown: %v", len(segs), segs)
	}

	// Ground truth: the identical stream via the in-process generator,
	// fault-free, no crash.
	refP := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	refCap := refP.Source(netio.NewStreamGen(gen), streambox.SourceConfig{
		Name:           "ref",
		Rate:           total,
		BundleRecords:  1000,
		WindowRecords:  6_000,
		WatermarkEvery: 10,
	}).
		Window(streambox.NetworkTsCol).
		SumPerKey(0, 3).
		Capture()
	if _, err := streambox.Run(refP, streambox.RunConfig{Backend: streambox.Native, Duration: 1}); err != nil {
		t.Fatal(err)
	}

	got := make([]string, 0, 10*50)
	for _, w := range out.Windows {
		for _, r := range w.Rows {
			got = append(got, fmt.Sprintf("%d/%d=%d", w.Start, r.Key, r.Val))
		}
	}
	sort.Strings(got)
	want := sortedRows(refCap)
	if len(got) != len(want) {
		for _, w := range out.Windows {
			t.Logf("window sink=%s start=%d rows=%d", w.Sink, w.Start, len(w.Rows))
			if len(w.Rows) > 50 {
				vals := map[uint64][]uint64{}
				for _, r := range w.Rows {
					vals[r.Key] = append(vals[r.Key], r.Val)
				}
				t.Logf("  key 0 vals: %v", vals[0])
				t.Logf("  key 1 vals: %v", vals[1])
			}
		}
		t.Fatalf("recovered run produced %d rows, generator run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs across the crash: recovered %s, generator %s", i, got[i], want[i])
		}
	}
	if len(got) != 10*50 {
		t.Fatalf("row count %d, want 10 windows × 50 keys", len(got))
	}
	t.Logf("crash recovery: %d reconnects, %d sessions restored, %d frames replayed in %.3f s, %d rows bit-identical",
		reconnects, out.Report.RecoveredSessions, out.Report.ReplayedFrames,
		float64(out.Report.RecoveryNs)/1e9, len(got))
}
